package rat_test

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	rat "github.com/chrec/rat"
	"github.com/chrec/rat/internal/paper"
)

// TestFacadePredict: the public facade evaluates the walkthrough
// identically to the internal engine.
func TestFacadePredict(t *testing.T) {
	p := rat.Parameters{
		Name: "walkthrough",
		Dataset: rat.DatasetParams{
			ElementsIn: 512, ElementsOut: 1, BytesPerElement: 4,
		},
		Comm: rat.CommParams{IdealThroughput: rat.MBps(1000), AlphaWrite: 0.37, AlphaRead: 0.16},
		Comp: rat.CompParams{OpsPerElement: 768, ThroughputProc: 20, ClockHz: rat.MHz(150)},
		Soft: rat.SoftwareParams{TSoft: 0.578, Iterations: 400},
	}
	pr, err := rat.Predict(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pr.SpeedupSingle-10.58) > 0.02 {
		t.Errorf("facade speedup = %.2f, want ~10.58", pr.SpeedupSingle)
	}
	if pr.Speedup(rat.DoubleBuffered) <= pr.Speedup(rat.SingleBuffered) {
		t.Error("double-buffered must not be slower")
	}
}

// TestFacadeCaseStudies: the three published worksheets load through
// the facade and match the paper package.
func TestFacadeCaseStudies(t *testing.T) {
	for _, id := range []rat.CaseStudyID{rat.PDF1D, rat.PDF2D, rat.MD} {
		p, err := rat.CaseStudy(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if p != paper.Params(paper.Case(id)) {
			t.Errorf("%s: facade worksheet differs from canonical", id)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: invalid worksheet: %v", id, err)
		}
	}
	if _, err := rat.CaseStudy("nonsense"); err == nil {
		t.Error("unknown case study accepted")
	}
	if _, err := rat.CaseStudyScenario("nonsense", rat.MHz(100), rat.SingleBuffered); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestFacadeSimulate: a case-study scenario runs through the facade
// and reproduces the measured numbers.
func TestFacadeSimulate(t *testing.T) {
	sc, err := rat.CaseStudyScenario(rat.PDF1D, rat.MHz(150), rat.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	m, err := rat.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TComp()-1.39e-4) > 2e-6 {
		t.Errorf("simulated t_comp = %.3e, want ~1.39e-4", m.TComp())
	}
}

// TestFacadeSimulateStreaming: the streaming discipline beats double
// buffering for the 2-D PDF (its read and write volumes overlap) and
// stays within the analytic streaming model's bracket.
func TestFacadeSimulateStreaming(t *testing.T) {
	sc, err := rat.CaseStudyScenario(rat.PDF2D, rat.MHz(150), rat.DoubleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	db, err := rat.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rat.SimulateStreaming(sc)
	if err != nil {
		t.Fatal(err)
	}
	if st.TRC() > db.TRC() {
		t.Errorf("streaming %.4e slower than double-buffered %.4e", st.TRC(), db.TRC())
	}
	design, err := rat.CaseStudy(rat.PDF2D)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := rat.PredictStreaming(design)
	if err != nil {
		t.Fatal(err)
	}
	// The platform's real overheads put the simulated time above the
	// ideal analytic floor, but the same order holds.
	if st.TRC() < sp.TRCStream*0.8 || st.TRC() > sp.TRCStream*2 {
		t.Errorf("streaming sim %.4e far from analytic %.4e", st.TRC(), sp.TRCStream)
	}
}

// TestWorksheetFileRoundTrip drives the worksheet file path end to
// end: encode to disk, decode, predict, evaluate.
func TestWorksheetFileRoundTrip(t *testing.T) {
	p, err := rat.CaseStudy(rat.PDF1D)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "design.rat")
	var buf bytes.Buffer
	if err := rat.EncodeWorksheet(&buf, p); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := rat.DecodeWorksheet(f)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("file round trip changed the worksheet:\n got %+v\nwant %+v", got, p)
	}
	dev, ok := rat.LookupDevice("Virtex-4 LX100")
	if !ok {
		t.Fatal("device database missing the LX100")
	}
	out, err := rat.Evaluate(rat.Requirements{TargetSpeedup: 10, Buffering: rat.SingleBuffered},
		rat.Design{Params: got, Demand: rat.Demand{DSP: 8, BRAM: 25, Logic: 6800}, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != rat.Proceed {
		t.Errorf("verdict = %v, want PROCEED", out.Verdict)
	}
}

// TestFacadeResourceAPI exercises the resource-test exports.
func TestFacadeResourceAPI(t *testing.T) {
	if len(rat.Devices()) < 3 {
		t.Error("device database too small")
	}
	dev, _ := rat.LookupDevice("Stratix-II EP2S180")
	cost, err := rat.OperatorCost(dev, rat.OpMul, 18)
	if err != nil || cost.DSP != 4 {
		t.Errorf("OperatorCost = %+v, %v", cost, err)
	}
	rep := rat.CheckResources(dev, rat.Demand{DSP: 768, BRAM: 100, Logic: 1000})
	if !rep.Fits || rep.Limiting != rat.DSP {
		t.Errorf("CheckResources = %+v", rep)
	}
	if n := rat.MaxReplicas(dev, rat.Demand{}, rat.Demand{DSP: 192}); n != 4 {
		t.Errorf("MaxReplicas = %d, want 4", n)
	}
}

// TestFacadePlatformAPI exercises the platform exports.
func TestFacadePlatformAPI(t *testing.T) {
	p := rat.NallatechH101()
	if a := p.Interconnect.MeasureAlpha(rat.DirWrite, 2048); math.Abs(a-0.37) > 0.005 {
		t.Errorf("facade alpha_write = %.3f", a)
	}
	if _, ok := rat.PlatformByName("xd1000"); !ok {
		t.Error("PlatformByName(xd1000) failed")
	}
	x := rat.XtremeDataXD1000()
	if x.Device.Name != "Stratix-II EP2S180" {
		t.Errorf("XD1000 device = %q", x.Device.Name)
	}
}

// TestFacadeHarnessExperiments: every registered experiment runs clean
// through the facade-level harness (the integration test behind the
// ratbench command). MD-backed experiments share the cached dataset.
func TestFacadeHarnessExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments build the full MD dataset")
	}
	for _, id := range []string{"fig1", "fig2", "fig3", "table1", "table2", "table3",
		"table4", "table5", "table6", "table7", "table8", "table9", "table10",
		"solver", "alphatable"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := harnessByID(id)
			if !ok {
				t.Fatalf("experiment %q missing", id)
			}
			out, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(out) < 40 {
				t.Errorf("suspiciously short output:\n%s", out)
			}
		})
	}
}
