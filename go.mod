module github.com/chrec/rat

go 1.22
