package paper_test

import (
	"math"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
)

func TestParamsValid(t *testing.T) {
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		p := paper.Params(c)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", c, err)
		}
		if p.Name == "" {
			t.Errorf("%s: unnamed worksheet", c)
		}
	}
}

func TestParamsPanicsOnUnknownCase(t *testing.T) {
	for name, fn := range map[string]func(){
		"Params":           func() { paper.Params("bogus") },
		"PerformanceTable": func() { paper.PerformanceTable("bogus") },
		"ResourceTable":    func() { paper.ResourceTable("bogus") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on unknown case", name)
				}
			}()
			fn()
		}()
	}
}

// TestTablesStructurallySound: each performance table carries the three
// predicted clocks in ascending order plus exactly one actual column,
// and every resource table has three rows.
func TestTablesStructurallySound(t *testing.T) {
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		rows := paper.PerformanceTable(c)
		pred := paper.PredictedRows(c)
		if len(pred) != 3 {
			t.Errorf("%s: %d predicted rows, want 3", c, len(pred))
		}
		for i, r := range pred {
			if r.ClockHz != paper.ClocksHz[i] {
				t.Errorf("%s: predicted row %d clock %g", c, i, r.ClockHz)
			}
			if r.Actual {
				t.Errorf("%s: PredictedRows returned an actual row", c)
			}
		}
		actuals := 0
		for _, r := range rows {
			if r.Actual {
				actuals++
			}
			if r.TComm <= 0 || r.TComp <= 0 || r.TRC <= 0 || r.Speedup <= 0 {
				t.Errorf("%s: non-positive cells in %+v", c, r)
			}
		}
		if actuals != 1 {
			t.Errorf("%s: %d actual rows, want 1", c, actuals)
		}
		if got := paper.ActualRow(c); !got.Actual {
			t.Errorf("%s: ActualRow returned a predicted row", c)
		}
		res := paper.ResourceTable(c)
		if len(res) != 3 {
			t.Errorf("%s: %d resource rows, want 3", c, len(res))
		}
		for _, r := range res {
			if r.Utilization <= 0 || r.Utilization > 1 {
				t.Errorf("%s: resource %s utilization %g out of (0, 1]", c, r.Resource, r.Utilization)
			}
		}
	}
}

// TestPublishedCellsInternallyConsistent: within each published row,
// t_RC ~ N_iter*(t_comm+t_comp) and speedup ~ t_soft/t_RC to the
// printed precision (the intact columns of the paper check out; the
// reconstructed ones must too, by construction).
func TestPublishedCellsInternallyConsistent(t *testing.T) {
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		p := paper.Params(c)
		iters := float64(p.Soft.Iterations)
		for _, r := range paper.PerformanceTable(c) {
			sum := iters * (r.TComm + r.TComp)
			// The 1-D actual t_RC was measured directly from the
			// FPGA and exceeds the sum of its parts; all other rows
			// agree within printed rounding.
			if c == paper.PDF1D && r.Actual {
				if r.TRC < sum {
					t.Errorf("%s actual: measured total %g below sum of parts %g", c, r.TRC, sum)
				}
				continue
			}
			if d := math.Abs(r.TRC-sum) / r.TRC; d > 0.02 {
				t.Errorf("%s row %+v: t_RC inconsistent with parts (%.1f%%)", c, r, d*100)
			}
			if sp := p.Soft.TSoft / r.TRC; math.Abs(sp-r.Speedup) > 0.06 {
				t.Errorf("%s row (%.0f MHz, actual=%v): speedup %g inconsistent with t_soft/t_RC = %g",
					c, r.ClockHz/1e6, r.Actual, r.Speedup, sp)
			}
		}
	}
}

// TestMDTSoftBackComputation: 5.78 s reproduces all four printed
// speedups within half a final digit.
func TestMDTSoftBackComputation(t *testing.T) {
	for _, r := range paper.PerformanceTable(paper.MD) {
		sp := paper.MDTSoft / r.TRC
		if math.Abs(sp-r.Speedup) > 0.06 {
			t.Errorf("t_soft=5.78: %.0f MHz gives speedup %.2f, paper prints %.1f", r.ClockHz/1e6, sp, r.Speedup)
		}
	}
}

// TestReconstructionFlags: exactly the cells EXPERIMENTS.md documents
// as reconstructed are flagged.
func TestReconstructionFlags(t *testing.T) {
	if !paper.ActualRow(paper.PDF1D).Reconstructed {
		t.Error("PDF1D actual row must be flagged (clipped exponents)")
	}
	if !paper.ActualRow(paper.PDF2D).Reconstructed {
		t.Error("PDF2D actual row must be flagged (column missing from scan)")
	}
	if paper.ActualRow(paper.MD).Reconstructed {
		t.Error("MD actual row is intact in the scan")
	}
	for _, r := range paper.PredictedRows(paper.PDF1D) {
		if r.Reconstructed {
			t.Error("predicted rows are intact and must not be flagged")
		}
	}
	// Table 4's BRAM and Table 7's DSP cells are the intact ones.
	for _, r := range paper.ResourceTable(paper.PDF1D) {
		if r.Resource == "BRAMs" && r.Reconstructed {
			t.Error("Table 4 BRAMs 15% is intact")
		}
	}
	for _, r := range paper.ResourceTable(paper.PDF2D) {
		if r.Resource == "48-bit DSPs" && r.Reconstructed {
			t.Error("Table 7 DSPs 21% is intact")
		}
	}
}

// TestActualRowPanicsWithoutActual is exercised indirectly; here we
// just pin the clock of each actual measurement (150/150/100 MHz).
func TestActualClocks(t *testing.T) {
	if paper.ActualRow(paper.PDF1D).ClockHz != core.MHz(150) {
		t.Error("PDF1D measured at 150 MHz")
	}
	if paper.ActualRow(paper.PDF2D).ClockHz != core.MHz(150) {
		t.Error("PDF2D measured at 150 MHz")
	}
	if paper.ActualRow(paper.MD).ClockHz != core.MHz(100) {
		t.Error("MD measured at 100 MHz")
	}
}
