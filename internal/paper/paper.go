// Package paper records the published inputs and results of Holland et
// al., "RAT: A Methodology for Predicting Performance in Application
// Design Migration to FPGAs" (HPRCTA'07): the input-parameter
// worksheets of Tables 2, 5 and 8, the predicted-vs-actual performance
// of Tables 3, 6 and 9, and the resource utilizations of Tables 4, 7
// and 10.
//
// These values are the golden reference for the test suite (every
// predicted cell must be reproduced by internal/core to the paper's
// printed precision) and for the benchmark harness that regenerates the
// tables side by side with our own measurements.
//
// The available scan of the paper garbles a handful of cells (an OCR
// artifact of the source archive). Where a cell could be reconstructed
// unambiguously from the surrounding prose or from arithmetic
// consistency with intact cells, the reconstructed value is included
// and marked with Reconstructed: true; EXPERIMENTS.md documents each
// reconstruction. Reconstructed cells are reported for context but are
// never used as golden test values.
package paper

import "github.com/chrec/rat/internal/core"

// Case identifies one of the paper's three case studies.
type Case string

const (
	PDF1D Case = "pdf-1d" // 1-D Parzen-window PDF estimation (Section 4)
	PDF2D Case = "pdf-2d" // 2-D PDF estimation (Section 5.1)
	MD    Case = "md"     // molecular dynamics (Section 5.2)
)

// ClocksHz is the clock-frequency bracket used by every case study:
// 75, 100 and 150 MHz.
var ClocksHz = []float64{core.MHz(75), core.MHz(100), core.MHz(150)}

// PDF1DParams returns the Table 2 worksheet: the 1-D PDF estimation
// design on the Nallatech H101-PCIXM (Virtex-4 LX100) over 133 MHz
// PCI-X. The clock is set to 150 MHz; sweep with ClocksHz for the full
// table. Software baseline: C on a 3.2 GHz Xeon.
func PDF1DParams() core.Parameters {
	return core.Parameters{
		Name: "1-D PDF estimation",
		Dataset: core.DatasetParams{
			ElementsIn:      512,
			ElementsOut:     1,
			BytesPerElement: 4,
		},
		Comm: core.CommParams{
			IdealThroughput: core.MBps(1000),
			AlphaWrite:      0.37,
			AlphaRead:       0.16,
		},
		Comp: core.CompParams{
			OpsPerElement:  768, // 256 bins x 3 ops (compare, multiply, add)
			ThroughputProc: 20,  // 8 pipelines x 3 ops/cycle = 24, derated to 20
			ClockHz:        core.MHz(150),
		},
		Soft: core.SoftwareParams{
			TSoft:      0.578,
			Iterations: 400, // 204800 samples / 512 per batch
		},
	}
}

// PDF2DParams returns the Table 5 worksheet: the 2-D PDF estimation
// design on the same Nallatech platform. Note the 65536-element output
// transfer (the full 256x256 bin grid returns to the host every
// iteration, unlike the 1-D case).
func PDF2DParams() core.Parameters {
	return core.Parameters{
		Name: "2-D PDF estimation",
		Dataset: core.DatasetParams{
			ElementsIn:      1024,
			ElementsOut:     65536,
			BytesPerElement: 4,
		},
		Comm: core.CommParams{
			IdealThroughput: core.MBps(1000),
			AlphaWrite:      0.37,
			AlphaRead:       0.16,
		},
		Comp: core.CompParams{
			OpsPerElement:  393216, // 256x256 bins x 6 ops
			ThroughputProc: 48,     // 8 pipelines x 6 ops/cycle
			ClockHz:        core.MHz(150),
		},
		Soft: core.SoftwareParams{
			TSoft:      158.8,
			Iterations: 400,
		},
	}
}

// MDTSoft is the molecular-dynamics software baseline (2.2 GHz Opteron,
// the XD1000 host). The printed cell is garbled in the available scan;
// 5.78 s is back-computed from the four intact speedup/t_RC pairs of
// Table 9 (16.0 x 3.61E-1 = 5.776, 10.7 x 5.40E-1 = 5.778, 8.0 x
// 7.19E-1 = 5.752, 6.6 x 8.80E-1 = 5.808) and reproduces every printed
// speedup when rounded the way the paper rounds.
const MDTSoft = 5.78

// MDParams returns the Table 8 worksheet: the molecular-dynamics design
// on the XtremeData XD1000 (Stratix-II EP2S180) over HyperTransport.
// The whole 16384-molecule dataset is processed in one iteration; each
// element carries 36 bytes (position, velocity and acceleration in X, Y
// and Z at 4 bytes each).
func MDParams() core.Parameters {
	return core.Parameters{
		Name: "molecular dynamics",
		Dataset: core.DatasetParams{
			ElementsIn:      16384,
			ElementsOut:     16384,
			BytesPerElement: 36,
		},
		Comm: core.CommParams{
			IdealThroughput: core.MBps(500),
			AlphaWrite:      0.9,
			AlphaRead:       0.9,
		},
		Comp: core.CompParams{
			OpsPerElement:  164000, // estimated; data-dependent (molecule locality)
			ThroughputProc: 50,     // solved from the 10x speedup goal, rounded up
			ClockHz:        core.MHz(150),
		},
		Soft: core.SoftwareParams{
			TSoft:      MDTSoft,
			Iterations: 1,
		},
	}
}

// Params returns the canonical worksheet for a case study.
func Params(c Case) core.Parameters {
	switch c {
	case PDF1D:
		return PDF1DParams()
	case PDF2D:
		return PDF2DParams()
	case MD:
		return MDParams()
	}
	//rat:allow-panic the case enum is closed; an unknown value is a programming error in the caller
	panic("paper: unknown case " + string(c))
}

// Row is one column of a predicted-vs-actual performance table
// (Tables 3, 6 and 9): the component times, utilizations, total RC
// execution time and speedup at one clock frequency, either as
// predicted by RAT or as measured on the hardware platform.
type Row struct {
	ClockHz  float64
	Actual   bool // measured column rather than a RAT prediction
	TComm    float64
	TComp    float64
	UtilComm float64 // fraction, single-buffered (Eq. 9)
	UtilComp float64 // fraction, single-buffered (Eq. 8); <0 if not printed
	TRC      float64 // single-buffered (Eq. 5)
	Speedup  float64

	// Reconstructed marks rows whose printed cells are garbled in
	// the available scan and were rebuilt from prose or arithmetic
	// consistency; see EXPERIMENTS.md.
	Reconstructed bool
}

// PerformanceTable returns the paper's performance table for a case
// study: Table 3 (PDF1D), Table 6 (PDF2D) or Table 9 (MD). Predicted
// rows come first in ascending clock order, followed by the measured
// column. UtilComp is -1 where the paper does not print it.
func PerformanceTable(c Case) []Row {
	switch c {
	case PDF1D:
		return []Row{
			{ClockHz: core.MHz(75), TComm: 5.56e-6, TComp: 2.62e-4, UtilComm: 0.02, UtilComp: -1, TRC: 1.07e-1, Speedup: 5.4},
			{ClockHz: core.MHz(100), TComm: 5.56e-6, TComp: 1.97e-4, UtilComm: 0.03, UtilComp: -1, TRC: 8.09e-2, Speedup: 7.2},
			{ClockHz: core.MHz(150), TComm: 5.56e-6, TComp: 1.31e-4, UtilComm: 0.04, UtilComp: -1, TRC: 5.46e-2, Speedup: 10.6},
			// Actual, 150 MHz. The exponents of the three time cells
			// are clipped in the scan; magnitudes are fixed by the
			// intact 15% utilization and 7.8 speedup cells.
			{ClockHz: core.MHz(150), Actual: true, TComm: 2.50e-5, TComp: 1.39e-4, UtilComm: 0.15, UtilComp: -1, TRC: 7.45e-2, Speedup: 7.8, Reconstructed: true},
		}
	case PDF2D:
		return []Row{
			{ClockHz: core.MHz(75), TComm: 1.65e-3, TComp: 1.12e-1, UtilComm: 0.01, UtilComp: -1, TRC: 4.54e+1, Speedup: 3.5},
			{ClockHz: core.MHz(100), TComm: 1.65e-3, TComp: 8.39e-2, UtilComm: 0.02, UtilComp: -1, TRC: 3.42e+1, Speedup: 4.6},
			{ClockHz: core.MHz(150), TComm: 1.65e-3, TComp: 5.59e-2, UtilComm: 0.03, UtilComp: -1, TRC: 2.30e+1, Speedup: 6.9},
			// Actual, 150 MHz. The scan drops this column entirely;
			// reconstructed from the prose: communication about six
			// times larger than predicted, 19% of total execution,
			// computation "sufficiently overestimated" (a larger
			// relative error than the 1-D case's 6%), and an
			// effective speedup below the 1-D actual of 7.8.
			{ClockHz: core.MHz(150), Actual: true, TComm: 1.05e-2, TComp: 4.48e-2, UtilComm: 0.19, UtilComp: -1, TRC: 2.21e+1, Speedup: 7.2, Reconstructed: true},
		}
	case MD:
		return []Row{
			{ClockHz: core.MHz(75), TComm: 2.62e-3, TComp: 7.17e-1, UtilComm: 0.004, UtilComp: -1, TRC: 7.19e-1, Speedup: 8.0},
			{ClockHz: core.MHz(100), TComm: 2.62e-3, TComp: 5.37e-1, UtilComm: 0.005, UtilComp: -1, TRC: 5.40e-1, Speedup: 10.7},
			{ClockHz: core.MHz(150), TComm: 2.62e-3, TComp: 3.58e-1, UtilComm: 0.007, UtilComp: 0.993, TRC: 3.61e-1, Speedup: 16.0},
			// Actual, 100 MHz (Impulse C implementation).
			{ClockHz: core.MHz(100), Actual: true, TComm: 1.39e-3, TComp: 8.79e-1, UtilComm: 0.002, UtilComp: -1, TRC: 8.80e-1, Speedup: 6.6},
		}
	}
	//rat:allow-panic the case enum is closed; an unknown value is a programming error in the caller
	panic("paper: unknown case " + string(c))
}

// PredictedRows filters PerformanceTable to the RAT-predicted columns.
func PredictedRows(c Case) []Row {
	var out []Row
	for _, r := range PerformanceTable(c) {
		if !r.Actual {
			out = append(out, r)
		}
	}
	return out
}

// ActualRow returns the measured column of a performance table.
func ActualRow(c Case) Row {
	for _, r := range PerformanceTable(c) {
		if r.Actual {
			return r
		}
	}
	//rat:allow-panic every published case carries an actual row; its absence is corrupted table data
	panic("paper: no actual row for case " + string(c))
}

// ResourceRow is one line of a resource-utilization table (Tables 4, 7
// and 10): the fraction of one device resource class consumed by the
// design as reported by the vendor toolchain.
type ResourceRow struct {
	Resource      string
	Utilization   float64 // fraction of the device
	Reconstructed bool    // cell garbled in the scan, rebuilt from prose
}

// ResourceTable returns the paper's resource-utilization table for a
// case study: Table 4 (PDF1D, Virtex-4 LX100), Table 7 (PDF2D, LX100)
// or Table 10 (MD, Stratix-II EP2S180). Cells the scan garbles are
// reconstructed from the prose (the 1-D design has "relatively low
// resource usage"; the 2-D design "has increased but still has not
// nearly exhausted the resources"; the MD design required "a large
// percentage of the combinatorial logic and dedicated
// multiply-accumulators") and flagged.
func ResourceTable(c Case) []ResourceRow {
	switch c {
	case PDF1D:
		return []ResourceRow{
			{Resource: "48-bit DSPs", Utilization: 0.08, Reconstructed: true}, // 8 pipelines x 1 MAC / 96 DSP48s
			{Resource: "BRAMs", Utilization: 0.15},
			{Resource: "Slices", Utilization: 0.13, Reconstructed: true},
		}
	case PDF2D:
		return []ResourceRow{
			// 21% is the one cell the scan preserves in Table 7;
			// it matches the DSP row (the ten as-built pipelines'
			// 20 multiply units of the LX100's 96).
			{Resource: "48-bit DSPs", Utilization: 0.21},
			{Resource: "BRAMs", Utilization: 0.53, Reconstructed: true},
			{Resource: "Slices", Utilization: 0.28, Reconstructed: true},
		}
	case MD:
		return []ResourceRow{
			// Section 3.3: "the parallelism was ultimately limited
			// by the availability of multiplier resources"; Section
			// 5.2: "a large percentage of the combinatorial logic
			// and dedicated multiply-accumulators were required".
			{Resource: "9-bit DSPs", Utilization: 1.00, Reconstructed: true},
			{Resource: "BRAMs", Utilization: 0.56, Reconstructed: true},
			{Resource: "ALUTs", Utilization: 0.71, Reconstructed: true},
		}
	}
	//rat:allow-panic the case enum is closed; an unknown value is a programming error in the caller
	panic("paper: unknown case " + string(c))
}
