// Package validate implements the closing step of a RAT iteration:
// comparing a prediction against measured hardware numbers and
// diagnosing the discrepancies, the analysis Sections 4.3, 5.1 and 5.2
// of the paper perform by hand for each case study ("The discrepancy
// in speed in this case is due to the inaccuracies in the t_comm
// estimation...").
//
// Given a prediction and a Measured record — times read off the real
// (or simulated) platform — Compare produces per-term relative errors,
// classifies each term as accurate, optimistic or pessimistic, and
// attaches the paper's own diagnoses for the recognizable failure
// signatures: communication underestimated with small repeated
// transfers, alphas measured at the wrong size, conservative
// computation estimates, and data-dependent kernels.
package validate

import (
	"errors"
	"fmt"
	"math"

	"github.com/chrec/rat/internal/core"
)

// Measured holds the quantities read off the platform, per iteration
// for the component times and end-to-end for TRC. A zero TRC is
// filled from the components and the iteration count.
type Measured struct {
	TComm float64 // mean per-iteration communication time (s)
	TComp float64 // mean per-iteration computation time (s)
	TRC   float64 // end-to-end execution time (s); 0 = derive
}

// ErrBadMeasurement tags malformed measured records.
var ErrBadMeasurement = errors.New("validate: invalid measurement")

// Verdict classifies one term's prediction against its measurement.
type Verdict int

const (
	// Accurate: within the tolerance the paper treats as a good
	// pre-design estimate (10% by default).
	Accurate Verdict = iota
	// Optimistic: predicted faster than measured.
	Optimistic
	// Pessimistic: predicted slower than measured.
	Pessimistic
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Accurate:
		return "accurate"
	case Optimistic:
		return "optimistic"
	case Pessimistic:
		return "pessimistic"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Term is one compared quantity.
type Term struct {
	Name      string
	Predicted float64
	Measured  float64
	// Error is (predicted-measured)/measured: negative means the
	// prediction was optimistic (too fast/too small a time).
	Error   float64
	Verdict Verdict
}

// Analysis is the complete comparison.
type Analysis struct {
	Terms []Term
	// SpeedupPredicted and SpeedupMeasured compare end to end when
	// the worksheet carries a baseline.
	SpeedupPredicted float64
	SpeedupMeasured  float64
	// Notes carries the diagnoses triggered by recognizable error
	// signatures, in the paper's vocabulary.
	Notes []string
}

// AccurateTolerance is the relative error treated as a good estimate.
const AccurateTolerance = 0.10

func classify(predicted, measured float64) (float64, Verdict) {
	e := (predicted - measured) / measured
	switch {
	case math.Abs(e) <= AccurateTolerance:
		return e, Accurate
	case e < 0:
		return e, Optimistic
	default:
		return e, Pessimistic
	}
}

// Compare analyzes a prediction against measurement under the given
// buffering discipline.
func Compare(pr core.Prediction, m Measured, b core.Buffering) (Analysis, error) {
	if m.TComm <= 0 || m.TComp <= 0 || m.TRC < 0 ||
		math.IsNaN(m.TComm) || math.IsNaN(m.TComp) || math.IsNaN(m.TRC) {
		return Analysis{}, fmt.Errorf("%w: need positive measured times (got %+v)", ErrBadMeasurement, m)
	}
	iters := float64(pr.Params.Soft.Iterations)
	trc := m.TRC
	if trc == 0 {
		switch b {
		case core.DoubleBuffered:
			trc = iters * math.Max(m.TComm, m.TComp)
		default:
			trc = iters * (m.TComm + m.TComp)
		}
	}

	var a Analysis
	add := func(name string, predicted, measured float64) Verdict {
		e, v := classify(predicted, measured)
		a.Terms = append(a.Terms, Term{Name: name, Predicted: predicted, Measured: measured, Error: e, Verdict: v})
		return v
	}
	commV := add("t_comm", pr.TComm, m.TComm)
	compV := add("t_comp", pr.TComp, m.TComp)
	add("t_RC", pr.TRC(b), trc)

	if t := pr.Params.Soft.TSoft; t > 0 {
		a.SpeedupPredicted = pr.Speedup(b)
		a.SpeedupMeasured = t / trc
	}

	// Diagnoses in the paper's vocabulary.
	commRatio := m.TComm / pr.TComm
	switch {
	case commV == Optimistic && commRatio > 2:
		a.Notes = append(a.Notes, fmt.Sprintf(
			"communication %.1fx the prediction: alpha was likely measured at an unrepresentative transfer size, or per-transfer setup and repeated-transfer delays dominate at this block size (Sections 4.3, 5.1) — re-run the microbenchmark at the actual transfer sizes (%d-byte writes, %d-byte reads)",
			commRatio, int64(pr.Params.BytesIn()), int64(pr.Params.BytesOut())))
	case commV == Pessimistic && pr.TComm/m.TComm > 1.5:
		a.Notes = append(a.Notes, "communication comfortably beat the prediction: the documented interconnect bandwidth is conservative for this platform (Section 5.2's XD1000 behaviour)")
	}
	switch compV {
	case Optimistic:
		a.Notes = append(a.Notes, fmt.Sprintf(
			"computation ran %.0f%% slower than predicted: the sustained ops/cycle fell short — for data-dependent kernels treat throughput_proc as a tuning parameter and revisit the required parallelism (Section 5.2)",
			(m.TComp/pr.TComp-1)*100))
	case Pessimistic:
		a.Notes = append(a.Notes, "computation beat the conservative estimate — contingency that can absorb communication surprises (Section 5.1)")
	}
	if b == core.SingleBuffered && commV != Accurate && m.TComp > m.TComm {
		a.Notes = append(a.Notes, "double buffering would hide the communication error behind the larger computation time, improving prediction fidelity and speed (Section 4.3)")
	}
	if len(a.Notes) == 0 {
		a.Notes = append(a.Notes, "prediction within pre-design tolerance on every term")
	}
	return a, nil
}

// Term returns the named term, for tests and report code.
func (a Analysis) Term(name string) (Term, bool) {
	for _, t := range a.Terms {
		if t.Name == name {
			return t, true
		}
	}
	return Term{}, false
}
