package validate_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/validate"
)

// paperMeasured converts a published actual row to a Measured record.
func paperMeasured(c paper.Case) validate.Measured {
	r := paper.ActualRow(c)
	return validate.Measured{TComm: r.TComm, TComp: r.TComp, TRC: r.TRC}
}

// TestCompareReproducesSection43Narrative: validating the 1-D PDF
// prediction against the published measurement must produce the
// paper's own analysis — computation accurate, communication
// optimistic with the repeated-transfer diagnosis, and the
// double-buffering remark.
func TestCompareReproducesSection43Narrative(t *testing.T) {
	pr := core.MustPredict(paper.PDF1DParams())
	a, err := validate.Compare(pr, paperMeasured(paper.PDF1D), core.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	comm, ok := a.Term("t_comm")
	if !ok || comm.Verdict != validate.Optimistic {
		t.Errorf("t_comm verdict = %+v, want optimistic", comm)
	}
	comp, ok := a.Term("t_comp")
	if !ok || comp.Verdict != validate.Accurate {
		t.Errorf("t_comp verdict = %+v, want accurate (paper: ~6%% error)", comp)
	}
	if math.Abs(comp.Error) > 0.10 {
		t.Errorf("t_comp error = %.3f", comp.Error)
	}
	joined := strings.Join(a.Notes, " | ")
	if !strings.Contains(joined, "unrepresentative transfer size") && !strings.Contains(joined, "repeated-transfer") {
		t.Errorf("missing the communication diagnosis: %s", joined)
	}
	if !strings.Contains(joined, "double buffering would hide") {
		t.Errorf("missing the Section 4.3 double-buffering remark: %s", joined)
	}
	if a.SpeedupPredicted < a.SpeedupMeasured {
		t.Error("the 1-D prediction was optimistic overall")
	}
}

// TestCompareReproducesSection51Narrative: the 2-D PDF — big
// communication miss plus conservative computation.
func TestCompareReproducesSection51Narrative(t *testing.T) {
	pr := core.MustPredict(paper.PDF2DParams())
	a, err := validate.Compare(pr, paperMeasured(paper.PDF2D), core.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	comm, _ := a.Term("t_comm")
	if comm.Verdict != validate.Optimistic || comm.Error > -0.8 {
		t.Errorf("t_comm should be badly optimistic: %+v", comm)
	}
	comp, _ := a.Term("t_comp")
	if comp.Verdict != validate.Pessimistic {
		t.Errorf("t_comp should be pessimistic (conservative): %+v", comp)
	}
	joined := strings.Join(a.Notes, " | ")
	if !strings.Contains(joined, "contingency") {
		t.Errorf("missing the conservative-computation note: %s", joined)
	}
}

// TestCompareReproducesSection52Narrative: MD — communication beat the
// conservative documented bandwidth, computation fell short.
func TestCompareReproducesSection52Narrative(t *testing.T) {
	pr := core.MustPredict(paper.MDParams().WithClock(core.MHz(100)))
	a, err := validate.Compare(pr, paperMeasured(paper.MD), core.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	comm, _ := a.Term("t_comm")
	if comm.Verdict != validate.Pessimistic {
		t.Errorf("MD t_comm should be pessimistic: %+v", comm)
	}
	comp, _ := a.Term("t_comp")
	if comp.Verdict != validate.Optimistic {
		t.Errorf("MD t_comp should be optimistic: %+v", comp)
	}
	joined := strings.Join(a.Notes, " | ")
	if !strings.Contains(joined, "conservative for this platform") {
		t.Errorf("missing the XD1000 bandwidth note: %s", joined)
	}
	if !strings.Contains(joined, "tuning parameter") {
		t.Errorf("missing the data-dependence note: %s", joined)
	}
	if math.Abs(a.SpeedupMeasured-6.6) > 0.1 {
		t.Errorf("measured speedup = %.2f, want ~6.6", a.SpeedupMeasured)
	}
}

// TestAccurateEverywhere: a measurement matching the prediction yields
// accurate verdicts and the all-clear note.
func TestAccurateEverywhere(t *testing.T) {
	pr := core.MustPredict(paper.PDF1DParams())
	m := validate.Measured{TComm: pr.TComm * 1.02, TComp: pr.TComp * 0.97}
	a, err := validate.Compare(pr, m, core.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range a.Terms {
		if term.Verdict != validate.Accurate {
			t.Errorf("%s verdict = %v", term.Name, term.Verdict)
		}
	}
	if len(a.Notes) != 1 || !strings.Contains(a.Notes[0], "within pre-design tolerance") {
		t.Errorf("notes = %v", a.Notes)
	}
}

// TestDerivedTRC: a zero measured TRC is derived from the components
// under the declared discipline.
func TestDerivedTRC(t *testing.T) {
	pr := core.MustPredict(paper.PDF1DParams())
	m := validate.Measured{TComm: 2.5e-5, TComp: 1.39e-4}
	aSB, err := validate.Compare(pr, m, core.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	trc, _ := aSB.Term("t_RC")
	want := 400 * (2.5e-5 + 1.39e-4)
	if math.Abs(trc.Measured-want) > 1e-12 {
		t.Errorf("derived SB t_RC = %g, want %g", trc.Measured, want)
	}
	aDB, err := validate.Compare(pr, m, core.DoubleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	trcDB, _ := aDB.Term("t_RC")
	if math.Abs(trcDB.Measured-400*1.39e-4) > 1e-12 {
		t.Errorf("derived DB t_RC = %g", trcDB.Measured)
	}
}

func TestCompareErrors(t *testing.T) {
	pr := core.MustPredict(paper.PDF1DParams())
	bad := []validate.Measured{
		{TComm: 0, TComp: 1},
		{TComm: 1, TComp: 0},
		{TComm: 1, TComp: 1, TRC: -1},
		{TComm: math.NaN(), TComp: 1},
	}
	for _, m := range bad {
		if _, err := validate.Compare(pr, m, core.SingleBuffered); !errors.Is(err, validate.ErrBadMeasurement) {
			t.Errorf("measured %+v accepted", m)
		}
	}
}

func TestTermLookupAndStrings(t *testing.T) {
	pr := core.MustPredict(paper.PDF1DParams())
	a, err := validate.Compare(pr, validate.Measured{TComm: 1e-5, TComp: 1e-4}, core.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Term("t_magic"); ok {
		t.Error("invented a term")
	}
	if validate.Accurate.String() != "accurate" || validate.Optimistic.String() != "optimistic" ||
		validate.Pessimistic.String() != "pessimistic" || validate.Verdict(7).String() != "Verdict(7)" {
		t.Error("verdict strings wrong")
	}
}

// TestNoBaselineNoSpeedups: without t_soft the speedup fields stay
// zero.
func TestNoBaselineNoSpeedups(t *testing.T) {
	p := paper.PDF1DParams()
	p.Soft.TSoft = 0
	pr := core.MustPredict(p)
	a, err := validate.Compare(pr, validate.Measured{TComm: 1e-5, TComp: 1e-4}, core.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	if a.SpeedupPredicted != 0 || a.SpeedupMeasured != 0 {
		t.Error("speedups without baseline must be zero")
	}
}
