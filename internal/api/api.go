// Package api defines the wire format of the ratd prediction service:
// the JSON request and response bodies exchanged over HTTP by
// internal/server (the daemon) and package client (the typed Go
// client). Field names and units mirror the worksheet JSON form
// (MB/s, MHz, seconds).
//
// Conversions between wire and core types are exact: every float64
// travels as its shortest round-trippable JSON representation, so a
// prediction decoded from a response is bit-for-bit the prediction the
// server computed. See docs/SERVER.md for the endpoint catalogue.
package api

import (
	"fmt"
	"time"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/explore"
	"github.com/chrec/rat/internal/worksheet"
)

// Error is the JSON body of every non-2xx response.
type Error struct {
	Error string `json:"error"`
}

// Prediction is the wire form of core.Prediction: the full throughput
// test output (Eqs. 1-11) plus the worksheet that produced it.
type Prediction struct {
	Worksheet worksheet.Doc `json:"worksheet"`

	TWriteSeconds    float64 `json:"t_write_seconds"`
	TReadSeconds     float64 `json:"t_read_seconds"`
	TCommSeconds     float64 `json:"t_comm_seconds"`
	TCompSeconds     float64 `json:"t_comp_seconds"`
	TRCSingleSeconds float64 `json:"t_rc_single_seconds"`
	TRCDoubleSeconds float64 `json:"t_rc_double_seconds"`
	SpeedupSingle    float64 `json:"speedup_single"`
	SpeedupDouble    float64 `json:"speedup_double"`
	UtilCompSingle   float64 `json:"util_comp_single"`
	UtilCommSingle   float64 `json:"util_comm_single"`
	UtilCompDouble   float64 `json:"util_comp_double"`
	UtilCommDouble   float64 `json:"util_comm_double"`
}

// PredictionFromCore converts a core prediction to its wire form.
func PredictionFromCore(pr core.Prediction) Prediction {
	return Prediction{
		Worksheet:        worksheet.DocFromParams(pr.Params),
		TWriteSeconds:    pr.TWrite,
		TReadSeconds:     pr.TRead,
		TCommSeconds:     pr.TComm,
		TCompSeconds:     pr.TComp,
		TRCSingleSeconds: pr.TRCSingle,
		TRCDoubleSeconds: pr.TRCDouble,
		SpeedupSingle:    pr.SpeedupSingle,
		SpeedupDouble:    pr.SpeedupDouble,
		UtilCompSingle:   pr.UtilCompSB,
		UtilCommSingle:   pr.UtilCommSB,
		UtilCompDouble:   pr.UtilCompDB,
		UtilCommDouble:   pr.UtilCommDB,
	}
}

// Core converts the wire form back to a core.Prediction.
func (p Prediction) Core() core.Prediction {
	return core.Prediction{
		Params:        p.Worksheet.Params(),
		TWrite:        p.TWriteSeconds,
		TRead:         p.TReadSeconds,
		TComm:         p.TCommSeconds,
		TComp:         p.TCompSeconds,
		TRCSingle:     p.TRCSingleSeconds,
		TRCDouble:     p.TRCDoubleSeconds,
		SpeedupSingle: p.SpeedupSingle,
		SpeedupDouble: p.SpeedupDouble,
		UtilCompSB:    p.UtilCompSingle,
		UtilCommSB:    p.UtilCommSingle,
		UtilCompDB:    p.UtilCompDouble,
		UtilCommDB:    p.UtilCommDouble,
	}
}

// MultiPrediction is the wire form of core.MultiPrediction, the
// Section 6 multi-FPGA extension's output.
type MultiPrediction struct {
	Devices  int    `json:"devices"`
	Topology string `json:"topology"`

	Single Prediction `json:"single"`

	TCommSeconds      float64 `json:"t_comm_seconds"`
	TCompSeconds      float64 `json:"t_comp_seconds"`
	TRCSingleSeconds  float64 `json:"t_rc_single_seconds"`
	TRCDoubleSeconds  float64 `json:"t_rc_double_seconds"`
	SpeedupSingle     float64 `json:"speedup_single"`
	SpeedupDouble     float64 `json:"speedup_double"`
	ScalingEfficiency float64 `json:"scaling_efficiency"`
}

// MultiPredictionFromCore converts a core multi-FPGA prediction to its
// wire form.
func MultiPredictionFromCore(mp core.MultiPrediction) MultiPrediction {
	return MultiPrediction{
		Devices:           mp.Config.Devices,
		Topology:          mp.Config.Topology.String(),
		Single:            PredictionFromCore(mp.Single),
		TCommSeconds:      mp.TComm,
		TCompSeconds:      mp.TComp,
		TRCSingleSeconds:  mp.TRCSingle,
		TRCDoubleSeconds:  mp.TRCDouble,
		SpeedupSingle:     mp.SpeedupSingle,
		SpeedupDouble:     mp.SpeedupDouble,
		ScalingEfficiency: mp.ScalingEfficiency,
	}
}

// Core converts the wire form back to a core.MultiPrediction. The
// topology string must be valid (responses built by the server always
// are); unknown strings map to the shared-channel zero value.
func (mp MultiPrediction) Core() core.MultiPrediction {
	topo, _ := ParseTopology(mp.Topology)
	return core.MultiPrediction{
		Config:            core.MultiConfig{Devices: mp.Devices, Topology: topo},
		Single:            mp.Single.Core(),
		TComm:             mp.TCommSeconds,
		TComp:             mp.TCompSeconds,
		TRCSingle:         mp.TRCSingleSeconds,
		TRCDouble:         mp.TRCDoubleSeconds,
		SpeedupSingle:     mp.SpeedupSingle,
		SpeedupDouble:     mp.SpeedupDouble,
		ScalingEfficiency: mp.ScalingEfficiency,
	}
}

// ParseTopology converts a topology name to its core value, accepting
// both the short and the canonical String form.
func ParseTopology(s string) (core.Topology, error) {
	switch s {
	case "", "shared", "shared-channel":
		return core.SharedChannel, nil
	case "independent", "independent-channels":
		return core.IndependentChannels, nil
	}
	return 0, fmt.Errorf("unknown topology %q (want shared or independent)", s)
}

// ParseBuffering converts a buffering name to its core value.
func ParseBuffering(s string) (core.Buffering, error) {
	switch s {
	case "single", "single-buffered":
		return core.SingleBuffered, nil
	case "double", "double-buffered":
		return core.DoubleBuffered, nil
	}
	return 0, fmt.Errorf("unknown buffering %q (want single or double)", s)
}

// ExploreRequest is the body of POST /v1/explore: a bounded grid
// search around a base worksheet (see internal/explore and
// docs/EXPLORE.md). Empty axes keep the base worksheet's value.
type ExploreRequest struct {
	Worksheet worksheet.Doc `json:"worksheet"`

	ClocksMHz       []float64 `json:"clocks_mhz,omitempty"`
	ThroughputProcs []float64 `json:"throughput_procs,omitempty"`
	Alphas          []float64 `json:"alphas,omitempty"`
	BlockSizes      []int64   `json:"block_sizes,omitempty"`
	Devices         []int     `json:"devices,omitempty"`
	Topology        string    `json:"topology,omitempty"`
	Bufferings      []string  `json:"bufferings,omitempty"`

	Objective string `json:"objective,omitempty"`
	TopK      int    `json:"top_k,omitempty"`

	MinSpeedup    float64 `json:"min_speedup,omitempty"`
	MaxTRCSeconds float64 `json:"max_trc_seconds,omitempty"`
	MaxUtilComm   float64 `json:"max_util_comm,omitempty"`
	MaxDevices    int     `json:"max_devices,omitempty"`

	// Frontier asks for the Pareto frontier alongside the top-K.
	Frontier bool `json:"frontier,omitempty"`

	// IndexLo and IndexHi restrict evaluation to candidate indices
	// [index_lo, index_hi) — one shard of the grid. Both zero (or
	// absent) means the whole grid. Shard responses merge
	// byte-identically with a whole-grid run; internal/cluster and
	// docs/DISTRIBUTED.md build on this.
	IndexLo uint64 `json:"index_lo,omitempty"`
	IndexHi uint64 `json:"index_hi,omitempty"`
}

// Grid builds the exploration grid the request describes.
func (r ExploreRequest) Grid() (explore.Grid, error) {
	topo, err := ParseTopology(r.Topology)
	if err != nil {
		return explore.Grid{}, err
	}
	g := explore.Grid{
		Base:            r.Worksheet.Params(),
		ThroughputProcs: r.ThroughputProcs,
		Alphas:          r.Alphas,
		BlockSizes:      r.BlockSizes,
		Devices:         r.Devices,
		Topology:        topo,
	}
	for _, mhz := range r.ClocksMHz {
		g.Clocks = append(g.Clocks, core.MHz(mhz))
	}
	for _, b := range r.Bufferings {
		buf, err := ParseBuffering(b)
		if err != nil {
			return explore.Grid{}, err
		}
		g.Bufferings = append(g.Bufferings, buf)
	}
	return g, nil
}

// Options builds the exploration options the request describes. The
// caller (the server) supplies the worker count.
func (r ExploreRequest) Options(workers int) (explore.Options, error) {
	opts := explore.Options{
		Workers: workers,
		TopK:    r.TopK,
		IndexLo: r.IndexLo,
		IndexHi: r.IndexHi,
		Constraints: explore.Constraints{
			MinSpeedup:  r.MinSpeedup,
			MaxTRC:      r.MaxTRCSeconds,
			MaxUtilComm: r.MaxUtilComm,
			MaxDevices:  r.MaxDevices,
		},
	}
	if r.Objective != "" {
		obj, err := explore.ParseObjective(r.Objective)
		if err != nil {
			return explore.Options{}, err
		}
		opts.Objective = obj
	}
	return opts, nil
}

// Candidate is the wire form of one evaluated design point.
type Candidate struct {
	Index uint64 `json:"index"`

	ClockMHz       float64 `json:"clock_mhz"`
	ThroughputProc float64 `json:"throughput_proc"`
	AlphaWrite     float64 `json:"alpha_write"`
	AlphaRead      float64 `json:"alpha_read"`
	ElementsIn     int64   `json:"elements_in"`
	ElementsOut    int64   `json:"elements_out"`
	Iterations     int64   `json:"iterations"`
	Devices        int     `json:"devices"`
	Buffering      string  `json:"buffering"`

	TCommSeconds float64 `json:"t_comm_seconds"`
	TCompSeconds float64 `json:"t_comp_seconds"`
	TRCSeconds   float64 `json:"t_rc_seconds"`
	Speedup      float64 `json:"speedup"`
	UtilComm     float64 `json:"util_comm"`
	UtilComp     float64 `json:"util_comp"`
}

// CandidateFromCore converts an explore candidate to its wire form.
func CandidateFromCore(c explore.Candidate) Candidate {
	return Candidate{
		Index:          c.Index,
		ClockMHz:       c.ClockHz / 1e6,
		ThroughputProc: c.ThroughputProc,
		AlphaWrite:     c.AlphaWrite,
		AlphaRead:      c.AlphaRead,
		ElementsIn:     c.ElementsIn,
		ElementsOut:    c.ElementsOut,
		Iterations:     c.Iterations,
		Devices:        c.Devices,
		Buffering:      c.Buffering.String(),
		TCommSeconds:   c.TComm,
		TCompSeconds:   c.TComp,
		TRCSeconds:     c.TRC,
		Speedup:        c.Speedup,
		UtilComm:       c.UtilComm,
		UtilComp:       c.UtilComp,
	}
}

// ExploreResponse is the body of a non-streaming POST /v1/explore
// response. In streaming mode (?stream=jsonl) the same data arrives as
// JSONL: one ExploreLine per line.
type ExploreResponse struct {
	Evaluated        uint64      `json:"evaluated"`
	Feasible         uint64      `json:"feasible"`
	Workers          int         `json:"workers"`
	ElapsedSeconds   float64     `json:"elapsed_seconds"`
	CandidatesPerSec float64     `json:"candidates_per_sec"`
	Top              []Candidate `json:"top"`
	Frontier         []Candidate `json:"frontier,omitempty"`
}

// ExploreResponseFromCore converts an exploration result to its wire
// form. The frontier is included only when asked for.
func ExploreResponseFromCore(res explore.Result, frontier bool) ExploreResponse {
	out := ExploreResponse{
		Evaluated:        res.Evaluated,
		Feasible:         res.Feasible,
		Workers:          res.Workers,
		ElapsedSeconds:   res.Elapsed.Seconds(),
		CandidatesPerSec: res.CandidatesPerSec,
		Top:              make([]Candidate, 0, len(res.Top)),
	}
	for _, c := range res.Top {
		out.Top = append(out.Top, CandidateFromCore(c))
	}
	if frontier {
		out.Frontier = make([]Candidate, 0, len(res.Frontier))
		for _, c := range res.Frontier {
			out.Frontier = append(out.Frontier, CandidateFromCore(c))
		}
	}
	return out
}

// ExploreLine is one line of a streaming explore response: exactly one
// of the fields is set. Candidate lines ("top", then "frontier" when
// requested) stream as they are known; span lines (opt-in via
// ?spans=1) describe per-shard engine timing; the summary line
// terminates the stream.
type ExploreLine struct {
	Kind      string          `json:"kind"` // "top", "frontier", "span" or "summary"
	Candidate *Candidate      `json:"candidate,omitempty"`
	Span      *ShardSpan      `json:"span,omitempty"`
	Summary   *ExploreSummary `json:"summary,omitempty"`
}

// ShardSpan is the wire form of one exploration shard's timing: which
// slice of the candidate index space a worker evaluated and how long
// it took. Spans let a trace of a slow exploration show skew across
// workers instead of one opaque elapsed number.
type ShardSpan struct {
	Shard          int     `json:"shard"`
	Worker         int     `json:"worker"`
	Lo             uint64  `json:"lo"`
	Hi             uint64  `json:"hi"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// ExploreSummary is the closing line of a streaming explore response.
type ExploreSummary struct {
	Evaluated        uint64  `json:"evaluated"`
	Feasible         uint64  `json:"feasible"`
	Workers          int     `json:"workers"`
	ElapsedSeconds   float64 `json:"elapsed_seconds"`
	CandidatesPerSec float64 `json:"candidates_per_sec"`
}

// Elapsed returns the summary's elapsed time as a duration.
func (s ExploreSummary) Elapsed() time.Duration {
	return time.Duration(s.ElapsedSeconds * float64(time.Second))
}

// DistributedExploreRequest is the body of POST
// /v1/explore/distributed: the coordinating ratd shards the embedded
// explore request's candidate-index range across the listed worker
// base URLs and merges the shard results byte-identically with a
// single-node run (see internal/cluster and docs/DISTRIBUTED.md).
type DistributedExploreRequest struct {
	Explore ExploreRequest `json:"explore"`

	// Workers are the ratd base URLs to shard across, e.g.
	// ["http://fleet-1:8080", "http://fleet-2:8080"]. The coordinator
	// may list itself.
	Workers []string `json:"workers"`

	// ShardSize is the candidate count per shard; 0 derives a size
	// that oversubscribes the fleet 8x (clamped to [1, 2^20]).
	ShardSize uint64 `json:"shard_size,omitempty"`
	// MaxInflight bounds concurrently dispatched shards per worker
	// (default 2), so a coordinator cannot monopolize a shared
	// tenant's admission slots.
	MaxInflight int `json:"max_inflight,omitempty"`
	// ShardTimeoutSeconds is the straggler deadline: a shard still
	// running after this long is speculatively re-dispatched to
	// another healthy worker (default 30s).
	ShardTimeoutSeconds float64 `json:"shard_timeout_seconds,omitempty"`
}

// WorkerShardStats is one worker's share of a distributed run.
type WorkerShardStats struct {
	Worker   string `json:"worker"`
	Shards   int64  `json:"shards"`
	Failures int64  `json:"failures"`
}

// ClusterStats describes how a distributed exploration ran: fleet
// shape, dispatch/retry/straggler counts and the per-worker split.
// None of it affects the merged result — determinism holds whatever
// the fleet did.
type ClusterStats struct {
	Workers      int                `json:"workers"`
	Shards       int                `json:"shards"`
	Dispatched   int64              `json:"dispatched"`
	Retried      int64              `json:"retried"`
	Redispatched int64              `json:"redispatched"`
	Duplicates   int64              `json:"duplicate_completions"`
	Failures     int64              `json:"worker_failures"`
	PerWorker    []WorkerShardStats `json:"per_worker"`
}

// DistributedExploreResponse is the body of a POST
// /v1/explore/distributed response: the merged exploration result
// (bit-for-bit what a single node would have returned for the same
// request) plus fleet statistics.
type DistributedExploreResponse struct {
	ExploreResponse
	Cluster ClusterStats `json:"cluster"`
}

// Status is the body of GET /v1/status: a live operational snapshot of
// a ratd process. It complements /metrics — the same numbers a
// dashboard would derive from the exposition, pre-digested for humans
// and scripts.
type Status struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	QPS           float64 `json:"qps"`
	Draining      bool    `json:"draining"`

	// BrownoutLevel is the server's degradation level: 0 healthy,
	// 1-3 progressively shedding bulk features (see docs/TENANCY.md).
	BrownoutLevel int `json:"brownout_level"`

	Endpoints map[string]EndpointStatus `json:"endpoints"`
	Cache     CacheStatus               `json:"cache"`
	Batcher   BatcherStatus             `json:"batcher"`
	Stages    map[string]StageStatus    `json:"stages"`

	// Tenants is present only on multi-tenant servers: one entry per
	// configured tenant name.
	Tenants map[string]TenantStatus `json:"tenants,omitempty"`
}

// TenantStatus summarizes one tenant's traffic, rejections and
// concurrency on a multi-tenant server.
type TenantStatus struct {
	Requests            int64   `json:"requests"`
	RejectedQuota       int64   `json:"rejected_quota"`
	RejectedConcurrency int64   `json:"rejected_concurrency"`
	Inflight            int64   `json:"inflight"`
	PeakInflight        int64   `json:"peak_inflight"`
	P99Ms               float64 `json:"p99_ms"`
}

// EndpointStatus summarizes one endpoint's traffic and latency.
type EndpointStatus struct {
	Requests int64   `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	Inflight float64 `json:"inflight,omitempty"`
	Peak     float64 `json:"peak_inflight,omitempty"`
	Rejected int64   `json:"rejected,omitempty"`
}

// CacheStatus summarizes the response cache.
type CacheStatus struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
	Entries  float64 `json:"entries"`
}

// BatcherStatus summarizes the coalescing batcher. MeanOccupancy is
// the average coalesced batch size (1 when batching is disabled or
// traffic never overlaps).
type BatcherStatus struct {
	Batches       int64   `json:"batches"`
	Coalesced     int64   `json:"coalesced_requests"`
	MeanOccupancy float64 `json:"mean_occupancy"`
}

// StageStatus summarizes one pipeline stage's latency distribution.
type StageStatus struct {
	Count int64   `json:"count"`
	P50Us float64 `json:"p50_us"`
	P95Us float64 `json:"p95_us"`
	P99Us float64 `json:"p99_us"`
}
