package api

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
)

// TestPredictionWireRoundTrip pins the bit-for-bit contract: a core
// prediction converted to the wire form, marshalled, unmarshalled and
// converted back must compare equal with ==, for all three paper case
// studies. encoding/json emits the shortest float representation that
// parses back to the same bits, so no tolerance is needed.
func TestPredictionWireRoundTrip(t *testing.T) {
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		p := paper.Params(c)
		pr, err := core.Predict(p)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		body, err := json.Marshal(PredictionFromCore(pr))
		if err != nil {
			t.Fatalf("%s: marshal: %v", c, err)
		}
		var wire Prediction
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&wire); err != nil {
			t.Fatalf("%s: unmarshal: %v", c, err)
		}
		if got := wire.Core(); got != pr {
			t.Errorf("%s: wire round-trip changed the prediction\n got %+v\nwant %+v", c, got, pr)
		}
	}
}

func TestMultiPredictionWireRoundTrip(t *testing.T) {
	for _, topo := range []core.Topology{core.SharedChannel, core.IndependentChannels} {
		for _, devices := range []int{1, 2, 4} {
			mp, err := core.PredictMulti(paper.PDF2DParams(), core.MultiConfig{Devices: devices, Topology: topo})
			if err != nil {
				t.Fatal(err)
			}
			body, err := json.Marshal(MultiPredictionFromCore(mp))
			if err != nil {
				t.Fatal(err)
			}
			var wire MultiPrediction
			if err := json.Unmarshal(body, &wire); err != nil {
				t.Fatal(err)
			}
			if got := wire.Core(); got != mp {
				t.Errorf("%v x%d: wire round-trip changed the prediction", topo, devices)
			}
		}
	}
}

func TestParseTopology(t *testing.T) {
	for _, c := range []struct {
		in   string
		want core.Topology
		ok   bool
	}{
		{"", core.SharedChannel, true},
		{"shared", core.SharedChannel, true},
		{"shared-channel", core.SharedChannel, true},
		{"independent", core.IndependentChannels, true},
		{"independent-channels", core.IndependentChannels, true},
		{"ring", 0, false},
	} {
		got, err := ParseTopology(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseTopology(%q) = %v, %v", c.in, got, err)
		}
	}
}

func TestExploreRequestGrid(t *testing.T) {
	req := ExploreRequest{
		Worksheet:  PredictionFromCore(core.MustPredict(paper.PDF1DParams())).Worksheet,
		ClocksMHz:  []float64{75, 100, 150},
		Bufferings: []string{"single", "double"},
		Objective:  "min-trc",
		TopK:       5,
	}
	g, err := req.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Size(); got != 6 {
		t.Errorf("grid size = %d, want 6 (3 clocks x 2 bufferings)", got)
	}
	if g.Clocks[0] != core.MHz(75) {
		t.Errorf("clock axis not converted to Hz: %v", g.Clocks[0])
	}
	opts, err := req.Options(2)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Workers != 2 || opts.TopK != 5 {
		t.Errorf("options = %+v", opts)
	}

	req.Bufferings = []string{"triple"}
	if _, err := req.Grid(); err == nil {
		t.Error("bad buffering accepted")
	}
	req.Bufferings = nil
	req.Objective = "fastest"
	if _, err := req.Options(1); err == nil {
		t.Error("bad objective accepted")
	}
}
