// Package power adds the third leg of the paper's opening requirement
// triad — "it is critical to consider whether the chosen application
// architecture and FPGA platform will meet the speed, area, and power
// requirements of the project" (Section 1) — with the same
// first-order, pre-design character as the resource test. The paper's
// own motivation for power is the embedded community, for whom an
// FPGA that merely *matches* a CPU wins by burning far less energy;
// this package quantifies that comparison.
//
// The model is deliberately coarse, like every pre-HDL estimate in the
// methodology: a per-device static floor plus dynamic power
// proportional to clock frequency and the number of active resources
// of each class, with computation utilization scaling the activity.
// Coefficients are first-order figures for the 90 nm parts of the case
// studies; register a Model of your own for other families.
package power

import (
	"errors"
	"fmt"

	"github.com/chrec/rat/internal/resource"
)

// Model holds a device family's power coefficients.
type Model struct {
	// StaticW is the idle (leakage + clocking) floor in watts.
	StaticW float64
	// Dynamic coefficients, in watts per MHz per active unit.
	LogicWPerMHz float64 // per logic cell
	DSPWPerMHz   float64 // per DSP unit
	BRAMWPerMHz  float64 // per block RAM
}

// ErrNoModel is returned for devices without registered coefficients.
var ErrNoModel = errors.New("power: no model for device family")

// ForDevice returns the power model for a device's family. First-order
// 90 nm figures: Virtex-4 and Stratix-II leak a few watts and spend
// on the order of microwatts per MHz per active cell.
func ForDevice(dev resource.Device) (Model, error) {
	switch dev.Family {
	case "Virtex-4":
		return Model{
			StaticW:      1.5,
			LogicWPerMHz: 1.1e-6, // per slice
			DSPWPerMHz:   2.3e-5, // per DSP48
			BRAMWPerMHz:  8.0e-5, // per 18 kbit block
		}, nil
	case "Stratix-II":
		return Model{
			StaticW:      2.2,
			LogicWPerMHz: 0.6e-6, // per ALUT
			DSPWPerMHz:   0.4e-5, // per 9-bit element
			BRAMWPerMHz:  6.0e-5, // per normalized block
		}, nil
	default:
		return Model{}, fmt.Errorf("%w %q", ErrNoModel, dev.Family)
	}
}

// Estimate returns the design's mean power draw in watts: the static
// floor plus dynamic power for the occupied resources at the given
// clock, scaled by the fraction of time the kernel is actually
// computing (the throughput test's computation utilization — an idle
// datapath burns only leakage).
func Estimate(m Model, demand resource.Demand, clockHz, utilComp float64) (float64, error) {
	if clockHz <= 0 {
		return 0, fmt.Errorf("power: clock must be positive (got %g)", clockHz)
	}
	if utilComp < 0 || utilComp > 1 {
		return 0, fmt.Errorf("power: computation utilization must be in [0, 1] (got %g)", utilComp)
	}
	mhz := clockHz / 1e6
	dynamic := mhz * (float64(demand.Logic)*m.LogicWPerMHz +
		float64(demand.DSP)*m.DSPWPerMHz +
		float64(demand.BRAM)*m.BRAMWPerMHz)
	return m.StaticW + dynamic*utilComp, nil
}

// Comparison is an FPGA-vs-CPU energy comparison for one application
// run.
type Comparison struct {
	// FPGAJoules = FPGA watts x t_RC; CPUJoules = CPU watts x t_soft.
	FPGAJoules float64
	CPUJoules  float64
	// EnergyRatio is CPUJoules / FPGAJoules: how many times less
	// energy the FPGA run costs. With speedup S and power ratio R
	// (CPU/FPGA), the ratio is S x R — which is why even a
	// speedup-neutral migration can win for embedded deployments.
	EnergyRatio float64
}

// CompareEnergy evaluates the embedded-community question of Section
// 1: the total energy of the FPGA run against the CPU baseline run.
func CompareEnergy(fpgaWatts, tRC, cpuWatts, tSoft float64) (Comparison, error) {
	if fpgaWatts <= 0 || cpuWatts <= 0 || tRC <= 0 || tSoft <= 0 {
		return Comparison{}, fmt.Errorf("power: all comparison inputs must be positive")
	}
	c := Comparison{
		FPGAJoules: fpgaWatts * tRC,
		CPUJoules:  cpuWatts * tSoft,
	}
	c.EnergyRatio = c.CPUJoules / c.FPGAJoules
	return c, nil
}
