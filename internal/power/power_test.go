package power_test

import (
	"errors"
	"math"
	"testing"

	"github.com/chrec/rat/internal/apps/pdf1d"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/power"
	"github.com/chrec/rat/internal/resource"
)

func TestForDevice(t *testing.T) {
	if _, err := power.ForDevice(resource.VirtexLX100); err != nil {
		t.Errorf("Virtex-4: %v", err)
	}
	if _, err := power.ForDevice(resource.StratixEP2S180); err != nil {
		t.Errorf("Stratix-II: %v", err)
	}
	unknown := resource.Device{Family: "Spartan-3"}
	if _, err := power.ForDevice(unknown); !errors.Is(err, power.ErrNoModel) {
		t.Errorf("unknown family: %v", err)
	}
}

func TestEstimateBasics(t *testing.T) {
	m, err := power.ForDevice(resource.VirtexLX100)
	if err != nil {
		t.Fatal(err)
	}
	demand := resource.Demand{Logic: 6800, DSP: 8, BRAM: 25}
	idle, err := power.Estimate(m, demand, core.MHz(150), 0)
	if err != nil {
		t.Fatal(err)
	}
	if idle != m.StaticW {
		t.Errorf("zero-utilization power = %g, want static floor %g", idle, m.StaticW)
	}
	busy, err := power.Estimate(m, demand, core.MHz(150), 1)
	if err != nil {
		t.Fatal(err)
	}
	if busy <= idle {
		t.Error("active power must exceed the static floor")
	}
	// A modest 90 nm design: single-digit watts.
	if busy < 1.5 || busy > 15 {
		t.Errorf("1-D PDF-scale power = %.2f W, expected single digits", busy)
	}
	// Power scales with clock.
	slow, _ := power.Estimate(m, demand, core.MHz(75), 1)
	if slow >= busy {
		t.Error("dynamic power must grow with clock")
	}
	// Utilization scales only the dynamic part.
	half, _ := power.Estimate(m, demand, core.MHz(150), 0.5)
	if math.Abs(half-(idle+(busy-idle)/2)) > 1e-12 {
		t.Errorf("half utilization = %g, want midpoint of %g and %g", half, idle, busy)
	}
}

func TestEstimateErrors(t *testing.T) {
	m, _ := power.ForDevice(resource.VirtexLX100)
	if _, err := power.Estimate(m, resource.Demand{}, 0, 0.5); err == nil {
		t.Error("zero clock accepted")
	}
	if _, err := power.Estimate(m, resource.Demand{}, 1e6, 1.5); err == nil {
		t.Error("utilization above 1 accepted")
	}
	if _, err := power.Estimate(m, resource.Demand{}, 1e6, -0.1); err == nil {
		t.Error("negative utilization accepted")
	}
}

// TestEmbeddedEnergyArgument: the Section 1 scenario — even at a
// modest speedup, the FPGA run wins on energy by a wide margin against
// a ~100 W server CPU.
func TestEmbeddedEnergyArgument(t *testing.T) {
	params := paper.PDF1DParams()
	pr := core.MustPredict(params)
	m, err := power.ForDevice(resource.VirtexLX100)
	if err != nil {
		t.Fatal(err)
	}
	demand, err := pdf1d.Design().ResourceDemand(resource.VirtexLX100, pdf1d.BatchElements, false)
	if err != nil {
		t.Fatal(err)
	}
	fpgaW, err := power.Estimate(m, demand, params.Comp.ClockHz, pr.UtilCompSB)
	if err != nil {
		t.Fatal(err)
	}
	const xeonW = 103 // 3.2 GHz Xeon-era TDP
	cmp, err := power.CompareEnergy(fpgaW, pr.TRCSingle, xeonW, params.Soft.TSoft)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.EnergyRatio < 50 {
		t.Errorf("energy ratio = %.0f, expected a decisive FPGA win", cmp.EnergyRatio)
	}
	// Identity: ratio = speedup x power ratio.
	want := pr.SpeedupSingle * (xeonW / fpgaW)
	if math.Abs(cmp.EnergyRatio-want) > 1e-9*want {
		t.Errorf("ratio %.2f != speedup x power ratio %.2f", cmp.EnergyRatio, want)
	}
}

func TestCompareEnergyErrors(t *testing.T) {
	for _, bad := range [][4]float64{
		{0, 1, 1, 1}, {1, 0, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, 0},
	} {
		if _, err := power.CompareEnergy(bad[0], bad[1], bad[2], bad[3]); err == nil {
			t.Errorf("inputs %v accepted", bad)
		}
	}
}
