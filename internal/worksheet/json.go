package worksheet

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/chrec/rat/internal/core"
)

// JSON form of the worksheet, for toolchains that prefer structured
// interchange over the human-oriented text format. Field names and
// units mirror the text format exactly (MB/s, MHz, seconds).

// Doc is the exported name of the JSON document form, for packages
// (the HTTP API) that embed a worksheet inside a larger message.
type Doc = jsonWorksheet

// DocFromParams converts Parameters to the JSON document form.
func DocFromParams(p core.Parameters) Doc { return fromParams(p) }

// Params converts the document back to Parameters without validating;
// callers that accept untrusted documents must call Validate.
func (doc Doc) Params() core.Parameters { return doc.toParams() }

type jsonWorksheet struct {
	Name    string   `json:"name,omitempty"`
	Dataset jsonData `json:"dataset"`
	Comm    jsonComm `json:"communication"`
	Comp    jsonComp `json:"computation"`
	Soft    jsonSoft `json:"software"`
}

type jsonData struct {
	ElementsIn      int64   `json:"elements_in"`
	ElementsOut     int64   `json:"elements_out"`
	BytesPerElement float64 `json:"bytes_per_element"`
}

type jsonComm struct {
	IdealThroughputMBps float64 `json:"ideal_throughput_mbps"`
	AlphaWrite          float64 `json:"alpha_write"`
	AlphaRead           float64 `json:"alpha_read"`
}

type jsonComp struct {
	OpsPerElement  float64 `json:"ops_per_element"`
	ThroughputProc float64 `json:"throughput_proc"`
	ClockMHz       float64 `json:"clock_mhz"`
}

type jsonSoft struct {
	TSoftSeconds float64 `json:"tsoft_seconds"`
	Iterations   int64   `json:"iterations"`
}

// fromParams converts Parameters to the JSON document form.
func fromParams(p core.Parameters) jsonWorksheet {
	return jsonWorksheet{
		Name: p.Name,
		Dataset: jsonData{
			ElementsIn:      p.Dataset.ElementsIn,
			ElementsOut:     p.Dataset.ElementsOut,
			BytesPerElement: p.Dataset.BytesPerElement,
		},
		Comm: jsonComm{
			IdealThroughputMBps: p.Comm.IdealThroughput / 1e6,
			AlphaWrite:          p.Comm.AlphaWrite,
			AlphaRead:           p.Comm.AlphaRead,
		},
		Comp: jsonComp{
			OpsPerElement:  p.Comp.OpsPerElement,
			ThroughputProc: p.Comp.ThroughputProc,
			ClockMHz:       p.Comp.ClockHz / 1e6,
		},
		Soft: jsonSoft{
			TSoftSeconds: p.Soft.TSoft,
			Iterations:   p.Soft.Iterations,
		},
	}
}

// toParams converts the JSON document form back to Parameters
// (unvalidated; callers validate).
func (doc jsonWorksheet) toParams() core.Parameters {
	return core.Parameters{
		Name: doc.Name,
		Dataset: core.DatasetParams{
			ElementsIn:      doc.Dataset.ElementsIn,
			ElementsOut:     doc.Dataset.ElementsOut,
			BytesPerElement: doc.Dataset.BytesPerElement,
		},
		Comm: core.CommParams{
			IdealThroughput: core.MBps(doc.Comm.IdealThroughputMBps),
			AlphaWrite:      doc.Comm.AlphaWrite,
			AlphaRead:       doc.Comm.AlphaRead,
		},
		Comp: core.CompParams{
			OpsPerElement:  doc.Comp.OpsPerElement,
			ThroughputProc: doc.Comp.ThroughputProc,
			ClockHz:        core.MHz(doc.Comp.ClockMHz),
		},
		Soft: core.SoftwareParams{
			TSoft:      doc.Soft.TSoftSeconds,
			Iterations: doc.Soft.Iterations,
		},
	}
}

// EncodeJSON writes the worksheet as indented JSON.
func EncodeJSON(w io.Writer, p core.Parameters) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fromParams(p))
}

// DecodeJSON parses a JSON worksheet, rejecting unknown fields (a
// misspelled parameter silently defaulting to zero would make a
// prediction quietly wrong), and validates the result.
func DecodeJSON(r io.Reader) (core.Parameters, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc jsonWorksheet
	if err := dec.Decode(&doc); err != nil {
		return core.Parameters{}, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	p := doc.toParams()
	if err := p.Validate(); err != nil {
		return core.Parameters{}, err
	}
	return p, nil
}
