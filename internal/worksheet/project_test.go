package worksheet_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/worksheet"
)

func sampleStages() []core.Stage {
	return []core.Stage{
		{Name: "pdf-1d", Params: paper.PDF1DParams(), Buffering: core.SingleBuffered},
		{Name: "pdf-2d", Params: paper.PDF2DParams(), Buffering: core.DoubleBuffered},
	}
}

func TestProjectRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := worksheet.EncodeProject(&buf, "pdf suite", sampleStages()); err != nil {
		t.Fatal(err)
	}
	name, stages, err := worksheet.DecodeProject(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "pdf suite" {
		t.Errorf("name = %q", name)
	}
	want := sampleStages()
	if len(stages) != len(want) {
		t.Fatalf("stage count %d", len(stages))
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Errorf("stage %d:\n got %+v\nwant %+v", i, stages[i], want[i])
		}
	}
	// The decoded project analyzes cleanly.
	res, err := core.PredictComposite(stages)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bottleneck().Stage.Name != "pdf-2d" {
		t.Errorf("bottleneck = %q", res.Bottleneck().Stage.Name)
	}
}

func TestProjectDefaultsAndNames(t *testing.T) {
	doc := `{
	  "stages": [
	    {"name": "only", "worksheet": {
	      "dataset": {"elements_in": 512, "elements_out": 1, "bytes_per_element": 4},
	      "communication": {"ideal_throughput_mbps": 1000, "alpha_write": 0.37, "alpha_read": 0.16},
	      "computation": {"ops_per_element": 768, "throughput_proc": 20, "clock_mhz": 150},
	      "software": {"tsoft_seconds": 0.578, "iterations": 400}
	    }}
	  ]
	}`
	_, stages, err := worksheet.DecodeProject(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if stages[0].Buffering != core.SingleBuffered {
		t.Error("missing buffering must default to single")
	}
	if stages[0].Params.Name != "only" {
		t.Errorf("unnamed worksheet should inherit the stage name, got %q", stages[0].Params.Name)
	}
}

func TestProjectErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"empty stages", `{"stages": []}`},
		{"bad buffering", `{"stages": [{"name": "x", "buffering": "triple", "worksheet": {
			"dataset": {"elements_in": 1, "elements_out": 0, "bytes_per_element": 4},
			"communication": {"ideal_throughput_mbps": 1, "alpha_write": 0.5, "alpha_read": 0.5},
			"computation": {"ops_per_element": 1, "throughput_proc": 1, "clock_mhz": 100},
			"software": {"tsoft_seconds": 1, "iterations": 1}}}]}`},
		{"unknown field", `{"flavour": 1, "stages": []}`},
		{"truncated", `{"stages": [`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := worksheet.DecodeProject(strings.NewReader(tc.doc)); !errors.Is(err, worksheet.ErrSyntax) {
				t.Errorf("error = %v, want ErrSyntax", err)
			}
		})
	}
	// Semantically invalid stage surfaces validation, not syntax.
	bad := `{"stages": [{"name": "x", "worksheet": {
		"dataset": {"elements_in": 0, "elements_out": 0, "bytes_per_element": 0},
		"communication": {"ideal_throughput_mbps": 0, "alpha_write": 0, "alpha_read": 0},
		"computation": {"ops_per_element": 0, "throughput_proc": 0, "clock_mhz": 0},
		"software": {"tsoft_seconds": 0, "iterations": 0}}}]}`
	if _, _, err := worksheet.DecodeProject(strings.NewReader(bad)); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("error = %v, want ErrInvalidParameters", err)
	}
}

func TestEncodeProjectWriterError(t *testing.T) {
	if err := worksheet.EncodeProject(failWriter{}, "x", sampleStages()); err == nil {
		t.Error("writer error swallowed")
	}
}
