package worksheet_test

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/iotest"
	"testing/quick"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/worksheet"
)

func TestRoundTripCanonicalWorksheets(t *testing.T) {
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		t.Run(string(c), func(t *testing.T) {
			want := paper.Params(c)
			text := worksheet.EncodeString(want)
			got, err := worksheet.DecodeString(text)
			if err != nil {
				t.Fatalf("decode: %v\n%s", err, text)
			}
			if got != want {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestDecodeTable2Literal(t *testing.T) {
	// The worksheet exactly as a user would type it from Table 2.
	text := `
name = 1-D PDF estimation

[dataset]
elements_in       = 512
elements_out      = 1
bytes_per_element = 4

[communication]
ideal_throughput_mbps = 1000
alpha_write           = 0.37
alpha_read            = 0.16

[computation]
ops_per_element = 768   # 256 bins x 3 ops
throughput_proc = 20
clock_mhz       = 150

[software]
tsoft_seconds = 0.578
iterations    = 400
`
	got, err := worksheet.DecodeString(text)
	if err != nil {
		t.Fatal(err)
	}
	if got != paper.PDF1DParams() {
		t.Errorf("decoded %+v\nwant %+v", got, paper.PDF1DParams())
	}
	// And it predicts the walkthrough's numbers.
	pr := core.MustPredict(got)
	if pr.SpeedupSingle < 10.5 || pr.SpeedupSingle > 10.7 {
		t.Errorf("speedup from decoded worksheet = %.2f, want ~10.6", pr.SpeedupSingle)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"missing equals", "[dataset]\nelements_in 512\n"},
		{"unknown key", "[dataset]\nelements = 512\n"},
		{"unknown section key", "[nonsense]\nelements_in = 512\n"},
		{"bad integer", "[dataset]\nelements_in = twelve\n"},
		{"bad float", "[communication]\nalpha_write = high\n"},
		{"unterminated section", "[dataset\nelements_in = 512\n"},
		{"duplicate key", "[dataset]\nelements_in = 512\nelements_in = 512\n"},
		{"top-level unknown", "flavour = vanilla\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := worksheet.DecodeString(tc.text); !errors.Is(err, worksheet.ErrSyntax) {
				t.Errorf("error = %v, want ErrSyntax", err)
			}
		})
	}
}

func TestDecodeValidatesSemantics(t *testing.T) {
	// Syntactically fine, semantically empty: validation must fire.
	_, err := worksheet.DecodeString("name = incomplete\n")
	if !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("error = %v, want ErrInvalidParameters", err)
	}
	// Alpha out of range.
	text := worksheet.EncodeString(paper.PDF1DParams())
	text = strings.Replace(text, "alpha_write           = 0.37", "alpha_write = 1.5", 1)
	if _, err := worksheet.DecodeString(text); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("error = %v, want ErrInvalidParameters", err)
	}
}

func TestDecodePropagatesReadErrors(t *testing.T) {
	_, err := worksheet.Decode(iotest.ErrReader(errors.New("disk on fire")))
	if err == nil || errors.Is(err, worksheet.ErrSyntax) {
		t.Errorf("reader error mangled: %v", err)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	text := "# full-line comment\n\n" + worksheet.EncodeString(paper.MDParams()) + "\n# trailing\n"
	got, err := worksheet.DecodeString(text)
	if err != nil {
		t.Fatal(err)
	}
	if got != paper.MDParams() {
		t.Error("comments disturbed decoding")
	}
}

func TestEncodeWriterError(t *testing.T) {
	w := &failWriter{}
	if err := worksheet.Encode(w, paper.PDF1DParams()); err == nil {
		t.Error("Encode must propagate writer errors")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("closed") }

// TestPropertyRoundTripRandomWorksheets: both codecs reproduce any
// valid parameter set exactly (%g prints shortest-round-trip floats).
func TestPropertyRoundTripRandomWorksheets(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(core.Parameters{
				Name: "design-" + strconv.Itoa(r.Intn(1000)),
				Dataset: core.DatasetParams{
					ElementsIn:      1 + r.Int63n(1<<30),
					ElementsOut:     r.Int63n(1 << 30),
					BytesPerElement: 1 + 1000*r.Float64(),
				},
				Comm: core.CommParams{
					IdealThroughput: core.MBps(1 + 100000*r.Float64()),
					AlphaWrite:      0.001 + 0.999*r.Float64(),
					AlphaRead:       0.001 + 0.999*r.Float64(),
				},
				Comp: core.CompParams{
					OpsPerElement:  1 + 1e9*r.Float64(),
					ThroughputProc: 0.01 + 1000*r.Float64(),
					ClockHz:        core.MHz(1 + 2000*r.Float64()),
				},
				Soft: core.SoftwareParams{
					TSoft:      10000 * r.Float64(),
					Iterations: 1 + r.Int63n(1<<40),
				},
			})
		},
	}
	f := func(p core.Parameters) bool {
		text, err := worksheet.DecodeString(worksheet.EncodeString(p))
		if err != nil || text != p {
			return false
		}
		var buf bytes.Buffer
		if err := worksheet.EncodeJSON(&buf, p); err != nil {
			return false
		}
		js, err := worksheet.DecodeJSON(&buf)
		return err == nil && js == p
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
