package worksheet_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/worksheet"
)

func TestJSONRoundTrip(t *testing.T) {
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		t.Run(string(c), func(t *testing.T) {
			want := paper.Params(c)
			var buf bytes.Buffer
			if err := worksheet.EncodeJSON(&buf, want); err != nil {
				t.Fatal(err)
			}
			got, err := worksheet.DecodeJSON(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestJSONLiteral(t *testing.T) {
	doc := `{
	  "name": "1-D PDF estimation",
	  "dataset": {"elements_in": 512, "elements_out": 1, "bytes_per_element": 4},
	  "communication": {"ideal_throughput_mbps": 1000, "alpha_write": 0.37, "alpha_read": 0.16},
	  "computation": {"ops_per_element": 768, "throughput_proc": 20, "clock_mhz": 150},
	  "software": {"tsoft_seconds": 0.578, "iterations": 400}
	}`
	got, err := worksheet.DecodeJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got != paper.PDF1DParams() {
		t.Errorf("decoded %+v", got)
	}
}

func TestJSONRejectsUnknownFields(t *testing.T) {
	doc := `{
	  "dataset": {"elements_in": 512, "elements_out": 1, "bytes_per_element": 4, "flavour": 3},
	  "communication": {"ideal_throughput_mbps": 1000, "alpha_write": 0.37, "alpha_read": 0.16},
	  "computation": {"ops_per_element": 768, "throughput_proc": 20, "clock_mhz": 150},
	  "software": {"tsoft_seconds": 0.578, "iterations": 400}
	}`
	if _, err := worksheet.DecodeJSON(strings.NewReader(doc)); !errors.Is(err, worksheet.ErrSyntax) {
		t.Errorf("unknown field accepted: %v", err)
	}
}

func TestJSONValidates(t *testing.T) {
	doc := `{"dataset": {"elements_in": 0, "elements_out": 0, "bytes_per_element": 0},
	  "communication": {"ideal_throughput_mbps": 0, "alpha_write": 0, "alpha_read": 0},
	  "computation": {"ops_per_element": 0, "throughput_proc": 0, "clock_mhz": 0},
	  "software": {"tsoft_seconds": 0, "iterations": 0}}`
	if _, err := worksheet.DecodeJSON(strings.NewReader(doc)); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("invalid worksheet accepted: %v", err)
	}
	if _, err := worksheet.DecodeJSON(strings.NewReader("{")); !errors.Is(err, worksheet.ErrSyntax) {
		t.Error("truncated JSON accepted")
	}
}

func TestJSONEncodeWriterError(t *testing.T) {
	if err := worksheet.EncodeJSON(failWriter{}, paper.PDF1DParams()); err == nil {
		t.Error("writer error swallowed")
	}
}
