// Package worksheet reads and writes RAT worksheets: the input
// parameter sheet of Table 1, as a small sectioned key = value text
// format. Section 4 of the paper describes RAT in exactly these terms
// — "a worksheet can be constructed based upon Equations (1) through
// (11); users simply provide the input parameters and the resulting
// performance values are returned" — and this package is that
// worksheet's file form, consumed by the rat command-line tool.
//
// The format is line-oriented: '#' starts a comment, '[section]'
// switches sections, and 'key = value' assigns. Units follow the
// paper's customary ones (MB/s, MHz, seconds); values convert to SI on
// load. A worksheet looks like:
//
//	name = 1-D PDF estimation
//
//	[dataset]
//	elements_in       = 512
//	elements_out      = 1
//	bytes_per_element = 4
//
//	[communication]
//	ideal_throughput_mbps = 1000
//	alpha_write           = 0.37
//	alpha_read            = 0.16
//
//	[computation]
//	ops_per_element = 768
//	throughput_proc = 20
//	clock_mhz       = 150
//
//	[software]
//	tsoft_seconds = 0.578
//	iterations    = 400
package worksheet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/chrec/rat/internal/core"
)

// ErrSyntax tags malformed worksheet input.
var ErrSyntax = errors.New("worksheet: syntax error")

// Decode parses a worksheet into RAT parameters, validating the result
// with core.Parameters.Validate.
func Decode(r io.Reader) (core.Parameters, error) {
	var p core.Parameters
	seen := map[string]bool{}
	section := ""
	sc := bufio.NewScanner(r)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "[") {
			if !strings.HasSuffix(text, "]") {
				return p, fmt.Errorf("%w: line %d: unterminated section header %q", ErrSyntax, line, text)
			}
			section = strings.TrimSpace(text[1 : len(text)-1])
			continue
		}
		key, value, ok := strings.Cut(text, "=")
		if !ok {
			return p, fmt.Errorf("%w: line %d: expected key = value, got %q", ErrSyntax, line, text)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		full := key
		if section != "" {
			full = section + "." + key
		}
		if seen[full] {
			return p, fmt.Errorf("%w: line %d: duplicate key %q", ErrSyntax, line, full)
		}
		seen[full] = true
		if err := assign(&p, full, value); err != nil {
			return p, fmt.Errorf("%w: line %d: %v", ErrSyntax, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return p, err
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// DecodeString is Decode over an in-memory worksheet.
func DecodeString(s string) (core.Parameters, error) {
	return Decode(strings.NewReader(s))
}

func assign(p *core.Parameters, key, value string) error {
	parseF := func() (float64, error) {
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return 0, fmt.Errorf("key %q: %q is not a number", key, value)
		}
		return v, nil
	}
	parseI := func() (int64, error) {
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("key %q: %q is not an integer", key, value)
		}
		return v, nil
	}
	switch key {
	case "name":
		p.Name = value
		return nil
	case "dataset.elements_in":
		v, err := parseI()
		p.Dataset.ElementsIn = v
		return err
	case "dataset.elements_out":
		v, err := parseI()
		p.Dataset.ElementsOut = v
		return err
	case "dataset.bytes_per_element":
		v, err := parseF()
		p.Dataset.BytesPerElement = v
		return err
	case "communication.ideal_throughput_mbps":
		v, err := parseF()
		p.Comm.IdealThroughput = core.MBps(v)
		return err
	case "communication.alpha_write":
		v, err := parseF()
		p.Comm.AlphaWrite = v
		return err
	case "communication.alpha_read":
		v, err := parseF()
		p.Comm.AlphaRead = v
		return err
	case "computation.ops_per_element":
		v, err := parseF()
		p.Comp.OpsPerElement = v
		return err
	case "computation.throughput_proc":
		v, err := parseF()
		p.Comp.ThroughputProc = v
		return err
	case "computation.clock_mhz":
		v, err := parseF()
		p.Comp.ClockHz = core.MHz(v)
		return err
	case "software.tsoft_seconds":
		v, err := parseF()
		p.Soft.TSoft = v
		return err
	case "software.iterations":
		v, err := parseI()
		p.Soft.Iterations = v
		return err
	default:
		return fmt.Errorf("unknown key %q", key)
	}
}

// Encode renders parameters as a worksheet, the inverse of Decode.
func Encode(w io.Writer, p core.Parameters) error {
	_, err := fmt.Fprintf(w, `# RAT worksheet (Table 1 input parameters)
name = %s

[dataset]
elements_in       = %d
elements_out      = %d
bytes_per_element = %g

[communication]
ideal_throughput_mbps = %g
alpha_write           = %g
alpha_read            = %g

[computation]
ops_per_element = %g
throughput_proc = %g
clock_mhz       = %g

[software]
tsoft_seconds = %g
iterations    = %d
`,
		p.Name,
		p.Dataset.ElementsIn, p.Dataset.ElementsOut, p.Dataset.BytesPerElement,
		p.Comm.IdealThroughput/1e6, p.Comm.AlphaWrite, p.Comm.AlphaRead,
		p.Comp.OpsPerElement, p.Comp.ThroughputProc, p.Comp.ClockHz/1e6,
		p.Soft.TSoft, p.Soft.Iterations)
	return err
}

// EncodeString is Encode into a string.
func EncodeString(p core.Parameters) string {
	var b strings.Builder
	if err := Encode(&b, p); err != nil {
		//rat:allow-panic strings.Builder writes cannot fail
		panic(err)
	}
	return b.String()
}
