package worksheet

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/chrec/rat/internal/core"
)

// Project files carry the multi-kernel case Section 6 highlights:
// "the current methodology was designed to support applications
// involving several algorithms, each with their own separate RAT
// analysis". A project is a named sequence of stages, each a complete
// worksheet plus its buffering discipline, analyzed together by
// core.PredictComposite. Projects use the JSON form:
//
//	{
//	  "name": "video pipeline",
//	  "stages": [
//	    {"name": "filter", "buffering": "double", "worksheet": { ... }},
//	    {"name": "reduce", "worksheet": { ... }}
//	  ]
//	}

type jsonStage struct {
	Name      string        `json:"name"`
	Buffering string        `json:"buffering,omitempty"` // "single" (default) or "double"
	Worksheet jsonWorksheet `json:"worksheet"`
}

type jsonProject struct {
	Name   string      `json:"name,omitempty"`
	Stages []jsonStage `json:"stages"`
}

// DecodeProject parses a JSON project file into composite stages,
// validating every stage worksheet.
func DecodeProject(r io.Reader) (name string, stages []core.Stage, err error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc jsonProject
	if err := dec.Decode(&doc); err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	if len(doc.Stages) == 0 {
		return "", nil, fmt.Errorf("%w: project has no stages", ErrSyntax)
	}
	for i, st := range doc.Stages {
		var b core.Buffering
		switch st.Buffering {
		case "", "single":
			b = core.SingleBuffered
		case "double":
			b = core.DoubleBuffered
		default:
			return "", nil, fmt.Errorf("%w: stage %d (%s): unknown buffering %q (want single or double)",
				ErrSyntax, i, st.Name, st.Buffering)
		}
		p := st.Worksheet.toParams()
		if p.Name == "" {
			p.Name = st.Name
		}
		if err := p.Validate(); err != nil {
			return "", nil, fmt.Errorf("stage %d (%s): %w", i, st.Name, err)
		}
		stages = append(stages, core.Stage{Name: st.Name, Params: p, Buffering: b})
	}
	return doc.Name, stages, nil
}

// EncodeProject writes stages as an indented JSON project file.
func EncodeProject(w io.Writer, name string, stages []core.Stage) error {
	doc := jsonProject{Name: name}
	for _, st := range stages {
		b := "single"
		if st.Buffering == core.DoubleBuffered {
			b = "double"
		}
		doc.Stages = append(doc.Stages, jsonStage{
			Name:      st.Name,
			Buffering: b,
			Worksheet: fromParams(st.Params),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
