package resource

import (
	"fmt"
	"math"
)

// Demand is an estimated resource requirement in device units: logic
// cells, BRAM blocks and DSP units (in the target device's own DSP
// accounting unit).
type Demand struct {
	Logic int
	BRAM  int
	DSP   int
}

// Add returns the component-wise sum of two demands.
func (d Demand) Add(o Demand) Demand {
	return Demand{Logic: d.Logic + o.Logic, BRAM: d.BRAM + o.BRAM, DSP: d.DSP + o.DSP}
}

// Scale returns the demand multiplied by n (e.g. one pipeline's demand
// scaled by the replication factor).
func (d Demand) Scale(n int) Demand {
	return Demand{Logic: d.Logic * n, BRAM: d.BRAM * n, DSP: d.DSP * n}
}

// Get returns the demand for one resource kind.
func (d Demand) Get(k Kind) int {
	switch k {
	case Logic:
		return d.Logic
	case BRAM:
		return d.BRAM
	case DSP:
		return d.DSP
	default:
		return 0
	}
}

// OpClass names an operator for the per-device cost model.
type OpClass string

const (
	OpAdd  OpClass = "add"  // fixed-point add/subtract/compare
	OpMul  OpClass = "mul"  // fixed-point multiply
	OpMAC  OpClass = "mac"  // multiply-accumulate (multiply + wide add)
	OpDiv  OpClass = "div"  // fixed-point divide
	OpSqrt OpClass = "sqrt" // fixed-point square root
	OpLUT  OpClass = "lut"  // table lookup (function evaluation)
	OpReg  OpClass = "reg"  // register/storage stage

	// Floating-point classes; the width is the total format width
	// (32 for single precision). These are what make floating point
	// expensive on these families: the mantissa multiply plus
	// substantial normalization/alignment logic.
	OpFAdd OpClass = "fadd" // floating add/subtract
	OpFMul OpClass = "fmul" // floating multiply
	OpFDiv OpClass = "fdiv" // floating divide
)

// mantissaBits returns the significand width (with hidden bit) for a
// floating format of the given total width: 24 for float32, 53 for
// float64, and a 2/3 estimate for nonstandard widths.
func mantissaBits(width int) int {
	switch width {
	case 32:
		return 24
	case 64:
		return 53
	default:
		return width * 2 / 3
	}
}

// dspUnitsForMul returns how many of the device's DSP units one WxW
// multiply consumes.
//
// Xilinx Virtex-4 counts whole DSP48 slices; the paper's rule of thumb
// is one per 18-bit multiply and two per 32-bit fixed multiply
// (Section 3.3), i.e. ceil(W/18) cascaded partial products with the
// cross terms folded into fabric logic. Altera Stratix-II counts 9-bit
// elements: a WxW multiply occupies ceil(W/9)^2 elements (an 18x18
// takes 4, a 36x36 takes 16).
func dspUnitsForMul(dev Device, width int) int {
	if width <= 0 {
		return 0
	}
	switch dev.Vendor {
	case Altera:
		n := (width + 8) / 9
		return n * n
	default: // Xilinx-style whole-DSP accounting
		return (width + dev.NativeMulBits - 1) / dev.NativeMulBits
	}
}

// OperatorCost estimates the demand of one operator instance of the
// given class and bit width on the device. The numbers are deliberately
// first-order — the paper is explicit that pre-HDL logic counts are
// qualitative — but they reproduce the vendor-specific rules it quotes
// (an 18-bit multiply costs one Xilinx MAC unit, a 32-bit fixed
// multiply costs two).
func OperatorCost(dev Device, op OpClass, width int) (Demand, error) {
	if width <= 0 || width > 64 {
		return Demand{}, fmt.Errorf("resource: operator width %d out of range (1..64)", width)
	}
	w := width
	switch op {
	case OpAdd:
		// A W-bit adder/subtractor/comparator maps to roughly W/2
		// slices (two LUT+carry per slice) or W ALUTs.
		if dev.Vendor == Altera {
			return Demand{Logic: w}, nil
		}
		return Demand{Logic: (w + 1) / 2}, nil
	case OpMul, OpMAC:
		d := Demand{DSP: dspUnitsForMul(dev, w)}
		// Multi-unit multiplies need fabric logic to stitch
		// partial products; MACs add the accumulator register.
		if d.DSP > 1 {
			d.Logic = w
		}
		if op == OpMAC {
			d.Logic += w / 2
		}
		return d, nil
	case OpDiv, OpSqrt:
		// Iterative dividers/roots: about W^2/4 logic cells and no
		// DSPs for the radix-2 forms typical at these widths.
		return Demand{Logic: w * w / 4}, nil
	case OpLUT:
		// A table evaluation holds 2^k entries of W bits in BRAM;
		// assume 10 address bits (1K entries) per lookup unit.
		bits := int64(1024) * int64(w)
		blocks := int(math.Ceil(float64(bits) / float64(dev.BRAMBits)))
		return Demand{BRAM: blocks, Logic: w / 2}, nil
	case OpReg:
		// Pure registering: flip-flops live in logic cells.
		if dev.Vendor == Altera {
			return Demand{Logic: w}, nil
		}
		return Demand{Logic: (w + 1) / 2}, nil
	case OpFAdd:
		// Alignment shifter, wide add, normalize, round: several
		// hundred cells, no dedicated multipliers.
		if dev.Vendor == Altera {
			return Demand{Logic: 18 * w}, nil
		}
		return Demand{Logic: 9 * w}, nil
	case OpFMul:
		// Mantissa product on DSPs plus pack/unpack/normalize logic.
		d := Demand{DSP: dspUnitsForMul(dev, mantissaBits(w))}
		if dev.Vendor == Altera {
			d.Logic = 10 * w
		} else {
			d.Logic = 5 * w
		}
		return d, nil
	case OpFDiv:
		// Iterative mantissa divide plus the floating wrapper.
		m := mantissaBits(w)
		if dev.Vendor == Altera {
			return Demand{Logic: m*m/4 + 12*w}, nil
		}
		return Demand{Logic: m*m/4 + 6*w}, nil
	default:
		return Demand{}, fmt.Errorf("resource: unknown operator class %q", op)
	}
}

// BufferDemand returns the BRAM blocks needed to buffer the given
// number of bytes on chip (I/O staging, Section 3.3's "I/O buffers of
// a known size"). Zero bytes need zero blocks.
func BufferDemand(dev Device, bytes int64) Demand {
	if bytes <= 0 {
		return Demand{}
	}
	blocks := int((bytes*8 + dev.BRAMBits - 1) / dev.BRAMBits)
	return Demand{BRAM: blocks}
}

// WrapperDemand returns the fixed overhead of the vendor-provided
// platform wrapper that interfaces user designs to the host (the paper
// notes these "can consume a significant number of memories but the
// quantity is generally constant and independent of the application").
// The figures model the Nallatech and XtremeData wrappers of the case
// studies: a few percent of logic and a fixed block of BRAMs.
func WrapperDemand(dev Device) Demand {
	return Demand{
		Logic: dev.LogicCells / 25, // ~4% control/interface logic
		BRAM:  dev.BRAMBlocks / 16, // ~6% staging FIFOs
	}
}
