// Package resource implements the RAT resource test (Section 3.3 of the
// paper): estimating an application design's demand for the three
// resource classes that empirically bound FPGA designs — on-chip
// memory, dedicated multiplier/DSP blocks, and basic logic elements —
// and checking the estimate against a device's inventory.
//
// A priori resource counts are inexact (the paper is explicit that
// precise logic counts are "nearly impossible" before an HDL
// implementation exists), but they are still necessary to reject
// designs that are physically unrealizable, and they expose scaling
// trends: the molecular-dynamics case study's parallelism was
// ultimately limited by multiplier availability, which this analysis
// flags before any hardware coding.
package resource

import (
	"fmt"
	"sort"
)

// Kind names one of the three resource classes the test tracks.
type Kind string

const (
	// Logic is the basic logic-element class: slices on Xilinx
	// parts, ALUTs on Altera parts.
	Logic Kind = "logic"
	// BRAM is the on-chip block-memory class.
	BRAM Kind = "bram"
	// DSP is the dedicated multiplier/multiply-accumulate class.
	DSP Kind = "dsp"
)

// Vendor distinguishes device families with different operator cost
// models.
type Vendor string

const (
	Xilinx Vendor = "Xilinx"
	Altera Vendor = "Altera"
)

// Device is one FPGA part's resource inventory.
type Device struct {
	Name   string
	Family string
	Vendor Vendor

	// LogicCells is the number of basic logic elements and
	// LogicName what the vendor calls them ("Slices", "ALUTs").
	LogicCells int
	LogicName  string

	// BRAMBlocks is the number of block RAMs and BRAMBits the
	// usable bits per block.
	BRAMBlocks int
	BRAMBits   int64

	// DSPBlocks is the number of dedicated multiplier units in the
	// vendor's own accounting unit, named by DSPName: whole DSP48
	// slices on Virtex-4 ("48-bit DSPs"), 9-bit elements on
	// Stratix-II ("9-bit DSPs", eight per DSP block) — matching the
	// units the paper's Tables 4, 7 and 10 report.
	DSPBlocks int
	DSPName   string

	// NativeMulBits is the widest multiplication one DSP unit (or
	// unit group) performs natively: 18 on both studied families.
	NativeMulBits int
}

// Inventory returns the device's capacity for a resource kind.
func (d Device) Inventory(k Kind) int {
	switch k {
	case Logic:
		return d.LogicCells
	case BRAM:
		return d.BRAMBlocks
	case DSP:
		return d.DSPBlocks
	default:
		return 0
	}
}

// KindName returns the device-specific display name for a resource
// kind (e.g. "Slices" vs "ALUTs", "48-bit DSPs" vs "9-bit DSPs").
func (d Device) KindName(k Kind) string {
	switch k {
	case Logic:
		return d.LogicName
	case BRAM:
		return "BRAMs"
	case DSP:
		return d.DSPName
	default:
		return string(k)
	}
}

// The parts used by the paper's case studies, plus close family
// members useful for what-if studies. Inventories follow the vendor
// datasheets: Virtex-4 numbers from Xilinx DS112, Stratix-II from
// Altera's EP2S180 tables.
var (
	// VirtexLX100 is the Virtex-4 LX100 user FPGA of the Nallatech
	// H101-PCIXM card (both PDF case studies).
	VirtexLX100 = Device{
		Name: "Virtex-4 LX100", Family: "Virtex-4", Vendor: Xilinx,
		LogicCells: 49152, LogicName: "Slices",
		BRAMBlocks: 240, BRAMBits: 18 * 1024,
		DSPBlocks: 96, DSPName: "48-bit DSPs",
		NativeMulBits: 18,
	}
	// VirtexSX55 is the DSP-heavy Virtex-4 family member the paper
	// cites as evidence of multiplier demand (Section 3.3).
	VirtexSX55 = Device{
		Name: "Virtex-4 SX55", Family: "Virtex-4", Vendor: Xilinx,
		LogicCells: 24576, LogicName: "Slices",
		BRAMBlocks: 320, BRAMBits: 18 * 1024,
		DSPBlocks: 512, DSPName: "48-bit DSPs",
		NativeMulBits: 18,
	}
	// StratixEP2S180 is the user FPGA of the XtremeData XD1000
	// (molecular-dynamics case study). DSPs are counted in the
	// 9-bit elements of Table 10: 96 DSP blocks x 8 elements.
	// Stratix-II memory comes in three block sizes (M512, M4K and
	// the 512-kbit M-RAM); this model normalizes the part's ~9.4
	// Mbit of total block memory over its 768 M4K-class positions,
	// ~12 kbit per accounting block.
	StratixEP2S180 = Device{
		Name: "Stratix-II EP2S180", Family: "Stratix-II", Vendor: Altera,
		LogicCells: 143520, LogicName: "ALUTs",
		BRAMBlocks: 768, BRAMBits: 12 * 1024,
		DSPBlocks: 768, DSPName: "9-bit DSPs",
		NativeMulBits: 18,
	}
)

// Additional 2007-era family members, for what-if platform studies.
var (
	// VirtexLX60 is the LX100's smaller sibling, useful for asking
	// whether a design could ship on a cheaper card.
	VirtexLX60 = Device{
		Name: "Virtex-4 LX60", Family: "Virtex-4", Vendor: Xilinx,
		LogicCells: 26624, LogicName: "Slices",
		BRAMBlocks: 160, BRAMBits: 18 * 1024,
		DSPBlocks: 64, DSPName: "48-bit DSPs",
		NativeMulBits: 18,
	}
	// StratixEP2S90 is the EP2S180's mid-size sibling (DSPs again in
	// 9-bit elements; memory normalized as for the EP2S180).
	StratixEP2S90 = Device{
		Name: "Stratix-II EP2S90", Family: "Stratix-II", Vendor: Altera,
		LogicCells: 72768, LogicName: "ALUTs",
		BRAMBlocks: 408, BRAMBits: 11 * 1024,
		DSPBlocks: 384, DSPName: "9-bit DSPs",
		NativeMulBits: 18,
	}
)

// registry maps device names to inventories for Lookup.
var registry = map[string]Device{
	VirtexLX100.Name:    VirtexLX100,
	VirtexLX60.Name:     VirtexLX60,
	VirtexSX55.Name:     VirtexSX55,
	StratixEP2S180.Name: StratixEP2S180,
	StratixEP2S90.Name:  StratixEP2S90,
}

// Lookup returns a device from the built-in database by name.
func Lookup(name string) (Device, bool) {
	d, ok := registry[name]
	return d, ok
}

// Devices returns the database contents sorted by name.
func Devices() []Device {
	out := make([]Device, 0, len(registry))
	for _, d := range registry {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Register adds or replaces a device in the database, for users
// targeting parts the library does not ship. It rejects devices with
// empty names or non-positive inventories.
func Register(d Device) error {
	if d.Name == "" {
		return fmt.Errorf("resource: device with empty name")
	}
	if d.LogicCells <= 0 || d.BRAMBlocks <= 0 || d.DSPBlocks <= 0 || d.BRAMBits <= 0 {
		return fmt.Errorf("resource: device %q has non-positive inventory", d.Name)
	}
	registry[d.Name] = d
	return nil
}
