package resource_test

import (
	"strings"
	"testing"

	"github.com/chrec/rat/internal/resource"
)

func TestDeviceDatabase(t *testing.T) {
	lx, ok := resource.Lookup("Virtex-4 LX100")
	if !ok {
		t.Fatal("LX100 missing from database")
	}
	if lx.DSPBlocks != 96 || lx.BRAMBlocks != 240 || lx.LogicCells != 49152 {
		t.Errorf("LX100 inventory wrong: %+v", lx)
	}
	if lx.KindName(resource.Logic) != "Slices" || lx.KindName(resource.DSP) != "48-bit DSPs" {
		t.Errorf("LX100 naming wrong")
	}
	s2, ok := resource.Lookup("Stratix-II EP2S180")
	if !ok {
		t.Fatal("EP2S180 missing")
	}
	if s2.DSPBlocks != 768 || s2.KindName(resource.DSP) != "9-bit DSPs" || s2.KindName(resource.Logic) != "ALUTs" {
		t.Errorf("EP2S180 wrong: %+v", s2)
	}
	if _, ok := resource.Lookup("imaginary"); ok {
		t.Error("Lookup invented a device")
	}
	devs := resource.Devices()
	if len(devs) < 3 {
		t.Errorf("database has %d devices, want >= 3", len(devs))
	}
	for i := 1; i < len(devs); i++ {
		if devs[i-1].Name >= devs[i].Name {
			t.Error("Devices() not sorted")
		}
	}
}

func TestRegister(t *testing.T) {
	custom := resource.VirtexLX100
	custom.Name = "Test-Part-1"
	if err := resource.Register(custom); err != nil {
		t.Fatal(err)
	}
	if _, ok := resource.Lookup("Test-Part-1"); !ok {
		t.Error("registered device not found")
	}
	if err := resource.Register(resource.Device{}); err == nil {
		t.Error("empty device accepted")
	}
	bad := custom
	bad.Name = "Test-Part-2"
	bad.DSPBlocks = 0
	if err := resource.Register(bad); err == nil {
		t.Error("zero-inventory device accepted")
	}
}

func TestInventoryAndDemandAccessors(t *testing.T) {
	d := resource.Demand{Logic: 10, BRAM: 20, DSP: 30}
	if d.Get(resource.Logic) != 10 || d.Get(resource.BRAM) != 20 || d.Get(resource.DSP) != 30 {
		t.Error("Demand.Get broken")
	}
	if d.Get(resource.Kind("bogus")) != 0 {
		t.Error("unknown kind should read zero")
	}
	if resource.VirtexLX100.Inventory(resource.Kind("bogus")) != 0 {
		t.Error("unknown inventory should read zero")
	}
	sum := d.Add(resource.Demand{Logic: 1, BRAM: 2, DSP: 3})
	if sum != (resource.Demand{Logic: 11, BRAM: 22, DSP: 33}) {
		t.Errorf("Add = %+v", sum)
	}
	if d.Scale(2) != (resource.Demand{Logic: 20, BRAM: 40, DSP: 60}) {
		t.Errorf("Scale = %+v", d.Scale(2))
	}
}

// TestOperatorCostPaperRules: the vendor-specific rules the paper
// quotes — one Xilinx MAC per 18-bit multiply, two per 32-bit; Altera
// 9-bit elements go as ceil(w/9)^2.
func TestOperatorCostPaperRules(t *testing.T) {
	lx := resource.VirtexLX100
	c18, err := resource.OperatorCost(lx, resource.OpMul, 18)
	if err != nil || c18.DSP != 1 {
		t.Errorf("18-bit mul on V4: %+v, %v; want 1 DSP", c18, err)
	}
	c32, err := resource.OperatorCost(lx, resource.OpMul, 32)
	if err != nil || c32.DSP != 2 {
		t.Errorf("32-bit mul on V4: %+v, %v; want 2 DSPs (the paper's rule)", c32, err)
	}
	s2 := resource.StratixEP2S180
	a18, err := resource.OperatorCost(s2, resource.OpMul, 18)
	if err != nil || a18.DSP != 4 {
		t.Errorf("18-bit mul on S2: %+v, %v; want 4 nine-bit elements", a18, err)
	}
	a9, err := resource.OperatorCost(s2, resource.OpMul, 9)
	if err != nil || a9.DSP != 1 {
		t.Errorf("9-bit mul on S2: %+v, %v; want 1 element", a9, err)
	}
	a32, err := resource.OperatorCost(s2, resource.OpMul, 32)
	if err != nil || a32.DSP != 16 {
		t.Errorf("32-bit mul on S2: %+v, %v; want 16 elements", a32, err)
	}
}

func TestOperatorCostClasses(t *testing.T) {
	lx := resource.VirtexLX100
	add, err := resource.OperatorCost(lx, resource.OpAdd, 18)
	if err != nil || add.DSP != 0 || add.Logic != 9 {
		t.Errorf("18-bit add: %+v, %v", add, err)
	}
	mac, err := resource.OperatorCost(lx, resource.OpMAC, 18)
	if err != nil || mac.DSP != 1 || mac.Logic < add.Logic {
		t.Errorf("18-bit MAC: %+v, %v", mac, err)
	}
	div, err := resource.OperatorCost(lx, resource.OpDiv, 32)
	if err != nil || div.Logic != 256 {
		t.Errorf("32-bit div: %+v, %v", div, err)
	}
	lut, err := resource.OperatorCost(lx, resource.OpLUT, 18)
	if err != nil || lut.BRAM != 1 {
		t.Errorf("18-bit LUT: %+v, %v", lut, err)
	}
	reg, err := resource.OperatorCost(resource.StratixEP2S180, resource.OpReg, 32)
	if err != nil || reg.Logic != 32 {
		t.Errorf("32-bit reg on Altera: %+v, %v", reg, err)
	}
	if _, err := resource.OperatorCost(lx, resource.OpClass("fly"), 18); err == nil {
		t.Error("unknown class accepted")
	}
	// Floating-point classes: the mantissa product drives DSP cost
	// (24-bit mantissa -> 2 DSP48s on Xilinx, 9 nine-bit elements on
	// Altera) and every class carries substantial wrapper logic.
	fmul, err := resource.OperatorCost(lx, resource.OpFMul, 32)
	if err != nil || fmul.DSP != 2 || fmul.Logic < 100 {
		t.Errorf("fmul32 on V4: %+v, %v", fmul, err)
	}
	fmulA, err := resource.OperatorCost(resource.StratixEP2S180, resource.OpFMul, 32)
	if err != nil || fmulA.DSP != 9 {
		t.Errorf("fmul32 on S2: %+v, %v (24-bit mantissa = 9 nine-bit elements)", fmulA, err)
	}
	fadd, err := resource.OperatorCost(lx, resource.OpFAdd, 32)
	if err != nil || fadd.DSP != 0 || fadd.Logic < 200 {
		t.Errorf("fadd32: %+v, %v", fadd, err)
	}
	fdiv, err := resource.OperatorCost(lx, resource.OpFDiv, 32)
	if err != nil || fdiv.Logic <= fadd.Logic {
		t.Errorf("fdiv32: %+v, %v (must outweigh fadd)", fdiv, err)
	}
	f64, err := resource.OperatorCost(lx, resource.OpFMul, 64)
	if err != nil || f64.DSP <= fmul.DSP {
		t.Errorf("fmul64: %+v, %v (53-bit mantissa must cost more)", f64, err)
	}
	if _, err := resource.OperatorCost(lx, resource.OpMul, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := resource.OperatorCost(lx, resource.OpMul, 65); err == nil {
		t.Error("width 65 accepted")
	}
}

func TestBufferDemand(t *testing.T) {
	lx := resource.VirtexLX100 // 18 kbit blocks
	if got := resource.BufferDemand(lx, 0); got.BRAM != 0 {
		t.Errorf("zero bytes: %+v", got)
	}
	if got := resource.BufferDemand(lx, 2048); got.BRAM != 1 { // 16 kbit
		t.Errorf("2 KB: %+v, want 1 block", got)
	}
	if got := resource.BufferDemand(lx, 2305); got.BRAM != 2 { // just over one block
		t.Errorf("18 kbit + 8 bits: %+v, want 2 blocks", got)
	}
}

func TestCheckAndWarnings(t *testing.T) {
	lx := resource.VirtexLX100
	ok := resource.Check(lx, resource.Demand{Logic: 100, BRAM: 10, DSP: 5})
	if !ok.Fits || len(ok.Warnings) != 0 {
		t.Errorf("modest design: %+v", ok)
	}
	if ok.Limiting != resource.DSP && ok.Limiting != resource.BRAM {
		// 5/96=5.2%, 10/240=4.2%, 100/49152=0.2% -> DSP leads.
	}
	if ok.Limiting != resource.DSP {
		t.Errorf("limiting = %v, want DSP", ok.Limiting)
	}

	over := resource.Check(lx, resource.Demand{DSP: 100, BRAM: 10, Logic: 100})
	if over.Fits {
		t.Error("DSP overflow must not fit")
	}
	if len(over.Warnings) == 0 || !strings.Contains(over.Warnings[0], "exceeds") {
		t.Errorf("warnings = %v", over.Warnings)
	}

	tight := resource.Check(lx, resource.Demand{DSP: 92, BRAM: 10, Logic: 100})
	if !tight.Fits {
		t.Error("95% DSP fits")
	}
	found := false
	for _, w := range tight.Warnings {
		if strings.Contains(w, "little headroom") {
			found = true
		}
	}
	if !found {
		t.Errorf("95%% utilization should warn: %v", tight.Warnings)
	}

	strained := resource.Check(lx, resource.Demand{Logic: 45000, BRAM: 1, DSP: 1})
	found = false
	for _, w := range strained.Warnings {
		if strings.Contains(w, "routing strain") {
			found = true
		}
	}
	if !found {
		t.Errorf("91%% logic should warn about routing: %v", strained.Warnings)
	}
}

func TestReportUtilization(t *testing.T) {
	rep := resource.Check(resource.VirtexLX100, resource.Demand{DSP: 48, BRAM: 24, Logic: 4915})
	if got := rep.Utilization(resource.DSP); got != 0.5 {
		t.Errorf("DSP util = %g", got)
	}
	if got := rep.Utilization(resource.BRAM); got != 0.1 {
		t.Errorf("BRAM util = %g", got)
	}
	if got := rep.Utilization(resource.Kind("bogus")); got != 0 {
		t.Errorf("unknown kind util = %g", got)
	}
}

func TestMaxReplicas(t *testing.T) {
	lx := resource.VirtexLX100
	per := resource.Demand{DSP: 10, BRAM: 5, Logic: 100}
	fixed := resource.Demand{DSP: 6, BRAM: 0, Logic: 0}
	// DSP budget: 96 - 6 = 90 -> 9 replicas.
	if n := resource.MaxReplicas(lx, fixed, per); n != 9 {
		t.Errorf("MaxReplicas = %d, want 9", n)
	}
	// Nothing fits when fixed overhead already overflows.
	if n := resource.MaxReplicas(lx, resource.Demand{DSP: 97}, per); n != 0 {
		t.Errorf("overflowing fixed: %d, want 0", n)
	}
	// Guard against zero per-replica demand.
	if n := resource.MaxReplicas(lx, resource.Demand{}, resource.Demand{}); n <= 1<<20 {
		t.Errorf("zero-demand guard returned %d", n)
	}
}
