package resource

import "fmt"

// RoutingStrainThreshold is the logic utilization above which the
// report warns about routability: the paper observes that "routing
// strain increases exponentially as logic element utilization
// approaches maximum" and that filling the whole FPGA is often unwise.
const RoutingStrainThreshold = 0.80

// Line is one row of a resource report: demand versus inventory for
// one resource kind.
type Line struct {
	Kind        Kind
	DisplayName string
	Demand      int
	Inventory   int
	Utilization float64 // Demand / Inventory
}

// Report is the outcome of the resource test for one design on one
// device.
type Report struct {
	Device Device
	Lines  []Line

	// Fits is true when every resource class fits the inventory.
	Fits bool
	// Limiting is the resource kind with the highest utilization —
	// the scalability bound the paper's MD study hit (multipliers).
	Limiting Kind
	// Warnings carries soft findings: routing strain near full
	// logic, classes above 90%, and similar.
	Warnings []string
}

// Check runs the resource test: total demand against the device
// inventory, per-class utilization, fit verdict and warnings.
func Check(dev Device, total Demand) Report {
	rep := Report{Device: dev, Fits: true}
	worst := -1.0
	for _, k := range []Kind{DSP, BRAM, Logic} {
		inv := dev.Inventory(k)
		dem := total.Get(k)
		util := 0.0
		if inv > 0 {
			util = float64(dem) / float64(inv)
		}
		rep.Lines = append(rep.Lines, Line{
			Kind: k, DisplayName: dev.KindName(k),
			Demand: dem, Inventory: inv, Utilization: util,
		})
		if util > worst {
			worst = util
			rep.Limiting = k
		}
		if dem > inv {
			rep.Fits = false
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("%s demand %d exceeds the %d available on %s",
					dev.KindName(k), dem, inv, dev.Name))
		} else if util > 0.9 {
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("%s utilization %.0f%% leaves little headroom", dev.KindName(k), util*100))
		}
	}
	if logicUtil := rep.Utilization(Logic); rep.Fits && logicUtil > RoutingStrainThreshold {
		rep.Warnings = append(rep.Warnings,
			fmt.Sprintf("logic utilization %.0f%% risks routing strain (threshold %.0f%%)",
				logicUtil*100, RoutingStrainThreshold*100))
	}
	return rep
}

// Utilization returns the utilization fraction for a resource kind.
func (r Report) Utilization(k Kind) float64 {
	for _, l := range r.Lines {
		if l.Kind == k {
			return l.Utilization
		}
	}
	return 0
}

// MaxReplicas returns how many copies of a per-replica demand fit on
// the device alongside a fixed overhead — the scalability question the
// resource test exists to answer ("how many more parallel kernels can
// this chip hold"). It returns 0 when even one replica does not fit.
func MaxReplicas(dev Device, fixed, perReplica Demand) int {
	n := 0
	for {
		total := fixed.Add(perReplica.Scale(n + 1))
		if !Check(dev, total).Fits {
			return n
		}
		n++
		if n > 1<<20 { // guard against zero per-replica demand
			return n
		}
	}
}
