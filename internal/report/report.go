// Package report renders RAT inputs and results as aligned text tables
// in the layout of the paper's Tables 1-10: input-parameter sheets,
// predicted-vs-actual performance columns, and resource-utilization
// summaries. The formatting helpers reproduce the paper's notation
// (three-significant-figure scientific times like "1.31E-4",
// one-decimal speedups, integer-percent utilizations with tenths below
// one percent).
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/resource"
)

// FormatSci renders a positive quantity the way the paper prints
// times: three significant figures with a compact exponent, e.g.
// "5.56E-6", "1.07E-1", "4.54E+1". Zero renders as "0".
func FormatSci(x float64) string {
	if x == 0 {
		return "0"
	}
	s := fmt.Sprintf("%.2E", x)
	// Go prints "5.56E-06"; the paper prints "5.56E-6".
	s = strings.Replace(s, "E-0", "E-", 1)
	s = strings.Replace(s, "E+0", "E+", 1)
	return s
}

// FormatPercent renders a fraction as the paper prints utilizations:
// integer percent normally, one decimal below 1%.
func FormatPercent(f float64) string {
	p := f * 100
	if p != 0 && math.Abs(p) < 1 {
		return fmt.Sprintf("%.1f%%", p)
	}
	return fmt.Sprintf("%.0f%%", p)
}

// FormatSpeedup renders a speedup with one decimal, as in the tables.
func FormatSpeedup(s float64) string { return fmt.Sprintf("%.1f", s) }

// Table is a titled grid with a header row; Render aligns columns.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with padded columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if total > 2 {
		total -= 2
	}
	if _, err := fmt.Fprintf(w, "%s\n%s\n", line(t.Headers), strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "%s\n", line(row)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		//rat:allow-panic strings.Builder writes cannot fail
		panic(err)
	}
	return b.String()
}

// InputTable renders a worksheet in the layout of Tables 2, 5 and 8.
func InputTable(p core.Parameters) Table {
	t := Table{
		Title:   fmt.Sprintf("Input parameters of %s", p.Name),
		Headers: []string{"Parameter", "Value"},
	}
	t.AddRow("Dataset Parameters", "")
	t.AddRow("  N_elements, input (elements)", fmt.Sprintf("%d", p.Dataset.ElementsIn))
	t.AddRow("  N_elements, output (elements)", fmt.Sprintf("%d", p.Dataset.ElementsOut))
	t.AddRow("  N_bytes/element (bytes/element)", fmt.Sprintf("%g", p.Dataset.BytesPerElement))
	t.AddRow("Communication Parameters", "")
	t.AddRow("  throughput_ideal (MB/s)", fmt.Sprintf("%g", p.Comm.IdealThroughput/1e6))
	t.AddRow("  alpha_write (0 < a <= 1)", fmt.Sprintf("%g", p.Comm.AlphaWrite))
	t.AddRow("  alpha_read (0 < a <= 1)", fmt.Sprintf("%g", p.Comm.AlphaRead))
	t.AddRow("Computation Parameters", "")
	t.AddRow("  N_ops/element (ops/element)", fmt.Sprintf("%g", p.Comp.OpsPerElement))
	t.AddRow("  throughput_proc (ops/cycle)", fmt.Sprintf("%g", p.Comp.ThroughputProc))
	t.AddRow("  f_clock (MHz)", fmt.Sprintf("%g", p.Comp.ClockHz/1e6))
	t.AddRow("Software Parameters", "")
	t.AddRow("  t_soft (sec)", fmt.Sprintf("%g", p.Soft.TSoft))
	t.AddRow("  N_iter (iterations)", fmt.Sprintf("%d", p.Soft.Iterations))
	return t
}

// PerfColumn is one column of a performance table: a prediction or a
// measurement at one clock. Negative utilization cells render blank
// (the paper omits some).
type PerfColumn struct {
	Header   string
	TComm    float64
	TComp    float64
	UtilComm float64
	UtilComp float64
	TRC      float64
	Speedup  float64
}

// PredictionColumn converts a throughput-test output into a column.
func PredictionColumn(pr core.Prediction, b core.Buffering) PerfColumn {
	return PerfColumn{
		Header:   fmt.Sprintf("Predicted %g", pr.Params.Comp.ClockHz/1e6),
		TComm:    pr.TComm,
		TComp:    pr.TComp,
		UtilComm: pr.UtilComm(b),
		UtilComp: pr.UtilComp(b),
		TRC:      pr.TRC(b),
		Speedup:  pr.Speedup(b),
	}
}

// PerformanceTable renders columns in the layout of Tables 3, 6 and 9.
func PerformanceTable(title string, cols []PerfColumn) Table {
	t := Table{Title: title, Headers: []string{"f_clk (MHz)"}}
	for _, c := range cols {
		t.Headers = append(t.Headers, c.Header)
	}
	row := func(label string, get func(PerfColumn) string) {
		cells := []string{label}
		for _, c := range cols {
			cells = append(cells, get(c))
		}
		t.AddRow(cells...)
	}
	optPct := func(v float64) string {
		if v < 0 {
			return ""
		}
		return FormatPercent(v)
	}
	row("t_comm (sec)", func(c PerfColumn) string { return FormatSci(c.TComm) })
	row("t_comp (sec)", func(c PerfColumn) string { return FormatSci(c.TComp) })
	row("util_comm_SB", func(c PerfColumn) string { return optPct(c.UtilComm) })
	row("util_comp_SB", func(c PerfColumn) string { return optPct(c.UtilComp) })
	row("t_RC_SB (sec)", func(c PerfColumn) string { return FormatSci(c.TRC) })
	row("speedup", func(c PerfColumn) string { return FormatSpeedup(c.Speedup) })
	return t
}

// ResourceTable renders a resource report in the layout of Tables 4, 7
// and 10.
func ResourceTable(rep resource.Report) Table {
	t := Table{
		Title:   fmt.Sprintf("Resource usage (%s)", rep.Device.Name),
		Headers: []string{"FPGA Resource", "Utilization"},
	}
	for _, l := range rep.Lines {
		t.AddRow(l.DisplayName, FormatPercent(l.Utilization))
	}
	return t
}

// SideBySide renders a comparison of paper-published cells against
// reproduced values, used by the benchmark harness's output.
func SideBySide(title string, rows [][3]string) Table {
	t := Table{Title: title, Headers: []string{"Quantity", "Paper", "Reproduced"}}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2])
	}
	return t
}
