package report

import (
	"fmt"
	"math"
	"strings"
)

// Histogram renders a vector of non-negative values as a column chart
// in height text rows, one column per value (downsampled by taking
// column maxima when the vector is wider than width). The examples use
// it to show the PDF case studies' density estimates without leaving
// the terminal.
func Histogram(values []float64, width, height int) string {
	if len(values) == 0 || width < 1 || height < 1 {
		return "(no data)\n"
	}
	// Downsample to at most width columns, keeping peaks visible.
	cols := make([]float64, min(width, len(values)))
	per := float64(len(values)) / float64(len(cols))
	for i := range cols {
		lo := int(float64(i) * per)
		hi := int(float64(i+1) * per)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(values) {
			hi = len(values)
		}
		for _, v := range values[lo:hi] {
			if v > cols[i] {
				cols[i] = v
			}
		}
	}
	var peak float64
	for _, v := range cols {
		if v > peak {
			peak = v
		}
	}
	if peak <= 0 || math.IsNaN(peak) || math.IsInf(peak, 0) {
		return "(all zero)\n"
	}
	var b strings.Builder
	for row := height; row >= 1; row-- {
		threshold := peak * (float64(row) - 0.5) / float64(height)
		if row == height {
			fmt.Fprintf(&b, "%8.3g |", peak)
		} else if row == 1 {
			fmt.Fprintf(&b, "%8.3g |", 0.0)
		} else {
			b.WriteString("         |")
		}
		for _, v := range cols {
			if v >= threshold {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("          " + strings.Repeat("-", len(cols)) + "\n")
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
