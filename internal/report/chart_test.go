package report_test

import (
	"strings"
	"testing"

	"github.com/chrec/rat/internal/report"
)

func TestHistogramBasics(t *testing.T) {
	vals := []float64{0, 1, 2, 4, 2, 1, 0}
	out := report.Histogram(vals, 7, 4)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // 4 rows + axis
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Top row shows only the peak column; bottom row shows all
	// nonzero columns.
	top, bottom := lines[0], lines[3]
	if strings.Count(top, "#") != 1 {
		t.Errorf("top row should hold only the peak:\n%s", out)
	}
	if strings.Count(bottom, "#") != 5 {
		t.Errorf("bottom row should hold every nonzero column (5):\n%s", out)
	}
	// Peak label appears.
	if !strings.Contains(top, "4") {
		t.Errorf("peak label missing:\n%s", out)
	}
}

func TestHistogramDownsamples(t *testing.T) {
	vals := make([]float64, 1000)
	vals[500] = 9 // single spike must survive max-downsampling
	out := report.Histogram(vals, 40, 3)
	if strings.Count(out, "#") == 0 {
		t.Errorf("spike lost in downsampling:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines[0]) > 60 {
		t.Errorf("row wider than requested:\n%s", out)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	if got := report.Histogram(nil, 10, 5); got != "(no data)\n" {
		t.Errorf("nil = %q", got)
	}
	if got := report.Histogram([]float64{1}, 0, 5); got != "(no data)\n" {
		t.Errorf("zero width = %q", got)
	}
	if got := report.Histogram([]float64{0, 0}, 10, 5); got != "(all zero)\n" {
		t.Errorf("zeros = %q", got)
	}
}
