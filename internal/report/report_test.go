package report_test

import (
	"errors"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/report"
	"github.com/chrec/rat/internal/resource"
)

func TestFormatSciMatchesPaperNotation(t *testing.T) {
	cases := []struct {
		x    float64
		want string
	}{
		{5.5626e-6, "5.56E-6"},
		{1.31072e-4, "1.31E-4"},
		{1.07e-1, "1.07E-1"},
		{4.54e1, "4.54E+1"},
		{2.3e1, "2.30E+1"},
		{8.79e-1, "8.79E-1"},
		{0, "0"},
	}
	for _, c := range cases {
		if got := report.FormatSci(c.x); got != c.want {
			t.Errorf("FormatSci(%g) = %q, want %q", c.x, got, c.want)
		}
	}
}

func TestFormatPercent(t *testing.T) {
	cases := []struct {
		f    float64
		want string
	}{
		{0.02, "2%"},
		{0.15, "15%"},
		{0.004, "0.4%"},
		{0.993, "99%"},
		{0, "0%"},
		{1, "100%"},
	}
	for _, c := range cases {
		if got := report.FormatPercent(c.f); got != c.want {
			t.Errorf("FormatPercent(%g) = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestFormatSpeedup(t *testing.T) {
	if got := report.FormatSpeedup(10.576); got != "10.6" {
		t.Errorf("FormatSpeedup = %q", got)
	}
}

// TestPerformanceTableReproducesTable3: rendering the predictions of
// the 1-D PDF worksheet must print the same cells as the paper's
// Table 3 predicted columns.
func TestPerformanceTableReproducesTable3(t *testing.T) {
	var cols []report.PerfColumn
	for _, hz := range paper.ClocksHz {
		pr := core.MustPredict(paper.PDF1DParams().WithClock(hz))
		cols = append(cols, report.PredictionColumn(pr, core.SingleBuffered))
	}
	tbl := report.PerformanceTable("Performance parameters of 1-D PDF", cols)
	out := tbl.String()
	for _, cell := range []string{
		"5.56E-6",                       // t_comm at every clock
		"2.62E-4", "1.97E-4", "1.31E-4", // t_comp
		"1.07E-1", "8.09E-2", "5.47E-2", // t_RC (exact arithmetic prints 5.47E-2)
		"5.4", "7.1", "10.6", // speedups (exact arithmetic prints 7.1)
		"2%", "3%", "4%", // util_comm
	} {
		if !strings.Contains(out, cell) {
			t.Errorf("table missing cell %q:\n%s", cell, out)
		}
	}
}

func TestInputTableRendersWorksheet(t *testing.T) {
	tbl := report.InputTable(paper.MDParams())
	out := tbl.String()
	for _, cell := range []string{"16384", "36", "500", "0.9", "164000", "50", "5.78", "molecular dynamics"} {
		if !strings.Contains(out, cell) {
			t.Errorf("input table missing %q:\n%s", cell, out)
		}
	}
}

func TestResourceTable(t *testing.T) {
	rep := resource.Check(resource.VirtexLX100, resource.Demand{DSP: 8, BRAM: 36, Logic: 6390})
	tbl := report.ResourceTable(rep)
	out := tbl.String()
	for _, cell := range []string{"48-bit DSPs", "BRAMs", "Slices", "8%", "15%", "13%"} {
		if !strings.Contains(out, cell) {
			t.Errorf("resource table missing %q:\n%s", cell, out)
		}
	}
}

func TestSideBySide(t *testing.T) {
	tbl := report.SideBySide("Table 3 comparison", [][3]string{
		{"speedup (150 MHz)", "10.6", "10.6"},
	})
	out := tbl.String()
	if !strings.Contains(out, "Paper") || !strings.Contains(out, "Reproduced") || !strings.Contains(out, "10.6") {
		t.Errorf("side-by-side table malformed:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	tbl := report.Table{Headers: []string{"A", "LongHeader"}}
	tbl.AddRow("xxxxxxxx", "1")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Column two starts at the same offset in header and data rows.
	h := strings.Index(lines[0], "LongHeader")
	d := strings.Index(lines[2], "1")
	if h != d {
		t.Errorf("misaligned columns: header at %d, data at %d\n%s", h, d, out)
	}
	// Empty-cell handling: missing trailing cells render fine.
	tbl.AddRow("only-one")
	if s := tbl.String(); !strings.Contains(s, "only-one") {
		t.Errorf("short row mangled:\n%s", s)
	}
}

func TestRenderPropagatesWriterErrors(t *testing.T) {
	tbl := report.Table{Title: "t", Headers: []string{"a"}}
	tbl.AddRow("b")
	if err := tbl.Render(failWriter{}); err == nil {
		t.Error("Render must propagate writer errors")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("closed") }
