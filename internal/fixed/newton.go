package fixed

import (
	"fmt"
	"math/bits"
)

// Iterative fixed-point division and square root, the operations the
// MD force datapath's OpDiv/OpSqrt units perform. Both use the
// standard hardware formulation — a normalized Newton-Raphson
// reciprocal (the same structure a radix-2 iterative divider or a
// lookup-seeded multiplicative unit implements) — computed here over
// exact int64 intermediates so results are deterministic and
// bit-reproducible, like everything else in this package.

// Div returns a/b quantized into format out with the given rounding
// and overflow modes. Division by zero saturates to the sign-matching
// extreme and reports overflow, matching the saturating behaviour of
// the datapaths modelled here. The quotient is computed exactly at
// double precision before the final narrowing, so the only error is
// the final rounding step.
func Div(a, b Value, out Format, rm RoundMode, om OverflowMode) (Value, bool) {
	if !a.fmt.Valid() || !b.fmt.Valid() || !out.Valid() {
		//rat:allow-panic invalid formats corrupt scales silently; documented invariant on par with index out of range
		panic(fmt.Sprintf("fixed: Div with invalid format (%v, %v -> %v)", a.fmt, b.fmt, out))
	}
	if b.raw == 0 {
		if a.raw >= 0 {
			return Value{raw: out.MaxRaw(), fmt: out}, true
		}
		return Value{raw: out.MinRaw(), fmt: out}, true
	}
	// a/b at scale: (a.raw * 2^-fa) / (b.raw * 2^-fb) = (a.raw/b.raw) * 2^(fb-fa).
	// Target out.Frac fraction bits: numerator = a.raw << (out.Frac + fb - fa),
	// computed in 128 bits to avoid overflow, then rounded division.
	shift := out.Frac + b.fmt.Frac - a.fmt.Frac
	neg := false
	ar, br := a.raw, b.raw
	if ar < 0 {
		ar, neg = -ar, !neg
	}
	if br < 0 {
		br, neg = -br, !neg
	}
	hi, lo := bits.Mul64(uint64(ar), 1)
	switch {
	case shift > 0:
		if shift >= 64 {
			// Beyond any representable result for 32-bit formats.
			if om == Saturate {
				if neg {
					return Value{raw: out.MinRaw(), fmt: out}, true
				}
				return Value{raw: out.MaxRaw(), fmt: out}, true
			}
			return Value{raw: 0, fmt: out}, true
		}
		hi = hi<<uint(shift) | lo>>(64-uint(shift))
		lo <<= uint(shift)
	case shift < 0:
		s := uint(-shift)
		if s >= 64 {
			lo, hi = 0, 0
		} else {
			lo = lo>>s | hi<<(64-s)
			hi >>= s
		}
	}
	if hi >= uint64(br) {
		// Quotient exceeds 64 bits: far outside any format here.
		if om == Saturate {
			if neg {
				return Value{raw: out.MinRaw(), fmt: out}, true
			}
			return Value{raw: out.MaxRaw(), fmt: out}, true
		}
		return Value{raw: 0, fmt: out}, true
	}
	q, r := bits.Div64(hi, lo, uint64(br))
	raw := int64(q)
	// Round the exact remainder.
	switch rm {
	case Nearest:
		if 2*r >= uint64(br) {
			raw++
		}
	case NearestEven:
		if 2*r > uint64(br) || (2*r == uint64(br) && raw&1 == 1) {
			raw++
		}
	default: // Truncate rounds toward -inf on the signed result.
		if neg && r != 0 {
			raw++
		}
	}
	if neg {
		raw = -raw
	}
	return FromRaw(raw, out, om)
}

// Sqrt returns the square root of v quantized into format out.
// Negative inputs saturate to zero and report overflow (hardware root
// units clamp rather than produce NaNs). The root is computed by
// exact integer Newton iteration on the scaled radicand, so the only
// error is the final rounding.
func Sqrt(v Value, out Format, rm RoundMode, om OverflowMode) (Value, bool) {
	if !v.fmt.Valid() || !out.Valid() {
		//rat:allow-panic invalid formats corrupt scales silently; documented invariant on par with index out of range
		panic(fmt.Sprintf("fixed: Sqrt with invalid format (%v -> %v)", v.fmt, out))
	}
	if v.raw < 0 {
		return Value{raw: 0, fmt: out}, true
	}
	if v.raw == 0 {
		return Value{raw: 0, fmt: out}, false
	}
	// sqrt(raw * 2^-f) at out.Frac bits: isqrt(raw << (2*out.Frac - f)),
	// with the shift kept in 128 bits.
	shift := 2*out.Frac - v.fmt.Frac
	hi, lo := uint64(0), uint64(v.raw)
	switch {
	case shift > 0:
		if shift >= 64 {
			hi = lo << uint(shift-64)
			lo = 0
		} else {
			hi = lo >> (64 - uint(shift))
			lo <<= uint(shift)
		}
	case shift < 0:
		lo >>= uint(-shift)
	}
	root, rem := isqrt128(hi, lo)
	raw := int64(root)
	switch rm {
	case Nearest, NearestEven:
		// Round half up on the exact remainder: root is exact floor;
		// increment when (root + 0.5)^2 <= value, i.e. rem > root.
		if rem > root {
			raw++
		}
	default: // Truncate: floor, already have it.
	}
	return FromRaw(raw, out, om)
}

// isqrt128 returns floor(sqrt(hi:lo)) and the remainder hi:lo - root^2,
// by binary digit-by-digit extraction (the classic hardware algorithm).
func isqrt128(hi, lo uint64) (root, rem uint64) {
	var r, q uint64 // remainder (fits 64 bits in our usage) and root
	for i := 63; i >= 0; i-- {
		// Shift two bits from the 128-bit radicand into r.
		r = r<<2 | (hi >> 62)
		hi = hi<<2 | lo>>62
		lo <<= 2
		t := q<<2 | 1
		q <<= 1
		if r >= t {
			r -= t
			q |= 1
		}
	}
	return q, r
}
