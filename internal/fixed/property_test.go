package fixed_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/chrec/rat/internal/fixed"
)

// genFormat draws a random valid format with at least a few fraction
// bits so rounding properties are non-trivial.
func genFormat(r *rand.Rand) fixed.Format {
	intBits := 1 + r.Intn(8)
	fracBits := r.Intn(fixed.MaxWidth - intBits + 1)
	return fixed.Q(intBits, fracBits)
}

// genInRange draws a float64 strictly inside the format's range.
func genInRange(r *rand.Rand, f fixed.Format) float64 {
	span := f.MaxFloat() - f.MinFloat()
	return f.MinFloat() + r.Float64()*span*0.999
}

type sample struct {
	F fixed.Format
	X float64
	Y float64
}

func sampleCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 1000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			f := genFormat(r)
			for i := range vals {
				vals[i] = reflect.ValueOf(sample{F: f, X: genInRange(r, f), Y: genInRange(r, f)})
			}
		},
	}
}

// PropertyQuantizationErrorBound: quantizing an in-range value incurs
// at most eps/2 error for nearest modes and strictly less than eps for
// truncation.
func TestPropertyQuantizationError(t *testing.T) {
	f := func(s sample) bool {
		eps := s.F.Eps()
		for _, rm := range []fixed.RoundMode{fixed.Nearest, fixed.NearestEven} {
			v, ov := fixed.FromFloat(s.X, s.F, rm, fixed.Saturate)
			// Nearest rounding may push the top half-eps of range
			// over the rail; that reports overflow and is exempt.
			if !ov && math.Abs(v.Float()-s.X) > eps/2+1e-18 {
				return false
			}
		}
		v, ov := fixed.FromFloat(s.X, s.F, fixed.Truncate, fixed.Saturate)
		if !ov && (s.X-v.Float() < -1e-18 || s.X-v.Float() >= eps) {
			return false
		}
		return true
	}
	if err := quick.Check(f, sampleCfg()); err != nil {
		t.Error(err)
	}
}

// PropertyOrderPreservation: quantization with a fixed mode is
// monotone, so it preserves (non-strict) order.
func TestPropertyOrderPreservation(t *testing.T) {
	f := func(s sample) bool {
		a, _ := fixed.FromFloat(s.X, s.F, fixed.Nearest, fixed.Saturate)
		b, _ := fixed.FromFloat(s.Y, s.F, fixed.Nearest, fixed.Saturate)
		if s.X <= s.Y {
			return a.Float() <= b.Float()
		}
		return a.Float() >= b.Float()
	}
	if err := quick.Check(f, sampleCfg()); err != nil {
		t.Error(err)
	}
}

// PropertyAddExactness: fixed-point addition of in-range operands whose
// sum is in range is exact (no rounding ever).
func TestPropertyAddExactness(t *testing.T) {
	f := func(s sample) bool {
		a, _ := fixed.FromFloat(s.X, s.F, fixed.Nearest, fixed.Saturate)
		b, _ := fixed.FromFloat(s.Y, s.F, fixed.Nearest, fixed.Saturate)
		sum, ov := fixed.Add(a, b, fixed.Saturate)
		if ov {
			return true // saturation is allowed; exactness claim is for in-range sums
		}
		return sum.Float() == a.Float()+b.Float()
	}
	if err := quick.Check(f, sampleCfg()); err != nil {
		t.Error(err)
	}
}

// PropertySubAntiCommutes: a-b == -(b-a) whenever neither direction
// saturates.
func TestPropertySubAntiCommutes(t *testing.T) {
	f := func(s sample) bool {
		a, _ := fixed.FromFloat(s.X, s.F, fixed.Nearest, fixed.Saturate)
		b, _ := fixed.FromFloat(s.Y, s.F, fixed.Nearest, fixed.Saturate)
		d1, ov1 := fixed.Sub(a, b, fixed.Saturate)
		d2, ov2 := fixed.Sub(b, a, fixed.Saturate)
		if ov1 || ov2 {
			return true
		}
		return d1.Float() == -d2.Float()
	}
	if err := quick.Check(f, sampleCfg()); err != nil {
		t.Error(err)
	}
}

// PropertyMulCommutes: multiplication commutes bit-exactly under every
// rounding mode (the double-width product is formed first).
func TestPropertyMulCommutes(t *testing.T) {
	f := func(s sample) bool {
		a, _ := fixed.FromFloat(s.X, s.F, fixed.Nearest, fixed.Saturate)
		b, _ := fixed.FromFloat(s.Y, s.F, fixed.Nearest, fixed.Saturate)
		for _, rm := range []fixed.RoundMode{fixed.Truncate, fixed.Nearest, fixed.NearestEven} {
			p1, o1 := fixed.Mul(a, b, s.F, rm, fixed.Saturate)
			p2, o2 := fixed.Mul(b, a, s.F, rm, fixed.Saturate)
			if p1 != p2 || o1 != o2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, sampleCfg()); err != nil {
		t.Error(err)
	}
}

// PropertyMulErrorBound: the narrowed product differs from the real
// product by at most one output eps (truncation) or half (nearest),
// when no saturation occurs.
func TestPropertyMulErrorBound(t *testing.T) {
	f := func(s sample) bool {
		a, _ := fixed.FromFloat(s.X, s.F, fixed.Nearest, fixed.Saturate)
		b, _ := fixed.FromFloat(s.Y, s.F, fixed.Nearest, fixed.Saturate)
		exact := a.Float() * b.Float()
		p, ov := fixed.Mul(a, b, s.F, fixed.Nearest, fixed.Saturate)
		if !ov && math.Abs(p.Float()-exact) > s.F.Eps()/2+1e-18 {
			return false
		}
		p, ov = fixed.Mul(a, b, s.F, fixed.Truncate, fixed.Saturate)
		if !ov && (exact-p.Float() < -1e-18 || exact-p.Float() >= s.F.Eps()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, sampleCfg()); err != nil {
		t.Error(err)
	}
}

// PropertyConvertWideningExact: widening conversions are lossless and
// reversible.
func TestPropertyConvertWideningExact(t *testing.T) {
	f := func(s sample) bool {
		if s.F.Width()+4 > fixed.MaxWidth {
			return true
		}
		wide := fixed.Q(s.F.Int+2, s.F.Frac+2)
		v, _ := fixed.FromFloat(s.X, s.F, fixed.Nearest, fixed.Saturate)
		w, ov := fixed.Convert(v, wide, fixed.Truncate, fixed.Saturate)
		if ov || w.Float() != v.Float() {
			return false
		}
		back, ov := fixed.Convert(w, s.F, fixed.Truncate, fixed.Saturate)
		return !ov && back == v
	}
	if err := quick.Check(f, sampleCfg()); err != nil {
		t.Error(err)
	}
}

// PropertyWrapIsModular: wrapping overflow behaves as arithmetic modulo
// 2^W on the raw integers.
func TestPropertyWrapIsModular(t *testing.T) {
	f := func(s sample) bool {
		w := uint(s.F.Width())
		raw := int64(int32(s.X*1e6)) + int64(int32(s.Y*1e6))
		v, _ := fixed.FromRaw(raw, s.F, fixed.Wrap)
		mod := raw & ((1 << w) - 1)
		if mod&(1<<(w-1)) != 0 {
			mod -= 1 << w
		}
		return v.Raw() == mod
	}
	if err := quick.Check(f, sampleCfg()); err != nil {
		t.Error(err)
	}
}

// PropertyAccumulatorMatchesFloat: a wide accumulator summing random
// products matches the float64 sum of the quantized operands exactly
// (every product is exact and the 48-bit accumulator has headroom).
func TestPropertyAccumulatorMatchesFloat(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := fixed.Q(2, 16)
	acc := fixed.MustNewAcc(32, 48)
	var want float64
	for i := 0; i < 10000; i++ {
		a := fixed.MustFromFloat(genInRange(r, f), f, fixed.Nearest)
		b := fixed.MustFromFloat(genInRange(r, f), f, fixed.Nearest)
		acc.MAC(a, b)
		want += a.Float() * b.Float()
	}
	if acc.Overflowed() {
		t.Fatal("accumulator overflowed")
	}
	if got := acc.Float(); math.Abs(got-want) > 1e-6 {
		t.Errorf("accumulated %g, float64 reference %g", got, want)
	}
}
