package fixed

import "fmt"

// Acc models a wide hardware accumulator such as the 48-bit register
// of a Xilinx DSP48 multiply-accumulate unit: products are summed at
// full double-width precision and only the final read-out narrows to a
// storage format. The 1-D PDF case study's running per-bin totals are
// exactly this structure (one 18x18 MAC per pipeline).
//
// The accumulator holds Frac fraction bits and wraps two's-complement
// at Width total bits, like the silicon it models. The zero Acc is
// unusable; construct with NewAcc.
type Acc struct {
	raw   int64
	frac  int
	width int
	// overflowed latches whether any accumulation wrapped.
	overflowed bool
}

// NewAcc returns an accumulator with the given fraction bits and total
// width. Width must be in (frac, 63] so the raw value fits an int64
// and at least one integer bit exists.
func NewAcc(frac, width int) (*Acc, error) {
	switch {
	case frac < 0:
		return nil, fmt.Errorf("%w: negative accumulator fraction bits %d", ErrBadFormat, frac)
	case width <= frac || width > 63:
		return nil, fmt.Errorf("%w: accumulator width %d must be in (%d, 63]", ErrBadFormat, width, frac)
	}
	return &Acc{frac: frac, width: width}, nil
}

// MustNewAcc is NewAcc that panics on invalid geometry.
func MustNewAcc(frac, width int) *Acc {
	a, err := NewAcc(frac, width)
	if err != nil {
		//rat:allow-panic Must-style wrapper documented to panic on invalid geometry
		panic(err)
	}
	return a
}

// Frac returns the accumulator's fraction-bit count.
func (a *Acc) Frac() int { return a.frac }

// Width returns the accumulator's total width in bits.
func (a *Acc) Width() int { return a.width }

// Reset clears the accumulated value and the overflow latch.
func (a *Acc) Reset() { a.raw = 0; a.overflowed = false }

// Overflowed reports whether any accumulation since the last Reset
// wrapped around the accumulator width.
func (a *Acc) Overflowed() bool { return a.overflowed }

// wrap confines raw to the accumulator width with sign extension and
// latches overflow.
func (a *Acc) wrap(raw int64) {
	limitHi := (int64(1) << (a.width - 1)) - 1
	limitLo := -(int64(1) << (a.width - 1))
	if raw > limitHi || raw < limitLo {
		a.overflowed = true
		w := uint(a.width)
		um := uint64(raw) & ((1 << w) - 1)
		if um&(1<<(w-1)) != 0 {
			um |= ^uint64(0) << w
		}
		raw = int64(um)
	}
	a.raw = raw
}

// MAC accumulates the full-precision product x*y. The product's
// fraction bits (x.Frac+y.Frac) must equal the accumulator's, mirroring
// fixed hardware wiring; a mismatch is a programming error and panics.
func (a *Acc) MAC(x, y Value) {
	if x.fmt.Frac+y.fmt.Frac != a.frac {
		//rat:allow-panic scale mismatch corrupts every later sample; documented invariant on par with index out of range
		panic(fmt.Sprintf("fixed: MAC product fraction %d does not match accumulator fraction %d",
			x.fmt.Frac+y.fmt.Frac, a.frac))
	}
	a.wrap(a.raw + x.raw*y.raw)
}

// AddValue accumulates a single value, exactly left-shifted to the
// accumulator scale. The value's fraction bits must not exceed the
// accumulator's.
func (a *Acc) AddValue(v Value) {
	if v.fmt.Frac > a.frac {
		//rat:allow-panic scale mismatch corrupts every later sample; documented invariant on par with index out of range
		panic(fmt.Sprintf("fixed: AddValue fraction %d exceeds accumulator fraction %d", v.fmt.Frac, a.frac))
	}
	a.wrap(a.raw + v.raw<<uint(a.frac-v.fmt.Frac))
}

// Value narrows the accumulated total into format out with the given
// rounding and overflow modes; the bool reports narrowing overflow.
func (a *Acc) Value(out Format, rm RoundMode, om OverflowMode) (Value, bool) {
	return renorm(a.raw, a.frac, out, rm, om)
}

// Float returns the accumulated total as a float64 (exact while the
// raw magnitude stays below 2^53).
func (a *Acc) Float() float64 {
	v := float64(a.raw)
	for i := 0; i < a.frac; i++ {
		v /= 2
	}
	return v
}
