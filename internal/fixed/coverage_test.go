package fixed_test

import (
	"testing"

	"github.com/chrec/rat/internal/fixed"
)

func TestValueFormatAccessor(t *testing.T) {
	f := fixed.Q(4, 8)
	v := fixed.MustFromFloat(1.5, f, fixed.Nearest)
	if v.Format() != f {
		t.Errorf("Format() = %v, want %v", v.Format(), f)
	}
}

// TestConvertWrapSemantics: narrowing under Wrap keeps low bits with
// sign extension, like the silicon it models.
func TestConvertWrapSemantics(t *testing.T) {
	// 5.0 in Q8.4 is raw 80; narrowing to Q3.4 (range [-4, 4), raw
	// range [-64, 63]) wraps 80 -> 80-128 = -48 -> -3.0.
	v := fixed.MustFromFloat(5.0, fixed.Q(8, 4), fixed.Nearest)
	w, ov := fixed.Convert(v, fixed.Q(3, 4), fixed.Truncate, fixed.Wrap)
	if !ov || w.Float() != -3.0 {
		t.Errorf("wrap narrow = %g ov=%v, want -3", w.Float(), ov)
	}
}

// TestConvertWideningOverflow: gaining fraction bits can overflow the
// output's range when the integer part shrinks.
func TestConvertWideningOverflow(t *testing.T) {
	v := fixed.MustFromFloat(7.5, fixed.Q(8, 4), fixed.Nearest)
	// Q2.16: range [-2, 2), fraction grows by 12 bits.
	s, ov := fixed.Convert(v, fixed.Q(2, 16), fixed.Truncate, fixed.Saturate)
	if !ov || s.Float() != fixed.Q(2, 16).MaxFloat() {
		t.Errorf("widening saturate = %g ov=%v", s.Float(), ov)
	}
	n, _ := fixed.Neg(v, fixed.Saturate)
	s, ov = fixed.Convert(n, fixed.Q(2, 16), fixed.Truncate, fixed.Saturate)
	if !ov || s.Float() != -2 {
		t.Errorf("negative widening saturate = %g ov=%v", s.Float(), ov)
	}
	// Wrap semantics on the same widening.
	w, ov := fixed.Convert(v, fixed.Q(2, 16), fixed.Truncate, fixed.Wrap)
	if !ov || w.Float() != -0.5 { // 7.5 mod 4 -> 3.5 -> wraps to -0.5 in [-2,2)
		t.Errorf("widening wrap = %g ov=%v, want -0.5", w.Float(), ov)
	}
}

// TestMulOutputRoundingModes: the narrowing of a full product honors
// each rounding mode.
func TestMulOutputRoundingModes(t *testing.T) {
	f := fixed.Q(4, 4)                                 // eps 1/16
	a := fixed.MustFromFloat(0.4375, f, fixed.Nearest) // 7/16
	b := fixed.MustFromFloat(0.4375, f, fixed.Nearest)
	// exact product 49/256 = 0.19140625; in eps units 3.0625.
	tr, _ := fixed.Mul(a, b, f, fixed.Truncate, fixed.Saturate)
	if tr.Raw() != 3 {
		t.Errorf("truncate product raw = %d, want 3", tr.Raw())
	}
	nr, _ := fixed.Mul(a, b, f, fixed.Nearest, fixed.Saturate)
	if nr.Raw() != 3 {
		t.Errorf("nearest product raw = %d, want 3", nr.Raw())
	}
	// A tie case: 0.5*0.375 = 0.1875 = 3.0 eps exactly (no tie);
	// construct a half-eps product: 0.25 * 0.375 = 0.09375 = 1.5 eps.
	c := fixed.MustFromFloat(0.25, f, fixed.Nearest)
	d := fixed.MustFromFloat(0.375, f, fixed.Nearest)
	half, _ := fixed.Mul(c, d, f, fixed.Nearest, fixed.Saturate) // ties away: 2
	if half.Raw() != 2 {
		t.Errorf("nearest tie raw = %d, want 2", half.Raw())
	}
	even, _ := fixed.Mul(c, d, f, fixed.NearestEven, fixed.Saturate) // ties to even: 2
	if even.Raw() != 2 {
		t.Errorf("nearest-even tie raw = %d, want 2", even.Raw())
	}
}

// TestDivWrapMode exercises the Wrap paths of the divider's overflow
// handling.
func TestDivWrapMode(t *testing.T) {
	f := fixed.Q(4, 12)
	big := fixed.MustFromFloat(7.5, f, fixed.Nearest)
	tiny := fixed.MustFromFloat(f.Eps(), f, fixed.Nearest)
	// Quotient far out of range: Wrap mode reports overflow; the
	// value is implementation-defined but must be in range.
	got, ov := fixed.Div(big, tiny, f, fixed.Nearest, fixed.Wrap)
	if !ov {
		t.Error("overflowing divide must report overflow")
	}
	if got.Float() > f.MaxFloat() || got.Float() < f.MinFloat() {
		t.Errorf("wrapped quotient %g outside format range", got.Float())
	}
	// Division by zero under Wrap still saturates by definition.
	zero := fixed.MustFromFloat(0, f, fixed.Nearest)
	if _, ov := fixed.Div(big, zero, f, fixed.Nearest, fixed.Wrap); !ov {
		t.Error("divide by zero must report overflow")
	}
}

// TestDivRoundingModes: the exact-remainder rounding honors each mode,
// including negative truncation toward negative infinity.
func TestDivRoundingModes(t *testing.T) {
	f := fixed.Q(8, 0) // integers
	mk := func(x float64) fixed.Value { return fixed.MustFromFloat(x, f, fixed.Nearest) }
	// 7/2 = 3.5
	if v, _ := fixed.Div(mk(7), mk(2), f, fixed.Truncate, fixed.Saturate); v.Float() != 3 {
		t.Errorf("trunc(7/2) = %g", v.Float())
	}
	if v, _ := fixed.Div(mk(7), mk(2), f, fixed.Nearest, fixed.Saturate); v.Float() != 4 {
		t.Errorf("nearest(7/2) = %g", v.Float())
	}
	if v, _ := fixed.Div(mk(7), mk(2), f, fixed.NearestEven, fixed.Saturate); v.Float() != 4 {
		t.Errorf("nearestEven(7/2) = %g", v.Float())
	}
	// 5/2 = 2.5: nearest-even goes down to 2.
	if v, _ := fixed.Div(mk(5), mk(2), f, fixed.NearestEven, fixed.Saturate); v.Float() != 2 {
		t.Errorf("nearestEven(5/2) = %g", v.Float())
	}
	// -7/2 = -3.5: truncation floors to -4.
	if v, _ := fixed.Div(mk(-7), mk(2), f, fixed.Truncate, fixed.Saturate); v.Float() != -4 {
		t.Errorf("trunc(-7/2) = %g, want -4 (floor)", v.Float())
	}
	// Nearest ties away from zero: -3.5 -> -4.
	if v, _ := fixed.Div(mk(-7), mk(2), f, fixed.Nearest, fixed.Saturate); v.Float() != -4 {
		t.Errorf("nearest(-7/2) = %g", v.Float())
	}
}

// TestSqrtTruncateMode and narrow output formats.
func TestSqrtModes(t *testing.T) {
	f := fixed.Q(8, 8)
	// sqrt(2) = 1.41421...; eps = 1/256: trunc floor vs nearest.
	two := fixed.MustFromFloat(2, f, fixed.Nearest)
	tr, _ := fixed.Sqrt(two, f, fixed.Truncate, fixed.Saturate)
	nr, _ := fixed.Sqrt(two, f, fixed.Nearest, fixed.Saturate)
	if tr.Float() > 1.4143 || tr.Float() < 1.410 {
		t.Errorf("trunc sqrt(2) = %g", tr.Float())
	}
	if nr.Float() < tr.Float() {
		t.Errorf("nearest sqrt below truncated")
	}
	// Narrow output: sqrt of a big value can overflow a small format.
	big := fixed.MustFromFloat(100, fixed.Q(8, 8), fixed.Nearest)
	if _, ov := fixed.Sqrt(big, fixed.Q(2, 6), fixed.Nearest, fixed.Saturate); !ov {
		t.Error("sqrt(100) into [-2,2) must overflow")
	}
}
