package fixed_test

import (
	"errors"
	"math"
	"testing"

	"github.com/chrec/rat/internal/fixed"
)

func TestNewFormat(t *testing.T) {
	good := []struct{ i, f int }{{1, 0}, {2, 16}, {1, 17}, {18, 14}, {1, 31}, {32, 0}}
	for _, g := range good {
		f, err := fixed.NewFormat(g.i, g.f)
		if err != nil {
			t.Errorf("NewFormat(%d,%d): %v", g.i, g.f, err)
			continue
		}
		if f.Width() != g.i+g.f {
			t.Errorf("Width = %d, want %d", f.Width(), g.i+g.f)
		}
		if !f.Valid() {
			t.Errorf("NewFormat(%d,%d) not Valid", g.i, g.f)
		}
	}
	bad := []struct{ i, f int }{{0, 4}, {-1, 4}, {1, -1}, {20, 13}, {33, 0}}
	for _, b := range bad {
		if _, err := fixed.NewFormat(b.i, b.f); !errors.Is(err, fixed.ErrBadFormat) {
			t.Errorf("NewFormat(%d,%d): error = %v, want ErrBadFormat", b.i, b.f, err)
		}
	}
	if (fixed.Format{}).Valid() {
		t.Error("zero Format must be invalid")
	}
}

func TestQPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Q(0,0) must panic")
		}
	}()
	fixed.Q(0, 0)
}

func TestFormatRanges(t *testing.T) {
	// The PDF study's 18-bit format: Q2.16 covers [-2, 2) in steps
	// of 2^-16.
	f := fixed.Q(2, 16)
	if f.Eps() != math.Ldexp(1, -16) {
		t.Errorf("Eps = %g", f.Eps())
	}
	if f.MaxRaw() != (1<<17)-1 || f.MinRaw() != -(1<<17) {
		t.Errorf("raw range [%d, %d]", f.MinRaw(), f.MaxRaw())
	}
	if f.MinFloat() != -2 {
		t.Errorf("MinFloat = %g, want -2", f.MinFloat())
	}
	if want := 2 - f.Eps(); f.MaxFloat() != want {
		t.Errorf("MaxFloat = %g, want %g", f.MaxFloat(), want)
	}
	if f.String() != "Q2.16" {
		t.Errorf("String = %q", f.String())
	}
}

func TestFromFloatRoundTrip(t *testing.T) {
	f := fixed.Q(4, 12)
	for _, x := range []float64{0, 1, -1, 0.5, -0.5, 3.25, -7.9999, 7.999755859375} {
		v, ov := fixed.FromFloat(x, f, fixed.Nearest, fixed.Saturate)
		if ov {
			t.Errorf("FromFloat(%g) unexpectedly overflowed", x)
		}
		if math.Abs(v.Float()-x) > f.Eps()/2 {
			t.Errorf("round trip of %g gave %g (err %g > eps/2 %g)", x, v.Float(), math.Abs(v.Float()-x), f.Eps()/2)
		}
	}
}

func TestFromFloatExactValues(t *testing.T) {
	f := fixed.Q(2, 16)
	v := fixed.MustFromFloat(0.25, f, fixed.Truncate)
	if v.Raw() != 1<<14 {
		t.Errorf("0.25 raw = %d, want %d", v.Raw(), 1<<14)
	}
	if v.Float() != 0.25 {
		t.Errorf("Float = %g", v.Float())
	}
	if v.IsZero() {
		t.Error("0.25 IsZero")
	}
	if z := fixed.MustFromFloat(0, f, fixed.Truncate); !z.IsZero() {
		t.Error("0 not IsZero")
	}
}

func TestRoundingModes(t *testing.T) {
	f := fixed.Q(8, 0) // integers; eps = 1
	cases := []struct {
		x                        float64
		trunc, nearest, nearEven float64
	}{
		{2.5, 2, 3, 2},
		{3.5, 3, 4, 4},
		{-2.5, -3, -3, -2},
		{-3.5, -4, -4, -4},
		{2.25, 2, 2, 2},
		{-2.25, -3, -2, -2},
		{2.75, 2, 3, 3},
		{-2.75, -3, -3, -3},
	}
	for _, c := range cases {
		if v, _ := fixed.FromFloat(c.x, f, fixed.Truncate, fixed.Saturate); v.Float() != c.trunc {
			t.Errorf("trunc(%g) = %g, want %g", c.x, v.Float(), c.trunc)
		}
		if v, _ := fixed.FromFloat(c.x, f, fixed.Nearest, fixed.Saturate); v.Float() != c.nearest {
			t.Errorf("nearest(%g) = %g, want %g", c.x, v.Float(), c.nearest)
		}
		if v, _ := fixed.FromFloat(c.x, f, fixed.NearestEven, fixed.Saturate); v.Float() != c.nearEven {
			t.Errorf("nearestEven(%g) = %g, want %g", c.x, v.Float(), c.nearEven)
		}
	}
}

func TestSaturation(t *testing.T) {
	f := fixed.Q(2, 6) // [-2, 2)
	v, ov := fixed.FromFloat(5.0, f, fixed.Nearest, fixed.Saturate)
	if !ov || v.Float() != f.MaxFloat() {
		t.Errorf("saturate(5) = %g ov=%v, want max %g", v.Float(), ov, f.MaxFloat())
	}
	v, ov = fixed.FromFloat(-5.0, f, fixed.Nearest, fixed.Saturate)
	if !ov || v.Float() != -2 {
		t.Errorf("saturate(-5) = %g ov=%v, want -2", v.Float(), ov)
	}
	// Infinities saturate; NaN quantizes to zero; all report overflow.
	if v, ov = fixed.FromFloat(math.Inf(1), f, fixed.Nearest, fixed.Saturate); !ov || v.Float() != f.MaxFloat() {
		t.Errorf("saturate(+inf) = %g ov=%v", v.Float(), ov)
	}
	if v, ov = fixed.FromFloat(math.Inf(-1), f, fixed.Nearest, fixed.Saturate); !ov || v.Float() != -2 {
		t.Errorf("saturate(-inf) = %g ov=%v", v.Float(), ov)
	}
	if v, ov = fixed.FromFloat(math.NaN(), f, fixed.Nearest, fixed.Saturate); !ov || !v.IsZero() {
		t.Errorf("NaN = %g ov=%v, want 0 with overflow", v.Float(), ov)
	}
	// Astronomically large values must saturate, not wrap garbage.
	if v, ov = fixed.FromFloat(1e300, f, fixed.Nearest, fixed.Saturate); !ov || v.Float() != f.MaxFloat() {
		t.Errorf("saturate(1e300) = %g ov=%v", v.Float(), ov)
	}
}

func TestWrap(t *testing.T) {
	f := fixed.Q(4, 0) // 4-bit integers [-8, 7]
	v, ov := fixed.FromRaw(9, f, fixed.Wrap)
	if !ov || v.Raw() != -7 { // 9 mod 16 -> -7 in two's complement
		t.Errorf("wrap(9) = %d ov=%v, want -7", v.Raw(), ov)
	}
	v, ov = fixed.FromRaw(-9, f, fixed.Wrap)
	if !ov || v.Raw() != 7 {
		t.Errorf("wrap(-9) = %d ov=%v, want 7", v.Raw(), ov)
	}
	v, ov = fixed.FromRaw(7, f, fixed.Wrap)
	if ov || v.Raw() != 7 {
		t.Errorf("wrap(7) = %d ov=%v, want 7 no overflow", v.Raw(), ov)
	}
}

func TestAddSub(t *testing.T) {
	f := fixed.Q(4, 4)
	a := fixed.MustFromFloat(3.5, f, fixed.Nearest)
	b := fixed.MustFromFloat(1.25, f, fixed.Nearest)
	sum, ov := fixed.Add(a, b, fixed.Saturate)
	if ov || sum.Float() != 4.75 {
		t.Errorf("3.5+1.25 = %g ov=%v", sum.Float(), ov)
	}
	diff, ov := fixed.Sub(a, b, fixed.Saturate)
	if ov || diff.Float() != 2.25 {
		t.Errorf("3.5-1.25 = %g ov=%v", diff.Float(), ov)
	}
	// Saturating add at the rail.
	big := fixed.MustFromFloat(7.5, f, fixed.Nearest)
	sum, ov = fixed.Add(big, big, fixed.Saturate)
	if !ov || sum.Float() != f.MaxFloat() {
		t.Errorf("7.5+7.5 = %g ov=%v, want max %g", sum.Float(), ov, f.MaxFloat())
	}
	if c := fixed.Cmp(a, b); c != 1 {
		t.Errorf("Cmp(3.5, 1.25) = %d", c)
	}
	if c := fixed.Cmp(b, a); c != -1 {
		t.Errorf("Cmp(1.25, 3.5) = %d", c)
	}
	if c := fixed.Cmp(a, a); c != 0 {
		t.Errorf("Cmp(a, a) = %d", c)
	}
}

func TestNegAbs(t *testing.T) {
	f := fixed.Q(4, 4)
	a := fixed.MustFromFloat(-3.5, f, fixed.Nearest)
	n, ov := fixed.Neg(a, fixed.Saturate)
	if ov || n.Float() != 3.5 {
		t.Errorf("Neg(-3.5) = %g ov=%v", n.Float(), ov)
	}
	ab, ov := fixed.Abs(a, fixed.Saturate)
	if ov || ab.Float() != 3.5 {
		t.Errorf("Abs(-3.5) = %g ov=%v", ab.Float(), ov)
	}
	pos := fixed.MustFromFloat(1.5, f, fixed.Nearest)
	if ab, _ := fixed.Abs(pos, fixed.Saturate); ab != pos {
		t.Error("Abs of positive must be identity")
	}
	// The most negative value overflows on negation.
	mn, _ := fixed.FromRaw(f.MinRaw(), f, fixed.Wrap)
	if _, ov := fixed.Neg(mn, fixed.Saturate); !ov {
		t.Error("Neg(min) must overflow")
	}
}

func TestMismatchedFormatsPanic(t *testing.T) {
	a := fixed.MustFromFloat(1, fixed.Q(4, 4), fixed.Nearest)
	b := fixed.MustFromFloat(1, fixed.Q(4, 8), fixed.Nearest)
	defer func() {
		if recover() == nil {
			t.Error("Add of mismatched formats must panic")
		}
	}()
	fixed.Add(a, b, fixed.Saturate)
}

func TestMul(t *testing.T) {
	f := fixed.Q(2, 16)
	a := fixed.MustFromFloat(0.5, f, fixed.Nearest)
	b := fixed.MustFromFloat(0.25, f, fixed.Nearest)
	p, ov := fixed.Mul(a, b, f, fixed.Nearest, fixed.Saturate)
	if ov || p.Float() != 0.125 {
		t.Errorf("0.5*0.25 = %g ov=%v", p.Float(), ov)
	}
	// Product into a wider format keeps every bit.
	wide := fixed.Q(4, 28)
	p, ov = fixed.Mul(a, b, wide, fixed.Truncate, fixed.Saturate)
	if ov || p.Float() != 0.125 {
		t.Errorf("widened product = %g ov=%v", p.Float(), ov)
	}
	// Mixed input formats are allowed.
	c := fixed.MustFromFloat(3, fixed.Q(8, 8), fixed.Nearest)
	p, ov = fixed.Mul(a, c, fixed.Q(8, 8), fixed.Nearest, fixed.Saturate)
	if ov || p.Float() != 1.5 {
		t.Errorf("0.5*3 = %g ov=%v", p.Float(), ov)
	}
	// Saturating overflow of the output format.
	big := fixed.MustFromFloat(1.9, f, fixed.Nearest)
	if _, ov = fixed.Mul(big, big, fixed.Q(2, 16), fixed.Nearest, fixed.Saturate); !ov {
		t.Error("1.9*1.9 must overflow Q2.16")
	}
}

func TestConvert(t *testing.T) {
	v := fixed.MustFromFloat(1.2345, fixed.Q(4, 20), fixed.Nearest)
	n, ov := fixed.Convert(v, fixed.Q(4, 8), fixed.Nearest, fixed.Saturate)
	if ov {
		t.Error("narrowing 1.2345 overflowed")
	}
	if math.Abs(n.Float()-1.2345) > fixed.Q(4, 8).Eps()/2 {
		t.Errorf("narrowed to %g, error beyond eps/2", n.Float())
	}
	// Widening is exact.
	w, ov := fixed.Convert(n, fixed.Q(4, 20), fixed.Truncate, fixed.Saturate)
	if ov || w.Float() != n.Float() {
		t.Errorf("widening changed value: %g -> %g", n.Float(), w.Float())
	}
	// Narrowing the range saturates.
	big := fixed.MustFromFloat(7.5, fixed.Q(4, 4), fixed.Nearest)
	s, ov := fixed.Convert(big, fixed.Q(2, 6), fixed.Nearest, fixed.Saturate)
	if !ov || s.Float() != fixed.Q(2, 6).MaxFloat() {
		t.Errorf("Convert(7.5 -> Q2.6) = %g ov=%v", s.Float(), ov)
	}
}

func TestAccumulatorMAC(t *testing.T) {
	// DSP48-style: 18-bit operands, 48-bit accumulator.
	f := fixed.Q(2, 16)
	acc := fixed.MustNewAcc(32, 48)
	// Sum of 1000 products 0.5*0.25 = 125 exactly.
	a := fixed.MustFromFloat(0.5, f, fixed.Nearest)
	b := fixed.MustFromFloat(0.25, f, fixed.Nearest)
	for i := 0; i < 1000; i++ {
		acc.MAC(a, b)
	}
	if acc.Overflowed() {
		t.Error("accumulator overflowed unexpectedly")
	}
	got, ov := acc.Value(fixed.Q(16, 12), fixed.Nearest, fixed.Saturate)
	if ov || got.Float() != 125 {
		t.Errorf("MAC total = %g ov=%v, want 125", got.Float(), ov)
	}
	if acc.Float() != 125 {
		t.Errorf("Float() = %g, want 125", acc.Float())
	}
	acc.Reset()
	if acc.Float() != 0 || acc.Overflowed() {
		t.Error("Reset did not clear state")
	}
	if acc.Frac() != 32 || acc.Width() != 48 {
		t.Errorf("geometry %d/%d, want 32/48", acc.Frac(), acc.Width())
	}
}

func TestAccumulatorWrap(t *testing.T) {
	// A deliberately narrow accumulator wraps like real silicon.
	f := fixed.Q(8, 0)
	acc := fixed.MustNewAcc(0, 8) // 8-bit accumulator [-128, 127]
	v := fixed.MustFromFloat(100, f, fixed.Nearest)
	one := fixed.MustFromFloat(1, f, fixed.Nearest)
	acc.MAC(v, one) // 100
	acc.MAC(v, one) // 200 -> wraps
	if !acc.Overflowed() {
		t.Error("8-bit accumulator at 200 must latch overflow")
	}
	if got := acc.Float(); got != 200-256 {
		t.Errorf("wrapped value = %g, want %g", got, float64(200-256))
	}
}

func TestAccumulatorAddValue(t *testing.T) {
	acc := fixed.MustNewAcc(16, 48)
	v := fixed.MustFromFloat(1.5, fixed.Q(4, 8), fixed.Nearest)
	acc.AddValue(v)
	acc.AddValue(v)
	if got := acc.Float(); got != 3 {
		t.Errorf("AddValue total = %g, want 3", got)
	}
}

func TestAccumulatorGeometryErrors(t *testing.T) {
	if _, err := fixed.NewAcc(-1, 48); !errors.Is(err, fixed.ErrBadFormat) {
		t.Errorf("NewAcc(-1,48): %v", err)
	}
	if _, err := fixed.NewAcc(16, 16); !errors.Is(err, fixed.ErrBadFormat) {
		t.Errorf("NewAcc(16,16): %v", err)
	}
	if _, err := fixed.NewAcc(16, 64); !errors.Is(err, fixed.ErrBadFormat) {
		t.Errorf("NewAcc(16,64): %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewAcc on bad geometry must panic")
		}
	}()
	fixed.MustNewAcc(0, 0)
}

func TestAccumulatorMACFractionMismatchPanics(t *testing.T) {
	acc := fixed.MustNewAcc(16, 48)
	a := fixed.MustFromFloat(1, fixed.Q(4, 4), fixed.Nearest)
	defer func() {
		if recover() == nil {
			t.Error("MAC with wrong product fraction must panic")
		}
	}()
	acc.MAC(a, a) // product fraction 8 != 16
}

func TestAccumulatorAddValueFractionPanics(t *testing.T) {
	acc := fixed.MustNewAcc(4, 48)
	v := fixed.MustFromFloat(1, fixed.Q(4, 8), fixed.Nearest)
	defer func() {
		if recover() == nil {
			t.Error("AddValue with excess fraction must panic")
		}
	}()
	acc.AddValue(v)
}

func TestMustFromFloatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFromFloat out of range must panic")
		}
	}()
	fixed.MustFromFloat(100, fixed.Q(2, 16), fixed.Nearest)
}

func TestValueString(t *testing.T) {
	v := fixed.MustFromFloat(0.25, fixed.Q(2, 16), fixed.Nearest)
	if got := v.String(); got != "0.25(Q2.16)" {
		t.Errorf("String = %q", got)
	}
}

func TestModeStrings(t *testing.T) {
	if fixed.Truncate.String() != "truncate" || fixed.Nearest.String() != "nearest" ||
		fixed.NearestEven.String() != "nearest-even" {
		t.Error("RoundMode strings wrong")
	}
	if fixed.Saturate.String() != "saturate" || fixed.Wrap.String() != "wrap" {
		t.Error("OverflowMode strings wrong")
	}
	if fixed.RoundMode(9).String() != "RoundMode(9)" || fixed.OverflowMode(9).String() != "OverflowMode(9)" {
		t.Error("unknown mode strings wrong")
	}
}
