// Package fixed implements signed two's-complement fixed-point
// arithmetic with explicit Q formats, rounding modes and overflow
// handling.
//
// It is the numerical substrate of the RAT precision test (Section 3.2
// of the paper): FPGA designs trade precision for resources, so the
// methodology needs to evaluate candidate fixed-point formats against a
// floating-point reference. The 1-D PDF case study settles on 18-bit
// fixed point specifically so each multiplication fits a single Xilinx
// 18x18 multiply-accumulate unit; this package models such formats
// bit-exactly, including the wide accumulators those MAC units provide.
//
// A Format carries Int integer bits (including the sign bit) and Frac
// fractional bits; a Value is a raw two's-complement integer scaled by
// 2^-Frac. Total width is limited to 32 bits so products always fit an
// int64 without loss.
package fixed

import (
	"errors"
	"fmt"
	"math"
)

// MaxWidth is the largest supported total format width in bits. The
// limit guarantees that the full product of any two values fits in an
// int64 (32+32 = 64 > 62 magnitude bits).
const MaxWidth = 32

// RoundMode selects how discarded fraction bits are resolved when
// narrowing.
type RoundMode int

const (
	// Truncate drops the discarded bits: rounding toward negative
	// infinity, the behaviour of a bare arithmetic right shift and
	// the cheapest choice in hardware.
	Truncate RoundMode = iota
	// Nearest rounds to the nearest representable value with ties
	// away from zero (the common DSP "round half up" on magnitudes).
	Nearest
	// NearestEven rounds to nearest with ties to the even value,
	// IEEE-754 style; it is bias-free over long accumulations.
	NearestEven
)

// String implements fmt.Stringer.
func (m RoundMode) String() string {
	switch m {
	case Truncate:
		return "truncate"
	case Nearest:
		return "nearest"
	case NearestEven:
		return "nearest-even"
	default:
		return fmt.Sprintf("RoundMode(%d)", int(m))
	}
}

// OverflowMode selects what happens when a result exceeds the target
// format's range.
type OverflowMode int

const (
	// Saturate clamps to the nearest representable extreme, the
	// usual choice for signal-processing datapaths.
	Saturate OverflowMode = iota
	// Wrap keeps the low-order bits with sign extension, the
	// behaviour of plain two's-complement hardware without
	// saturation logic.
	Wrap
)

// String implements fmt.Stringer.
func (m OverflowMode) String() string {
	switch m {
	case Saturate:
		return "saturate"
	case Wrap:
		return "wrap"
	default:
		return fmt.Sprintf("OverflowMode(%d)", int(m))
	}
}

// Format describes a signed fixed-point representation with Int
// integer bits (including the sign bit) and Frac fractional bits. The
// zero Format is invalid; construct with NewFormat or Q.
type Format struct {
	Int  int
	Frac int
}

// ErrBadFormat tags format-construction failures.
var ErrBadFormat = errors.New("fixed: invalid format")

// NewFormat validates and returns a Format with the given integer
// (including sign) and fractional bit counts. Int must be at least 1,
// Frac non-negative, and the total width within MaxWidth.
func NewFormat(intBits, fracBits int) (Format, error) {
	switch {
	case intBits < 1:
		return Format{}, fmt.Errorf("%w: need at least 1 integer (sign) bit, got %d", ErrBadFormat, intBits)
	case fracBits < 0:
		return Format{}, fmt.Errorf("%w: negative fraction bits %d", ErrBadFormat, fracBits)
	case intBits+fracBits > MaxWidth:
		return Format{}, fmt.Errorf("%w: width %d exceeds %d bits", ErrBadFormat, intBits+fracBits, MaxWidth)
	}
	return Format{Int: intBits, Frac: fracBits}, nil
}

// Q returns the Format Q(i.f), panicking on an invalid specification.
// Use it for compile-time-constant formats ("Q(2, 16)" is the 18-bit
// format of the PDF case study).
func Q(intBits, fracBits int) Format {
	f, err := NewFormat(intBits, fracBits)
	if err != nil {
		//rat:allow-panic Must-style constructor for compile-time-constant formats
		panic(err)
	}
	return f
}

// Width returns the total number of bits, sign included.
func (f Format) Width() int { return f.Int + f.Frac }

// Eps returns the quantization step 2^-Frac: the value of one least
// significant bit.
func (f Format) Eps() float64 { return math.Ldexp(1, -f.Frac) }

// MaxRaw returns the largest raw integer representable: 2^(W-1)-1.
func (f Format) MaxRaw() int64 { return (int64(1) << (f.Width() - 1)) - 1 }

// MinRaw returns the smallest raw integer representable: -2^(W-1).
func (f Format) MinRaw() int64 { return -(int64(1) << (f.Width() - 1)) }

// MaxFloat returns the largest representable real value.
func (f Format) MaxFloat() float64 { return float64(f.MaxRaw()) * f.Eps() }

// MinFloat returns the smallest (most negative) representable value.
func (f Format) MinFloat() float64 { return float64(f.MinRaw()) * f.Eps() }

// Valid reports whether the format was properly constructed.
func (f Format) Valid() bool {
	return f.Int >= 1 && f.Frac >= 0 && f.Width() <= MaxWidth
}

// String implements fmt.Stringer, e.g. "Q2.16".
func (f Format) String() string { return fmt.Sprintf("Q%d.%d", f.Int, f.Frac) }

// Value is a fixed-point number: a raw two's-complement integer
// interpreted at the scale of its Format. The zero Value is 0 in the
// invalid zero Format; obtain Values with FromFloat or FromRaw.
type Value struct {
	raw int64
	fmt Format
}

// FromRaw builds a Value from a raw integer already scaled by 2^Frac,
// applying the overflow mode if it exceeds the format's range. The
// second return reports whether overflow handling fired.
func FromRaw(raw int64, f Format, om OverflowMode) (Value, bool) {
	r, ov := fit(raw, f, om)
	return Value{raw: r, fmt: f}, ov
}

// FromFloat quantizes x into format f with the given rounding and
// overflow modes. The second return reports overflow (including
// infinite x); NaN quantizes to zero with overflow reported.
func FromFloat(x float64, f Format, rm RoundMode, om OverflowMode) (Value, bool) {
	if math.IsNaN(x) {
		return Value{raw: 0, fmt: f}, true
	}
	if math.IsInf(x, 0) {
		if om == Saturate {
			if x > 0 {
				return Value{raw: f.MaxRaw(), fmt: f}, true
			}
			return Value{raw: f.MinRaw(), fmt: f}, true
		}
		return Value{raw: 0, fmt: f}, true
	}
	scaled := math.Ldexp(x, f.Frac)
	// Reject magnitudes far outside int64 before conversion.
	if scaled >= math.MaxInt64/2 || scaled <= math.MinInt64/2 {
		if om == Saturate {
			if scaled > 0 {
				return Value{raw: f.MaxRaw(), fmt: f}, true
			}
			return Value{raw: f.MinRaw(), fmt: f}, true
		}
		// Wrapping a value this far out of range has no single
		// sensible answer; define it as wrap of the saturated
		// extreme (i.e. the extreme itself).
		return Value{raw: 0, fmt: f}, true
	}
	var r int64
	switch rm {
	case Nearest:
		if scaled >= 0 {
			r = int64(scaled + 0.5)
		} else {
			r = -int64(-scaled + 0.5)
		}
	case NearestEven:
		r = int64(math.RoundToEven(scaled))
	default: // Truncate: toward negative infinity
		r = int64(math.Floor(scaled))
	}
	return FromRaw(r, f, om)
}

// MustFromFloat is FromFloat that panics on overflow; for constants
// known to be in range.
func MustFromFloat(x float64, f Format, rm RoundMode) Value {
	v, ov := FromFloat(x, f, rm, Saturate)
	if ov {
		//rat:allow-panic Must-style wrapper for values documented to be in range
		panic(fmt.Sprintf("fixed: %g overflows %v", x, f))
	}
	return v
}

// Raw returns the underlying two's-complement integer.
func (v Value) Raw() int64 { return v.raw }

// Format returns the value's format.
func (v Value) Format() Format { return v.fmt }

// Float converts the value to float64 exactly (every representable
// fixed-point value within 32 bits converts exactly).
func (v Value) Float() float64 { return math.Ldexp(float64(v.raw), -v.fmt.Frac) }

// IsZero reports whether the value is exactly zero.
func (v Value) IsZero() bool { return v.raw == 0 }

// String implements fmt.Stringer, e.g. "0.249878(Q2.16)".
func (v Value) String() string { return fmt.Sprintf("%g(%v)", v.Float(), v.fmt) }

// fit applies overflow handling to a raw integer for format f.
func fit(raw int64, f Format, om OverflowMode) (int64, bool) {
	mx, mn := f.MaxRaw(), f.MinRaw()
	if raw <= mx && raw >= mn {
		return raw, false
	}
	if om == Saturate {
		if raw > mx {
			return mx, true
		}
		return mn, true
	}
	// Wrap: keep the low Width bits with sign extension.
	w := uint(f.Width())
	um := uint64(raw) & ((1 << w) - 1)
	if um&(1<<(w-1)) != 0 {
		um |= ^uint64(0) << w
	}
	return int64(um), true
}

// sameFormat panics unless a and b share one valid format; mixing
// formats silently would corrupt scales, so it is a programming error
// on par with an out-of-range index.
func sameFormat(op string, a, b Value) {
	if a.fmt != b.fmt || !a.fmt.Valid() {
		//rat:allow-panic mixing formats silently would corrupt scales; documented invariant on par with index out of range
		panic(fmt.Sprintf("fixed: %s of mismatched or invalid formats %v and %v", op, a.fmt, b.fmt))
	}
}

// Add returns a+b in their common format under the given overflow
// mode; the bool reports overflow. Both operands must share a format.
func Add(a, b Value, om OverflowMode) (Value, bool) {
	sameFormat("Add", a, b)
	return FromRaw(a.raw+b.raw, a.fmt, om)
}

// Sub returns a-b in their common format under the given overflow
// mode. Both operands must share a format.
func Sub(a, b Value, om OverflowMode) (Value, bool) {
	sameFormat("Sub", a, b)
	return FromRaw(a.raw-b.raw, a.fmt, om)
}

// Neg returns -v; overflow is possible for the most negative value.
func Neg(v Value, om OverflowMode) (Value, bool) {
	return FromRaw(-v.raw, v.fmt, om)
}

// Abs returns |v|; overflow is possible for the most negative value.
func Abs(v Value, om OverflowMode) (Value, bool) {
	if v.raw < 0 {
		return Neg(v, om)
	}
	return v, false
}

// Cmp compares two values of the same format: -1, 0 or +1.
func Cmp(a, b Value) int {
	sameFormat("Cmp", a, b)
	switch {
	case a.raw < b.raw:
		return -1
	case a.raw > b.raw:
		return 1
	default:
		return 0
	}
}

// Mul multiplies a and b (any formats) and delivers the result in
// format out using the given rounding and overflow modes. The full
// double-width product is formed first, as hardware multipliers do, so
// no precision is lost before the final narrowing.
func Mul(a, b Value, out Format, rm RoundMode, om OverflowMode) (Value, bool) {
	if !a.fmt.Valid() || !b.fmt.Valid() || !out.Valid() {
		//rat:allow-panic invalid formats corrupt scales silently; documented invariant on par with index out of range
		panic(fmt.Sprintf("fixed: Mul with invalid format (%v, %v -> %v)", a.fmt, b.fmt, out))
	}
	prod := a.raw * b.raw // exact: <= 62 magnitude bits
	return renorm(prod, a.fmt.Frac+b.fmt.Frac, out, rm, om)
}

// Convert re-quantizes v into format out with the given rounding and
// overflow modes.
func Convert(v Value, out Format, rm RoundMode, om OverflowMode) (Value, bool) {
	if !v.fmt.Valid() || !out.Valid() {
		//rat:allow-panic invalid formats corrupt scales silently; documented invariant on par with index out of range
		panic(fmt.Sprintf("fixed: Convert with invalid format (%v -> %v)", v.fmt, out))
	}
	return renorm(v.raw, v.fmt.Frac, out, rm, om)
}

// renorm shifts a raw value with frac fraction bits into format out.
func renorm(raw int64, frac int, out Format, rm RoundMode, om OverflowMode) (Value, bool) {
	shift := frac - out.Frac
	switch {
	case shift == 0:
		return FromRaw(raw, out, om)
	case shift < 0:
		// Gaining fraction bits: exact left shift, then range check.
		s := uint(-shift)
		// Detect shift overflow of the int64 intermediate.
		if s >= 63 || raw > math.MaxInt64>>s || raw < math.MinInt64>>s {
			if om == Saturate {
				if raw > 0 {
					return Value{raw: out.MaxRaw(), fmt: out}, true
				}
				return Value{raw: out.MinRaw(), fmt: out}, true
			}
			return FromRaw(raw<<s, out, om) // wrap semantics
		}
		return FromRaw(raw<<s, out, om)
	default:
		return FromRaw(shiftRound(raw, uint(shift), rm), out, om)
	}
}

// shiftRound performs an arithmetic right shift by s with the given
// rounding mode.
func shiftRound(x int64, s uint, rm RoundMode) int64 {
	if s == 0 {
		return x
	}
	if s > 63 {
		s = 63
	}
	switch rm {
	case Nearest:
		half := int64(1) << (s - 1)
		if x >= 0 {
			return (x + half) >> s
		}
		return -((-x + half) >> s)
	case NearestEven:
		q := x >> s
		r := x - (q << s) // remainder in [0, 2^s)
		half := int64(1) << (s - 1)
		if r > half || (r == half && q&1 == 1) {
			q++
		}
		return q
	default: // Truncate
		return x >> s
	}
}
