package fixed_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/chrec/rat/internal/fixed"
)

func TestDivExactCases(t *testing.T) {
	f := fixed.Q(8, 8)
	mk := func(x float64) fixed.Value { return fixed.MustFromFloat(x, f, fixed.Nearest) }
	cases := []struct {
		a, b, want float64
	}{
		{1, 2, 0.5},
		{3, 4, 0.75},
		{10, 5, 2},
		{-9, 3, -3},
		{9, -3, -3},
		{-9, -3, 3},
		{0, 7, 0},
		{1, 8, 0.125},
	}
	for _, c := range cases {
		got, ov := fixed.Div(mk(c.a), mk(c.b), f, fixed.Nearest, fixed.Saturate)
		if ov || got.Float() != c.want {
			t.Errorf("Div(%g, %g) = %g ov=%v, want %g", c.a, c.b, got.Float(), ov, c.want)
		}
	}
}

func TestDivByZeroSaturates(t *testing.T) {
	f := fixed.Q(8, 8)
	pos := fixed.MustFromFloat(3, f, fixed.Nearest)
	neg := fixed.MustFromFloat(-3, f, fixed.Nearest)
	zero := fixed.MustFromFloat(0, f, fixed.Nearest)
	if got, ov := fixed.Div(pos, zero, f, fixed.Nearest, fixed.Saturate); !ov || got.Float() != f.MaxFloat() {
		t.Errorf("3/0 = %g ov=%v", got.Float(), ov)
	}
	if got, ov := fixed.Div(neg, zero, f, fixed.Nearest, fixed.Saturate); !ov || got.Float() != f.MinFloat() {
		t.Errorf("-3/0 = %g ov=%v", got.Float(), ov)
	}
}

func TestDivOverflowSaturates(t *testing.T) {
	f := fixed.Q(4, 12) // range [-8, 8)
	big := fixed.MustFromFloat(7.5, f, fixed.Nearest)
	tiny := fixed.MustFromFloat(f.Eps(), f, fixed.Nearest)
	got, ov := fixed.Div(big, tiny, f, fixed.Nearest, fixed.Saturate)
	if !ov || got.Float() != f.MaxFloat() {
		t.Errorf("7.5/eps = %g ov=%v, want saturated max", got.Float(), ov)
	}
	nbig, _ := fixed.Neg(big, fixed.Saturate)
	got, ov = fixed.Div(nbig, tiny, f, fixed.Nearest, fixed.Saturate)
	if !ov || got.Float() != f.MinFloat() {
		t.Errorf("-7.5/eps = %g ov=%v, want saturated min", got.Float(), ov)
	}
}

func TestDivMixedFormats(t *testing.T) {
	a := fixed.MustFromFloat(5, fixed.Q(8, 4), fixed.Nearest)
	b := fixed.MustFromFloat(0.5, fixed.Q(2, 16), fixed.Nearest)
	got, ov := fixed.Div(a, b, fixed.Q(8, 8), fixed.Nearest, fixed.Saturate)
	if ov || got.Float() != 10 {
		t.Errorf("5/0.5 across formats = %g ov=%v", got.Float(), ov)
	}
}

func TestSqrtExactCases(t *testing.T) {
	f := fixed.Q(8, 8)
	mk := func(x float64) fixed.Value { return fixed.MustFromFloat(x, f, fixed.Nearest) }
	for _, c := range []struct{ x, want float64 }{
		{0, 0}, {1, 1}, {4, 2}, {9, 3}, {0.25, 0.5}, {2.25, 1.5}, {0.0625, 0.25},
	} {
		got, ov := fixed.Sqrt(mk(c.x), f, fixed.Nearest, fixed.Saturate)
		if ov || got.Float() != c.want {
			t.Errorf("Sqrt(%g) = %g ov=%v, want %g", c.x, got.Float(), ov, c.want)
		}
	}
}

func TestSqrtNegativeClamps(t *testing.T) {
	f := fixed.Q(8, 8)
	neg := fixed.MustFromFloat(-2, f, fixed.Nearest)
	got, ov := fixed.Sqrt(neg, f, fixed.Nearest, fixed.Saturate)
	if !ov || !got.IsZero() {
		t.Errorf("Sqrt(-2) = %g ov=%v, want 0 with overflow", got.Float(), ov)
	}
}

func TestDivSqrtPanicOnInvalidFormats(t *testing.T) {
	good := fixed.MustFromFloat(1, fixed.Q(4, 4), fixed.Nearest)
	mustPanicFx(t, "Div bad out", func() { fixed.Div(good, good, fixed.Format{}, fixed.Nearest, fixed.Saturate) })
	mustPanicFx(t, "Sqrt bad out", func() { fixed.Sqrt(good, fixed.Format{}, fixed.Nearest, fixed.Saturate) })
}

func mustPanicFx(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

// PropertyDivErrorBound: the quotient differs from the real quotient
// by at most one output eps (half for nearest), absent saturation.
func TestPropertyDivErrorBound(t *testing.T) {
	f := func(s sample) bool {
		a, _ := fixed.FromFloat(s.X, s.F, fixed.Nearest, fixed.Saturate)
		b, _ := fixed.FromFloat(s.Y, s.F, fixed.Nearest, fixed.Saturate)
		if b.IsZero() {
			return true
		}
		exact := a.Float() / b.Float()
		got, ov := fixed.Div(a, b, s.F, fixed.Nearest, fixed.Saturate)
		if ov {
			return true
		}
		return math.Abs(got.Float()-exact) <= s.F.Eps()/2+1e-15
	}
	if err := quick.Check(f, sampleCfg()); err != nil {
		t.Error(err)
	}
}

// PropertyDivTruncateFloors: truncation rounds toward negative
// infinity like the other narrowing paths in the package.
func TestPropertyDivTruncateFloors(t *testing.T) {
	f := func(s sample) bool {
		a, _ := fixed.FromFloat(s.X, s.F, fixed.Nearest, fixed.Saturate)
		b, _ := fixed.FromFloat(s.Y, s.F, fixed.Nearest, fixed.Saturate)
		if b.IsZero() {
			return true
		}
		exact := a.Float() / b.Float()
		got, ov := fixed.Div(a, b, s.F, fixed.Truncate, fixed.Saturate)
		if ov {
			return true
		}
		d := exact - got.Float()
		return d >= -1e-15 && d < s.F.Eps()+1e-15
	}
	if err := quick.Check(f, sampleCfg()); err != nil {
		t.Error(err)
	}
}

// PropertySqrtErrorBound: sqrt of non-negative values is within one
// output eps of the real root.
func TestPropertySqrtErrorBound(t *testing.T) {
	f := func(s sample) bool {
		x := math.Abs(s.X)
		v, _ := fixed.FromFloat(x, s.F, fixed.Nearest, fixed.Saturate)
		got, ov := fixed.Sqrt(v, s.F, fixed.Nearest, fixed.Saturate)
		if ov {
			return true
		}
		exact := math.Sqrt(v.Float())
		return math.Abs(got.Float()-exact) <= s.F.Eps()/2+1e-12
	}
	if err := quick.Check(f, sampleCfg()); err != nil {
		t.Error(err)
	}
}

// PropertySqrtMonotone: sqrt preserves order.
func TestPropertySqrtMonotone(t *testing.T) {
	f := func(s sample) bool {
		x, y := math.Abs(s.X), math.Abs(s.Y)
		a, _ := fixed.FromFloat(x, s.F, fixed.Nearest, fixed.Saturate)
		b, _ := fixed.FromFloat(y, s.F, fixed.Nearest, fixed.Saturate)
		ra, _ := fixed.Sqrt(a, s.F, fixed.Truncate, fixed.Saturate)
		rb, _ := fixed.Sqrt(b, s.F, fixed.Truncate, fixed.Saturate)
		if a.Float() <= b.Float() {
			return ra.Float() <= rb.Float()
		}
		return ra.Float() >= rb.Float()
	}
	if err := quick.Check(f, sampleCfg()); err != nil {
		t.Error(err)
	}
}

// PropertyDivMulRoundTrip: (a/b)*b lands within a couple of eps of a.
func TestPropertyDivMulRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			f := fixed.Q(8, 16)
			// Keep divisors away from zero so quotients stay in range.
			x := (r.Float64()*100 - 50)
			y := 1 + r.Float64()*20
			if r.Intn(2) == 0 {
				y = -y
			}
			vals[0] = reflect.ValueOf(sample{F: f, X: x, Y: y})
		},
	}
	f := func(s sample) bool {
		a, _ := fixed.FromFloat(s.X, s.F, fixed.Nearest, fixed.Saturate)
		b, _ := fixed.FromFloat(s.Y, s.F, fixed.Nearest, fixed.Saturate)
		q, ov := fixed.Div(a, b, s.F, fixed.Nearest, fixed.Saturate)
		if ov {
			return true
		}
		back, ov := fixed.Mul(q, b, s.F, fixed.Nearest, fixed.Saturate)
		if ov {
			return true
		}
		// One rounding in the divide, one in the multiply, scaled
		// by |b|.
		tol := s.F.Eps() * (1 + math.Abs(b.Float()))
		return math.Abs(back.Float()-a.Float()) <= tol
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestDivSqrtComposeLikeMDDatapath: 1/sqrt(r^2) via Sqrt then Div
// agrees with float64 within datapath tolerance — the r^-1 step of a
// force pipeline.
func TestDivSqrtComposeLikeMDDatapath(t *testing.T) {
	f := fixed.Q(8, 24)
	one := fixed.MustFromFloat(1, f, fixed.Nearest)
	for _, r2 := range []float64{0.25, 1.0, 2.0, 6.25, 20.0, 100.0} {
		v := fixed.MustFromFloat(r2, f, fixed.Nearest)
		root, ov := fixed.Sqrt(v, f, fixed.Nearest, fixed.Saturate)
		if ov {
			t.Fatalf("Sqrt(%g) overflowed", r2)
		}
		inv, ov := fixed.Div(one, root, f, fixed.Nearest, fixed.Saturate)
		if ov {
			t.Fatalf("1/sqrt(%g) overflowed", r2)
		}
		want := 1 / math.Sqrt(r2)
		if math.Abs(inv.Float()-want) > 1e-5 {
			t.Errorf("1/sqrt(%g) = %.8f, want %.8f", r2, inv.Float(), want)
		}
	}
}
