// Package lint is ratlint's engine: a zero-dependency (stdlib go/ast +
// go/parser + go/types only) analyzer suite that enforces the
// repository's cross-cutting invariants as compile-time diagnostics —
// the properties the ROADMAP's "cheap, deterministic, bit-reproducible"
// promise rests on, which until now were guarded only by runtime tests
// that each package had to re-invent.
//
// The checks, each with a stable ID usable in ratlint -checks:
//
//	nodeterminism  no wall-clock reads, math/rand, or map-iteration
//	               order leaking into returned slices inside the
//	               deterministic packages (internal/core, explore,
//	               fault, rcsim, sim, plus any package whose doc
//	               carries //rat:deterministic)
//	hotpath        functions annotated //rat:hotpath may not contain
//	               fmt.Sprintf, string concatenation in loops,
//	               unhinted append growth in loops, interface boxing
//	               of scalars, or escaping closures that capture
//	               (complements the runtime AllocsPerRun gates)
//	exitcode       no os.Exit / log.Fatal* / log.Panic* / panic
//	               outside cmd/, examples/ and internal/cli, so the
//	               shared 0/1/2 exit contract cannot be bypassed
//	errwrap        sentinel errors are wrapped with %w and compared
//	               with errors.Is, never by == or string matching
//	metricname     string literals registered with the telemetry
//	               registry must satisfy the Prometheus naming
//	               grammar that telemetry.ValidateProm enforces on
//	               the scrape side; dynamic label values (a runtime
//	               value spliced inside a {label="..."} block) must
//	               carry //rat:bounded-labels <reason> asserting the
//	               value set is bounded, or they are flagged as a
//	               label-cardinality hazard
//	directive      every //rat: comment parses: known name, correct
//	               arity, a reason on each allow-* escape hatch
//
// Escape hatches are //rat: directives placed on (or immediately
// above) the offending line: //rat:allow-wallclock <reason>,
// //rat:allow-maporder <reason>, //rat:allow-panic <reason>. Each
// requires a stated reason, so every suppression is a documented
// decision. See docs/LINT.md.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding: a stable check ID, a position, and a
// human message. The JSON field names are the ratlint -json contract.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the conventional compiler-style line
// "file:line:col: message [check]".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Check)
}

// diag builds a Diagnostic from a token position.
func diag(check string, pos token.Position, format string, args ...any) Diagnostic {
	return Diagnostic{
		Check:   check,
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// Analyzer is one invariant checker. Run inspects a loaded,
// type-checked package and returns its findings; the driver owns
// ordering and rendering.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// Analyzers returns the full suite in stable (alphabetical) order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerDirective,
		analyzerErrwrap,
		analyzerExitcode,
		analyzerHotpath,
		analyzerMetricname,
		analyzerNodeterminism,
	}
}

// ByName resolves a check ID to its analyzer.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Run applies the enabled analyzers (all of them when enabled is nil)
// to every package and returns the findings sorted by file, line,
// column, then check ID — a stable order for golden tests and diffs.
func Run(pkgs []*Package, enabled map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		for _, a := range Analyzers() {
			if enabled != nil && !enabled[a.Name] {
				continue
			}
			out = append(out, a.Run(p)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return out
}
