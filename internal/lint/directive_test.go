package lint_test

import (
	"strings"
	"testing"

	"github.com/chrec/rat/internal/lint"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		comment string
		ok      bool
		wantErr string // "" means parse succeeds (when ok) or is ignored (when !ok)
		name    string
		reason  string
	}{
		// Valid forms.
		{comment: "//rat:hotpath", ok: true, name: "hotpath"},
		{comment: "//rat:deterministic", ok: true, name: "deterministic"},
		{comment: "//rat:allow-wallclock feeds telemetry only", ok: true, name: "allow-wallclock", reason: "feeds telemetry only"},
		{comment: "//rat:allow-panic invariant: builder cannot fail", ok: true, name: "allow-panic", reason: "invariant: builder cannot fail"},
		{comment: "//rat:allow-maporder consumer sorts", ok: true, name: "allow-maporder", reason: "consumer sorts"},
		{comment: "//rat:allow-panic\ttab separated reason", ok: true, name: "allow-panic", reason: "tab separated reason"},

		// Not directives at all.
		{comment: "// plain comment", ok: false},
		{comment: "// rat:hotpath", ok: false},
		{comment: "//go:generate stringer", ok: false},
		{comment: "/*rat:hotpath*/", ok: false},
		{comment: "//RAT:hotpath", ok: false},

		// Malformed.
		{comment: "//rat:", ok: true, wantErr: "empty"},
		{comment: "//rat: hotpath", ok: true, wantErr: "whitespace"},
		{comment: "//rat:\thotpath", ok: true, wantErr: "whitespace"},
		{comment: "//rat:frobnicate", ok: true, wantErr: "unknown directive"},
		{comment: "//rat:allow-panic", ok: true, wantErr: "requires a reason"},
		{comment: "//rat:allow-wallclock", ok: true, wantErr: "requires a reason"},
		{comment: "//rat:allow-maporder   ", ok: true, wantErr: "requires a reason"},
		{comment: "//rat:hotpath with an argument", ok: true, wantErr: "takes no argument"},
		{comment: "//rat:deterministic yes", ok: true, wantErr: "takes no argument"},
		{comment: "//rat:Hotpath", ok: true, wantErr: "unknown directive"},
	}
	for _, tc := range cases {
		d, ok, err := lint.ParseDirective(tc.comment)
		if ok != tc.ok {
			t.Errorf("%q: ok=%v, want %v", tc.comment, ok, tc.ok)
			continue
		}
		if !tc.ok {
			if err != nil {
				t.Errorf("%q: non-directive returned error %v", tc.comment, err)
			}
			continue
		}
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%q: err=%v, want it to mention %q", tc.comment, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: unexpected error %v", tc.comment, err)
			continue
		}
		if d.Name != tc.name || d.Reason != tc.reason {
			t.Errorf("%q: parsed (%q, %q), want (%q, %q)", tc.comment, d.Name, d.Reason, tc.name, tc.reason)
		}
	}
}

// FuzzParseDirective pins the parser's total behavior: it never
// panics, non //rat: comments are never directives and never errors,
// and a successful parse returns a known name with the arity the spec
// demands.
func FuzzParseDirective(f *testing.F) {
	seeds := []string{
		"//rat:hotpath",
		"//rat:allow-wallclock reason",
		"//rat:allow-panic",
		"//rat: hotpath",
		"//rat:",
		"//rat:\x00",
		"// rat:deterministic",
		"//rat:allow-maporder \t ",
		"//rat:hotpath\nsecond line",
		strings.Repeat("//rat:", 100),
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	known := map[string]bool{
		"hotpath": true, "deterministic": true,
		"allow-wallclock": true, "allow-panic": true, "allow-maporder": true,
	}
	f.Fuzz(func(t *testing.T, comment string) {
		d, ok, err := lint.ParseDirective(comment)
		if !strings.HasPrefix(comment, "//rat:") {
			if ok || err != nil {
				t.Fatalf("%q: non-directive input returned ok=%v err=%v", comment, ok, err)
			}
			return
		}
		if !ok {
			t.Fatalf("%q: //rat: input not recognized as directive namespace", comment)
		}
		if err != nil {
			return // malformed is a valid outcome; it just must not panic
		}
		if !known[d.Name] {
			t.Fatalf("%q: parsed unknown directive name %q", comment, d.Name)
		}
		isAllow := strings.HasPrefix(d.Name, "allow-")
		if isAllow && d.Reason == "" {
			t.Fatalf("%q: allow directive parsed without a reason", comment)
		}
		if !isAllow && d.Reason != "" {
			t.Fatalf("%q: arity-0 directive parsed with argument %q", comment, d.Reason)
		}
	})
}
