package lint

import (
	"go/ast"
)

// The exit-code contract (internal/cli): 0 success, 1 runtime failure,
// 2 usage error. Only the binaries' own mains may decide the process
// exit status — a library that calls os.Exit or log.Fatal* skips every
// deferred cleanup and steals the decision, and an escaping panic
// terminates the process with status 2, colliding with "usage error".
// Invariant panics ("this cannot happen") are permitted when annotated
// //rat:allow-panic <reason>, which turns each one into a documented,
// greppable decision.

// exitFatalFuncs are the process-terminating stdlib calls banned
// outside command packages. log.Panic* is included: it panics by
// another name.
var exitFatalFuncs = map[string]map[string]bool{
	"os":  {"Exit": true},
	"log": {"Fatal": true, "Fatalf": true, "Fatalln": true, "Panic": true, "Panicf": true, "Panicln": true},
}

var analyzerExitcode = &Analyzer{
	Name: "exitcode",
	Doc:  "no os.Exit, log.Fatal*, log.Panic*, or unannotated panic outside cmd/, examples/, and internal/cli",
	Run:  runExitcode,
}

// exitcodeExempt reports whether the package owns its process exit:
// the binaries under cmd/ and examples/, and the exit-contract package
// itself.
func exitcodeExempt(rel string) bool {
	return rel == "internal/cli" ||
		pkgPathHasPrefix(rel, "cmd") ||
		pkgPathHasPrefix(rel, "examples")
}

func runExitcode(p *Package) []Diagnostic {
	if exitcodeExempt(p.RelPath) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := p.calleeFunc(call); fn != nil && fn.Pkg() != nil {
				if exitFatalFuncs[fn.Pkg().Path()][fn.Name()] {
					out = append(out, diag("exitcode", p.pos(call),
						"%s.%s in a library package bypasses the 0/1/2 exit contract; return an error instead", fn.Pkg().Name(), fn.Name()))
				}
				return true
			}
			if p.calleeBuiltin(call, "panic") {
				pos := p.pos(call)
				if p.dirs.allowedAt(pos, DirAllowPanic) {
					return true
				}
				out = append(out, diag("exitcode", pos,
					"panic in a library package escapes as exit status 2 (the usage-error code); return an error, or annotate //rat:allow-panic <reason> for a true invariant"))
			}
			return true
		})
	}
	return out
}
