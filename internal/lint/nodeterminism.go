package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// The packages whose results must be a pure function of their inputs:
// the prediction kernel and everything the search/replay/merge paths
// depend on. Byte-identical replay (rcsim, fault), order-independent
// exploration merges and the distributed shard merge (cluster) all
// die the moment wall-clock time or iteration order sneaks into a
// result.
var deterministicPackages = map[string]bool{
	"internal/cluster": true,
	"internal/core":    true,
	"internal/explore": true,
	"internal/fault":   true,
	"internal/rcsim":   true,
	"internal/sim":     true,
}

// wallClockFuncs are the time package's nondeterminism sources. The
// time *types* (Duration, Time as data) are fine — simulated time is
// the whole point of rcsim — only reads of the real clock are banned.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

var analyzerNodeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "deterministic packages may not read the wall clock, import math/rand, or leak map iteration order into returned slices",
	Run:  runNodeterminism,
}

func runNodeterminism(p *Package) []Diagnostic {
	if !deterministicPackages[p.RelPath] && !p.dirs.pkgLevel[DirDeterministic] {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, diag("nodeterminism", p.pos(imp),
					"deterministic package imports %s; derive pseudo-randomness from an explicit seed hash instead", path))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			pos := p.pos(call)
			if p.dirs.allowedAt(pos, DirAllowWallclock) {
				return true
			}
			out = append(out, diag("nodeterminism", pos,
				"wall-clock read time.%s in a deterministic package; annotate //rat:allow-wallclock <reason> if this only feeds telemetry", fn.Name()))
			return true
		})
	}
	out = append(out, mapOrderLeaks(p)...)
	return out
}

// mapOrderLeaks flags `for range <map>` loops that append into a slice
// the enclosing function returns: the slice's element order then
// depends on Go's randomized map iteration, so two identical runs can
// produce different bytes. A sort of that slice after the loop (in the
// statements that follow it, at any nesting depth) erases the order
// and clears the finding, as does //rat:allow-maporder.
func mapOrderLeaks(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var results *ast.FieldList
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body, results = fn.Body, fn.Type.Results
			case *ast.FuncLit:
				body, results = fn.Body, fn.Type.Results
			default:
				return true
			}
			if body == nil || results == nil || results.NumFields() == 0 {
				return true
			}
			out = append(out, mapOrderLeaksInFunc(p, body)...)
			return true // keep descending: nested FuncLits get their own pass
		})
	}
	return out
}

func mapOrderLeaksInFunc(p *Package, body *ast.BlockStmt) []Diagnostic {
	// Objects returned directly from this function. An identifier
	// buried in a call (len(keys), strings.Join(keys, ...)) is not the
	// slice itself escaping, so only bare results count.
	returned := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil {
					returned[obj] = true
				}
			}
		}
		return true
	})
	if len(returned) == 0 {
		return nil
	}

	var out []Diagnostic
	// Walk statement lists so each range loop can see its successors.
	var walkStmts func(list []ast.Stmt)
	walkStmts = func(list []ast.Stmt) {
		for i, st := range list {
			rng, ok := st.(*ast.RangeStmt)
			if ok && isMapType(p.exprType(rng.X)) {
				for _, obj := range appendTargets(p, rng.Body) {
					if !returned[obj] {
						continue
					}
					pos := p.pos(rng)
					if p.dirs.allowedAt(pos, DirAllowMaporder) || sortedAfter(p, list[i+1:], obj) {
						continue
					}
					out = append(out, diag("nodeterminism", pos,
						"map iteration order leaks into returned slice %q; sort it before returning", obj.Name()))
				}
			}
			// Recurse into every nested statement block.
			ast.Inspect(st, func(n ast.Node) bool {
				if blk, ok := n.(*ast.BlockStmt); ok && n != st {
					walkStmts(blk.List)
					return false
				}
				switch inner := n.(type) {
				case *ast.ForStmt:
					walkStmts(inner.Body.List)
					return false
				case *ast.RangeStmt:
					if inner != st {
						walkStmts(inner.Body.List)
						return false
					}
				case *ast.CaseClause:
					walkStmts(inner.Body)
					return false
				case *ast.CommClause:
					walkStmts(inner.Body)
					return false
				case *ast.FuncLit:
					return false // analyzed as its own function
				}
				return true
			})
		}
	}
	walkStmts(body.List)
	return out
}

// appendTargets returns the objects assigned from an append(...) call
// inside the block.
func appendTargets(p *Package, body ast.Node) []types.Object {
	var objs []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !p.calleeBuiltin(call, "append") || i >= len(asg.Lhs) {
				continue
			}
			if id, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident); ok {
				if obj := p.objectOf(id); obj != nil {
					objs = append(objs, obj)
				}
			}
		}
		return true
	})
	return objs
}

// sortedAfter reports whether any statement in list calls into sort or
// slices with obj among the arguments — the conventional "erase the
// map order" step.
func sortedAfter(p *Package, list []ast.Stmt, obj types.Object) bool {
	for _, st := range list {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && p.Info.Uses[id] == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// exprType returns the static type of an expression, or nil.
func (p *Package) exprType(e ast.Expr) types.Type {
	tv, ok := p.Info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// objectOf resolves an identifier through both Uses and Defs.
func (p *Package) objectOf(id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// pkgPathHasPrefix reports whether the module-relative path is the
// prefix itself or lies underneath it.
func pkgPathHasPrefix(rel, prefix string) bool {
	return rel == prefix || strings.HasPrefix(rel, prefix+"/")
}
