package lint_test

import (
	"strings"
	"testing"

	"github.com/chrec/rat/internal/lint"
	"github.com/chrec/rat/internal/telemetry"
)

// TestValidateMetricName pins the lint-side grammar.
func TestValidateMetricName(t *testing.T) {
	accept := []string{
		"rat_inflight",
		"server.requests",
		"harness.experiment.pdf1d",
		"_leading_underscore",
		"name:with:colons",
		`rat_requests_total{code="200",endpoint="predict"}`,
		`rat_stage_seconds{stage="kernel"}`,
		`escapes{msg="a\"b\\c\nd"}`,
	}
	for _, name := range accept {
		if err := lint.ValidateMetricName(name, true); err != nil {
			t.Errorf("ValidateMetricName(%q) = %v, want nil", name, err)
		}
	}
	reject := []string{
		"",
		"has space",
		"2leading_digit",
		".leading_dot",
		"tab\tname",
		`{label="x"}`,
		`m{label=unquoted}`,
		`m{="v"}`,
		`m{a="1",a="2"}`,
		`m{a="1"`,
		`m{a="1",}`,
		`m{a="bad\escape"}`,
		`m{}`,
		`m{a="1"}trailing`,
	}
	for _, name := range reject {
		if err := lint.ValidateMetricName(name, true); err == nil {
			t.Errorf("ValidateMetricName(%q) accepted a malformed name", name)
		}
	}
	// A literal prefix of a dynamic name only has its family checked.
	if err := lint.ValidateMetricName("server.inflight.", false); err != nil {
		t.Errorf("prefix validation rejected a valid dotted prefix: %v", err)
	}
	if err := lint.ValidateMetricName("bad prefix.", false); err == nil {
		t.Error("prefix validation accepted a space")
	}
}

// TestMetricNamesSurviveExposition ties the lint grammar to the
// scrape-side oracle: every complete name the analyzer accepts must,
// once registered and rendered, pass telemetry.ValidateProm — the
// same conformance check a real Prometheus parser mirrors. This is
// the contract that makes a lint-time pass mean a scrape-time pass.
func TestMetricNamesSurviveExposition(t *testing.T) {
	names := []string{
		"rat_inflight",
		"server.requests",
		"server.cache_hits",
		"harness.experiment.pdf1d",
		`rat_requests_total{code="200",endpoint="predict"}`,
		`rat_request_seconds{endpoint="batch"}`,
		"name:with:colons",
	}
	reg := telemetry.NewRegistry()
	for _, name := range names {
		if err := lint.ValidateMetricName(name, true); err != nil {
			t.Fatalf("lint grammar rejected %q: %v", name, err)
		}
		if strings.Contains(name, "seconds{") {
			reg.Histogram(name, []float64{0.1, 1}).Observe(0.5)
		} else {
			reg.Counter(name).Inc()
		}
	}
	var buf strings.Builder
	if err := telemetry.WriteProm(&buf, reg.Snapshot()); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	if err := telemetry.ValidateProm(buf.String()); err != nil {
		t.Fatalf("lint-accepted names failed scrape-side validation: %v\n%s", err, buf.String())
	}
}
