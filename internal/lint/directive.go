package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The //rat: directive namespace. Directives follow the Go toolchain
// convention: //rat:name immediately after the slashes (no space),
// optionally followed by an argument. They are the analyzers'
// configuration surface and escape hatches:
//
//	//rat:hotpath                    (func doc) zero-alloc discipline
//	//rat:deterministic              (package doc) opt into nodeterminism
//	//rat:allow-wallclock <reason>   suppress one wall-clock finding
//	//rat:allow-maporder <reason>    suppress one map-order finding
//	//rat:allow-panic <reason>       suppress one panic finding
//	//rat:bounded-labels <reason>    assert a dynamic metric label
//	                                 value comes from a bounded set
//
// The allow-* and bounded-labels forms require a reason so that every
// suppression is a reviewable, documented decision, not a silent
// opt-out.

// DirectivePrefix introduces every rat directive comment.
const DirectivePrefix = "//rat:"

// Directive names understood by the suite.
const (
	DirHotpath        = "hotpath"
	DirDeterministic  = "deterministic"
	DirAllowWallclock = "allow-wallclock"
	DirAllowMaporder  = "allow-maporder"
	DirAllowPanic     = "allow-panic"
	DirBoundedLabels  = "bounded-labels"
)

// directiveSpec records each known directive's argument arity.
var directiveSpec = map[string]struct{ needsReason bool }{
	DirHotpath:        {false},
	DirDeterministic:  {false},
	DirAllowWallclock: {true},
	DirAllowMaporder:  {true},
	DirAllowPanic:     {true},
	DirBoundedLabels:  {true},
}

// Directive is one parsed //rat: comment.
type Directive struct {
	Name   string
	Reason string // the argument of allow-* directives
}

// ParseDirective parses one raw line-comment text (including the
// leading slashes). ok is false when the comment is not in the //rat:
// namespace at all; err is non-nil when it is but is malformed — an
// unknown name, a missing reason on an allow-* form, a stray argument
// on an arity-0 form, or whitespace between "//rat:" and the name.
func ParseDirective(comment string) (d Directive, ok bool, err error) {
	rest, isRat := strings.CutPrefix(comment, DirectivePrefix)
	if !isRat {
		// "// rat:" and block comments are prose, not directives.
		return Directive{}, false, nil
	}
	if rest == "" {
		return Directive{}, true, fmt.Errorf("empty //rat: directive")
	}
	if rest[0] == ' ' || rest[0] == '\t' {
		return Directive{}, true, fmt.Errorf("whitespace between //rat: and the directive name")
	}
	name, arg := rest, ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, arg = rest[:i], strings.TrimSpace(rest[i:])
	}
	spec, known := directiveSpec[name]
	if !known {
		return Directive{}, true, fmt.Errorf("unknown directive //rat:%s", name)
	}
	if spec.needsReason && arg == "" {
		return Directive{}, true, fmt.Errorf("//rat:%s requires a reason", name)
	}
	if !spec.needsReason && arg != "" {
		return Directive{}, true, fmt.Errorf("//rat:%s takes no argument (got %q)", name, arg)
	}
	return Directive{Name: name, Reason: arg}, true, nil
}

// badDirective is a //rat: comment that failed to parse, reported by
// the directive analyzer.
type badDirective struct {
	pos token.Position
	msg string
}

// directives indexes a package's parsed //rat: comments by file and
// line so analyzers can answer "is this finding suppressed here?" in
// O(1).
type directives struct {
	byLine   map[string]map[int][]Directive // file -> line -> directives
	pkgLevel map[string]bool                // names in any file's package doc
	bad      []badDirective
}

// collectDirectives scans every comment in the package once.
func collectDirectives(fset *token.FileSet, files []*ast.File) *directives {
	ds := &directives{
		byLine:   map[string]map[int][]Directive{},
		pkgLevel: map[string]bool{},
	}
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				pos := fset.Position(c.Slash)
				d, _, err := ParseDirective(c.Text)
				if err != nil {
					ds.bad = append(ds.bad, badDirective{pos: pos, msg: err.Error()})
					continue
				}
				lines := ds.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]Directive{}
					ds.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
				if group == f.Doc {
					ds.pkgLevel[d.Name] = true
				}
			}
		}
	}
	return ds
}

// allowedAt reports whether a directive with the given name sits on
// pos's line or the line directly above it — the two conventional
// placements for a suppression comment.
func (ds *directives) allowedAt(pos token.Position, name string) bool {
	lines := ds.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.Name == name {
				return true
			}
		}
	}
	return false
}

// hasDirective reports whether a comment group (typically a FuncDecl
// doc) carries the named directive.
func hasDirective(group *ast.CommentGroup, name string) bool {
	if group == nil {
		return false
	}
	for _, c := range group.List {
		if d, _, err := ParseDirective(c.Text); err == nil && d.Name == name {
			return true
		}
	}
	return false
}

// analyzerDirective reports malformed //rat: comments. A directive
// that does not parse is worse than no directive: the suppression or
// annotation the author intended silently does not apply.
var analyzerDirective = &Analyzer{
	Name: "directive",
	Doc:  "every //rat: comment must parse: known name, correct arity, a reason on each allow-* escape hatch",
	Run: func(p *Package) []Diagnostic {
		var out []Diagnostic
		for _, bad := range p.dirs.bad {
			out = append(out, diag("directive", bad.pos, "malformed rat directive: %s", bad.msg))
		}
		return out
	},
}
