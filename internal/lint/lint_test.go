package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/chrec/rat/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current analyzer output")

// fixtures maps each check ID to its fixture package under
// testdata/src. Loaded once for the whole test binary: Load shells out
// to the go tool, so one call for all six packages beats six.
var fixtures = map[string]string{
	"nodeterminism": "nodet",
	"hotpath":       "hot",
	"exitcode":      "exit",
	"errwrap":       "wrap",
	"metricname":    "metric",
	"directive":     "direct",
}

var (
	loadOnce sync.Once
	loaded   []*lint.Package
	loadErr  error
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func fixturePackages(t *testing.T) []*lint.Package {
	t.Helper()
	loadOnce.Do(func() {
		patterns := make([]string, 0, len(fixtures))
		for _, pkg := range fixtures {
			patterns = append(patterns, "./internal/lint/testdata/src/"+pkg)
		}
		loaded, loadErr = lint.Load(moduleRoot(t), patterns...)
	})
	if loadErr != nil {
		t.Fatalf("loading fixtures: %v", loadErr)
	}
	return loaded
}

// goldenLines runs exactly one analyzer over one fixture package and
// renders its findings with fixture-relative paths.
func goldenLines(t *testing.T, check string) []string {
	t.Helper()
	fixture := fixtures[check]
	var pkgs []*lint.Package
	for _, p := range fixturePackages(t) {
		if strings.HasSuffix(p.PkgPath, "/"+fixture) {
			pkgs = append(pkgs, p)
		}
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture package %q: found %d packages", fixture, len(pkgs))
	}
	base := filepath.Join(moduleRoot(t), "internal", "lint", "testdata", "src")
	diags := lint.Run(pkgs, map[string]bool{check: true})
	lines := make([]string, 0, len(diags))
	for _, d := range diags {
		if rel, err := filepath.Rel(base, d.File); err == nil {
			d.File = filepath.ToSlash(rel)
		}
		lines = append(lines, d.String())
	}
	return lines
}

// TestGolden pins each analyzer's diagnostics over its fixture
// package. Every golden file is non-empty, so disabling (or breaking)
// an analyzer fails its subtest — the "check cannot silently
// disappear" guarantee the CI lint gate builds on.
func TestGolden(t *testing.T) {
	for check := range fixtures {
		t.Run(check, func(t *testing.T) {
			got := strings.Join(goldenLines(t, check), "\n") + "\n"
			path := filepath.Join("testdata", check+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			wantBytes, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			want := string(wantBytes)
			if strings.TrimSpace(want) == "" {
				t.Fatalf("golden file %s is empty; each analyzer must have findings to pin", path)
			}
			if got != want {
				t.Errorf("diagnostics diverge from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestDisabledCheckReportsNothing is the inverse pin: with only some
// other check enabled, a fixture full of violations yields zero
// findings — -checks selection really disables analyzers.
func TestDisabledCheckReportsNothing(t *testing.T) {
	var pkgs []*lint.Package
	for _, p := range fixturePackages(t) {
		if strings.HasSuffix(p.PkgPath, "/exit") {
			pkgs = append(pkgs, p)
		}
	}
	if diags := lint.Run(pkgs, map[string]bool{"metricname": true}); len(diags) != 0 {
		t.Errorf("exit fixture with only metricname enabled produced %d findings: %v", len(diags), diags)
	}
}

// TestAnalyzersRegistry pins the suite's shape: stable IDs, docs, and
// ByName resolution.
func TestAnalyzersRegistry(t *testing.T) {
	want := []string{"directive", "errwrap", "exitcode", "hotpath", "metricname", "nodeterminism"}
	as := lint.Analyzers()
	if len(as) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(as), len(want))
	}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
		if got, ok := lint.ByName(a.Name); !ok || got != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if _, ok := lint.ByName("nope"); ok {
		t.Error("ByName accepted an unknown check")
	}
}

// TestDogfoodRepoClean is the suite eating its own cooking: the whole
// module (testdata is excluded by ./... expansion) must be
// finding-free, the same invariant the CI lint job gates merges on.
func TestDogfoodRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool over the full module")
	}
	pkgs, err := lint.Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := lint.Run(pkgs, nil)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("ratlint found %d findings in the tree; fix or annotate them", len(diags))
	}
}
