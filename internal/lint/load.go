package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string // full import path
	RelPath string // module-relative path ("" for the module root)
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	dirs *directives
}

// listedPackage is the slice of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
}

// goList runs `go list -json=<fields>` in dir and decodes the
// concatenated JSON stream.
func goList(dir string, extra []string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Export,GoFiles,Standard,Module"}, extra...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves the patterns with the go tool (run from dir), parses
// the matched packages' sources with comments, and type-checks them
// against compiler export data for every dependency — the `go list
// -export` build-cache artifacts, so no dependency source is ever
// re-checked. The result is one Package per matched package, each
// carrying full type information and its parsed //rat: directives.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, nil, patterns)
	if err != nil {
		return nil, err
	}
	// One -deps pass supplies export data for the whole dependency
	// closure, stdlib included.
	deps, err := goList(dir, []string{"-export", "-deps"}, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		if t.Standard || len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Defs:  map[*ast.Ident]types.Object{},
			Uses:  map[*ast.Ident]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		rel := t.ImportPath
		if t.Module != nil {
			rel = strings.TrimPrefix(strings.TrimPrefix(t.ImportPath, t.Module.Path), "/")
		}
		pkgs = append(pkgs, &Package{
			PkgPath: t.ImportPath,
			RelPath: rel,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			dirs:    collectDirectives(fset, files),
		})
	}
	return pkgs, nil
}

// pos is shorthand for a node's resolved position.
func (p *Package) pos(n ast.Node) token.Position { return p.Fset.Position(n.Pos()) }

// calleeFunc resolves a call expression to the *types.Func it invokes,
// when it statically names one (a package function or a method; not a
// builtin, conversion, or dynamic function value).
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// calleeIsPkgFunc reports whether call invokes the named function from
// the package with the given import path (e.g. "time", "Now").
func (p *Package) calleeIsPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	fn := p.calleeFunc(call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// calleeBuiltin reports whether call invokes the named builtin
// (panic, append, ...).
func (p *Package) calleeBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
