package lint

import "testing"

// The deterministic-package set is the lint-enforced boundary of the
// reproduction's determinism guarantees. Losing a member silently
// would downgrade an invariant to review lore, so the expected set is
// pinned here: extend it deliberately, in both places.
func TestDeterministicPackageSet(t *testing.T) {
	want := []string{
		"internal/cluster", // distributed shard merge (docs/DISTRIBUTED.md)
		"internal/core",
		"internal/explore",
		"internal/fault",
		"internal/rcsim",
		"internal/sim",
	}
	for _, pkg := range want {
		if !deterministicPackages[pkg] {
			t.Errorf("deterministicPackages lost %q", pkg)
		}
	}
	if len(deterministicPackages) != len(want) {
		t.Errorf("deterministicPackages has %d entries, want %d — update this pin alongside the set",
			len(deterministicPackages), len(want))
	}
}
