// Package nodet is the nodeterminism fixture: a package that declares
// itself deterministic and then violates (and correctly suppresses)
// each rule.
//
//rat:deterministic
package nodet

import (
	"math/rand" // want: nondeterministic randomness source
	"sort"
	"time"
)

// Clock reads the wall clock twice without a justification.
func Clock() (time.Time, time.Duration) {
	start := time.Now()
	elapsed := time.Since(start)
	return start, elapsed
}

// AllowedClock carries the escape hatch on both placements.
func AllowedClock() time.Duration {
	//rat:allow-wallclock telemetry only, never reaches results
	start := time.Now()
	return time.Since(start) //rat:allow-wallclock telemetry only
}

// DurationsAreFine shows that time as data is not flagged.
func DurationsAreFine(d time.Duration) time.Duration { return 2 * d }

// Shuffle drags math/rand in (the import is the finding).
func Shuffle(n int) int { return rand.Intn(n) }

// LeakOrder returns a slice whose element order is the map's
// randomized iteration order.
func LeakOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// SortedOrder erases the iteration order before returning: clean.
func SortedOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// LocalOrder appends map keys into a slice that never leaves the
// function: clean.
func LocalOrder(m map[string]int) int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return len(keys)
}

// AllowedOrder suppresses the finding with a reason.
func AllowedOrder(m map[string]int) []string {
	var keys []string
	//rat:allow-maporder consumer treats this as a set
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// NestedLeak hides the leak one block down.
func NestedLeak(m map[string]int, cond bool) []string {
	out := make([]string, 0, len(m))
	if cond {
		for k := range m {
			out = append(out, k)
		}
	}
	return out
}
