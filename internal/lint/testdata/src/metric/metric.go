// Package metric is the metricname fixture: every registration shape
// the repository uses, valid and broken.
package metric

import (
	"fmt"

	"github.com/chrec/rat/internal/telemetry"
)

// Register exercises the registry constructors.
func Register(reg *telemetry.Registry, endpoint string, code int) {
	// Valid shapes.
	reg.Counter("server.requests")
	reg.Gauge("rat_inflight")
	reg.Timer("harness.experiment.pdf1d")
	reg.Histogram(`rat_request_seconds{endpoint="predict"}`, []float64{1})
	reg.Counter("server.inflight." + endpoint)
	reg.Counter(fmt.Sprintf(`rat_requests_total{code="%d",endpoint="%s"}`, code, endpoint))
	reg.Counter(endpoint) // fully dynamic: not statically checkable

	// Broken shapes.
	reg.Counter("server requests")
	reg.Gauge("2fast")
	reg.Counter("")
	reg.Histogram(`rat_request_seconds{endpoint=predict}`, []float64{1})
	reg.Counter(`dup{a="1",a="2"}`)
	reg.Timer(`open_block{a="1"`)
	reg.Counter(fmt.Sprintf(`bad name{code="%d"}`, code))
	reg.Counter("bad prefix." + endpoint)
}
