// Package metric is the metricname fixture: every registration shape
// the repository uses, valid and broken.
package metric

import (
	"fmt"

	"github.com/chrec/rat/internal/telemetry"
)

// Register exercises the registry constructors.
func Register(reg *telemetry.Registry, endpoint string, code int) {
	// Valid shapes.
	reg.Counter("server.requests")
	reg.Gauge("rat_inflight")
	reg.Timer("harness.experiment.pdf1d")
	reg.Histogram(`rat_request_seconds{endpoint="predict"}`, []float64{1})
	reg.Counter("server.inflight." + endpoint)
	//rat:bounded-labels code and endpoint come from fixed enums
	reg.Counter(fmt.Sprintf(`rat_requests_total{code="%d",endpoint="%s"}`, code, endpoint))
	reg.Counter(endpoint) // fully dynamic: not statically checkable
	//rat:bounded-labels fixture: concat label value with a stated bound
	reg.Counter(`annotated_concat{tenant="` + endpoint + `"}`)
	reg.Counter(fmt.Sprintf("verb_in_family_%s_only", endpoint)) // dynamic family, no labels

	// Broken shapes.
	reg.Counter("server requests")
	reg.Gauge("2fast")
	reg.Counter("")
	reg.Histogram(`rat_request_seconds{endpoint=predict}`, []float64{1})
	reg.Counter(`dup{a="1",a="2"}`)
	reg.Timer(`open_block{a="1"`)
	reg.Counter(fmt.Sprintf(`bad name{code="%d"}`, code))
	reg.Counter("bad prefix." + endpoint)

	// Unbounded label values: a runtime value spliced into a label
	// block with no //rat:bounded-labels annotation.
	reg.Counter(fmt.Sprintf(`rat_tenant_requests_total{tenant="%s"}`, endpoint))
	reg.Counter(`unbounded_concat{tenant="` + endpoint + `"}`)
	reg.Histogram(fmt.Sprintf(`unbounded_hist_seconds{user="%s"}`, endpoint), []float64{1})
}
