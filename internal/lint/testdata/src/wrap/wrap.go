// Package wrap is the errwrap fixture: flattened causes, identity
// comparisons, and string matching, next to their errors.Is-clean
// twins.
package wrap

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrBudget is the package sentinel.
var ErrBudget = errors.New("over budget")

// Flatten loses the cause behind %v.
func Flatten(err error) error {
	return fmt.Errorf("loading config: %v", err)
}

// Wrapped preserves the chain: clean.
func Wrapped(err error) error {
	return fmt.Errorf("loading config: %w", err)
}

// Demoted wraps the sentinel and deliberately flattens the detail:
// clean (one %w is present).
func Demoted(err error) error {
	return fmt.Errorf("%w: %v", ErrBudget, err)
}

// NoErrArgs formats scalars only: clean.
func NoErrArgs(n int) error {
	return fmt.Errorf("bad count %d", n)
}

// Identity compares sentinels with == and !=.
func Identity(err error) bool {
	if err == ErrBudget {
		return true
	}
	return err != io.EOF
}

// NilChecks are not sentinel comparisons: clean.
func NilChecks(err error) bool {
	return err == nil || err != nil
}

// IsChecks is the sanctioned form: clean.
func IsChecks(err error) bool {
	return errors.Is(err, ErrBudget) || errors.Is(err, io.EOF)
}

// Text matches the message instead of the chain.
func Text(err error) bool {
	if err.Error() == "over budget" {
		return true
	}
	return strings.Contains(err.Error(), "budget")
}

// SwitchIdentity dispatches on the error value itself.
func SwitchIdentity(err error) int {
	switch err {
	case nil:
		return 0
	case io.EOF:
		return 1
	}
	return 2
}
