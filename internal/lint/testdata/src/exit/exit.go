// Package exit is the exitcode fixture: a library package that tries
// every way to terminate the process.
package exit

import (
	"log"
	"os"
)

// Bail exits directly.
func Bail() {
	os.Exit(1)
}

// Fatal exits through the log package.
func Fatal(err error) {
	log.Fatalf("giving up: %v", err)
	log.Panicln("unreachable")
}

// Explode panics without a justification.
func Explode() {
	panic("boom")
}

// Invariant panics with a documented reason: clean.
func Invariant(ok bool) {
	if !ok {
		//rat:allow-panic caller violated a documented precondition
		panic("exit: invariant broken")
	}
}

// Recovered still panics as far as the contract is concerned; the
// directive is the only way out.
func Recovered() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = nil
		}
	}()
	panic("caught") //rat:allow-panic recovered two lines up, never escapes
}
