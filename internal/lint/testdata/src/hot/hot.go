// Package hot is the hotpath fixture: annotated functions commit each
// allocation sin once; unannotated twins stay invisible.
package hot

import (
	"encoding/json"
	"fmt"
	"io"
)

// Sum is annotated and clean: hinted append, no formatting, no boxing.
//
//rat:hotpath
func Sum(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

// Format allocates with fmt.Sprintf on the hot path.
//
//rat:hotpath
func Format(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// Concat builds a string with + inside a loop, twice over.
//
//rat:hotpath
func Concat(parts []string) string {
	s := ""
	for _, p := range parts {
		s = s + p
	}
	for _, p := range parts {
		s += p
	}
	return s
}

// Grow appends into an unhinted slice inside a loop.
//
//rat:hotpath
func Grow(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// GrowUnknown appends to a parameter: the origin is the caller's
// business, not this function's finding.
//
//rat:hotpath
func GrowUnknown(dst, xs []int) []int {
	for _, x := range xs {
		dst = append(dst, x)
	}
	return dst
}

// Box passes scalars into interface parameters.
//
//rat:hotpath
func Box(n int) {
	sink(n)
	sinks("label", n)
}

// BoxErrorf is exempt: error construction is cold-path by convention.
//
//rat:hotpath
func BoxErrorf(n int) error {
	return fmt.Errorf("bad count %d", n)
}

// Escape hands a capturing closure to another function.
//
//rat:hotpath
func Escape(xs []int) int {
	total := 0
	each(xs, func(x int) { total += x })
	return total
}

// LocalClosure binds a capturing closure to a local and invokes it in
// place: no escape, no finding.
//
//rat:hotpath
func LocalClosure(xs []int) int {
	total := 0
	add := func(x int) { total += x }
	for _, x := range xs {
		add(x)
	}
	return total
}

// Codec round-trips through encoding/json: reflection on every call.
//
//rat:hotpath
func Codec(v struct{ N int }) ([]byte, error) {
	if err := json.Unmarshal([]byte(`{"N":1}`), &v); err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

// CodecStream reaches encoding/json through the Encoder and Decoder
// types: the constructors and the Encode/Decode calls all count.
//
//rat:hotpath
func CodecStream(r io.Reader, w io.Writer, v struct{ N int }) error {
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(v)
}

// ColdCodec is unannotated: encoding/json is fine off the hot path.
func ColdCodec(v struct{ N int }) ([]byte, error) {
	return json.Marshal(v)
}

// Cold is unannotated: the same sins draw no findings.
func Cold(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p
	}
	return fmt.Sprintf("%s!", s)
}

func sink(v any)        { _ = v }
func sinks(args ...any) { _ = args }
func each(xs []int, f func(x int)) {
	for _, x := range xs {
		f(x)
	}
}
