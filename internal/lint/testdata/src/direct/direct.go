// Package direct is the directive fixture: well-formed //rat:
// comments next to every malformed shape that survives gofmt.
// (Whitespace-after-colon and bare "//rat:" forms are reflowed into
// plain comments by gofmt, so those live in the ParseDirective unit
// tests instead.)
package direct

// Good is properly annotated: clean.
//
//rat:hotpath
func Good() {}

// Typo uses an unknown directive name.
//
//rat:hotpaths
func Typo() {}

// Split spells a known name with an embedded break, so the parsed
// name is unknown and the rest is a stray argument.
//
//rat:hot path
func Split() {}

// Bare gives no reason for the escape hatch.
func Bare() {
	//rat:allow-panic
	//rat:allow-wallclock
	_ = 0
}

// Extra hands an argument to an arity-0 directive.
//
//rat:hotpath because it is fast
func Extra() {}

// Prose mentions rat: mid-sentence; not a directive, not a finding.
// See the rat: documentation for details.
func Prose() {}
