package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Error values in this repository are sentinel-based: packages export
// ErrFoo variables, wrap them with %w, and callers branch with
// errors.Is (internal/cli.Code being the canonical consumer). Two
// habits silently break that chain: building a new error from an old
// one with %v/%s (the sentinel is flattened into text and errors.Is
// stops matching), and comparing errors with == or by their message
// strings (wrapping breaks both).

var analyzerErrwrap = &Analyzer{
	Name: "errwrap",
	Doc:  "wrap error causes with %w and compare errors with errors.Is, never by == or string matching",
	Run:  runErrwrap,
}

// stringMatchFuncs are the strings-package predicates that, applied to
// err.Error(), amount to matching errors by message text.
var stringMatchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true,
}

func runErrwrap(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				out = append(out, checkErrorfWrap(p, v)...)
				out = append(out, checkStringMatch(p, v)...)
			case *ast.BinaryExpr:
				out = append(out, checkErrCompare(p, v)...)
			case *ast.SwitchStmt:
				if v.Tag != nil && isErrorType(p.exprType(v.Tag)) && types.IsInterface(p.exprType(v.Tag)) {
					out = append(out, diag("errwrap", p.pos(v),
						"switch on an error value compares with ==; use a switch on errors.Is cases instead"))
				}
			}
			return true
		})
	}
	return out
}

// checkErrorfWrap flags fmt.Errorf calls that receive an error
// argument but never use %w: the cause's identity is flattened into
// text and errors.Is can no longer see through it. A format that
// wraps at least once may still demote secondary causes to %v on
// purpose, so only the no-%w-at-all case is a finding.
func checkErrorfWrap(p *Package, call *ast.CallExpr) []Diagnostic {
	if !p.calleeIsPkgFunc(call, "fmt", "Errorf") || len(call.Args) < 2 {
		return nil
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil
	}
	if formatHasWrapVerb(lit.Value) {
		return nil
	}
	for _, arg := range call.Args[1:] {
		if isErrorType(p.exprType(arg)) {
			return []Diagnostic{diag("errwrap", p.pos(call),
				"fmt.Errorf flattens an error argument without %%w; errors.Is can no longer match the cause")}
		}
	}
	return nil
}

// formatHasWrapVerb scans a (quoted) format literal for a %w verb,
// stepping over %% escapes and verb flags/width.
func formatHasWrapVerb(quoted string) bool {
	for i := 0; i < len(quoted); i++ {
		if quoted[i] != '%' {
			continue
		}
		i++
		if i < len(quoted) && quoted[i] == '%' {
			continue // literal percent
		}
		for i < len(quoted) {
			c := quoted[i]
			if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
				if c == 'w' {
					return true
				}
				break
			}
			i++ // flag, width, precision
		}
	}
	return false
}

// checkErrCompare flags ==/!= between two error values (other than
// nil checks): wrapping breaks identity, errors.Is restores it.
func checkErrCompare(p *Package, bin *ast.BinaryExpr) []Diagnostic {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return nil
	}
	if isNilLiteral(p, bin.X) || isNilLiteral(p, bin.Y) {
		return nil
	}
	if isErrErrorCall(p, bin.X) || isErrErrorCall(p, bin.Y) {
		return []Diagnostic{diag("errwrap", p.pos(bin),
			"comparing err.Error() text; use errors.Is (or errors.As) so wrapped sentinels still match")}
	}
	tx, ty := p.exprType(bin.X), p.exprType(bin.Y)
	// Only interface-typed comparisons are sentinel matching; identity
	// comparison of two concrete values is not an errors.Is use case.
	if isErrorType(tx) && isErrorType(ty) && (types.IsInterface(tx) || types.IsInterface(ty)) {
		return []Diagnostic{diag("errwrap", p.pos(bin),
			"comparing errors with %s; use errors.Is so wrapped sentinels still match", bin.Op)}
	}
	return nil
}

// checkStringMatch flags strings.Contains/HasPrefix/... applied to
// err.Error().
func checkStringMatch(p *Package, call *ast.CallExpr) []Diagnostic {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" || !stringMatchFuncs[fn.Name()] {
		return nil
	}
	for _, arg := range call.Args {
		if isErrErrorCall(p, arg) {
			return []Diagnostic{diag("errwrap", p.pos(call),
				"matching err.Error() text with strings.%s; use errors.Is (or errors.As) so wrapped sentinels still match", fn.Name())}
		}
	}
	return nil
}

// isErrErrorCall reports whether e is a call of the Error() method on
// an error value.
func isErrErrorCall(p *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorType(p.exprType(sel.X))
}

func isNilLiteral(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.IsNil()
}

var errorIfaceType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is assignable to the error interface
// (the interface itself, or any concrete implementer).
func isErrorType(t types.Type) bool {
	if t == nil || t.Underlying() == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.AssignableTo(t, errorIfaceType)
}
