package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// sprintfFamily are the fmt functions that format into a fresh
// allocation. fmt.Errorf and the Fprint family are deliberately
// absent: error construction is cold-path by convention (it only runs
// when the request is already failing), and Fprint writes into a
// caller-owned writer.
var sprintfFamily = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

// jsonCodecFamily are the encoding/json entry points that reflect over
// their argument on every call: the package functions plus the
// Encoder/Decoder constructors and their Encode/Decode methods. The
// project ships a hand-rolled reflection-free codec (internal/wire)
// for exactly the paths annotated //rat:hotpath, so any of these
// inside one is a regression, not a style choice.
var jsonCodecFamily = map[string]bool{
	"Marshal": true, "MarshalIndent": true, "Unmarshal": true,
	"NewEncoder": true, "NewDecoder": true, "Encode": true, "Decode": true,
}

var analyzerHotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "//rat:hotpath functions may not contain fmt.Sprintf, encoding/json calls, string concatenation in loops, unhinted append growth in loops, interface boxing of scalars, or escaping closures that capture",
	Run:  runHotpath,
}

func runHotpath(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, DirHotpath) {
				continue
			}
			hp := &hotpathFunc{
				p:              p,
				name:           fn.Name.Name,
				fnPos:          fn.Pos(),
				origins:        sliceOrigins(p, fn.Body),
				closureEscapes: escapingClosures(fn.Body),
			}
			hp.walk(fn.Body, false)
			out = append(out, hp.out...)
		}
	}
	return out
}

// hotpathFunc checks one annotated function. The walk carries a
// "inside a loop" flag because several findings (concatenation, append
// growth) are only allocation storms when repeated per element.
type hotpathFunc struct {
	p              *Package
	name           string
	fnPos          token.Pos
	origins        map[types.Object]sliceOrigin
	closureEscapes map[*ast.FuncLit]bool
	out            []Diagnostic
}

// escapingClosures finds the function literals that leave the
// enclosing function: passed as a call argument, returned, stored
// through a selector/index, sent on a channel, or placed in a
// composite literal. A literal invoked in place or bound to a local
// variable does not escape by itself.
func escapingClosures(body *ast.BlockStmt) map[*ast.FuncLit]bool {
	esc := map[*ast.FuncLit]bool{}
	mark := func(e ast.Expr) {
		if lit, ok := ast.Unparen(e).(*ast.FuncLit); ok {
			esc[lit] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			for _, arg := range v.Args {
				mark(arg)
			}
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				mark(res)
			}
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				if i >= len(v.Lhs) {
					break
				}
				if _, isIdent := ast.Unparen(v.Lhs[i]).(*ast.Ident); !isIdent {
					mark(rhs)
				}
			}
		case *ast.SendStmt:
			mark(v.Value)
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					mark(kv.Value)
				} else {
					mark(el)
				}
			}
		}
		return true
	})
	return esc
}

// sliceOrigin classifies how a local slice variable came to be.
type sliceOrigin int

const (
	originUnknown  sliceOrigin = iota // parameter, field, pool, call result
	originHinted                      // make(T, n, cap) — growth is pre-paid
	originUnhinted                    // var x []T, make(T, n), literal — append reallocs
)

// sliceOrigins maps every slice variable declared in the function body
// to how it was initialized.
func sliceOrigins(p *Package, body *ast.BlockStmt) map[types.Object]sliceOrigin {
	origins := map[types.Object]sliceOrigin{}
	classify := func(e ast.Expr) sliceOrigin {
		switch v := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if p.calleeBuiltin(v, "make") {
				if len(v.Args) >= 3 {
					return originHinted
				}
				return originUnhinted
			}
			return originUnknown
		case *ast.CompositeLit:
			return originUnhinted
		default:
			return originUnknown
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if obj := p.Info.Defs[id]; obj != nil {
					origins[obj] = classify(st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				obj := p.Info.Defs[id]
				if obj == nil {
					continue
				}
				if i < len(st.Values) {
					origins[obj] = classify(st.Values[i])
				} else {
					origins[obj] = originUnhinted // var x []T: nil slice
				}
			}
		}
		return true
	})
	return origins
}

func (hp *hotpathFunc) report(n ast.Node, format string, args ...any) {
	hp.out = append(hp.out, diag("hotpath", hp.p.pos(n), format, args...))
}

func (hp *hotpathFunc) walk(n ast.Node, inLoop bool) {
	if n == nil {
		return
	}
	switch v := n.(type) {
	case *ast.ForStmt:
		hp.walk(v.Init, inLoop)
		hp.walk(v.Cond, true) // the condition re-evaluates every iteration
		hp.walk(v.Post, true)
		hp.walk(v.Body, true)
		return
	case *ast.RangeStmt:
		hp.walk(v.X, inLoop)
		hp.walk(v.Body, true)
		return
	case *ast.BinaryExpr:
		if v.Op == token.ADD && inLoop && isStringType(hp.p.exprType(v)) {
			hp.report(v, "%s: string concatenation inside a loop allocates per iteration; use a preallocated []byte or strings.Builder", hp.name)
		}
	case *ast.AssignStmt:
		if v.Tok == token.ADD_ASSIGN && inLoop && len(v.Lhs) == 1 && isStringType(hp.p.exprType(v.Lhs[0])) {
			hp.report(v, "%s: string += inside a loop allocates per iteration; use a preallocated []byte or strings.Builder", hp.name)
		}
		hp.checkBoxedAssign(v)
	case *ast.CallExpr:
		hp.checkCall(v, inLoop)
	case *ast.FuncLit:
		hp.checkClosure(v)
		// The literal's body still runs under this function's alloc
		// budget when invoked from it; keep checking inside.
		hp.walk(v.Body, inLoop)
		return
	}
	for _, child := range childNodes(n) {
		hp.walk(child, inLoop)
	}
}

func (hp *hotpathFunc) checkCall(call *ast.CallExpr, inLoop bool) {
	p := hp.p
	if fn := p.calleeFunc(call); fn != nil && fn.Pkg() != nil {
		switch {
		case fn.Pkg().Path() == "fmt" && sprintfFamily[fn.Name()]:
			hp.report(call, "%s: fmt.%s allocates and reflects on a hot path; preformat or append to a pooled buffer", hp.name, fn.Name())
		case fn.Pkg().Path() == "encoding/json" && jsonCodecFamily[fn.Name()]:
			hp.report(call, "%s: encoding/json %s reflects over its argument on a hot path; use the internal/wire codec", hp.name, fn.Name())
		}
	}
	if p.calleeBuiltin(call, "append") && inLoop && len(call.Args) > 0 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := p.objectOf(id); obj != nil && hp.origins[obj] == originUnhinted {
				hp.report(call, "%s: append grows %q inside a loop without a capacity hint; preallocate with make(..., 0, n)", hp.name, id.Name)
			}
		}
	}
	hp.checkBoxedArgs(call)
}

// checkBoxedArgs flags scalar arguments passed to interface-typed
// parameters: each such call boxes the scalar into a fresh heap
// allocation. fmt.Errorf is exempt as cold-path error construction.
func (hp *hotpathFunc) checkBoxedArgs(call *ast.CallExpr) {
	p := hp.p
	if fn := p.calleeFunc(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf" {
		return
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // builtin or conversion
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // x... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && isScalarType(p.exprType(arg)) {
			hp.report(arg, "%s: scalar argument boxed into %s allocates; use a concrete-typed call", hp.name, pt.String())
		}
	}
}

// checkBoxedAssign flags assignments of scalars into interface-typed
// variables.
func (hp *hotpathFunc) checkBoxedAssign(asg *ast.AssignStmt) {
	if len(asg.Lhs) != len(asg.Rhs) {
		return
	}
	for i := range asg.Lhs {
		lt := hp.p.exprType(asg.Lhs[i])
		if asg.Tok == token.DEFINE {
			if id, ok := asg.Lhs[i].(*ast.Ident); ok {
				if obj := hp.p.Info.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
		}
		if lt != nil && types.IsInterface(lt) && isScalarType(hp.p.exprType(asg.Rhs[i])) {
			hp.report(asg.Rhs[i], "%s: scalar assigned into %s boxes and allocates", hp.name, lt.String())
		}
	}
}

// checkClosure flags function literals that capture variables from the
// enclosing function and escape it (passed to a call, returned, or
// stored through a selector/index/channel): each instantiation
// allocates the closure and moves its captures to the heap. A literal
// that is only invoked in place or held in a local variable stays on
// the stack.
func (hp *hotpathFunc) checkClosure(lit *ast.FuncLit) {
	if !hp.closureEscapes[lit] {
		return
	}
	if name, ok := hp.closureCapture(lit); ok {
		hp.report(lit, "%s: closure captures %q and escapes; captured variables move to the heap", hp.name, name)
	}
}

// closureCapture reports the first variable the literal captures from
// its enclosing function.
func (hp *hotpathFunc) closureCapture(lit *ast.FuncLit) (string, bool) {
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		vr, ok := hp.p.Info.Uses[id].(*types.Var)
		if !ok || vr.IsField() {
			return true
		}
		// Captured iff declared in this function but outside the literal.
		if vr.Pos() < lit.Pos() && vr.Pos() > hp.fnPos && !isPkgLevel(vr) {
			found = vr.Name()
		}
		return true
	})
	return found, found != ""
}

func isPkgLevel(vr *types.Var) bool {
	return vr.Parent() != nil && vr.Parent().Parent() == types.Universe
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isScalarType reports whether t is a basic scalar (bool, numeric,
// string) — the types whose conversion to an interface allocates.
// Untyped constants fold into whatever they're assigned to and count
// too.
func isScalarType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() != types.UntypedNil && b.Kind() != types.Invalid
}

// childNodes lists a node's direct children, driving the loop-aware
// walker.
func childNodes(n ast.Node) []ast.Node {
	var kids []ast.Node
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			kids = append(kids, m)
		}
		return false
	})
	return kids
}
