package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Metric names registered with the telemetry registry end up in the
// Prometheus text exposition that telemetry.ValidateProm (and every
// real scraper) parses. The registry sanitizes legacy dotted names
// ("server.requests" exports as server_requests), but nothing rescues
// a malformed label block or a name that sanitizes into collision —
// those fail at scrape time, on a dashboard, far from the code that
// minted them. This check moves that failure to lint time: every
// string literal passed to Registry.Counter/Gauge/Timer/Histogram
// must satisfy the same grammar ValidateProm enforces, extended with
// '.' as the accepted legacy separator.
//
// Accepted shapes:
//
//	reg.Counter("server.requests")                      dotted legacy
//	reg.Gauge("rat_inflight")                           plain
//	reg.Histogram(`rat_request_seconds{endpoint="x"}`)  inline labels
//	reg.Counter("server.inflight." + endpoint)          literal prefix
//	reg.Counter(fmt.Sprintf(`m{code="%d"}`, code))      format literal
//
// Dynamic parts (non-literal operands, %-verbs) are assumed valid;
// the literal text around them must still parse.
//
// A dynamic part inside a {label="..."} block is a second, distinct
// hazard: a label VALUE spliced in at runtime. Fed request input, that
// is an unbounded label-cardinality explosion — every distinct value
// mints a new time series, and a hostile client can mint millions.
// Such registrations must carry //rat:bounded-labels <reason> on (or
// directly above) the line, asserting the value set is provably
// bounded (a fixed enum, a validated config key set — never raw
// request input). Dynamic parts in the family name, before any '{',
// are exempt: they vary the metric name, not a label value.

// registryMethods are the telemetry.Registry constructors whose first
// argument is a metric name.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Timer": true, "Histogram": true,
}

var analyzerMetricname = &Analyzer{
	Name: "metricname",
	Doc:  "metric names passed to the telemetry registry must satisfy the Prometheus exposition grammar (telemetry.ValidateProm), so bad names fail at lint time, not scrape time",
	Run:  runMetricname,
}

func runMetricname(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil || !registryMethods[fn.Name()] {
				return true
			}
			if !strings.HasSuffix(fn.Pkg().Path(), "internal/telemetry") {
				return true
			}
			sig, isSig := fn.Type().(*types.Signature)
			if !isSig || sig.Recv() == nil || !strings.HasSuffix(sig.Recv().Type().String(), "telemetry.Registry") {
				return true
			}
			pos := p.pos(call.Args[0])
			if dynamicLabelValue(call.Args[0]) && !p.dirs.allowedAt(pos, DirBoundedLabels) {
				out = append(out, diag("metricname", pos,
					"dynamic label value in metric registration: every distinct value mints a time series; annotate with //rat:%s <reason> only if the value set is provably bounded (fixed enum or validated config, never request input)", DirBoundedLabels))
			}
			name, complete, ok := literalMetricName(call.Args[0])
			if !ok {
				return true // fully dynamic name: nothing to check statically
			}
			if err := ValidateMetricName(name, complete); err != nil {
				out = append(out, diag("metricname", pos,
					"metric name %q will not survive Prometheus exposition: %v", name, err))
			}
			return true
		})
	}
	return out
}

// literalMetricName extracts the statically known text of a metric
// name expression. complete is true when the whole name is literal
// (so the label-block grammar can be enforced end to end), false when
// dynamic parts were elided (only the literal text is checked).
func literalMetricName(e ast.Expr) (name string, complete, ok bool) {
	switch v := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if v.Kind != token.STRING {
			return "", false, false
		}
		s, err := strconv.Unquote(v.Value)
		if err != nil {
			return "", false, false
		}
		return s, true, true
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return "", false, false
		}
		left, lcomplete, lok := literalMetricName(v.X)
		if !lok {
			return "", false, false
		}
		right, rcomplete, rok := literalMetricName(v.Y)
		if !rok {
			// Dynamic suffix: validate the literal prefix only.
			return left, false, true
		}
		return left + right, lcomplete && rcomplete, true
	case *ast.CallExpr:
		// fmt.Sprintf("...", args): substitute every verb with a
		// placeholder that is valid in both name and label positions.
		if sel, isSel := v.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Sprintf" && len(v.Args) > 0 {
			if lit, isLit := ast.Unparen(v.Args[0]).(*ast.BasicLit); isLit && lit.Kind == token.STRING {
				s, err := strconv.Unquote(lit.Value)
				if err != nil {
					return "", false, false
				}
				return substituteVerbs(s), true, true
			}
		}
		return "", false, false
	default:
		return "", false, false
	}
}

// dynamicLabelValue reports whether a metric-name expression splices a
// runtime value inside a {label="..."} block — a %-verb after a '{' in
// a Sprintf format, or a non-literal concat operand once a literal has
// opened the block. Dynamic parts before any '{' only vary the family
// name and are not flagged.
func dynamicLabelValue(e ast.Expr) bool {
	inBlock := false
	return scanDynamicLabels(e, &inBlock)
}

// scanDynamicLabels walks a name expression left to right, tracking
// whether the literal text seen so far has opened a label block.
func scanDynamicLabels(e ast.Expr, inBlock *bool) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if v.Kind != token.STRING {
			return *inBlock
		}
		s, err := strconv.Unquote(v.Value)
		if err != nil {
			return false
		}
		if strings.IndexByte(s, '{') >= 0 {
			*inBlock = true
		}
		return false
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return *inBlock
		}
		return scanDynamicLabels(v.X, inBlock) || scanDynamicLabels(v.Y, inBlock)
	case *ast.CallExpr:
		if sel, isSel := v.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Sprintf" && len(v.Args) > 0 {
			if lit, isLit := ast.Unparen(v.Args[0]).(*ast.BasicLit); isLit && lit.Kind == token.STRING {
				if s, err := strconv.Unquote(lit.Value); err == nil {
					return formatHasLabelVerb(s, inBlock)
				}
			}
		}
		return *inBlock
	default:
		// Any other dynamic operand is a label value iff a block is open.
		return *inBlock
	}
}

// formatHasLabelVerb scans a Sprintf format string and reports a
// %-verb (other than the literal %%) inside a label block.
func formatHasLabelVerb(format string, inBlock *bool) bool {
	for i := 0; i < len(format); i++ {
		switch format[i] {
		case '{':
			*inBlock = true
		case '%':
			if i+1 < len(format) && format[i+1] == '%' {
				i++
				continue
			}
			if *inBlock {
				return true
			}
		}
	}
	return false
}

// substituteVerbs replaces %-verbs in a Sprintf format with "0", a
// stand-in valid anywhere a dynamic value may legally appear.
func substituteVerbs(format string) string {
	var b strings.Builder
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			b.WriteByte('%')
			continue
		}
		for i < len(format) {
			v := format[i]
			if v >= 'a' && v <= 'z' || v >= 'A' && v <= 'Z' {
				break
			}
			i++ // flags, width, precision
		}
		b.WriteByte('0')
	}
	return b.String()
}

// ValidateMetricName enforces the exposition grammar on a (possibly
// partial) metric name: family of [a-zA-Z_:] then [a-zA-Z0-9_:.]
// (dots are the registry's accepted legacy separator — they sanitize
// deterministically to '_'), then an optional {label="value",...}
// block with unique, well-formed labels. When complete is false the
// name is a literal prefix of a dynamic name and only the family
// grammar is checked. Exported so tests can pin this grammar to the
// scrape-side oracle, telemetry.ValidateProm: every name this accepts
// must survive a real exposition round trip.
func ValidateMetricName(name string, complete bool) error {
	if name == "" {
		return fmt.Errorf("empty name")
	}
	family, rest := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		family, rest = name[:i], name[i:]
	}
	if family == "" {
		return fmt.Errorf("empty family before label block")
	}
	for i := 0; i < len(family); i++ {
		c := family[i]
		letter := c == '_' || c == ':' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
		if i == 0 && !letter {
			return fmt.Errorf("name must start with [a-zA-Z_:], got %q", c)
		}
		if !letter && c != '.' && !(c >= '0' && c <= '9') {
			return fmt.Errorf("invalid character %q in name", c)
		}
	}
	if rest == "" {
		return nil
	}
	if !complete {
		// A dynamic tail inside a label block can't be checked here.
		return nil
	}
	if !strings.HasSuffix(rest, "}") {
		return fmt.Errorf("label block does not end with '}'")
	}
	return validateLabelBlock(rest[1 : len(rest)-1])
}

// validateLabelBlock parses `k1="v1",k2="v2"` with the exposition
// escapes (\\, \", \n) and rejects duplicate label names.
func validateLabelBlock(s string) error {
	seen := map[string]bool{}
	i := 0
	for i < len(s) {
		start := i
		for i < len(s) && isLabelNameChar(s[i], i == start) {
			i++
		}
		if i == start {
			return fmt.Errorf("empty label name at %q", s[start:])
		}
		key := s[start:i]
		if seen[key] {
			return fmt.Errorf("duplicate label %q", key)
		}
		seen[key] = true
		if i >= len(s) || s[i] != '=' {
			return fmt.Errorf("label %q missing '='", key)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return fmt.Errorf("label %q value not quoted", key)
		}
		i++
		closed := false
		for i < len(s) {
			switch s[i] {
			case '\\':
				if i+1 >= len(s) {
					return fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[i+1] {
				case '\\', '"', 'n':
				default:
					return fmt.Errorf("bad escape \\%c in label %q", s[i+1], key)
				}
				i += 2
				continue
			case '"':
				closed = true
			}
			i++
			if closed {
				break
			}
		}
		if !closed {
			return fmt.Errorf("unterminated value for label %q", key)
		}
		if i < len(s) {
			if s[i] != ',' {
				return fmt.Errorf("expected ',' between labels, got %q", s[i:])
			}
			i++
			if i == len(s) {
				return fmt.Errorf("trailing ',' in label block")
			}
		}
	}
	if len(seen) == 0 {
		return fmt.Errorf("empty label block")
	}
	return nil
}

func isLabelNameChar(c byte, first bool) bool {
	if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}
