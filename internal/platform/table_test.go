package platform_test

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/platform"
)

func TestAlphaTableSaveLoadRoundTrip(t *testing.T) {
	ic := platform.NallatechH101().Interconnect
	sizes := []int64{262144, 2048, 16384} // deliberately unsorted
	var buf bytes.Buffer
	if err := platform.SaveAlphaTable(&buf, ic, sizes); err != nil {
		t.Fatal(err)
	}
	pts, err := platform.LoadAlphaTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("rows = %d", len(pts))
	}
	// Saved ascending regardless of input order.
	if pts[0].Bytes != 2048 || pts[2].Bytes != 262144 {
		t.Errorf("rows not ascending: %+v", pts)
	}
	// Values match direct measurement.
	for _, p := range pts {
		if math.Abs(p.AlphaWrite-ic.MeasureAlpha(platform.Write, p.Bytes)) > 1e-6 {
			t.Errorf("alpha_write at %d differs", p.Bytes)
		}
		if math.Abs(p.AlphaRead-ic.MeasureAlpha(platform.Read, p.Bytes)) > 1e-6 {
			t.Errorf("alpha_read at %d differs", p.Bytes)
		}
	}
}

// TestInterconnectFromTableReproducesMeasurements: characterizing a
// platform once and rebuilding the model from the table reproduces the
// measured alphas exactly at the tabulated sizes.
func TestInterconnectFromTableReproducesMeasurements(t *testing.T) {
	real := platform.NallatechH101().Interconnect
	sizes := []int64{512, 2048, 16384, 262144}
	var buf bytes.Buffer
	if err := platform.SaveAlphaTable(&buf, real, sizes); err != nil {
		t.Fatal(err)
	}
	pts, err := platform.LoadAlphaTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := platform.InterconnectFromTable("rebuilt", real.IdealBps, pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sizes {
		for _, d := range []platform.Direction{platform.Write, platform.Read} {
			want := real.MeasureAlpha(d, s)
			got := rebuilt.MeasureAlpha(d, s)
			if math.Abs(got-want) > 1e-6 {
				t.Errorf("%v at %d: rebuilt alpha %.6f, measured %.6f", d, s, got, want)
			}
		}
	}
	// And a RAT prediction using the rebuilt model's 256 KB alpha
	// lands on the real platform's transfer time at that size.
	// The file stores six decimals of alpha, bounding agreement at
	// ~1e-5 relative.
	tReal := real.TransferTime(platform.Read, 262144, false).Seconds()
	tRebuilt := rebuilt.TransferTime(platform.Read, 262144, false).Seconds()
	if math.Abs(tReal-tRebuilt) > 1e-4*tReal {
		t.Errorf("256 KB read: real %.6e, rebuilt %.6e", tReal, tRebuilt)
	}
}

func TestLoadAlphaTableErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", "# just comments\n"},
		{"short row", "2048 0.37\n"},
		{"bad size", "fast 0.37 0.16\n"},
		{"zero size", "0 0.37 0.16\n"},
		{"bad alpha", "2048 nope 0.16\n"},
		{"zero alpha", "2048 0.37 0\n"},
		{"descending", "2048 0.37 0.16\n1024 0.3 0.1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := platform.LoadAlphaTable(strings.NewReader(tc.text)); !errors.Is(err, platform.ErrBadTable) {
				t.Errorf("error = %v, want ErrBadTable", err)
			}
		})
	}
}

func TestInterconnectFromTableErrors(t *testing.T) {
	good := []platform.TablePoint{{Bytes: 1024, AlphaWrite: 0.4, AlphaRead: 0.2}}
	if _, err := platform.InterconnectFromTable("x", 0, good); !errors.Is(err, platform.ErrBadTable) {
		t.Error("zero ideal accepted")
	}
	if _, err := platform.InterconnectFromTable("x", 1e9, nil); !errors.Is(err, platform.ErrBadTable) {
		t.Error("empty table accepted")
	}
	bad := []platform.TablePoint{
		{Bytes: 2048, AlphaWrite: 0.4, AlphaRead: 0.2},
		{Bytes: 1024, AlphaWrite: 0.4, AlphaRead: 0.2},
	}
	if _, err := platform.InterconnectFromTable("x", 1e9, bad); !errors.Is(err, platform.ErrBadTable) {
		t.Error("descending table accepted")
	}
	neg := []platform.TablePoint{{Bytes: 1024, AlphaWrite: -1, AlphaRead: 0.2}}
	if _, err := platform.InterconnectFromTable("x", 1e9, neg); !errors.Is(err, platform.ErrBadTable) {
		t.Error("negative alpha accepted")
	}
}

func TestSaveAlphaTableErrors(t *testing.T) {
	ic := platform.NallatechH101().Interconnect
	if err := platform.SaveAlphaTable(&bytes.Buffer{}, ic, nil); !errors.Is(err, platform.ErrBadTable) {
		t.Error("empty sizes accepted")
	}
	if err := platform.SaveAlphaTable(failWriter{}, ic, []int64{1024}); err == nil {
		t.Error("writer error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("closed") }
