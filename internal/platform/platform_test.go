package platform_test

import (
	"math"
	"testing"

	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/sim"
)

// TestNallatechMicrobenchmarkAlphas: the Section 4.2 microbenchmark at
// the paper's representative 2 KB size must reproduce the worksheet
// alphas of Tables 2 and 5: alpha_write = 0.37, alpha_read = 0.16.
func TestNallatechMicrobenchmarkAlphas(t *testing.T) {
	ic := platform.NallatechH101().Interconnect
	aw := ic.MeasureAlpha(platform.Write, 2048)
	ar := ic.MeasureAlpha(platform.Read, 2048)
	if math.Abs(aw-0.37) > 0.005 {
		t.Errorf("alpha_write(2KB) = %.4f, want 0.37", aw)
	}
	if math.Abs(ar-0.16) > 0.005 {
		t.Errorf("alpha_read(2KB) = %.4f, want 0.16", ar)
	}
}

// TestNallatechReadDegradesAtLargeSizes: the read link's sustained
// rate collapses toward 25 MB/s for the 2-D PDF's 256 KB result
// transfers — the calibrated cause of the paper's "communication six
// times larger than predicted".
func TestNallatechReadDegradesAtLargeSizes(t *testing.T) {
	ic := platform.NallatechH101().Interconnect
	small := ic.MeasureAlpha(platform.Read, 2048)
	large := ic.MeasureAlpha(platform.Read, 262144)
	if large >= small/5 {
		t.Errorf("alpha_read(256KB) = %.4f should be far below alpha_read(2KB) = %.4f", large, small)
	}
	// The 256 KB read takes about 10.5 ms.
	got := ic.TransferTime(platform.Read, 262144, false).Seconds()
	if math.Abs(got-1.049e-2) > 2e-4 {
		t.Errorf("256KB read = %.4e s, want ~1.049e-2", got)
	}
}

// TestXD1000BeatsDocumentedBandwidth: HyperTransport moves the MD
// dataset at ~850 MB/s although the worksheet documents 500 MB/s, so
// the measured alpha exceeds 1 — reproducing the one case study where
// RAT's communication prediction was pessimistic.
func TestXD1000BeatsDocumentedBandwidth(t *testing.T) {
	ic := platform.XtremeDataXD1000().Interconnect
	a := ic.MeasureAlpha(platform.Write, 589824)
	if a <= 1 {
		t.Errorf("alpha_write(MD dataset) = %.3f, want > 1 (conservative documented bandwidth)", a)
	}
	// Whole-dataset round trip lands on the paper's measured 1.39e-3 s.
	total := ic.TransferTime(platform.Write, 589824, false) +
		ic.TransferTime(platform.Read, 589824, false)
	if math.Abs(total.Seconds()-1.39e-3) > 2e-5 {
		t.Errorf("MD round-trip comm = %.4e s, want ~1.39e-3", total.Seconds())
	}
}

func TestTransferTimeBasics(t *testing.T) {
	ic := platform.NallatechH101().Interconnect
	if got := ic.TransferTime(platform.Write, 0, false); got != 0 {
		t.Errorf("zero-byte transfer = %v, want 0", got)
	}
	// Monotone in size.
	prev := sim.Time(0)
	for _, b := range []int64{1, 64, 2048, 65536, 1 << 20} {
		cur := ic.TransferTime(platform.Write, b, false)
		if cur <= prev {
			t.Errorf("transfer time not increasing at %d bytes", b)
		}
		prev = cur
	}
	// Back-to-back costs strictly more.
	single := ic.TransferTime(platform.Write, 2048, false)
	btb := ic.TransferTime(platform.Write, 2048, true)
	if btb <= single {
		t.Errorf("back-to-back %v must exceed isolated %v", btb, single)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative size must panic")
		}
	}()
	ic.TransferTime(platform.Read, -1, false)
}

func TestMeasureAlphaPanicsOnBadSize(t *testing.T) {
	ic := platform.NallatechH101().Interconnect
	defer func() {
		if recover() == nil {
			t.Error("MeasureAlpha(0) must panic")
		}
	}()
	ic.MeasureAlpha(platform.Read, 0)
}

// TestAlphaTable: tabulating over a range of sizes, as Section 4.2
// recommends, shows the write alpha improving with size and the read
// alpha peaking then collapsing.
func TestAlphaTable(t *testing.T) {
	ic := platform.NallatechH101().Interconnect
	sizes := []int64{256, 2048, 16384, 262144}
	wr := ic.AlphaTable(platform.Write, sizes)
	if len(wr) != len(sizes) {
		t.Fatalf("table rows = %d", len(wr))
	}
	for i := 1; i < len(wr); i++ {
		if wr[i].Alpha <= wr[i-1].Alpha {
			t.Errorf("write alpha should improve with size: %+v", wr)
		}
	}
	rd := ic.AlphaTable(platform.Read, sizes)
	if !(rd[1].Alpha > rd[0].Alpha && rd[3].Alpha < rd[1].Alpha) {
		t.Errorf("read alpha should peak mid-size then collapse: %+v", rd)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"nallatech", "h101", "Nallatech H101-PCIXM"} {
		if p, ok := platform.ByName(name); !ok || p.Device.Name != "Virtex-4 LX100" {
			t.Errorf("ByName(%q) = %v, %v", name, p.Name, ok)
		}
	}
	for _, name := range []string{"xd1000", "xtremedata"} {
		if p, ok := platform.ByName(name); !ok || p.Device.Name != "Stratix-II EP2S180" {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := platform.ByName("nonexistent"); ok {
		t.Error("ByName accepted an unknown platform")
	}
}

func TestDirectionString(t *testing.T) {
	if platform.Write.String() != "write" || platform.Read.String() != "read" {
		t.Error("Direction strings wrong")
	}
}

func TestClockBracket(t *testing.T) {
	p := platform.NallatechH101()
	if p.MinClockHz != 75e6 || p.MaxClockHz != 150e6 {
		t.Errorf("clock bracket [%g, %g]", p.MinClockHz, p.MaxClockHz)
	}
	c := p.Clock(150e6)
	if c.Cycles(150e6) != sim.Second {
		t.Error("Clock conversion wrong")
	}
}

// TestRateCurveInterpolation: a size between anchors interpolates
// between their rates, staying within the bracket.
func TestRateCurveInterpolation(t *testing.T) {
	ic := platform.NallatechH101().Interconnect
	mid := int64(23170) // ~geometric mean of 2048 and 262144
	tMid := ic.TransferTime(platform.Read, mid, false).Seconds()
	rate := float64(mid) / (tMid - 2.56e-6)
	if rate <= 25e6 || rate >= 200e6 {
		t.Errorf("interpolated rate %.3g outside (25e6, 200e6)", rate)
	}
	// Geometric midpoint in log space lands near the arithmetic
	// mean of the two anchor rates.
	if math.Abs(rate-112.5e6) > 5e6 {
		t.Errorf("log-space midpoint rate = %.3g, want ~112.5e6", rate)
	}
}
