// Package platform models the RC platforms of the paper's case studies
// — the Nallatech H101-PCIXM (Virtex-4 LX100 behind 133 MHz PCI-X) and
// the XtremeData XD1000 (Stratix-II EP2S180 behind HyperTransport) —
// at the fidelity the RAT validation needs: transfer times over the
// host interconnect and the kernel clock domain.
//
// No FPGA hardware is available to this reproduction, so these models
// are the stand-in for the authors' testbeds (see DESIGN.md,
// "Substitutions"). Each interconnect direction carries a per-transfer
// setup latency, a back-to-back repeat overhead, and a sustained-rate
// curve over transfer size. The curves are calibrated so that (a) the
// microbenchmark procedure of Section 4.2 — time one read and one
// write at a representative size, divide by the documented bandwidth —
// reproduces the alpha values the paper's worksheets use, and (b) the
// full case-study runs reproduce the paper's *measured* communication
// times, including the two prediction failures the paper analyses: the
// 1-D PDF's small-transfer/repeated-transfer penalty and the 2-D PDF's
// large-read slowdown. The rate curve is the model's ground truth;
// RAT's single-alpha abstraction of it is exactly where the paper's
// prediction error comes from.
package platform

import (
	"fmt"
	"math"
	"sort"

	"github.com/chrec/rat/internal/sim"
)

// Direction distinguishes the two interconnect directions from the
// host's point of view, matching the worksheet convention: Write is
// host-to-FPGA input data, Read is FPGA-to-host results.
type Direction int

const (
	Write Direction = iota
	Read
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Read {
		return "read"
	}
	return "write"
}

// RatePoint anchors the sustained-rate curve: transfers of Bytes move
// at Bps once the setup latency is paid.
type RatePoint struct {
	Bytes int64
	Bps   float64
}

// Link models one interconnect direction.
type Link struct {
	// Setup is the fixed per-transfer latency: DMA descriptor
	// setup, driver entry, protocol handshake.
	Setup sim.Time
	// Repeat is the additional host-side overhead paid by each
	// transfer issued back-to-back in a tight loop (the "additional
	// delays introduced by 800 repetitive transfers" of Section
	// 4.3). Isolated transfers do not pay it.
	Repeat sim.Time
	// Rate is the sustained-rate curve, ascending in Bytes. Sizes
	// outside the anchored range clamp to the nearest point;
	// between anchors the rate interpolates linearly in log2(size).
	Rate []RatePoint
}

// rateAt returns the sustained rate for a transfer of the given size.
func (l Link) rateAt(bytes int64) float64 {
	pts := l.Rate
	if len(pts) == 0 {
		//rat:allow-panic links are validated at construction; an empty curve here is a corrupted platform table
		panic("platform: link with empty rate curve")
	}
	if bytes <= pts[0].Bytes {
		return pts[0].Bps
	}
	last := pts[len(pts)-1]
	if bytes >= last.Bytes {
		return last.Bps
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Bytes >= bytes })
	lo, hi := pts[i-1], pts[i]
	// Interpolate in log2(size) so decade-wide gaps behave sanely.
	f := (math.Log2(float64(bytes)) - math.Log2(float64(lo.Bytes))) /
		(math.Log2(float64(hi.Bytes)) - math.Log2(float64(lo.Bytes)))
	return lo.Bps + f*(hi.Bps-lo.Bps)
}

// Interconnect is a bidirectional host<->FPGA channel. It is a pure
// timing model: package rcsim serializes access to it through a
// sim.Resource, matching the paper's single-channel utilization
// argument.
type Interconnect struct {
	Name string
	// IdealBps is the documented maximum bandwidth — the
	// throughput_ideal a RAT worksheet quotes (1 GB/s for 133 MHz
	// 64-bit PCI-X). The achievable curves live in the links and
	// may exceed a conservative documented figure, as the XD1000's
	// HyperTransport does.
	IdealBps  float64
	WriteLink Link
	ReadLink  Link
}

// link selects the direction's parameters.
func (ic Interconnect) link(d Direction) Link {
	if d == Read {
		return ic.ReadLink
	}
	return ic.WriteLink
}

// TransferTime returns the duration of one transfer of the given size.
// backToBack adds the repeat overhead for transfers issued in a tight
// iteration loop. Zero-byte transfers take zero time (they are never
// issued).
func (ic Interconnect) TransferTime(d Direction, bytes int64, backToBack bool) sim.Time {
	if bytes < 0 {
		//rat:allow-panic negative sizes are a programming error on par with index out of range
		panic(fmt.Sprintf("platform: negative transfer size %d", bytes))
	}
	if bytes == 0 {
		return 0
	}
	l := ic.link(d)
	t := l.Setup + sim.FromSeconds(float64(bytes)/l.rateAt(bytes))
	if backToBack {
		t += l.Repeat
	}
	return t
}

// MeasureAlpha performs the Section 4.2 microbenchmark for one
// direction: time a single isolated transfer of the given size and
// divide the ideal transfer time by the measured one. The result is
// the alpha a RAT worksheet would record. It can exceed 1 when the
// documented bandwidth is conservative relative to the real link (the
// XD1000 case); worksheet validation requires alpha <= 1, so callers
// clamp if they intend to feed it straight back into a prediction.
func (ic Interconnect) MeasureAlpha(d Direction, bytes int64) float64 {
	if bytes <= 0 {
		//rat:allow-panic non-positive sizes are a programming error on par with index out of range
		panic(fmt.Sprintf("platform: microbenchmark size %d must be positive", bytes))
	}
	ideal := float64(bytes) / ic.IdealBps
	return ideal / ic.TransferTime(d, bytes, false).Seconds()
}

// AlphaPoint is one row of a tabulated microbenchmark sweep.
type AlphaPoint struct {
	Bytes int64
	Alpha float64
}

// AlphaTable runs the microbenchmark over a range of sizes, producing
// the per-platform table Section 4.2 recommends keeping for future RAT
// analyses.
func (ic Interconnect) AlphaTable(d Direction, sizes []int64) []AlphaPoint {
	out := make([]AlphaPoint, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, AlphaPoint{Bytes: s, Alpha: ic.MeasureAlpha(d, s)})
	}
	return out
}
