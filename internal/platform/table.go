package platform

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Section 4.2: "In general, the microbenchmark is performed on an FPGA
// over a wide range of possible data sizes. The resulting alpha values
// can be tabulated and used in future RAT analyses for that FPGA
// platform." This file makes that tabulation a durable artifact: save
// a measured table to a file, load it later, and rebuild an
// interconnect model from it — so a platform characterized once (on
// real hardware or a simulation) can feed every future worksheet at
// the right transfer size.
//
// The file format is line-oriented: '#' comments, then one line per
// size: "<bytes> <alpha_write> <alpha_read>", ascending in bytes.

// TablePoint is one measured row of the tabulation.
type TablePoint struct {
	Bytes      int64
	AlphaWrite float64
	AlphaRead  float64
}

// ErrBadTable tags malformed alpha-table input.
var ErrBadTable = errors.New("platform: invalid alpha table")

// SaveAlphaTable runs the microbenchmark at each size and writes the
// tabulation.
func SaveAlphaTable(w io.Writer, ic Interconnect, sizes []int64) error {
	if len(sizes) == 0 {
		return fmt.Errorf("%w: no sizes to measure", ErrBadTable)
	}
	if _, err := fmt.Fprintf(w, "# alpha table: %s (ideal %g MB/s)\n# bytes alpha_write alpha_read\n",
		ic.Name, ic.IdealBps/1e6); err != nil {
		return err
	}
	sorted := make([]int64, len(sizes))
	copy(sorted, sizes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, s := range sorted {
		if _, err := fmt.Fprintf(w, "%d %.6f %.6f\n",
			s, ic.MeasureAlpha(Write, s), ic.MeasureAlpha(Read, s)); err != nil {
			return err
		}
	}
	return nil
}

// LoadAlphaTable parses a tabulation file.
func LoadAlphaTable(r io.Reader) ([]TablePoint, error) {
	var pts []TablePoint
	sc := bufio.NewScanner(r)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("%w: line %d: want 'bytes alpha_write alpha_read', got %q", ErrBadTable, line, text)
		}
		b, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || b <= 0 {
			return nil, fmt.Errorf("%w: line %d: bad size %q", ErrBadTable, line, fields[0])
		}
		aw, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || aw <= 0 {
			return nil, fmt.Errorf("%w: line %d: bad alpha_write %q", ErrBadTable, line, fields[1])
		}
		ar, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || ar <= 0 {
			return nil, fmt.Errorf("%w: line %d: bad alpha_read %q", ErrBadTable, line, fields[2])
		}
		if n := len(pts); n > 0 && b <= pts[n-1].Bytes {
			return nil, fmt.Errorf("%w: line %d: sizes must ascend (%d after %d)", ErrBadTable, line, b, pts[n-1].Bytes)
		}
		pts = append(pts, TablePoint{Bytes: b, AlphaWrite: aw, AlphaRead: ar})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("%w: no data rows", ErrBadTable)
	}
	return pts, nil
}

// InterconnectFromTable rebuilds an interconnect model from a measured
// tabulation: each direction's sustained-rate curve is anchored at the
// measured sizes with rate = alpha x ideal, and no separate setup term
// (the setup cost is already folded into the measured alphas at each
// size). Re-measuring the returned model at a tabulated size
// reproduces the table's alpha exactly.
func InterconnectFromTable(name string, idealBps float64, pts []TablePoint) (Interconnect, error) {
	if idealBps <= 0 {
		return Interconnect{}, fmt.Errorf("%w: ideal bandwidth must be positive", ErrBadTable)
	}
	if len(pts) == 0 {
		return Interconnect{}, fmt.Errorf("%w: empty table", ErrBadTable)
	}
	var wr, rr []RatePoint
	for i, p := range pts {
		if i > 0 && p.Bytes <= pts[i-1].Bytes {
			return Interconnect{}, fmt.Errorf("%w: sizes must ascend", ErrBadTable)
		}
		if p.AlphaWrite <= 0 || p.AlphaRead <= 0 {
			return Interconnect{}, fmt.Errorf("%w: alphas must be positive", ErrBadTable)
		}
		wr = append(wr, RatePoint{Bytes: p.Bytes, Bps: p.AlphaWrite * idealBps})
		rr = append(rr, RatePoint{Bytes: p.Bytes, Bps: p.AlphaRead * idealBps})
	}
	return Interconnect{
		Name:      name,
		IdealBps:  idealBps,
		WriteLink: Link{Rate: wr},
		ReadLink:  Link{Rate: rr},
	}, nil
}
