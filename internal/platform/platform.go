package platform

import (
	"github.com/chrec/rat/internal/resource"
	"github.com/chrec/rat/internal/sim"
)

// Platform bundles everything RAT needs to know about one RC system:
// the interconnect timing model, the FPGA device inventory, and the
// clock range a design can plausibly close on it.
type Platform struct {
	Name         string
	Interconnect Interconnect
	Device       resource.Device

	// MinClockHz..MaxClockHz bracket the plausible post-route
	// kernel clock; the paper sweeps 75-150 MHz on both platforms.
	MinClockHz float64
	MaxClockHz float64
}

// Clock returns a sim.Clock for a kernel frequency on this platform.
func (p Platform) Clock(hz float64) sim.Clock { return sim.Clock{Hz: hz} }

// NallatechH101 models the Nallatech H101-PCIXM card of both PDF case
// studies: a Virtex-4 LX100 user FPGA on a 133 MHz 64-bit PCI-X bus
// (documented maximum 1 GB/s).
//
// Calibration: the microbenchmark at the paper's representative 2 KB
// size yields alpha_write = 0.37 and alpha_read = 0.16 (Table 2). The
// read link's sustained rate collapses for large transfers — the
// behaviour behind the 2-D PDF study's "communication six times larger
// than predicted" — and both links charge a repeat overhead per
// back-to-back transfer, the "additional delays introduced by 800
// repetitive transfers" that quadrupled the 1-D PDF's measured
// communication time.
func NallatechH101() Platform {
	return Platform{
		Name: "Nallatech H101-PCIXM",
		Interconnect: Interconnect{
			Name:     "133 MHz 64-bit PCI-X",
			IdealBps: 1e9,
			WriteLink: Link{
				Setup:  1 * sim.Microsecond,
				Repeat: 8450 * sim.Nanosecond,
				Rate: []RatePoint{
					{Bytes: 512, Bps: 450e6},
					{Bytes: 1 << 20, Bps: 450e6},
				},
			},
			ReadLink: Link{
				Setup:  2560 * sim.Nanosecond,
				Repeat: 8450 * sim.Nanosecond,
				Rate: []RatePoint{
					{Bytes: 2048, Bps: 200e6},
					{Bytes: 262144, Bps: 25e6},
				},
			},
		},
		Device:     resource.VirtexLX100,
		MinClockHz: 75e6,
		MaxClockHz: 150e6,
	}
}

// XtremeDataXD1000 models the XD1000 of the molecular-dynamics case
// study: a Stratix-II EP2S180 in an Opteron socket, reached over
// HyperTransport. The paper's worksheet quotes a conservative 500 MB/s
// documented bandwidth with alpha = 0.9; the real link moves the MD
// dataset at ~850 MB/s, which is why the measured communication time
// (1.39E-3 s) beats the prediction (2.62E-3 s) — the one case study
// where RAT's communication estimate was pessimistic.
func XtremeDataXD1000() Platform {
	return Platform{
		Name: "XtremeData XD1000",
		Interconnect: Interconnect{
			Name:     "HyperTransport",
			IdealBps: 500e6,
			WriteLink: Link{
				Setup:  500 * sim.Nanosecond,
				Repeat: 1 * sim.Microsecond,
				Rate: []RatePoint{
					{Bytes: 4096, Bps: 850e6},
					{Bytes: 1 << 22, Bps: 850e6},
				},
			},
			ReadLink: Link{
				Setup:  500 * sim.Nanosecond,
				Repeat: 1 * sim.Microsecond,
				Rate: []RatePoint{
					{Bytes: 4096, Bps: 850e6},
					{Bytes: 1 << 22, Bps: 850e6},
				},
			},
		},
		Device:     resource.StratixEP2S180,
		MinClockHz: 75e6,
		MaxClockHz: 150e6,
	}
}

// ByName returns a built-in platform model.
func ByName(name string) (Platform, bool) {
	switch name {
	case "nallatech", "h101", NallatechH101().Name:
		return NallatechH101(), true
	case "xd1000", "xtremedata", XtremeDataXD1000().Name:
		return XtremeDataXD1000(), true
	default:
		return Platform{}, false
	}
}
