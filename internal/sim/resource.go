package sim

import "fmt"

// Resource is a serially-shared unit — the CPU<->FPGA interconnect is
// the canonical example: only one transfer occupies the channel at a
// time, and the paper's utilization equations treat it as "only a
// single resource" (Section 3.1). Grant order is FIFO.
//
// Holders acquire with a callback that fires (via the simulator
// calendar, never inline) once the resource is theirs, and must call
// Release exactly once when done.
type Resource struct {
	sim     *Simulator
	name    string
	busy    bool
	waiters []func()

	// Occupancy accounting for utilization reports.
	busySince Time
	busyTotal Time
	grants    uint64
}

// NewResource returns an idle resource attached to the simulator.
func NewResource(s *Simulator, name string) *Resource {
	return &Resource{sim: s, name: name}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Acquire requests the resource; fn runs (as a scheduled event) when
// the grant happens — immediately at the current timestamp if the
// resource is idle, otherwise after the current holder and any earlier
// waiters release.
func (r *Resource) Acquire(fn func()) {
	if fn == nil {
		//rat:allow-panic nil callbacks are a programming error on par with index out of range
		panic("sim: Acquire with nil callback")
	}
	if !r.busy {
		r.grant(fn)
		return
	}
	r.waiters = append(r.waiters, fn)
}

func (r *Resource) grant(fn func()) {
	r.busy = true
	r.busySince = r.sim.Now()
	r.grants++
	r.sim.Schedule(0, fn)
}

// Release frees the resource and grants it to the next waiter, if any.
// Releasing an idle resource panics: it means a double release.
func (r *Resource) Release() {
	if !r.busy {
		//rat:allow-panic a double release desynchronizes the simulated pipeline; documented to panic
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	r.busy = false
	r.busyTotal += r.sim.Now() - r.busySince
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.grant(next)
	}
}

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen returns the number of waiters not yet granted.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// BusyTime returns the cumulative held time over the simulation,
// including the in-progress hold up to the current timestamp.
func (r *Resource) BusyTime() Time {
	t := r.busyTotal
	if r.busy {
		t += r.sim.Now() - r.busySince
	}
	return t
}

// Grants returns how many times the resource has been granted.
func (r *Resource) Grants() uint64 { return r.grants }

// Clock converts between cycle counts of a fixed-frequency clock
// domain and simulation time. Durations are computed from the total
// cycle count in one rounding step, so long kernels do not accumulate
// per-cycle rounding error (a 150 MHz period is 6666.67 ps).
type Clock struct {
	Hz float64
}

// Cycles returns the duration of n clock cycles, rounded to the
// nearest picosecond. Negative cycle counts panic.
func (c Clock) Cycles(n int64) Time {
	if n < 0 {
		//rat:allow-panic negative cycle counts are documented to panic; a causality bug in the caller
		panic(fmt.Sprintf("sim: negative cycle count %d", n))
	}
	if c.Hz <= 0 {
		//rat:allow-panic clocks are validated at construction; a bad frequency here is corrupted platform data
		panic(fmt.Sprintf("sim: clock with non-positive frequency %g", c.Hz))
	}
	return FromSeconds(float64(n) / c.Hz)
}

// CyclesIn returns how many complete cycles fit in the duration d.
func (c Clock) CyclesIn(d Time) int64 {
	if c.Hz <= 0 {
		//rat:allow-panic clocks are validated at construction; a bad frequency here is corrupted platform data
		panic(fmt.Sprintf("sim: clock with non-positive frequency %g", c.Hz))
	}
	return int64(d.Seconds() * c.Hz)
}
