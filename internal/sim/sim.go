// Package sim provides a small deterministic discrete-event simulation
// engine: an event calendar ordered by integer picosecond timestamps,
// with FIFO tie-breaking, plus the serialized-resource and clock-domain
// helpers the RC platform models need.
//
// The engine exists because RAT's validation requires "measured"
// hardware numbers and this reproduction has no FPGA: the simulated
// platform (package rcsim) plays the role of the paper's Nallatech and
// XtremeData testbeds. Determinism matters more than raw speed here —
// every run of a scenario must produce bit-identical timings, so time
// is kept in integer picoseconds rather than floating-point seconds
// (see DESIGN.md for the ablation comparing the two).
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Time is a simulation timestamp or duration in integer picoseconds.
// The range covers about 106 days, comfortably beyond any RAT scenario
// (the longest case study runs 45 seconds).
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// FromSeconds converts a float64 duration in seconds to Time, rounding
// to the nearest picosecond.
func FromSeconds(s float64) Time {
	return Time(math.Round(s * 1e12))
}

// Seconds converts a Time to float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e12 }

// String implements fmt.Stringer with an automatic unit.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.6gns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// event is one calendar entry.
type event struct {
	at  Time
	seq uint64 // insertion order; breaks timestamp ties FIFO
	fn  func()
}

// eventHeap is a binary min-heap of event values ordered by (at, seq).
// Events are stored by value and sifted manually rather than boxed
// behind container/heap's interface: the interface forces one pointer
// allocation per Schedule, and the calendar is the hottest allocation
// site in a simulated run (hundreds of events per iteration). The
// value layout keeps the backing array reusable across runs, so a
// pre-sized calendar schedules with zero steady-state allocations.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends e and restores the heap invariant.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the earliest event. The vacated slot's
// closure reference is cleared so finished events do not pin memory.
func (h *eventHeap) pop() event {
	q := *h
	e := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	i := 0
	for {
		min := i
		if l := 2*i + 1; l < n && q.less(l, min) {
			min = l
		}
		if r := 2*i + 2; r < n && q.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return e
}

// Simulator is the event calendar. The zero value is ready to use; it
// starts at time zero with an empty calendar.
type Simulator struct {
	now   Time
	queue eventHeap
	seq   uint64
	steps uint64
}

// New returns an empty simulator at time zero.
func New() *Simulator { return &Simulator{} }

// Reserve grows the calendar's capacity so at least n further events
// can be scheduled without reallocating. Callers that know a scenario's
// event population up front (e.g. a fixed iteration count times a fixed
// event fan-out) use it to take the calendar off the allocation
// profile entirely.
func (s *Simulator) Reserve(n int) {
	if need := len(s.queue) + n; need > cap(s.queue) {
		q := make(eventHeap, len(s.queue), need)
		copy(q, s.queue)
		s.queue = q
	}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of scheduled events not yet dispatched.
func (s *Simulator) Pending() int { return len(s.queue) }

// Steps returns the number of events dispatched so far; useful as a
// progress metric and in tests.
func (s *Simulator) Steps() uint64 { return s.steps }

// Schedule enqueues fn to run after delay. A negative delay panics —
// causality violations are programming errors. Zero delays are legal
// and run after already-queued events at the same timestamp (FIFO).
func (s *Simulator) Schedule(delay Time, fn func()) {
	if delay < 0 {
		//rat:allow-panic causality violations are documented programming errors; the event queue cannot represent them
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt enqueues fn at an absolute time, which must not precede
// the current time.
func (s *Simulator) ScheduleAt(at Time, fn func()) {
	if at < s.now {
		//rat:allow-panic causality violations are documented programming errors; the event queue cannot represent them
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		//rat:allow-panic nil events are a programming error on par with index out of range
		panic("sim: schedule of nil event")
	}
	s.seq++
	s.queue.push(event{at: at, seq: s.seq, fn: fn})
}

// Step dispatches the earliest pending event, advancing time to its
// timestamp. It reports false when the calendar is empty.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.queue.pop()
	s.now = e.at
	s.steps++
	e.fn()
	return true
}

// ErrDeadline is returned by RunUntil when the calendar still holds
// events beyond the deadline.
var ErrDeadline = errors.New("sim: deadline reached with events pending")

// Run dispatches events until the calendar drains, returning the final
// simulation time.
func (s *Simulator) Run() Time {
	for s.Step() {
	}
	return s.now
}

// RunUntil dispatches events with timestamps at or before the deadline.
// Time advances to the deadline if the calendar drains earlier. It
// returns ErrDeadline if undelivered events remain past the deadline,
// which usually means a scenario hung (e.g. a resource never released).
func (s *Simulator) RunUntil(deadline Time) error {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if len(s.queue) > 0 {
		return fmt.Errorf("%w: %d pending, next at %v", ErrDeadline, len(s.queue), s.queue[0].at)
	}
	if s.now < deadline {
		s.now = deadline
	}
	return nil
}
