package sim

import "testing"

// TestScheduleZeroAllocAfterReserve: once the calendar is pre-sized,
// scheduling and dispatching allocate nothing — the point of storing
// events by value instead of behind container/heap's interface.
func TestScheduleZeroAllocAfterReserve(t *testing.T) {
	s := New()
	fn := func() {}
	s.Reserve(64)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			s.Schedule(Time(i%7)*Nanosecond, fn)
		}
		for s.Step() {
		}
	})
	if allocs != 0 {
		t.Errorf("pre-sized calendar allocates %.1f times per run, want 0", allocs)
	}
}

// TestReserveKeepsPendingEvents: growing the calendar must not disturb
// already-scheduled events.
func TestReserveKeepsPendingEvents(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(2*Nanosecond, func() { order = append(order, 2) })
	s.Schedule(1*Nanosecond, func() { order = append(order, 1) })
	s.Reserve(1024)
	s.Schedule(3*Nanosecond, func() { order = append(order, 3) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("dispatch order after Reserve = %v, want [1 2 3]", order)
	}
}
