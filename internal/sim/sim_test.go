package sim_test

import (
	"errors"
	"math"
	"testing"

	"github.com/chrec/rat/internal/sim"
)

func TestTimeConversions(t *testing.T) {
	if sim.FromSeconds(1) != sim.Second {
		t.Errorf("FromSeconds(1) = %d", sim.FromSeconds(1))
	}
	if sim.FromSeconds(1.5e-6) != 1500*sim.Nanosecond {
		t.Errorf("FromSeconds(1.5us) = %d", sim.FromSeconds(1.5e-6))
	}
	if got := sim.Time(2500 * sim.Nanosecond).Seconds(); got != 2.5e-6 {
		t.Errorf("Seconds = %g", got)
	}
	// Round-trips at picosecond granularity.
	for _, s := range []float64{0, 1e-12, 3.7e-9, 0.25, 45.39} {
		if got := sim.FromSeconds(s).Seconds(); math.Abs(got-s) > 5e-13 {
			t.Errorf("round trip %g -> %g", s, got)
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    sim.Time
		want string
	}{
		{0, "0s"},
		{sim.Second, "1s"},
		{3 * sim.Millisecond, "3ms"},
		{1500 * sim.Nanosecond, "1.5us"},
		{7 * sim.Nanosecond, "7ns"},
		{42, "42ps"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestEventOrdering(t *testing.T) {
	s := sim.New()
	var order []int
	s.Schedule(30, func() { order = append(order, 3) })
	s.Schedule(10, func() { order = append(order, 1) })
	s.Schedule(20, func() { order = append(order, 2) })
	end := s.Run()
	if end != 30 {
		t.Errorf("final time %v, want 30ps", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("dispatch order %v", order)
	}
	if s.Steps() != 3 {
		t.Errorf("Steps = %d", s.Steps())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := sim.New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events dispatched out of insertion order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := sim.New()
	var times []sim.Time
	s.Schedule(10, func() {
		times = append(times, s.Now())
		s.Schedule(5, func() {
			times = append(times, s.Now())
			s.Schedule(0, func() { times = append(times, s.Now()) })
		})
	})
	s.Run()
	if len(times) != 3 || times[0] != 10 || times[1] != 15 || times[2] != 15 {
		t.Errorf("times = %v", times)
	}
}

func TestSchedulePanics(t *testing.T) {
	s := sim.New()
	mustPanic(t, "negative delay", func() { s.Schedule(-1, func() {}) })
	mustPanic(t, "nil event", func() { s.Schedule(1, nil) })
	s.Schedule(10, func() {})
	s.Run()
	mustPanic(t, "schedule in the past", func() { s.ScheduleAt(5, func() {}) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestRunUntil(t *testing.T) {
	s := sim.New()
	fired := 0
	s.Schedule(10, func() { fired++ })
	s.Schedule(100, func() { fired++ })
	err := s.RunUntil(50)
	if !errors.Is(err, sim.ErrDeadline) {
		t.Fatalf("RunUntil(50) error = %v, want ErrDeadline", err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if err := s.RunUntil(200); err != nil {
		t.Fatalf("RunUntil(200): %v", err)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if s.Now() != 200 {
		t.Errorf("time advances to the deadline when idle: %v", s.Now())
	}
}

func TestResourceSerializes(t *testing.T) {
	s := sim.New()
	r := sim.NewResource(s, "bus")
	var log []string
	use := func(name string, hold sim.Time) {
		r.Acquire(func() {
			log = append(log, name+"+")
			s.Schedule(hold, func() {
				log = append(log, name+"-")
				r.Release()
			})
		})
	}
	use("a", 10)
	use("b", 10) // queued behind a
	s.Schedule(5, func() { use("c", 10) })
	s.Run()
	want := []string{"a+", "a-", "b+", "b-", "c+", "c-"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("three serialized 10ps holds must end at 30ps, got %v", s.Now())
	}
	if r.BusyTime() != 30 {
		t.Errorf("BusyTime = %v, want 30ps", r.BusyTime())
	}
	if r.Grants() != 3 {
		t.Errorf("Grants = %d", r.Grants())
	}
	if r.Busy() || r.QueueLen() != 0 {
		t.Error("resource must end idle with empty queue")
	}
}

func TestResourceBusyAccounting(t *testing.T) {
	s := sim.New()
	r := sim.NewResource(s, "bus")
	r.Acquire(func() {})
	s.Run()
	if !r.Busy() {
		t.Fatal("resource should be held")
	}
	s.Schedule(40, func() {})
	s.Run()
	if got := r.BusyTime(); got != 40 {
		t.Errorf("in-progress BusyTime = %v, want 40ps", got)
	}
	r.Release()
	if r.Busy() {
		t.Error("released resource still busy")
	}
}

func TestResourcePanics(t *testing.T) {
	s := sim.New()
	r := sim.NewResource(s, "bus")
	mustPanic(t, "nil acquire", func() { r.Acquire(nil) })
	mustPanic(t, "double release", func() { r.Release() })
	if r.Name() != "bus" {
		t.Errorf("Name = %q", r.Name())
	}
}

func TestClockCycles(t *testing.T) {
	c := sim.Clock{Hz: 150e6}
	// One cycle at 150 MHz is 6666.67ps, rounded to 6667.
	if got := c.Cycles(1); got != 6667 {
		t.Errorf("Cycles(1) = %d, want 6667", got)
	}
	// Large counts round once, not per cycle: 3e6 cycles = 20ms exactly.
	if got := c.Cycles(3_000_000); got != 20*sim.Millisecond {
		t.Errorf("Cycles(3e6) = %v, want 20ms", got)
	}
	if got := c.Cycles(0); got != 0 {
		t.Errorf("Cycles(0) = %v", got)
	}
	if got := c.CyclesIn(20 * sim.Millisecond); got != 3_000_000 {
		t.Errorf("CyclesIn(20ms) = %d", got)
	}
	mustPanic(t, "negative cycles", func() { c.Cycles(-1) })
	mustPanic(t, "zero clock", func() { sim.Clock{}.Cycles(1) })
	mustPanic(t, "zero clock CyclesIn", func() { sim.Clock{}.CyclesIn(1) })
}

// TestDeterminism: two identical scenarios produce identical event
// counts and final times.
func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64) {
		s := sim.New()
		r := sim.NewResource(s, "bus")
		for i := 0; i < 100; i++ {
			d := sim.Time(i % 7)
			s.Schedule(d, func() {
				r.Acquire(func() {
					s.Schedule(3, r.Release)
				})
			})
		}
		return s.Run(), s.Steps()
	}
	t1, n1 := run()
	t2, n2 := run()
	if t1 != t2 || n1 != n2 {
		t.Errorf("non-deterministic: (%v,%d) vs (%v,%d)", t1, n1, t2, n2)
	}
}
