package trace_test

import (
	"strings"
	"testing"

	"github.com/chrec/rat/internal/sim"
	"github.com/chrec/rat/internal/trace"
)

func TestRecorderBasics(t *testing.T) {
	var r trace.Recorder
	r.Add(trace.Span{Kind: trace.Write, Iter: 0, Start: 0, End: 10})
	r.Add(trace.Span{Kind: trace.Compute, Iter: 0, Start: 10, End: 40})
	r.Add(trace.Span{Kind: trace.Read, Iter: 0, Start: 40, End: 45})
	if got := r.Total(); got != 45 {
		t.Errorf("Total = %v", got)
	}
	if got := r.BusyTime(trace.Write, trace.Read); got != 15 {
		t.Errorf("comm busy = %v, want 15", got)
	}
	if got := r.BusyTime(trace.Compute); got != 30 {
		t.Errorf("comp busy = %v, want 30", got)
	}
	if got := r.Overlap(); got != 0 {
		t.Errorf("sequential schedule overlap = %v, want 0", got)
	}
	spans := r.Spans()
	if len(spans) != 3 || spans[0].Kind != trace.Write || spans[0].Duration() != 10 {
		t.Errorf("Spans = %+v", spans)
	}
}

func TestSpansSortedByStart(t *testing.T) {
	var r trace.Recorder
	r.Add(trace.Span{Kind: trace.Read, Start: 50, End: 60})
	r.Add(trace.Span{Kind: trace.Write, Start: 0, End: 10})
	s := r.Spans()
	if s[0].Kind != trace.Write || s[1].Kind != trace.Read {
		t.Errorf("spans not sorted: %+v", s)
	}
}

func TestOverlapMeasurement(t *testing.T) {
	var r trace.Recorder
	// Double-buffered shape: write of iter 2 overlaps compute of iter 1.
	r.Add(trace.Span{Kind: trace.Write, Iter: 0, Start: 0, End: 10})
	r.Add(trace.Span{Kind: trace.Compute, Iter: 0, Start: 10, End: 30})
	r.Add(trace.Span{Kind: trace.Write, Iter: 1, Start: 10, End: 20})
	r.Add(trace.Span{Kind: trace.Compute, Iter: 1, Start: 30, End: 50})
	r.Add(trace.Span{Kind: trace.Read, Iter: 0, Start: 30, End: 35})
	// Comm intervals: [0,20] and [30,35]; comp: [10,50].
	// Overlap: [10,20] + [30,35] = 15.
	if got := r.Overlap(); got != 15 {
		t.Errorf("Overlap = %v, want 15", got)
	}
}

func TestOverlapMergesAdjacentSpans(t *testing.T) {
	var r trace.Recorder
	r.Add(trace.Span{Kind: trace.Write, Start: 0, End: 10})
	r.Add(trace.Span{Kind: trace.Read, Start: 10, End: 20})
	r.Add(trace.Span{Kind: trace.Write, Start: 5, End: 12}) // overlaps both
	r.Add(trace.Span{Kind: trace.Compute, Start: 0, End: 20})
	if got := r.Overlap(); got != 20 {
		t.Errorf("merged overlap = %v, want 20", got)
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *trace.Recorder
	r.Add(trace.Span{Kind: trace.Write, Start: 0, End: 1}) // must not panic
	if r.Total() != 0 || r.Spans() != nil || r.Overlap() != 0 || r.BusyTime(trace.Write) != 0 {
		t.Error("nil recorder must behave as empty")
	}
}

func TestAddPanicsOnNegativeSpan(t *testing.T) {
	var r trace.Recorder
	defer func() {
		if recover() == nil {
			t.Error("negative span must panic")
		}
	}()
	r.Add(trace.Span{Start: 10, End: 5})
}

func TestGantt(t *testing.T) {
	var r trace.Recorder
	r.Add(trace.Span{Kind: trace.Write, Iter: 0, Start: 0, End: 25 * sim.Microsecond})
	r.Add(trace.Span{Kind: trace.Compute, Iter: 0, Start: 25 * sim.Microsecond, End: 75 * sim.Microsecond})
	r.Add(trace.Span{Kind: trace.Read, Iter: 0, Start: 75 * sim.Microsecond, End: 100 * sim.Microsecond})
	g := r.Gantt(60)
	if !strings.Contains(g, "Comm |") || !strings.Contains(g, "Comp |") {
		t.Fatalf("missing lanes:\n%s", g)
	}
	for _, label := range []string{"W1", "C1", "R1"} {
		if !strings.Contains(g, label) {
			t.Errorf("missing label %s in:\n%s", label, g)
		}
	}
	// The compute mark must sit on the Comp lane, transfers on Comm.
	lines := strings.Split(g, "\n")
	if strings.Contains(lines[0], "C1") || !strings.Contains(lines[1], "C1") {
		t.Errorf("compute span on wrong lane:\n%s", g)
	}
	if !strings.Contains(lines[0], "W1") || strings.Contains(lines[1], "W1") {
		t.Errorf("write span on wrong lane:\n%s", g)
	}
}

func TestGanttEmptyAndNarrow(t *testing.T) {
	var r trace.Recorder
	if got := r.Gantt(40); got != "(empty trace)\n" {
		t.Errorf("empty gantt = %q", got)
	}
	r.Add(trace.Span{Kind: trace.Write, Start: 0, End: 100})
	if g := r.Gantt(1); !strings.Contains(g, "Comm") { // clamped to minimum width
		t.Errorf("narrow gantt broken:\n%s", g)
	}
}

func TestKindStrings(t *testing.T) {
	if trace.Write.String() != "write" || trace.Read.String() != "read" || trace.Compute.String() != "compute" {
		t.Error("Kind strings wrong")
	}
	if trace.Kind(9).String() != "Kind(9)" {
		t.Error("unknown Kind string wrong")
	}
}

func TestByIter(t *testing.T) {
	var r trace.Recorder
	r.Add(trace.Span{Kind: trace.Compute, Iter: 1, Start: 30, End: 50})
	r.Add(trace.Span{Kind: trace.Write, Iter: 0, Start: 0, End: 10})
	r.Add(trace.Span{Kind: trace.Write, Iter: 1, Start: 10, End: 20})
	r.Add(trace.Span{Kind: trace.Compute, Iter: 0, Start: 10, End: 30})
	got := r.ByIter(1)
	if len(got) != 2 || got[0].Kind != trace.Write || got[1].Kind != trace.Compute {
		t.Errorf("ByIter(1) = %+v", got)
	}
	if got[0].Start != 10 || got[1].Start != 30 {
		t.Errorf("ByIter(1) not sorted by start: %+v", got)
	}
	if r.ByIter(7) != nil {
		t.Error("ByIter of an unrecorded iteration must be nil")
	}
	var nilRec *trace.Recorder
	if nilRec.ByIter(0) != nil {
		t.Error("nil recorder ByIter must be nil")
	}
}

// TestAccessorsAreDefensiveCopies mutates the slices returned by
// Spans and ByIter and checks the recorder's backing store survives.
func TestAccessorsAreDefensiveCopies(t *testing.T) {
	var r trace.Recorder
	r.Add(trace.Span{Kind: trace.Write, Iter: 0, Start: 0, End: 10})
	r.Add(trace.Span{Kind: trace.Compute, Iter: 0, Start: 10, End: 40})

	s := r.Spans()
	s[0].End = sim.Time(999)
	s[1].Kind = trace.Read
	b := r.ByIter(0)
	b[0].Start = sim.Time(888)

	fresh := r.Spans()
	if fresh[0].End != 10 || fresh[1].Kind != trace.Compute || fresh[0].Start != 0 {
		t.Errorf("mutating returned slices corrupted the recorder: %+v", fresh)
	}
	if got := r.Total(); got != 40 {
		t.Errorf("Total after mutation = %v, want 40", got)
	}
}
