// Package trace records labelled time spans from a simulation run and
// renders them as an ASCII Gantt chart — the reproduction of the
// paper's Figure 2, whose three overlap scenarios (single-buffered;
// double-buffered compute-bound; double-buffered communication-bound)
// fall out of the recorded schedule rather than being drawn by hand.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"github.com/chrec/rat/internal/sim"
)

// Kind classifies a span for lane assignment and labelling.
type Kind int

const (
	// Write is a host-to-FPGA input transfer (label "R" in the
	// paper's figure is from the FPGA's perspective; we keep the
	// host's, consistent with the worksheet tables).
	Write Kind = iota
	// Read is an FPGA-to-host result transfer.
	Read
	// Compute is a kernel execution span.
	Compute
	// Fault is time lost to injected platform misbehaviour: a wasted
	// transfer or kernel attempt, a DMA stall, or a failover
	// rebalance (package fault). Fault spans are excluded from
	// Overlap, which measures useful comm/comp concurrency only.
	Fault
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Write:
		return "write"
	case Read:
		return "read"
	case Compute:
		return "compute"
	case Fault:
		return "fault"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// letter is the single-character mark used in Gantt cells.
func (k Kind) letter() byte {
	switch k {
	case Write:
		return 'W'
	case Read:
		return 'R'
	case Compute:
		return 'C'
	case Fault:
		return 'X'
	default:
		return '?'
	}
}

// Span is one recorded activity.
type Span struct {
	Kind  Kind
	Iter  int // iteration index the activity belongs to
	Start sim.Time
	End   sim.Time
}

// Duration returns the span length.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Recorder accumulates spans. The zero value is ready to use. A nil
// *Recorder is a valid no-op sink, so simulation code can record
// unconditionally.
type Recorder struct {
	spans []Span
}

// Add records a span; it panics on negative-length spans. Add on a nil
// recorder is a no-op.
func (r *Recorder) Add(s Span) {
	if r == nil {
		return
	}
	if s.End < s.Start {
		//rat:allow-panic a backwards span is a causality bug in the emitter, not recoverable input
		panic(fmt.Sprintf("trace: span ends (%v) before it starts (%v)", s.End, s.Start))
	}
	r.spans = append(r.spans, s)
}

// Spans returns the recorded spans sorted by start time (stable on
// insertion order for ties). The slice is a defensive copy: mutating
// it never corrupts the recorder's backing store.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ByIter returns the spans belonging to one iteration, sorted by start
// time (stable on insertion order for ties), as a defensive copy.
func (r *Recorder) ByIter(iter int) []Span {
	if r == nil {
		return nil
	}
	var out []Span
	for _, s := range r.spans {
		if s.Iter == iter {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Total returns time covered from zero to the latest span end.
func (r *Recorder) Total() sim.Time {
	if r == nil {
		return 0
	}
	var end sim.Time
	for _, s := range r.spans {
		if s.End > end {
			end = s.End
		}
	}
	return end
}

// BusyTime returns the summed duration of spans of one kind.
func (r *Recorder) BusyTime(kinds ...Kind) sim.Time {
	if r == nil {
		return 0
	}
	var t sim.Time
	for _, s := range r.spans {
		for _, k := range kinds {
			if s.Kind == k {
				t += s.Duration()
				break
			}
		}
	}
	return t
}

// Overlap returns the total time during which both a communication
// span (Write or Read) and a Compute span are simultaneously active —
// zero for a single-buffered schedule, substantial for double
// buffering. It is the direct measurement of the overlap the paper's
// Eq. 6 models.
func (r *Recorder) Overlap() sim.Time {
	if r == nil {
		return 0
	}
	// Merge each class's spans into sorted intervals then intersect.
	comm := mergeIntervals(r.collect(Write, Read))
	comp := mergeIntervals(r.collect(Compute))
	var total sim.Time
	i, j := 0, 0
	for i < len(comm) && j < len(comp) {
		lo := max64(comm[i][0], comp[j][0])
		hi := min64(comm[i][1], comp[j][1])
		if hi > lo {
			total += hi - lo
		}
		if comm[i][1] < comp[j][1] {
			i++
		} else {
			j++
		}
	}
	return total
}

func (r *Recorder) collect(kinds ...Kind) [][2]sim.Time {
	var out [][2]sim.Time
	for _, s := range r.spans {
		for _, k := range kinds {
			if s.Kind == k {
				out = append(out, [2]sim.Time{s.Start, s.End})
				break
			}
		}
	}
	return out
}

func mergeIntervals(in [][2]sim.Time) [][2]sim.Time {
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return in[i][0] < in[j][0] })
	out := [][2]sim.Time{in[0]}
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if iv[0] <= last[1] {
			if iv[1] > last[1] {
				last[1] = iv[1]
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

func max64(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func min64(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}

// Gantt renders the recorded spans as an ASCII chart in the style of
// the paper's Figure 2: a "Comm" lane holding write/read spans and a
// "Comp" lane holding compute spans, each span drawn as its letter
// and iteration number (W1, R1, C1, ...) positioned proportionally
// over width columns. Runs with injected faults gain a third "Flt"
// lane holding the lost-time spans; fault-free charts keep the
// two-lane Figure 2 layout exactly.
func (r *Recorder) Gantt(width int) string {
	if width < 20 {
		width = 20
	}
	total := r.Total()
	if total == 0 {
		return "(empty trace)\n"
	}
	commLane := make([]byte, width)
	compLane := make([]byte, width)
	var faultLane []byte
	for i := range commLane {
		commLane[i] = '.'
		compLane[i] = '.'
	}
	scale := func(t sim.Time) int {
		c := int(int64(t) * int64(width) / int64(total))
		if c >= width {
			c = width - 1
		}
		return c
	}
	for _, s := range r.Spans() {
		lane := commLane
		switch s.Kind {
		case Compute:
			lane = compLane
		case Fault:
			if faultLane == nil {
				faultLane = make([]byte, width)
				for i := range faultLane {
					faultLane[i] = '.'
				}
			}
			lane = faultLane
		}
		lo, hi := scale(s.Start), scale(s.End)
		label := fmt.Sprintf("%c%d", s.Kind.letter(), s.Iter+1)
		for c := lo; c <= hi; c++ {
			lane[c] = '='
		}
		for i := 0; i < len(label) && lo+i <= hi; i++ {
			lane[lo+i] = label[i]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Comm |%s|\n", commLane)
	fmt.Fprintf(&b, "Comp |%s|\n", compLane)
	if faultLane != nil {
		fmt.Fprintf(&b, "Flt  |%s|\n", faultLane)
	}
	fmt.Fprintf(&b, "      0%*s\n", width-1, total)
	return b.String()
}
