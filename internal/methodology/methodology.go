// Package methodology drives the full RC Amenability Test of the
// paper's Figure 1: throughput test, then numerical-precision test,
// then resource test, each with its own exit arc back to "NEW DESIGN",
// and a PROCEED verdict only when every test passes the designer's
// requirements.
//
// The paper stresses that RAT evaluates a specific design against a
// specific platform, iteratively: "RAT is applied iteratively during
// the design process until a suitable version of the algorithm is
// formulated or all reasonable permutations are exhausted". Evaluate
// is one turn of that loop; callers revise the design and call again.
package methodology

import (
	"errors"
	"fmt"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/precision"
	"github.com/chrec/rat/internal/resource"
)

// Requirements are the designer's acceptance criteria.
type Requirements struct {
	// TargetSpeedup is the speedup the migration must deliver to be
	// judged a success (the paper surveys thresholds from parity
	// for power-constrained embedded work to the 50-100x said to
	// impress "middle management").
	TargetSpeedup float64
	// Buffering is the overlap discipline the design will use.
	Buffering core.Buffering
	// ErrorTolerance is the maximum acceptable numerical error
	// (relative to the reference peak). Zero skips the precision
	// test, for designs whose precision is already settled.
	ErrorTolerance float64
}

// Design bundles everything the three tests examine.
type Design struct {
	// Params is the throughput-test worksheet.
	Params core.Parameters
	// Candidates are the numerical-format options for the precision
	// test (may be empty when ErrorTolerance is zero).
	Candidates []precision.Candidate
	// Demand is the design's estimated resource requirement and
	// Device the target FPGA.
	Demand resource.Demand
	Device resource.Device
}

// Step identifies one test of the flow.
type Step string

const (
	StepThroughput Step = "throughput"
	StepPrecision  Step = "precision"
	StepResources  Step = "resources"
)

// StepResult records one test's outcome.
type StepResult struct {
	Step   Step
	Pass   bool
	Detail string
}

// Verdict is the flow's terminal arc.
type Verdict int

const (
	// NewDesign: some test failed; revise the design (or the
	// platform choice) and run RAT again.
	NewDesign Verdict = iota
	// Proceed: all tests passed; begin hardware implementation.
	Proceed
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	if v == Proceed {
		return "PROCEED"
	}
	return "NEW DESIGN"
}

// Outcome is the complete record of one methodology pass.
type Outcome struct {
	Verdict Verdict
	Steps   []StepResult

	// Prediction is the throughput test's output.
	Prediction core.Prediction
	// Chosen is the precision test's selected format (zero when the
	// test was skipped or failed).
	Chosen precision.Candidate
	// Resources is the resource test's report (zero when an earlier
	// test aborted the flow).
	Resources resource.Report
}

// failed appends a failing step and closes the outcome.
func (o *Outcome) failed(s Step, detail string) Outcome {
	o.Steps = append(o.Steps, StepResult{Step: s, Pass: false, Detail: detail})
	o.Verdict = NewDesign
	return *o
}

func (o *Outcome) passed(s Step, detail string) {
	o.Steps = append(o.Steps, StepResult{Step: s, Pass: true, Detail: detail})
}

// Evaluate runs one pass of the Figure 1 flow. It returns an error
// only for malformed inputs; a design that merely fails a test comes
// back with Verdict NewDesign and the failing step's diagnosis.
func Evaluate(req Requirements, d Design) (Outcome, error) {
	if req.TargetSpeedup <= 0 {
		return Outcome{}, fmt.Errorf("methodology: target speedup must be positive (got %g)", req.TargetSpeedup)
	}
	if req.ErrorTolerance < 0 {
		return Outcome{}, fmt.Errorf("methodology: error tolerance must be non-negative (got %g)", req.ErrorTolerance)
	}
	var out Outcome

	// Throughput test (Section 3.1). On failure, diagnose which
	// side is insufficient: if even infinite computational
	// parallelism cannot reach the target, the communication
	// throughput is the wall; otherwise more parallelism (a higher
	// throughput_proc) could still get there.
	pr, err := core.Predict(d.Params)
	if err != nil {
		return Outcome{}, err
	}
	out.Prediction = pr
	speedup := pr.Speedup(req.Buffering)
	if speedup < req.TargetSpeedup {
		if maxSp := pr.MaxSpeedup(); maxSp < req.TargetSpeedup {
			return out.failed(StepThroughput, fmt.Sprintf(
				"insufficient communication throughput: predicted speedup %.2f, and even infinite parallelism caps at %.2f against the %.2f target — reduce or overlap communication",
				speedup, maxSp, req.TargetSpeedup)), nil
		}
		need, serr := core.SolveThroughputProc(d.Params, req.TargetSpeedup, req.Buffering)
		detail := fmt.Sprintf("insufficient computation throughput: predicted speedup %.2f against the %.2f target", speedup, req.TargetSpeedup)
		if serr == nil {
			detail += fmt.Sprintf(" — the design must sustain %.1f ops/cycle (currently %.1f)", need, d.Params.Comp.ThroughputProc)
		}
		return out.failed(StepThroughput, detail), nil
	}
	out.passed(StepThroughput, fmt.Sprintf("predicted speedup %.2f meets the %.2f target (%s)", speedup, req.TargetSpeedup, req.Buffering))

	// Numerical precision test (Section 3.2).
	if req.ErrorTolerance > 0 {
		chosen, notes, err := precision.Recommend(d.Candidates, req.ErrorTolerance)
		if err != nil {
			if errors.Is(err, precision.ErrUnrealizable) {
				return out.failed(StepPrecision, fmt.Sprintf("minimum precision unrealizable: %v", err)), nil
			}
			return Outcome{}, err
		}
		out.Chosen = chosen
		detail := fmt.Sprintf("%s meets the %.3g tolerance (max error %.3g)", chosen.Label, req.ErrorTolerance, chosen.MaxError)
		if len(notes) > 0 {
			detail += "; " + notes[len(notes)-1]
		}
		out.passed(StepPrecision, detail)
	} else {
		out.passed(StepPrecision, "skipped: precision fixed by the designer")
	}

	// Resource test (Section 3.3).
	rep := resource.Check(d.Device, d.Demand)
	out.Resources = rep
	if !rep.Fits {
		return out.failed(StepResources, fmt.Sprintf("insufficient resources on %s: %v", d.Device.Name, rep.Warnings)), nil
	}
	detail := fmt.Sprintf("fits %s; limiting resource %s at %.0f%%",
		d.Device.Name, d.Device.KindName(rep.Limiting), rep.Utilization(rep.Limiting)*100)
	if len(rep.Warnings) > 0 {
		detail += fmt.Sprintf(" (warnings: %v)", rep.Warnings)
	}
	out.passed(StepResources, detail)

	out.Verdict = Proceed
	return out, nil
}
