package methodology_test

import (
	"strings"
	"testing"

	"github.com/chrec/rat/internal/apps/pdf1d"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/methodology"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/precision"
	"github.com/chrec/rat/internal/resource"
)

// pdf1dDesign assembles the walkthrough's design for methodology runs.
func pdf1dDesign(t *testing.T) methodology.Design {
	t.Helper()
	demand, err := pdf1d.Design().ResourceDemand(resource.VirtexLX100, pdf1d.BatchElements, false)
	if err != nil {
		t.Fatal(err)
	}
	return methodology.Design{
		Params: paper.PDF1DParams(),
		Candidates: []precision.Candidate{
			{Label: "18-bit fixed", Width: 18, MaxError: 0.02, MulCost: resource.Demand{DSP: 1}},
			{Label: "32-bit fixed", Width: 32, MaxError: 0.002, MulCost: resource.Demand{DSP: 2}},
		},
		Demand: demand,
		Device: resource.VirtexLX100,
	}
}

// TestProceedPath: the 1-D PDF design at 150 MHz passes all three
// tests against a 10x goal and a 3% tolerance — the walkthrough's
// happy path.
func TestProceedPath(t *testing.T) {
	out, err := methodology.Evaluate(methodology.Requirements{
		TargetSpeedup:  10,
		Buffering:      core.SingleBuffered,
		ErrorTolerance: 0.03,
	}, pdf1dDesign(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != methodology.Proceed {
		t.Fatalf("verdict = %v, want PROCEED; steps: %+v", out.Verdict, out.Steps)
	}
	if len(out.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(out.Steps))
	}
	for _, s := range out.Steps {
		if !s.Pass {
			t.Errorf("step %s failed on the happy path: %s", s.Step, s.Detail)
		}
	}
	if out.Chosen.Label != "18-bit fixed" {
		t.Errorf("chosen format %q, want 18-bit fixed", out.Chosen.Label)
	}
	if out.Prediction.SpeedupSingle < 10 {
		t.Errorf("prediction speedup %.2f", out.Prediction.SpeedupSingle)
	}
	if !out.Resources.Fits {
		t.Error("resource report should fit")
	}
	if out.Verdict.String() != "PROCEED" {
		t.Errorf("Verdict.String() = %q", out.Verdict.String())
	}
}

// TestInsufficientComputationThroughput: a 20x goal at 150 MHz is
// reachable in principle (communication would allow ~260x) but needs
// more parallelism — the failure detail must say how much.
func TestInsufficientComputationThroughput(t *testing.T) {
	out, err := methodology.Evaluate(methodology.Requirements{
		TargetSpeedup: 20,
		Buffering:     core.SingleBuffered,
	}, pdf1dDesign(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != methodology.NewDesign {
		t.Fatalf("verdict = %v, want NEW DESIGN", out.Verdict)
	}
	last := out.Steps[len(out.Steps)-1]
	if last.Step != methodology.StepThroughput || last.Pass {
		t.Fatalf("failing step = %+v", last)
	}
	if !strings.Contains(last.Detail, "computation throughput") || !strings.Contains(last.Detail, "ops/cycle") {
		t.Errorf("detail should prescribe required parallelism: %s", last.Detail)
	}
}

// TestInsufficientCommunicationThroughput: a goal beyond the
// comm-bound asymptote must be diagnosed as a communication wall.
func TestInsufficientCommunicationThroughput(t *testing.T) {
	d := pdf1dDesign(t)
	pr := core.MustPredict(d.Params)
	out, err := methodology.Evaluate(methodology.Requirements{
		TargetSpeedup: pr.MaxSpeedup() * 2,
		Buffering:     core.DoubleBuffered,
	}, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != methodology.NewDesign {
		t.Fatalf("verdict = %v, want NEW DESIGN", out.Verdict)
	}
	last := out.Steps[len(out.Steps)-1]
	if !strings.Contains(last.Detail, "communication throughput") {
		t.Errorf("detail should blame communication: %s", last.Detail)
	}
}

// TestUnrealizablePrecision: no candidate under a vanishing tolerance.
func TestUnrealizablePrecision(t *testing.T) {
	out, err := methodology.Evaluate(methodology.Requirements{
		TargetSpeedup:  5,
		Buffering:      core.SingleBuffered,
		ErrorTolerance: 1e-9,
	}, pdf1dDesign(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != methodology.NewDesign {
		t.Fatalf("verdict = %v, want NEW DESIGN", out.Verdict)
	}
	last := out.Steps[len(out.Steps)-1]
	if last.Step != methodology.StepPrecision || !strings.Contains(last.Detail, "unrealizable") {
		t.Errorf("failing step = %+v", last)
	}
	// Throughput must have passed before precision failed.
	if out.Steps[0].Step != methodology.StepThroughput || !out.Steps[0].Pass {
		t.Errorf("step order wrong: %+v", out.Steps)
	}
}

// TestInsufficientResources: a demand beyond the device inventory
// fails the final test.
func TestInsufficientResources(t *testing.T) {
	d := pdf1dDesign(t)
	d.Demand = resource.Demand{DSP: 1000, BRAM: 10, Logic: 10}
	out, err := methodology.Evaluate(methodology.Requirements{
		TargetSpeedup:  5,
		Buffering:      core.SingleBuffered,
		ErrorTolerance: 0.03,
	}, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != methodology.NewDesign {
		t.Fatalf("verdict = %v, want NEW DESIGN", out.Verdict)
	}
	last := out.Steps[len(out.Steps)-1]
	if last.Step != methodology.StepResources || !strings.Contains(last.Detail, "insufficient resources") {
		t.Errorf("failing step = %+v", last)
	}
	if out.Verdict.String() != "NEW DESIGN" {
		t.Errorf("Verdict.String() = %q", out.Verdict.String())
	}
}

// TestSkippedPrecision: zero tolerance skips the precision test but
// still records the step.
func TestSkippedPrecision(t *testing.T) {
	d := pdf1dDesign(t)
	d.Candidates = nil
	out, err := methodology.Evaluate(methodology.Requirements{
		TargetSpeedup: 5,
		Buffering:     core.SingleBuffered,
	}, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != methodology.Proceed {
		t.Fatalf("verdict = %v, want PROCEED", out.Verdict)
	}
	if !strings.Contains(out.Steps[1].Detail, "skipped") {
		t.Errorf("precision step should record the skip: %+v", out.Steps[1])
	}
}

// TestIterativeRevision walks the Figure 1 loop the way the MD study
// did: the first design misses the 10x goal, the solver prescribes the
// parallelism, the revised design passes.
func TestIterativeRevision(t *testing.T) {
	d := pdf1dDesign(t)
	d.Params = paper.MDParams().WithClock(core.MHz(100)).WithThroughputProc(10)
	d.Device = resource.StratixEP2S180
	d.Demand = resource.Demand{DSP: 500, BRAM: 100, Logic: 1000}
	req := methodology.Requirements{TargetSpeedup: 10, Buffering: core.SingleBuffered}

	out, err := methodology.Evaluate(req, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != methodology.NewDesign {
		t.Fatal("first MD design (10 ops/cycle) should fail the 10x goal")
	}
	need, err := core.SolveThroughputProc(d.Params, 10, core.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	d.Params = d.Params.WithThroughputProc(need * 1.05) // revise with margin
	out, err = methodology.Evaluate(req, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != methodology.Proceed {
		t.Fatalf("revised MD design should pass: %+v", out.Steps)
	}
}

func TestEvaluateArgumentErrors(t *testing.T) {
	d := pdf1dDesign(t)
	if _, err := methodology.Evaluate(methodology.Requirements{TargetSpeedup: 0}, d); err == nil {
		t.Error("zero target must error")
	}
	if _, err := methodology.Evaluate(methodology.Requirements{TargetSpeedup: 5, ErrorTolerance: -1}, d); err == nil {
		t.Error("negative tolerance must error")
	}
	d.Params = core.Parameters{}
	if _, err := methodology.Evaluate(methodology.Requirements{TargetSpeedup: 5}, d); err == nil {
		t.Error("invalid worksheet must error")
	}
}
