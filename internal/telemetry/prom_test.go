package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWritePromBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter(`rat_requests_total{code="200",endpoint="predict"}`).Add(17)
	r.Counter(`rat_requests_total{code="429",endpoint="predict"}`).Add(3)
	r.Gauge("rat_inflight").Set(2)
	r.Timer("server.latency").Observe(250 * time.Millisecond)
	h := r.Histogram(`rat_stage_seconds{stage="kernel"}`, []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(99) // overflow

	var sb strings.Builder
	if err := WriteProm(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE rat_requests_total counter",
		`rat_requests_total{code="200",endpoint="predict"} 17`,
		`rat_requests_total{code="429",endpoint="predict"} 3`,
		"# TYPE rat_inflight gauge",
		"rat_inflight 2",
		"# TYPE server_latency_seconds summary",
		"server_latency_seconds_sum 0.25",
		"server_latency_seconds_count 1",
		"# TYPE rat_stage_seconds histogram",
		`rat_stage_seconds_bucket{stage="kernel",le="0.001"} 1`,
		`rat_stage_seconds_bucket{stage="kernel",le="0.01"} 1`,
		`rat_stage_seconds_bucket{stage="kernel",le="0.1"} 2`,
		`rat_stage_seconds_bucket{stage="kernel",le="+Inf"} 3`,
		`rat_stage_seconds_count{stage="kernel"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE rat_requests_total"); n != 1 {
		t.Errorf("counter family TYPE emitted %d times, want 1", n)
	}
	if err := ValidateProm(out); err != nil {
		t.Errorf("own output fails conformance: %v", err)
	}
}

func TestWritePromStableOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter(`x_total{b="2"}`).Inc()
	r.Counter(`x_total{a="1"}`).Inc()
	r.Gauge("a_gauge").Set(1)
	var first, second strings.Builder
	if err := WriteProm(&first, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteProm(&second, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("WriteProm output is not deterministic")
	}
	out := first.String()
	if strings.Index(out, `x_total{a="1"}`) > strings.Index(out, `x_total{b="2"}`) {
		t.Error("samples within a family not sorted by label set")
	}
}

func TestValidatePromRejects(t *testing.T) {
	cases := map[string]string{
		"duplicate TYPE": "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"bad type":       "# TYPE x banana\nx 1\n",
		"duplicate sample": "# TYPE x counter\n" +
			`x{a="1"} 1` + "\n" + `x{a="1"} 2` + "\n",
		"interleaved families": "# TYPE x counter\n# TYPE y counter\nx 1\ny 1\nx 2\n",
		"bad value":            "# TYPE x counter\nx banana\n",
		"unterminated labels":  "# TYPE x counter\nx{a=\"1\" 1\n",
		"missing +Inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"non-monotone buckets": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"count disagrees with +Inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\n" + `h_bucket{le="+Inf"} 2` + "\n" +
			"h_sum 1\nh_count 3\n",
		"TYPE after samples": "x 1\n# TYPE x counter\nx_more 1\n",
	}
	for name, body := range cases {
		if err := ValidateProm(body); err == nil {
			t.Errorf("%s: validator accepted\n%s", name, body)
		}
	}
	good := "# HELP x a counter\n# TYPE x counter\nx 1\n" +
		"# TYPE h histogram\n" +
		`h_bucket{le="0.5"} 2` + "\n" + `h_bucket{le="+Inf"} 4` + "\n" +
		"h_sum 3.5\nh_count 4\n"
	if err := ValidateProm(good); err != nil {
		t.Errorf("validator rejected well-formed input: %v", err)
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(2.5)
	g.Add(-5)
	if got := g.Value(); got != 7.5 {
		t.Errorf("gauge = %g, want 7.5", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 7.5 {
		t.Errorf("gauge after balanced concurrent adds = %g, want 7.5", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	empty := HistogramStats{}
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}

	single := HistogramStats{
		Count:   1,
		Buckets: []BucketCount{{1, 0}, {2, 1}, {4, 0}},
	}
	if q := single.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("single-sample p50 = %g, want within its bucket (1,2]", q)
	}
	if q := single.Quantile(1); q != 2 {
		t.Errorf("single-sample p100 = %g, want bucket upper bound 2", q)
	}

	// All-equal samples: every observation in one bucket; all quantiles
	// land inside that bucket.
	equal := HistogramStats{
		Count:   100,
		Buckets: []BucketCount{{1, 0}, {2, 100}, {4, 0}},
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		got := equal.Quantile(q)
		if got < 1 || got > 2 {
			t.Errorf("all-equal q%g = %g, want within (1,2]", q, got)
		}
	}
	if equal.Quantile(0.5) >= equal.Quantile(0.99) {
		// interpolation should be monotone in q
		t.Error("quantile not monotone in q")
	}

	// Overflow rank: estimate clamps to the last finite bound.
	over := HistogramStats{
		Count:    10,
		Buckets:  []BucketCount{{1, 5}},
		Overflow: 5,
	}
	if got := over.Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %g, want last bound 1", got)
	}
	if got := over.Quantile(-1); got != over.Quantile(0) {
		t.Error("q below 0 not clamped")
	}
}

// TestHistogramConcurrentObserveEncode hammers a registry histogram
// with concurrent Observe while other goroutines snapshot and encode,
// under -race in CI.
func TestHistogramConcurrentObserveEncode(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`rat_stage_seconds{stage="kernel"}`, []float64{0.001, 0.01, 0.1, 1})
	const (
		writers = 8
		perW    = 2000
	)
	stop := make(chan struct{})
	var encoders sync.WaitGroup
	for e := 0; e < 2; e++ {
		encoders.Add(1)
		go func() {
			defer encoders.Done()
			for {
				select {
				case <-stop:
					return
				default:
					var sb strings.Builder
					if err := WriteProm(&sb, r.Snapshot()); err != nil {
						t.Error(err)
						return
					}
					if err := ValidateProm(sb.String()); err != nil {
						t.Errorf("mid-flight snapshot invalid: %v", err)
						return
					}
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(i%2000) / 1000)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	encoders.Wait()
	if got := h.Stats().Count; got != writers*perW {
		t.Errorf("final count = %d, want %d", got, writers*perW)
	}
}
