package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs")
	c.Inc()
	c.Add(4)
	c.Add(-10) // clamped: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("runs") != c {
		t.Error("lookup did not return the same counter")
	}
	g := r.Gauge("util")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Errorf("gauge = %g, want 0.75", got)
	}
}

func TestTimerStats(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("phase")
	tm.Observe(2 * time.Millisecond)
	tm.Observe(4 * time.Millisecond)
	tm.Observe(-time.Second) // clamped to zero
	s := tm.Stats()
	if s.Count != 3 || s.Total != 6*time.Millisecond || s.Min != 0 || s.Max != 4*time.Millisecond {
		t.Errorf("stats = %+v", s)
	}
	if s.Mean != 2*time.Millisecond {
		t.Errorf("mean = %v, want 2ms", s.Mean)
	}
	ran := false
	tm.Time(func() { ran = true })
	if !ran || tm.Stats().Count != 4 {
		t.Error("Time did not run or record")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("size", []float64{10, 1, 10}) // unsorted, duplicate
	for _, v := range []float64{0.5, 1, 5, 10, 11} {
		h.Observe(v)
	}
	s := h.Stats()
	if s.Count != 5 || s.Sum != 27.5 {
		t.Errorf("count/sum = %d/%g", s.Count, s.Sum)
	}
	want := []BucketCount{{1, 2}, {10, 2}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
	if s.Overflow != 1 {
		t.Errorf("overflow = %d, want 1", s.Overflow)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines;
// run with -race to verify the locking discipline.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, each = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(float64(i))
				r.Timer("t").Observe(time.Microsecond)
				r.Histogram("h", []float64{1, 2, 3}).Observe(float64(i % 5))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared"] != workers*each {
		t.Errorf("counter = %d, want %d", s.Counters["shared"], workers*each)
	}
	if s.Timers["t"].Count != workers*each {
		t.Errorf("timer count = %d", s.Timers["t"].Count)
	}
	if s.Histograms["h"].Count != workers*each {
		t.Errorf("histogram count = %d", s.Histograms["h"].Count)
	}
}

func TestSnapshotResetAndEncoders(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(7)
	r.Gauge("b.level").Set(1.5)
	r.Timer("c.phase").Observe(3 * time.Millisecond)
	r.Histogram("d.sizes", []float64{8, 64}).Observe(9)

	var text strings.Builder
	if err := WriteText(&text, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counter a.count", "7", "gauge   b.level", "1.5",
		"timer   c.phase", "count=1", "histo   d.sizes", "le(64)=1"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text encoding missing %q:\n%s", want, text.String())
		}
	}

	var jsonOut strings.Builder
	if err := WriteJSON(&jsonOut, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonOut.String(), `"a.count": 7`) {
		t.Errorf("json encoding:\n%s", jsonOut.String())
	}

	r.Reset()
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Timers)+len(s.Histograms) != 0 {
		t.Errorf("after Reset, snapshot = %+v", s)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() == nil || Default() != Default() {
		t.Fatal("Default must return one stable registry")
	}
}
