// Package telemetry is the repository's observability substrate: a
// lightweight, concurrency-safe metrics registry (counters, gauges,
// timers, fixed-bucket histograms) with text and JSON encoders, a
// structured JSONL event log that the simulated RC platforms emit
// transfer/compute/buffer-swap records into, and a Chrome
// trace_event-format exporter so every timeline package trace can draw
// as ASCII also opens in chrome://tracing or Perfetto.
//
// The package exists because RAT's whole argument is an accounting of
// where time goes (Eqs. 8-11, the Figure 2 overlap schedules); this
// makes that accounting machine-readable instead of only printable.
// Metric names, the event schema and the trace format are documented
// in docs/OBSERVABILITY.md.
package telemetry
