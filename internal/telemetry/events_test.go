package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// goldenEvents mirrors testdata/events.golden.jsonl.
var goldenEvents = []Event{
	{Kind: EventWrite, Iter: 0, StartPs: 0, EndPs: 25000000, Bytes: 16384},
	{Kind: EventCompute, Iter: 0, StartPs: 25000000, EndPs: 164000000, Cycles: 20850},
	{Kind: EventBufferSwap, Iter: 0, StartPs: 164000000, EndPs: 164000000, Detail: "input buffer freed"},
	{Kind: EventRead, Iter: 0, Device: 1, StartPs: 164000000, EndPs: 168000000, Bytes: 1024},
}

// TestWriterSinkGolden checks the JSONL encoding byte-for-byte against
// the checked-in golden file, then round-trips it through ReadEvents.
func TestWriterSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewWriterSink(&buf)
	for _, e := range goldenEvents {
		sink.Emit(e)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "events.golden.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(golden) {
		t.Errorf("encoding drifted from golden file:\ngot:\n%swant:\n%s", got, golden)
	}

	back, err := ReadEvents(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, goldenEvents) {
		t.Errorf("round-trip mismatch:\ngot  %+v\nwant %+v", back, goldenEvents)
	}
}

func TestReadEventsBadLine(t *testing.T) {
	_, err := ReadEvents(strings.NewReader("{\"kind\":\"write\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v", err)
	}
}

func TestWriterSinkStickyError(t *testing.T) {
	sink := NewWriterSink(failWriter{})
	for i := 0; i < 5000; i++ { // enough to overflow the buffer and hit the writer
		sink.Emit(Event{Kind: EventWrite, Iter: i})
	}
	if sink.Err() == nil {
		t.Fatal("expected a sticky write error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, os.ErrClosed }

func TestMemorySink(t *testing.T) {
	var sink MemorySink
	sink.Emit(Event{Kind: EventCompute, Iter: 3, StartPs: 10, EndPs: 30})
	if sink.Len() != 1 {
		t.Fatalf("len = %d", sink.Len())
	}
	evs := sink.Events()
	evs[0].Iter = 99 // the returned slice is a copy
	if sink.Events()[0].Iter != 3 {
		t.Error("Events() exposed the backing slice")
	}
	if d := sink.Events()[0].DurationSeconds(); d != 20e-12 {
		t.Errorf("duration = %g, want 2e-11", d)
	}
}
