package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for Snapshots.
//
// Registry metric names may carry labels inline, in the conventional
// exposition shape: `rat_requests_total{code="200",endpoint="predict"}`.
// WriteProm splits the family name from the label set, groups every
// label-set of one family under a single # HELP / # TYPE pair, and
// renders:
//
//   - counters and gauges as single samples,
//   - histograms as cumulative `_bucket{le="..."}` series (the
//     registry's buckets are per-bucket counts; the encoder makes them
//     cumulative and appends the mandatory le="+Inf" bucket) plus
//     `_sum` and `_count`,
//   - timers as summaries named `<family>_seconds` with `_sum` (in
//     seconds) and `_count`.
//
// Names are sanitized to the Prometheus grammar (runs of invalid
// characters become `_`, so legacy dotted names like `server.requests`
// export as `server_requests`).

// ContentTypeProm is the Content-Type of the exposition format.
const ContentTypeProm = "text/plain; version=0.0.4; charset=utf-8"

// promFamily is one metric family being assembled for output: a type,
// a help line, and its samples keyed by label set.
type promFamily struct {
	name    string
	typ     string
	help    string
	samples []promSample
}

// promSample is one rendered exposition line body: the text after the
// family name, e.g. `{code="200"} 17` or `_bucket{le="0.1"} 4`.
type promSample struct {
	sortKey string
	line    string
}

// splitPromName separates an inline label block from a registry metric
// name: `foo{a="b"}` -> (`foo`, `a="b"`). Names without labels return
// an empty label string.
func splitPromName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	rest := name[i+1:]
	if j := strings.LastIndexByte(rest, '}'); j >= 0 {
		rest = rest[:j]
	}
	return name[:i], rest
}

// sanitizePromName rewrites a metric or family name into the
// Prometheus name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizePromName(name string) string {
	if name == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			if b != nil {
				b = append(b, c)
			}
			continue
		}
		if b == nil {
			b = append([]byte{}, name[:i]...)
		}
		b = append(b, '_')
	}
	if b == nil {
		return name
	}
	return string(b)
}

// promFloat renders a float64 sample value, using the exposition
// spellings for the special values.
func promFloat(v float64) string {
	switch {
	case v != v:
		return "NaN"
	case v > 1e308*1.6:
		return "+Inf"
	case v < -1e308*1.6:
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// joinLabels merges a base label block with one extra label.
func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	if extra == "" {
		return base
	}
	return base + "," + extra
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format. Families and samples are emitted in sorted order so output
// is stable for tests and diffing.
func WriteProm(w io.Writer, s Snapshot) error {
	families := map[string]*promFamily{}
	get := func(name, typ, help string) *promFamily {
		f, ok := families[name]
		if !ok {
			f = &promFamily{name: name, typ: typ, help: help}
			families[name] = f
		}
		if f.typ != typ {
			return nil // family claimed by another type; drop rather than corrupt
		}
		return f
	}

	for name, v := range s.Counters {
		fam, labels := splitPromName(name)
		fam = sanitizePromName(fam)
		f := get(fam, "counter", "Cumulative count of "+fam+" events.")
		if f == nil {
			continue
		}
		body := " " + strconv.FormatInt(v, 10)
		if labels != "" {
			body = "{" + labels + "}" + body
		}
		f.samples = append(f.samples, promSample{sortKey: labels, line: fam + body})
	}
	for name, v := range s.Gauges {
		fam, labels := splitPromName(name)
		fam = sanitizePromName(fam)
		f := get(fam, "gauge", "Current value of "+fam+".")
		if f == nil {
			continue
		}
		body := " " + promFloat(v)
		if labels != "" {
			body = "{" + labels + "}" + body
		}
		f.samples = append(f.samples, promSample{sortKey: labels, line: fam + body})
	}
	for name, t := range s.Timers {
		fam, labels := splitPromName(name)
		fam = sanitizePromName(fam)
		if !strings.HasSuffix(fam, "_seconds") {
			fam += "_seconds"
		}
		f := get(fam, "summary", "Duration summary of "+fam+".")
		if f == nil {
			continue
		}
		lb := ""
		if labels != "" {
			lb = "{" + labels + "}"
		}
		f.samples = append(f.samples,
			promSample{sortKey: labels + "\x00sum", line: fam + "_sum" + lb + " " + promFloat(t.Total.Seconds())},
			promSample{sortKey: labels + "\x00count", line: fam + "_count" + lb + " " + strconv.FormatInt(t.Count, 10)},
		)
	}
	for name, h := range s.Histograms {
		fam, labels := splitPromName(name)
		fam = sanitizePromName(fam)
		f := get(fam, "histogram", "Distribution of "+fam+".")
		if f == nil {
			continue
		}
		var cum int64
		for i, b := range h.Buckets {
			cum += b.Count
			le := joinLabels(labels, `le="`+promFloat(b.UpperBound)+`"`)
			f.samples = append(f.samples, promSample{
				sortKey: labels + "\x00" + fmt.Sprintf("%06d", i),
				line:    fam + `_bucket{` + le + `} ` + strconv.FormatInt(cum, 10),
			})
		}
		// The spec's mandatory +Inf bucket: everything, including
		// observations past the last finite bound.
		inf := joinLabels(labels, `le="+Inf"`)
		f.samples = append(f.samples,
			promSample{
				sortKey: labels + "\x00" + fmt.Sprintf("%06d", len(h.Buckets)),
				line:    fam + `_bucket{` + inf + `} ` + strconv.FormatInt(h.Count, 10),
			})
		lb := ""
		if labels != "" {
			lb = "{" + labels + "}"
		}
		f.samples = append(f.samples,
			promSample{sortKey: labels + "\x00\xffsum", line: fam + "_sum" + lb + " " + promFloat(h.Sum)},
			promSample{sortKey: labels + "\x00\xffcount", line: fam + "_count" + lb + " " + strconv.FormatInt(h.Count, 10)},
		)
	}

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := families[n]
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].sortKey < f.samples[j].sortKey })
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, smp := range f.samples {
			if _, err := io.WriteString(w, smp.line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}
