package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta; negative deltas are clamped to zero so the counter
// stays monotone (use a Gauge for values that go down).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta (negative to decrease), lock-free via
// compare-and-swap so concurrent adders never lose updates.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (zero before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Timer accumulates wall-clock durations.
type Timer struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe records one duration; negative durations count as zero.
func (t *Timer) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.count++
	t.total += d
}

// Time runs fn and observes its wall-clock duration.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.Observe(time.Since(start))
}

// Stats returns the timer's aggregates.
func (t *Timer) Stats() TimerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TimerStats{Count: t.count, Total: t.total, Min: t.min, Max: t.max}
	if t.count > 0 {
		s.Mean = t.total / time.Duration(t.count)
	}
	return s
}

// TimerStats is a point-in-time summary of a Timer.
type TimerStats struct {
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	Mean  time.Duration `json:"mean_ns"`
}

// Histogram counts float64 observations into fixed buckets. Bounds are
// the inclusive upper edges of each bucket; observations above the
// last bound land in the overflow count.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	over   int64
	sum    float64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.n++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.over++
}

// Stats returns the histogram's current contents.
func (h *Histogram) Stats() HistogramStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramStats{Count: h.n, Sum: h.sum, Overflow: h.over}
	s.Buckets = make([]BucketCount, len(h.bounds))
	for i, b := range h.bounds {
		s.Buckets[i] = BucketCount{UpperBound: b, Count: h.counts[i]}
	}
	return s
}

// BucketCount is one histogram bucket: observations <= UpperBound
// (and above the previous bound).
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistogramStats is a point-in-time summary of a Histogram.
type HistogramStats struct {
	Count    int64         `json:"count"`
	Sum      float64       `json:"sum"`
	Buckets  []BucketCount `json:"buckets"`
	Overflow int64         `json:"overflow"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket containing the target rank, the
// standard Prometheus histogram_quantile estimate. An empty histogram
// returns 0; out-of-range q is clamped; ranks landing in the overflow
// bucket return the last finite bound (the estimate cannot exceed it).
func (h HistogramStats) Quantile(q float64) float64 {
	if h.Count <= 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	var cum float64
	lower := 0.0
	for _, b := range h.Buckets {
		next := cum + float64(b.Count)
		if next >= target && b.Count > 0 {
			frac := (target - cum) / float64(b.Count)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(b.UpperBound-lower)
		}
		cum = next
		lower = b.UpperBound
	}
	return h.Buckets[len(h.Buckets)-1].UpperBound
}

// Registry holds named metrics. All methods are safe for concurrent
// use; metric handles returned by the lookup methods are themselves
// concurrency-safe and may be cached by callers.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		timers:     map[string]*Timer{},
		histograms: map[string]*Histogram{},
	}
}

// std is the process-wide default registry, used by code (the harness
// MD-dataset cache) with no natural place to thread a registry through.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket upper bounds (sorted ascending; duplicates
// removed). Bounds passed on later lookups of an existing name are
// ignored.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		uniq := bs[:0]
		for i, b := range bs {
			if i == 0 || b != bs[i-1] {
				uniq = append(uniq, b)
			}
		}
		h = &Histogram{bounds: uniq, counts: make([]int64, len(uniq))}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a consistent point-in-time copy of a registry's
// contents, suitable for encoding. Map keys are metric names.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Timers     map[string]TimerStats     `json:"timers,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Timers:     make(map[string]TimerStats, len(r.timers)),
		Histograms: make(map[string]HistogramStats, len(r.histograms)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, t := range r.timers {
		s.Timers[n] = t.Stats()
	}
	for n, h := range r.histograms {
		s.Histograms[n] = h.Stats()
	}
	return s
}

// Reset drops every registered metric. Handles returned before the
// reset keep working but are no longer reachable from the registry.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.timers = map[string]*Timer{}
	r.histograms = map[string]*Histogram{}
}
