package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateProm checks that data is well-formed Prometheus text
// exposition (version 0.0.4): every line parses, each family has at
// most one # TYPE with a legal type, a family's lines are contiguous
// (no interleaving and no duplicate families), no sample repeats a
// (name, label set) pair, and every histogram family has monotone
// cumulative `le` buckets ending in a mandatory le="+Inf" bucket that
// agrees with the family's `_count`. It is the repo's scrape-side
// conformance oracle: if this passes, a real Prometheus server's
// parser will too.
func ValidateProm(data string) error {
	families := map[string]*promFamState{}
	get := func(name string) *promFamState {
		f, ok := families[name]
		if !ok {
			f = &promFamState{
				seen:     map[string]bool{},
				buckets:  map[string][]bucketSample{},
				counts:   map[string]float64{},
				hasCount: map[string]bool{},
			}
			families[name] = f
		}
		return f
	}
	current := ""

	lines := strings.Split(data, "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				if !validPromName(fields[2]) {
					return fmt.Errorf("line %d: HELP for invalid metric name %q", lineNo, fields[2])
				}
			case "TYPE":
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line", lineNo)
				}
				name, typ := fields[2], fields[3]
				if !validPromName(name) {
					return fmt.Errorf("line %d: TYPE for invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				f := get(name)
				if f.typ != "" {
					return fmt.Errorf("line %d: duplicate TYPE for family %q", lineNo, name)
				}
				if f.closed || len(f.seen) > 0 {
					return fmt.Errorf("line %d: TYPE for family %q after its samples", lineNo, name)
				}
				f.typ = typ
			}
			continue
		}

		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam, suffix := promFamilyOf(name, families)
		f := get(fam)
		if f.closed {
			return fmt.Errorf("line %d: family %q reappears after other families (interleaved or duplicated)", lineNo, fam)
		}
		if current != "" && current != fam {
			if prev := families[current]; prev != nil {
				prev.closed = true
			}
		}
		current = fam

		key := name + "{" + canonicalLabels(labels) + "}"
		if f.seen[key] {
			return fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		f.seen[key] = true

		if f.typ == "histogram" {
			group := canonicalLabels(withoutLabel(labels, "le"))
			switch suffix {
			case "_bucket":
				le, ok := labelValue(labels, "le")
				if !ok {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				bound, perr := parsePromFloat(le)
				if perr != nil {
					return fmt.Errorf("line %d: bad le value %q", lineNo, le)
				}
				f.buckets[group] = append(f.buckets[group], bucketSample{bound, value})
			case "_count":
				f.counts[group] = value
				f.hasCount[group] = true
			case "_sum":
			case "":
				return fmt.Errorf("line %d: bare sample %q in histogram family", lineNo, name)
			}
		}
	}

	// Cross-line histogram checks.
	famNames := make([]string, 0, len(families))
	for n := range families {
		famNames = append(famNames, n)
	}
	sort.Strings(famNames)
	for _, n := range famNames {
		f := families[n]
		if f.typ != "histogram" {
			continue
		}
		for group, bs := range f.buckets {
			for i := 1; i < len(bs); i++ {
				if bs[i].le <= bs[i-1].le {
					return fmt.Errorf("family %q{%s}: le buckets not strictly increasing (%g after %g)", n, group, bs[i].le, bs[i-1].le)
				}
				if bs[i].cum < bs[i-1].cum {
					return fmt.Errorf("family %q{%s}: cumulative bucket counts decrease (%g < %g at le=%g)", n, group, bs[i].cum, bs[i-1].cum, bs[i].le)
				}
			}
			last := bs[len(bs)-1]
			if !math.IsInf(last.le, 1) {
				return fmt.Errorf("family %q{%s}: missing le=\"+Inf\" bucket", n, group)
			}
			if f.hasCount[group] && f.counts[group] != last.cum {
				return fmt.Errorf("family %q{%s}: _count %g != +Inf bucket %g", n, group, f.counts[group], last.cum)
			}
		}
	}
	return nil
}

type bucketSample struct {
	le  float64
	cum float64
}

// promFamState tracks one family's validation state while scanning.
type promFamState struct {
	typ      string
	closed   bool // a different family's samples have appeared since
	seen     map[string]bool
	buckets  map[string][]bucketSample // histogram: label-set (minus le) -> buckets
	counts   map[string]float64        // histogram: label-set -> _count value
	hasCount map[string]bool
}

// promFamilyOf strips the histogram/summary sample suffix when the
// base name is a known family, so `x_bucket` groups under `x`.
func promFamilyOf(name string, families map[string]*promFamState) (string, string) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if _, ok := families[base]; ok {
				return base, suffix
			}
		}
	}
	return name, ""
}

// parsePromSample splits one exposition sample line into metric name,
// label pairs, and value. Timestamps (a trailing integer) are accepted
// and ignored.
func parsePromSample(line string) (name string, labels [][2]string, value float64, err error) {
	i := 0
	for i < len(line) && isPromNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return "", nil, 0, fmt.Errorf("sample does not start with a metric name: %q", line)
	}
	name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote, escaped := false, false
		for j := 1; j < len(rest); j++ {
			c := rest[j]
			if escaped {
				escaped = false
				continue
			}
			switch {
			case inQuote && c == '\\':
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case !inQuote && c == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label block: %q", line)
		}
		labels, err = parsePromLabels(rest[1:end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("expected value [timestamp] after name, got %q", rest)
	}
	value, err = parsePromFloat(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// parsePromLabels decodes `k1="v1",k2="v2"` with \\, \", and \n
// escapes in values.
func parsePromLabels(s string) ([][2]string, error) {
	var out [][2]string
	i := 0
	for i < len(s) {
		j := i
		for j < len(s) && isPromNameChar(s[j], j == i) && s[j] != ':' {
			j++
		}
		if j == i {
			return nil, fmt.Errorf("empty label name in %q", s)
		}
		key := s[i:j]
		if j >= len(s) || s[j] != '=' {
			return nil, fmt.Errorf("label %q missing '='", key)
		}
		j++
		if j >= len(s) || s[j] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", key)
		}
		j++
		var val strings.Builder
		closed := false
		for j < len(s) {
			c := s[j]
			if c == '\\' {
				if j+1 >= len(s) {
					return nil, fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[j+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", s[j+1], key)
				}
				j += 2
				continue
			}
			if c == '"' {
				closed = true
				j++
				break
			}
			val.WriteByte(c)
			j++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %q", key)
		}
		out = append(out, [2]string{key, val.String()})
		if j < len(s) {
			if s[j] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s[j:])
			}
			j++
		}
		i = j
	}
	return out, nil
}

func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func isPromNameChar(c byte, first bool) bool {
	if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isPromNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func canonicalLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, kv := range labels {
		parts[i] = kv[0] + "=" + strconv.Quote(kv[1])
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func labelValue(labels [][2]string, key string) (string, bool) {
	for _, kv := range labels {
		if kv[0] == key {
			return kv[1], true
		}
	}
	return "", false
}

func withoutLabel(labels [][2]string, key string) [][2]string {
	out := make([][2]string, 0, len(labels))
	for _, kv := range labels {
		if kv[0] != key {
			out = append(out, kv)
		}
	}
	return out
}
