package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/chrec/rat/internal/sim"
	"github.com/chrec/rat/internal/trace"
)

// TestWriteChromeTrace exports a small schedule and validates it by
// re-parsing with encoding/json, checking the trace_event invariants
// a viewer relies on.
func TestWriteChromeTrace(t *testing.T) {
	spans := []trace.Span{
		{Kind: trace.Write, Iter: 0, Start: 0, End: 2 * sim.Microsecond},
		{Kind: trace.Compute, Iter: 0, Start: 2 * sim.Microsecond, End: 10 * sim.Microsecond},
		{Kind: trace.Fault, Iter: 0, Start: 10 * sim.Microsecond, End: 12 * sim.Microsecond},
		{Kind: trace.Read, Iter: 0, Start: 12 * sim.Microsecond, End: 13 * sim.Microsecond},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}

	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}

	var complete, meta int
	var durUs float64
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			durUs += e.Dur
			if e.Pid != 1 || (e.Tid != commLane && e.Tid != compLane && e.Tid != faultLane) {
				t.Errorf("event %q on pid/tid %d/%d", e.Name, e.Pid, e.Tid)
			}
			if e.Cat == "compute" && e.Tid != compLane {
				t.Errorf("compute span %q not on the compute lane", e.Name)
			}
			if e.Cat == "fault" && e.Tid != faultLane {
				t.Errorf("fault span %q not on the fault lane", e.Name)
			}
			if e.Ts < 0 || e.Dur < 0 {
				t.Errorf("event %q has negative ts/dur", e.Name)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if meta != 4 || complete != len(spans) {
		t.Errorf("meta/complete = %d/%d, want 4/%d", meta, complete, len(spans))
	}
	if want := 13.0; durUs != want {
		t.Errorf("summed dur = %g us, want %g", durUs, want)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var anyJSON map[string]any
	if err := json.Unmarshal(buf.Bytes(), &anyJSON); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
}
