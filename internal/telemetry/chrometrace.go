package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/chrec/rat/internal/trace"
)

// Chrome trace_event export: the JSON object format understood by
// chrome://tracing and Perfetto (ui.perfetto.dev). Spans map to
// complete ("ph":"X") events with microsecond timestamps; the two
// Gantt lanes of the ASCII chart become two named threads of one
// process, so the browser view matches the paper's Figure 2 layout.

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeMeta is a metadata record naming a process or thread.
type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// chromeTraceFile is the top-level object format.
type chromeTraceFile struct {
	TraceEvents     []any  `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// Lane (thread) ids in the exported trace.
const (
	commLane  = 1 // write + read transfers
	compLane  = 2 // kernel execution
	faultLane = 3 // injected-fault lost time (wasted attempts, stalls, failover)
)

// WriteChromeTrace exports spans as a Chrome trace_event JSON file.
// Pass trace.(*Recorder).Spans(); the empty slice exports a valid,
// empty trace.
func WriteChromeTrace(w io.Writer, spans []trace.Span) error {
	events := make([]any, 0, len(spans)+3)
	events = append(events,
		chromeMeta{Name: "process_name", Ph: "M", Pid: 1,
			Args: map[string]any{"name": "rcsim"}},
		chromeMeta{Name: "thread_name", Ph: "M", Pid: 1, Tid: commLane,
			Args: map[string]any{"name": "Comm (write/read)"}},
		chromeMeta{Name: "thread_name", Ph: "M", Pid: 1, Tid: compLane,
			Args: map[string]any{"name": "Comp (kernel)"}},
		chromeMeta{Name: "thread_name", Ph: "M", Pid: 1, Tid: faultLane,
			Args: map[string]any{"name": "Faults (injected)"}},
	)
	for _, s := range spans {
		tid := commLane
		switch s.Kind {
		case trace.Compute:
			tid = compLane
		case trace.Fault:
			tid = faultLane
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("%s %d", s.Kind, s.Iter+1),
			Cat:  s.Kind.String(),
			Ph:   "X",
			Ts:   float64(s.Start) / 1e6, // ps -> us
			Dur:  float64(s.Duration()) / 1e6,
			Pid:  1,
			Tid:  tid,
			Args: map[string]any{"iter": s.Iter, "start_ps": int64(s.Start), "end_ps": int64(s.End)},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTraceFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}
