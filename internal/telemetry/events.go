package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Event kinds emitted by the simulated RC platforms. The set mirrors
// the span kinds of package trace plus the buffer-management markers
// the analytic model never sees.
const (
	EventWrite      = "write"       // host -> FPGA input transfer
	EventRead       = "read"        // FPGA -> host result transfer
	EventCompute    = "compute"     // kernel execution
	EventBufferSwap = "buffer-swap" // double buffering freed an input buffer
	EventFault      = "fault"       // an injected fault wasted the spanned time
	EventRetry      = "retry"       // recovery retry; the span is the backoff wait
	EventFailover   = "failover"    // node dropout rerouted to a surviving device
)

// Event is one structured record of simulated activity. Times are
// integer picoseconds of simulated time (the engine's native unit), so
// event logs are exact: summing (EndPs - StartPs) over a serial
// schedule reproduces the run's total to the picosecond.
type Event struct {
	Kind    string `json:"kind"`
	Iter    int    `json:"iter"`
	Device  int    `json:"device,omitempty"`
	StartPs int64  `json:"start_ps"`
	EndPs   int64  `json:"end_ps"`
	Bytes   int64  `json:"bytes,omitempty"`
	Cycles  int64  `json:"cycles,omitempty"`
	Detail  string `json:"detail,omitempty"`
	// Attempt is the 1-based attempt number on fault and retry
	// events (zero on first-try successes, and omitted).
	Attempt int `json:"attempt,omitempty"`
}

// DurationSeconds returns the event's span length in seconds.
func (e Event) DurationSeconds() float64 {
	return float64(e.EndPs-e.StartPs) / 1e12
}

// EventSink receives simulation events. Implementations must be safe
// for use from a single simulation goroutine; WriterSink and
// MemorySink are additionally safe for concurrent emitters.
type EventSink interface {
	Emit(Event)
}

// WriterSink encodes each event as one JSON line (JSONL). Encoding
// errors are sticky: the first is kept and later emits become no-ops,
// so the simulation never fails mid-run on a full disk — check Err
// after the run.
type WriterSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewWriterSink wraps w in a buffered JSONL encoder. Call Flush (or
// check Err, which flushes) before closing the underlying writer.
func NewWriterSink(w io.Writer) *WriterSink {
	bw := bufio.NewWriter(w)
	return &WriterSink{w: bw, enc: json.NewEncoder(bw)}
}

// Emit implements EventSink.
func (s *WriterSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Flush writes buffered lines through to the underlying writer.
func (s *WriterSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Err flushes and returns the first error encountered, if any.
func (s *WriterSink) Err() error { return s.Flush() }

// MemorySink accumulates events in memory, for tests and for building
// registries or traces after a run.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements EventSink.
func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
}

// Events returns a copy of everything emitted so far.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Len returns the number of events emitted so far.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// ReadEvents decodes a JSONL event log, the inverse of WriterSink.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); errors.Is(err, io.EOF) {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("telemetry: event log line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}
