package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteText renders a snapshot as a stable, human-readable listing:
// one metric per line, grouped by type, names sorted.
func WriteText(w io.Writer, s Snapshot) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %-40s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge   %-40s %g\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Timers) {
		t := s.Timers[name]
		if _, err := fmt.Fprintf(w, "timer   %-40s count=%d total=%v mean=%v min=%v max=%v\n",
			name, t.Count, t.Total, t.Mean, t.Min, t.Max); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "histo   %-40s count=%d sum=%g", name, h.Count, h.Sum); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, " le(%g)=%d", b.UpperBound, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, " over=%d\n", h.Overflow); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders a snapshot as indented JSON.
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
