package explore

import "sort"

// Pareto-frontier extraction over the three-way trade-off the paper's
// design-space discussion turns on: predicted speedup (up), computation
// utilization (up — idle compute is wasted fabric), and device count
// (down — hardware is the cost axis). A candidate is on the frontier
// when no other feasible candidate is at least as good on all three
// axes and strictly better on one. Candidates with identical objective
// vectors are all kept, so the frontier is a pure function of the
// feasible set and independent of evaluation order.

// dominates reports whether a dominates b: no worse on every axis,
// strictly better on at least one.
func dominates(a, b *Candidate) bool {
	if a.Speedup < b.Speedup || a.UtilComp < b.UtilComp || a.Devices > b.Devices {
		return false
	}
	return a.Speedup > b.Speedup || a.UtilComp > b.UtilComp || a.Devices < b.Devices
}

// insertFrontier folds c into a running frontier: drop c if dominated,
// otherwise evict everything c dominates and keep it. The front stays
// small in practice (it is bounded by the number of distinct
// non-dominated objective vectors), so the quadratic worst case is
// irrelevant next to the grid evaluation.
func insertFrontier(front []Candidate, c *Candidate) []Candidate {
	w := 0
	for i := range front {
		if dominates(&front[i], c) {
			return front // c is dominated; front unchanged
		}
		if !dominates(c, &front[i]) {
			front[w] = front[i]
			w++
		}
	}
	return append(front[:w], *c)
}

// mergeFrontiers combines per-worker frontiers into the global one.
// Each worker's front is non-dominated within its own candidates; one
// more pass against the union removes cross-worker dominations. The
// result is sorted by candidate index, which makes it independent of
// worker count and shard order.
func mergeFrontiers(states []workerState) []Candidate {
	var all []Candidate
	for i := range states {
		all = append(all, states[i].front...)
	}
	return Frontier(all)
}

// Frontier returns the Pareto-optimal subset of cands on the
// (speedup, computation utilization, device count) trade-off, sorted
// by candidate index. The input is not modified.
func Frontier(cands []Candidate) []Candidate {
	var front []Candidate
	for i := range cands {
		front = insertFrontier(front, &cands[i])
	}
	sort.Slice(front, func(i, j int) bool { return front[i].Index < front[j].Index })
	return front
}
