// Package explore is the design-space exploration engine of the RAT
// reproduction: it evaluates grids of millions of candidate worksheets
// (clock x throughput_proc x alpha x block size x device count x
// buffering) through the throughput test's batch kernel, in parallel
// across a sharded worker pool, streaming the results into a top-K
// selection and a Pareto frontier so the full grid never materializes
// in memory.
//
// The engine is deterministic: for a given grid, objective and
// constraints, the returned top-K ordering and frontier are identical
// for any worker count, because every candidate has a stable index and
// all comparisons fall back to that index. Per-candidate numbers are
// bit-for-bit the values core.Predict (one device) or core.PredictMulti
// (several) would return for the materialized worksheet.
package explore

import (
	"fmt"
	"math"

	"github.com/chrec/rat/internal/core"
)

// Grid describes a Cartesian design space around a base worksheet.
// Empty axes keep the base value, so the zero grid evaluates exactly
// one candidate: the base itself.
type Grid struct {
	// Base is the worksheet every candidate starts from. It must
	// validate; axis values replace its fields per candidate.
	Base core.Parameters

	// Clocks are FPGA clock frequencies in Hz (core.MHz helps).
	Clocks []float64
	// ThroughputProcs are sustained ops/cycle values.
	ThroughputProcs []float64
	// Alphas are sustained interconnect fractions in (0, 1], applied
	// to both directions (the single-knob form of the paper's
	// per-direction alphas; leave empty to keep the base's pair).
	Alphas []float64
	// BlockSizes are ElementsIn values. The output block and the
	// iteration count rescale with each block size so the total
	// problem (ElementsIn x Iterations and the software baseline)
	// stays constant: iterations = ceil(total/elements).
	BlockSizes []int64
	// Devices are FPGA counts evaluated through the multi-FPGA
	// extension; empty means single-device.
	Devices []int
	// Topology is the multi-FPGA interconnect arrangement used for
	// device counts above one.
	Topology core.Topology
	// Bufferings are the overlap disciplines to evaluate; empty
	// means both single- and double-buffered.
	Bufferings []core.Buffering
}

// maxGridSize bounds a grid's candidate count. The engine streams, so
// the bound protects against runaway axis products (and index
// overflow), not memory.
const maxGridSize = 1 << 40

// blockAxis is one precompiled block-size point.
type blockAxis struct {
	elemsIn, elemsOut, iters int64
	bytesIn, bytesOut        float64
	opsCoeff                 float64 // float64(elemsIn) * OpsPerElement, the Eq. 4 numerator
}

// alphaAxis is one precompiled interconnect-efficiency point.
type alphaAxis struct {
	write, read float64
}

// compiled is the normalized, validated form of a Grid: every axis
// non-empty, every derived sub-term precomputed. It is built once per
// Run and shared read-only by all workers — the "validate once per
// grid" half of the batch contract.
type compiled struct {
	base   core.Parameters
	blocks []blockAxis
	alphas []alphaAxis
	devs   []int
	bufs   []core.Buffering
	clocks []float64
	tps    []float64
	topo   core.Topology

	// Memoized per-candidate sub-terms, invariant across the two
	// innermost axes: t_write/t_read split by (block, alpha) and the
	// Eq. 4 denominator by (clock, throughput_proc).
	tWrite []float64 // [block][alpha], flattened
	tRead  []float64 // [block][alpha], flattened
	denom  []float64 // [clock][tp], flattened: ClockHz * ThroughputProc

	size uint64
}

// errGrid builds a grid-validation error wrapping ErrInvalidParameters.
func errGrid(format string, args ...any) error {
	return fmt.Errorf("%w: explore grid: %s", core.ErrInvalidParameters, fmt.Sprintf(format, args...))
}

// checkAxis rejects NaN/Inf and duplicate axis values, mirroring the
// sweep-value rules of core.Sweep.
func checkAxis(name string, values []float64) error {
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errGrid("%s[%d] must be finite (got %v)", name, i, v)
		}
		for j := 0; j < i; j++ {
			if values[j] == v {
				return errGrid("%s has duplicate value %v", name, v)
			}
		}
	}
	return nil
}

// compile validates the grid once and precomputes every invariant
// sub-term of the candidate evaluation.
func (g Grid) compile() (*compiled, error) {
	if err := g.Base.Validate(); err != nil {
		return nil, fmt.Errorf("explore grid base: %w", err)
	}
	if err := checkAxis("Clocks", g.Clocks); err != nil {
		return nil, err
	}
	for i, v := range g.Clocks {
		if !(v > 0) {
			return nil, errGrid("Clocks[%d] must be positive (got %v)", i, v)
		}
	}
	if err := checkAxis("ThroughputProcs", g.ThroughputProcs); err != nil {
		return nil, err
	}
	for i, v := range g.ThroughputProcs {
		if !(v > 0) {
			return nil, errGrid("ThroughputProcs[%d] must be positive (got %v)", i, v)
		}
	}
	if err := checkAxis("Alphas", g.Alphas); err != nil {
		return nil, err
	}
	for i, v := range g.Alphas {
		if !(v > 0) || v > 1 {
			return nil, errGrid("Alphas[%d] must be in (0, 1] (got %v)", i, v)
		}
	}
	for i, v := range g.BlockSizes {
		if v <= 0 {
			return nil, errGrid("BlockSizes[%d] must be positive (got %d)", i, v)
		}
		for j := 0; j < i; j++ {
			if g.BlockSizes[j] == v {
				return nil, errGrid("BlockSizes has duplicate value %d", v)
			}
		}
	}
	for i, v := range g.Devices {
		if v < 1 {
			return nil, errGrid("Devices[%d] must be >= 1 (got %d)", i, v)
		}
		for j := 0; j < i; j++ {
			if g.Devices[j] == v {
				return nil, errGrid("Devices has duplicate value %d", v)
			}
		}
	}
	if g.Topology != core.SharedChannel && g.Topology != core.IndependentChannels {
		return nil, errGrid("unknown topology %v", g.Topology)
	}
	for i, b := range g.Bufferings {
		if b != core.SingleBuffered && b != core.DoubleBuffered {
			return nil, errGrid("Bufferings[%d] is unknown discipline %v", i, b)
		}
		for j := 0; j < i; j++ {
			if g.Bufferings[j] == b {
				return nil, errGrid("Bufferings has duplicate discipline %v", b)
			}
		}
	}

	c := &compiled{base: g.Base, topo: g.Topology}

	// Normalize axes: an empty axis is the base value alone.
	c.clocks = g.Clocks
	if len(c.clocks) == 0 {
		c.clocks = []float64{g.Base.Comp.ClockHz}
	}
	c.tps = g.ThroughputProcs
	if len(c.tps) == 0 {
		c.tps = []float64{g.Base.Comp.ThroughputProc}
	}
	c.alphas = make([]alphaAxis, 0, len(g.Alphas)+1)
	if len(g.Alphas) == 0 {
		c.alphas = append(c.alphas, alphaAxis{write: g.Base.Comm.AlphaWrite, read: g.Base.Comm.AlphaRead})
	}
	for _, a := range g.Alphas {
		c.alphas = append(c.alphas, alphaAxis{write: a, read: a})
	}
	c.devs = g.Devices
	if len(c.devs) == 0 {
		c.devs = []int{1}
	}
	c.bufs = g.Bufferings
	if len(c.bufs) == 0 {
		c.bufs = []core.Buffering{core.SingleBuffered, core.DoubleBuffered}
	}

	// Block-size axis: rescale the iteration count so the total
	// problem is conserved, exactly as a designer resizing the
	// buffered block would (examples/sweep does this by hand).
	total := g.Base.Dataset.ElementsIn * g.Base.Soft.Iterations
	sizes := g.BlockSizes
	if len(sizes) == 0 {
		sizes = []int64{g.Base.Dataset.ElementsIn}
	}
	c.blocks = make([]blockAxis, len(sizes))
	for i, e := range sizes {
		b := blockAxis{elemsIn: e}
		b.iters = (total + e - 1) / e
		b.elemsOut = int64(math.Round(float64(g.Base.Dataset.ElementsOut) * float64(e) / float64(g.Base.Dataset.ElementsIn)))
		b.bytesIn = float64(b.elemsIn) * g.Base.Dataset.BytesPerElement
		b.bytesOut = float64(b.elemsOut) * g.Base.Dataset.BytesPerElement
		b.opsCoeff = float64(b.elemsIn) * g.Base.Comp.OpsPerElement
		c.blocks[i] = b
	}

	// Grid size, with overflow protection.
	size := uint64(1)
	for _, n := range []int{len(c.blocks), len(c.alphas), len(c.devs), len(c.bufs), len(c.clocks), len(c.tps)} {
		size *= uint64(n)
		if size > maxGridSize {
			return nil, errGrid("candidate count exceeds %d", uint64(maxGridSize))
		}
	}
	c.size = size

	// Memoized communication split: Eqs. 2-3 per (block, alpha), the
	// exact expressions core.Predict uses so the batch path stays
	// bit-for-bit comparable.
	ideal := g.Base.Comm.IdealThroughput
	c.tWrite = make([]float64, len(c.blocks)*len(c.alphas))
	c.tRead = make([]float64, len(c.blocks)*len(c.alphas))
	for bi, b := range c.blocks {
		for ai, a := range c.alphas {
			c.tWrite[bi*len(c.alphas)+ai] = b.bytesIn / (a.write * ideal)
			c.tRead[bi*len(c.alphas)+ai] = b.bytesOut / (a.read * ideal)
		}
	}
	// Memoized Eq. 4 denominator per (clock, throughput_proc).
	c.denom = make([]float64, len(c.clocks)*len(c.tps))
	for ci, hz := range c.clocks {
		for ti, tp := range c.tps {
			c.denom[ci*len(c.tps)+ti] = hz * tp
		}
	}
	return c, nil
}

// decode splits a candidate index into its axis indices. The layout is
// fixed — blocks, alphas, devices, bufferings, clocks, throughput_procs
// from outermost to innermost — so contiguous index ranges share the
// expensive outer-axis sub-terms.
func (c *compiled) decode(idx uint64) (bi, ai, di, ui, ci, ti int) {
	ti = int(idx % uint64(len(c.tps)))
	idx /= uint64(len(c.tps))
	ci = int(idx % uint64(len(c.clocks)))
	idx /= uint64(len(c.clocks))
	ui = int(idx % uint64(len(c.bufs)))
	idx /= uint64(len(c.bufs))
	di = int(idx % uint64(len(c.devs)))
	idx /= uint64(len(c.devs))
	ai = int(idx % uint64(len(c.alphas)))
	idx /= uint64(len(c.alphas))
	bi = int(idx)
	return
}

// params materializes the full worksheet of candidate idx — the
// Parameters that core.Predict / core.PredictMulti would be handed to
// reproduce the candidate's numbers scalar-wise.
func (c *compiled) params(idx uint64) (core.Parameters, core.MultiConfig, core.Buffering) {
	bi, ai, di, ui, ci, ti := c.decode(idx)
	p := c.base
	b := c.blocks[bi]
	p.Dataset.ElementsIn = b.elemsIn
	p.Dataset.ElementsOut = b.elemsOut
	p.Soft.Iterations = b.iters
	p.Comm.AlphaWrite = c.alphas[ai].write
	p.Comm.AlphaRead = c.alphas[ai].read
	p.Comp.ClockHz = c.clocks[ci]
	p.Comp.ThroughputProc = c.tps[ti]
	return p, core.MultiConfig{Devices: c.devs[di], Topology: c.topo}, c.bufs[ui]
}

// Validate reports whether the grid can be explored.
func (g Grid) Validate() error {
	_, err := g.compile()
	return err
}

// Size returns the candidate count of the grid, or 0 when the grid is
// invalid.
func (g Grid) Size() uint64 {
	c, err := g.compile()
	if err != nil {
		return 0
	}
	return c.size
}

// At materializes candidate i of the grid: the full worksheet, the
// multi-FPGA configuration and the buffering discipline. Feeding the
// returned values to core.Predict (one device) or core.PredictMulti
// reproduces the engine's numbers bit for bit.
func (g Grid) At(i uint64) (core.Parameters, core.MultiConfig, core.Buffering, error) {
	c, err := g.compile()
	if err != nil {
		return core.Parameters{}, core.MultiConfig{}, 0, err
	}
	if i >= c.size {
		return core.Parameters{}, core.MultiConfig{}, 0,
			errGrid("candidate index %d out of range (grid size %d)", i, c.size)
	}
	p, mc, b := c.params(i)
	return p, mc, b, nil
}
