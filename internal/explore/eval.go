package explore

import "sort"

// EvalIndices evaluates exactly the given candidate indices through
// the same memoized arithmetic as Run and returns the candidates that
// satisfy cons, sorted by index. Duplicate indices are evaluated once.
//
// It exists for the distributed merge (internal/cluster): shard
// results travel across the wire as candidate indices, and the
// coordinator re-derives every candidate's exact numbers locally —
// so lossy wire renderings (clocks travel in MHz, a division whose
// last bit need not survive the round trip) can never perturb a
// merge. Each index runs through evalShard over the one-element range
// [idx, idx+1), which is bit-for-bit the whole-grid evaluation of
// that candidate.
func EvalIndices(g Grid, cons Constraints, indices []uint64) ([]Candidate, error) {
	c, err := g.compile()
	if err != nil {
		return nil, err
	}
	sorted := append([]uint64(nil), indices...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]Candidate, 0, len(sorted))
	var prev uint64
	seen := false
	for _, idx := range sorted {
		if seen && idx == prev {
			continue
		}
		prev, seen = idx, true
		if idx >= c.size {
			return nil, errGrid("candidate index %d out of range (grid size %d)", idx, c.size)
		}
		var st workerState
		st.top.init(1, MaxSpeedup)
		st.evalShard(c, cons, idx, idx+1)
		if len(st.top.items) == 1 {
			out = append(out, st.top.items[0])
		}
	}
	return out, nil
}

// SelectTop returns the best k of cands under the objective's total
// order, best first; k < 0 keeps everything. The input is not
// modified. It is the ranking half of the distributed merge: the
// union of per-shard top-Ks re-ranked by the same total order
// reproduces the whole-grid top-K, because the global best k are each
// in their own shard's best k.
func SelectTop(obj Objective, k int, cands []Candidate) []Candidate {
	out := append([]Candidate(nil), cands...)
	sort.Slice(out, func(i, j int) bool { return obj.better(&out[i], &out[j]) })
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
