package explore_test

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/explore"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/telemetry"
)

// testGrid is a small six-dimensional grid around the 1-D PDF study:
// 3 clocks x 3 tp x 2 alphas x 2 blocks x 2 devices x 2 bufferings =
// 144 candidates.
func testGrid() explore.Grid {
	return explore.Grid{
		Base:            paper.PDF1DParams(),
		Clocks:          paper.ClocksHz,
		ThroughputProcs: []float64{10, 20, 40},
		Alphas:          []float64{0.16, 0.37},
		BlockSizes:      []int64{512, 2048},
		Devices:         []int{1, 4},
		Topology:        core.IndependentChannels,
	}
}

// TestGridSizeAndAt: the grid enumerates the full Cartesian product and
// At round-trips every index into a valid worksheet.
func TestGridSizeAndAt(t *testing.T) {
	g := testGrid()
	want := uint64(3 * 3 * 2 * 2 * 2 * 2)
	if got := g.Size(); got != want {
		t.Fatalf("Size() = %d, want %d", got, want)
	}
	seen := map[[8]float64]bool{}
	for i := uint64(0); i < want; i++ {
		p, mc, buf, err := g.At(i)
		if err != nil {
			t.Fatalf("At(%d): %v", i, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("At(%d) produced invalid worksheet: %v", i, err)
		}
		key := [8]float64{p.Comp.ClockHz, p.Comp.ThroughputProc, p.Comm.AlphaWrite,
			float64(p.Dataset.ElementsIn), float64(p.Soft.Iterations),
			float64(mc.Devices), float64(mc.Topology), float64(buf)}
		if seen[key] {
			t.Fatalf("At(%d) repeats a design point: %+v", i, key)
		}
		seen[key] = true
	}
	if _, _, _, err := g.At(want); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("At(size) = %v, want out-of-range error", err)
	}
}

// TestGridConservesWork: resizing the buffered block rescales the
// iteration count so the total element count is conserved (to ceiling
// granularity).
func TestGridConservesWork(t *testing.T) {
	g := explore.Grid{Base: paper.PDF1DParams(), BlockSizes: []int64{256, 512, 1024, 4096}}
	base := g.Base
	total := base.Dataset.ElementsIn * base.Soft.Iterations
	for i := uint64(0); i < g.Size(); i++ {
		p, _, _, err := g.At(i)
		if err != nil {
			t.Fatal(err)
		}
		covered := p.Dataset.ElementsIn * p.Soft.Iterations
		if covered < total || covered-total >= p.Dataset.ElementsIn {
			t.Errorf("block %d covers %d elements, want ceil to >= %d", p.Dataset.ElementsIn, covered, total)
		}
	}
}

// TestGridValidation: malformed grids are rejected with wrapped
// ErrInvalidParameters.
func TestGridValidation(t *testing.T) {
	base := paper.PDF1DParams()
	bad := base
	bad.Comp.ClockHz = 0
	cases := map[string]explore.Grid{
		"invalid base":      {Base: bad},
		"duplicate clock":   {Base: base, Clocks: []float64{1e8, 1e8}},
		"nan clock":         {Base: base, Clocks: []float64{math.NaN()}},
		"negative clock":    {Base: base, Clocks: []float64{-1}},
		"zero tp":           {Base: base, ThroughputProcs: []float64{0}},
		"alpha above 1":     {Base: base, Alphas: []float64{1.5}},
		"duplicate alpha":   {Base: base, Alphas: []float64{0.5, 0.5}},
		"zero block":        {Base: base, BlockSizes: []int64{0}},
		"duplicate block":   {Base: base, BlockSizes: []int64{64, 64}},
		"zero devices":      {Base: base, Devices: []int{0}},
		"duplicate devices": {Base: base, Devices: []int{2, 2}},
		"bad topology":      {Base: base, Topology: core.Topology(9)},
		"bad buffering":     {Base: base, Bufferings: []core.Buffering{core.Buffering(7)}},
		"duplicate buffering": {Base: base,
			Bufferings: []core.Buffering{core.SingleBuffered, core.SingleBuffered}},
	}
	for name, g := range cases {
		if err := g.Validate(); !errors.Is(err, core.ErrInvalidParameters) {
			t.Errorf("%s: Validate() = %v, want wrapped ErrInvalidParameters", name, err)
		}
		if g.Size() != 0 {
			t.Errorf("%s: Size() = %d on invalid grid, want 0", name, g.Size())
		}
		if _, err := explore.Run(g, explore.Options{Workers: 1}); !errors.Is(err, core.ErrInvalidParameters) {
			t.Errorf("%s: Run() = %v, want wrapped ErrInvalidParameters", name, err)
		}
	}
}

// TestExploreMatchesScalarPredict: every candidate's numbers are
// bit-for-bit the scalar core.Predict / core.PredictMulti results for
// the worksheet Grid.At materializes — across all three paper case
// studies.
func TestExploreMatchesScalarPredict(t *testing.T) {
	for _, cs := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		g := testGrid()
		g.Base = paper.Params(cs)
		res, err := explore.Run(g, explore.Options{Workers: 2, TopK: int(g.Size())})
		if err != nil {
			t.Fatal(err)
		}
		if res.Evaluated != g.Size() || uint64(len(res.Top)) != g.Size() {
			t.Fatalf("%s: evaluated %d, kept %d, want %d", cs, res.Evaluated, len(res.Top), g.Size())
		}
		for _, c := range res.Top {
			p, mc, buf, err := g.At(c.Index)
			if err != nil {
				t.Fatal(err)
			}
			mp, err := core.PredictMulti(p, mc)
			if err != nil {
				t.Fatal(err)
			}
			wantTRC, wantSp := mp.TRCSingle, mp.SpeedupSingle
			if buf == core.DoubleBuffered {
				wantTRC, wantSp = mp.TRCDouble, mp.SpeedupDouble
			}
			if c.TComm != mp.TComm || c.TComp != mp.TComp || c.TRC != wantTRC || c.Speedup != wantSp {
				t.Errorf("%s candidate %d: engine (%v %v %v %v) != scalar (%v %v %v %v)",
					cs, c.Index, c.TComm, c.TComp, c.TRC, c.Speedup,
					mp.TComm, mp.TComp, wantTRC, wantSp)
			}
			if mc.Devices == 1 {
				pr := core.MustPredict(p)
				wantUC, wantUM := pr.UtilComp(buf), pr.UtilComm(buf)
				if c.UtilComp != wantUC || c.UtilComm != wantUM {
					t.Errorf("%s candidate %d: utils (%v %v) != scalar (%v %v)",
						cs, c.Index, c.UtilComp, c.UtilComm, wantUC, wantUM)
				}
			}
		}
	}
}

// TestExploreDeterministicAcrossWorkers: the full Result — top-K order,
// frontier, counts — is identical for 1, 2, 3, 7 and 16 workers.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	g := testGrid()
	for _, obj := range []explore.Objective{explore.MaxSpeedup, explore.MinTRC, explore.MinCost} {
		opts := explore.Options{Workers: 1, TopK: 12, Objective: obj,
			Constraints: explore.Constraints{MinSpeedup: 1}}
		want, err := explore.Run(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 7, 16} {
			opts.Workers = w
			got, err := explore.Run(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Top, want.Top) {
				t.Errorf("%v: top-K with %d workers differs from 1 worker", obj, w)
			}
			if !reflect.DeepEqual(got.Frontier, want.Frontier) {
				t.Errorf("%v: frontier with %d workers differs from 1 worker", obj, w)
			}
			if got.Evaluated != want.Evaluated || got.Feasible != want.Feasible {
				t.Errorf("%v: counts with %d workers: (%d, %d) != (%d, %d)",
					obj, w, got.Evaluated, got.Feasible, want.Evaluated, want.Feasible)
			}
		}
	}
}

// TestExploreTopKOrdering: Top is sorted best-first under the objective
// and is exactly the K global best (cross-checked against a full sort).
func TestExploreTopKOrdering(t *testing.T) {
	g := testGrid()
	full, err := explore.Run(g, explore.Options{Workers: 3, TopK: int(g.Size())})
	if err != nil {
		t.Fatal(err)
	}
	const k = 7
	res, err := explore.Run(g, explore.Options{Workers: 3, TopK: k})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top) != k {
		t.Fatalf("len(Top) = %d, want %d", len(res.Top), k)
	}
	if !reflect.DeepEqual(res.Top, full.Top[:k]) {
		t.Error("streaming top-K differs from the prefix of the full sort")
	}
	for i := 1; i < len(res.Top); i++ {
		if res.Top[i-1].Speedup < res.Top[i].Speedup {
			t.Errorf("Top[%d].Speedup %v < Top[%d].Speedup %v", i-1, res.Top[i-1].Speedup, i, res.Top[i].Speedup)
		}
	}
}

// TestExploreConstraints: infeasible candidates are excluded from the
// ranking, the frontier and the feasible count.
func TestExploreConstraints(t *testing.T) {
	g := testGrid()
	cons := explore.Constraints{MinSpeedup: 5, MaxDevices: 1, MaxUtilComm: 0.5}
	res, err := explore.Run(g, explore.Options{Workers: 2, TopK: 1000, Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible == 0 || res.Feasible >= res.Evaluated {
		t.Fatalf("Feasible = %d of %d, want a strict subset", res.Feasible, res.Evaluated)
	}
	if uint64(len(res.Top)) != res.Feasible {
		t.Errorf("len(Top) = %d, want all %d feasible", len(res.Top), res.Feasible)
	}
	for _, c := range append(append([]explore.Candidate{}, res.Top...), res.Frontier...) {
		if c.Speedup < 5 || c.Devices > 1 || c.UtilComm > 0.5 {
			t.Errorf("infeasible candidate survived: %+v", c)
		}
	}
}

// TestExploreMinCost: with a speedup floor, MinCost surfaces the
// cheapest configuration that still meets the target.
func TestExploreMinCost(t *testing.T) {
	g := testGrid()
	res, err := explore.Run(g, explore.Options{
		Workers: 2, TopK: 1,
		Objective:   explore.MinCost,
		Constraints: explore.Constraints{MinSpeedup: 7.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top) != 1 {
		t.Fatalf("no feasible candidate for the target speedup")
	}
	best := res.Top[0]
	if best.Speedup < 7.8 {
		t.Fatalf("winner misses the speedup floor: %+v", best)
	}
	// No feasible candidate may be strictly cheaper.
	full, err := explore.Run(g, explore.Options{
		Workers: 1, TopK: int(g.Size()),
		Constraints: explore.Constraints{MinSpeedup: 7.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range full.Top {
		if c.Devices < best.Devices {
			t.Errorf("cheaper feasible candidate exists: %+v", c)
		}
	}
}

// TestFrontier: every frontier member is non-dominated, every
// non-member is dominated by some member, and the standalone Frontier
// function agrees with the engine's streaming construction.
func TestFrontier(t *testing.T) {
	g := testGrid()
	res, err := explore.Run(g, explore.Options{Workers: 4, TopK: int(g.Size())})
	if err != nil {
		t.Fatal(err)
	}
	dominates := func(a, b explore.Candidate) bool {
		if a.Speedup < b.Speedup || a.UtilComp < b.UtilComp || a.Devices > b.Devices {
			return false
		}
		return a.Speedup > b.Speedup || a.UtilComp > b.UtilComp || a.Devices < b.Devices
	}
	inFront := map[uint64]bool{}
	for _, f := range res.Frontier {
		inFront[f.Index] = true
		for _, o := range res.Top {
			if dominates(o, f) {
				t.Errorf("frontier member %d is dominated by %d", f.Index, o.Index)
			}
		}
	}
	for _, c := range res.Top {
		if inFront[c.Index] {
			continue
		}
		dominated := false
		for _, f := range res.Frontier {
			if dominates(f, c) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("non-frontier candidate %d is not dominated by any frontier member", c.Index)
		}
	}
	if got := explore.Frontier(res.Top); !reflect.DeepEqual(got, res.Frontier) {
		t.Error("Frontier(all candidates) differs from the engine's streaming frontier")
	}
}

// TestExploreEmptyAxesSingleCandidate: the zero grid is the base
// worksheet under both bufferings.
func TestExploreEmptyAxesSingleCandidate(t *testing.T) {
	g := explore.Grid{Base: paper.MDParams()}
	res, err := explore.Run(g, explore.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 2 || len(res.Top) != 2 {
		t.Fatalf("zero grid evaluated %d candidates, want 2 (both bufferings)", res.Evaluated)
	}
	pr := core.MustPredict(paper.MDParams())
	for _, c := range res.Top {
		want := pr.SpeedupSingle
		if c.Buffering == core.DoubleBuffered {
			want = pr.SpeedupDouble
		}
		if c.Speedup != want {
			t.Errorf("%v speedup = %v, want %v", c.Buffering, c.Speedup, want)
		}
	}
}

// TestExploreTelemetry: the engine reports its counters and gauges.
func TestExploreTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := testGrid()
	res, err := explore.Run(g, explore.Options{Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("explore.candidates").Value(); got != int64(res.Evaluated) {
		t.Errorf("explore.candidates = %d, want %d", got, res.Evaluated)
	}
	if got := reg.Counter("explore.feasible").Value(); got != int64(res.Feasible) {
		t.Errorf("explore.feasible = %d, want %d", got, res.Feasible)
	}
	if reg.Gauge("explore.candidates_per_sec").Value() <= 0 {
		t.Error("explore.candidates_per_sec not set")
	}
	if reg.Timer("explore.shard").Stats().Count == 0 {
		t.Error("explore.shard timer never observed")
	}
}

// TestParseObjective round-trips every objective.
func TestParseObjective(t *testing.T) {
	for _, o := range []explore.Objective{explore.MaxSpeedup, explore.MinTRC, explore.MinCost} {
		got, err := explore.ParseObjective(o.String())
		if err != nil || got != o {
			t.Errorf("ParseObjective(%q) = %v, %v", o.String(), got, err)
		}
	}
	if _, err := explore.ParseObjective("fastest"); err == nil {
		t.Error("ParseObjective accepted an unknown objective")
	}
}

// TestExploreSpans: with CollectSpans on, the returned spans tile the
// candidate index space exactly — sorted by Lo, non-overlapping, with
// no gaps — and carry plausible worker and timing fields. Off by
// default, the slice stays nil so the hot path pays nothing.
func TestExploreSpans(t *testing.T) {
	g := testGrid()
	for _, workers := range []int{1, 3, 8} {
		res, err := explore.Run(g, explore.Options{Workers: workers, TopK: 4, CollectSpans: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Spans) == 0 {
			t.Fatalf("workers=%d: no spans collected", workers)
		}
		next := uint64(0)
		for i, sp := range res.Spans {
			if sp.Lo != next {
				t.Fatalf("workers=%d span %d: Lo=%d, want %d (spans must tile [0,size))", workers, i, sp.Lo, next)
			}
			if sp.Hi <= sp.Lo {
				t.Fatalf("workers=%d span %d: empty range [%d,%d)", workers, i, sp.Lo, sp.Hi)
			}
			if sp.Worker < 0 || sp.Worker >= workers {
				t.Errorf("workers=%d span %d: worker %d out of range", workers, i, sp.Worker)
			}
			if sp.Elapsed < 0 {
				t.Errorf("workers=%d span %d: negative elapsed %v", workers, i, sp.Elapsed)
			}
			next = sp.Hi
		}
		if next != g.Size() {
			t.Fatalf("workers=%d: spans end at %d, want %d", workers, next, g.Size())
		}
	}

	res, err := explore.Run(g, explore.Options{Workers: 2, TopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spans != nil {
		t.Errorf("CollectSpans off still produced %d spans", len(res.Spans))
	}
}
