package explore

import (
	"encoding/json"
	"io"
)

// JSONLCandidate is the JSONL record schema shared by every
// candidate-listing surface: `ratsim explore -jsonl`, `ratctl explore
// -jsonl` and the ratd `?stream=jsonl` candidate lines all derive
// from it, so the CI cluster-smoke job can diff distributed output
// against single-node output byte for byte.
type JSONLCandidate struct {
	Set            string  `json:"set"` // "top" or "frontier"
	Index          uint64  `json:"index"`
	ClockHz        float64 `json:"clock_hz"`
	ThroughputProc float64 `json:"throughput_proc"`
	AlphaWrite     float64 `json:"alpha_write"`
	AlphaRead      float64 `json:"alpha_read"`
	ElementsIn     int64   `json:"elements_in"`
	ElementsOut    int64   `json:"elements_out"`
	Iterations     int64   `json:"iterations"`
	Devices        int     `json:"devices"`
	Buffering      string  `json:"buffering"`
	TComm          float64 `json:"t_comm"`
	TComp          float64 `json:"t_comp"`
	TRC            float64 `json:"t_rc"`
	Speedup        float64 `json:"speedup"`
	UtilComm       float64 `json:"util_comm"`
	UtilComp       float64 `json:"util_comp"`
}

// WriteJSONL emits one JSON object per candidate, newline-terminated,
// tagged with the set name ("top" or "frontier").
func WriteJSONL(out io.Writer, set string, cands []Candidate) error {
	enc := json.NewEncoder(out)
	for _, c := range cands {
		rec := JSONLCandidate{
			Set: set, Index: c.Index, ClockHz: c.ClockHz,
			ThroughputProc: c.ThroughputProc,
			AlphaWrite:     c.AlphaWrite, AlphaRead: c.AlphaRead,
			ElementsIn: c.ElementsIn, ElementsOut: c.ElementsOut,
			Iterations: c.Iterations, Devices: c.Devices,
			Buffering: c.Buffering.String(),
			TComm:     c.TComm, TComp: c.TComp, TRC: c.TRC,
			Speedup: c.Speedup, UtilComm: c.UtilComm, UtilComp: c.UtilComp,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
