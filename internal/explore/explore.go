package explore

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/telemetry"
)

// Candidate is one evaluated design point: the axis values that define
// it plus the throughput-test numbers under its buffering discipline.
// Index is the candidate's stable position in the grid enumeration;
// Grid.At(Index) reconstructs the full worksheet.
type Candidate struct {
	Index uint64

	// Design knobs.
	ClockHz        float64
	ThroughputProc float64
	AlphaWrite     float64
	AlphaRead      float64
	ElementsIn     int64
	ElementsOut    int64
	Iterations     int64
	Devices        int
	Buffering      core.Buffering

	// Predicted numbers (per-iteration times in seconds; TRC is
	// end-to-end under the candidate's buffering discipline).
	TComm    float64
	TComp    float64
	TRC      float64
	Speedup  float64
	UtilComm float64
	UtilComp float64
}

// Objective selects what "best" means for the top-K ranking. Every
// objective is a total order (candidate index breaks ties), so the
// ranking is deterministic for any worker count.
type Objective int

const (
	// MaxSpeedup ranks by predicted speedup, descending (default).
	MaxSpeedup Objective = iota
	// MinTRC ranks by end-to-end RC execution time, ascending.
	MinTRC
	// MinCost ranks by implementation cost, ascending: fewest
	// devices, then lowest sustained ops/cycle, then lowest clock,
	// then single- before double-buffered. Combined with a
	// MinSpeedup constraint it answers "what is the cheapest
	// configuration that still meets the target?".
	MinCost
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MaxSpeedup:
		return "max-speedup"
	case MinTRC:
		return "min-trc"
	case MinCost:
		return "min-cost"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// ParseObjective converts an objective's String form back.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "max-speedup":
		return MaxSpeedup, nil
	case "min-trc":
		return MinTRC, nil
	case "min-cost":
		return MinCost, nil
	}
	return 0, fmt.Errorf("unknown objective %q (want max-speedup, min-trc or min-cost)", s)
}

// better reports whether a should rank above b under the objective.
// It is a strict total order: for a != b exactly one of better(a, b)
// and better(b, a) holds, because distinct candidates have distinct
// indices.
func (o Objective) better(a, b *Candidate) bool {
	switch o {
	case MinTRC:
		if a.TRC != b.TRC {
			return a.TRC < b.TRC
		}
	case MinCost:
		if a.Devices != b.Devices {
			return a.Devices < b.Devices
		}
		if a.ThroughputProc != b.ThroughputProc {
			return a.ThroughputProc < b.ThroughputProc
		}
		if a.ClockHz != b.ClockHz {
			return a.ClockHz < b.ClockHz
		}
		if a.Buffering != b.Buffering {
			return a.Buffering < b.Buffering
		}
	default: // MaxSpeedup
		if a.Speedup != b.Speedup {
			return a.Speedup > b.Speedup
		}
	}
	return a.Index < b.Index
}

// Constraints restrict which candidates count as feasible. Zero values
// leave a bound unset.
type Constraints struct {
	// MinSpeedup is the smallest acceptable predicted speedup.
	MinSpeedup float64
	// MaxTRC is the largest acceptable end-to-end RC time in seconds.
	MaxTRC float64
	// MaxUtilComm is the largest acceptable communication
	// utilization, for screening out interconnect-bound designs.
	MaxUtilComm float64
	// MaxDevices caps the FPGA count.
	MaxDevices int
}

// feasible reports whether c satisfies every set bound.
func (cs Constraints) feasible(c *Candidate) bool {
	if cs.MinSpeedup > 0 && c.Speedup < cs.MinSpeedup {
		return false
	}
	if cs.MaxTRC > 0 && c.TRC > cs.MaxTRC {
		return false
	}
	if cs.MaxUtilComm > 0 && c.UtilComm > cs.MaxUtilComm {
		return false
	}
	if cs.MaxDevices > 0 && c.Devices > cs.MaxDevices {
		return false
	}
	return true
}

// Options configure a Run.
type Options struct {
	// Workers is the worker-pool size; values below 1 use
	// runtime.NumCPU(). The result is identical for any value.
	Workers int
	// TopK is how many best candidates to keep (default 10).
	TopK int
	// Objective ranks the top-K (default MaxSpeedup).
	Objective Objective
	// Constraints filter candidates before ranking.
	Constraints Constraints
	// IndexLo and IndexHi restrict the run to candidate indices
	// [IndexLo, IndexHi) — one shard of the grid. Both zero means the
	// whole grid. Because every candidate carries its stable grid
	// index, shard results merge byte-identically with a whole-grid
	// run (internal/cluster builds on this).
	IndexLo uint64
	IndexHi uint64
	// Metrics, when non-nil, receives engine telemetry:
	// explore.candidates and explore.feasible counters, the
	// explore.shard timer, and explore.candidates_per_sec and
	// explore.topk_churn gauges.
	Metrics *telemetry.Registry
	// CollectSpans records one ShardSpan per evaluated shard into
	// Result.Spans: which index range ran on which worker and for how
	// long. Off by default — spans cost O(shards) memory and exist for
	// request tracing, not for every exploration.
	CollectSpans bool
}

// ShardSpan is one shard's timing record: the candidate index range
// [Lo, Hi) it covered, the worker that ran it, and its wall-clock
// duration. Spans expose work-stealing skew: a healthy run shows
// shards spread across workers with comparable durations.
type ShardSpan struct {
	Shard   int
	Worker  int
	Lo      uint64
	Hi      uint64
	Elapsed time.Duration
}

// Result is the outcome of exploring a grid.
type Result struct {
	// Evaluated is the evaluated candidate count: the grid size, or
	// the span of the index range for a partial (sharded) run.
	Evaluated uint64
	// Feasible is how many candidates satisfied the constraints.
	Feasible uint64
	// Top holds the best feasible candidates, best first, at most
	// TopK of them.
	Top []Candidate
	// Frontier is the Pareto frontier of the feasible set —
	// candidates not dominated on (speedup up, computation
	// utilization up, device count down) — sorted by Index.
	Frontier []Candidate
	// Workers is the worker count actually used.
	Workers int
	// Elapsed is the wall-clock exploration time.
	Elapsed time.Duration
	// CandidatesPerSec is Evaluated divided by Elapsed.
	CandidatesPerSec float64
	// Spans holds per-shard timing when Options.CollectSpans was set,
	// sorted by Lo so the listing reads as a scan of the index space.
	Spans []ShardSpan
}

// shardsPerWorker oversubscribes the shard count so a slow worker
// (preempted core, NUMA effects) cannot stall the run: fast workers
// steal the remaining shards from the shared counter.
const shardsPerWorker = 4

// Run explores the grid: it evaluates every candidate through the
// memoized batch kernel, in parallel across a sharded worker pool, and
// streams the results into a top-K selection and a Pareto frontier.
// Memory use is O(workers x (TopK + frontier)) regardless of grid
// size, and the returned Result is byte-identical for any worker
// count.
func Run(g Grid, opts Options) (Result, error) {
	c, err := g.compile()
	if err != nil {
		return Result{}, err
	}
	rangeLo, rangeHi := opts.IndexLo, opts.IndexHi
	if rangeLo == 0 && rangeHi == 0 {
		rangeHi = c.size
	}
	if rangeHi > c.size {
		return Result{}, errGrid("index range [%d, %d) exceeds grid size %d", rangeLo, rangeHi, c.size)
	}
	if rangeLo >= rangeHi {
		return Result{}, errGrid("index range [%d, %d) is empty", rangeLo, rangeHi)
	}
	span := rangeHi - rangeLo
	// Single-assignment copies for the worker closures: rangeHi is
	// reassigned above, so capturing it directly would box it on the
	// heap (one allocation the whole-grid fast path never needed).
	shardLo, shardHi := rangeLo, rangeHi
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if uint64(workers) > span {
		workers = int(span)
	}
	k := opts.TopK
	if k <= 0 {
		k = 10
	}

	numShards := uint64(workers * shardsPerWorker)
	shardSize := (span + numShards - 1) / numShards

	var (
		next       atomic.Uint64
		shardTimer *telemetry.Timer
	)
	if opts.Metrics != nil {
		shardTimer = opts.Metrics.Timer("explore.shard")
	}

	states := make([]workerState, workers)
	//rat:allow-wallclock wall time feeds Result.Elapsed telemetry only, never candidate ranking
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int, st *workerState) {
			defer wg.Done()
			st.top.init(k, opts.Objective)
			for {
				s := next.Add(1) - 1
				if s >= numShards {
					return
				}
				lo := shardLo + s*shardSize
				hi := lo + shardSize
				if hi > shardHi {
					hi = shardHi
				}
				if lo >= hi {
					continue
				}
				//rat:allow-wallclock shard timing feeds the explore.shard timer and ShardSpan telemetry only
				shardStart := time.Now()
				st.evalShard(c, opts.Constraints, lo, hi)
				//rat:allow-wallclock shard timing feeds the explore.shard timer and ShardSpan telemetry only
				shardElapsed := time.Since(shardStart)
				if shardTimer != nil {
					shardTimer.Observe(shardElapsed)
				}
				if opts.CollectSpans {
					st.spans = append(st.spans, ShardSpan{
						Shard:   int(s),
						Worker:  worker,
						Lo:      lo,
						Hi:      hi,
						Elapsed: shardElapsed,
					})
				}
			}
		}(w, &states[w])
	}
	wg.Wait()
	//rat:allow-wallclock wall time feeds Result.Elapsed telemetry only, never candidate ranking
	elapsed := time.Since(start)

	// Deterministic merge: per-worker results depend only on which
	// candidates each worker saw, and the global sort erases that
	// partitioning.
	res := Result{Evaluated: span, Workers: workers, Elapsed: elapsed}
	var merged []Candidate
	var churn int64
	for i := range states {
		st := &states[i]
		res.Feasible += st.feasible
		churn += st.top.churn
		merged = append(merged, st.top.items...)
	}
	sort.Slice(merged, func(i, j int) bool { return opts.Objective.better(&merged[i], &merged[j]) })
	if len(merged) > k {
		merged = merged[:k]
	}
	res.Top = merged
	res.Frontier = mergeFrontiers(states)
	if opts.CollectSpans {
		for i := range states {
			res.Spans = append(res.Spans, states[i].spans...)
		}
		sort.Slice(res.Spans, func(i, j int) bool { return res.Spans[i].Lo < res.Spans[j].Lo })
	}

	if secs := elapsed.Seconds(); secs > 0 {
		res.CandidatesPerSec = float64(res.Evaluated) / secs
	}
	if m := opts.Metrics; m != nil {
		m.Counter("explore.candidates").Add(int64(res.Evaluated))
		m.Counter("explore.feasible").Add(int64(res.Feasible))
		m.Gauge("explore.candidates_per_sec").Set(res.CandidatesPerSec)
		m.Gauge("explore.topk_churn").Set(float64(churn))
	}
	return res, nil
}

// workerState is one worker's private accumulation. Workers share only
// the compiled grid (read-only) and the shard counter, so the hot loop
// runs without locks or allocation.
type workerState struct {
	top      topK
	front    []Candidate
	feasible uint64
	spans    []ShardSpan
}

// evalShard evaluates candidates [lo, hi) of the compiled grid. The
// arithmetic reproduces core.Predict / core.PredictMulti expression by
// expression (memoized where the sub-term is axis-invariant), so every
// candidate's numbers are bit-for-bit the scalar results.
func (st *workerState) evalShard(c *compiled, cons Constraints, lo, hi uint64) {
	na, nd, nu, nc, nt := len(c.alphas), len(c.devs), len(c.bufs), len(c.clocks), len(c.tps)
	var cand Candidate
	for idx := lo; idx < hi; idx++ {
		rem := idx
		ti := int(rem % uint64(nt))
		rem /= uint64(nt)
		ci := int(rem % uint64(nc))
		rem /= uint64(nc)
		ui := int(rem % uint64(nu))
		rem /= uint64(nu)
		di := int(rem % uint64(nd))
		rem /= uint64(nd)
		ai := int(rem % uint64(na))
		bi := int(rem / uint64(na))

		b := &c.blocks[bi]
		// Eqs. 1-3, memoized per (block, alpha). TComm is read +
		// write in that order, matching core.Predict.
		tComm := c.tRead[bi*na+ai] + c.tWrite[bi*na+ai]
		// Eq. 4, numerator per block, denominator memoized per
		// (clock, throughput_proc).
		tComp := b.opsCoeff / c.denom[ci*nt+ti]
		// Multi-FPGA extension (core.PredictMulti): computation
		// always divides by N, communication only on independent
		// channels. N == 1 divides by 1.0, which is exact, so the
		// single-device numbers equal core.Predict's.
		n := float64(c.devs[di])
		tComp = tComp / n
		if c.topo == core.IndependentChannels {
			tComm = tComm / n
		}
		iters := float64(b.iters)
		var trc float64
		if c.bufs[ui] == core.DoubleBuffered {
			trc = iters * math.Max(tComm, tComp)
		} else {
			trc = iters * (tComm + tComp)
		}
		speedup := 0.0
		if c.base.Soft.TSoft > 0 {
			speedup = c.base.Soft.TSoft / trc
		}
		var utilComp, utilComm float64
		if c.bufs[ui] == core.DoubleBuffered {
			mx := math.Max(tComm, tComp)
			utilComp = tComp / mx
			utilComm = tComm / mx
		} else {
			sum := tComm + tComp
			utilComp = tComp / sum
			utilComm = tComm / sum
		}

		cand = Candidate{
			Index:          idx,
			ClockHz:        c.clocks[ci],
			ThroughputProc: c.tps[ti],
			AlphaWrite:     c.alphas[ai].write,
			AlphaRead:      c.alphas[ai].read,
			ElementsIn:     b.elemsIn,
			ElementsOut:    b.elemsOut,
			Iterations:     b.iters,
			Devices:        c.devs[di],
			Buffering:      c.bufs[ui],
			TComm:          tComm,
			TComp:          tComp,
			TRC:            trc,
			Speedup:        speedup,
			UtilComm:       utilComm,
			UtilComp:       utilComp,
		}
		if !cons.feasible(&cand) {
			continue
		}
		st.feasible++
		st.top.offer(&cand)
		st.front = insertFrontier(st.front, &cand)
	}
}
