package explore

// topK is a bounded best-K selection: a binary min-heap whose root is
// the worst retained candidate, so a streaming offer is O(1) when the
// newcomer loses to the root and O(log K) when it displaces it. The
// heap holds values, not pointers, and never grows past K, so the
// steady-state offer path allocates nothing.
type topK struct {
	items []Candidate
	k     int
	obj   Objective
	// churn counts admissions after the heap first filled — a proxy
	// for how long the stream kept improving on the incumbent set.
	churn int64
}

func (t *topK) init(k int, obj Objective) {
	t.k = k
	t.obj = obj
	t.items = make([]Candidate, 0, k)
}

// worse reports whether items[i] ranks below items[j]; it is the heap
// order (root = worst).
func (t *topK) worse(i, j int) bool {
	return t.obj.better(&t.items[j], &t.items[i])
}

// offer considers c for the retained set.
func (t *topK) offer(c *Candidate) {
	if len(t.items) < t.k {
		t.items = append(t.items, *c)
		t.siftUp(len(t.items) - 1)
		return
	}
	if !t.obj.better(c, &t.items[0]) {
		return
	}
	t.items[0] = *c
	t.siftDown(0)
	t.churn++
}

func (t *topK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(i, parent) {
			return
		}
		t.items[i], t.items[parent] = t.items[parent], t.items[i]
		i = parent
	}
}

func (t *topK) siftDown(i int) {
	n := len(t.items)
	for {
		worst := i
		if l := 2*i + 1; l < n && t.worse(l, worst) {
			worst = l
		}
		if r := 2*i + 2; r < n && t.worse(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		t.items[i], t.items[worst] = t.items[worst], t.items[i]
		i = worst
	}
}
