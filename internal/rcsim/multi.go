package rcsim

import (
	"fmt"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/sim"
	"github.com/chrec/rat/internal/telemetry"
)

// Multi-FPGA simulation, validating the core.PredictMulti extension
// the way the single-device simulator validates Eqs. (1)-(11): each
// iteration's block is split evenly across N devices, transfers
// contend for the host channel(s), and the per-device kernels run in
// parallel.
//
// The simulation deliberately includes what the analytic extension
// abstracts away — each device's sub-block transfer pays its own setup
// cost, so scattering a block across more devices inflates total
// communication time. Comparing the two shows where the pencil-and-
// paper model starts to mislead, exactly the kind of honest check RAT
// exists to encourage.

// MultiScenario is a Scenario fanned out over several devices.
type MultiScenario struct {
	Scenario
	// Devices is the FPGA count; elements divide evenly across it.
	Devices int
	// Topology: SharedChannel serializes every transfer on one host
	// link; IndependentChannels gives each device its own.
	Topology core.Topology
}

// Validate extends Scenario validation with the fan-out fields.
func (ms MultiScenario) Validate() error {
	if err := ms.Scenario.Validate(); err != nil {
		return err
	}
	if ms.Devices < 1 {
		return fmt.Errorf("%w: device count must be >= 1 (got %d)", ErrBadScenario, ms.Devices)
	}
	if ms.Topology != core.SharedChannel && ms.Topology != core.IndependentChannels {
		return fmt.Errorf("%w: unknown topology %v", ErrBadScenario, ms.Topology)
	}
	if ms.ElementsIn%ms.Devices != 0 || ms.ElementsOut%ms.Devices != 0 {
		return fmt.Errorf("%w: %d/%d elements do not divide across %d devices",
			ErrBadScenario, ms.ElementsIn, ms.ElementsOut, ms.Devices)
	}
	return nil
}

// RunMulti executes the fanned-out scenario. The returned
// Measurement's WriteTotal/ReadTotal sum all sub-block transfers and
// CompTotal sums all devices' kernel spans (with N devices computing
// in parallel, CompTotal can exceed the wall-clock Total; TComm/TComp
// remain per-iteration aggregates, matching how core.PredictMulti
// defines its terms).
func RunMulti(ms MultiScenario) (Measurement, error) {
	if err := ms.Validate(); err != nil {
		return Measurement{}, err
	}
	var (
		s     = sim.New()
		clock = ms.Platform.Clock(ms.ClockHz)
		n     = ms.Iterations
		nd    = ms.Devices

		perDevIn  = int64(ms.ElementsIn/nd) * int64(ms.BytesPerElement)
		perDevOut = int64(ms.ElementsOut/nd) * int64(ms.BytesPerElement)

		m = Measurement{Scenario: ms.Scenario}
	)

	x, err := newExecCtx(s, &ms.Scenario, &m)
	if err != nil {
		return Measurement{}, err
	}

	// One bus per device for independent channels, one shared. Each
	// device also owns a kernel resource so a failover survivor
	// serializes its own sub-blocks with a dropped neighbour's; grants
	// are zero-delay, so fault-free timing is unchanged.
	buses := make([]*sim.Resource, nd)
	kerns := make([]*sim.Resource, nd)
	shared := sim.NewResource(s, "interconnect")
	for d := range buses {
		if ms.Topology == core.IndependentChannels {
			buses[d] = sim.NewResource(s, fmt.Sprintf("interconnect-%d", d))
		} else {
			buses[d] = shared
		}
		kerns[d] = sim.NewResource(s, fmt.Sprintf("kernel-%d", d))
	}

	// dropped marks devices lost to node dropout. route sends a
	// dropped device's remaining sub-blocks to the lowest-index
	// survivor; it is re-evaluated at every acquire, so cascading
	// dropouts chain onto whichever device still answers.
	dropped := make([]bool, nd)
	route := func(d int) int {
		if !dropped[d] {
			return d
		}
		for dd := range dropped {
			if !dropped[dd] {
				return dd
			}
		}
		return d // unreachable: dropout fails the run without a survivor
	}
	busFor := func(d int) *sim.Resource { return buses[route(d)] }
	kernFor := func(d int) *sim.Resource { return kerns[route(d)] }

	// All devices' per-iteration progress state shares one backing
	// allocation; the calendar is pre-sized for the full fan-out.
	devs := make([]iterScratch, nd)
	buf := make([]bool, 6*n*nd)
	for d := range devs {
		devs[d], buf = newIterScratch(n, buf)
	}
	s.Reserve(n * nd * calendarEventsPerIter)

	allReadsDone := func(i int) bool {
		for d := range devs {
			if !devs[d].readDone[i] {
				return false
			}
		}
		return true
	}
	allWritesDone := func(i int) bool {
		for d := range devs {
			if !devs[d].writeDone[i] {
				return false
			}
		}
		return true
	}

	var tryWrite, tryCompute, tryRead func(d, i int)

	writeReady := func(d, i int) bool {
		if i == 0 {
			return true
		}
		if ms.Buffering == core.DoubleBuffered {
			return i < 2 || devs[d].compDone[i-2]
		}
		return allReadsDone(i - 1)
	}

	tryWrite = func(d, i int) {
		st := &devs[d]
		if i >= n || st.writeStarted[i] || !writeReady(d, i) {
			return
		}
		st.writeStarted[i] = true
		startWrite := func() {
			bus := busFor(d)
			bus.Acquire(func() {
				// A sub-block transfer is back-to-back unless it is
				// the very first for its device.
				x.transfer(platform.Write, d, i, perDevIn, i > 0 || d > 0, &m.WriteTotal, bus.Release, func() {
					st.writeDone[i] = true
					if ms.Buffering == core.SingleBuffered {
						if allWritesDone(i) { // barrier reached: release every device
							for dd := 0; dd < nd; dd++ {
								tryCompute(dd, i)
							}
						}
					} else {
						tryCompute(d, i)
						tryWrite(d, i+1)
					}
				})
			})
		}
		// Dropout is decided at the write boundary, before any wire
		// time is spent, so no in-flight work is ever lost.
		if x.dropout(d, i, dropped, startWrite) {
			return
		}
		startWrite()
	}

	tryCompute = func(d, i int) {
		st := &devs[d]
		if i >= n || st.compStarted[i] || !st.writeDone[i] {
			return
		}
		// Single-buffered multi-device execution is a synchronous
		// scatter / compute-all / gather: no device starts until the
		// whole block is distributed, matching the analytic model's
		// strictly serialized phases. Double buffering pipelines per
		// device.
		if ms.Buffering == core.SingleBuffered && !allWritesDone(i) {
			return
		}
		if i > 0 && !st.compDone[i-1] {
			return
		}
		st.compStarted[i] = true
		kern := kernFor(d)
		kern.Acquire(func() {
			x.compute(d, i, ms.ElementsIn/nd, clock, kern.Release, func() {
				st.compDone[i] = true
				tryRead(d, i)
				tryCompute(d, i+1)
				if ms.Buffering == core.DoubleBuffered {
					ms.emit(telemetry.Event{Kind: telemetry.EventBufferSwap, Iter: i, Device: d,
						StartPs: int64(s.Now()), EndPs: int64(s.Now()), Detail: "input buffer freed"})
					tryWrite(d, i+2)
				}
			})
		})
	}

	finishRead := func(d, i int) {
		devs[d].readDone[i] = true
		if ms.Buffering == core.SingleBuffered && allReadsDone(i) {
			for dd := 0; dd < nd; dd++ {
				tryWrite(dd, i+1)
			}
		}
	}

	tryRead = func(d, i int) {
		st := &devs[d]
		if st.readStarted[i] || !st.compDone[i] {
			return
		}
		st.readStarted[i] = true
		if perDevOut == 0 {
			finishRead(d, i)
			return
		}
		bus := busFor(d)
		bus.Acquire(func() {
			x.transfer(platform.Read, d, i, perDevOut, i > 0 || d > 0, &m.ReadTotal, bus.Release, func() {
				finishRead(d, i)
			})
		})
	}

	for d := 0; d < nd; d++ {
		tryWrite(d, 0)
		if ms.Buffering == core.DoubleBuffered {
			tryWrite(d, 1)
		}
	}
	m.Total = s.Run()

	if x.err != nil {
		return Measurement{}, x.err
	}
	for d := range devs {
		for i := 0; i < n; i++ {
			if !devs[d].readDone[i] {
				return Measurement{}, fmt.Errorf("rcsim: multi scenario %q deadlocked at device %d iteration %d", ms.Name, d, i)
			}
		}
	}
	if ms.Trace != nil {
		m.OverlapTotal = ms.Trace.Overlap()
	}
	return m, nil
}
