package rcsim

import (
	"fmt"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/sim"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/trace"
)

// Multi-FPGA simulation, validating the core.PredictMulti extension
// the way the single-device simulator validates Eqs. (1)-(11): each
// iteration's block is split evenly across N devices, transfers
// contend for the host channel(s), and the per-device kernels run in
// parallel.
//
// The simulation deliberately includes what the analytic extension
// abstracts away — each device's sub-block transfer pays its own setup
// cost, so scattering a block across more devices inflates total
// communication time. Comparing the two shows where the pencil-and-
// paper model starts to mislead, exactly the kind of honest check RAT
// exists to encourage.

// MultiScenario is a Scenario fanned out over several devices.
type MultiScenario struct {
	Scenario
	// Devices is the FPGA count; elements divide evenly across it.
	Devices int
	// Topology: SharedChannel serializes every transfer on one host
	// link; IndependentChannels gives each device its own.
	Topology core.Topology
}

// Validate extends Scenario validation with the fan-out fields.
func (ms MultiScenario) Validate() error {
	if err := ms.Scenario.Validate(); err != nil {
		return err
	}
	if ms.Devices < 1 {
		return fmt.Errorf("%w: device count must be >= 1 (got %d)", ErrBadScenario, ms.Devices)
	}
	if ms.Topology != core.SharedChannel && ms.Topology != core.IndependentChannels {
		return fmt.Errorf("%w: unknown topology %v", ErrBadScenario, ms.Topology)
	}
	if ms.ElementsIn%ms.Devices != 0 || ms.ElementsOut%ms.Devices != 0 {
		return fmt.Errorf("%w: %d/%d elements do not divide across %d devices",
			ErrBadScenario, ms.ElementsIn, ms.ElementsOut, ms.Devices)
	}
	return nil
}

// RunMulti executes the fanned-out scenario. The returned
// Measurement's WriteTotal/ReadTotal sum all sub-block transfers and
// CompTotal sums all devices' kernel spans (with N devices computing
// in parallel, CompTotal can exceed the wall-clock Total; TComm/TComp
// remain per-iteration aggregates, matching how core.PredictMulti
// defines its terms).
func RunMulti(ms MultiScenario) (Measurement, error) {
	if err := ms.Validate(); err != nil {
		return Measurement{}, err
	}
	var (
		s     = sim.New()
		ic    = ms.Platform.Interconnect
		clock = ms.Platform.Clock(ms.ClockHz)
		n     = ms.Iterations
		nd    = ms.Devices

		perDevIn  = int64(ms.ElementsIn/nd) * int64(ms.BytesPerElement)
		perDevOut = int64(ms.ElementsOut/nd) * int64(ms.BytesPerElement)

		m = Measurement{Scenario: ms.Scenario}
	)

	// One bus per device for independent channels, one shared.
	buses := make([]*sim.Resource, nd)
	shared := sim.NewResource(s, "interconnect")
	for d := range buses {
		if ms.Topology == core.IndependentChannels {
			buses[d] = sim.NewResource(s, fmt.Sprintf("interconnect-%d", d))
		} else {
			buses[d] = shared
		}
	}

	type state struct {
		writeStarted, writeDone []bool
		compStarted, compDone   []bool
		readStarted, readDone   []bool
	}
	devs := make([]state, nd)
	for d := range devs {
		devs[d] = state{
			writeStarted: make([]bool, n), writeDone: make([]bool, n),
			compStarted: make([]bool, n), compDone: make([]bool, n),
			readStarted: make([]bool, n), readDone: make([]bool, n),
		}
	}

	allReadsDone := func(i int) bool {
		for d := range devs {
			if !devs[d].readDone[i] {
				return false
			}
		}
		return true
	}
	allWritesDone := func(i int) bool {
		for d := range devs {
			if !devs[d].writeDone[i] {
				return false
			}
		}
		return true
	}

	var tryWrite, tryCompute, tryRead func(d, i int)

	writeReady := func(d, i int) bool {
		if i == 0 {
			return true
		}
		if ms.Buffering == core.DoubleBuffered {
			return i < 2 || devs[d].compDone[i-2]
		}
		return allReadsDone(i - 1)
	}

	tryWrite = func(d, i int) {
		st := &devs[d]
		if i >= n || st.writeStarted[i] || !writeReady(d, i) {
			return
		}
		st.writeStarted[i] = true
		buses[d].Acquire(func() {
			start := s.Now()
			// A sub-block transfer is back-to-back unless it is the
			// very first for its device.
			dur := ic.TransferTime(platform.Write, perDevIn, i > 0 || d > 0)
			s.Schedule(dur, func() {
				ms.Trace.Add(trace.Span{Kind: trace.Write, Iter: i, Start: start, End: s.Now()})
				ms.emit(telemetry.Event{Kind: telemetry.EventWrite, Iter: i, Device: d,
					StartPs: int64(start), EndPs: int64(s.Now()), Bytes: perDevIn})
				m.WriteTotal += s.Now() - start
				buses[d].Release()
				st.writeDone[i] = true
				if ms.Buffering == core.SingleBuffered {
					if allWritesDone(i) { // barrier reached: release every device
						for dd := 0; dd < nd; dd++ {
							tryCompute(dd, i)
						}
					}
				} else {
					tryCompute(d, i)
					tryWrite(d, i+1)
				}
			})
		})
	}

	tryCompute = func(d, i int) {
		st := &devs[d]
		if i >= n || st.compStarted[i] || !st.writeDone[i] {
			return
		}
		// Single-buffered multi-device execution is a synchronous
		// scatter / compute-all / gather: no device starts until the
		// whole block is distributed, matching the analytic model's
		// strictly serialized phases. Double buffering pipelines per
		// device.
		if ms.Buffering == core.SingleBuffered && !allWritesDone(i) {
			return
		}
		if i > 0 && !st.compDone[i-1] {
			return
		}
		st.compStarted[i] = true
		start := s.Now()
		cycles := ms.KernelCycles(i, ms.ElementsIn/nd)
		if cycles < 0 {
			panic(fmt.Sprintf("rcsim: kernel returned negative cycle count %d", cycles))
		}
		m.KernelCyclesTotal += cycles
		s.Schedule(clock.Cycles(cycles), func() {
			ms.Trace.Add(trace.Span{Kind: trace.Compute, Iter: i, Start: start, End: s.Now()})
			ms.emit(telemetry.Event{Kind: telemetry.EventCompute, Iter: i, Device: d,
				StartPs: int64(start), EndPs: int64(s.Now()), Cycles: cycles})
			m.CompTotal += s.Now() - start
			st.compDone[i] = true
			tryRead(d, i)
			tryCompute(d, i+1)
			if ms.Buffering == core.DoubleBuffered {
				ms.emit(telemetry.Event{Kind: telemetry.EventBufferSwap, Iter: i, Device: d,
					StartPs: int64(s.Now()), EndPs: int64(s.Now()), Detail: "input buffer freed"})
				tryWrite(d, i+2)
			}
		})
	}

	finishRead := func(d, i int) {
		devs[d].readDone[i] = true
		if ms.Buffering == core.SingleBuffered && allReadsDone(i) {
			for dd := 0; dd < nd; dd++ {
				tryWrite(dd, i+1)
			}
		}
	}

	tryRead = func(d, i int) {
		st := &devs[d]
		if st.readStarted[i] || !st.compDone[i] {
			return
		}
		st.readStarted[i] = true
		if perDevOut == 0 {
			finishRead(d, i)
			return
		}
		buses[d].Acquire(func() {
			start := s.Now()
			dur := ic.TransferTime(platform.Read, perDevOut, i > 0 || d > 0)
			s.Schedule(dur, func() {
				ms.Trace.Add(trace.Span{Kind: trace.Read, Iter: i, Start: start, End: s.Now()})
				ms.emit(telemetry.Event{Kind: telemetry.EventRead, Iter: i, Device: d,
					StartPs: int64(start), EndPs: int64(s.Now()), Bytes: perDevOut})
				m.ReadTotal += s.Now() - start
				buses[d].Release()
				finishRead(d, i)
			})
		})
	}

	for d := 0; d < nd; d++ {
		tryWrite(d, 0)
		if ms.Buffering == core.DoubleBuffered {
			tryWrite(d, 1)
		}
	}
	m.Total = s.Run()

	for d := range devs {
		for i := 0; i < n; i++ {
			if !devs[d].readDone[i] {
				return Measurement{}, fmt.Errorf("rcsim: multi scenario %q deadlocked at device %d iteration %d", ms.Name, d, i)
			}
		}
	}
	if ms.Trace != nil {
		m.OverlapTotal = ms.Trace.Overlap()
	}
	return m, nil
}
