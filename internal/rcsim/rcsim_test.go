package rcsim_test

import (
	"errors"
	"math"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/trace"
)

// idealPlatform returns a platform with no setup or repeat overheads
// and flat rates, so the simulation must land exactly on the analytic
// model — the ablation baseline of DESIGN.md.
func idealPlatform(bps float64) platform.Platform {
	flat := platform.Link{Rate: []platform.RatePoint{{Bytes: 1, Bps: bps}, {Bytes: 1 << 30, Bps: bps}}}
	return platform.Platform{
		Name:         "ideal",
		Interconnect: platform.Interconnect{Name: "ideal-link", IdealBps: bps, WriteLink: flat, ReadLink: flat},
		MinClockHz:   1e6, MaxClockHz: 1e9,
	}
}

func fixedKernel(cycles int64) func(int, int) int64 {
	return func(int, int) int64 { return cycles }
}

func baseScenario(b core.Buffering) rcsim.Scenario {
	return rcsim.Scenario{
		Name:            "synthetic",
		Platform:        idealPlatform(1e9),
		ClockHz:         100e6,
		Buffering:       b,
		Iterations:      10,
		ElementsIn:      1000,
		ElementsOut:     1000,
		BytesPerElement: 4,
		KernelCycles:    fixedKernel(1000), // 10us at 100 MHz
	}
}

// TestSingleBufferedMatchesAnalyticModel: on an ideal platform the
// simulated single-buffered run equals Eq. 5 exactly: N_iter * (t_comm
// + t_comp).
func TestSingleBufferedMatchesAnalyticModel(t *testing.T) {
	sc := baseScenario(core.SingleBuffered)
	m := rcsim.MustRun(sc)
	// t_write = t_read = 4000B / 1e9 = 4us; t_comp = 10us.
	want := 10 * (4e-6 + 4e-6 + 10e-6)
	if got := m.TRC(); math.Abs(got-want) > 1e-12 {
		t.Errorf("TRC = %.6e, want %.6e", got, want)
	}
	if got := m.TComm(); math.Abs(got-8e-6) > 1e-12 {
		t.Errorf("TComm = %.6e, want 8e-6", got)
	}
	if got := m.TComp(); math.Abs(got-10e-6) > 1e-12 {
		t.Errorf("TComp = %.6e, want 10e-6", got)
	}
	// Utilizations match Eqs. 8-9.
	if got := m.UtilComp(); math.Abs(got-10.0/18.0) > 1e-9 {
		t.Errorf("UtilComp = %.4f", got)
	}
	if got := m.UtilComm(); math.Abs(got-8.0/18.0) > 1e-9 {
		t.Errorf("UtilComm = %.4f", got)
	}
	if m.KernelCyclesTotal != 10*1000 {
		t.Errorf("KernelCyclesTotal = %d", m.KernelCyclesTotal)
	}
}

// TestDoubleBufferedApproachesAnalyticModel: compute-bound DB runs
// converge to N_iter * t_comp plus the unhidden first-fill and
// last-drain communication edges.
func TestDoubleBufferedApproachesAnalyticModel(t *testing.T) {
	sc := baseScenario(core.DoubleBuffered)
	sc.Iterations = 100
	var rec trace.Recorder
	sc.Trace = &rec
	m := rcsim.MustRun(sc)
	steady := 100 * 10e-6
	got := m.TRC()
	if got < steady {
		t.Errorf("TRC %.6e below steady-state floor %.6e", got, steady)
	}
	// Startup + drain edges are at most one iteration's comm.
	if got > steady+8e-6+1e-12 {
		t.Errorf("TRC %.6e exceeds steady state by more than one comm period", got)
	}
	// Overlap must be substantial: nearly all communication hides.
	if ov := m.OverlapTotal; ov.Seconds() < 0.9*(m.WriteTotal+m.ReadTotal).Seconds() {
		t.Errorf("overlap %.3e too small vs comm %.3e", ov.Seconds(), (m.WriteTotal + m.ReadTotal).Seconds())
	}
}

// TestDoubleBufferedCommBound: when communication dominates, DB run
// time approaches N_iter * t_comm and the kernel goes mostly idle.
func TestDoubleBufferedCommBound(t *testing.T) {
	sc := baseScenario(core.DoubleBuffered)
	sc.Iterations = 50
	sc.KernelCycles = fixedKernel(100) // 1us compute vs 8us comm
	m := rcsim.MustRun(sc)
	steady := 50 * 8e-6
	if got := m.TRC(); got < steady || got > steady*1.05 {
		t.Errorf("comm-bound TRC = %.6e, want ~%.6e", got, steady)
	}
	if m.UtilComp() > 0.2 {
		t.Errorf("comm-bound UtilComp = %.3f, want small", m.UtilComp())
	}
	if m.UtilComm() < 0.95 {
		t.Errorf("comm-bound UtilComm = %.3f, want ~1", m.UtilComm())
	}
}

// TestDoubleBufferedNeverSlower: for any mix, DB is at least as fast
// as SB and at most 2x faster (the Eq. 5/6 bracket).
func TestDoubleBufferedNeverSlower(t *testing.T) {
	for _, cycles := range []int64{10, 100, 800, 1000, 5000} {
		sb := baseScenario(core.SingleBuffered)
		sb.KernelCycles = fixedKernel(cycles)
		db := baseScenario(core.DoubleBuffered)
		db.KernelCycles = fixedKernel(cycles)
		tSB := rcsim.MustRun(sb).TRC()
		tDB := rcsim.MustRun(db).TRC()
		if tDB > tSB*(1+1e-12) {
			t.Errorf("cycles=%d: DB %.3e slower than SB %.3e", cycles, tDB, tSB)
		}
		if tSB > 2*tDB*(1+1e-9) {
			t.Errorf("cycles=%d: SB %.3e more than 2x DB %.3e", cycles, tSB, tDB)
		}
	}
}

// TestDataDependentKernel: per-iteration cycle counts vary and the
// total must be their exact sum (single-buffered, ideal link).
func TestDataDependentKernel(t *testing.T) {
	sc := baseScenario(core.SingleBuffered)
	sc.Iterations = 5
	counts := []int64{100, 900, 250, 3000, 50}
	sc.KernelCycles = func(iter, _ int) int64 { return counts[iter] }
	m := rcsim.MustRun(sc)
	var want int64
	for _, c := range counts {
		want += c
	}
	if m.KernelCyclesTotal != want {
		t.Errorf("KernelCyclesTotal = %d, want %d", m.KernelCyclesTotal, want)
	}
	wantComp := float64(want) / 100e6
	if got := m.CompTotal.Seconds(); math.Abs(got-wantComp) > 1e-12 {
		t.Errorf("CompTotal = %.6e, want %.6e", got, wantComp)
	}
}

// TestZeroOutputElements: designs that keep results on chip (1-D PDF
// per-iteration behaviour) issue no read transfers.
func TestZeroOutputElements(t *testing.T) {
	sc := baseScenario(core.SingleBuffered)
	sc.ElementsOut = 0
	m := rcsim.MustRun(sc)
	if m.ReadTotal != 0 {
		t.Errorf("ReadTotal = %v, want 0", m.ReadTotal)
	}
	want := 10 * (4e-6 + 10e-6)
	if got := m.TRC(); math.Abs(got-want) > 1e-12 {
		t.Errorf("TRC = %.6e, want %.6e", got, want)
	}
}

// TestTraceStructure: the recorded timeline has one span of each kind
// per iteration, in causal order within an iteration.
func TestTraceStructure(t *testing.T) {
	sc := baseScenario(core.SingleBuffered)
	sc.Iterations = 3
	var rec trace.Recorder
	sc.Trace = &rec
	rcsim.MustRun(sc)
	spans := rec.Spans()
	if len(spans) != 9 {
		t.Fatalf("span count = %d, want 9", len(spans))
	}
	byIter := map[int]map[trace.Kind]trace.Span{}
	for _, s := range spans {
		if byIter[s.Iter] == nil {
			byIter[s.Iter] = map[trace.Kind]trace.Span{}
		}
		byIter[s.Iter][s.Kind] = s
	}
	for i := 0; i < 3; i++ {
		w, c, r := byIter[i][trace.Write], byIter[i][trace.Compute], byIter[i][trace.Read]
		if !(w.End <= c.Start && c.End <= r.Start) {
			t.Errorf("iteration %d spans out of causal order: %+v %+v %+v", i, w, c, r)
		}
	}
	// Single-buffered: zero overlap by construction.
	if rec.Overlap() != 0 {
		t.Errorf("SB overlap = %v, want 0", rec.Overlap())
	}
}

// TestDoubleBufferedTraceOverlaps: under DB, some write span starts
// before the previous compute ends.
func TestDoubleBufferedTraceOverlaps(t *testing.T) {
	sc := baseScenario(core.DoubleBuffered)
	sc.Iterations = 4
	var rec trace.Recorder
	sc.Trace = &rec
	rcsim.MustRun(sc)
	if rec.Overlap() == 0 {
		t.Error("double-buffered run shows no comm/comp overlap")
	}
}

// TestRepeatOverheadAppearsInLoops: on a platform with repeat
// overhead, per-iteration comm in a loop exceeds the isolated
// transfer time — the 1-D PDF calibration story.
func TestRepeatOverheadAppearsInLoops(t *testing.T) {
	p := platform.NallatechH101()
	sc := rcsim.Scenario{
		Name: "repeat", Platform: p, ClockHz: 150e6,
		Buffering: core.SingleBuffered, Iterations: 400,
		ElementsIn: 512, ElementsOut: 1, BytesPerElement: 4,
		KernelCycles: fixedKernel(1),
	}
	m := rcsim.MustRun(sc)
	isolated := p.Interconnect.TransferTime(platform.Write, 2048, false) +
		p.Interconnect.TransferTime(platform.Read, 4, false)
	perIter := (m.WriteTotal + m.ReadTotal) / 400
	if perIter <= isolated {
		t.Errorf("looped per-iter comm %v must exceed isolated %v", perIter, isolated)
	}
	// Calibration target: the paper's measured 2.50e-5 s.
	if got := m.TComm(); math.Abs(got-2.50e-5) > 2e-7 {
		t.Errorf("1-D PDF-shaped comm = %.4e s, want ~2.50e-5", got)
	}
}

func TestScenarioValidation(t *testing.T) {
	base := baseScenario(core.SingleBuffered)
	cases := []struct {
		name   string
		mutate func(*rcsim.Scenario)
	}{
		{"zero iterations", func(s *rcsim.Scenario) { s.Iterations = 0 }},
		{"zero elements", func(s *rcsim.Scenario) { s.ElementsIn = 0 }},
		{"negative output", func(s *rcsim.Scenario) { s.ElementsOut = -1 }},
		{"zero bytes", func(s *rcsim.Scenario) { s.BytesPerElement = 0 }},
		{"zero clock", func(s *rcsim.Scenario) { s.ClockHz = 0 }},
		{"nil kernel", func(s *rcsim.Scenario) { s.KernelCycles = nil }},
		{"bad buffering", func(s *rcsim.Scenario) { s.Buffering = core.Buffering(7) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base
			tc.mutate(&sc)
			if _, err := rcsim.Run(sc); !errors.Is(err, rcsim.ErrBadScenario) {
				t.Errorf("error = %v, want ErrBadScenario", err)
			}
		})
	}
}

func TestMustRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRun on invalid scenario must panic")
		}
	}()
	rcsim.MustRun(rcsim.Scenario{})
}

func TestEffectiveOpsPerCycle(t *testing.T) {
	sc := baseScenario(core.SingleBuffered)
	m := rcsim.MustRun(sc)
	// 10 iters x 1000 elements x 3 ops / (10 x 1000 cycles) = 3.
	if got := m.EffectiveOpsPerCycle(3); math.Abs(got-3) > 1e-12 {
		t.Errorf("EffectiveOpsPerCycle = %g, want 3", got)
	}
}

// TestDeterministicRuns: identical scenarios measure identically.
func TestDeterministicRuns(t *testing.T) {
	a := rcsim.MustRun(baseScenario(core.DoubleBuffered))
	b := rcsim.MustRun(baseScenario(core.DoubleBuffered))
	if a.Total != b.Total || a.WriteTotal != b.WriteTotal || a.CompTotal != b.CompTotal {
		t.Error("simulation is not deterministic")
	}
}

// TestSpeedupHelper is a smoke check of the measured-speedup helper.
func TestSpeedupHelper(t *testing.T) {
	m := rcsim.MustRun(baseScenario(core.SingleBuffered))
	if got := m.Speedup(m.TRC() * 5); math.Abs(got-5) > 1e-9 {
		t.Errorf("Speedup = %g, want 5", got)
	}
	var empty rcsim.Measurement
	if empty.Speedup(1) != 0 {
		t.Error("zero measurement must report zero speedup")
	}
	if empty.UtilComm() != 0 || empty.UtilComp() != 0 {
		t.Error("zero measurement must report zero utilizations")
	}
	if empty.EffectiveOpsPerCycle(3) != 0 {
		t.Error("zero measurement must report zero ops/cycle")
	}
}
