package rcsim_test

import (
	"math"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/trace"
)

// TestRunEmitsEvents checks the single-device simulator's event log:
// one record per transfer and kernel execution, and — because a
// single-buffered schedule is strictly serial — summed event
// durations that reproduce the measured total to the picosecond.
func TestRunEmitsEvents(t *testing.T) {
	sc := baseScenario(core.SingleBuffered)
	var sink telemetry.MemorySink
	sc.Events = &sink
	m, err := rcsim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	events := sink.Events()
	counts := map[string]int{}
	var sumPs int64
	for _, e := range events {
		counts[e.Kind]++
		if e.EndPs < e.StartPs {
			t.Errorf("event %+v ends before it starts", e)
		}
		sumPs += e.EndPs - e.StartPs
	}
	n := sc.Iterations
	if counts[telemetry.EventWrite] != n || counts[telemetry.EventCompute] != n || counts[telemetry.EventRead] != n {
		t.Errorf("event counts = %v, want %d of each transfer/compute kind", counts, n)
	}
	if counts[telemetry.EventBufferSwap] != 0 {
		t.Errorf("single-buffered run emitted %d buffer swaps", counts[telemetry.EventBufferSwap])
	}
	if sumPs != int64(m.Total) {
		t.Errorf("summed event durations = %d ps, measured total = %d ps", sumPs, int64(m.Total))
	}
}

func TestDoubleBufferedEmitsBufferSwaps(t *testing.T) {
	sc := baseScenario(core.DoubleBuffered)
	var sink telemetry.MemorySink
	sc.Events = &sink
	if _, err := rcsim.Run(sc); err != nil {
		t.Fatal(err)
	}
	swaps := 0
	for _, e := range sink.Events() {
		if e.Kind == telemetry.EventBufferSwap {
			swaps++
			if e.StartPs != e.EndPs {
				t.Errorf("buffer swap is a marker, got span %+v", e)
			}
		}
	}
	if swaps != sc.Iterations {
		t.Errorf("buffer swaps = %d, want one per iteration (%d)", swaps, sc.Iterations)
	}
}

// TestEventsMatchTrace runs every simulator flavour with both a trace
// recorder and an event sink attached and checks they tell the same
// story span for span.
func TestEventsMatchTrace(t *testing.T) {
	flavours := []struct {
		name string
		run  func(rcsim.Scenario) (rcsim.Measurement, error)
	}{
		{"single", rcsim.Run},
		{"streaming", rcsim.RunStreaming},
		{"multi", func(sc rcsim.Scenario) (rcsim.Measurement, error) {
			return rcsim.RunMulti(rcsim.MultiScenario{
				Scenario: sc, Devices: 2, Topology: core.SharedChannel,
			})
		}},
	}
	for _, f := range flavours {
		t.Run(f.name, func(t *testing.T) {
			sc := baseScenario(core.DoubleBuffered)
			var rec trace.Recorder
			var sink telemetry.MemorySink
			sc.Trace = &rec
			sc.Events = &sink
			if _, err := f.run(sc); err != nil {
				t.Fatal(err)
			}
			spanned := 0
			for _, e := range sink.Events() {
				if e.Kind != telemetry.EventBufferSwap {
					spanned++
				}
			}
			if got := len(rec.Spans()); got != spanned {
				t.Errorf("trace has %d spans, event log has %d span events", got, spanned)
			}
		})
	}
}

func TestRecordMetrics(t *testing.T) {
	m, err := rcsim.Run(baseScenario(core.SingleBuffered))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	m.RecordMetrics(reg)
	m.RecordMetrics(reg)
	s := reg.Snapshot()
	if s.Counters["rcsim.runs"] != 2 {
		t.Errorf("rcsim.runs = %d, want 2", s.Counters["rcsim.runs"])
	}
	if want := int64(2 * m.Scenario.Iterations); s.Counters["rcsim.iterations"] != want {
		t.Errorf("rcsim.iterations = %d, want %d", s.Counters["rcsim.iterations"], want)
	}
	if got := s.Gauges["rcsim.t_rc_seconds"]; math.Abs(got-m.TRC()) > 0 {
		t.Errorf("rcsim.t_rc_seconds = %g, want %g", got, m.TRC())
	}
	m.RecordMetrics(nil) // nil registry must not panic
}
