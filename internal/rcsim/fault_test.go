package rcsim_test

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/apps/md"
	"github.com/chrec/rat/internal/apps/pdf1d"
	"github.com/chrec/rat/internal/apps/pdf2d"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/fault"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/sim"
	"github.com/chrec/rat/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// retryPolicy is a generous recovery policy for tests that want runs
// to survive injected faults rather than exhaust their retries.
func retryPolicy() fault.Policy {
	return fault.Policy{Retries: 10, Backoff: 10 * sim.Microsecond, Growth: 2,
		Failover: true, FailoverDelay: sim.Millisecond}
}

// measKey extracts the comparable core of a Measurement (Scenario
// holds func values, so the struct itself cannot be compared).
type measKey struct {
	Total, Write, Read, Comp, Overlap, FaultTime sim.Time
	Cycles, Retries, Failovers                   int64
}

func keyOf(m rcsim.Measurement) measKey {
	return measKey{
		Total: m.Total, Write: m.WriteTotal, Read: m.ReadTotal, Comp: m.CompTotal,
		Overlap: m.OverlapTotal, FaultTime: m.FaultTime,
		Cycles: m.KernelCyclesTotal, Retries: m.Retries, Failovers: m.Failovers,
	}
}

// paperScenarios builds the three case-study scenarios at their
// worksheet clocks, the measured columns of the paper's tables.
func paperScenarios(t *testing.T) []rcsim.Scenario {
	t.Helper()
	mdScenario, err := md.Scenario(md.GenerateSystem(md.Molecules, 1), core.MHz(100), core.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	return []rcsim.Scenario{
		pdf1d.Scenario(core.MHz(150), core.SingleBuffered),
		pdf2d.Scenario(core.MHz(150), core.SingleBuffered),
		mdScenario,
	}
}

// TestDisabledPlanMatchesFaultFree is the acceptance criterion that a
// nil or zero-rate fault plan reproduces today's fault-free
// Measurement bit for bit, in all three run modes, over both the
// synthetic scenario and the three paper case studies.
func TestDisabledPlanMatchesFaultFree(t *testing.T) {
	scs := append(paperScenarios(t),
		baseScenario(core.SingleBuffered), baseScenario(core.DoubleBuffered))
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			zeroRate := &fault.Plan{Seed: 12345} // enabled-looking, injects nothing
			modes := []struct {
				name string
				run  func(rcsim.Scenario) (rcsim.Measurement, error)
			}{
				{"single", rcsim.Run},
				{"streaming", rcsim.RunStreaming},
				{"multi", func(s rcsim.Scenario) (rcsim.Measurement, error) {
					return rcsim.RunMulti(rcsim.MultiScenario{Scenario: s, Devices: 1, Topology: core.SharedChannel})
				}},
			}
			for _, mode := range modes {
				base := sc
				base.Faults = nil
				want, err := mode.run(base)
				if err != nil {
					t.Fatalf("%s fault-free: %v", mode.name, err)
				}
				withPlan := sc
				withPlan.Faults = zeroRate
				got, err := mode.run(withPlan)
				if err != nil {
					t.Fatalf("%s zero-rate plan: %v", mode.name, err)
				}
				if keyOf(got) != keyOf(want) {
					t.Errorf("%s: zero-rate plan measurement %+v != fault-free %+v",
						mode.name, keyOf(got), keyOf(want))
				}
			}
		})
	}
}

// TestFaultRunDeterminism: the same scenario with the same seed must
// yield an identical measurement and an identical event log, run after
// run — the reproducibility contract of package fault.
func TestFaultRunDeterminism(t *testing.T) {
	once := func() (rcsim.Measurement, []telemetry.Event) {
		sc := baseScenario(core.SingleBuffered)
		sc.Faults = &fault.Plan{Seed: 42, CRC: 0.1, DMA: 0.05, Upset: 0.1,
			DMAStall: 50 * sim.Microsecond, Policy: retryPolicy()}
		var sink telemetry.MemorySink
		sc.Events = &sink
		m, err := rcsim.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return m, sink.Events()
	}
	m1, ev1 := once()
	m2, ev2 := once()
	if keyOf(m1) != keyOf(m2) {
		t.Errorf("measurements differ across identical runs:\n%+v\n%+v", keyOf(m1), keyOf(m2))
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Errorf("event logs differ across identical runs (%d vs %d events)", len(ev1), len(ev2))
	}
	if m1.Retries == 0 {
		t.Error("expected the seeded plan to inject at least one retry")
	}
}

// TestFaultAccountingIdentity: on a strictly serial single-buffered
// schedule with no bandwidth degradation, every simulated picosecond
// is either useful work or fault loss, so the totals must tile the
// timeline exactly.
func TestFaultAccountingIdentity(t *testing.T) {
	sc := baseScenario(core.SingleBuffered)
	clean := rcsim.MustRun(sc)
	sc.Faults = &fault.Plan{Seed: 7, CRC: 0.1, DMA: 0.05, Upset: 0.05,
		DMAStall: 20 * sim.Microsecond, Policy: retryPolicy()}
	m, err := rcsim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Retries == 0 {
		t.Fatal("seeded plan injected no faults; pick a different seed")
	}
	if got, want := m.Total, m.WriteTotal+m.ReadTotal+m.CompTotal+m.FaultTime; got != want {
		t.Errorf("serial timeline does not tile: total %v != W+R+C+fault %v", got, want)
	}
	if m.Total <= clean.Total {
		t.Errorf("faulty total %v not above fault-free %v", m.Total, clean.Total)
	}
	if m.NominalTotal() != m.Total-m.FaultTime {
		t.Errorf("NominalTotal = %v, want %v", m.NominalTotal(), m.Total-m.FaultTime)
	}
	if uf := m.UtilFault(); uf <= 0 || uf >= 1 {
		t.Errorf("UtilFault = %g, want in (0,1)", uf)
	}
	// Successful work is unchanged by retries: the final attempt of
	// every operation runs at nominal speed on this plan.
	if m.WriteTotal != clean.WriteTotal || m.ReadTotal != clean.ReadTotal || m.CompTotal != clean.CompTotal {
		t.Errorf("useful-work totals changed under retries: W %v/%v R %v/%v C %v/%v",
			m.WriteTotal, clean.WriteTotal, m.ReadTotal, clean.ReadTotal, m.CompTotal, clean.CompTotal)
	}
}

// TestUpsetForcesRecompute: kernel upsets charge wasted executions
// into KernelCyclesTotal (the sustained-rate denominator) while
// CompTotal keeps only the trusted final runs.
func TestUpsetForcesRecompute(t *testing.T) {
	sc := baseScenario(core.SingleBuffered)
	clean := rcsim.MustRun(sc)
	sc.Faults = &fault.Plan{Seed: 3, Upset: 0.25, Policy: retryPolicy()}
	m, err := rcsim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Retries == 0 {
		t.Fatal("seeded plan injected no upsets; pick a different seed")
	}
	if m.CompTotal != clean.CompTotal {
		t.Errorf("CompTotal %v changed (want %v): recomputes must not count as useful work", m.CompTotal, clean.CompTotal)
	}
	wantCycles := clean.KernelCyclesTotal + m.Retries*1000 // fixedKernel(1000), upsets are the only fault
	if m.KernelCyclesTotal != wantCycles {
		t.Errorf("KernelCyclesTotal = %d, want %d (every recompute attempt charged)", m.KernelCyclesTotal, wantCycles)
	}
	if m.EffectiveOpsPerCycle(1) >= clean.EffectiveOpsPerCycle(1) {
		t.Error("recomputes should lower the effective sustained rate")
	}
}

// TestDegradationSlowsTransfers: age-based bandwidth decay stretches
// transfers without failing them; the excess over nominal is fault
// time even though no retry happens.
func TestDegradationSlowsTransfers(t *testing.T) {
	sc := baseScenario(core.SingleBuffered)
	clean := rcsim.MustRun(sc)
	sc.Faults = &fault.Plan{Seed: 1, AgeSlope: 0.1}
	m, err := rcsim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Retries != 0 || m.Failovers != 0 {
		t.Errorf("pure degradation should not retry or fail over (retries %d, failovers %d)", m.Retries, m.Failovers)
	}
	if m.WriteTotal <= clean.WriteTotal || m.ReadTotal <= clean.ReadTotal {
		t.Error("degraded transfers should take longer than nominal")
	}
	if want := (m.WriteTotal - clean.WriteTotal) + (m.ReadTotal - clean.ReadTotal); m.FaultTime != want {
		t.Errorf("FaultTime = %v, want the degradation excess %v", m.FaultTime, want)
	}
	if m.CompTotal != clean.CompTotal {
		t.Error("degradation must not touch kernel time")
	}
}

// TestRetriesExhausted: a hard (rate-1) transfer fault burns through
// the retry budget and fails the run in every mode, with a wrapped
// diagnostic instead of a panic or a deadlock.
func TestRetriesExhausted(t *testing.T) {
	plan := &fault.Plan{Seed: 1, CRC: 1,
		Policy: fault.Policy{Retries: 2, Backoff: sim.Microsecond, Growth: 2, FailoverDelay: sim.Millisecond}}
	modes := []struct {
		name string
		run  func(rcsim.Scenario) (rcsim.Measurement, error)
	}{
		{"single", rcsim.Run},
		{"streaming", rcsim.RunStreaming},
		{"multi", func(s rcsim.Scenario) (rcsim.Measurement, error) {
			return rcsim.RunMulti(rcsim.MultiScenario{Scenario: s, Devices: 2, Topology: core.SharedChannel})
		}},
	}
	for _, mode := range modes {
		sc := baseScenario(core.SingleBuffered)
		sc.Faults = plan
		_, err := mode.run(sc)
		if err == nil {
			t.Fatalf("%s: rate-1 CRC with 2 retries should fail the run", mode.name)
		}
		if !strings.Contains(err.Error(), "persisted through 3 attempt") {
			t.Errorf("%s: error %q does not report the exhausted attempts", mode.name, err)
		}
	}
}

// TestFailFastPolicy aborts on the first fault without retrying.
func TestFailFastPolicy(t *testing.T) {
	sc := baseScenario(core.SingleBuffered)
	sc.Faults = &fault.Plan{Seed: 1, CRC: 1,
		Policy: fault.Policy{Retries: 5, Backoff: sim.Microsecond, Growth: 2, FailFast: true}}
	m, err := rcsim.Run(sc)
	if err == nil || !strings.Contains(err.Error(), "fail-fast") {
		t.Fatalf("err = %v, want a fail-fast abort", err)
	}
	_ = m
}

// TestDropoutFailover: in a multi-FPGA run a dropped node's remaining
// sub-blocks reroute to a survivor; the run completes, pays the
// rebalance stall, and reports the failover.
func TestDropoutFailover(t *testing.T) {
	clean, err := rcsim.RunMulti(baseMulti(2, core.SharedChannel, core.SingleBuffered))
	if err != nil {
		t.Fatal(err)
	}
	// The dropout pattern is a pure function of the seed; scan for one
	// that drops exactly one of the two devices mid-run.
	for seed := uint64(1); seed <= 200; seed++ {
		ms := baseMulti(2, core.SharedChannel, core.SingleBuffered)
		ms.Faults = &fault.Plan{Seed: seed, Dropout: 0.05, Policy: retryPolicy()}
		m, err := rcsim.RunMulti(ms)
		if err != nil || m.Failovers == 0 {
			continue
		}
		if m.Failovers != 1 {
			t.Fatalf("seed %d: %d failovers from one surviving device", seed, m.Failovers)
		}
		if m.FaultTime < sim.Millisecond {
			t.Errorf("FaultTime %v below the rebalance stall", m.FaultTime)
		}
		if m.Total <= clean.Total {
			t.Errorf("failover run total %v not above fault-free %v", m.Total, clean.Total)
		}
		return
	}
	t.Fatal("no seed in 1..200 produced a survivable single dropout")
}

// TestDropoutWithoutRecovery: when every device drops, or the policy
// forbids failover, the run must fail with a specific diagnostic.
func TestDropoutWithoutRecovery(t *testing.T) {
	noFailover := fault.Policy{Retries: 3, Backoff: sim.Microsecond, Growth: 2, Failover: false}
	cases := []struct {
		name string
		plan *fault.Plan
		want string
	}{
		{"no-survivor", &fault.Plan{Seed: 1, Dropout: 1, Policy: retryPolicy()}, "no surviving failover target"},
		{"no-failover", &fault.Plan{Seed: 1, Dropout: 1, Policy: noFailover}, "no failover"},
		{"fail-fast", &fault.Plan{Seed: 1, Dropout: 1,
			Policy: fault.Policy{Retries: 3, Backoff: sim.Microsecond, Growth: 2, FailFast: true}}, "fail-fast"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ms := baseMulti(2, core.SharedChannel, core.SingleBuffered)
			ms.Faults = tc.plan
			_, err := rcsim.RunMulti(ms)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestNegativeKernelCyclesRejected: a kernel callback returning a
// negative cycle count is a scenario bug and must surface as a wrapped
// ErrBadScenario at run time, not a panic, in all three modes.
func TestNegativeKernelCyclesRejected(t *testing.T) {
	modes := []struct {
		name string
		run  func(rcsim.Scenario) (rcsim.Measurement, error)
	}{
		{"single", rcsim.Run},
		{"streaming", rcsim.RunStreaming},
		{"multi", func(s rcsim.Scenario) (rcsim.Measurement, error) {
			return rcsim.RunMulti(rcsim.MultiScenario{Scenario: s, Devices: 2, Topology: core.SharedChannel})
		}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			sc := baseScenario(core.SingleBuffered)
			sc.KernelCycles = func(iter, _ int) int64 {
				if iter == 3 {
					return -5
				}
				return 1000
			}
			_, err := mode.run(sc)
			if err == nil {
				t.Fatal("negative kernel cycles accepted")
			}
			if !errors.Is(err, rcsim.ErrBadScenario) {
				t.Errorf("err = %v, want ErrBadScenario", err)
			}
			if !strings.Contains(err.Error(), "negative cycle count") {
				t.Errorf("err = %v, want a negative-cycle diagnostic", err)
			}
		})
	}
}

// TestFaultSweepMonotone: for a fixed seed, raising the CRC rate can
// only add faults (the draw for each attempt is fixed), so execution
// time and retry counts must be non-decreasing across the sweep — the
// degradation-study property the harness reports.
func TestFaultSweepMonotone(t *testing.T) {
	rates := []float64{0, 0.01, 0.03, 0.05, 0.1, 0.2}
	var prev rcsim.Measurement
	for i, r := range rates {
		sc := baseScenario(core.SingleBuffered)
		if r > 0 {
			sc.Faults = &fault.Plan{Seed: 99, CRC: r, Policy: retryPolicy()}
		}
		m, err := rcsim.Run(sc)
		if err != nil {
			t.Fatalf("rate %g: %v", r, err)
		}
		if i > 0 {
			if m.Total < prev.Total {
				t.Errorf("total at rate %g (%v) below rate %g (%v)", r, m.Total, rates[i-1], prev.Total)
			}
			if m.Retries < prev.Retries {
				t.Errorf("retries at rate %g (%d) below rate %g (%d)", r, m.Retries, rates[i-1], prev.Retries)
			}
		}
		prev = m
	}
	if prev.Retries == 0 {
		t.Error("the top of the sweep should have injected retries")
	}
}

// goldenJSONL runs the event log through the JSONL sink and compares
// it byte for byte with the named golden file (regenerate with
// go test ./internal/rcsim -run Golden -update).
func goldenJSONL(t *testing.T, name string, events []telemetry.Event) {
	t.Helper()
	var buf bytes.Buffer
	sink := telemetry.NewWriterSink(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("event log drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, buf.Bytes(), want)
	}
}

// TestFaultEventLogGolden pins the full fault/retry/recovery event
// stream of a seeded run — the regression net for both determinism and
// the event schema.
func TestFaultEventLogGolden(t *testing.T) {
	sc := baseScenario(core.SingleBuffered)
	sc.Faults = &fault.Plan{Seed: 42, CRC: 0.1, Upset: 0.1, Policy: retryPolicy()}
	var sink telemetry.MemorySink
	sc.Events = &sink
	m, err := rcsim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Retries == 0 {
		t.Fatal("golden scenario injected no faults; its net catches nothing")
	}
	goldenJSONL(t, "fault_events.jsonl", sink.Events())
}

// TestStreamingEventSequenceGolden pins RunStreaming's event emission
// order and timestamps against a golden JSONL log.
func TestStreamingEventSequenceGolden(t *testing.T) {
	sc := baseScenario(core.SingleBuffered) // Buffering is ignored by RunStreaming
	var sink telemetry.MemorySink
	sc.Events = &sink
	if _, err := rcsim.RunStreaming(sc); err != nil {
		t.Fatal(err)
	}
	events := sink.Events()
	n := sc.Iterations
	if len(events) != 3*n {
		t.Fatalf("streaming emitted %d events, want %d", len(events), 3*n)
	}
	goldenJSONL(t, "streaming_events.jsonl", events)
}

// TestFaultMetricsRecorded: the recovery counters and gauges land in
// the registry namespace documented in docs/OBSERVABILITY.md.
func TestFaultMetricsRecorded(t *testing.T) {
	sc := baseScenario(core.SingleBuffered)
	sc.Faults = &fault.Plan{Seed: 42, CRC: 0.1, Upset: 0.1, Policy: retryPolicy()}
	m, err := rcsim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	m.RecordMetrics(reg)
	s := reg.Snapshot()
	if s.Counters["rcsim.retries"] != m.Retries {
		t.Errorf("rcsim.retries = %d, want %d", s.Counters["rcsim.retries"], m.Retries)
	}
	if got := s.Gauges["rcsim.fault_seconds"]; got != m.FaultTime.Seconds() {
		t.Errorf("rcsim.fault_seconds = %g, want %g", got, m.FaultTime.Seconds())
	}
	if got := s.Gauges["rcsim.util_fault"]; got != m.UtilFault() {
		t.Errorf("rcsim.util_fault = %g, want %g", got, m.UtilFault())
	}
}
