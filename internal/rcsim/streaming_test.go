package rcsim_test

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/trace"
)

// TestStreamingMatchesAnalyticModel: on an ideal platform the
// simulated streaming run equals PredictStreaming's steady state plus
// its fill term, within quantization.
func TestStreamingMatchesAnalyticModel(t *testing.T) {
	f := func(c randomCase) bool {
		sp, err := core.PredictStreaming(c.Params)
		if err != nil {
			return false
		}
		m, err := rcsim.RunStreaming(scenarioFor(c.Params, core.SingleBuffered))
		if err != nil {
			return false
		}
		quant := float64(c.Params.Soft.Iterations) * (1/c.Params.Comp.ClockHz + 1e-11)
		lo := sp.TRCStream - quant - 1e-9*sp.TRCStream
		hi := sp.TRCStream + sp.TFill + quant + 1e-9*sp.TRCStream
		return m.TRC() >= lo && m.TRC() <= hi
	}
	if err := quick.Check(f, caseCfg()); err != nil {
		t.Error(err)
	}
}

// TestStreamingNeverSlowerThanDoubleBuffered: independent full-duplex
// channels can only help.
func TestStreamingNeverSlowerThanDoubleBuffered(t *testing.T) {
	f := func(c randomCase) bool {
		db, err := rcsim.Run(scenarioFor(c.Params, core.DoubleBuffered))
		if err != nil {
			return false
		}
		st, err := rcsim.RunStreaming(scenarioFor(c.Params, core.SingleBuffered))
		if err != nil {
			return false
		}
		return st.Total <= db.Total+1 // one picosecond of rounding slack
	}
	if err := quick.Check(f, caseCfg()); err != nil {
		t.Error(err)
	}
}

// TestStreamingBalancedStages: with write, compute and read each
// taking the same time, streaming sustains one block per stage-time —
// the strict 2x advantage over double buffering that core's analytic
// test establishes, reproduced in simulation.
func TestStreamingBalancedStages(t *testing.T) {
	p := core.Parameters{
		Dataset: core.DatasetParams{ElementsIn: 1000, ElementsOut: 1000, BytesPerElement: 4},
		Comm:    core.CommParams{IdealThroughput: core.MBps(100), AlphaWrite: 0.5, AlphaRead: 0.5},
		Comp:    core.CompParams{OpsPerElement: 10, ThroughputProc: 1, ClockHz: 1.25e8},
		Soft:    core.SoftwareParams{TSoft: 1, Iterations: 100},
	}
	st, err := rcsim.RunStreaming(scenarioFor(p, core.SingleBuffered))
	if err != nil {
		t.Fatal(err)
	}
	db, err := rcsim.Run(scenarioFor(p, core.DoubleBuffered))
	if err != nil {
		t.Fatal(err)
	}
	ratio := db.TRC() / st.TRC()
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("DB/stream ratio = %.3f, want ~2 for balanced stages", ratio)
	}
}

// TestStreamingOverlap: the three stages genuinely overlap — the
// recorded comm/comp overlap covers most of the communication time
// (streaming writes run ahead of the slower compute stage, so the
// write stream finishes early and only partially overlaps it).
func TestStreamingOverlap(t *testing.T) {
	sc := baseScenario(core.SingleBuffered)
	sc.Iterations = 50
	var rec trace.Recorder
	sc.Trace = &rec
	m, err := rcsim.RunStreaming(sc)
	if err != nil {
		t.Fatal(err)
	}
	comm := (m.WriteTotal + m.ReadTotal).Seconds()
	if m.OverlapTotal.Seconds() < 0.6*comm {
		t.Errorf("streaming overlap %.3e too small vs comm %.3e",
			m.OverlapTotal.Seconds(), comm)
	}
	if m.OverlapTotal == 0 {
		t.Error("no overlap recorded")
	}
}

// TestStreamingZeroOutput: result-free scenarios stream without read
// stages.
func TestStreamingZeroOutput(t *testing.T) {
	sc := baseScenario(core.SingleBuffered)
	sc.ElementsOut = 0
	m, err := rcsim.RunStreaming(sc)
	if err != nil {
		t.Fatal(err)
	}
	if m.ReadTotal != 0 {
		t.Errorf("ReadTotal = %v", m.ReadTotal)
	}
	// Steady state: max(t_write, t_comp) = t_comp = 10us per iter.
	want := 10 * 10e-6
	if m.TRC() < want || m.TRC() > want+4e-6+1e-12 {
		t.Errorf("TRC = %.6e, want ~%.6e + fill", m.TRC(), want)
	}
}

func TestStreamingValidation(t *testing.T) {
	sc := baseScenario(core.SingleBuffered)
	sc.Iterations = 0
	if _, err := rcsim.RunStreaming(sc); err == nil {
		t.Error("invalid scenario accepted")
	}
}
