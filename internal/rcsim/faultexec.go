package rcsim

import (
	"fmt"

	"github.com/chrec/rat/internal/fault"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/sim"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/trace"
)

// execCtx is the fault-aware executor shared by the three run modes:
// it schedules each transfer and kernel execution as a sequence of
// attempts governed by the scenario's fault.Plan, charging wasted
// attempts, DMA stalls and retry backoff into the discrete-event
// timeline and the Measurement's recovery accounting. With no armed
// injector every operation is a single clean attempt, reproducing the
// fault-free timeline bit for bit.
type execCtx struct {
	s   *sim.Simulator
	inj *fault.Injector
	sc  *Scenario
	m   *Measurement
	err error
}

// newExecCtx validates and arms the scenario's fault plan. Callers
// run Scenario.Validate first, so arming cannot fail here; the error
// return guards against direct misuse.
func newExecCtx(s *sim.Simulator, sc *Scenario, m *Measurement) (*execCtx, error) {
	inj, err := fault.NewInjector(sc.Faults)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadScenario, err)
	}
	return &execCtx{s: s, inj: inj, sc: sc, m: m}, nil
}

// fail records the first abort error. Once set, in-flight event
// chains stop scheduling and the run returns the error after the
// calendar drains.
func (x *execCtx) fail(err error) {
	if x.err == nil {
		x.err = err
	}
}

// faultSpan charges one wasted interval into the measurement, the
// trace and the event log.
func (x *execCtx) faultSpan(k fault.Kind, device, iter, attempt int, start, end sim.Time, bytes, cycles int64) {
	x.m.FaultTime += end - start
	x.sc.Trace.Add(trace.Span{Kind: trace.Fault, Iter: iter, Start: start, End: end})
	x.sc.emit(telemetry.Event{Kind: telemetry.EventFault, Iter: iter, Device: device,
		StartPs: int64(start), EndPs: int64(end), Bytes: bytes, Cycles: cycles,
		Attempt: attempt + 1, Detail: string(k)})
}

// retryOrFail decides the fate of an operation after a failed
// attempt: it either charges the backoff and hands the next attempt
// index to resume, or fails the run (fail-fast, or retries
// exhausted). what names the operation for the error message.
func (x *execCtx) retryOrFail(k fault.Kind, what string, device, iter, attempt int, resume func(attempt int)) {
	pol := x.inj.Policy()
	if pol.FailFast {
		x.fail(fmt.Errorf("rcsim: %s iteration %d device %d: %s (fail-fast policy)", what, iter, device, k))
		return
	}
	if attempt >= pol.Retries {
		x.fail(fmt.Errorf("rcsim: %s iteration %d device %d: %s persisted through %d attempt(s)",
			what, iter, device, k, attempt+1))
		return
	}
	x.m.Retries++
	backoff := pol.BackoffFor(attempt + 1)
	now := x.s.Now()
	x.m.FaultTime += backoff
	x.sc.emit(telemetry.Event{Kind: telemetry.EventRetry, Iter: iter, Device: device,
		StartPs: int64(now), EndPs: int64(now + backoff),
		Attempt: attempt + 2, Detail: string(k)})
	x.s.Schedule(backoff, func() { resume(attempt + 1) })
}

// transfer schedules one logical transfer (holding whatever resource
// the caller acquired across all attempts), accumulating the
// successful span into acc. On success it calls release (if
// non-nil), then done, in that order — matching the fault-free
// schedule's Release-before-continue convention.
func (x *execCtx) transfer(dir platform.Direction, device, iter int, bytes int64, backToBack bool, acc *sim.Time, release, done func()) {
	ic := x.sc.Platform.Interconnect
	op, evKind, tKind := fault.OpWrite, telemetry.EventWrite, trace.Write
	if dir == platform.Read {
		op, evKind, tKind = fault.OpRead, telemetry.EventRead, trace.Read
	}
	nominal := ic.TransferTime(dir, bytes, backToBack)
	var attempt func(try int)
	attempt = func(try int) {
		if x.err != nil {
			return
		}
		start := x.s.Now()
		dur := x.inj.Degrade(nominal, bytes, iter)
		switch k := x.inj.TransferFault(op, device, iter, try); k {
		case fault.None:
			x.s.Schedule(dur, func() {
				end := x.s.Now()
				// Degradation slows the wire without failing the
				// transfer; the excess over the healthy-platform
				// time is lost time. (Failed attempts charge their
				// whole span, degradation included.)
				x.m.FaultTime += dur - nominal
				x.sc.Trace.Add(trace.Span{Kind: tKind, Iter: iter, Start: start, End: end})
				x.sc.emit(telemetry.Event{Kind: evKind, Iter: iter, Device: device,
					StartPs: int64(start), EndPs: int64(end), Bytes: bytes})
				*acc += end - start
				if release != nil {
					release()
				}
				done()
			})
		case fault.CRCError:
			// The transfer runs to completion, then fails its check:
			// the whole (possibly degraded) wire time is wasted.
			x.s.Schedule(dur, func() {
				x.faultSpan(k, device, iter, try, start, x.s.Now(), bytes, 0)
				x.retryOrFail(k, dir.String()+" transfer", device, iter, try, attempt)
			})
		case fault.DMATimeout:
			// The DMA engine hangs; the host waits out the stall.
			x.s.Schedule(x.inj.Plan().DMAStall, func() {
				x.faultSpan(k, device, iter, try, start, x.s.Now(), bytes, 0)
				x.retryOrFail(k, dir.String()+" transfer", device, iter, try, attempt)
			})
		}
	}
	attempt(0)
}

// compute schedules one logical kernel execution. The cycle count is
// drawn once from the scenario callback and reused by recompute
// attempts (an upset does not change the work). KernelCyclesTotal
// accumulates every executed attempt — wasted recomputes included —
// so EffectiveOpsPerCycle reports the truly sustained rate; CompTotal
// keeps only the useful (final) execution, like the transfer totals.
func (x *execCtx) compute(device, iter, elements int, clock sim.Clock, release, done func()) {
	if x.err != nil {
		return
	}
	cycles := x.sc.KernelCycles(iter, elements)
	if cycles < 0 {
		x.fail(fmt.Errorf("%w: kernel returned negative cycle count %d at iteration %d", ErrBadScenario, cycles, iter))
		return
	}
	dur := clock.Cycles(cycles)
	var attempt func(try int)
	attempt = func(try int) {
		if x.err != nil {
			return
		}
		start := x.s.Now()
		x.m.KernelCyclesTotal += cycles
		x.s.Schedule(dur, func() {
			end := x.s.Now()
			if k := x.inj.KernelFault(device, iter, try); k != fault.None {
				x.faultSpan(k, device, iter, try, start, end, 0, cycles)
				x.retryOrFail(k, "kernel execution", device, iter, try, attempt)
				return
			}
			x.sc.Trace.Add(trace.Span{Kind: trace.Compute, Iter: iter, Start: start, End: end})
			x.sc.emit(telemetry.Event{Kind: telemetry.EventCompute, Iter: iter, Device: device,
				StartPs: int64(start), EndPs: int64(end), Cycles: cycles})
			x.m.CompTotal += end - start
			if release != nil {
				release()
			}
			done()
		})
	}
	attempt(0)
}

// dropout handles the multi-FPGA node-dropout hazard for device d at
// iteration i. It returns true when the caller must stop: either the
// run failed, or the takeover was scheduled to resume after the
// failover delay. Dropout is decided at iteration boundaries, so no
// in-flight work is lost — the dropped node's remaining sub-blocks
// reroute to target's resources via the routing the caller installed.
func (x *execCtx) dropout(d, i int, dropped []bool, resume func()) bool {
	if x.err != nil {
		return true
	}
	if dropped[d] || !x.inj.NodeDropout(d, i) {
		return false
	}
	dropped[d] = true
	pol := x.inj.Policy()
	target, ok := -1, false
	for dd := range dropped {
		if !dropped[dd] {
			target, ok = dd, true
			break
		}
	}
	switch {
	case pol.FailFast:
		x.fail(fmt.Errorf("rcsim: device %d dropped out at iteration %d (fail-fast policy)", d, i))
	case !pol.Failover:
		x.fail(fmt.Errorf("rcsim: device %d dropped out at iteration %d and the policy has no failover", d, i))
	case !ok:
		x.fail(fmt.Errorf("rcsim: device %d dropped out at iteration %d with no surviving failover target", d, i))
	default:
		x.m.Failovers++
		now := x.s.Now()
		delay := pol.FailoverDelay
		x.m.FaultTime += delay
		x.sc.Trace.Add(trace.Span{Kind: trace.Fault, Iter: i, Start: now, End: now + delay})
		x.sc.emit(telemetry.Event{Kind: telemetry.EventFailover, Iter: i, Device: d,
			StartPs: int64(now), EndPs: int64(now + delay),
			Detail: fmt.Sprintf("%s: rerouting to device %d", fault.NodeDropout, target)})
		x.s.Schedule(delay, resume)
	}
	return true
}
