package rcsim_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/rcsim"
)

// randomCase is one randomly drawn worksheet/scenario pair sharing the
// same parameters, on an overhead-free platform where the analytic
// model is exact.
type randomCase struct {
	Params core.Parameters
}

func genCase(r *rand.Rand) randomCase {
	return randomCase{
		Params: core.Parameters{
			Dataset: core.DatasetParams{
				ElementsIn:      1 + r.Int63n(65536),
				ElementsOut:     r.Int63n(65536),
				BytesPerElement: float64(1 + r.Intn(64)),
			},
			Comm: core.CommParams{
				IdealThroughput: core.MBps(float64(10 + r.Intn(4000))),
				AlphaWrite:      0.05 + 0.95*r.Float64(),
				AlphaRead:       0.05 + 0.95*r.Float64(),
			},
			Comp: core.CompParams{
				OpsPerElement:  float64(1 + r.Intn(10000)),
				ThroughputProc: float64(1 + r.Intn(64)),
				ClockHz:        core.MHz(float64(25 + r.Intn(400))),
			},
			Soft: core.SoftwareParams{
				TSoft:      1,
				Iterations: 1 + r.Int63n(40),
			},
		},
	}
}

func caseCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 120,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(genCase(r))
		},
	}
}

// scenarioFor builds the exact simulated equivalent of a worksheet on
// an overhead-free platform.
func scenarioFor(p core.Parameters, b core.Buffering) rcsim.Scenario {
	wl := platform.Link{Rate: []platform.RatePoint{
		{Bytes: 1, Bps: p.Comm.AlphaWrite * p.Comm.IdealThroughput},
		{Bytes: 1 << 40, Bps: p.Comm.AlphaWrite * p.Comm.IdealThroughput},
	}}
	rl := platform.Link{Rate: []platform.RatePoint{
		{Bytes: 1, Bps: p.Comm.AlphaRead * p.Comm.IdealThroughput},
		{Bytes: 1 << 40, Bps: p.Comm.AlphaRead * p.Comm.IdealThroughput},
	}}
	return rcsim.Scenario{
		Name: "property",
		Platform: platform.Platform{
			Name: "ideal",
			Interconnect: platform.Interconnect{
				Name: "ideal", IdealBps: p.Comm.IdealThroughput, WriteLink: wl, ReadLink: rl,
			},
		},
		ClockHz:         p.Comp.ClockHz,
		Buffering:       b,
		Iterations:      int(p.Soft.Iterations),
		ElementsIn:      int(p.Dataset.ElementsIn),
		ElementsOut:     int(p.Dataset.ElementsOut),
		BytesPerElement: int(p.Dataset.BytesPerElement),
		KernelCycles: func(_, elements int) int64 {
			return int64(math.Round(float64(elements) * p.Comp.OpsPerElement / p.Comp.ThroughputProc))
		},
	}
}

// TestPropertySimulationMatchesEq5: for any random worksheet, the
// single-buffered simulation on an ideal platform lands on Eq. (5)
// within cycle/picosecond quantization.
func TestPropertySimulationMatchesEq5(t *testing.T) {
	f := func(c randomCase) bool {
		pr, err := core.Predict(c.Params)
		if err != nil {
			return false
		}
		m, err := rcsim.Run(scenarioFor(c.Params, core.SingleBuffered))
		if err != nil {
			return false
		}
		// One rounded cycle per iteration plus picosecond rounding.
		quant := float64(c.Params.Soft.Iterations) * (1/c.Params.Comp.ClockHz + 1e-11)
		return math.Abs(m.TRC()-pr.TRCSingle) <= quant+1e-9*pr.TRCSingle
	}
	if err := quick.Check(f, caseCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropertySimulationBracketsEq6: the double-buffered simulation
// lands between the Eq. (6) steady state and steady state plus one
// fill/drain period.
func TestPropertySimulationBracketsEq6(t *testing.T) {
	f := func(c randomCase) bool {
		pr, err := core.Predict(c.Params)
		if err != nil {
			return false
		}
		m, err := rcsim.Run(scenarioFor(c.Params, core.DoubleBuffered))
		if err != nil {
			return false
		}
		quant := float64(c.Params.Soft.Iterations) * (1/c.Params.Comp.ClockHz + 1e-11)
		lo := pr.TRCDouble - quant - 1e-9*pr.TRCDouble
		hi := pr.TRCDouble + pr.TComm + pr.TComp + quant + 1e-9*pr.TRCDouble
		return m.TRC() >= lo && m.TRC() <= hi
	}
	if err := quick.Check(f, caseCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropertyDisciplineDominance: simulated DB never loses to
// simulated SB on any random scenario.
func TestPropertyDisciplineDominance(t *testing.T) {
	f := func(c randomCase) bool {
		sb, err := rcsim.Run(scenarioFor(c.Params, core.SingleBuffered))
		if err != nil {
			return false
		}
		db, err := rcsim.Run(scenarioFor(c.Params, core.DoubleBuffered))
		if err != nil {
			return false
		}
		return db.Total <= sb.Total
	}
	if err := quick.Check(f, caseCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropertyMeasuredUtilizationsMatchEq8and9: on the ideal platform
// the simulated single-buffered utilizations equal Eqs. (8)-(9).
func TestPropertyMeasuredUtilizations(t *testing.T) {
	f := func(c randomCase) bool {
		pr, err := core.Predict(c.Params)
		if err != nil {
			return false
		}
		m, err := rcsim.Run(scenarioFor(c.Params, core.SingleBuffered))
		if err != nil {
			return false
		}
		return math.Abs(m.UtilComm()-pr.UtilCommSB) < 0.02 &&
			math.Abs(m.UtilComp()-pr.UtilCompSB) < 0.02
	}
	if err := quick.Check(f, caseCfg()); err != nil {
		t.Error(err)
	}
}
