package rcsim

import "github.com/chrec/rat/internal/telemetry"

// RecordMetrics writes the measurement into reg under the rcsim.*
// namespace: run/iteration/cycle counters accumulate across calls,
// while the per-run gauges hold the most recent measurement. The
// names are documented in docs/OBSERVABILITY.md. A nil registry is a
// no-op, matching the package's nil-Trace convention.
func (m Measurement) RecordMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("rcsim.runs").Inc()
	reg.Counter("rcsim.iterations").Add(int64(m.Scenario.Iterations))
	reg.Counter("rcsim.kernel_cycles").Add(m.KernelCyclesTotal)
	reg.Gauge("rcsim.t_rc_seconds").Set(m.TRC())
	reg.Gauge("rcsim.t_comm_seconds_per_iter").Set(m.TComm())
	reg.Gauge("rcsim.t_comp_seconds_per_iter").Set(m.TComp())
	reg.Gauge("rcsim.util_comm").Set(m.UtilComm())
	reg.Gauge("rcsim.util_comp").Set(m.UtilComp())
	reg.Gauge("rcsim.overlap_seconds").Set(m.OverlapTotal.Seconds())
	reg.Counter("rcsim.retries").Add(m.Retries)
	reg.Counter("rcsim.failovers").Add(m.Failovers)
	reg.Gauge("rcsim.fault_seconds").Set(m.FaultTime.Seconds())
	reg.Gauge("rcsim.util_fault").Set(m.UtilFault())
}
