package rcsim

import (
	"fmt"

	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/sim"
)

// RunStreaming executes the scenario under the streaming discipline of
// core.PredictStreaming (the Section 3.1 adjustment): input transfer,
// computation and result transfer form a three-stage pipeline over
// independent full-duplex channels, so blocks flow continuously and
// the steady-state rate is set by the slowest stage. The Buffering
// field of the scenario is ignored.
//
// Within each stage, blocks proceed strictly in order; a stage starts
// block i as soon as its own previous block and the upstream stage's
// block i are done. On an overhead-free platform the total lands on
// N_iter * max(t_write, t_comp, t_read) plus the fill of the two
// faster stages — exactly the analytic streaming model.
func RunStreaming(sc Scenario) (Measurement, error) {
	if err := sc.Validate(); err != nil {
		return Measurement{}, err
	}
	var (
		s        = sim.New()
		writeBus = sim.NewResource(s, "write-channel")
		readBus  = sim.NewResource(s, "read-channel")
		clock    = sc.Platform.Clock(sc.ClockHz)
		n        = sc.Iterations

		bytesIn  = int64(sc.ElementsIn) * int64(sc.BytesPerElement)
		bytesOut = int64(sc.ElementsOut) * int64(sc.BytesPerElement)

		m = Measurement{Scenario: sc}
	)
	st, _ := newIterScratch(n, make([]bool, 6*n))
	writeStarted, writeDone := st.writeStarted, st.writeDone
	compStarted, compDone := st.compStarted, st.compDone
	readStarted, readDone := st.readStarted, st.readDone
	s.Reserve(n * calendarEventsPerIter)

	x, err := newExecCtx(s, &sc, &m)
	if err != nil {
		return Measurement{}, err
	}

	var tryWrite, tryCompute, tryRead func(i int)

	tryWrite = func(i int) {
		if i >= n || writeStarted[i] {
			return
		}
		if i > 0 && !writeDone[i-1] {
			return // the write channel streams blocks in order
		}
		writeStarted[i] = true
		writeBus.Acquire(func() {
			x.transfer(platform.Write, 0, i, bytesIn, i > 0, &m.WriteTotal, writeBus.Release, func() {
				writeDone[i] = true
				tryCompute(i)
				tryWrite(i + 1)
			})
		})
	}

	tryCompute = func(i int) {
		if i >= n || compStarted[i] || !writeDone[i] {
			return
		}
		if i > 0 && !compDone[i-1] {
			return
		}
		compStarted[i] = true
		x.compute(0, i, sc.ElementsIn, clock, nil, func() {
			compDone[i] = true
			tryRead(i)
			tryCompute(i + 1)
		})
	}

	tryRead = func(i int) {
		if i >= n || readStarted[i] || !compDone[i] {
			return
		}
		if i > 0 && !readDone[i-1] {
			return
		}
		readStarted[i] = true
		if bytesOut == 0 {
			readDone[i] = true
			tryRead(i + 1)
			return
		}
		readBus.Acquire(func() {
			x.transfer(platform.Read, 0, i, bytesOut, i > 0, &m.ReadTotal, readBus.Release, func() {
				readDone[i] = true
				tryRead(i + 1)
			})
		})
	}

	tryWrite(0)
	m.Total = s.Run()

	if x.err != nil {
		return Measurement{}, x.err
	}
	for i := 0; i < n; i++ {
		if !readDone[i] {
			return Measurement{}, fmt.Errorf("rcsim: streaming scenario %q deadlocked at iteration %d", sc.Name, i)
		}
	}
	if sc.Trace != nil {
		m.OverlapTotal = sc.Trace.Overlap()
	}
	return m, nil
}
