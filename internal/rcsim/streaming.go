package rcsim

import (
	"fmt"

	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/sim"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/trace"
)

// RunStreaming executes the scenario under the streaming discipline of
// core.PredictStreaming (the Section 3.1 adjustment): input transfer,
// computation and result transfer form a three-stage pipeline over
// independent full-duplex channels, so blocks flow continuously and
// the steady-state rate is set by the slowest stage. The Buffering
// field of the scenario is ignored.
//
// Within each stage, blocks proceed strictly in order; a stage starts
// block i as soon as its own previous block and the upstream stage's
// block i are done. On an overhead-free platform the total lands on
// N_iter * max(t_write, t_comp, t_read) plus the fill of the two
// faster stages — exactly the analytic streaming model.
func RunStreaming(sc Scenario) (Measurement, error) {
	if err := sc.Validate(); err != nil {
		return Measurement{}, err
	}
	var (
		s        = sim.New()
		writeBus = sim.NewResource(s, "write-channel")
		readBus  = sim.NewResource(s, "read-channel")
		ic       = sc.Platform.Interconnect
		clock    = sc.Platform.Clock(sc.ClockHz)
		n        = sc.Iterations

		bytesIn  = int64(sc.ElementsIn) * int64(sc.BytesPerElement)
		bytesOut = int64(sc.ElementsOut) * int64(sc.BytesPerElement)

		writeStarted = make([]bool, n)
		writeDone    = make([]bool, n)
		compStarted  = make([]bool, n)
		compDone     = make([]bool, n)
		readStarted  = make([]bool, n)
		readDone     = make([]bool, n)

		m = Measurement{Scenario: sc}
	)

	var tryWrite, tryCompute, tryRead func(i int)

	tryWrite = func(i int) {
		if i >= n || writeStarted[i] {
			return
		}
		if i > 0 && !writeDone[i-1] {
			return // the write channel streams blocks in order
		}
		writeStarted[i] = true
		writeBus.Acquire(func() {
			start := s.Now()
			dur := ic.TransferTime(platform.Write, bytesIn, i > 0)
			s.Schedule(dur, func() {
				sc.Trace.Add(trace.Span{Kind: trace.Write, Iter: i, Start: start, End: s.Now()})
				sc.emit(telemetry.Event{Kind: telemetry.EventWrite, Iter: i,
					StartPs: int64(start), EndPs: int64(s.Now()), Bytes: bytesIn})
				m.WriteTotal += s.Now() - start
				writeBus.Release()
				writeDone[i] = true
				tryCompute(i)
				tryWrite(i + 1)
			})
		})
	}

	tryCompute = func(i int) {
		if i >= n || compStarted[i] || !writeDone[i] {
			return
		}
		if i > 0 && !compDone[i-1] {
			return
		}
		compStarted[i] = true
		start := s.Now()
		cycles := sc.KernelCycles(i, sc.ElementsIn)
		if cycles < 0 {
			panic(fmt.Sprintf("rcsim: kernel returned negative cycle count %d", cycles))
		}
		m.KernelCyclesTotal += cycles
		s.Schedule(clock.Cycles(cycles), func() {
			sc.Trace.Add(trace.Span{Kind: trace.Compute, Iter: i, Start: start, End: s.Now()})
			sc.emit(telemetry.Event{Kind: telemetry.EventCompute, Iter: i,
				StartPs: int64(start), EndPs: int64(s.Now()), Cycles: cycles})
			m.CompTotal += s.Now() - start
			compDone[i] = true
			tryRead(i)
			tryCompute(i + 1)
		})
	}

	tryRead = func(i int) {
		if i >= n || readStarted[i] || !compDone[i] {
			return
		}
		if i > 0 && !readDone[i-1] {
			return
		}
		readStarted[i] = true
		if bytesOut == 0 {
			readDone[i] = true
			tryRead(i + 1)
			return
		}
		readBus.Acquire(func() {
			start := s.Now()
			dur := ic.TransferTime(platform.Read, bytesOut, i > 0)
			s.Schedule(dur, func() {
				sc.Trace.Add(trace.Span{Kind: trace.Read, Iter: i, Start: start, End: s.Now()})
				sc.emit(telemetry.Event{Kind: telemetry.EventRead, Iter: i,
					StartPs: int64(start), EndPs: int64(s.Now()), Bytes: bytesOut})
				m.ReadTotal += s.Now() - start
				readBus.Release()
				readDone[i] = true
				tryRead(i + 1)
			})
		})
	}

	tryWrite(0)
	m.Total = s.Run()

	for i := 0; i < n; i++ {
		if !readDone[i] {
			return Measurement{}, fmt.Errorf("rcsim: streaming scenario %q deadlocked at iteration %d", sc.Name, i)
		}
	}
	if sc.Trace != nil {
		m.OverlapTotal = sc.Trace.Overlap()
	}
	return m, nil
}
