// Package rcsim simulates an application design executing on an RC
// platform: N_iter iterations of host-to-FPGA input transfer, kernel
// computation and FPGA-to-host result transfer, under single- or
// double-buffered overlap, against the interconnect timing models of
// package platform and a cycle-accurate kernel timing callback.
//
// This is the reproduction's stand-in for the paper's "actual" columns:
// where the authors measured their Nallatech and XtremeData testbeds,
// we measure this simulation. It deliberately includes the non-ideal
// behaviours RAT's analytic model abstracts away — per-transfer setup
// latency, back-to-back transfer overhead, size-dependent sustained
// rates, pipeline fill and stalls — so predicted-vs-measured
// comparisons exercise the methodology the way real hardware did.
package rcsim

import (
	"errors"
	"fmt"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/fault"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/sim"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/trace"
)

// Scenario describes one simulated run.
type Scenario struct {
	Name      string
	Platform  platform.Platform
	ClockHz   float64
	Buffering core.Buffering

	// Iterations, ElementsIn, ElementsOut and BytesPerElement have
	// their worksheet meanings (core.Parameters). ElementsOut may
	// be zero for designs that keep results on chip until a final
	// drain the scenario does not model.
	Iterations      int
	ElementsIn      int
	ElementsOut     int
	BytesPerElement int

	// KernelCycles returns the kernel execution time, in cycles, of
	// iteration iter over a batch of elements. Data-dependent
	// designs (the MD study) return different counts per iteration.
	KernelCycles func(iter, elements int) int64

	// Trace, when non-nil, receives the full activity timeline.
	Trace *trace.Recorder

	// Events, when non-nil, receives a structured record of every
	// transfer, kernel execution and buffer swap as it completes
	// (package telemetry's JSONL event schema).
	Events telemetry.EventSink

	// Faults, when non-nil and enabled, injects deterministic
	// platform misbehaviour — transfer CRC errors and DMA timeouts
	// with retry, bandwidth degradation, transient kernel upsets
	// forcing recomputation, and (multi-FPGA runs only) node dropout
	// with failover — governed by the plan's seed and recovery
	// policy. A nil or all-zero plan reproduces the fault-free
	// timeline bit for bit. See docs/FAULTS.md.
	Faults *fault.Plan
}

// iterScratch is the per-iteration progress state every run mode
// tracks: which writes, computes and reads have started and finished.
// All six slices are carved out of one backing allocation — the run
// modes used to make six (or, fanned out over devices, 6xN) separate
// slices, which together with calendar growth dominated the simulator's
// allocation profile.
type iterScratch struct {
	writeStarted, writeDone []bool
	compStarted, compDone   []bool
	readStarted, readDone   []bool
}

// newIterScratch returns scratch for n iterations backed by buf, which
// must hold at least 6n entries; it returns the unused tail so callers
// fanning out over devices can carve several scratches from one block.
func newIterScratch(n int, buf []bool) (iterScratch, []bool) {
	s := iterScratch{
		writeStarted: buf[0*n : 1*n],
		writeDone:    buf[1*n : 2*n],
		compStarted:  buf[2*n : 3*n],
		compDone:     buf[3*n : 4*n],
		readStarted:  buf[4*n : 5*n],
		readDone:     buf[5*n : 6*n],
	}
	return s, buf[6*n:]
}

// calendarEventsPerIter is the pre-sizing estimate for the event
// calendar: a fault-free iteration schedules a completion event and a
// zero-delay resource grant for each of the two transfers, one kernel
// completion, and a spare for retry/backoff events on faulty runs.
// Reserving this up front takes calendar growth off the allocation
// profile; the estimate only needs to be close, not exact.
const calendarEventsPerIter = 6

// emit sends an event to the scenario's sink, if any.
func (sc Scenario) emit(e telemetry.Event) {
	if sc.Events != nil {
		sc.Events.Emit(e)
	}
}

// ErrBadScenario tags scenario validation failures.
var ErrBadScenario = errors.New("rcsim: invalid scenario")

// Validate checks the scenario is runnable.
func (sc Scenario) Validate() error {
	switch {
	case sc.Iterations <= 0:
		return fmt.Errorf("%w: iterations must be positive", ErrBadScenario)
	case sc.ElementsIn <= 0:
		return fmt.Errorf("%w: elements in must be positive", ErrBadScenario)
	case sc.ElementsOut < 0:
		return fmt.Errorf("%w: elements out must be non-negative", ErrBadScenario)
	case sc.BytesPerElement <= 0:
		return fmt.Errorf("%w: bytes per element must be positive", ErrBadScenario)
	case sc.ClockHz <= 0:
		return fmt.Errorf("%w: clock must be positive", ErrBadScenario)
	case sc.KernelCycles == nil:
		return fmt.Errorf("%w: nil kernel timing callback", ErrBadScenario)
	case sc.Buffering != core.SingleBuffered && sc.Buffering != core.DoubleBuffered:
		return fmt.Errorf("%w: unknown buffering discipline %v", ErrBadScenario, sc.Buffering)
	}
	if sc.Faults != nil {
		if err := sc.Faults.Validate(); err != nil {
			return fmt.Errorf("%w: %w", ErrBadScenario, err)
		}
	}
	return nil
}

// Measurement is what the simulated platform "measures": the
// quantities the paper's actual columns report, derived from the run's
// timeline exactly as they would be read off hardware counters.
type Measurement struct {
	Scenario Scenario

	// Total is the end-to-end RC execution time.
	Total sim.Time
	// WriteTotal, ReadTotal and CompTotal are summed span durations
	// across all iterations.
	WriteTotal sim.Time
	ReadTotal  sim.Time
	CompTotal  sim.Time
	// OverlapTotal is the time communication and computation ran
	// simultaneously (zero when single-buffered).
	OverlapTotal sim.Time
	// KernelCyclesTotal is the summed kernel cycle count across every
	// executed attempt, upset-forced recomputes included, so
	// EffectiveOpsPerCycle reports the truly sustained rate.
	KernelCyclesTotal int64

	// Retries counts failed attempts that were retried (transfer
	// CRC/DMA faults and kernel upsets); zero on a fault-free run.
	Retries int64
	// FaultTime is the total simulated time lost to platform
	// misbehaviour: wasted attempts, DMA stalls, retry backoff,
	// failover rebalancing and bandwidth-degradation excess.
	FaultTime sim.Time
	// Failovers counts node dropouts survived by rerouting work to
	// another device (multi-FPGA runs).
	Failovers int64
}

// TComm returns the measured mean per-iteration communication time in
// seconds, the t_comm the paper's actual columns print.
func (m Measurement) TComm() float64 {
	return (m.WriteTotal + m.ReadTotal).Seconds() / float64(m.Scenario.Iterations)
}

// TComp returns the measured mean per-iteration computation time in
// seconds.
func (m Measurement) TComp() float64 {
	return m.CompTotal.Seconds() / float64(m.Scenario.Iterations)
}

// TRC returns the measured end-to-end execution time in seconds.
func (m Measurement) TRC() float64 { return m.Total.Seconds() }

// UtilComm returns the measured fraction of execution time spent
// communicating (Eq. 9/11 evaluated on the timeline).
func (m Measurement) UtilComm() float64 {
	if m.Total == 0 {
		return 0
	}
	return (m.WriteTotal + m.ReadTotal).Seconds() / m.Total.Seconds()
}

// UtilComp returns the measured fraction of execution time spent
// computing (Eq. 8/10 evaluated on the timeline).
func (m Measurement) UtilComp() float64 {
	if m.Total == 0 {
		return 0
	}
	return m.CompTotal.Seconds() / m.Total.Seconds()
}

// UtilFault returns the measured fraction of execution time lost to
// injected faults and their recovery — the third utilization term a
// misbehaving platform adds to Eqs. 8-11.
func (m Measurement) UtilFault() float64 {
	if m.Total == 0 {
		return 0
	}
	return m.FaultTime.Seconds() / m.Total.Seconds()
}

// NominalTotal returns the execution time with the fault-recovery
// time backed out: the run the healthy platform would have delivered.
func (m Measurement) NominalTotal() sim.Time { return m.Total - m.FaultTime }

// NominalUtilComm returns communication utilization over the nominal
// (fault-free) portion of the timeline, directly comparable with the
// analytic Eqs. 9/11 even on a faulty run. It equals UtilComm when no
// faults were injected.
func (m Measurement) NominalUtilComm() float64 {
	if nt := m.NominalTotal(); nt > 0 {
		return (m.WriteTotal + m.ReadTotal).Seconds() / nt.Seconds()
	}
	return 0
}

// NominalUtilComp is the computation analogue of NominalUtilComm
// (Eqs. 8/10 over the fault-free portion of the timeline).
func (m Measurement) NominalUtilComp() float64 {
	if nt := m.NominalTotal(); nt > 0 {
		return m.CompTotal.Seconds() / nt.Seconds()
	}
	return 0
}

// Speedup returns tSoft divided by the measured execution time.
func (m Measurement) Speedup(tSoft float64) float64 {
	if t := m.TRC(); t > 0 {
		return tSoft / t
	}
	return 0
}

// EffectiveOpsPerCycle converts the measured kernel time back into the
// sustained operations-per-cycle the design achieved, given the
// worksheet's N_ops/element — the number to hold against the
// worksheet's throughput_proc estimate.
func (m Measurement) EffectiveOpsPerCycle(opsPerElement float64) float64 {
	if m.KernelCyclesTotal == 0 {
		return 0
	}
	totalOps := float64(m.Scenario.Iterations) * float64(m.Scenario.ElementsIn) * opsPerElement
	return totalOps / float64(m.KernelCyclesTotal)
}

// Run executes the scenario to completion and returns its measurement.
func Run(sc Scenario) (Measurement, error) {
	if err := sc.Validate(); err != nil {
		return Measurement{}, err
	}

	var (
		s     = sim.New()
		bus   = sim.NewResource(s, "interconnect")
		clock = sc.Platform.Clock(sc.ClockHz)
		n     = sc.Iterations

		bytesIn  = int64(sc.ElementsIn) * int64(sc.BytesPerElement)
		bytesOut = int64(sc.ElementsOut) * int64(sc.BytesPerElement)

		m = Measurement{Scenario: sc}
	)
	st, _ := newIterScratch(n, make([]bool, 6*n))
	writeStarted, writeDone := st.writeStarted, st.writeDone
	compStarted, compDone := st.compStarted, st.compDone
	readStarted, readDone := st.readStarted, st.readDone
	s.Reserve(n * calendarEventsPerIter)

	x, err := newExecCtx(s, &sc, &m)
	if err != nil {
		return Measurement{}, err
	}

	var tryWrite, tryCompute, tryRead func(i int)

	// writeReady reports whether iteration i's input transfer may be
	// queued on the bus. Single-buffered: strictly after the
	// previous iteration fully completes. Double-buffered: two
	// input buffers, so write i waits only for compute i-2 to have
	// freed its buffer.
	writeReady := func(i int) bool {
		if i == 0 {
			return true
		}
		if sc.Buffering == core.DoubleBuffered {
			return i < 2 || compDone[i-2]
		}
		return readDone[i-1]
	}

	tryWrite = func(i int) {
		if i >= n || writeStarted[i] || !writeReady(i) {
			return
		}
		writeStarted[i] = true
		bus.Acquire(func() {
			x.transfer(platform.Write, 0, i, bytesIn, i > 0, &m.WriteTotal, bus.Release, func() {
				writeDone[i] = true
				tryCompute(i)
				if sc.Buffering == core.DoubleBuffered {
					tryWrite(i + 1)
				}
			})
		})
	}

	tryCompute = func(i int) {
		if i >= n || compStarted[i] || !writeDone[i] {
			return
		}
		if i > 0 && !compDone[i-1] {
			return // the single kernel unit runs iterations in order
		}
		compStarted[i] = true
		x.compute(0, i, sc.ElementsIn, clock, nil, func() {
			compDone[i] = true
			tryRead(i)
			tryCompute(i + 1)
			if sc.Buffering == core.DoubleBuffered {
				// Compute i has drained its input buffer; the swap
				// frees it for the write two iterations ahead.
				sc.emit(telemetry.Event{Kind: telemetry.EventBufferSwap, Iter: i,
					StartPs: int64(s.Now()), EndPs: int64(s.Now()), Detail: "input buffer freed"})
				tryWrite(i + 2)
			}
		})
	}

	finishRead := func(i int) {
		readDone[i] = true
		if sc.Buffering == core.SingleBuffered {
			tryWrite(i + 1)
		}
	}

	tryRead = func(i int) {
		if readStarted[i] || !compDone[i] {
			return
		}
		readStarted[i] = true
		if bytesOut == 0 {
			finishRead(i)
			return
		}
		bus.Acquire(func() {
			x.transfer(platform.Read, 0, i, bytesOut, i > 0, &m.ReadTotal, bus.Release, func() {
				finishRead(i)
			})
		})
	}

	tryWrite(0)
	if sc.Buffering == core.DoubleBuffered {
		tryWrite(1)
	}
	m.Total = s.Run()

	if x.err != nil {
		return Measurement{}, x.err
	}
	for i := 0; i < n; i++ {
		if !readDone[i] {
			return Measurement{}, fmt.Errorf("rcsim: scenario %q deadlocked at iteration %d", sc.Name, i)
		}
	}
	if sc.Trace != nil {
		m.OverlapTotal = sc.Trace.Overlap()
	}
	return m, nil
}

// MustRun is Run for scenarios known to be valid; it panics on error.
func MustRun(sc Scenario) Measurement {
	m, err := Run(sc)
	if err != nil {
		//rat:allow-panic Must-style wrapper documented to panic on invalid scenarios
		panic(err)
	}
	return m
}
