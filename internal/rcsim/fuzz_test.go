package rcsim_test

import (
	"errors"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/fault"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/sim"
)

// fuzzScenario assembles a Scenario from raw fuzz inputs. The kernel
// callback is always present (a nil callback is covered by the seeded
// corpus of the validation unit tests and cannot be fuzzed through a
// value anyway).
func fuzzScenario(iters, elemsIn, elemsOut, bpe int, clockHz float64, buffering int,
	crc, dma, upset, dropout, ageSlope, sizeFactor float64, stallPs, kneeBytes int64, retries int, backoffPs int64) rcsim.Scenario {
	sc := rcsim.Scenario{
		Name:            "fuzz",
		Platform:        idealPlatform(1e9),
		ClockHz:         clockHz,
		Buffering:       core.Buffering(buffering),
		Iterations:      iters,
		ElementsIn:      elemsIn,
		ElementsOut:     elemsOut,
		BytesPerElement: bpe,
		KernelCycles:    fixedKernel(100),
	}
	if crc != 0 || dma != 0 || upset != 0 || dropout != 0 || ageSlope != 0 || sizeFactor != 0 || stallPs != 0 || kneeBytes != 0 {
		sc.Faults = &fault.Plan{
			Seed: 1, CRC: crc, DMA: dma, Upset: upset, Dropout: dropout,
			DMAStall: sim.Time(stallPs), AgeSlope: ageSlope,
			SizeKnee: kneeBytes, SizeFactor: sizeFactor,
			Policy: fault.Policy{Retries: retries, Backoff: sim.Time(backoffPs)},
		}
	}
	return sc
}

// FuzzScenarioValidate: Validate must never panic, and every rejection
// must wrap ErrBadScenario so callers can classify it.
func FuzzScenarioValidate(f *testing.F) {
	f.Add(10, 1000, 1000, 4, 100e6, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, int64(0), int64(0), 3, int64(0))
	f.Add(0, -1, -1, 0, -5.0, 9, 2.0, -0.5, 1.5, 0.3, -0.1, 0.5, int64(-1), int64(-7), -3, int64(-10))
	f.Add(1, 1, 0, 1, 1e6, 1, 0.6, 0.6, 0.0, 0.0, 0.0, 0.0, int64(1), int64(1), 0, int64(1))
	f.Fuzz(func(t *testing.T, iters, elemsIn, elemsOut, bpe int, clockHz float64, buffering int,
		crc, dma, upset, dropout, ageSlope, sizeFactor float64, stallPs, kneeBytes int64, retries int, backoffPs int64) {
		sc := fuzzScenario(iters, elemsIn, elemsOut, bpe, clockHz, buffering,
			crc, dma, upset, dropout, ageSlope, sizeFactor, stallPs, kneeBytes, retries, backoffPs)
		if err := sc.Validate(); err != nil && !errors.Is(err, rcsim.ErrBadScenario) {
			t.Errorf("rejection %v does not wrap ErrBadScenario", err)
		}
	})
}

// FuzzMultiScenarioValidate extends the property to the multi-FPGA
// fan-out fields.
func FuzzMultiScenarioValidate(f *testing.F) {
	f.Add(10, 1000, 1000, 4, 100e6, 0, 2, 0, 0.0, 0.0)
	f.Add(1, 7, 3, 4, 100e6, 1, 3, 5, 1.1, -2.0)
	f.Add(0, 0, 0, 0, 0.0, 0, 0, 0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, iters, elemsIn, elemsOut, bpe int, clockHz float64, buffering, devices, topology int,
		crc, dropout float64) {
		sc := fuzzScenario(iters, elemsIn, elemsOut, bpe, clockHz, buffering,
			crc, 0, 0, dropout, 0, 0, 0, 0, 3, 0)
		ms := rcsim.MultiScenario{Scenario: sc, Devices: devices, Topology: core.Topology(topology)}
		if err := ms.Validate(); err != nil && !errors.Is(err, rcsim.ErrBadScenario) {
			t.Errorf("rejection %v does not wrap ErrBadScenario", err)
		}
	})
}
