package rcsim_test

import (
	"errors"
	"math"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/rcsim"
)

// nallatechLike is the full-overhead platform model for tests that
// need real setup costs.
func nallatechLike() platform.Platform { return platform.NallatechH101() }

func baseMulti(nd int, topo core.Topology, b core.Buffering) rcsim.MultiScenario {
	sc := baseScenario(b)
	sc.ElementsIn = 4096
	sc.ElementsOut = 4096
	// Per-device kernel time scales with the sub-block.
	sc.KernelCycles = func(_, elements int) int64 { return int64(elements) }
	return rcsim.MultiScenario{Scenario: sc, Devices: nd, Topology: topo}
}

// TestRunMultiDegeneratesToSingle: one device reproduces Run exactly.
func TestRunMultiDegeneratesToSingle(t *testing.T) {
	for _, b := range []core.Buffering{core.SingleBuffered, core.DoubleBuffered} {
		ms := baseMulti(1, core.SharedChannel, b)
		multi, err := rcsim.RunMulti(ms)
		if err != nil {
			t.Fatal(err)
		}
		single, err := rcsim.Run(ms.Scenario)
		if err != nil {
			t.Fatal(err)
		}
		if multi.Total != single.Total || multi.WriteTotal != single.WriteTotal ||
			multi.CompTotal != single.CompTotal || multi.KernelCyclesTotal != single.KernelCyclesTotal {
			t.Errorf("%v: N=1 multi differs from single: %+v vs %+v", b, multi, single)
		}
	}
}

// TestRunMultiMatchesAnalyticOnIdealPlatform: on a zero-overhead
// platform the simulated multi-FPGA run lands on core.PredictMulti for
// both topologies and disciplines.
func TestRunMultiMatchesAnalyticOnIdealPlatform(t *testing.T) {
	params := core.Parameters{
		Dataset: core.DatasetParams{ElementsIn: 4096, ElementsOut: 4096, BytesPerElement: 4},
		Comm:    core.CommParams{IdealThroughput: 1e9, AlphaWrite: 1, AlphaRead: 1},
		Comp:    core.CompParams{OpsPerElement: 1, ThroughputProc: 1, ClockHz: 100e6},
		Soft:    core.SoftwareParams{TSoft: 1, Iterations: 10},
	}
	for _, nd := range []int{1, 2, 4, 8} {
		for _, topo := range []core.Topology{core.SharedChannel, core.IndependentChannels} {
			mp, err := core.PredictMulti(params, core.MultiConfig{Devices: nd, Topology: topo})
			if err != nil {
				t.Fatal(err)
			}
			ms := baseMulti(nd, topo, core.SingleBuffered)
			m, err := rcsim.RunMulti(ms)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(m.TRC()-mp.TRCSingle) / mp.TRCSingle; d > 1e-6 {
				t.Errorf("N=%d %v SB: simulated %.6e vs analytic %.6e", nd, topo, m.TRC(), mp.TRCSingle)
			}
			msd := baseMulti(nd, topo, core.DoubleBuffered)
			md, err := rcsim.RunMulti(msd)
			if err != nil {
				t.Fatal(err)
			}
			// DB includes the un-hidden first fill and last drain.
			if md.TRC() < mp.TRCDouble*(1-1e-9) || md.TRC() > mp.TRCDouble+mp.TComm+mp.TComp {
				t.Errorf("N=%d %v DB: simulated %.6e vs analytic steady state %.6e", nd, topo, md.TRC(), mp.TRCDouble)
			}
		}
	}
}

// TestSharedChannelContention: with compute made cheap, a shared
// channel pins total time to the serialized transfers regardless of N,
// while independent channels divide it.
func TestSharedChannelContention(t *testing.T) {
	mkFast := func(nd int, topo core.Topology) rcsim.MultiScenario {
		ms := baseMulti(nd, topo, core.SingleBuffered)
		ms.KernelCycles = func(int, int) int64 { return 1 }
		return ms
	}
	shared1, err := rcsim.RunMulti(mkFast(1, core.SharedChannel))
	if err != nil {
		t.Fatal(err)
	}
	shared4, err := rcsim.RunMulti(mkFast(4, core.SharedChannel))
	if err != nil {
		t.Fatal(err)
	}
	indep4, err := rcsim.RunMulti(mkFast(4, core.IndependentChannels))
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(shared4.TRC()-shared1.TRC()) / shared1.TRC(); d > 0.01 {
		t.Errorf("shared-channel comm-bound time should not improve with devices: %.3e vs %.3e", shared4.TRC(), shared1.TRC())
	}
	if ratio := shared1.TRC() / indep4.TRC(); ratio < 3.5 || ratio > 4.5 {
		t.Errorf("independent channels should cut comm-bound time ~4x, got %.2fx", ratio)
	}
}

// TestMultiComputeScaling: with communication negligible, N devices
// cut the wall time by ~N while total kernel cycles stay constant.
func TestMultiComputeScaling(t *testing.T) {
	mk := func(nd int) rcsim.MultiScenario {
		ms := baseMulti(nd, core.SharedChannel, core.SingleBuffered)
		ms.KernelCycles = func(_, elements int) int64 { return int64(elements) * 100 }
		return ms
	}
	one, err := rcsim.RunMulti(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := rcsim.RunMulti(mk(4))
	if err != nil {
		t.Fatal(err)
	}
	if one.KernelCyclesTotal != four.KernelCyclesTotal {
		t.Errorf("total kernel work changed: %d vs %d", one.KernelCyclesTotal, four.KernelCyclesTotal)
	}
	if ratio := one.TRC() / four.TRC(); ratio < 3.5 || ratio > 4.1 {
		t.Errorf("compute-bound 4-device scaling = %.2fx", ratio)
	}
}

// TestScatterOverheadEmerges: on a platform with per-transfer setup,
// splitting a block across more devices costs more total communication
// than the analytic model predicts — the insight the simulation adds.
func TestScatterOverheadEmerges(t *testing.T) {
	mk := func(nd int) rcsim.MultiScenario {
		sc := baseScenario(core.SingleBuffered)
		sc.Platform = nallatechLike()
		sc.ElementsIn = 4096
		sc.ElementsOut = 0
		sc.KernelCycles = func(int, int) int64 { return 1 }
		return rcsim.MultiScenario{Scenario: sc, Devices: nd, Topology: core.SharedChannel}
	}
	one, err := rcsim.RunMulti(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	eight, err := rcsim.RunMulti(mk(8))
	if err != nil {
		t.Fatal(err)
	}
	if eight.WriteTotal <= one.WriteTotal {
		t.Errorf("scatter across 8 devices should pay more setup: %v vs %v", eight.WriteTotal, one.WriteTotal)
	}
}

func TestRunMultiValidation(t *testing.T) {
	ms := baseMulti(0, core.SharedChannel, core.SingleBuffered)
	if _, err := rcsim.RunMulti(ms); !errors.Is(err, rcsim.ErrBadScenario) {
		t.Errorf("zero devices: %v", err)
	}
	ms = baseMulti(3, core.SharedChannel, core.SingleBuffered) // 4096 % 3 != 0
	if _, err := rcsim.RunMulti(ms); !errors.Is(err, rcsim.ErrBadScenario) {
		t.Errorf("indivisible elements: %v", err)
	}
	ms = baseMulti(2, core.Topology(9), core.SingleBuffered)
	if _, err := rcsim.RunMulti(ms); !errors.Is(err, rcsim.ErrBadScenario) {
		t.Errorf("bad topology: %v", err)
	}
	ms = baseMulti(2, core.SharedChannel, core.SingleBuffered)
	ms.Iterations = 0
	if _, err := rcsim.RunMulti(ms); !errors.Is(err, rcsim.ErrBadScenario) {
		t.Errorf("bad base scenario: %v", err)
	}
}
