package harness

import (
	"fmt"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/explore"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/report"
)

// ExploreStudy searches each case study's design space for the
// cheapest configuration whose predicted speedup still meets the
// speedup the paper actually achieved on hardware — the question a
// designer asks after reading the measured columns: "how little
// hardware would have sufficed?". Cheapest is ranked by device count,
// then sustained ops/cycle, then clock, then buffering discipline
// (explore.MinCost), over a grid spanning the paper's clock bracket,
// a throughput_proc ladder around the worksheet estimate and small
// multi-FPGA fan-outs on a shared channel.
func ExploreStudy() (string, error) {
	tbl := report.Table{
		Title: "Cheapest configuration meeting each study's achieved speedup (min-cost search)",
		Headers: []string{"Design", "target", "grid", "MHz", "ops/cyc",
			"dev", "buffering", "predicted"},
	}
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		params := paper.Params(c)
		target := paper.ActualRow(c).Speedup
		tp := params.Comp.ThroughputProc
		g := explore.Grid{
			Base:            params,
			Clocks:          paper.ClocksHz,
			ThroughputProcs: []float64{tp / 4, tp / 2, tp * 3 / 4, tp, tp * 2},
			Devices:         []int{1, 2, 4},
			Topology:        core.SharedChannel,
		}
		res, err := explore.Run(g, explore.Options{
			TopK:        1,
			Objective:   explore.MinCost,
			Constraints: explore.Constraints{MinSpeedup: target},
		})
		if err != nil {
			return "", err
		}
		if len(res.Top) == 0 {
			tbl.AddRow(params.Name, report.FormatSpeedup(target),
				fmt.Sprintf("%d", res.Evaluated), "-", "-", "-", "no feasible configuration", "-")
			continue
		}
		best := res.Top[0]
		tbl.AddRow(params.Name, report.FormatSpeedup(target),
			fmt.Sprintf("%d", res.Evaluated),
			fmt.Sprintf("%g", best.ClockHz/1e6),
			fmt.Sprintf("%g", best.ThroughputProc),
			fmt.Sprintf("%d", best.Devices),
			best.Buffering.String(),
			report.FormatSpeedup(best.Speedup))
	}
	out := tbl.String()
	out += "\nThe throughput test answers the sizing question in reverse: every study's\n" +
		"measured speedup is reachable with less parallelism than the worksheet assumed\n" +
		"(double buffering or a slower clock buys back the margin), which is RAT's\n" +
		"argument for modelling before committing to an implementation.\n"
	return out, nil
}
