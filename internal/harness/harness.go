// Package harness regenerates every table and figure of the paper's
// evaluation, printing the published values next to this
// reproduction's predicted and simulated ones. It is the engine behind
// the ratbench command and the repository's benchmark suite, and the
// source of the numbers recorded in EXPERIMENTS.md.
package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/chrec/rat/internal/apps/md"
	"github.com/chrec/rat/internal/apps/pdf1d"
	"github.com/chrec/rat/internal/apps/pdf2d"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/methodology"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/precision"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/report"
	"github.com/chrec/rat/internal/resource"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/trace"
	"github.com/chrec/rat/internal/worksheet"
)

// Experiment is one regenerable artifact of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func() (string, error)
}

// metricsReg is where package-internal instrumentation (the MD-dataset
// cache) records; it defaults to the process-wide registry and is
// swappable so the ratbench CLI and tests can capture it.
var metricsReg atomic.Pointer[telemetry.Registry]

func init() { metricsReg.Store(telemetry.Default()) }

// SetRegistry redirects the harness's internal instrumentation to reg
// (ignored when nil).
func SetRegistry(reg *telemetry.Registry) {
	if reg != nil {
		metricsReg.Store(reg)
	}
}

// Metrics returns the registry the harness currently records into.
func Metrics() *telemetry.Registry { return metricsReg.Load() }

// RunWith executes the experiment and instruments the run: a
// harness.experiment.<id> timer observes the wall-clock duration, and
// the harness.experiments_run / harness.experiments_failed counters
// accumulate pass/fail totals. A nil registry just runs.
func (e Experiment) RunWith(reg *telemetry.Registry) (string, error) {
	start := time.Now()
	text, err := e.Run()
	if reg != nil {
		reg.Timer("harness.experiment." + e.ID).Observe(time.Since(start))
		reg.Counter("harness.experiments_run").Inc()
		if err != nil {
			reg.Counter("harness.experiments_failed").Inc()
		}
	}
	return text, err
}

// All returns every experiment: the paper artifacts in paper order,
// then the extension studies.
func All() []Experiment {
	return append([]Experiment{
		{"fig1", "Figure 1: RAT methodology flow", Figure1},
		{"fig2", "Figure 2: communication/computation overlap scenarios", Figure2},
		{"fig3", "Figure 3: architecture of the 1-D PDF algorithm", Figure3},
		{"table1", "Table 1: RAT input-parameter schema", Table1},
		{"table2", "Table 2: input parameters of 1-D PDF", Table2},
		{"table3", "Table 3: performance parameters of 1-D PDF", Table3},
		{"table4", "Table 4: resource usage of 1-D PDF (LX100)", Table4},
		{"table5", "Table 5: input parameters of 2-D PDF", Table5},
		{"table6", "Table 6: performance parameters of 2-D PDF", Table6},
		{"table7", "Table 7: resource usage of 2-D PDF (LX100)", Table7},
		{"table8", "Table 8: input parameters of MD", Table8},
		{"table9", "Table 9: performance parameters of MD", Table9},
		{"table10", "Table 10: resource usage of MD (EP2S180)", Table10},
		{"precision", "Section 4.2: numerical-format trade study", PrecisionStudy},
		{"solver", "Section 5.2: inverse solve of throughput_proc", InverseSolver},
		{"alphatable", "Section 4.2: interconnect microbenchmark alpha table", AlphaTable},
	}, extensions...)
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// mdDataset lazily builds the canonical MD system and its neighbour
// profile once per process (it costs a second or two).
var mdDataset = struct {
	once sync.Once
	sys  *md.System
	nb   []int
}{}

func mdSystem() (*md.System, []int) {
	hit := true
	mdDataset.once.Do(func() {
		hit = false
		Metrics().Counter("harness.md_dataset.cache_misses").Inc()
		mdDataset.sys = md.GenerateSystem(md.Molecules, 1)
		mdDataset.nb = md.NeighborCounts(mdDataset.sys)
	})
	if hit {
		Metrics().Counter("harness.md_dataset.cache_hits").Inc()
	}
	return mdDataset.sys, mdDataset.nb
}

// caseScenario builds a case study's single-buffered scenario at the
// paper's measured clock — the configuration of the "actual" columns.
func caseScenario(c paper.Case) (rcsim.Scenario, error) {
	row := paper.ActualRow(c)
	switch c {
	case paper.PDF1D:
		return pdf1d.Scenario(row.ClockHz, core.SingleBuffered), nil
	case paper.PDF2D:
		return pdf2d.Scenario(row.ClockHz, core.SingleBuffered), nil
	case paper.MD:
		sys, _ := mdSystem()
		return md.Scenario(sys, row.ClockHz, core.SingleBuffered)
	}
	return rcsim.Scenario{}, fmt.Errorf("harness: unknown case %v", c)
}

// measuredColumn runs the simulated platform for a case study at the
// paper's measured clock and converts the measurement to a column.
func measuredColumn(c paper.Case, tSoft float64) (report.PerfColumn, error) {
	row := paper.ActualRow(c)
	sc, err := caseScenario(c)
	if err != nil {
		return report.PerfColumn{}, err
	}
	m, err := rcsim.Run(sc)
	if err != nil {
		return report.PerfColumn{}, err
	}
	return report.PerfColumn{
		Header:   fmt.Sprintf("Simulated %g", row.ClockHz/1e6),
		TComm:    m.TComm(),
		TComp:    m.TComp(),
		UtilComm: m.UtilComm(),
		UtilComp: m.UtilComp(),
		TRC:      m.TRC(),
		Speedup:  m.Speedup(tSoft),
	}, nil
}

// paperColumn converts a published row into a column.
func paperColumn(r paper.Row) report.PerfColumn {
	hdr := fmt.Sprintf("Paper pred %g", r.ClockHz/1e6)
	if r.Actual {
		hdr = fmt.Sprintf("Paper meas %g", r.ClockHz/1e6)
		if r.Reconstructed {
			hdr += "*"
		}
	}
	return report.PerfColumn{
		Header: hdr, TComm: r.TComm, TComp: r.TComp,
		UtilComm: r.UtilComm, UtilComp: r.UtilComp,
		TRC: r.TRC, Speedup: r.Speedup,
	}
}

// performance builds the full three-way table for a case study: our
// predictions at the paper's clocks, the paper's predicted and
// measured cells, and the simulated-platform measurement.
func performance(c paper.Case, params core.Parameters, title string) (string, error) {
	var cols []report.PerfColumn
	for _, hz := range paper.ClocksHz {
		pr, err := core.Predict(params.WithClock(hz))
		if err != nil {
			return "", err
		}
		cols = append(cols, report.PredictionColumn(pr, core.SingleBuffered))
	}
	for _, r := range paper.PerformanceTable(c) {
		if r.Actual {
			cols = append(cols, paperColumn(r))
		}
	}
	mc, err := measuredColumn(c, params.Soft.TSoft)
	if err != nil {
		return "", err
	}
	cols = append(cols, mc)
	tbl := report.PerformanceTable(title, cols)
	note := "\nColumns: 'Predicted f' are this library's Eqs. 1-11; 'Paper meas f' is the published measured column\n" +
		"(* = reconstructed cells, see EXPERIMENTS.md); 'Simulated f' is the simulated RC platform standing in for the testbed.\n"
	return tbl.String() + note, nil
}

// inputs renders a worksheet next to the published one.
func inputs(params core.Parameters, published core.Parameters, title string) (string, error) {
	tbl := report.InputTable(params)
	out := tbl.String()
	if params != published {
		out += "\nWARNING: derived worksheet disagrees with the published Table!\n"
		pubTbl := report.InputTable(published)
		out += pubTbl.String()
	} else {
		out += "\n(derived worksheet matches the published table exactly)\n"
	}
	return out, nil
}

// resources renders our estimate next to the paper's table.
func resources(rep resource.Report, c paper.Case) string {
	rows := [][3]string{}
	for _, pubRow := range paper.ResourceTable(c) {
		name := pubRow.Resource
		pub := report.FormatPercent(pubRow.Utilization)
		if pubRow.Reconstructed {
			pub += "*"
		}
		var ours string
		for _, l := range rep.Lines {
			if l.DisplayName == name {
				ours = report.FormatPercent(l.Utilization)
			}
		}
		rows = append(rows, [3]string{name, pub, ours})
	}
	tbl := report.SideBySide(fmt.Sprintf("Resource usage (%s); * = reconstructed cell", rep.Device.Name), rows)
	out := tbl.String()
	if !rep.Fits {
		out += "DOES NOT FIT\n"
	}
	if len(rep.Warnings) > 0 {
		out += fmt.Sprintf("warnings: %v\n", rep.Warnings)
	}
	return out
}

// Figure1 walks the methodology flow through all four exit arcs using
// the 1-D PDF design.
func Figure1() (string, error) {
	var b strings.Builder
	demand, err := pdf1d.Design().ResourceDemand(resource.VirtexLX100, pdf1d.BatchElements, false)
	if err != nil {
		return "", err
	}
	design := methodology.Design{
		Params: paper.PDF1DParams(),
		Candidates: []precision.Candidate{
			{Label: "18-bit fixed", Width: 18, MaxError: 0.02, MulCost: resource.Demand{DSP: 1}},
			{Label: "32-bit fixed", Width: 32, MaxError: 0.002, MulCost: resource.Demand{DSP: 2}},
		},
		Demand: demand,
		Device: resource.VirtexLX100,
	}
	scenarios := []struct {
		label string
		req   methodology.Requirements
		mut   func(methodology.Design) methodology.Design
	}{
		{"PROCEED path (10x goal, 3% tolerance)",
			methodology.Requirements{TargetSpeedup: 10, Buffering: core.SingleBuffered, ErrorTolerance: 0.03},
			func(d methodology.Design) methodology.Design { return d }},
		{"insufficient computation throughput (20x goal)",
			methodology.Requirements{TargetSpeedup: 20, Buffering: core.SingleBuffered},
			func(d methodology.Design) methodology.Design { return d }},
		{"insufficient communication throughput (500x goal)",
			methodology.Requirements{TargetSpeedup: 500, Buffering: core.DoubleBuffered},
			func(d methodology.Design) methodology.Design { return d }},
		{"minimum precision unrealizable (1e-9 tolerance)",
			methodology.Requirements{TargetSpeedup: 5, Buffering: core.SingleBuffered, ErrorTolerance: 1e-9},
			func(d methodology.Design) methodology.Design { return d }},
		{"insufficient resources (200 pipelines)",
			methodology.Requirements{TargetSpeedup: 5, Buffering: core.SingleBuffered},
			func(d methodology.Design) methodology.Design {
				d.Demand = d.Demand.Scale(200)
				return d
			}},
	}
	for _, sc := range scenarios {
		out, err := methodology.Evaluate(sc.req, sc.mut(design))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%s -> %v\n", sc.label, out.Verdict)
		for _, step := range out.Steps {
			mark := "pass"
			if !step.Pass {
				mark = "FAIL"
			}
			fmt.Fprintf(&b, "  [%s] %-10s %s\n", mark, step.Step, step.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Figure2 reproduces the three overlap timelines from simulation.
func Figure2() (string, error) {
	flat := platform.Link{Rate: []platform.RatePoint{{Bytes: 1, Bps: 1e9}, {Bytes: 1 << 30, Bps: 1e9}}}
	ideal := platform.Platform{
		Name: "ideal",
		Interconnect: platform.Interconnect{
			Name: "ideal-link", IdealBps: 1e9, WriteLink: flat, ReadLink: flat,
		},
	}
	base := rcsim.Scenario{
		Platform: ideal, ClockHz: 100e6,
		Iterations: 3, ElementsIn: 4000, ElementsOut: 4000, BytesPerElement: 1,
	}
	var b strings.Builder
	cases := []struct {
		label  string
		buf    core.Buffering
		cycles int64
	}{
		{"Single buffered", core.SingleBuffered, 800},
		{"Double buffered, computation bound", core.DoubleBuffered, 1600},
		{"Double buffered, communication bound", core.DoubleBuffered, 300},
	}
	for _, c := range cases {
		sc := base
		sc.Name = c.label
		sc.Buffering = c.buf
		sc.KernelCycles = func(int, int) int64 { return c.cycles }
		var rec trace.Recorder
		sc.Trace = &rec
		m, err := rcsim.Run(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%s (t_RC = %s, overlap = %s)\n", c.label, report.FormatSci(m.TRC()), report.FormatSci(rec.Overlap().Seconds()))
		b.WriteString(rec.Gantt(72))
		b.WriteByte('\n')
	}
	b.WriteString("Legend: W = host->FPGA input transfer, R = FPGA->host result transfer, C = compute.\n")
	return b.String(), nil
}

// Figure3 prints the 1-D PDF architecture and its cycle budget.
func Figure3() (string, error) {
	d := pdf1d.Design()
	var b strings.Builder
	b.WriteString(d.Describe())
	fmt.Fprintf(&b, "  batches of %d elements against %d bins (%d bins per pipeline)\n",
		pdf1d.BatchElements, pdf1d.Bins, pdf1d.BinsPerPipe)
	fmt.Fprintf(&b, "  cycles per batch: %d (fill %d, per-element %d, control %d)\n",
		d.CyclesForBatch(pdf1d.BatchElements), d.PipelineDepth,
		d.ItemCyclesPerElement()+int64(d.ElementStall), d.BatchOverhead)
	fmt.Fprintf(&b, "  sustained %.1f ops/cycle of the ideal %.0f (worksheet carries %.0f)\n",
		d.EffectiveThroughputProc(pdf1d.BatchElements), d.IdealThroughputProc(), d.WorksheetThroughputProc())
	return b.String(), nil
}

// Table1 prints the worksheet schema via the file format itself.
func Table1() (string, error) {
	var b strings.Builder
	b.WriteString("RAT input parameters (Table 1), as the worksheet file format:\n\n")
	if err := worksheet.Encode(&b, paper.PDF1DParams()); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Table2 compares the derived 1-D PDF worksheet with the published one.
func Table2() (string, error) {
	return inputs(pdf1d.Worksheet(), paper.PDF1DParams(), "Table 2")
}

// Table3 regenerates the 1-D PDF performance table.
func Table3() (string, error) {
	return performance(paper.PDF1D, paper.PDF1DParams(), "Performance parameters of 1-D PDF")
}

// Table4 regenerates the 1-D PDF resource table.
func Table4() (string, error) {
	rep, err := pdf1d.ResourceReport()
	if err != nil {
		return "", err
	}
	return resources(rep, paper.PDF1D), nil
}

// Table5 compares the derived 2-D PDF worksheet with the published one.
func Table5() (string, error) {
	return inputs(pdf2d.Worksheet(), paper.PDF2DParams(), "Table 5")
}

// Table6 regenerates the 2-D PDF performance table.
func Table6() (string, error) {
	return performance(paper.PDF2D, paper.PDF2DParams(), "Performance parameters of 2-D PDF")
}

// Table7 regenerates the 2-D PDF resource table.
func Table7() (string, error) {
	rep, err := pdf2d.ResourceReport()
	if err != nil {
		return "", err
	}
	return resources(rep, paper.PDF2D), nil
}

// Table8 compares the derived MD worksheet with the published one.
func Table8() (string, error) {
	return inputs(md.Worksheet(), paper.MDParams(), "Table 8")
}

// Table9 regenerates the MD performance table.
func Table9() (string, error) {
	return performance(paper.MD, paper.MDParams(), "Performance parameters of MD")
}

// Table10 regenerates the MD resource table.
func Table10() (string, error) {
	rep, err := md.ResourceReport()
	if err != nil {
		return "", err
	}
	return resources(rep, paper.MD), nil
}

// PrecisionStudy regenerates the Section 4.2 format trade study.
func PrecisionStudy() (string, error) {
	samples := pdf1d.GenerateSamples(8192, 3)
	bins := pdf1d.BinCenters(pdf1d.Bins)
	p := pdf1d.DefaultParams()
	ref := pdf1d.EstimateFloat(samples, bins, p)
	eval := func(width int) (float64, error) {
		cfg, err := pdf1d.ConfigForWidth(width)
		if err != nil {
			return 0, err
		}
		return precision.RelativeError(ref, pdf1d.EstimateFixed(samples, bins, p, cfg)), nil
	}
	var cands []precision.Candidate
	for _, w := range []int{12, 16, 18, 24, 32} {
		c, err := precision.FixedCandidate(resource.VirtexLX100, w, eval)
		if err != nil {
			return "", err
		}
		cands = append(cands, c)
	}
	f32Err := precision.RelativeError(ref, pdf1d.EstimateFloat32(samples, bins, p))
	cands = append(cands, precision.Float32Candidate(resource.VirtexLX100, f32Err))
	sort.Slice(cands, func(i, j int) bool { return cands[i].Width < cands[j].Width })

	tbl := report.Table{
		Title:   "Numerical format trade study (1-D PDF, tolerance 3%)",
		Headers: []string{"Format", "Max error", "DSPs/multiply", "Logic/multiply"},
	}
	for _, c := range cands {
		tbl.AddRow(c.Label, fmt.Sprintf("%.3f%%", c.MaxError*100),
			fmt.Sprintf("%d", c.MulCost.DSP), fmt.Sprintf("%d", c.MulCost.Logic))
	}
	chosen, notes, err := precision.Recommend(cands, 0.03)
	if err != nil {
		return "", err
	}
	out := tbl.String()
	out += fmt.Sprintf("\nchosen: %s (the paper chose 18-bit fixed for one 18x18 MAC per multiply)\n", chosen.Label)
	for _, n := range notes {
		out += "  " + n + "\n"
	}
	return out, nil
}

// InverseSolver regenerates the MD tuning-parameter story.
func InverseSolver() (string, error) {
	p := paper.MDParams().WithClock(core.MHz(100))
	need, err := core.SolveThroughputProc(p, 10, core.SingleBuffered)
	if err != nil {
		return "", err
	}
	rounded := 50.0
	pr := core.MustPredict(p.WithThroughputProc(rounded))
	return fmt.Sprintf(
		"MD at 100 MHz, 10x speedup goal:\n"+
			"  required throughput_proc = %.1f ops/cycle (Section 5.2: \"50 is the quantitative value computed by the equations\")\n"+
			"  worksheet carries the rounded-up %.0f -> predicted speedup %.1f (Table 9: 10.7)\n",
		need, rounded, pr.SpeedupSingle), nil
}

// AlphaTable regenerates the Section 4.2 microbenchmark sweep on the
// Nallatech platform.
func AlphaTable() (string, error) {
	ic := platform.NallatechH101().Interconnect
	sizes := []int64{256, 512, 1024, 2048, 4096, 16384, 65536, 262144, 1048576}
	tbl := report.Table{
		Title:   fmt.Sprintf("Measured alpha vs transfer size (%s, ideal %g MB/s)", ic.Name, ic.IdealBps/1e6),
		Headers: []string{"Bytes", "alpha_write", "alpha_read"},
	}
	for _, s := range sizes {
		tbl.AddRow(fmt.Sprintf("%d", s),
			fmt.Sprintf("%.3f", ic.MeasureAlpha(platform.Write, s)),
			fmt.Sprintf("%.3f", ic.MeasureAlpha(platform.Read, s)))
	}
	out := tbl.String()
	out += "\nThe worksheets carry the 2 KB row (0.37 / 0.16); the read collapse at large sizes\nis the root of the 2-D PDF study's 6x communication surprise.\n"
	return out, nil
}
