package harness_test

import (
	"strings"
	"testing"

	"github.com/chrec/rat/internal/harness"
)

func TestAllHaveUniqueIDsAndRun(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range harness.All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if len(seen) < 16 {
		t.Errorf("only %d experiments registered", len(seen))
	}
}

func TestByID(t *testing.T) {
	if _, ok := harness.ByID("table3"); !ok {
		t.Error("table3 missing")
	}
	if _, ok := harness.ByID("table99"); ok {
		t.Error("ByID invented an experiment")
	}
}

// contentChecks pins each experiment's output to the cells that matter.
// The MD-backed experiments (table9, table10 via mdSystem) are covered
// here too; they share one cached dataset so the suite stays fast.
var contentChecks = map[string][]string{
	"fig1":          {"PROCEED", "NEW DESIGN", "insufficient communication", "insufficient computation", "unrealizable", "insufficient resources"},
	"fig2":          {"Single buffered", "computation bound", "communication bound", "W1", "C1", "R1", "overlap"},
	"fig3":          {"8 parallel pipelines", "20850", "18.9"},
	"table1":        {"[dataset]", "[communication]", "[computation]", "[software]"},
	"table2":        {"512", "0.37", "0.16", "768", "matches the published table"},
	"table3":        {"5.56E-6", "1.31E-4", "2.50E-5", "10.6", "7.8"},
	"table4":        {"48-bit DSPs", "15%", "8%"},
	"table5":        {"1024", "65536", "393216", "matches the published table"},
	"table6":        {"1.65E-3", "5.59E-2", "1.05E-2", "19%", "6.9"},
	"table7":        {"21%", "53%"},
	"table8":        {"16384", "164000", "50", "5.78", "matches the published table"},
	"table9":        {"2.62E-3", "3.58E-1", "8.79E-1", "16.0", "6.6"},
	"table10":       {"9-bit DSPs", "100%", "ALUTs"},
	"precision":     {"18-bit fixed", "chosen", "32-bit float"},
	"solver":        {"46.7", "50", "10.7"},
	"alphatable":    {"2048", "0.369", "0.160", "0.025"},
	"ext-multifpga": {"knee at 33.9", "240.7", "454.3", "efficiency"},
	"ext-bounds":    {"uncertain", "Single-buffered speedup intervals", "molecular dynamics"},
	"ext-accuracy":  {"optimistic", "pessimistic", "accurate", "tuning parameter", "double buffering would hide"},
	"ext-power":     {"less energy", "Xeon", "Opteron", "FPGA W"},
}

func TestExperimentContents(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerating all experiments builds the MD dataset")
	}
	for _, e := range harness.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			wants, ok := contentChecks[e.ID]
			if !ok {
				t.Fatalf("no content check registered for %q", e.ID)
			}
			for _, w := range wants {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}

// TestDeterministicOutput: every experiment's output is identical
// across runs (the simulated platforms and datasets are fully
// deterministic).
func TestDeterministicOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("double regeneration")
	}
	for _, id := range []string{"fig2", "table3", "table6"} {
		e, _ := harness.ByID(id)
		a, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: output not deterministic", id)
		}
	}
}
