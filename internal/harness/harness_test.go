package harness_test

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/harness"
	"github.com/chrec/rat/internal/telemetry"
)

func TestAllHaveUniqueIDsAndRun(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range harness.All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if len(seen) < 16 {
		t.Errorf("only %d experiments registered", len(seen))
	}
}

func TestByID(t *testing.T) {
	if _, ok := harness.ByID("table3"); !ok {
		t.Error("table3 missing")
	}
	if _, ok := harness.ByID("table99"); ok {
		t.Error("ByID invented an experiment")
	}
}

// contentChecks pins each experiment's output to the cells that matter.
// The MD-backed experiments (table9, table10 via mdSystem) are covered
// here too; they share one cached dataset so the suite stays fast.
var contentChecks = map[string][]string{
	"fig1":          {"PROCEED", "NEW DESIGN", "insufficient communication", "insufficient computation", "unrealizable", "insufficient resources"},
	"fig2":          {"Single buffered", "computation bound", "communication bound", "W1", "C1", "R1", "overlap"},
	"fig3":          {"8 parallel pipelines", "20850", "18.9"},
	"table1":        {"[dataset]", "[communication]", "[computation]", "[software]"},
	"table2":        {"512", "0.37", "0.16", "768", "matches the published table"},
	"table3":        {"5.56E-6", "1.31E-4", "2.50E-5", "10.6", "7.8"},
	"table4":        {"48-bit DSPs", "15%", "8%"},
	"table5":        {"1024", "65536", "393216", "matches the published table"},
	"table6":        {"1.65E-3", "5.59E-2", "1.05E-2", "19%", "6.9"},
	"table7":        {"21%", "53%"},
	"table8":        {"16384", "164000", "50", "5.78", "matches the published table"},
	"table9":        {"2.62E-3", "3.58E-1", "8.79E-1", "16.0", "6.6"},
	"table10":       {"9-bit DSPs", "100%", "ALUTs"},
	"precision":     {"18-bit fixed", "chosen", "32-bit float"},
	"solver":        {"46.7", "50", "10.7"},
	"alphatable":    {"2048", "0.369", "0.160", "0.025"},
	"ext-multifpga": {"knee at 33.9", "240.7", "454.3", "efficiency"},
	"ext-bounds":    {"uncertain", "Single-buffered speedup intervals", "molecular dynamics"},
	"ext-accuracy":  {"optimistic", "pessimistic", "accurate", "tuning parameter", "double buffering would hide"},
	"ext-power":     {"less energy", "Xeon", "Opteron", "FPGA W"},
	"ext-faults":    {"Fault-rate sweep", "pdf1d", "pdf2d", "md", "retries", "monotonically"},
	"ext-explore":   {"Cheapest configuration", "min-cost", "1-D PDF estimation", "molecular dynamics", "buffered"},
}

// TestFaultStudyMonotone is the degradation-study acceptance check:
// within each design, t_RC must be non-decreasing as the fault rate
// rises. FaultStudy itself errors on bit-exact violations; this test
// re-derives the property from the rendered table so a formatting or
// ordering regression cannot hide one.
func TestFaultStudyMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("the fault sweep builds the MD dataset")
	}
	e, ok := harness.ByID("ext-faults")
	if !ok {
		t.Fatal("ext-faults experiment not registered")
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	prev := map[string]float64{}
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 6 {
			continue
		}
		design := fields[0]
		trc, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue // header or prose line
		}
		rows++
		if last, seen := prev[design]; seen && trc < last {
			t.Errorf("%s: t_RC %g below previous %g as the fault rate rises", design, trc, last)
		}
		prev[design] = trc
	}
	if rows < 15 || len(prev) != 3 {
		t.Fatalf("parsed %d sweep rows over %d designs, want 15 over 3:\n%s", rows, len(prev), out)
	}
}

func TestExperimentContents(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerating all experiments builds the MD dataset")
	}
	for _, e := range harness.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			wants, ok := contentChecks[e.ID]
			if !ok {
				t.Fatalf("no content check registered for %q", e.ID)
			}
			for _, w := range wants {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}

// TestDeterministicOutput: every experiment's output is identical
// across runs (the simulated platforms and datasets are fully
// deterministic).
func TestDeterministicOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("double regeneration")
	}
	for _, id := range []string{"fig2", "table3", "table6"} {
		e, _ := harness.ByID(id)
		a, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: output not deterministic", id)
		}
	}
}

func TestRunWithRecordsMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	ok := harness.Experiment{ID: "unit-ok", Run: func() (string, error) { return "fine", nil }}
	bad := harness.Experiment{ID: "unit-bad", Run: func() (string, error) { return "", errors.New("boom") }}
	if _, err := ok.RunWith(reg); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.RunWith(reg); err == nil {
		t.Fatal("bad experiment must propagate its error")
	}
	s := reg.Snapshot()
	if s.Counters["harness.experiments_run"] != 2 || s.Counters["harness.experiments_failed"] != 1 {
		t.Errorf("counters = %v", s.Counters)
	}
	if s.Timers["harness.experiment.unit-ok"].Count != 1 {
		t.Errorf("missing per-experiment timer: %v", s.Timers)
	}
	if _, err := ok.RunWith(nil); err != nil {
		t.Errorf("nil registry must still run: %v", err)
	}
}

func TestMDDatasetCacheCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	harness.SetRegistry(reg)
	defer harness.SetRegistry(telemetry.Default())
	if harness.Metrics() != reg {
		t.Fatal("SetRegistry did not take")
	}
	// Table 9 simulates the MD case study, touching the dataset
	// cache once per run; two runs are at most one miss and at least
	// one hit (the miss may have happened in an earlier test against
	// another registry).
	e, _ := harness.ByID("table9")
	if _, err := e.RunWith(reg); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunWith(reg); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Counters["harness.md_dataset.cache_hits"]+s.Counters["harness.md_dataset.cache_misses"] < 2 {
		t.Errorf("cache counters = %v", s.Counters)
	}
	if s.Counters["harness.md_dataset.cache_hits"] < 1 {
		t.Errorf("second run must hit the cache: %v", s.Counters)
	}
}
