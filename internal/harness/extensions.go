package harness

import (
	"fmt"
	"strings"

	"github.com/chrec/rat/internal/apps/md"
	"github.com/chrec/rat/internal/apps/pdf1d"
	"github.com/chrec/rat/internal/apps/pdf2d"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/fault"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/power"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/report"
	"github.com/chrec/rat/internal/resource"
	"github.com/chrec/rat/internal/sim"
	"github.com/chrec/rat/internal/validate"
)

// Extension experiments: features the paper's Section 6 sketches as
// future work (multi-FPGA systems) or that its practice implies (the
// clock bracket generalized to full input-uncertainty intervals).
// They are listed after the paper artifacts in All().

func init() {
	extensions = []Experiment{
		{"ext-multifpga", "Extension (Sec. 6): multi-FPGA scaling, analytic vs simulated", MultiFPGA},
		{"ext-bounds", "Extension: prediction intervals under input uncertainty", BoundsStudy},
		{"ext-accuracy", "Extension: systematic prediction-accuracy analysis of all case studies", AccuracyStudy},
		{"ext-power", "Extension (Sec. 1): power and energy comparison vs the CPU baselines", PowerStudy},
		{"ext-faults", "Extension: speedup degradation under injected platform faults", FaultStudy},
		{"ext-explore", "Extension: min-cost design-space search meeting each study's achieved speedup", ExploreStudy},
	}
}

// extensions is appended to All's result.
var extensions []Experiment

// MultiFPGA renders shared- vs independent-channel scaling of the 2-D
// PDF design across device counts, with the analytic model checked
// against the multi-device simulation.
func MultiFPGA() (string, error) {
	params := paper.PDF2DParams()
	knee, err := core.ScalingKnee(params)
	if err != nil {
		return "", err
	}
	tbl := report.Table{
		Title: fmt.Sprintf("2-D PDF on multiple FPGAs (150 MHz, double-buffered; shared-channel knee at %.1f devices)", knee),
		Headers: []string{"Devices", "shared t_RC", "shared speedup", "shared sim t_RC",
			"indep t_RC", "indep speedup", "efficiency"},
	}
	mkSim := func(nd int, topo core.Topology) (rcsim.Measurement, error) {
		// Idealized per-device kernel: the worksheet's op budget at
		// the worksheet rate over the sub-block.
		return rcsim.RunMulti(rcsim.MultiScenario{
			Scenario: rcsim.Scenario{
				Name:            "pdf2d-multi",
				Platform:        ablatedWorksheetPlatform(params),
				ClockHz:         params.Comp.ClockHz,
				Buffering:       core.DoubleBuffered,
				Iterations:      int(params.Soft.Iterations),
				ElementsIn:      int(params.Dataset.ElementsIn),
				ElementsOut:     int(params.Dataset.ElementsOut),
				BytesPerElement: int(params.Dataset.BytesPerElement),
				KernelCycles: func(_, elements int) int64 {
					return int64(float64(elements) * params.Comp.OpsPerElement / params.Comp.ThroughputProc)
				},
			},
			Devices:  nd,
			Topology: topo,
		})
	}
	for _, nd := range []int{1, 2, 4, 8, 16, 32, 64} {
		shared, err := core.PredictMulti(params, core.MultiConfig{Devices: nd, Topology: core.SharedChannel})
		if err != nil {
			return "", err
		}
		indep, err := core.PredictMulti(params, core.MultiConfig{Devices: nd, Topology: core.IndependentChannels})
		if err != nil {
			return "", err
		}
		sim, err := mkSim(nd, core.SharedChannel)
		if err != nil {
			return "", err
		}
		tbl.AddRow(fmt.Sprintf("%d", nd),
			report.FormatSci(shared.TRCDouble), report.FormatSpeedup(shared.SpeedupDouble),
			report.FormatSci(sim.TRC()),
			report.FormatSci(indep.TRCDouble), report.FormatSpeedup(indep.SpeedupDouble),
			fmt.Sprintf("%.2f", shared.ScalingEfficiency))
	}
	out := tbl.String()
	out += "\nShared-channel speedup saturates at the communication bound past the knee;\n" +
		"independent channels keep scaling. The simulated column validates the analytic\n" +
		"model on an idealized platform (sub-percent agreement in steady state).\n"
	return out, nil
}

// ablatedWorksheetPlatform builds an overhead-free platform whose link
// rates equal the worksheet's alpha-scaled bandwidths.
func ablatedWorksheetPlatform(p core.Parameters) platform.Platform {
	flatW := platform.Link{Rate: []platform.RatePoint{
		{Bytes: 1, Bps: p.Comm.AlphaWrite * p.Comm.IdealThroughput},
		{Bytes: 1 << 30, Bps: p.Comm.AlphaWrite * p.Comm.IdealThroughput},
	}}
	flatR := platform.Link{Rate: []platform.RatePoint{
		{Bytes: 1, Bps: p.Comm.AlphaRead * p.Comm.IdealThroughput},
		{Bytes: 1 << 30, Bps: p.Comm.AlphaRead * p.Comm.IdealThroughput},
	}}
	return platform.Platform{
		Name: "worksheet-ideal",
		Interconnect: platform.Interconnect{
			Name: "worksheet-link", IdealBps: p.Comm.IdealThroughput,
			WriteLink: flatW, ReadLink: flatR,
		},
	}
}

// AccuracyStudy runs validate.Compare for every case study against the
// simulated-platform measurement at the paper's measured clock: the
// Sections 4.3/5.1/5.2 error analyses, regenerated systematically.
func AccuracyStudy() (string, error) {
	var b strings.Builder
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		params := paper.Params(c).WithClock(paper.ActualRow(c).ClockHz)
		pr, err := core.Predict(params)
		if err != nil {
			return "", err
		}
		mc, err := measuredColumn(c, params.Soft.TSoft)
		if err != nil {
			return "", err
		}
		a, err := validate.Compare(pr, validate.Measured{
			TComm: mc.TComm, TComp: mc.TComp, TRC: mc.TRC,
		}, core.SingleBuffered)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%s (measured at %g MHz on the simulated platform)\n", params.Name, params.Comp.ClockHz/1e6)
		for _, term := range a.Terms {
			fmt.Fprintf(&b, "  %-7s %10s predicted, %10s measured  %+5.0f%%  [%s]\n",
				term.Name, report.FormatSci(term.Predicted), report.FormatSci(term.Measured),
				term.Error*100, term.Verdict)
		}
		fmt.Fprintf(&b, "  speedup %.1f predicted, %.1f measured\n", a.SpeedupPredicted, a.SpeedupMeasured)
		for _, n := range a.Notes {
			fmt.Fprintf(&b, "  - %s\n", n)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// PowerStudy renders the Section 1 embedded-community argument: even
// where the speedup is modest, the FPGA run wins on energy because the
// part draws an order of magnitude less power than the host CPU.
func PowerStudy() (string, error) {
	type study struct {
		c       paper.Case
		demand  func() (resource.Demand, error)
		device  resource.Device
		cpuW    float64
		cpuName string
	}
	studies := []study{
		{paper.PDF1D, func() (resource.Demand, error) {
			return pdf1dDemand()
		}, resource.VirtexLX100, 103, "3.2 GHz Xeon"},
		{paper.PDF2D, func() (resource.Demand, error) {
			return pdf2d.AsBuiltDesign().ResourceDemand(resource.VirtexLX100, pdf2d.BatchElements, false)
		}, resource.VirtexLX100, 103, "3.2 GHz Xeon"},
		{paper.MD, func() (resource.Demand, error) {
			return md.Design().ResourceDemand(resource.StratixEP2S180, md.Molecules, false)
		}, resource.StratixEP2S180, 89, "2.2 GHz Opteron"},
	}
	tbl := report.Table{
		Title:   "Power and energy vs the software baselines (predicted, single-buffered)",
		Headers: []string{"Design", "FPGA W", "CPU W", "speedup", "energy ratio"},
	}
	for _, st := range studies {
		params := paper.Params(st.c).WithClock(paper.ActualRow(st.c).ClockHz)
		pr, err := core.Predict(params)
		if err != nil {
			return "", err
		}
		model, err := power.ForDevice(st.device)
		if err != nil {
			return "", err
		}
		demand, err := st.demand()
		if err != nil {
			return "", err
		}
		watts, err := power.Estimate(model, demand, params.Comp.ClockHz, pr.UtilCompSB)
		if err != nil {
			return "", err
		}
		cmp, err := power.CompareEnergy(watts, pr.TRCSingle, st.cpuW, params.Soft.TSoft)
		if err != nil {
			return "", err
		}
		tbl.AddRow(params.Name, fmt.Sprintf("%.1f", watts), fmt.Sprintf("%.0f (%s)", st.cpuW, st.cpuName),
			report.FormatSpeedup(pr.Speedup(core.SingleBuffered)),
			fmt.Sprintf("%.0fx less energy", cmp.EnergyRatio))
	}
	out := tbl.String()
	out += "\nSection 1: \"savings could come in the form of reduced power usage\" — the energy\nratio is speedup x power ratio, so even speedup-neutral migrations win on energy.\n"
	return out, nil
}

func pdf1dDemand() (resource.Demand, error) {
	return pdf1d.Design().ResourceDemand(resource.VirtexLX100, pdf1d.BatchElements, false)
}

// FaultStudy sweeps injected-fault intensity over the three case
// studies at their measured clocks and reports how execution time,
// speedup and recovery effort degrade — the robustness counterpart of
// the paper's clean-testbed speedup tables. The sweep raises the CRC
// and kernel-upset rates together under a fixed seed; because each
// attempt's fault draw is a fixed hash, raising the rates only adds
// faults, so t_RC is monotonically non-decreasing down each column
// (checked here, asserted bit-exactly in the harness tests).
func FaultStudy() (string, error) {
	rates := []float64{0, 0.001, 0.01, 0.05, 0.2}
	pol := fault.Policy{Retries: 10, Backoff: 10 * sim.Microsecond, Growth: 2,
		Failover: true, FailoverDelay: sim.Millisecond}
	tbl := report.Table{
		Title:   "Fault-rate sweep (single-buffered, measured clocks, fault seed 1, 10 retries)",
		Headers: []string{"Design", "crc=upset rate", "t_RC", "speedup", "retries", "fault time"},
	}
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		tSoft := paper.Params(c).Soft.TSoft
		var prev rcsim.Measurement
		for i, r := range rates {
			sc, err := caseScenario(c)
			if err != nil {
				return "", err
			}
			if r > 0 {
				sc.Faults = &fault.Plan{Seed: 1, CRC: r, Upset: r, Policy: pol}
			}
			m, err := rcsim.Run(sc)
			if err != nil {
				return "", fmt.Errorf("harness: %s at fault rate %g: %w", sc.Name, r, err)
			}
			if i > 0 && m.Total < prev.Total {
				return "", fmt.Errorf("harness: %s fault sweep lost monotonicity at rate %g (%v < %v)",
					sc.Name, r, m.Total, prev.Total)
			}
			prev = m
			tbl.AddRow(sc.Name, fmt.Sprintf("%g", r),
				report.FormatSci(m.TRC()),
				report.FormatSpeedup(m.Speedup(tSoft)),
				fmt.Sprintf("%d", m.Retries),
				report.FormatPercent(m.UtilFault()))
		}
	}
	out := tbl.String()
	out += "\nEvery fault decision is a pure hash of (seed, stream, iteration, attempt), so the\n" +
		"sweep adds faults monotonically: the t_RC column never decreases within a design.\n" +
		"Speedup erosion stays modest until retries dominate an iteration's useful time —\n" +
		"RAT's margin-of-error guidance applies to platform health as much as to modelling.\n"
	return out, nil
}

// BoundsStudy renders prediction intervals for all three case studies
// under a representative input uncertainty, with the target verdicts a
// designer would read off them.
func BoundsStudy() (string, error) {
	u := core.Uncertainty{Alpha: 0.2, OpsPerElement: 0.1, ThroughputProc: 0.25, Clock: 1.0 / 3.0, TSoft: 0.05}
	var b strings.Builder
	fmt.Fprintf(&b, "Input uncertainty: alpha ±20%%, ops ±10%%, throughput_proc ±25%%, clock ±33%% (the paper's 75-150 MHz bracket), t_soft ±5%%\n\n")
	tbl := report.Table{
		Title:   "Single-buffered speedup intervals",
		Headers: []string{"Design", "worst", "nominal", "best", "10x goal?"},
	}
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		params := paper.Params(c).WithClock(core.MHz(112.5)) // bracket midpoint
		bounds, err := core.PredictBounds(params, u)
		if err != nil {
			return "", err
		}
		lo, hi := bounds.SpeedupRange(core.SingleBuffered)
		tbl.AddRow(params.Name,
			report.FormatSpeedup(lo),
			report.FormatSpeedup(bounds.Nominal.SpeedupSingle),
			report.FormatSpeedup(hi),
			bounds.MeetsTarget(10, core.SingleBuffered).String())
	}
	b.WriteString(tbl.String())
	b.WriteString("\nAn 'uncertain' verdict tells the designer which estimates to refine before\ncommitting — the interval generalization of the paper's clock sweep.\n")
	return b.String(), nil
}
