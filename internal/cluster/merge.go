package cluster

import (
	"fmt"
	"sort"

	"github.com/chrec/rat/internal/explore"
)

// ShardResult is one shard's contribution to the merge: the candidate
// index range it covered and the outcome as candidate indices. The
// wire carries indices, not candidate numbers, by design: the JSON
// form renders clocks in MHz — a division whose last bit need not
// survive the round trip — so the merger re-derives every surviving
// candidate's exact numbers locally through explore.EvalIndices. The
// merged result is then bit-for-bit what a single-node explore.Run
// would have produced.
type ShardResult struct {
	// Lo, Hi is the candidate index range [Lo, Hi) the shard covered.
	Lo, Hi uint64
	// Evaluated and Feasible are the shard's candidate counts.
	Evaluated uint64
	Feasible  uint64
	// Top are the shard's best candidate indices under the run's
	// objective (at most K of them).
	Top []uint64
	// Frontier are the shard's Pareto-optimal candidate indices.
	Frontier []uint64
}

// merger folds shard results into a single-node-identical
// explore.Result. It is a pure accumulator: the outcome depends only
// on the set of distinct shards folded in — arrival order and
// duplicate completions (a straggler's re-dispatched shard finishing
// twice) cannot change it. This is the determinism invariant of
// docs/DISTRIBUTED.md, pinned by the order-independence property
// tests in merge_test.go.
//
// Correctness of merging per-shard selections rests on two set
// inclusions. Top-K: each of the global best K lives in some shard,
// where at most K-1 better candidates can precede it, so it is in
// that shard's top K — the union of shard top-Ks contains the global
// top K, and re-ranking by the same total order recovers it.
// Frontier: a globally non-dominated candidate is non-dominated
// within its shard, so the union of shard frontiers contains the
// global frontier, and one more Pareto pass removes the cross-shard
// dominated remainder.
type merger struct {
	grid     explore.Grid
	cons     explore.Constraints
	obj      explore.Objective
	k        int
	frontier bool

	// seen keys merged shards by Lo: shards partition the index
	// range, so Lo identifies one. A duplicate completion is dropped
	// here, whatever worker it came from.
	seen      map[uint64]bool
	evaluated uint64
	feasible  uint64
	topIdx    map[uint64]bool
	frontIdx  map[uint64]bool
}

func newMerger(grid explore.Grid, cons explore.Constraints, obj explore.Objective, k int, frontier bool) *merger {
	return &merger{
		grid: grid, cons: cons, obj: obj, k: k, frontier: frontier,
		seen:   map[uint64]bool{},
		topIdx: map[uint64]bool{}, frontIdx: map[uint64]bool{},
	}
}

// add folds one shard completion in. It reports false — and changes
// nothing — when that shard was already merged (the duplicate-
// completion path), so a shard completing twice cannot double-count
// candidates: explore.Frontier keeps equal objective vectors, and a
// duplicated candidate would corrupt both sets.
func (m *merger) add(sr ShardResult) bool {
	if m.seen[sr.Lo] {
		return false
	}
	m.seen[sr.Lo] = true
	m.evaluated += sr.Evaluated
	m.feasible += sr.Feasible
	for _, idx := range sr.Top {
		m.topIdx[idx] = true
	}
	for _, idx := range sr.Frontier {
		m.frontIdx[idx] = true
	}
	return true
}

// result assembles the merged explore.Result. want is the candidate
// count the shards must cover in total (the span of the explored
// index range); a mismatch means lost or overlapping shards and is an
// error, never a silently partial result.
func (m *merger) result(want uint64) (explore.Result, error) {
	if m.evaluated != want {
		return explore.Result{}, fmt.Errorf("cluster: merged shards cover %d candidates, want %d", m.evaluated, want)
	}
	res := explore.Result{Evaluated: m.evaluated, Feasible: m.feasible}
	top, err := m.eval(m.topIdx, "top")
	if err != nil {
		return explore.Result{}, err
	}
	res.Top = explore.SelectTop(m.obj, m.k, top)
	if m.frontier {
		front, err := m.eval(m.frontIdx, "frontier")
		if err != nil {
			return explore.Result{}, err
		}
		res.Frontier = explore.Frontier(front)
	}
	return res, nil
}

// eval re-derives the exact candidates behind a merged index set.
func (m *merger) eval(set map[uint64]bool, what string) ([]explore.Candidate, error) {
	idxs := make([]uint64, 0, len(set))
	for idx := range set {
		idxs = append(idxs, idx)
	}
	// EvalIndices sorts internally, but hand it a sorted slice anyway
	// so no map iteration order ever leaves this function.
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	cands, err := explore.EvalIndices(m.grid, m.cons, idxs)
	if err != nil {
		return nil, fmt.Errorf("cluster: re-evaluating merged %s set: %w", what, err)
	}
	if len(cands) != len(idxs) {
		// A worker returned a candidate that fails the constraints
		// locally — grids or constraints diverged across the fleet.
		return nil, fmt.Errorf("cluster: %d of %d merged %s candidates fail the constraints locally (fleet grid mismatch?)", len(idxs)-len(cands), len(idxs), what)
	}
	return cands, nil
}
