package cluster

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/explore"
	"github.com/chrec/rat/internal/paper"
)

// testGrid is the explore package's 144-candidate fixture: a
// six-dimensional grid around the paper's 1-D PDF study.
func testGrid() explore.Grid {
	return explore.Grid{
		Base:            paper.PDF1DParams(),
		Clocks:          paper.ClocksHz,
		ThroughputProcs: []float64{10, 20, 40},
		Alphas:          []float64{0.16, 0.37},
		BlockSizes:      []int64{512, 2048},
		Devices:         []int{1, 4},
		Topology:        core.IndependentChannels,
	}
}

// shardResults evaluates the grid in shards of size step through
// explore.Run — exactly what a remote worker does for a sharded
// request — and returns their ShardResults.
func shardResults(t *testing.T, g explore.Grid, cons explore.Constraints, obj explore.Objective, k int, step uint64) []ShardResult {
	t.Helper()
	size := g.Size()
	var out []ShardResult
	for lo := uint64(0); lo < size; lo += step {
		hi := lo + step
		if hi > size {
			hi = size
		}
		res, err := explore.Run(g, explore.Options{
			Workers: 1, TopK: k, Objective: obj, Constraints: cons,
			IndexLo: lo, IndexHi: hi,
		})
		if err != nil {
			t.Fatalf("shard [%d,%d): %v", lo, hi, err)
		}
		sr := ShardResult{Lo: lo, Hi: hi, Evaluated: res.Evaluated, Feasible: res.Feasible}
		for _, c := range res.Top {
			sr.Top = append(sr.Top, c.Index)
		}
		for _, c := range res.Frontier {
			sr.Frontier = append(sr.Frontier, c.Index)
		}
		out = append(out, sr)
	}
	return out
}

// TestMergeMatchesSingleNode: folding per-shard results recovers the
// single-node result exactly, across objectives, shard sizes and K.
func TestMergeMatchesSingleNode(t *testing.T) {
	g := testGrid()
	cons := explore.Constraints{MinSpeedup: 1}
	for _, obj := range []explore.Objective{explore.MaxSpeedup, explore.MinTRC, explore.MinCost} {
		for _, step := range []uint64{1, 7, 16, 50, 144, 1000} {
			for _, k := range []int{1, 5, 10} {
				want, err := explore.Run(g, explore.Options{
					Workers: 1, TopK: k, Objective: obj, Constraints: cons,
				})
				if err != nil {
					t.Fatal(err)
				}
				m := newMerger(g, cons, obj, k, true)
				for _, sr := range shardResults(t, g, cons, obj, k, step) {
					if !m.add(sr) {
						t.Fatalf("obj=%v step=%d: add rejected a distinct shard", obj, step)
					}
				}
				got, err := m.result(g.Size())
				if err != nil {
					t.Fatalf("obj=%v step=%d k=%d: %v", obj, step, k, err)
				}
				if !reflect.DeepEqual(got.Top, want.Top) {
					t.Errorf("obj=%v step=%d k=%d: merged top diverges from single-node", obj, step, k)
				}
				if !reflect.DeepEqual(got.Frontier, want.Frontier) {
					t.Errorf("obj=%v step=%d k=%d: merged frontier diverges from single-node", obj, step, k)
				}
				if got.Evaluated != want.Evaluated || got.Feasible != want.Feasible {
					t.Errorf("obj=%v step=%d: counts (%d, %d), want (%d, %d)",
						obj, step, got.Evaluated, got.Feasible, want.Evaluated, want.Feasible)
				}
			}
		}
	}
}

// TestMergeOrderIndependence is the determinism property test: under
// adversarial arrival orders — random permutations with re-dispatched
// shards completing a second (or third) time at random points — the
// merged result never changes. A fleet cannot control completion
// order, so the merge must not see it.
func TestMergeOrderIndependence(t *testing.T) {
	g := testGrid()
	cons := explore.Constraints{}
	obj := explore.MaxSpeedup
	const k = 10
	shards := shardResults(t, g, cons, obj, k, 13) // ragged final shard

	ref := func() explore.Result {
		m := newMerger(g, cons, obj, k, true)
		for _, sr := range shards {
			m.add(sr)
		}
		res, err := m.result(g.Size())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		// An adversarial arrival sequence: every shard at least once,
		// plus random duplicate completions, in random order.
		arrivals := append([]ShardResult(nil), shards...)
		for i := 0; i < rnd.Intn(len(shards)); i++ {
			arrivals = append(arrivals, shards[rnd.Intn(len(shards))])
		}
		rnd.Shuffle(len(arrivals), func(i, j int) { arrivals[i], arrivals[j] = arrivals[j], arrivals[i] })

		m := newMerger(g, cons, obj, k, true)
		merged := map[uint64]bool{}
		for _, sr := range arrivals {
			if got, want := m.add(sr), !merged[sr.Lo]; got != want {
				t.Fatalf("trial %d: add(shard %d) = %v, want %v", trial, sr.Lo, got, want)
			}
			merged[sr.Lo] = true
		}
		res, err := m.result(g.Size())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("trial %d: merged result depends on arrival order", trial)
		}
	}
}

// TestMergeIncompleteCoverage: a merge over shards that do not cover
// the whole span errors instead of returning a silently partial
// result.
func TestMergeIncompleteCoverage(t *testing.T) {
	g := testGrid()
	shards := shardResults(t, g, explore.Constraints{}, explore.MaxSpeedup, 10, 16)
	m := newMerger(g, explore.Constraints{}, explore.MaxSpeedup, 10, false)
	for _, sr := range shards[:len(shards)-1] {
		m.add(sr)
	}
	if _, err := m.result(g.Size()); err == nil || !strings.Contains(err.Error(), "merged shards cover") {
		t.Fatalf("result with a missing shard = %v, want coverage error", err)
	}
}
