// Package cluster shards one design-space exploration across a fleet
// of ratd workers and merges the shard results byte-identically with
// a single-node explore.Run.
//
// The coordinator splits the grid's candidate-index range into
// contiguous shards, dispatches them over the typed client's
// streaming explore endpoint (each shard is an ordinary
// POST /v1/explore with index_lo/index_hi set), and folds the
// completions into a pure merger keyed by shard identity. Real fleet
// behavior is handled in the scheduler, never in the merge: down
// workers are probed via /v1/status until they return, stragglers are
// speculatively re-dispatched after a deadline, failed shards are
// work-stolen onto healthy workers, per-worker in-flight dispatch is
// bounded, and a 429's Retry-After backs one worker off without
// abandoning it. Whatever the fleet does — any worker count, any
// shard size, duplicate completions from re-dispatch — the merged
// result is bit-for-bit the single-node result for the same request.
// See docs/DISTRIBUTED.md.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/chrec/rat/client"
	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/explore"
	"github.com/chrec/rat/internal/telemetry"
)

// Worker is one ratd instance as the coordinator sees it. *client.Client
// satisfies it; tests substitute in-process fakes.
type Worker interface {
	// ExploreStream runs one (sharded) exploration, streaming
	// candidate lines to fn and returning the closing summary.
	ExploreStream(ctx context.Context, req api.ExploreRequest, fn func(api.ExploreLine) error) (api.ExploreSummary, error)
	// Status probes liveness; any non-error response marks the worker
	// healthy again.
	Status(ctx context.Context) (api.Status, error)
}

// Remote is one fleet member: a worker plus the name used in stats,
// metrics and error messages (conventionally its base URL).
type Remote struct {
	Name string
	W    Worker
}

// Config shapes a Coordinator.
type Config struct {
	// Workers is the fleet; at least one.
	Workers []Remote
	// ShardSize is the candidate count per shard. 0 derives
	// span/(8*workers) — enough oversubscription that one slow worker
	// cannot stall the run — clamped to [1, 2^20]. Whatever the
	// value, the shard count is capped at 2^20 (shard size grows to
	// compensate), so coordinator bookkeeping stays bounded.
	ShardSize uint64
	// MaxInflight bounds concurrently dispatched shards per worker
	// (default 2), respecting the fleet's admission limits.
	MaxInflight int
	// ShardTimeout is the straggler deadline: a dispatched shard
	// still running after this long is speculatively re-dispatched to
	// another eligible worker (default 30s). The first completion
	// wins; the merger discards the duplicate.
	ShardTimeout time.Duration
	// MaxAttempts is how many times one shard may fully fail (every
	// dispatched copy erroring) before the run is abandoned. Default
	// 3 per worker, minimum 3.
	MaxAttempts int
	// ProbeInterval paces /v1/status probes of down workers (default
	// 500ms); ProbeTimeout bounds one probe (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// Tick is the scheduler's housekeeping cadence — straggler
	// checks, probe scheduling, backoff expiry (default 50ms).
	Tick time.Duration
	// Metrics, when non-nil, receives coordinator telemetry:
	// cluster.shards_* counters, the cluster.workers_healthy gauge
	// and the cluster.shard_latency timer.
	Metrics *telemetry.Registry
}

// Stats describes how a distributed run went. None of it affects the
// merged result.
type Stats struct {
	Workers      int
	Shards       int
	Dispatched   int64
	Retried      int64
	Redispatched int64
	Duplicates   int64
	Failures     int64
	// PerWorker follows Config.Workers order.
	PerWorker []WorkerStats
}

// WorkerStats is one worker's share of a run.
type WorkerStats struct {
	Name     string
	Shards   int64
	Failures int64
}

// API converts the stats to their wire form.
func (s Stats) API() api.ClusterStats {
	out := api.ClusterStats{
		Workers:      s.Workers,
		Shards:       s.Shards,
		Dispatched:   s.Dispatched,
		Retried:      s.Retried,
		Redispatched: s.Redispatched,
		Duplicates:   s.Duplicates,
		Failures:     s.Failures,
		PerWorker:    make([]api.WorkerShardStats, 0, len(s.PerWorker)),
	}
	for _, w := range s.PerWorker {
		out.PerWorker = append(out.PerWorker, api.WorkerShardStats{Worker: w.Name, Shards: w.Shards, Failures: w.Failures})
	}
	return out
}

// ErrFleet marks a distributed run that failed because of fleet
// behavior — every worker down, a shard out of attempts, divergent
// shard results — rather than a bad request. Servers map it to 502.
var ErrFleet = errors.New("cluster: fleet failure")

// maxShards bounds coordinator bookkeeping regardless of ShardSize.
const maxShards = 1 << 20

// Coordinator shards explorations across a fleet. Construct with New;
// one Coordinator may run many explorations, concurrently or not.
type Coordinator struct {
	cfg Config

	mDispatched *telemetry.Counter
	mCompleted  *telemetry.Counter
	mRetried    *telemetry.Counter
	mRedisp     *telemetry.Counter
	mDup        *telemetry.Counter
	mFail       *telemetry.Counter
	mHealthy    *telemetry.Gauge
	mLatency    *telemetry.Timer
}

// New validates the configuration and applies defaults.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	for i, w := range cfg.Workers {
		if w.W == nil {
			return nil, fmt.Errorf("cluster: worker %d (%q) is nil", i, w.Name)
		}
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 30 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3 * len(cfg.Workers)
	}
	if cfg.MaxAttempts < 3 {
		cfg.MaxAttempts = 3
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 50 * time.Millisecond
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry() // private sink; keeps the hot paths branch-free
	}
	return &Coordinator{
		cfg:         cfg,
		mDispatched: reg.Counter("cluster.shards_dispatched"),
		mCompleted:  reg.Counter("cluster.shards_completed"),
		mRetried:    reg.Counter("cluster.shards_retried"),
		mRedisp:     reg.Counter("cluster.shards_redispatched"),
		mDup:        reg.Counter("cluster.duplicate_completions"),
		mFail:       reg.Counter("cluster.worker_failures"),
		mHealthy:    reg.Gauge("cluster.workers_healthy"),
		mLatency:    reg.Timer("cluster.shard_latency"),
	}, nil
}

// shardState tracks one shard through dispatch, failure and
// re-dispatch.
type shardState struct {
	lo, hi   uint64
	inflight int          // dispatched copies still running
	running  map[int]bool // worker index -> has a copy running
	deadline time.Time    // straggler deadline of the newest copy
	attempts int          // full-failure cycles so far
	lastErr  error
	done     bool
}

// workerRT is one worker's scheduler-side runtime state.
type workerRT struct {
	healthy      bool
	inflight     int
	backoffUntil time.Time
	nextProbe    time.Time
	probing      bool
	shards       int64 // completions that won the merge
	failures     int64
}

// completion is one dispatched shard copy's outcome.
type completion struct {
	shard   int
	worker  int
	res     ShardResult
	err     error
	elapsed time.Duration
}

// probeResult is one /v1/status probe's outcome.
type probeResult struct {
	worker int
	err    error
}

// run is the mutable state of one Run call, so a Coordinator can host
// concurrent runs.
type run struct {
	shards  []shardState
	workers []workerRT
	queue   []int // shard ids awaiting (re-)dispatch, FIFO
	stats   Stats
	// stallSince marks when the run last became unable to progress
	// without a successful probe: work queued, nothing in flight, no
	// healthy worker. Zero while the run can progress.
	stallSince time.Time
}

// Run explores the request's grid across the fleet and returns the
// merged result — bit-for-bit what a single node would return for the
// same request — plus run statistics. The context bounds the whole
// run; cancellation abandons in-flight shards.
func (c *Coordinator) Run(ctx context.Context, req api.ExploreRequest) (explore.Result, Stats, error) {
	grid, err := req.Grid()
	if err != nil {
		return explore.Result{}, Stats{}, fmt.Errorf("cluster: %w", err)
	}
	if err := grid.Validate(); err != nil {
		return explore.Result{}, Stats{}, fmt.Errorf("cluster: %w", err)
	}
	size := grid.Size()
	lo, hi := req.IndexLo, req.IndexHi
	if lo == 0 && hi == 0 {
		hi = size
	}
	if hi > size || lo >= hi {
		return explore.Result{}, Stats{}, fmt.Errorf("cluster: %w", errRange(lo, hi, size))
	}
	span := hi - lo
	obj := explore.MaxSpeedup
	if req.Objective != "" {
		if obj, err = explore.ParseObjective(req.Objective); err != nil {
			return explore.Result{}, Stats{}, fmt.Errorf("cluster: %w", err)
		}
	}
	k := req.TopK
	if k <= 0 {
		k = 10
	}
	cons := explore.Constraints{
		MinSpeedup:  req.MinSpeedup,
		MaxTRC:      req.MaxTRCSeconds,
		MaxUtilComm: req.MaxUtilComm,
		MaxDevices:  req.MaxDevices,
	}

	shardSize := c.shardSize(span)
	st := &run{workers: make([]workerRT, len(c.cfg.Workers))}
	for slo := lo; slo < hi; slo += shardSize {
		shi := slo + shardSize
		if shi > hi {
			shi = hi
		}
		st.shards = append(st.shards, shardState{lo: slo, hi: shi, running: map[int]bool{}})
		st.queue = append(st.queue, len(st.shards)-1)
	}
	for i := range st.workers {
		st.workers[i].healthy = true
	}
	c.mHealthy.Set(float64(len(st.workers)))
	st.stats.Workers = len(st.workers)
	st.stats.Shards = len(st.shards)

	m := newMerger(grid, cons, obj, k, req.Frontier)
	res, err := c.schedule(ctx, st, m, req, span)
	st.finishStats(c.cfg.Workers)
	if err != nil {
		return explore.Result{}, st.stats, err
	}
	return res, st.stats, nil
}

// schedule is the coordinator's event loop: one goroutine owns all
// scheduler state; dispatched shards and probes report back over
// channels.
func (c *Coordinator) schedule(ctx context.Context, st *run, m *merger, req api.ExploreRequest, span uint64) (explore.Result, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	comp := make(chan completion)
	probes := make(chan probeResult)
	//rat:allow-wallclock the scheduler tick paces straggler checks, probes and backoff expiry; it never touches candidate data
	ticker := time.NewTicker(c.cfg.Tick)
	defer ticker.Stop()

	//rat:allow-wallclock run wall time feeds Result.Elapsed telemetry only, never the merge
	started := time.Now()
	done := 0
	for done < len(st.shards) {
		c.dispatchReady(runCtx, st, req, comp)
		select {
		case e := <-comp:
			d, err := c.onCompletion(st, m, e)
			if err != nil {
				return explore.Result{}, err
			}
			done += d
		case p := <-probes:
			w := &st.workers[p.worker]
			w.probing = false
			if p.err == nil {
				w.healthy = true
				c.healthyGauge(st)
			} else {
				//rat:allow-wallclock probe pacing only
				w.nextProbe = time.Now().Add(c.cfg.ProbeInterval)
			}
		case <-ticker.C:
			if err := c.onTick(runCtx, st, req, comp, probes); err != nil {
				return explore.Result{}, err
			}
		case <-ctx.Done():
			return explore.Result{}, fmt.Errorf("cluster: %w (completed %d/%d shards)", ctx.Err(), done, len(st.shards))
		}
	}

	res, err := m.result(span)
	if err != nil {
		return explore.Result{}, fmt.Errorf("%w: %w", ErrFleet, err)
	}
	res.Workers = len(st.workers)
	//rat:allow-wallclock run wall time feeds Result.Elapsed telemetry only, never the merge
	res.Elapsed = time.Since(started)
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.CandidatesPerSec = float64(res.Evaluated) / secs
	}
	return res, nil
}

// dispatchReady drains the queue onto eligible workers until either
// runs out.
func (c *Coordinator) dispatchReady(runCtx context.Context, st *run, req api.ExploreRequest, comp chan<- completion) {
	//rat:allow-wallclock worker backoff expiry check; scheduling only
	now := time.Now()
	for len(st.queue) > 0 {
		si := st.queue[0]
		wi := c.pickWorker(st, si, now)
		if wi < 0 {
			return
		}
		st.queue = st.queue[1:]
		c.dispatch(runCtx, st, si, wi, req, comp, now)
	}
}

// pickWorker returns the eligible worker with the least in-flight
// work for shard si, or -1. Eligible: healthy, below MaxInflight, not
// backing off, not already running this shard.
func (c *Coordinator) pickWorker(st *run, si int, now time.Time) int {
	best := -1
	for i := range st.workers {
		w := &st.workers[i]
		if !w.healthy || w.inflight >= c.cfg.MaxInflight || now.Before(w.backoffUntil) || st.shards[si].running[i] {
			continue
		}
		if best < 0 || w.inflight < st.workers[best].inflight {
			best = i
		}
	}
	return best
}

// dispatch launches one copy of shard si on worker wi.
func (c *Coordinator) dispatch(runCtx context.Context, st *run, si, wi int, req api.ExploreRequest, comp chan<- completion, now time.Time) {
	sh := &st.shards[si]
	sh.inflight++
	sh.running[wi] = true
	sh.deadline = now.Add(c.cfg.ShardTimeout)
	st.workers[wi].inflight++
	st.stats.Dispatched++
	c.mDispatched.Inc()

	sreq := req
	sreq.IndexLo, sreq.IndexHi = sh.lo, sh.hi
	w := c.cfg.Workers[wi].W
	go func() {
		//rat:allow-wallclock per-shard latency telemetry only
		start := time.Now()
		var top, front []uint64
		sum, err := w.ExploreStream(runCtx, sreq, func(line api.ExploreLine) error {
			if line.Candidate == nil {
				return nil
			}
			switch line.Kind {
			case "top":
				top = append(top, line.Candidate.Index)
			case "frontier":
				front = append(front, line.Candidate.Index)
			}
			return nil
		})
		e := completion{shard: si, worker: wi, err: err}
		//rat:allow-wallclock per-shard latency telemetry only
		e.elapsed = time.Since(start)
		if err == nil {
			e.res = ShardResult{
				Lo: sreq.IndexLo, Hi: sreq.IndexHi,
				Evaluated: sum.Evaluated, Feasible: sum.Feasible,
				Top: top, Frontier: front,
			}
		}
		select {
		case comp <- e:
		case <-runCtx.Done():
		}
	}()
}

// onCompletion folds one shard copy's outcome into the scheduler and
// the merger. It returns how many shards newly completed (0 or 1); a
// non-nil error aborts the run.
func (c *Coordinator) onCompletion(st *run, m *merger, e completion) (int, error) {
	sh := &st.shards[e.shard]
	w := &st.workers[e.worker]
	sh.inflight--
	delete(sh.running, e.worker)
	w.inflight--

	if e.err != nil {
		sh.lastErr = e.err
		w.failures++
		st.stats.Failures++
		c.mFail.Inc()
		c.noteWorkerError(st, e.worker, e.err)
		if sh.done || sh.inflight > 0 {
			return 0, nil // another copy is still running or already won
		}
		sh.attempts++
		if sh.attempts >= c.cfg.MaxAttempts {
			return 0, fmt.Errorf("%w: shard [%d,%d) failed after %d attempts: %w",
				ErrFleet, sh.lo, sh.hi, sh.attempts, sh.lastErr)
		}
		st.queue = append(st.queue, e.shard)
		st.stats.Retried++
		c.mRetried.Inc()
		return 0, nil
	}

	c.mLatency.Observe(e.elapsed)
	if sh.done {
		st.stats.Duplicates++
		c.mDup.Inc()
		return 0, nil
	}
	if e.res.Evaluated != sh.hi-sh.lo {
		return 0, fmt.Errorf("%w: worker %s evaluated %d candidates for shard [%d,%d), want %d",
			ErrFleet, c.cfg.Workers[e.worker].Name, e.res.Evaluated, sh.lo, sh.hi, sh.hi-sh.lo)
	}
	if !m.add(e.res) {
		// Unreachable while shards partition the range; kept as a
		// belt-and-braces guard on the dedupe invariant.
		st.stats.Duplicates++
		c.mDup.Inc()
		return 0, nil
	}
	sh.done = true
	w.shards++
	c.mCompleted.Inc()
	return 1, nil
}

// noteWorkerError classifies a dispatch failure. An HTTP-level error
// means the worker is alive: a 429 backs it off by the server's own
// Retry-After hint, other temporary statuses by one probe interval.
// Anything else (transport error, timeout) marks the worker down
// until a /v1/status probe succeeds.
func (c *Coordinator) noteWorkerError(st *run, wi int, err error) {
	w := &st.workers[wi]
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		if d, ok := client.RetryAfter(err); ok {
			//rat:allow-wallclock admission backoff scheduling only
			w.backoffUntil = time.Now().Add(d)
		} else if apiErr.Temporary() {
			//rat:allow-wallclock admission backoff scheduling only
			w.backoffUntil = time.Now().Add(c.cfg.ProbeInterval)
		}
		return
	}
	if errors.Is(err, context.Canceled) {
		return // the run is being torn down; not the worker's fault
	}
	if w.healthy {
		w.healthy = false
		c.healthyGauge(st)
	}
	//rat:allow-wallclock probe pacing only
	w.nextProbe = time.Now().Add(c.cfg.ProbeInterval)
}

// onTick runs the scheduler's housekeeping: speculative re-dispatch
// of stragglers, /v1/status probes of down workers, and the fleet
// liveness bound. A non-nil error aborts the run.
func (c *Coordinator) onTick(runCtx context.Context, st *run, req api.ExploreRequest, comp chan<- completion, probes chan<- probeResult) error {
	//rat:allow-wallclock straggler deadlines and probe cadence; scheduling only
	now := time.Now()
	for si := range st.shards {
		sh := &st.shards[si]
		if sh.done || sh.inflight == 0 || now.Before(sh.deadline) {
			continue
		}
		wi := c.pickWorker(st, si, now)
		if wi < 0 {
			continue
		}
		c.dispatch(runCtx, st, si, wi, req, comp, now)
		st.stats.Redispatched++
		c.mRedisp.Inc()
	}
	for wi := range st.workers {
		w := &st.workers[wi]
		if w.healthy || w.probing || now.Before(w.nextProbe) {
			continue
		}
		w.probing = true
		worker := c.cfg.Workers[wi].W
		go func(wi int) {
			pctx, cancel := context.WithTimeout(runCtx, c.cfg.ProbeTimeout)
			defer cancel()
			_, err := worker.Status(pctx)
			select {
			case probes <- probeResult{worker: wi, err: err}:
			case <-runCtx.Done():
			}
		}(wi)
	}

	// Liveness: with work queued, nothing in flight and every worker
	// down, only a successful probe can move the run forward. Wait one
	// ShardTimeout for the fleet to come back, then fail rather than
	// probe forever.
	if c.stalled(st) {
		if st.stallSince.IsZero() {
			st.stallSince = now
		} else if now.Sub(st.stallSince) >= c.cfg.ShardTimeout {
			return fmt.Errorf("%w: no healthy workers for %v (%d of %d shards unfinished): %w",
				ErrFleet, c.cfg.ShardTimeout, len(st.queue), len(st.shards), st.lastQueuedErr())
		}
	} else {
		st.stallSince = time.Time{}
	}
	return nil
}

// stalled reports whether the run cannot progress without a probe
// succeeding: shards queued, no copies in flight, no healthy worker.
func (c *Coordinator) stalled(st *run) bool {
	if len(st.queue) == 0 {
		return false
	}
	for i := range st.workers {
		if st.workers[i].healthy || st.workers[i].inflight > 0 {
			return false
		}
	}
	return true
}

// lastQueuedErr surfaces the most recent failure among queued shards,
// so the stall error says why the fleet went down.
func (st *run) lastQueuedErr() error {
	for i := len(st.queue) - 1; i >= 0; i-- {
		if err := st.shards[st.queue[i]].lastErr; err != nil {
			return err
		}
	}
	return errors.New("no shard ever completed")
}

// healthyGauge publishes the current healthy-worker count.
func (c *Coordinator) healthyGauge(st *run) {
	n := 0
	for i := range st.workers {
		if st.workers[i].healthy {
			n++
		}
	}
	c.mHealthy.Set(float64(n))
}

// shardSize resolves the configured or derived shard size for a span.
func (c *Coordinator) shardSize(span uint64) uint64 {
	s := c.cfg.ShardSize
	if s == 0 {
		s = span / (8 * uint64(len(c.cfg.Workers)))
		if s > 1<<20 {
			s = 1 << 20
		}
	}
	if s < 1 {
		s = 1
	}
	// Bound the shard count whatever was asked for.
	if span/s >= maxShards {
		s = (span + maxShards - 1) / maxShards
	}
	return s
}

// finishStats snapshots per-worker stats in fleet order.
func (st *run) finishStats(workers []Remote) {
	st.stats.PerWorker = make([]WorkerStats, len(workers))
	for i, w := range workers {
		st.stats.PerWorker[i] = WorkerStats{Name: w.Name, Shards: st.workers[i].shards, Failures: st.workers[i].failures}
	}
}

// errRange builds the invalid-index-range error, wrapping
// core.ErrInvalidParameters so servers map it to 400.
func errRange(lo, hi, size uint64) error {
	return fmt.Errorf("%w: invalid index range [%d, %d) for grid size %d", core.ErrInvalidParameters, lo, hi, size)
}
