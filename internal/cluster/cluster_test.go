package cluster_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/chrec/rat/client"
	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/cluster"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/explore"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/worksheet"
)

// testRequest is the 144-candidate wire request the tests shard: the
// explore package's fixture grid in its API form.
func testRequest() api.ExploreRequest {
	return api.ExploreRequest{
		Worksheet:       worksheet.DocFromParams(paper.PDF1DParams()),
		ClocksMHz:       []float64{75, 100, 150},
		ThroughputProcs: []float64{10, 20, 40},
		Alphas:          []float64{0.16, 0.37},
		BlockSizes:      []int64{512, 2048},
		Devices:         []int{1, 4},
		Topology:        "independent",
		Objective:       "max-speedup",
		TopK:            10,
		Frontier:        true,
	}
}

// singleNode computes the reference result the distributed run must
// reproduce exactly.
func singleNode(t *testing.T, req api.ExploreRequest) explore.Result {
	t.Helper()
	g, err := req.Grid()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := req.Options(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := explore.Run(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// localWorker is an in-process Worker: it behaves exactly like a
// remote ratd — evaluating the requested index range and streaming
// candidate lines in wire form — without a network in between.
type localWorker struct{}

func (localWorker) ExploreStream(ctx context.Context, req api.ExploreRequest, fn func(api.ExploreLine) error) (api.ExploreSummary, error) {
	if err := ctx.Err(); err != nil {
		return api.ExploreSummary{}, err
	}
	g, err := req.Grid()
	if err != nil {
		return api.ExploreSummary{}, err
	}
	opts, err := req.Options(1)
	if err != nil {
		return api.ExploreSummary{}, err
	}
	res, err := explore.Run(g, opts)
	if err != nil {
		return api.ExploreSummary{}, err
	}
	for _, c := range res.Top {
		wc := api.CandidateFromCore(c)
		if err := fn(api.ExploreLine{Kind: "top", Candidate: &wc}); err != nil {
			return api.ExploreSummary{}, err
		}
	}
	if req.Frontier {
		for _, c := range res.Frontier {
			wc := api.CandidateFromCore(c)
			if err := fn(api.ExploreLine{Kind: "frontier", Candidate: &wc}); err != nil {
				return api.ExploreSummary{}, err
			}
		}
	}
	return api.ExploreSummary{Evaluated: res.Evaluated, Feasible: res.Feasible}, nil
}

func (localWorker) Status(ctx context.Context) (api.Status, error) {
	return api.Status{}, nil
}

// dyingWorker serves healthyCalls shards, then fails every explore
// and every probe — a worker killed mid-run and never coming back.
type dyingWorker struct {
	inner        cluster.Worker
	healthyCalls int

	mu    sync.Mutex
	calls int
}

func (w *dyingWorker) dead() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.calls >= w.healthyCalls
}

func (w *dyingWorker) ExploreStream(ctx context.Context, req api.ExploreRequest, fn func(api.ExploreLine) error) (api.ExploreSummary, error) {
	w.mu.Lock()
	dead := w.calls >= w.healthyCalls
	if !dead {
		w.calls++
	}
	w.mu.Unlock()
	if dead {
		return api.ExploreSummary{}, errors.New("dial tcp: connection refused")
	}
	return w.inner.ExploreStream(ctx, req, fn)
}

func (w *dyingWorker) Status(ctx context.Context) (api.Status, error) {
	if w.dead() {
		return api.Status{}, errors.New("dial tcp: connection refused")
	}
	return api.Status{}, nil
}

// busyWorker answers its first overloaded calls with a 429 and a
// Retry-After hint, like a ratd shedding load, then recovers.
type busyWorker struct {
	inner      cluster.Worker
	overloaded int

	mu    sync.Mutex
	calls int
}

func (w *busyWorker) ExploreStream(ctx context.Context, req api.ExploreRequest, fn func(api.ExploreLine) error) (api.ExploreSummary, error) {
	w.mu.Lock()
	w.calls++
	busy := w.calls <= w.overloaded
	w.mu.Unlock()
	if busy {
		return api.ExploreSummary{}, &client.APIError{
			StatusCode: 429, Message: "too busy", RetryAfter: 10 * time.Millisecond,
		}
	}
	return w.inner.ExploreStream(ctx, req, fn)
}

func (w *busyWorker) Status(ctx context.Context) (api.Status, error) {
	return api.Status{}, nil
}

// slowWorker delays each shard before delegating, keeping a run
// alive long enough for timing-driven scheduler paths (backoff
// expiry, straggler deadlines) to engage.
type slowWorker struct {
	inner cluster.Worker
	delay time.Duration
}

func (w slowWorker) ExploreStream(ctx context.Context, req api.ExploreRequest, fn func(api.ExploreLine) error) (api.ExploreSummary, error) {
	select {
	case <-time.After(w.delay):
	case <-ctx.Done():
		return api.ExploreSummary{}, ctx.Err()
	}
	return w.inner.ExploreStream(ctx, req, fn)
}

func (w slowWorker) Status(ctx context.Context) (api.Status, error) {
	return w.inner.Status(ctx)
}

// hangingWorker never answers: every dispatched shard blocks until
// the coordinator gives up on it. The straggler path's worst case.
type hangingWorker struct{}

func (hangingWorker) ExploreStream(ctx context.Context, req api.ExploreRequest, fn func(api.ExploreLine) error) (api.ExploreSummary, error) {
	<-ctx.Done()
	return api.ExploreSummary{}, ctx.Err()
}

func (hangingWorker) Status(ctx context.Context) (api.Status, error) {
	return api.Status{}, nil
}

// fastConfig keeps scheduler timing test-sized.
func fastConfig(workers ...cluster.Remote) cluster.Config {
	return cluster.Config{
		Workers:       workers,
		ShardSize:     7, // 21 ragged shards over 144 candidates
		MaxInflight:   4,
		ShardTimeout:  200 * time.Millisecond,
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  100 * time.Millisecond,
		Tick:          5 * time.Millisecond,
	}
}

// assertSameResult compares the distributed result to the single-node
// reference on everything the determinism contract covers. Elapsed,
// Workers and CandidatesPerSec are run-shaped telemetry, not results.
func assertSameResult(t *testing.T, got, want explore.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Top, want.Top) {
		t.Errorf("distributed top diverges from single-node:\n got  %+v\n want %+v", got.Top, want.Top)
	}
	if !reflect.DeepEqual(got.Frontier, want.Frontier) {
		t.Errorf("distributed frontier diverges from single-node:\n got  %+v\n want %+v", got.Frontier, want.Frontier)
	}
	if got.Evaluated != want.Evaluated || got.Feasible != want.Feasible {
		t.Errorf("distributed counts (%d, %d), want (%d, %d)",
			got.Evaluated, got.Feasible, want.Evaluated, want.Feasible)
	}
}

// TestRunMatchesSingleNode: 1, 2 and 4 healthy workers all reproduce
// the single-node result exactly, at several shard sizes.
func TestRunMatchesSingleNode(t *testing.T) {
	req := testRequest()
	want := singleNode(t, req)
	for _, n := range []int{1, 2, 4} {
		for _, shardSize := range []uint64{0, 1, 7, 50, 1000} {
			var remotes []cluster.Remote
			for i := 0; i < n; i++ {
				remotes = append(remotes, cluster.Remote{Name: "w", W: localWorker{}})
			}
			cfg := fastConfig(remotes...)
			cfg.ShardSize = shardSize
			coord, err := cluster.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, stats, err := coord.Run(context.Background(), req)
			if err != nil {
				t.Fatalf("workers=%d shardSize=%d: %v", n, shardSize, err)
			}
			assertSameResult(t, res, want)
			if stats.Workers != n {
				t.Errorf("stats.Workers = %d, want %d", stats.Workers, n)
			}
			if stats.Dispatched < int64(stats.Shards) {
				t.Errorf("dispatched %d shards of %d", stats.Dispatched, stats.Shards)
			}
		}
	}
}

// TestRunWorkerDiesMidRun: one of two workers dies after a few shards
// and never returns; its lost shards are retried onto the survivor
// and the result still matches single-node bit for bit.
func TestRunWorkerDiesMidRun(t *testing.T) {
	req := testRequest()
	want := singleNode(t, req)
	dying := &dyingWorker{inner: localWorker{}, healthyCalls: 3}
	coord, err := cluster.New(fastConfig(
		cluster.Remote{Name: "healthy", W: localWorker{}},
		cluster.Remote{Name: "dying", W: dying},
	))
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := coord.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, res, want)
	if stats.Failures == 0 || stats.Retried == 0 {
		t.Errorf("stats = %+v, want failures and retries from the dying worker", stats)
	}
	if stats.PerWorker[1].Failures == 0 {
		t.Errorf("per-worker stats %+v missed the dying worker's failures", stats.PerWorker)
	}
}

// TestRunBackpressure: a worker that sheds its first calls with 429 +
// Retry-After is backed off, not declared dead, and the run completes
// identically.
func TestRunBackpressure(t *testing.T) {
	req := testRequest()
	want := singleNode(t, req)
	// The calm worker is slowed so the run outlives the busy worker's
	// Retry-After window — otherwise backoff recovery never engages.
	busy := &busyWorker{inner: localWorker{}, overloaded: 4}
	cfg := fastConfig(
		cluster.Remote{Name: "calm", W: slowWorker{inner: localWorker{}, delay: 10 * time.Millisecond}},
		cluster.Remote{Name: "busy", W: busy},
	)
	cfg.MaxAttempts = 100 // the 429 bursts must not exhaust a shard's budget
	coord, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := coord.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, res, want)
	if stats.Failures == 0 {
		t.Errorf("stats = %+v, want 429s counted as failures", stats)
	}
	if stats.PerWorker[1].Shards == 0 {
		t.Errorf("per-worker stats %+v: the busy worker never recovered", stats.PerWorker)
	}
}

// TestRunStragglerRedispatch: a worker that hangs forever triggers
// deadline-based speculative re-dispatch; the run completes on the
// healthy worker with the exact single-node result.
func TestRunStragglerRedispatch(t *testing.T) {
	req := testRequest()
	want := singleNode(t, req)
	cfg := fastConfig(
		cluster.Remote{Name: "healthy", W: localWorker{}},
		cluster.Remote{Name: "hung", W: hangingWorker{}},
	)
	cfg.ShardTimeout = 50 * time.Millisecond
	coord, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, stats, err := coord.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, res, want)
	if stats.Redispatched == 0 {
		t.Errorf("stats = %+v, want speculative re-dispatches of the hung worker's shards", stats)
	}
}

// TestRunFleetFailure: when every worker is down, the run fails with
// ErrFleet instead of hanging or returning a partial result.
func TestRunFleetFailure(t *testing.T) {
	req := testRequest()
	dead := &dyingWorker{inner: localWorker{}, healthyCalls: 0}
	cfg := fastConfig(cluster.Remote{Name: "dead", W: dead})
	cfg.MaxAttempts = 2
	coord, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = coord.Run(context.Background(), req)
	if !errors.Is(err, cluster.ErrFleet) {
		t.Fatalf("Run with a dead fleet = %v, want ErrFleet", err)
	}
}

// TestRunInvalidRange: a bad index range is a caller error (wrapped
// ErrInvalidParameters), rejected before any dispatch.
func TestRunInvalidRange(t *testing.T) {
	coord, err := cluster.New(fastConfig(cluster.Remote{Name: "w", W: localWorker{}}))
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest()
	req.IndexLo, req.IndexHi = 10, 100000
	if _, _, err := coord.Run(context.Background(), req); !errors.Is(err, core.ErrInvalidParameters) {
		t.Fatalf("Run with out-of-range shard = %v, want ErrInvalidParameters", err)
	}
}

// TestRunContextCancel: cancelling the run context aborts promptly
// with the context error.
func TestRunContextCancel(t *testing.T) {
	coord, err := cluster.New(fastConfig(cluster.Remote{Name: "hung", W: hangingWorker{}}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := coord.Run(ctx, testRequest()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with cancelled context = %v, want context.Canceled", err)
	}
}

// TestRunPartialRange: a request already carrying an index range is
// sharded within that range only, matching a single-node run of the
// same slice.
func TestRunPartialRange(t *testing.T) {
	req := testRequest()
	req.IndexLo, req.IndexHi = 16, 100
	want := singleNode(t, req)
	coord, err := cluster.New(fastConfig(
		cluster.Remote{Name: "a", W: localWorker{}},
		cluster.Remote{Name: "b", W: localWorker{}},
	))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := coord.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, res, want)
	if res.Evaluated != 84 {
		t.Errorf("Evaluated = %d, want the 84-candidate slice", res.Evaluated)
	}
}
