// Package obs is the request-observability substrate of the RAT
// prediction service: compact trace identifiers propagated end to end
// (client -> X-Rat-Trace header -> context.Context -> every serving
// stage), and sharded, lock-free per-stage latency histograms cheap
// enough to run on the cached-hit hot path.
//
// The design keeps the instrumented fast path allocation-free: a Trace
// is a plain value the server embeds in storage it already allocates
// per request, stage recording is a handful of atomic adds, and header
// parsing never touches the heap. Only carrying the Trace through a
// context (one context.WithValue node) costs an allocation, and only
// on traced requests. See docs/OBSERVABILITY.md for the header
// contract and the exported metric families.
package obs

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"time"
)

// TraceID identifies one logical request across retries and process
// boundaries. The wire form is 16 lowercase hex characters.
type TraceID [8]byte

// SpanID identifies one attempt (one HTTP exchange) within a trace.
// The wire form is 8 lowercase hex characters.
type SpanID [4]byte

// NewTraceID returns a random trace ID. The generator is math/rand/v2
// (per-goroutine state, no locks, no allocation): trace IDs need
// uniqueness for correlation, not unpredictability.
func NewTraceID() TraceID {
	var id TraceID
	v := rand.Uint64()
	for v == 0 { // the zero ID means "no trace"
		v = rand.Uint64()
	}
	for i := range id {
		id[i] = byte(v >> (8 * i))
	}
	return id
}

// NewSpanID returns a random span ID.
func NewSpanID() SpanID {
	var id SpanID
	v := rand.Uint32()
	for v == 0 {
		v = rand.Uint32()
	}
	for i := range id {
		id[i] = byte(v >> (8 * i))
	}
	return id
}

// IsZero reports whether the ID is the absent-trace sentinel.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 16-hex-character wire form.
func (t TraceID) String() string {
	var buf [16]byte
	hex.Encode(buf[:], t[:])
	return string(buf[:])
}

// String returns the 8-hex-character wire form.
func (s SpanID) String() string {
	var buf [8]byte
	hex.Encode(buf[:], s[:])
	return string(buf[:])
}

// TraceHeader is the HTTP header carrying the trace context:
// "<16 hex trace>-<8 hex span>". Servers echo the incoming value back
// on the response so callers can prove the trace round-tripped.
const TraceHeader = "X-Rat-Trace"

// StagesHeader is the opt-in HTTP request header: any non-empty value
// asks the server to answer with the same header carrying the
// per-stage latency breakdown (see Trace.StagesValue).
const StagesHeader = "X-Rat-Stages"

// ParseTraceHeader decodes the "<trace>-<span>" wire form. It is
// allocation-free and strict: exactly 16+1+8 lowercase-or-uppercase
// hex characters, non-zero trace ID.
func ParseTraceHeader(s string) (TraceID, SpanID, bool) {
	var id TraceID
	var span SpanID
	if len(s) != 25 || s[16] != '-' {
		return TraceID{}, SpanID{}, false
	}
	for i := 0; i < 8; i++ {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return TraceID{}, SpanID{}, false
		}
		id[i] = hi<<4 | lo
	}
	for i := 0; i < 4; i++ {
		hi, ok1 := hexVal(s[17+2*i])
		lo, ok2 := hexVal(s[17+2*i+1])
		if !ok1 || !ok2 {
			return TraceID{}, SpanID{}, false
		}
		span[i] = hi<<4 | lo
	}
	if id.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return id, span, true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// FormatTraceHeader renders the wire form of the pair.
func FormatTraceHeader(id TraceID, span SpanID) string {
	var buf [25]byte
	hex.Encode(buf[:16], id[:])
	buf[16] = '-'
	hex.Encode(buf[17:], span[:])
	return string(buf[:])
}

// Trace is one request's observability record: identity plus the
// per-stage latencies accumulated as the request moves through the
// serving stack. It is a plain value so owners can embed it in
// per-request storage they already allocate; methods must be called
// from one goroutine at a time (the request's own), which is how the
// server uses it.
type Trace struct {
	ID   TraceID
	Span SpanID

	stages [NumStages]int64 // nanoseconds
}

// Valid reports whether the trace carries an identity.
func (t *Trace) Valid() bool { return !t.ID.IsZero() }

// Add accumulates d into the stage's latency.
func (t *Trace) Add(s Stage, d time.Duration) {
	if d < 0 || s < 0 || s >= NumStages {
		return
	}
	t.stages[s] += int64(d)
}

// StageNs returns the accumulated nanoseconds of one stage.
func (t *Trace) StageNs(s Stage) int64 {
	if s < 0 || s >= NumStages {
		return 0
	}
	return t.stages[s]
}

// Header returns the trace's X-Rat-Trace wire form.
func (t *Trace) Header() string { return FormatTraceHeader(t.ID, t.Span) }

// StagesValue renders the per-stage breakdown for the X-Rat-Stages
// response header: "admission=120;cache=35;batch_wait=0;kernel=90;
// encode=15", integer nanoseconds, every stage always present, in
// stage order.
func (t *Trace) StagesValue() string {
	buf := make([]byte, 0, 96)
	for s := Stage(0); s < NumStages; s++ {
		if s > 0 {
			buf = append(buf, ';')
		}
		buf = append(buf, s.String()...)
		buf = append(buf, '=')
		buf = appendInt(buf, t.stages[s])
	}
	return string(buf)
}

// appendInt appends the decimal form of a non-negative int64.
func appendInt(buf []byte, v int64) []byte {
	if v <= 0 {
		return append(buf, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(buf, tmp[i:]...)
}

// ctxKey is the private context key type for Trace propagation.
type ctxKey struct{}

// With returns a context carrying the trace. The caller keeps
// ownership of tr; With is the only allocation on the traced path (one
// context node).
func With(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// From returns the trace carried by ctx, or nil when the request is
// untraced. Callers must treat nil as "record nothing per-request" and
// keep feeding the global StageSet.
func From(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
