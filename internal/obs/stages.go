package obs

import (
	"math/bits"
	"sync/atomic"
	"time"

	"github.com/chrec/rat/internal/telemetry"
)

// Stage names one segment of the serving pipeline. The set matches the
// request's journey through ratd: admission queueing, response-cache
// lookup, coalescing-batcher linger, the prediction kernel, and
// response encoding.
type Stage int

const (
	StageAdmission Stage = iota
	StageCache
	StageBatchWait
	StageKernel
	StageEncode
	NumStages
)

// String returns the stage's metric label value.
func (s Stage) String() string {
	switch s {
	case StageAdmission:
		return "admission"
	case StageCache:
		return "cache"
	case StageBatchWait:
		return "batch_wait"
	case StageKernel:
		return "kernel"
	case StageEncode:
		return "encode"
	}
	return "unknown"
}

// Stages lists every stage in order, for ranging.
func Stages() [NumStages]Stage {
	return [NumStages]Stage{StageAdmission, StageCache, StageBatchWait, StageKernel, StageEncode}
}

const (
	// stageShards spreads concurrent observers across cache lines; a
	// power of two so shard selection is a mask.
	stageShards = 8
	// numStageBuckets log2-spaced buckets from 256ns doubling to
	// ~2.1s; longer observations land in the overflow count.
	numStageBuckets = 24
	// stageBucketBaseNs is the first bucket's inclusive upper bound.
	stageBucketBaseNs = 256
)

// stageShard is one shard's counters. Counts are per (stage, bucket),
// plus a total and a nanosecond sum per stage so snapshots can report
// counts and means without walking buckets twice.
type stageShard struct {
	counts [NumStages][numStageBuckets + 1]atomic.Int64 // last slot = overflow
	sums   [NumStages]atomic.Int64
	// pad keeps neighbouring shards off one cache line.
	_ [64]byte
}

// StageSet accumulates per-stage latency distributions without locks:
// Observe is a few atomic adds on a shard picked from the observation
// itself, so concurrent requests rarely contend on one cache line.
// The zero value is ready to use.
type StageSet struct {
	shards [stageShards]stageShard
}

// Observe records one stage latency. Negative durations count as zero.
// Safe for unlimited concurrency.
func (ss *StageSet) Observe(s Stage, d time.Duration) {
	if s < 0 || s >= NumStages {
		return
	}
	if d < 0 {
		d = 0
	}
	n := uint64(d)
	// Shard on the observation's own low bits: nanosecond-resolution
	// clocks make them effectively random, and the choice costs
	// nothing. Mix in higher bits for coarse clocks.
	sh := &ss.shards[(n^n>>7^n>>13)&(stageShards-1)]
	sh.counts[s][stageBucket(n)].Add(1)
	sh.sums[s].Add(int64(d))
}

// stageBucket maps nanoseconds to the index of the first bucket whose
// upper bound contains it; numStageBuckets means overflow.
func stageBucket(n uint64) int {
	if n <= stageBucketBaseNs {
		return 0
	}
	idx := bits.Len64((n - 1) / stageBucketBaseNs)
	if idx > numStageBuckets {
		return numStageBuckets
	}
	return idx
}

// StageBounds returns the bucket upper bounds in seconds, the shape
// every StageSet histogram snapshot uses.
func StageBounds() []float64 {
	bounds := make([]float64, numStageBuckets)
	for i := range bounds {
		bounds[i] = float64(uint64(stageBucketBaseNs)<<uint(i)) / 1e9
	}
	return bounds
}

// Count returns the total observations of one stage.
func (ss *StageSet) Count(s Stage) int64 {
	return ss.Histogram(s).Count
}

// Histogram merges the shards into one snapshot for the stage, in the
// shape of the telemetry registry's histograms: per-bucket (not
// cumulative) counts with upper bounds in seconds, plus sum and
// overflow. Count is derived from the bucket counts, so the snapshot
// is internally consistent (the Prometheus +Inf bucket always equals
// the count) even when Observes race the read.
func (ss *StageSet) Histogram(s Stage) telemetry.HistogramStats {
	var hs telemetry.HistogramStats
	if s < 0 || s >= NumStages {
		return hs
	}
	bounds := StageBounds()
	hs.Buckets = make([]telemetry.BucketCount, numStageBuckets)
	var sumNs int64
	for i := range ss.shards {
		sh := &ss.shards[i]
		for b := 0; b < numStageBuckets; b++ {
			hs.Buckets[b].Count += sh.counts[s][b].Load()
		}
		hs.Overflow += sh.counts[s][numStageBuckets].Load()
		sumNs += sh.sums[s].Load()
	}
	for b := range hs.Buckets {
		hs.Buckets[b].UpperBound = bounds[b]
		hs.Count += hs.Buckets[b].Count
	}
	hs.Count += hs.Overflow
	hs.Sum = float64(sumNs) / 1e9
	return hs
}
