package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		id, span := NewTraceID(), NewSpanID()
		hdr := FormatTraceHeader(id, span)
		if len(hdr) != 25 || hdr[16] != '-' {
			t.Fatalf("header %q has the wrong shape", hdr)
		}
		gotID, gotSpan, ok := ParseTraceHeader(hdr)
		if !ok || gotID != id || gotSpan != span {
			t.Fatalf("ParseTraceHeader(%q) = %v %v %v, want %v %v true", hdr, gotID, gotSpan, ok, id, span)
		}
	}
}

func TestParseTraceHeaderRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"deadbeef",
		"0123456789abcdef01234567",    // no separator
		"0123456789abcdef-0123456",    // short span
		"0123456789abcdef-012345678",  // long span
		"0123456789abcdeg-01234567",   // non-hex trace
		"0123456789abcdef-0123456g",   // non-hex span
		"0000000000000000-01234567",   // zero trace ID
		"0123456789abcdef_01234567",   // wrong separator
		" 123456789abcdef-01234567",   // leading space
		"0123456789abcdef-01234567 ",  // trailing garbage (length)
		"0123456789abcdef-01234567-x", // too long
	} {
		if _, _, ok := ParseTraceHeader(s); ok {
			t.Errorf("ParseTraceHeader(%q) accepted, want reject", s)
		}
	}
	// Uppercase hex is accepted (header values survive proxies that
	// normalize case).
	id, span, ok := ParseTraceHeader("0123456789ABCDEF-01234567")
	if !ok || id.IsZero() || span == (SpanID{}) {
		t.Error("uppercase hex header rejected")
	}
}

func TestNewIDsNonZero(t *testing.T) {
	for i := 0; i < 1000; i++ {
		if NewTraceID().IsZero() {
			t.Fatal("NewTraceID returned the zero sentinel")
		}
		if NewSpanID() == (SpanID{}) {
			t.Fatal("NewSpanID returned zero")
		}
	}
}

func TestTraceContext(t *testing.T) {
	if From(context.Background()) != nil {
		t.Error("From(empty ctx) != nil")
	}
	tr := &Trace{ID: NewTraceID(), Span: NewSpanID()}
	ctx := With(context.Background(), tr)
	if got := From(ctx); got != tr {
		t.Errorf("From returned %p, want %p", got, tr)
	}
}

func TestTraceStagesValue(t *testing.T) {
	var tr Trace
	tr.Add(StageAdmission, 120*time.Nanosecond)
	tr.Add(StageKernel, 90*time.Nanosecond)
	tr.Add(StageKernel, 10*time.Nanosecond) // accumulates
	tr.Add(StageEncode, -time.Second)       // negative ignored
	got := tr.StagesValue()
	want := "admission=120;cache=0;batch_wait=0;kernel=100;encode=0"
	if got != want {
		t.Errorf("StagesValue = %q, want %q", got, want)
	}
	if tr.StageNs(StageKernel) != 100 {
		t.Errorf("StageNs(kernel) = %d, want 100", tr.StageNs(StageKernel))
	}
	if tr.Valid() {
		t.Error("zero-ID trace reports Valid")
	}
}

func TestStageBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 0}, {256, 0},
		{257, 1}, {512, 1},
		{513, 2}, {1024, 2},
		{1025, 3},
		{256 << 23, numStageBuckets - 1},
		{256<<23 + 1, numStageBuckets},
		{1 << 62, numStageBuckets},
	}
	for _, c := range cases {
		if got := stageBucket(c.ns); got != c.want {
			t.Errorf("stageBucket(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	bounds := StageBounds()
	if len(bounds) != numStageBuckets {
		t.Fatalf("StageBounds length %d, want %d", len(bounds), numStageBuckets)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] != 2*bounds[i-1] {
			t.Errorf("bounds[%d] = %g, want double of %g", i, bounds[i], bounds[i-1])
		}
	}
	if bounds[0] != 256e-9 {
		t.Errorf("bounds[0] = %g, want 256ns in seconds", bounds[0])
	}
}

func TestStageSetHistogram(t *testing.T) {
	var ss StageSet
	ss.Observe(StageCache, 100*time.Nanosecond)  // bucket 0
	ss.Observe(StageCache, 300*time.Nanosecond)  // bucket 1
	ss.Observe(StageCache, 300*time.Nanosecond)  // bucket 1
	ss.Observe(StageCache, -time.Second)         // clamps to bucket 0
	ss.Observe(StageCache, 10*time.Second)       // overflow
	ss.Observe(StageKernel, 500*time.Nanosecond) // other stage untouched

	h := ss.Histogram(StageCache)
	if h.Count != 5 {
		t.Errorf("count = %d, want 5", h.Count)
	}
	if h.Buckets[0].Count != 2 || h.Buckets[1].Count != 2 {
		t.Errorf("buckets[0,1] = %d,%d, want 2,2", h.Buckets[0].Count, h.Buckets[1].Count)
	}
	if h.Overflow != 1 {
		t.Errorf("overflow = %d, want 1", h.Overflow)
	}
	wantSum := (100 + 300 + 300 + 0 + 10e9) / 1e9
	if diff := h.Sum - wantSum; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("sum = %g, want %g", h.Sum, wantSum)
	}
	if got := ss.Count(StageKernel); got != 1 {
		t.Errorf("kernel count = %d, want 1", got)
	}
	if got := ss.Count(StageEncode); got != 0 {
		t.Errorf("encode count = %d, want 0", got)
	}
}

// TestStageSetConcurrent hammers Observe from many goroutines while a
// reader snapshots, under -race in CI. Totals must balance exactly
// once the writers stop.
func TestStageSetConcurrent(t *testing.T) {
	var ss StageSet
	const (
		workers = 8
		perW    = 2000
	)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h := ss.Histogram(StageKernel)
				var n int64
				for _, b := range h.Buckets {
					n += b.Count
				}
				if n+h.Overflow != h.Count {
					t.Error("snapshot count does not equal its bucket total")
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				ss.Observe(StageKernel, time.Duration(w*1000+i)*time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := ss.Count(StageKernel); got != workers*perW {
		t.Errorf("final count = %d, want %d", got, workers*perW)
	}
}

func TestStageStrings(t *testing.T) {
	want := []string{"admission", "cache", "batch_wait", "kernel", "encode"}
	for i, s := range Stages() {
		if s.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s.String(), want[i])
		}
	}
	if Stage(99).String() != "unknown" {
		t.Error("out-of-range stage should stringify as unknown")
	}
	joined := strings.Join(want, ";")
	if !strings.Contains(fmt.Sprint(joined), "batch_wait") {
		t.Error("sanity") // keeps fmt/strings imports honest
	}
}
