package wire

import (
	"bytes"
	"errors"
	"testing"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/worksheet"
)

func TestBinaryWorksheetRoundTrip(t *testing.T) {
	for _, p := range caseStudies() {
		frame := AppendBinaryWorksheet(nil, p)
		got, err := DecodeBinaryWorksheet(frame, nil)
		if err != nil {
			t.Fatalf("decode %q: %v", p.Name, err)
		}
		if got != p {
			t.Fatalf("binary round trip changed %q:\n  in:  %+v\n  out: %+v", p.Name, p, got)
		}
	}
}

// TestBinaryJSONSameParameters pins the cross-format invariant the
// server relies on: a worksheet sent as JSON and the same worksheet
// sent as a binary frame decode to identical core.Parameters, so both
// paths feed bit-identical inputs to the kernel.
func TestBinaryJSONSameParameters(t *testing.T) {
	for _, p := range caseStudies() {
		fromJSON, err := DecodeWorksheet(marshalWorksheetJSON(t, p))
		if err != nil {
			t.Fatalf("json decode: %v", err)
		}
		fromBin, err := DecodeBinaryWorksheet(AppendBinaryWorksheet(nil, p), nil)
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		if fromJSON != fromBin {
			t.Fatalf("formats disagree for %q:\n  json:   %+v\n  binary: %+v", p.Name, fromJSON, fromBin)
		}
	}
}

func TestBinaryWorksheetBatchRoundTrip(t *testing.T) {
	ps := caseStudies()
	frame := AppendBinaryWorksheets(nil, ps)
	got, err := DecodeBinaryWorksheetBatch(frame, nil, nil)
	if err != nil {
		t.Fatalf("decode batch: %v", err)
	}
	if len(got) != len(ps) {
		t.Fatalf("count mismatch: %d != %d", len(got), len(ps))
	}
	for i := range ps {
		if got[i] != ps[i] {
			t.Fatalf("element %d changed:\n  in:  %+v\n  out: %+v", i, ps[i], got[i])
		}
	}

	empty, err := DecodeBinaryWorksheetBatch(AppendBinaryWorksheets(nil, nil), nil, nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v / %d elements", err, len(empty))
	}
}

func TestBinaryPredictionRoundTrip(t *testing.T) {
	for _, p := range caseStudies() {
		pr, err := core.Predict(p)
		if err != nil {
			t.Fatalf("predict: %v", err)
		}
		w := api.PredictionFromCore(pr)
		got, err := DecodeBinaryPrediction(AppendBinaryPrediction(nil, &w))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != w {
			t.Fatalf("prediction round trip changed %q:\n  in:  %+v\n  out: %+v", p.Name, w, got)
		}
	}
}

func TestBinaryPredictionBatchRoundTrip(t *testing.T) {
	ps := caseStudies()
	prs := make([]core.Prediction, len(ps))
	for i, p := range ps {
		pr, err := core.Predict(p)
		if err != nil {
			t.Fatalf("predict: %v", err)
		}
		prs[i] = pr
	}
	got, err := DecodeBinaryPredictions(AppendBinaryPredictions(nil, prs))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(prs) {
		t.Fatalf("count mismatch: %d != %d", len(got), len(prs))
	}
	for i := range prs {
		if got[i] != api.PredictionFromCore(prs[i]) {
			t.Fatalf("element %d changed", i)
		}
	}
}

func TestBinaryMultiPredictionRoundTrip(t *testing.T) {
	for _, topo := range []core.Topology{core.SharedChannel, core.IndependentChannels} {
		mp, err := core.PredictMulti(paper.MDParams(), core.MultiConfig{Devices: 8, Topology: topo})
		if err != nil {
			t.Fatalf("predict multi: %v", err)
		}
		w := api.MultiPredictionFromCore(mp)
		got, err := DecodeBinaryMultiPrediction(AppendBinaryMultiPrediction(nil, &w))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != w {
			t.Fatalf("multi round trip changed (%v):\n  in:  %+v\n  out: %+v", topo, w, got)
		}
	}
}

func TestBinaryWorksheetRejectsMalformedFrames(t *testing.T) {
	valid := AppendBinaryWorksheet(nil, paper.PDF1DParams())
	cases := map[string][]byte{
		"empty":           nil,
		"short header":    valid[:3],
		"bad magic":       append([]byte("XATB"), valid[4:]...),
		"bad version":     append([]byte("RATB\x02"), valid[5:]...),
		"wrong kind":      append([]byte("RATB\x01\x11"), valid[6:]...),
		"truncated":       valid[:len(valid)-1],
		"header only":     valid[:binHeaderLen],
		"trailing":        append(append([]byte{}, valid...), 0),
		"huge name":       append([]byte("RATB\x01\x01\xff\xff\xff\xff"), valid[10:]...),
		"batch as single": AppendBinaryWorksheets(nil, []core.Parameters{paper.PDF1DParams()}),
	}
	for name, frame := range cases {
		if _, err := DecodeBinaryWorksheet(frame, nil); err == nil {
			t.Errorf("%s: decode accepted a malformed frame", name)
		} else if !errors.Is(err, worksheet.ErrSyntax) {
			t.Errorf("%s: error %v does not wrap worksheet.ErrSyntax", name, err)
		}
	}
}

func TestBinaryWorksheetBatchRejectsHostileCount(t *testing.T) {
	// A frame claiming 2^31 worksheets with no payload must be
	// rejected before any allocation is attempted.
	frame := append([]byte("RATB\x01\x02"), 0, 0, 0, 0x80)
	if _, err := DecodeBinaryWorksheetBatch(frame, nil, nil); err == nil {
		t.Fatal("hostile count accepted")
	}
	if _, err := DecodeBinaryPredictions(append([]byte("RATB\x01\x12"), 0xff, 0xff, 0xff, 0xff)); err == nil {
		t.Fatal("hostile prediction count accepted")
	}
}

func TestBinaryWorksheetValidates(t *testing.T) {
	p := paper.PDF1DParams()
	p.Dataset.ElementsIn = -1
	frame := AppendBinaryWorksheet(nil, p)
	_, err := DecodeBinaryWorksheet(frame, nil)
	if err == nil {
		t.Fatal("invalid worksheet accepted")
	}
	if errors.Is(err, worksheet.ErrSyntax) {
		t.Fatalf("validation failure misclassified as syntax: %v", err)
	}
}

func TestBinaryMultiPredictionRejectsUnknownTopology(t *testing.T) {
	mp := api.MultiPredictionFromCore(core.MultiPrediction{
		Config: core.MultiConfig{Devices: 2, Topology: core.SharedChannel},
	})
	frame := AppendBinaryMultiPrediction(nil, &mp)
	frame[binHeaderLen+4] = 7 // the topology byte follows u32 devices
	if _, err := DecodeBinaryMultiPrediction(frame); err == nil {
		t.Fatal("unknown topology byte accepted")
	}
}

func TestBinaryFrameSizes(t *testing.T) {
	p := paper.PDF1DParams()
	frame := AppendBinaryWorksheet(nil, p)
	want := binHeaderLen + binWorksheetFixed + len(p.Name)
	if len(frame) != want {
		t.Fatalf("worksheet frame is %d bytes, want %d", len(frame), want)
	}
	if !bytes.HasPrefix(frame, []byte("RATB\x01\x01")) {
		t.Fatalf("bad frame prefix % x", frame[:6])
	}
}
