package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/worksheet"
)

// Binary wire format (application/x-rat-bin), negotiated per request
// via Content-Type (request body) and Accept (response body). Frames
// are little-endian and fixed-shape — no tokenizing, no escaping —
// which makes them the cheap choice for bulk batch traffic:
//
//	"RATB" | version (1 byte, currently 1) | kind (1 byte) | payload
//
// Worksheet payloads carry the wire units of the JSON form (MB/s,
// MHz), so a binary request canonicalizes through the exact same
// Doc.Params() conversion as a JSON one and the two paths feed
// bit-identical core.Parameters to the kernel. See docs/SERVER.md.
const (
	// ContentTypeBinary is the media type of the binary wire format.
	ContentTypeBinary = "application/x-rat-bin"

	binMagic   = "RATB"
	binVersion = 1

	// Frame kinds.
	binKindWorksheet       = 0x01
	binKindWorksheetBatch  = 0x02
	binKindPrediction      = 0x11
	binKindPredictionBatch = 0x12
	binKindMultiPrediction = 0x13

	binHeaderLen = 6

	// One worksheet payload: u32 name length + 11 fixed 8-byte fields.
	binWorksheetFixed = 4 + 11*8
	binPredictionTail = 12 * 8
	binMultiTail      = 7 * 8
)

// errShortFrame reports a frame that ends before its payload does.
var errShortFrame = fmt.Errorf("truncated binary frame")

func appendBinHeader(dst []byte, kind byte) []byte {
	dst = append(dst, binMagic...)
	return append(dst, binVersion, kind)
}

// checkBinHeader validates the magic/version/kind prefix and returns
// the payload that follows it.
func checkBinHeader(data []byte, kind byte) ([]byte, error) {
	if len(data) < binHeaderLen {
		return nil, errShortFrame
	}
	if string(data[:4]) != binMagic {
		return nil, fmt.Errorf("not a %s frame (bad magic)", ContentTypeBinary)
	}
	if data[4] != binVersion {
		return nil, fmt.Errorf("unsupported binary wire version %d (want %d)", data[4], binVersion)
	}
	if data[5] != kind {
		return nil, fmt.Errorf("unexpected binary frame kind 0x%02x (want 0x%02x)", data[5], kind)
	}
	return data[binHeaderLen:], nil
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendI64(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

type binReader struct {
	data []byte
	pos  int
}

func (r *binReader) u32() (uint32, error) {
	if len(r.data)-r.pos < 4 {
		return 0, errShortFrame
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *binReader) f64() (float64, error) {
	if len(r.data)-r.pos < 8 {
		return 0, errShortFrame
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.pos:]))
	r.pos += 8
	return v, nil
}

func (r *binReader) i64() (int64, error) {
	if len(r.data)-r.pos < 8 {
		return 0, errShortFrame
	}
	v := int64(binary.LittleEndian.Uint64(r.data[r.pos:]))
	r.pos += 8
	return v, nil
}

func (r *binReader) bytes(n int) ([]byte, error) {
	if n < 0 || len(r.data)-r.pos < n {
		return nil, errShortFrame
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

// done errors unless the whole frame has been consumed; trailing bytes
// in a binary frame are a protocol error (unlike trailing JSON after a
// top-level object, which json.Decoder ignores).
func (r *binReader) done() error {
	if r.pos != len(r.data) {
		return fmt.Errorf("%d trailing bytes after binary frame", len(r.data)-r.pos)
	}
	return nil
}

// appendDocPayload appends the fixed worksheet payload in wire units.
func appendDocPayload(dst []byte, d *worksheet.Doc) []byte {
	dst = appendU32(dst, uint32(len(d.Name)))
	dst = append(dst, d.Name...)
	dst = appendI64(dst, d.Dataset.ElementsIn)
	dst = appendI64(dst, d.Dataset.ElementsOut)
	dst = appendF64(dst, d.Dataset.BytesPerElement)
	dst = appendF64(dst, d.Comm.IdealThroughputMBps)
	dst = appendF64(dst, d.Comm.AlphaWrite)
	dst = appendF64(dst, d.Comm.AlphaRead)
	dst = appendF64(dst, d.Comp.OpsPerElement)
	dst = appendF64(dst, d.Comp.ThroughputProc)
	dst = appendF64(dst, d.Comp.ClockMHz)
	dst = appendF64(dst, d.Soft.TSoftSeconds)
	return appendI64(dst, d.Soft.Iterations)
}

func (r *binReader) docPayload(d *worksheet.Doc, intern func([]byte) string) error {
	nameLen, err := r.u32()
	if err != nil {
		return err
	}
	name, err := r.bytes(int(nameLen))
	if err != nil {
		return err
	}
	if len(name) > 0 {
		if intern != nil {
			d.Name = intern(name)
		} else {
			d.Name = string(name)
		}
	}
	if d.Dataset.ElementsIn, err = r.i64(); err != nil {
		return err
	}
	if d.Dataset.ElementsOut, err = r.i64(); err != nil {
		return err
	}
	if d.Dataset.BytesPerElement, err = r.f64(); err != nil {
		return err
	}
	if d.Comm.IdealThroughputMBps, err = r.f64(); err != nil {
		return err
	}
	if d.Comm.AlphaWrite, err = r.f64(); err != nil {
		return err
	}
	if d.Comm.AlphaRead, err = r.f64(); err != nil {
		return err
	}
	if d.Comp.OpsPerElement, err = r.f64(); err != nil {
		return err
	}
	if d.Comp.ThroughputProc, err = r.f64(); err != nil {
		return err
	}
	if d.Comp.ClockMHz, err = r.f64(); err != nil {
		return err
	}
	if d.Soft.TSoftSeconds, err = r.f64(); err != nil {
		return err
	}
	d.Soft.Iterations, err = r.i64()
	return err
}

// AppendBinaryWorksheet appends one worksheet request frame.
func AppendBinaryWorksheet(dst []byte, p core.Parameters) []byte {
	dst = appendBinHeader(dst, binKindWorksheet)
	d := worksheet.DocFromParams(p)
	return appendDocPayload(dst, &d)
}

// DecodeBinaryWorksheet parses and validates one worksheet request
// frame: the binary counterpart of DecodeWorksheetIntern. Framing
// errors wrap worksheet.ErrSyntax, validation errors
// core.ErrInvalidParameters — the same error classes as the JSON path,
// so the server maps both formats to HTTP statuses identically.
//
//rat:hotpath
func DecodeBinaryWorksheet(data []byte, intern func([]byte) string) (core.Parameters, error) {
	payload, err := checkBinHeader(data, binKindWorksheet)
	if err != nil {
		return core.Parameters{}, fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
	}
	r := binReader{data: payload}
	var doc worksheet.Doc
	err = r.docPayload(&doc, intern)
	if err == nil {
		err = r.done()
	}
	if err != nil {
		return core.Parameters{}, fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
	}
	p := doc.Params()
	if err := p.Validate(); err != nil {
		return core.Parameters{}, err
	}
	return p, nil
}

// AppendBinaryWorksheets appends a worksheet batch request frame.
func AppendBinaryWorksheets(dst []byte, ps []core.Parameters) []byte {
	dst = appendBinHeader(dst, binKindWorksheetBatch)
	dst = appendU32(dst, uint32(len(ps)))
	for i := range ps {
		d := worksheet.DocFromParams(ps[i])
		dst = appendDocPayload(dst, &d)
	}
	return dst
}

// DecodeBinaryWorksheetBatch parses a worksheet batch request frame
// into unvalidated core.Parameters (validation is deferred to
// core.PredictBatch, exactly like the JSON batch path). Errors wrap
// worksheet.ErrSyntax.
//
//rat:hotpath
func DecodeBinaryWorksheetBatch(data []byte, params []core.Parameters, intern func([]byte) string) ([]core.Parameters, error) {
	payload, err := checkBinHeader(data, binKindWorksheetBatch)
	if err != nil {
		return params, fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
	}
	r := binReader{data: payload}
	count, err := r.u32()
	if err != nil {
		return params, fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
	}
	// A worksheet payload is at least binWorksheetFixed bytes, so a
	// count the remaining bytes cannot hold is a malformed frame — the
	// check stops a hostile header from forcing a huge allocation.
	if int64(count)*binWorksheetFixed > int64(len(payload)-4) {
		return params, fmt.Errorf("%w: frame too short for %d worksheets", worksheet.ErrSyntax, count)
	}
	for i := uint32(0); i < count; i++ {
		var doc worksheet.Doc
		if err := r.docPayload(&doc, intern); err != nil {
			return params, fmt.Errorf("%w: worksheet %d: %v", worksheet.ErrSyntax, i, err)
		}
		params = append(params, doc.Params())
	}
	if err := r.done(); err != nil {
		return params, fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
	}
	return params, nil
}

// AppendBinaryPrediction appends one prediction response frame. The
// payload is the request worksheet followed by the twelve throughput
// test outputs in api.Prediction field order.
//
//rat:hotpath
func AppendBinaryPrediction(dst []byte, p *api.Prediction) []byte {
	dst = appendBinHeader(dst, binKindPrediction)
	return appendBinPredictionPayload(dst, p)
}

func appendBinPredictionPayload(dst []byte, p *api.Prediction) []byte {
	dst = appendDocPayload(dst, &p.Worksheet)
	dst = appendF64(dst, p.TWriteSeconds)
	dst = appendF64(dst, p.TReadSeconds)
	dst = appendF64(dst, p.TCommSeconds)
	dst = appendF64(dst, p.TCompSeconds)
	dst = appendF64(dst, p.TRCSingleSeconds)
	dst = appendF64(dst, p.TRCDoubleSeconds)
	dst = appendF64(dst, p.SpeedupSingle)
	dst = appendF64(dst, p.SpeedupDouble)
	dst = appendF64(dst, p.UtilCompSingle)
	dst = appendF64(dst, p.UtilCommSingle)
	dst = appendF64(dst, p.UtilCompDouble)
	return appendF64(dst, p.UtilCommDouble)
}

func (r *binReader) predictionPayload(p *api.Prediction) error {
	if err := r.docPayload(&p.Worksheet, nil); err != nil {
		return err
	}
	fields := [...]*float64{
		&p.TWriteSeconds, &p.TReadSeconds, &p.TCommSeconds, &p.TCompSeconds,
		&p.TRCSingleSeconds, &p.TRCDoubleSeconds, &p.SpeedupSingle, &p.SpeedupDouble,
		&p.UtilCompSingle, &p.UtilCommSingle, &p.UtilCompDouble, &p.UtilCommDouble,
	}
	for _, f := range fields {
		v, err := r.f64()
		if err != nil {
			return err
		}
		*f = v
	}
	return nil
}

// DecodeBinaryPrediction parses one prediction response frame.
func DecodeBinaryPrediction(data []byte) (api.Prediction, error) {
	payload, err := checkBinHeader(data, binKindPrediction)
	if err != nil {
		return api.Prediction{}, err
	}
	r := binReader{data: payload}
	var p api.Prediction
	if err := r.predictionPayload(&p); err != nil {
		return api.Prediction{}, err
	}
	if err := r.done(); err != nil {
		return api.Prediction{}, err
	}
	return p, nil
}

// AppendBinaryPredictions appends a prediction batch response frame.
//
//rat:hotpath
func AppendBinaryPredictions(dst []byte, prs []core.Prediction) []byte {
	dst = appendBinHeader(dst, binKindPredictionBatch)
	dst = appendU32(dst, uint32(len(prs)))
	for i := range prs {
		p := api.PredictionFromCore(prs[i])
		dst = appendBinPredictionPayload(dst, &p)
	}
	return dst
}

// DecodeBinaryPredictions parses a prediction batch response frame.
func DecodeBinaryPredictions(data []byte) ([]api.Prediction, error) {
	payload, err := checkBinHeader(data, binKindPredictionBatch)
	if err != nil {
		return nil, err
	}
	r := binReader{data: payload}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int64(count)*(binWorksheetFixed+binPredictionTail) > int64(len(payload)-4) {
		return nil, fmt.Errorf("frame too short for %d predictions", count)
	}
	prs := make([]api.Prediction, 0, count)
	for i := uint32(0); i < count; i++ {
		var p api.Prediction
		if err := r.predictionPayload(&p); err != nil {
			return nil, fmt.Errorf("prediction %d: %w", i, err)
		}
		prs = append(prs, p)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return prs, nil
}

// AppendBinaryMultiPrediction appends a multi-FPGA prediction response
// frame: u32 devices + topology byte + the single-device prediction
// payload + the seven multi-device outputs.
//
//rat:hotpath
func AppendBinaryMultiPrediction(dst []byte, mp *api.MultiPrediction) []byte {
	dst = appendBinHeader(dst, binKindMultiPrediction)
	dst = appendU32(dst, uint32(mp.Devices))
	topo, _ := api.ParseTopology(mp.Topology)
	dst = append(dst, byte(topo))
	dst = appendBinPredictionPayload(dst, &mp.Single)
	dst = appendF64(dst, mp.TCommSeconds)
	dst = appendF64(dst, mp.TCompSeconds)
	dst = appendF64(dst, mp.TRCSingleSeconds)
	dst = appendF64(dst, mp.TRCDoubleSeconds)
	dst = appendF64(dst, mp.SpeedupSingle)
	dst = appendF64(dst, mp.SpeedupDouble)
	return appendF64(dst, mp.ScalingEfficiency)
}

// DecodeBinaryMultiPrediction parses a multi-FPGA prediction response
// frame.
func DecodeBinaryMultiPrediction(data []byte) (api.MultiPrediction, error) {
	payload, err := checkBinHeader(data, binKindMultiPrediction)
	if err != nil {
		return api.MultiPrediction{}, err
	}
	r := binReader{data: payload}
	var mp api.MultiPrediction
	devices, err := r.u32()
	if err != nil {
		return api.MultiPrediction{}, err
	}
	mp.Devices = int(devices)
	topoByte, err := r.bytes(1)
	if err != nil {
		return api.MultiPrediction{}, err
	}
	switch core.Topology(topoByte[0]) {
	case core.SharedChannel, core.IndependentChannels:
		mp.Topology = core.Topology(topoByte[0]).String()
	default:
		return api.MultiPrediction{}, fmt.Errorf("unknown topology byte 0x%02x", topoByte[0])
	}
	if err := r.predictionPayload(&mp.Single); err != nil {
		return api.MultiPrediction{}, err
	}
	fields := [...]*float64{
		&mp.TCommSeconds, &mp.TCompSeconds, &mp.TRCSingleSeconds,
		&mp.TRCDoubleSeconds, &mp.SpeedupSingle, &mp.SpeedupDouble,
		&mp.ScalingEfficiency,
	}
	for _, f := range fields {
		v, err := r.f64()
		if err != nil {
			return api.MultiPrediction{}, err
		}
		*f = v
	}
	if err := r.done(); err != nil {
		return api.MultiPrediction{}, err
	}
	return mp, nil
}
