package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/worksheet"
)

// FuzzWireDecodeParity is the differential oracle for the hand-rolled
// request decoder: for every input, DecodeWorksheet must accept or
// reject byte-identically with worksheet.DecodeJSON (the encoding/json
// reference), classify errors identically (syntax vs validation), and
// on accept produce identical core.Parameters. The CI fuzz-smoke job
// runs this continuously.
func FuzzWireDecodeParity(f *testing.F) {
	for _, p := range []core.Parameters{paper.PDF1DParams(), paper.PDF2DParams(), paper.MDParams()} {
		b, err := json.Marshal(worksheet.DocFromParams(p))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`nullx`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"NAME":"\ud800\u212a","DataSet":{"elements_in":1}}`))
	f.Add([]byte(`{"dataset":{"elements_in":9223372036854775808}}`))
	f.Add([]byte(`{"dataset":{"bytes_per_element":1e309}}`))
	f.Add([]byte(`{"dataset":null,"dataset":{"elements_in":1.5}}`))
	f.Add([]byte("{\"name\":\"\xff\x01\\u12ZZ\"}"))
	f.Fuzz(func(t *testing.T, body []byte) {
		want, wantErr := worksheet.DecodeJSON(bytes.NewReader(body))
		got, gotErr := DecodeWorksheet(body)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("accept/reject mismatch on %q:\n  encoding/json: %v\n  wire:          %v", body, wantErr, gotErr)
		}
		if wantErr != nil {
			if errors.Is(wantErr, worksheet.ErrSyntax) != errors.Is(gotErr, worksheet.ErrSyntax) {
				t.Fatalf("error class mismatch on %q:\n  encoding/json: %v\n  wire:          %v", body, wantErr, gotErr)
			}
			if errors.Is(wantErr, core.ErrInvalidParameters) != errors.Is(gotErr, core.ErrInvalidParameters) {
				t.Fatalf("validation class mismatch on %q:\n  encoding/json: %v\n  wire:          %v", body, wantErr, gotErr)
			}
			return
		}
		// Validated parameters never hold NaN, so != is exact.
		if got != want {
			t.Fatalf("parameters mismatch on %q:\n  encoding/json: %+v\n  wire:          %+v", body, want, got)
		}
	})
}

// FuzzWireEncodeParity drives the response encoder with arbitrary
// field values and requires byte equality with json.Marshal, including
// agreement on refusing non-finite floats.
func FuzzWireEncodeParity(f *testing.F) {
	f.Add("1-D PDF estimation", int64(512), int64(1), 4.0, 1000.0, 0.37, 2.560096153846154)
	f.Add("<h&>\u2028\ufffd", int64(-1), int64(math.MaxInt64), 1e-7, 1e21, math.Pi, -0.0)
	f.Add("\xffbad", int64(0), int64(0), math.Inf(1), math.NaN(), 5e-324, 1e20)
	f.Fuzz(func(t *testing.T, name string, i1, i2 int64, f1, f2, f3, f4 float64) {
		p := api.Prediction{
			TWriteSeconds: f1, TReadSeconds: f2, TCommSeconds: f3, TCompSeconds: f4,
			TRCSingleSeconds: f1 * f2, TRCDoubleSeconds: f3 - f4,
			SpeedupSingle: f4, SpeedupDouble: f1, UtilCompSingle: f2,
			UtilCommSingle: f3, UtilCompDouble: f4, UtilCommDouble: f1,
		}
		p.Worksheet.Name = name
		p.Worksheet.Dataset.ElementsIn = i1
		p.Worksheet.Dataset.ElementsOut = i2
		p.Worksheet.Dataset.BytesPerElement = f1
		p.Worksheet.Comm.IdealThroughputMBps = f2
		p.Worksheet.Comm.AlphaWrite = f3
		p.Worksheet.Comm.AlphaRead = f4
		p.Worksheet.Comp.OpsPerElement = f1
		p.Worksheet.Comp.ThroughputProc = f2
		p.Worksheet.Comp.ClockMHz = f3
		p.Worksheet.Soft.TSoftSeconds = f4
		p.Worksheet.Soft.Iterations = i1

		want, wantErr := json.Marshal(p)
		got, gotErr := AppendPrediction(nil, &p)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("marshalability mismatch: json %v, wire %v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("encoding mismatch:\n  json: %s\n  wire: %s", want, got)
		}
	})
}

// FuzzBinaryWorksheetDecode asserts the binary decoder never panics
// and that everything it accepts round-trips bit-for-bit.
func FuzzBinaryWorksheetDecode(f *testing.F) {
	f.Add(AppendBinaryWorksheet(nil, paper.PDF1DParams()))
	f.Add(AppendBinaryWorksheets(nil, []core.Parameters{paper.MDParams()}))
	f.Add([]byte("RATB\x01\x01"))
	f.Add([]byte("RATB\x01\x02\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, frame []byte) {
		p, err := DecodeBinaryWorksheet(frame, nil)
		if err != nil {
			return
		}
		again := AppendBinaryWorksheet(nil, p)
		if !bytes.Equal(again, frame) {
			t.Fatalf("accepted frame does not round-trip:\n  in:  % x\n  out: % x", frame, again)
		}
	})
}
