package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/worksheet"
)

// caseStudies returns the paper's three validation worksheets.
func caseStudies() []core.Parameters {
	return []core.Parameters{paper.PDF1DParams(), paper.PDF2DParams(), paper.MDParams()}
}

// marshalWorksheetJSON renders p's worksheet document via
// encoding/json, the reference the hand-rolled decoder must accept.
func marshalWorksheetJSON(t *testing.T, p core.Parameters) []byte {
	t.Helper()
	b, err := json.Marshal(worksheet.DocFromParams(p))
	if err != nil {
		t.Fatalf("marshal worksheet: %v", err)
	}
	return b
}

// assertDecodeParity decodes body with both decoders and requires
// identical accept/reject outcomes, identical error classes, and (on
// accept) identical parameters.
func assertDecodeParity(t *testing.T, body []byte) {
	t.Helper()
	want, wantErr := worksheet.DecodeJSON(bytes.NewReader(body))
	got, gotErr := DecodeWorksheet(body)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("accept/reject mismatch on %q:\n  encoding/json: %v\n  wire:          %v", body, wantErr, gotErr)
	}
	if wantErr != nil {
		if errors.Is(wantErr, worksheet.ErrSyntax) != errors.Is(gotErr, worksheet.ErrSyntax) {
			t.Fatalf("error class mismatch on %q:\n  encoding/json: %v\n  wire:          %v", body, wantErr, gotErr)
		}
		return
	}
	if got != want {
		t.Fatalf("parameters mismatch on %q:\n  encoding/json: %+v\n  wire:          %+v", body, want, got)
	}
}

func TestDecodeParityCaseStudies(t *testing.T) {
	for _, p := range caseStudies() {
		assertDecodeParity(t, marshalWorksheetJSON(t, p))
	}
}

func TestDecodeParityAdversarial(t *testing.T) {
	valid := string(marshalWorksheetJSON(t, paper.PDF1DParams()))
	bodies := []string{
		// Whitespace, key order, case folding.
		"  \t\r\n" + valid + "  \n",
		strings.ToUpper(valid[:1]) + valid[1:],
		`{"NAME":"x","dataset":{"elements_in":512,"elements_out":1,"bytes_per_element":4},"communication":{"IDEAL_THROUGHPUT_MBPS":1000,"alpha_write":0.37,"alpha_read":0.16},"computation":{"ops_per_element":768,"throughput_proc":20,"clock_mhz":150},"software":{"tsoft_seconds":0.578,"iterations":400}}`,
		// U+212A KELVIN SIGN folds to 'k' (cloc\u212A_mhz ~ clock_mhz);
		// U+017F LATIN SMALL LETTER LONG S folds to 's'.
		`{"dataset":{"element\u017F_in":512},"communication":{},"computation":{"cloc` + "\u212a" + `_mhz":150},"software":{}}`,
		// Escaped key that still names a field.
		`{"\u006eame":"escaped key","dataset":{"elements_in":512,"elements_out":1,"bytes_per_element":4},"communication":{"ideal_throughput_mbps":1000,"alpha_write":0.37,"alpha_read":0.16},"computation":{"ops_per_element":768,"throughput_proc":20,"clock_mhz":150},"software":{"tsoft_seconds":0.578,"iterations":400}}`,
		// Duplicate keys merge, later values win field-wise.
		`{"dataset":{"elements_in":1,"elements_out":1,"bytes_per_element":4},"dataset":{"elements_in":512},"communication":{"ideal_throughput_mbps":1000,"alpha_write":0.37,"alpha_read":0.16},"computation":{"ops_per_element":768,"throughput_proc":20,"clock_mhz":150},"software":{"tsoft_seconds":0.578,"iterations":400}}`,
		// Nulls at every level.
		`null`, `null `, `nullx`, `{"name":null,"dataset":null,"communication":null,"computation":null,"software":null}`,
		// Trailing data: ignored after an object, an error after null.
		valid + "x", valid + `{"again":true}`, `{} trailing is fine`,
		// Structure errors.
		``, `[`, `[]`, `{`, `{}`, `{,}`, `{"dataset":{,}}`, `true`, `42`, `"str"`,
		`{"dataset":[1,2]}`, `{"name":{}}`, `{"name":["x"]}`,
		`{"dataset":{"elements_in":512,}}`, `{"dataset" {"elements_in":512}}`,
		// Unknown fields at top and nested levels.
		`{"datasets":{}}`, `{"dataset":{"element_count":512}}`, `{"x":1}`,
		// Numbers: limits, grammar edges, type mismatches.
		`{"dataset":{"elements_in":9223372036854775807}}`,
		`{"dataset":{"elements_in":9223372036854775808}}`,
		`{"dataset":{"elements_in":-9223372036854775808}}`,
		`{"dataset":{"elements_in":1.0}}`, `{"dataset":{"elements_in":1e2}}`,
		`{"dataset":{"bytes_per_element":1e309}}`,
		`{"dataset":{"bytes_per_element":1e-400}}`,
		`{"dataset":{"bytes_per_element":-0}}`,
		`{"dataset":{"bytes_per_element":0.5e+3}}`,
		`{"dataset":{"bytes_per_element":01}}`, `{"dataset":{"bytes_per_element":.5}}`,
		`{"dataset":{"bytes_per_element":5.}}`, `{"dataset":{"bytes_per_element":5e}}`,
		`{"dataset":{"bytes_per_element":+1}}`, `{"dataset":{"bytes_per_element":--1}}`,
		`{"dataset":{"bytes_per_element":NaN}}`, `{"dataset":{"bytes_per_element":Infinity}}`,
		// Strings: escapes, surrogates, controls, invalid UTF-8.
		`{"name":"a\"b\\c\/d\be\ff\ng\rh\ti"}`,
		`{"name":"\u0041\u00e9\u4e2d"}`,
		`{"name":"\ud83d\ude00"}`, `{"name":"\ud800"}`, `{"name":"\ud800x"}`,
		`{"name":"\ud800\ud800"}`, `{"name":"\ude00\ud83d"}`, `{"name":"\ud800\n"}`,
		`{"name":"\u12"}`, `{"name":"\q"}`, `{"name":"\'"}`,
		"{\"name\":\"tab\tliteral\"}", "{\"name\":\"\x01\"}",
		"{\"name\":\"\xff\xfe ok\"}", "{\"name\":\"\xc3\x28\"}",
		`{"name":"<script>&amp;"}`, "{\"name\":\"line\u2028sep\u2029par\"}",
		`{"name":"ends with backslash\`,
		`{"name":"unterminated`,
		// Validation failures that parse fine (error class must match:
		// not ErrSyntax on either side).
		`{"dataset":{"elements_in":-5,"elements_out":1,"bytes_per_element":4},"communication":{"ideal_throughput_mbps":1000,"alpha_write":0.37,"alpha_read":0.16},"computation":{"ops_per_element":768,"throughput_proc":20,"clock_mhz":150},"software":{"tsoft_seconds":0.578,"iterations":400}}`,
		`{}`,
	}
	for _, body := range bodies {
		assertDecodeParity(t, []byte(body))
	}
}

func TestDecodeWorksheetDocsParity(t *testing.T) {
	valid := string(marshalWorksheetJSON(t, paper.PDF1DParams()))
	second := string(marshalWorksheetJSON(t, paper.MDParams()))
	bodies := []string{
		`[` + valid + `]`,
		`[` + valid + `,` + second + `]`,
		` [ ` + valid + ` , ` + second + ` ] `,
		`[]`, `null`, `[null]`, `[null,` + valid + `]`,
		`[{}]`, `[{},{}]`,
		// Errors.
		``, `[`, `[,]`, `[` + valid + `,]`, `[` + valid + ` ` + second + `]`,
		`[1]`, `["x"]`, `[[]]`, `{}`, `[{"bogus":1}]`, `nullx`,
	}
	for _, body := range bodies {
		var want []worksheet.Doc
		dec := json.NewDecoder(strings.NewReader(body))
		dec.DisallowUnknownFields()
		wantErr := dec.Decode(&want)
		got, gotErr := DecodeWorksheetDocs([]byte(body), nil, nil)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("accept/reject mismatch on %q:\n  encoding/json: %v\n  wire:          %v", body, wantErr, gotErr)
		}
		if gotErr != nil {
			if !errors.Is(gotErr, worksheet.ErrSyntax) {
				t.Fatalf("batch decode error does not wrap ErrSyntax on %q: %v", body, gotErr)
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("element count mismatch on %q: encoding/json %d, wire %d", body, len(want), len(got))
		}
		for i := range got {
			if got[i] != want[i].Params() {
				t.Fatalf("element %d mismatch on %q:\n  encoding/json: %+v\n  wire:          %+v", i, body, want[i].Params(), got[i])
			}
		}
	}
}

func TestDecodeWorksheetIntern(t *testing.T) {
	interned := "interned"
	calls := 0
	intern := func(b []byte) string {
		calls++
		if string(b) != "1-D PDF estimation" {
			t.Fatalf("intern saw %q", b)
		}
		return interned
	}
	body := marshalWorksheetJSON(t, paper.PDF1DParams())
	p, err := DecodeWorksheetIntern(body, intern)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if calls != 1 || p.Name != interned {
		t.Fatalf("intern not used: calls=%d name=%q", calls, p.Name)
	}
}

func TestAppendPredictionParity(t *testing.T) {
	for _, p := range caseStudies() {
		pr, err := core.Predict(p)
		if err != nil {
			t.Fatalf("predict: %v", err)
		}
		wire := api.PredictionFromCore(pr)
		want, err := json.Marshal(wire)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, err := AppendPrediction(nil, &wire)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("prediction encoding mismatch for %q:\n  json: %s\n  wire: %s", p.Name, want, got)
		}
	}
}

func TestAppendMultiPredictionParity(t *testing.T) {
	for _, p := range caseStudies() {
		for _, topo := range []core.Topology{core.SharedChannel, core.IndependentChannels} {
			mp, err := core.PredictMulti(p, core.MultiConfig{Devices: 4, Topology: topo})
			if err != nil {
				t.Fatalf("predict multi: %v", err)
			}
			wire := api.MultiPredictionFromCore(mp)
			want, err := json.Marshal(wire)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got, err := AppendMultiPrediction(nil, &wire)
			if err != nil {
				t.Fatalf("append: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("multi encoding mismatch for %q/%v:\n  json: %s\n  wire: %s", p.Name, topo, want, got)
			}
		}
	}
}

func TestAppendPredictionsParity(t *testing.T) {
	ps := caseStudies()
	prs := make([]core.Prediction, len(ps))
	wireForms := make([]api.Prediction, len(ps))
	for i, p := range ps {
		pr, err := core.Predict(p)
		if err != nil {
			t.Fatalf("predict: %v", err)
		}
		prs[i] = pr
		wireForms[i] = api.PredictionFromCore(pr)
	}
	want, err := json.Marshal(wireForms)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := AppendPredictions(nil, prs)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("batch encoding mismatch:\n  json: %s\n  wire: %s", want, got)
	}

	for _, empty := range [][]core.Prediction{nil, {}} {
		got, err := AppendPredictions(nil, empty)
		if err != nil {
			t.Fatalf("append empty: %v", err)
		}
		if string(got) != "[]" {
			t.Fatalf("empty batch encodes as %q", got)
		}
	}
}

// TestAppendPredictionHostileStrings drives the string encoder through
// every escape class via worksheet names.
func TestAppendPredictionHostileStrings(t *testing.T) {
	names := []string{
		"", "plain", `quote " back \ slash`, "new\nline\ttab\rcr", "bell\bform\ffeed",
		"\x00\x01\x1f\x7f", "<script>&'</script>", "中文 héé",
		"\u2028line\u2029para", "bad\xff\xfeutf8", "\xc3\x28",
		"ends\xf0\x9f\x98\x80emoji", strings.Repeat("a&<>\u2028\xff", 37),
	}
	for _, name := range names {
		p := paper.PDF1DParams()
		p.Name = name
		wire := api.PredictionFromCore(core.Prediction{Params: p})
		want, err := json.Marshal(wire)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, err := AppendPrediction(nil, &wire)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("string encoding mismatch for name %q:\n  json: %s\n  wire: %s", name, want, got)
		}
	}
}

// TestAppendFloatParity sweeps the float encoder across format
// boundaries and shortest-representation edge cases.
func TestAppendFloatParity(t *testing.T) {
	values := []float64{
		0, negZero(), 1, -1, 0.5, 1.0 / 3.0,
		1e-7, 9.999999e-7, 1e-6, 1.0000001e-6,
		1e20, 9.999999999999999e20, 1e21, 1.0000000000000001e21,
		-1e-7, -1e21, 131.072e-6, 0.578, 2.560096153846154,
		5e-324, 1.7976931348623157e308, 1234567890.12345678,
	}
	for _, v := range values {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		got := appendFloat(nil, v)
		if !bytes.Equal(got, want) {
			t.Fatalf("float encoding mismatch for %v: json %s, wire %s", v, want, got)
		}
	}
}

func negZero() float64 { return -0.0 }

func TestAppendersRejectNonFinite(t *testing.T) {
	pr := api.PredictionFromCore(core.Prediction{Params: paper.PDF1DParams()})
	pr.SpeedupSingle = nan()
	if _, err := AppendPrediction(nil, &pr); err == nil {
		t.Fatal("AppendPrediction accepted NaN")
	}
	mp := api.MultiPrediction{Single: pr}
	if _, err := AppendMultiPrediction(nil, &mp); err == nil {
		t.Fatal("AppendMultiPrediction accepted NaN")
	}
	if _, err := AppendPredictions(nil, []core.Prediction{{SpeedupSingle: inf()}}); err == nil {
		t.Fatal("AppendPredictions accepted Inf")
	}
}

func nan() float64 { var z float64; return z / z }
func inf() float64 { var z float64; return 1 / z }
