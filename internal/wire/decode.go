// Package wire implements the hand-rolled wire codecs of the ratd
// predict hot path: a JSON tokenizer specialized to the fixed
// worksheet shape whose accept/reject behavior is byte-identical to
// encoding/json (pinned by differential tests and
// FuzzWireDecodeParity), a JSON response encoder whose output is
// byte-identical to json.Marshal over the api wire structs, and a
// compact binary frame format (application/x-rat-bin) negotiated via
// Content-Type/Accept for bulk traffic.
//
// The decoder and encoder operate over caller-provided byte slices so
// the server can thread pooled buffers through the whole request: a
// steady-state predict request decodes, canonicalizes, and encodes
// without allocating.
package wire

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
	"unsafe"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/worksheet"
)

// bstr views b as a string without copying. The view is only ever
// handed to strconv parsers, which do not retain it, so the backing
// bytes cannot be mutated while a reference is live.
func bstr(b []byte) string { return unsafe.String(unsafe.SliceData(b), len(b)) }

var errUnexpectedEnd = errors.New("unexpected end of JSON input")

// Field-name tables, one per object in the worksheet shape. Matching
// prefers exact bytes and falls back to Unicode case folding, the same
// two-step rule encoding/json applies to struct tags.
var (
	worksheetFields = [][]byte{
		[]byte("name"), []byte("dataset"), []byte("communication"),
		[]byte("computation"), []byte("software"),
	}
	datasetFields = [][]byte{
		[]byte("elements_in"), []byte("elements_out"), []byte("bytes_per_element"),
	}
	commFields = [][]byte{
		[]byte("ideal_throughput_mbps"), []byte("alpha_write"), []byte("alpha_read"),
	}
	compFields = [][]byte{
		[]byte("ops_per_element"), []byte("throughput_proc"), []byte("clock_mhz"),
	}
	softFields = [][]byte{
		[]byte("tsoft_seconds"), []byte("iterations"),
	}
)

// matchField resolves a decoded object key to its field index,
// preferring an exact match and falling back to bytes.EqualFold — the
// same case-insensitive fallback encoding/json uses — or -1 when the
// key names no field.
func matchField(key []byte, names [][]byte) int {
	for i, n := range names {
		if bytes.Equal(key, n) {
			return i
		}
	}
	for i, n := range names {
		if bytes.EqualFold(key, n) {
			return i
		}
	}
	return -1
}

// jsonDecoder is a cursor over one request body. The zero position is
// the start of the (single) JSON value to decode.
type jsonDecoder struct {
	data   []byte
	pos    int
	intern func([]byte) string
}

// DecodeWorksheet parses one JSON worksheet and validates it: the
// drop-in replacement for worksheet.DecodeJSON on the predict path.
// It accepts and rejects byte-identically with DecodeJSON (unknown
// fields rejected at every nesting level, trailing data after the
// top-level object ignored) and yields identical core.Parameters;
// FuzzWireDecodeParity pins the equivalence. Syntax errors wrap
// worksheet.ErrSyntax, validation errors core.ErrInvalidParameters.
func DecodeWorksheet(data []byte) (core.Parameters, error) {
	return DecodeWorksheetIntern(data, nil)
}

// DecodeWorksheetIntern is DecodeWorksheet with a caller-supplied
// string interner for the worksheet name, letting a pooled caller
// decode repeat worksheets without allocating the name. A nil intern
// falls back to a plain string conversion.
//
//rat:hotpath
func DecodeWorksheetIntern(data []byte, intern func([]byte) string) (core.Parameters, error) {
	d := jsonDecoder{data: data, intern: intern}
	var doc worksheet.Doc
	if err := d.decodeTopLevel(&doc); err != nil {
		return core.Parameters{}, fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
	}
	p := doc.Params()
	if err := p.Validate(); err != nil {
		return core.Parameters{}, err
	}
	return p, nil
}

// DecodeWorksheetDocs parses a JSON array of worksheets, appending one
// unvalidated core.Parameters per element — the exact shape
// /v1/predict/batch historically decoded via encoding/json (a
// []worksheet.Doc with unknown fields rejected, elements converted by
// Doc.Params, validation deferred to core.PredictBatch). A top-level
// null yields no elements, mirroring JSON null into a slice. Errors
// wrap worksheet.ErrSyntax.
//
//rat:hotpath
func DecodeWorksheetDocs(data []byte, params []core.Parameters, intern func([]byte) string) ([]core.Parameters, error) {
	d := jsonDecoder{data: data, intern: intern}
	d.skipSpace()
	c, err := d.peek()
	if err != nil {
		return params, fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
	}
	switch c {
	case 'n':
		if err := d.literalNull(); err != nil {
			return params, fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
		}
		return params, nil
	case '[':
		d.pos++
	default:
		return params, fmt.Errorf("%w: batch body must be a JSON array of worksheets (invalid character %q looking for beginning of value)",
			worksheet.ErrSyntax, c)
	}
	d.skipSpace()
	c, err = d.peek()
	if err != nil {
		return params, fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
	}
	if c == ']' {
		d.pos++
		return params, nil
	}
	for {
		var doc worksheet.Doc
		switch c {
		case 'n':
			err = d.literalNull() // null element: a zero worksheet, as encoding/json decodes it
		case '{':
			d.pos++
			err = d.decodeWorksheetObject(&doc)
		default:
			err = fmt.Errorf("batch elements must be worksheet objects (invalid character %q)", c)
		}
		if err != nil {
			return params, fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
		}
		params = append(params, doc.Params())
		d.skipSpace()
		c, err = d.peek()
		if err != nil {
			return params, fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
		}
		switch c {
		case ',':
			d.pos++
			d.skipSpace()
			c, err = d.peek()
			if err != nil {
				return params, fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
			}
		case ']':
			d.pos++
			return params, nil
		default:
			return params, fmt.Errorf("%w: invalid character %q after array element", worksheet.ErrSyntax, c)
		}
	}
}

// decodeTopLevel parses the single top-level JSON value of a predict
// body: a worksheet object or null. Trailing bytes after the object
// are ignored and a top-level null must be followed by whitespace
// only — both exactly how json.Decoder.Decode reads one value from a
// stream.
func (d *jsonDecoder) decodeTopLevel(doc *worksheet.Doc) error {
	d.skipSpace()
	c, err := d.peek()
	if err != nil {
		return err
	}
	switch c {
	case '{':
		d.pos++
		return d.decodeWorksheetObject(doc)
	case 'n':
		return d.literalNull()
	}
	return fmt.Errorf("worksheet body must be a JSON object (invalid character %q looking for beginning of value)", c)
}

// decodeWorksheetObject parses the worksheet object body; the opening
// brace is already consumed.
func (d *jsonDecoder) decodeWorksheetObject(doc *worksheet.Doc) error {
	first := true
	for {
		idx, more, err := d.nextField(worksheetFields, first)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
		first = false
		switch idx {
		case 0:
			err = d.valueName(&doc.Name)
		case 1:
			err = d.decodeDataset(doc)
		case 2:
			err = d.decodeComm(doc)
		case 3:
			err = d.decodeComp(doc)
		default:
			err = d.decodeSoft(doc)
		}
		if err != nil {
			return err
		}
	}
}

func (d *jsonDecoder) decodeDataset(doc *worksheet.Doc) error {
	open, err := d.objectOrNull("dataset")
	if err != nil || !open {
		return err
	}
	first := true
	for {
		idx, more, err := d.nextField(datasetFields, first)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
		first = false
		switch idx {
		case 0:
			err = d.valueInt64(&doc.Dataset.ElementsIn)
		case 1:
			err = d.valueInt64(&doc.Dataset.ElementsOut)
		default:
			err = d.valueFloat64(&doc.Dataset.BytesPerElement)
		}
		if err != nil {
			return err
		}
	}
}

func (d *jsonDecoder) decodeComm(doc *worksheet.Doc) error {
	open, err := d.objectOrNull("communication")
	if err != nil || !open {
		return err
	}
	first := true
	for {
		idx, more, err := d.nextField(commFields, first)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
		first = false
		switch idx {
		case 0:
			err = d.valueFloat64(&doc.Comm.IdealThroughputMBps)
		case 1:
			err = d.valueFloat64(&doc.Comm.AlphaWrite)
		default:
			err = d.valueFloat64(&doc.Comm.AlphaRead)
		}
		if err != nil {
			return err
		}
	}
}

func (d *jsonDecoder) decodeComp(doc *worksheet.Doc) error {
	open, err := d.objectOrNull("computation")
	if err != nil || !open {
		return err
	}
	first := true
	for {
		idx, more, err := d.nextField(compFields, first)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
		first = false
		switch idx {
		case 0:
			err = d.valueFloat64(&doc.Comp.OpsPerElement)
		case 1:
			err = d.valueFloat64(&doc.Comp.ThroughputProc)
		default:
			err = d.valueFloat64(&doc.Comp.ClockMHz)
		}
		if err != nil {
			return err
		}
	}
}

func (d *jsonDecoder) decodeSoft(doc *worksheet.Doc) error {
	open, err := d.objectOrNull("software")
	if err != nil || !open {
		return err
	}
	first := true
	for {
		idx, more, err := d.nextField(softFields, first)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
		first = false
		if idx == 0 {
			err = d.valueFloat64(&doc.Soft.TSoftSeconds)
		} else {
			err = d.valueInt64(&doc.Soft.Iterations)
		}
		if err != nil {
			return err
		}
	}
}

// objectOrNull consumes a sub-object opener. null is a no-op (the
// enclosing fields keep their current values, as encoding/json leaves
// the destination untouched); anything but '{' is an error.
func (d *jsonDecoder) objectOrNull(what string) (bool, error) {
	c, err := d.peek()
	if err != nil {
		return false, err
	}
	if c == 'n' {
		return false, d.literalNull()
	}
	if c != '{' {
		return false, fmt.Errorf("%s must be a JSON object (invalid character %q)", what, c)
	}
	d.pos++
	return true, nil
}

// nextField advances to the next `"key":` of the current object (first
// marks the position just after '{'), consuming the separator and the
// whitespace before the member value. It returns the matched field
// index, or more=false once the closing brace is consumed. Unknown
// keys are an error — the DisallowUnknownFields contract.
func (d *jsonDecoder) nextField(names [][]byte, first bool) (idx int, more bool, err error) {
	d.skipSpace()
	c, err := d.peek()
	if err != nil {
		return 0, false, err
	}
	if c == '}' {
		d.pos++
		return 0, false, nil
	}
	if !first {
		if c != ',' {
			return 0, false, fmt.Errorf("invalid character %q after object member", c)
		}
		d.pos++
		d.skipSpace()
		c, err = d.peek()
		if err != nil {
			return 0, false, err
		}
	}
	if c != '"' {
		return 0, false, fmt.Errorf("invalid character %q looking for an object key", c)
	}
	key, err := d.readKey()
	if err != nil {
		return 0, false, err
	}
	idx = matchField(key, names)
	if idx < 0 {
		return 0, false, fmt.Errorf("unknown field %q", key)
	}
	d.skipSpace()
	c, err = d.peek()
	if err != nil {
		return 0, false, err
	}
	if c != ':' {
		return 0, false, fmt.Errorf("invalid character %q after object key", c)
	}
	d.pos++
	d.skipSpace()
	return idx, true, nil
}

// valueInt64 parses a number-or-null member value into an int64 with
// encoding/json's integer rules: strict JSON number grammar, no
// fraction or exponent, and int64 range enforced by ParseInt.
func (d *jsonDecoder) valueInt64(dst *int64) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		return d.literalNull()
	}
	num, isInt, err := d.scanNumber()
	if err != nil {
		return err
	}
	if !isInt {
		return fmt.Errorf("cannot unmarshal number %s into an integer field", num)
	}
	v, err := strconv.ParseInt(bstr(num), 10, 64)
	if err != nil {
		return fmt.Errorf("cannot unmarshal number %s into an integer field: %w", num, err)
	}
	*dst = v
	return nil
}

// valueFloat64 parses a number-or-null member value into a float64.
// The grammar is validated before ParseFloat sees the bytes (ParseFloat
// alone would admit hex floats and underscores JSON forbids); range
// errors (1e309) reject the document exactly as encoding/json does.
func (d *jsonDecoder) valueFloat64(dst *float64) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		return d.literalNull()
	}
	num, _, err := d.scanNumber()
	if err != nil {
		return err
	}
	v, err := strconv.ParseFloat(bstr(num), 64)
	if err != nil {
		return fmt.Errorf("cannot unmarshal number %s into a float64 field: %w", num, err)
	}
	*dst = v
	return nil
}

// valueName parses the string-or-null name member. Clean strings (no
// escapes, valid UTF-8) intern straight from the body; escaped or
// invalid-UTF-8 names take the cold unquote path with encoding/json's
// replacement-character semantics.
func (d *jsonDecoder) valueName(dst *string) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		return d.literalNull()
	}
	if c != '"' {
		return fmt.Errorf("the name field wants a string (invalid character %q)", c)
	}
	raw, clean, err := d.scanString()
	if err != nil {
		return err
	}
	if !clean {
		unq, err := unquoteAppend(make([]byte, 0, len(raw)), raw)
		if err != nil {
			return err
		}
		raw = unq
	}
	if d.intern != nil {
		*dst = d.intern(raw)
	} else {
		*dst = string(raw)
	}
	return nil
}

// readKey scans an object key, returning its decoded bytes. Clean keys
// are returned as a view of the body; escaped keys are unquoted (they
// can still fold-match a field name, e.g. "name").
func (d *jsonDecoder) readKey() ([]byte, error) {
	raw, clean, err := d.scanString()
	if err != nil {
		return nil, err
	}
	if clean {
		return raw, nil
	}
	var buf [64]byte
	return unquoteAppend(buf[:0], raw)
}

// scanString validates one string literal per the JSON grammar
// (escape set b f n r t u \ / ", no raw control characters, \u with
// exactly four hex digits) and returns the raw content between the
// quotes. clean reports that the content needs no unquoting: no
// escapes and no invalid UTF-8.
func (d *jsonDecoder) scanString() (raw []byte, clean bool, err error) {
	d.pos++ // opening quote, verified by the caller
	start := d.pos
	clean = true
	for d.pos < len(d.data) {
		switch c := d.data[d.pos]; {
		case c == '"':
			raw = d.data[start:d.pos]
			d.pos++
			return raw, clean, nil
		case c == '\\':
			clean = false
			d.pos++
			if d.pos >= len(d.data) {
				return nil, false, errUnexpectedEnd
			}
			switch d.data[d.pos] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				d.pos++
			case 'u':
				d.pos++
				if d.pos+4 > len(d.data) {
					return nil, false, errUnexpectedEnd
				}
				for i := 0; i < 4; i++ {
					if !isHexDigit(d.data[d.pos]) {
						return nil, false, fmt.Errorf("invalid character %q in \\u hexadecimal character escape", d.data[d.pos])
					}
					d.pos++
				}
			default:
				return nil, false, fmt.Errorf("invalid character %q in string escape code", d.data[d.pos])
			}
		case c < 0x20:
			return nil, false, fmt.Errorf("invalid character %q in string literal", c)
		case c < utf8.RuneSelf:
			d.pos++
		default:
			r, size := utf8.DecodeRune(d.data[d.pos:])
			if r == utf8.RuneError && size == 1 {
				clean = false // invalid byte: the unquote pass substitutes U+FFFD
			}
			d.pos += size
		}
	}
	return nil, false, errUnexpectedEnd
}

// unquoteAppend appends the decoded form of raw string content s (the
// bytes between the quotes, already syntax-checked by scanString) to
// dst: escape sequences applied, invalid UTF-8 and unpaired surrogates
// replaced with U+FFFD, surrogate pairs combined — bit-for-bit
// encoding/json's unquote.
func unquoteAppend(dst, s []byte) ([]byte, error) {
	for r := 0; r < len(s); {
		switch c := s[r]; {
		case c == '\\':
			r++
			if r >= len(s) {
				return dst, errUnexpectedEnd
			}
			switch s[r] {
			case '"', '\\', '/':
				dst = append(dst, s[r])
				r++
			case 'b':
				dst = append(dst, '\b')
				r++
			case 'f':
				dst = append(dst, '\f')
				r++
			case 'n':
				dst = append(dst, '\n')
				r++
			case 'r':
				dst = append(dst, '\r')
				r++
			case 't':
				dst = append(dst, '\t')
				r++
			case 'u':
				r--
				rr := getu4(s[r:])
				if rr < 0 {
					return dst, fmt.Errorf("invalid \\u escape in string literal")
				}
				r += 6
				if utf16.IsSurrogate(rr) {
					rr1 := getu4(s[r:])
					if dec := utf16.DecodeRune(rr, rr1); dec != unicode.ReplacementChar {
						// A valid pair; consume both escapes.
						r += 6
						dst = utf8.AppendRune(dst, dec)
						break
					}
					// An unpaired surrogate becomes U+FFFD; whatever
					// follows is decoded on its own.
					rr = unicode.ReplacementChar
				}
				dst = utf8.AppendRune(dst, rr)
			default:
				return dst, fmt.Errorf("invalid escape code \\%c in string literal", s[r])
			}
		case c == '"', c < ' ':
			return dst, fmt.Errorf("invalid character %q in string literal", c)
		case c < utf8.RuneSelf:
			dst = append(dst, c)
			r++
		default:
			rr, size := utf8.DecodeRune(s[r:])
			dst = utf8.AppendRune(dst, rr)
			r += size
		}
	}
	return dst, nil
}

// getu4 decodes \uXXXX at the start of s, or -1 if s does not begin
// with a complete hex escape.
func getu4(s []byte) rune {
	if len(s) < 6 || s[0] != '\\' || s[1] != 'u' {
		return -1
	}
	var r rune
	for _, c := range s[2:6] {
		switch {
		case '0' <= c && c <= '9':
			c -= '0'
		case 'a' <= c && c <= 'f':
			c = c - 'a' + 10
		case 'A' <= c && c <= 'F':
			c = c - 'A' + 10
		default:
			return -1
		}
		r = r*16 + rune(c)
	}
	return r
}

// scanNumber validates one number token against the JSON grammar
// ('-'? int frac? exp?) and returns its bytes plus whether it stayed
// integral (no fraction, no exponent).
func (d *jsonDecoder) scanNumber() (num []byte, isInt bool, err error) {
	start := d.pos
	isInt = true
	if d.pos < len(d.data) && d.data[d.pos] == '-' {
		d.pos++
	}
	switch {
	case d.pos >= len(d.data):
		return nil, false, errUnexpectedEnd
	case d.data[d.pos] == '0':
		d.pos++
	case '1' <= d.data[d.pos] && d.data[d.pos] <= '9':
		d.pos++
		for d.pos < len(d.data) && isDigit(d.data[d.pos]) {
			d.pos++
		}
	default:
		return nil, false, fmt.Errorf("invalid character %q in numeric field", d.data[d.pos])
	}
	if d.pos < len(d.data) && d.data[d.pos] == '.' {
		isInt = false
		d.pos++
		if d.pos >= len(d.data) {
			return nil, false, errUnexpectedEnd
		}
		if !isDigit(d.data[d.pos]) {
			return nil, false, fmt.Errorf("invalid character %q after decimal point", d.data[d.pos])
		}
		for d.pos < len(d.data) && isDigit(d.data[d.pos]) {
			d.pos++
		}
	}
	if d.pos < len(d.data) && (d.data[d.pos] == 'e' || d.data[d.pos] == 'E') {
		isInt = false
		d.pos++
		if d.pos < len(d.data) && (d.data[d.pos] == '+' || d.data[d.pos] == '-') {
			d.pos++
		}
		if d.pos >= len(d.data) {
			return nil, false, errUnexpectedEnd
		}
		if !isDigit(d.data[d.pos]) {
			return nil, false, fmt.Errorf("invalid character %q in exponent", d.data[d.pos])
		}
		for d.pos < len(d.data) && isDigit(d.data[d.pos]) {
			d.pos++
		}
	}
	return d.data[start:d.pos], isInt, nil
}

// literalNull consumes the null literal.
func (d *jsonDecoder) literalNull() error {
	if len(d.data)-d.pos < 4 || string(d.data[d.pos:d.pos+4]) != "null" {
		return fmt.Errorf("invalid literal at offset %d (expected null)", d.pos)
	}
	d.pos += 4
	return nil
}

func (d *jsonDecoder) peek() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, errUnexpectedEnd
	}
	return d.data[d.pos], nil
}

func (d *jsonDecoder) skipSpace() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\n', '\r':
			d.pos++
		default:
			return
		}
	}
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isHexDigit(c byte) bool {
	return '0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F'
}
