package wire

import (
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/core"
)

// The JSON appenders below reproduce json.Marshal over the api wire
// structs byte for byte — same key order (struct order), same float
// formatting (shortest round-trip, 'e' above 1e21 and below 1e-6 with
// the exponent's leading zero trimmed), same string escaping
// (escapeHTML on). The server's bit-for-bit response tests and
// FuzzWireEncodeParity pin the equivalence.

var errNonFinite = fmt.Errorf("json: unsupported value: NaN or infinity")

// AppendPrediction appends the JSON encoding of p, byte-identical to
// json.Marshal(p).
//
//rat:hotpath
func AppendPrediction(dst []byte, p *api.Prediction) ([]byte, error) {
	if !finitePrediction(p) {
		return dst, errNonFinite
	}
	return appendPrediction(dst, p), nil
}

// AppendPredictions appends the JSON array json.Marshal would produce
// for the api wire forms of prs — the /v1/predict/batch response body.
//
//rat:hotpath
func AppendPredictions(dst []byte, prs []core.Prediction) ([]byte, error) {
	for i := range prs {
		p := api.PredictionFromCore(prs[i])
		if !finitePrediction(&p) {
			return dst, errNonFinite
		}
	}
	dst = append(dst, '[')
	for i := range prs {
		if i > 0 {
			dst = append(dst, ',')
		}
		p := api.PredictionFromCore(prs[i])
		dst = appendPrediction(dst, &p)
	}
	return append(dst, ']'), nil
}

// AppendMultiPrediction appends the JSON encoding of mp,
// byte-identical to json.Marshal(mp).
//
//rat:hotpath
func AppendMultiPrediction(dst []byte, mp *api.MultiPrediction) ([]byte, error) {
	if !finitePrediction(&mp.Single) || !finite7(mp.TCommSeconds, mp.TCompSeconds,
		mp.TRCSingleSeconds, mp.TRCDoubleSeconds, mp.SpeedupSingle, mp.SpeedupDouble,
		mp.ScalingEfficiency) {
		return dst, errNonFinite
	}
	dst = append(dst, `{"devices":`...)
	dst = strconv.AppendInt(dst, int64(mp.Devices), 10)
	dst = append(dst, `,"topology":`...)
	dst = appendString(dst, mp.Topology)
	dst = append(dst, `,"single":`...)
	dst = appendPrediction(dst, &mp.Single)
	dst = append(dst, `,"t_comm_seconds":`...)
	dst = appendFloat(dst, mp.TCommSeconds)
	dst = append(dst, `,"t_comp_seconds":`...)
	dst = appendFloat(dst, mp.TCompSeconds)
	dst = append(dst, `,"t_rc_single_seconds":`...)
	dst = appendFloat(dst, mp.TRCSingleSeconds)
	dst = append(dst, `,"t_rc_double_seconds":`...)
	dst = appendFloat(dst, mp.TRCDoubleSeconds)
	dst = append(dst, `,"speedup_single":`...)
	dst = appendFloat(dst, mp.SpeedupSingle)
	dst = append(dst, `,"speedup_double":`...)
	dst = appendFloat(dst, mp.SpeedupDouble)
	dst = append(dst, `,"scaling_efficiency":`...)
	dst = appendFloat(dst, mp.ScalingEfficiency)
	return append(dst, '}'), nil
}

// finitePrediction reports whether every float in p (worksheet
// included) is finite — json.Marshal refuses NaN and ±Inf, so the
// appenders must refuse the same inputs.
func finitePrediction(p *api.Prediction) bool {
	d := &p.Worksheet
	return finite7(d.Dataset.BytesPerElement, d.Comm.IdealThroughputMBps,
		d.Comm.AlphaWrite, d.Comm.AlphaRead, d.Comp.OpsPerElement,
		d.Comp.ThroughputProc, d.Comp.ClockMHz) &&
		finite7(d.Soft.TSoftSeconds, p.TWriteSeconds, p.TReadSeconds,
			p.TCommSeconds, p.TCompSeconds, p.TRCSingleSeconds, p.TRCDoubleSeconds) &&
		finite7(p.SpeedupSingle, p.SpeedupDouble, p.UtilCompSingle,
			p.UtilCommSingle, p.UtilCompDouble, p.UtilCommDouble, 0)
}

func finite7(a, b, c, d, e, f, g float64) bool {
	return !(math.IsNaN(a) || math.IsInf(a, 0) ||
		math.IsNaN(b) || math.IsInf(b, 0) ||
		math.IsNaN(c) || math.IsInf(c, 0) ||
		math.IsNaN(d) || math.IsInf(d, 0) ||
		math.IsNaN(e) || math.IsInf(e, 0) ||
		math.IsNaN(f) || math.IsInf(f, 0) ||
		math.IsNaN(g) || math.IsInf(g, 0))
}

// appendPrediction appends p with all floats pre-checked finite.
func appendPrediction(dst []byte, p *api.Prediction) []byte {
	dst = append(dst, `{"worksheet":`...)
	dst = appendDoc(dst, p)
	dst = append(dst, `,"t_write_seconds":`...)
	dst = appendFloat(dst, p.TWriteSeconds)
	dst = append(dst, `,"t_read_seconds":`...)
	dst = appendFloat(dst, p.TReadSeconds)
	dst = append(dst, `,"t_comm_seconds":`...)
	dst = appendFloat(dst, p.TCommSeconds)
	dst = append(dst, `,"t_comp_seconds":`...)
	dst = appendFloat(dst, p.TCompSeconds)
	dst = append(dst, `,"t_rc_single_seconds":`...)
	dst = appendFloat(dst, p.TRCSingleSeconds)
	dst = append(dst, `,"t_rc_double_seconds":`...)
	dst = appendFloat(dst, p.TRCDoubleSeconds)
	dst = append(dst, `,"speedup_single":`...)
	dst = appendFloat(dst, p.SpeedupSingle)
	dst = append(dst, `,"speedup_double":`...)
	dst = appendFloat(dst, p.SpeedupDouble)
	dst = append(dst, `,"util_comp_single":`...)
	dst = appendFloat(dst, p.UtilCompSingle)
	dst = append(dst, `,"util_comm_single":`...)
	dst = appendFloat(dst, p.UtilCommSingle)
	dst = append(dst, `,"util_comp_double":`...)
	dst = appendFloat(dst, p.UtilCompDouble)
	dst = append(dst, `,"util_comm_double":`...)
	dst = appendFloat(dst, p.UtilCommDouble)
	return append(dst, '}')
}

// appendDoc appends the embedded worksheet document; name carries
// omitempty, everything else is unconditional.
func appendDoc(dst []byte, p *api.Prediction) []byte {
	d := &p.Worksheet
	dst = append(dst, '{')
	if d.Name != "" {
		dst = append(dst, `"name":`...)
		dst = appendString(dst, d.Name)
		dst = append(dst, ',')
	}
	dst = append(dst, `"dataset":{"elements_in":`...)
	dst = strconv.AppendInt(dst, d.Dataset.ElementsIn, 10)
	dst = append(dst, `,"elements_out":`...)
	dst = strconv.AppendInt(dst, d.Dataset.ElementsOut, 10)
	dst = append(dst, `,"bytes_per_element":`...)
	dst = appendFloat(dst, d.Dataset.BytesPerElement)
	dst = append(dst, `},"communication":{"ideal_throughput_mbps":`...)
	dst = appendFloat(dst, d.Comm.IdealThroughputMBps)
	dst = append(dst, `,"alpha_write":`...)
	dst = appendFloat(dst, d.Comm.AlphaWrite)
	dst = append(dst, `,"alpha_read":`...)
	dst = appendFloat(dst, d.Comm.AlphaRead)
	dst = append(dst, `},"computation":{"ops_per_element":`...)
	dst = appendFloat(dst, d.Comp.OpsPerElement)
	dst = append(dst, `,"throughput_proc":`...)
	dst = appendFloat(dst, d.Comp.ThroughputProc)
	dst = append(dst, `,"clock_mhz":`...)
	dst = appendFloat(dst, d.Comp.ClockMHz)
	dst = append(dst, `},"software":{"tsoft_seconds":`...)
	dst = appendFloat(dst, d.Soft.TSoftSeconds)
	dst = append(dst, `,"iterations":`...)
	dst = strconv.AppendInt(dst, d.Soft.Iterations, 10)
	return append(dst, `}}`...)
}

// appendFloat appends f exactly as encoding/json's floatEncoder does:
// shortest round-trip form, 'e' format outside [1e-6, 1e21) with the
// exponent's redundant leading zero stripped (1e+05 not 1e+005 — or
// rather 1e+21 not 1e+21 padded), 'f' otherwise. The caller has
// already rejected NaN/Inf.
func appendFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Trim "e-05" to "e-5", matching json's cleanup.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

const hexDigits = "0123456789abcdef"

// appendString appends s as a JSON string with encoding/json's
// escapeHTML=true policy: control characters, '"', '\\', '<', '>' and
// '&' escaped, invalid UTF-8 replaced with �, U+2028/U+2029
// escaped for JavaScript embedding.
func appendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if safeJSONByte(c) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch c {
			case '\\', '"':
				dst = append(dst, '\\', c)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			default:
				// Remaining control characters and the HTML trio get
				// \u00xx.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			// json writes the six-byte escape, not a raw U+FFFD.
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// safeJSONByte reports whether c passes through json string encoding
// unescaped under escapeHTML=true. DEL (0x7f) is unescaped; '<', '>'
// and '&' are not.
func safeJSONByte(c byte) bool {
	return c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
}
