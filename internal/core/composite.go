package core

import (
	"fmt"
)

// Stage is one kernel of a multi-kernel application, carrying its own
// complete RAT parameter set and buffering discipline. Section 6 of the
// paper notes the methodology "was designed to support applications
// involving several algorithms, each with their own separate RAT
// analysis"; Composite realizes that composition.
type Stage struct {
	Name      string
	Params    Parameters
	Buffering Buffering
}

// CompositeResult aggregates the per-stage predictions of a
// multi-kernel application executed stage after stage on one FPGA (the
// stages are reconfigured or co-resident; either way their execution
// times add, as do their software baselines).
type CompositeResult struct {
	Stages []StageResult

	// TRC is the summed RC execution time of all stages.
	TRC float64
	// TSoft is the summed software baseline of all stages.
	TSoft float64
	// Speedup is TSoft / TRC (zero if no stage supplied a baseline).
	Speedup float64
}

// StageResult pairs a stage with its prediction and its share of the
// composite execution time.
type StageResult struct {
	Stage      Stage
	Prediction Prediction
	// TRC is this stage's contribution under its own discipline.
	TRC float64
	// Share is TRC divided by the composite total, in [0, 1]; the
	// Amdahl weight of the stage.
	Share float64
}

// PredictComposite runs a RAT analysis per stage and combines them. An
// error in any stage aborts the analysis and names the stage.
func PredictComposite(stages []Stage) (CompositeResult, error) {
	if len(stages) == 0 {
		return CompositeResult{}, fmt.Errorf("%w: composite application needs at least one stage", ErrInvalidParameters)
	}
	res := CompositeResult{Stages: make([]StageResult, 0, len(stages))}
	for i, st := range stages {
		pr, err := Predict(st.Params)
		if err != nil {
			return CompositeResult{}, fmt.Errorf("stage %d (%s): %w", i, st.Name, err)
		}
		trc := pr.TRC(st.Buffering)
		res.Stages = append(res.Stages, StageResult{Stage: st, Prediction: pr, TRC: trc})
		res.TRC += trc
		res.TSoft += st.Params.Soft.TSoft
	}
	for i := range res.Stages {
		res.Stages[i].Share = res.Stages[i].TRC / res.TRC
	}
	if res.TSoft > 0 {
		res.Speedup = res.TSoft / res.TRC
	}
	return res, nil
}

// Bottleneck returns the stage with the largest share of the composite
// execution time — the first candidate for reformulation when the
// composite speedup misses its target.
func (c CompositeResult) Bottleneck() StageResult {
	best := c.Stages[0]
	for _, s := range c.Stages[1:] {
		if s.TRC > best.TRC {
			best = s
		}
	}
	return best
}
