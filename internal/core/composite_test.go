package core_test

import (
	"errors"
	"math"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
)

func TestPredictComposite(t *testing.T) {
	stages := []core.Stage{
		{Name: "pdf-1d", Params: paper.PDF1DParams(), Buffering: core.SingleBuffered},
		{Name: "pdf-2d", Params: paper.PDF2DParams(), Buffering: core.SingleBuffered},
	}
	res, err := core.PredictComposite(stages)
	if err != nil {
		t.Fatalf("PredictComposite: %v", err)
	}
	a := core.MustPredict(stages[0].Params)
	b := core.MustPredict(stages[1].Params)
	if want := a.TRCSingle + b.TRCSingle; math.Abs(res.TRC-want) > 1e-12*want {
		t.Errorf("composite TRC = %g, want sum of stages %g", res.TRC, want)
	}
	if want := 0.578 + 158.8; math.Abs(res.TSoft-want) > 1e-12 {
		t.Errorf("composite TSoft = %g, want %g", res.TSoft, want)
	}
	if want := res.TSoft / res.TRC; math.Abs(res.Speedup-want) > 1e-12 {
		t.Errorf("composite speedup = %g, want %g", res.Speedup, want)
	}
	// Shares sum to one; the 2-D stage dominates overwhelmingly.
	var sum float64
	for _, s := range res.Stages {
		sum += s.Share
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("shares sum to %g, want 1", sum)
	}
	if bn := res.Bottleneck(); bn.Stage.Name != "pdf-2d" {
		t.Errorf("bottleneck = %q, want pdf-2d", bn.Stage.Name)
	}
	if res.Stages[1].Share < 0.99 {
		t.Errorf("pdf-2d share = %g, want > 0.99 (it is ~400x slower)", res.Stages[1].Share)
	}
}

// TestCompositeAmdahl: even making the dominant stage infinitely fast,
// the composite speedup is capped by the untouched stage — the Amdahl
// behaviour that motivates per-stage RAT analyses.
func TestCompositeAmdahl(t *testing.T) {
	// Make the 2-D stage cheap on both axes: infinite parallelism
	// and a trivial result transfer (its 65536-element output would
	// otherwise keep it communication-bound and still dominant).
	fast2d := paper.PDF2DParams().WithThroughputProc(1e12)
	fast2d.Dataset.ElementsOut = 1
	res, err := core.PredictComposite([]core.Stage{
		{Name: "pdf-1d", Params: paper.PDF1DParams(), Buffering: core.SingleBuffered},
		{Name: "pdf-2d", Params: fast2d, Buffering: core.DoubleBuffered},
	})
	if err != nil {
		t.Fatal(err)
	}
	oneD := core.MustPredict(paper.PDF1DParams())
	cap := res.TSoft / oneD.TRCSingle
	if res.Speedup > cap {
		t.Errorf("composite speedup %g exceeds Amdahl cap %g set by the 1-D stage", res.Speedup, cap)
	}
	if res.Bottleneck().Stage.Name != "pdf-1d" {
		t.Errorf("bottleneck should shift to pdf-1d, got %q", res.Bottleneck().Stage.Name)
	}
}

func TestCompositeMixedBuffering(t *testing.T) {
	p := paper.MDParams()
	res, err := core.PredictComposite([]core.Stage{
		{Name: "sb", Params: p, Buffering: core.SingleBuffered},
		{Name: "db", Params: p, Buffering: core.DoubleBuffered},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := core.MustPredict(p)
	want := pr.TRCSingle + pr.TRCDouble
	if math.Abs(res.TRC-want) > 1e-12*want {
		t.Errorf("mixed-discipline TRC = %g, want %g", res.TRC, want)
	}
}

func TestCompositeErrors(t *testing.T) {
	if _, err := core.PredictComposite(nil); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("empty composite: error = %v, want ErrInvalidParameters", err)
	}
	_, err := core.PredictComposite([]core.Stage{
		{Name: "ok", Params: paper.PDF1DParams()},
		{Name: "broken", Params: core.Parameters{}},
	})
	if !errors.Is(err, core.ErrInvalidParameters) {
		t.Fatalf("invalid stage: error = %v, want ErrInvalidParameters", err)
	}
}
