package core_test

import (
	"math"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
)

func TestPredictStreaming(t *testing.T) {
	p := paper.PDF2DParams()
	sp, err := core.PredictStreaming(p)
	if err != nil {
		t.Fatalf("PredictStreaming: %v", err)
	}
	// The 2-D PDF at 150 MHz is compute-limited, so the limiting
	// stage is t_comp.
	if sp.TStage != sp.TComp {
		t.Errorf("limiting stage = %g, want t_comp %g", sp.TStage, sp.TComp)
	}
	if want := 400 * sp.TComp; math.Abs(sp.TRCStream-want) > 1e-12*want {
		t.Errorf("TRCStream = %g, want %g", sp.TRCStream, want)
	}
	if want := sp.TWrite + sp.TRead; math.Abs(sp.TFill-want) > 1e-15 {
		t.Errorf("TFill = %g, want %g", sp.TFill, want)
	}
	if sp.SpeedupStream < sp.SpeedupDouble {
		t.Errorf("streaming speedup %g below double-buffered %g", sp.SpeedupStream, sp.SpeedupDouble)
	}
}

// TestStreamingBeatsDoubleBufferedWhenCommSplit: craft a design where
// read and write each take as long as compute; double buffering pays
// for read+write serially while streaming overlaps all three stages,
// yielding a strict 2x advantage.
func TestStreamingBeatsDoubleBufferedWhenCommSplit(t *testing.T) {
	p := core.Parameters{
		Dataset: core.DatasetParams{ElementsIn: 1000, ElementsOut: 1000, BytesPerElement: 4},
		Comm:    core.CommParams{IdealThroughput: core.MBps(100), AlphaWrite: 0.5, AlphaRead: 0.5},
		Comp:    core.CompParams{OpsPerElement: 10, ThroughputProc: 1, ClockHz: 0}, // clock set below
		Soft:    core.SoftwareParams{TSoft: 1, Iterations: 100},
	}
	// t_write = t_read = 1000*4/(0.5*1e8) = 8e-5 s. Choose the clock
	// so t_comp matches: 1000*10/(f*1) = 8e-5 -> f = 1.25e8.
	p.Comp.ClockHz = 1.25e8
	sp, err := core.PredictStreaming(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.TWrite-sp.TComp) > 1e-12 || math.Abs(sp.TRead-sp.TComp) > 1e-12 {
		t.Fatalf("stage times not balanced: w=%g c=%g r=%g", sp.TWrite, sp.TComp, sp.TRead)
	}
	ratio := sp.TRCDouble / sp.TRCStream
	if math.Abs(ratio-2) > 1e-9 {
		t.Errorf("DB/stream ratio = %g, want exactly 2 for balanced stages", ratio)
	}
}

func TestStreamingInvalidParams(t *testing.T) {
	if _, err := core.PredictStreaming(core.Parameters{}); err == nil {
		t.Error("PredictStreaming accepted invalid parameters")
	}
}

func TestSweepClock(t *testing.T) {
	p := paper.PDF1DParams()
	prs, err := core.SweepClock(p, paper.ClocksHz)
	if err != nil {
		t.Fatalf("SweepClock: %v", err)
	}
	if len(prs) != 3 {
		t.Fatalf("got %d predictions, want 3", len(prs))
	}
	for i, row := range paper.PredictedRows(paper.PDF1D) {
		if got := prs[i].Params.Comp.ClockHz; got != row.ClockHz {
			t.Errorf("sweep[%d] clock = %g, want %g", i, got, row.ClockHz)
		}
	}
	// Higher clock, lower t_comp.
	if !(prs[0].TComp > prs[1].TComp && prs[1].TComp > prs[2].TComp) {
		t.Error("t_comp must decrease with clock frequency")
	}
	if _, err := core.SweepClock(p, []float64{0}); err == nil {
		t.Error("SweepClock accepted an invalid clock")
	}
}

func TestSweepThroughputProc(t *testing.T) {
	p := paper.MDParams()
	ops := []float64{10, 25, 50, 100}
	prs, err := core.SweepThroughputProc(p, ops)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(prs); i++ {
		if prs[i].SpeedupSingle <= prs[i-1].SpeedupSingle {
			t.Error("speedup must grow with throughput_proc while compute-bound")
		}
	}
	if _, err := core.SweepThroughputProc(p, []float64{-1}); err == nil {
		t.Error("SweepThroughputProc accepted an invalid value")
	}
}

func TestGenericSweepAndCrossover(t *testing.T) {
	p := paper.PDF1DParams()
	fc, err := core.CrossoverClock(p)
	if err != nil {
		t.Fatal(err)
	}
	clocks := []float64{fc * 0.25, fc * 0.5, fc * 2, fc * 4}
	pts, err := core.SweepPoints(p, clocks, func(q core.Parameters, v float64) core.Parameters {
		return q.WithClock(v)
	})
	if err != nil {
		t.Fatal(err)
	}
	bracket, ok := core.FindCrossover(pts)
	if !ok {
		t.Fatal("crossover not found in a sweep that straddles it")
	}
	if !(bracket[0].Value < fc && fc < bracket[1].Value) {
		t.Errorf("crossover bracket [%g, %g] does not contain %g", bracket[0].Value, bracket[1].Value, fc)
	}
	// A sweep entirely on one side finds nothing.
	low, err := core.SweepPoints(p, []float64{fc * 0.1, fc * 0.2}, func(q core.Parameters, v float64) core.Parameters {
		return q.WithClock(v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := core.FindCrossover(low); ok {
		t.Error("found a crossover in a single-regime sweep")
	}
	// Generic sweep propagates validation errors.
	if _, err := core.Sweep(p, []float64{1}, func(q core.Parameters, _ float64) core.Parameters {
		q.Comp.ClockHz = -1
		return q
	}); err == nil {
		t.Error("Sweep accepted a mutation producing invalid parameters")
	}
	if _, err := core.SweepPoints(p, []float64{-1}, func(q core.Parameters, v float64) core.Parameters {
		return q.WithClock(v)
	}); err == nil {
		t.Error("SweepPoints accepted an invalid value")
	}
}
