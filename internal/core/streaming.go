package core

import "math"

// StreamingPrediction models the adjustment Section 3.1 sketches for
// streaming applications: instead of a co-processor that alternates (or
// double-buffers) whole-block transfers and computation, a streaming
// design forms a three-stage pipeline — input transfer, computation,
// output transfer — that processes blocks continuously. In steady state
// the block rate is set by the slowest stage, so
//
//	t_RC(stream) = N_iter * max(t_write, t_comp, t_read)
//
// plus a fill term of the two faster stages for the first block, which,
// like the paper's double-buffered startup cost, is negligible for a
// sufficiently large number of iterations and reported separately.
type StreamingPrediction struct {
	Prediction

	// TStage is the per-iteration time of the limiting pipeline
	// stage: max(TWrite, TComp, TRead).
	TStage float64
	// TRCStream is the steady-state streaming execution time,
	// N_iter * TStage (fill excluded).
	TRCStream float64
	// TFill is the one-time pipeline fill cost: the sum of the
	// per-iteration times of the non-limiting stages.
	TFill float64
	// SpeedupStream is TSoft / TRCStream (zero without a baseline).
	SpeedupStream float64
}

// PredictStreaming evaluates the streaming variant of the throughput
// test. Because input and output transfers of different blocks can be
// in flight simultaneously in a streaming system, TWrite and TRead
// count as separate pipeline stages rather than a summed t_comm; this
// makes the streaming model strictly at least as fast as the
// double-buffered one.
func PredictStreaming(p Parameters) (StreamingPrediction, error) {
	pr, err := Predict(p)
	if err != nil {
		return StreamingPrediction{}, err
	}
	sp := StreamingPrediction{Prediction: pr}
	sp.TStage = math.Max(pr.TWrite, math.Max(pr.TComp, pr.TRead))
	sp.TRCStream = float64(p.Soft.Iterations) * sp.TStage
	sp.TFill = pr.TWrite + pr.TComp + pr.TRead - sp.TStage
	if p.Soft.TSoft > 0 {
		sp.SpeedupStream = p.Soft.TSoft / sp.TRCStream
	}
	return sp, nil
}
