package core_test

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
)

func TestPredictBoundsContainNominal(t *testing.T) {
	u := core.Uncertainty{Alpha: 0.2, OpsPerElement: 0.1, ThroughputProc: 0.15, Clock: 0.3, TSoft: 0.05}
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		b, err := core.PredictBounds(paper.Params(c), u)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		for _, buf := range []core.Buffering{core.SingleBuffered, core.DoubleBuffered} {
			lo, hi := b.SpeedupRange(buf)
			if !(lo <= b.Nominal.Speedup(buf) && b.Nominal.Speedup(buf) <= hi) {
				t.Errorf("%s/%v: nominal speedup %.2f outside [%.2f, %.2f]", c, buf, b.Nominal.Speedup(buf), lo, hi)
			}
			tlo, thi := b.TRCRange(buf)
			if !(tlo <= b.Nominal.TRC(buf) && b.Nominal.TRC(buf) <= thi) {
				t.Errorf("%s/%v: nominal t_RC outside bounds", c, buf)
			}
			if lo >= hi {
				t.Errorf("%s/%v: degenerate interval [%.2f, %.2f] with nonzero uncertainty", c, buf, lo, hi)
			}
		}
	}
}

func TestZeroUncertaintyCollapses(t *testing.T) {
	b, err := core.PredictBounds(paper.PDF1DParams(), core.Uncertainty{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Worst != b.Nominal || b.Best != b.Nominal {
		t.Error("zero uncertainty must collapse to the point prediction")
	}
}

// TestBoundsAreSound: random interior parameter draws never fall
// outside the corner bounds (the monotonicity argument, checked
// empirically).
func TestBoundsAreSound(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	p := paper.PDF2DParams()
	u := core.Uncertainty{Alpha: 0.3, OpsPerElement: 0.25, ThroughputProc: 0.4, Clock: 0.5, TSoft: 0.2}
	b, err := core.PredictBounds(p, u)
	if err != nil {
		t.Fatal(err)
	}
	in := func(half float64) float64 { return 1 + half*(2*r.Float64()-1) }
	for i := 0; i < 2000; i++ {
		q := p
		q.Comm.AlphaWrite = math.Min(1, p.Comm.AlphaWrite*in(u.Alpha))
		q.Comm.AlphaRead = math.Min(1, p.Comm.AlphaRead*in(u.Alpha))
		q.Comp.OpsPerElement = p.Comp.OpsPerElement * in(u.OpsPerElement)
		q.Comp.ThroughputProc = p.Comp.ThroughputProc * in(u.ThroughputProc)
		q.Comp.ClockHz = p.Comp.ClockHz * in(u.Clock)
		q.Soft.TSoft = p.Soft.TSoft * in(u.TSoft)
		pr := core.MustPredict(q)
		for _, buf := range []core.Buffering{core.SingleBuffered, core.DoubleBuffered} {
			lo, hi := b.SpeedupRange(buf)
			if s := pr.Speedup(buf); s < lo*(1-1e-12) || s > hi*(1+1e-12) {
				t.Fatalf("draw %d: speedup %.4f outside [%.4f, %.4f]", i, s, lo, hi)
			}
			tlo, thi := b.TRCRange(buf)
			if trc := pr.TRC(buf); trc < tlo*(1-1e-12) || trc > thi*(1+1e-12) {
				t.Fatalf("draw %d: t_RC outside bounds", i)
			}
		}
	}
}

// TestPropertyWiderUncertaintyWiderBounds: growing any half-width can
// only widen the interval.
func TestPropertyWiderUncertaintyWiderBounds(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(genParams(r))
			vals[1] = reflect.ValueOf(r.Float64() * 0.4)
		},
	}
	f := func(p core.Parameters, half float64) bool {
		narrow := core.Uncertainty{Alpha: half / 2, ThroughputProc: half / 2, Clock: half / 2}
		wide := core.Uncertainty{Alpha: half, ThroughputProc: half, Clock: half}
		bn, err := core.PredictBounds(p, narrow)
		if err != nil {
			return false
		}
		bw, err := core.PredictBounds(p, wide)
		if err != nil {
			return false
		}
		ln, hn := bn.SpeedupRange(core.SingleBuffered)
		lw, hw := bw.SpeedupRange(core.SingleBuffered)
		return lw <= ln*(1+1e-12) && hw >= hn*(1-1e-12)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMeetsTarget(t *testing.T) {
	p := paper.PDF1DParams() // nominal speedup 10.58
	u := core.Uncertainty{Clock: 0.3}
	b, err := core.PredictBounds(p, u)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := b.SpeedupRange(core.SingleBuffered)
	if got := b.MeetsTarget(lo*0.9, core.SingleBuffered); got != core.TargetCertain {
		t.Errorf("target below lo: %v, want certain", got)
	}
	if got := b.MeetsTarget(hi*1.1, core.SingleBuffered); got != core.TargetImpossible {
		t.Errorf("target above hi: %v, want impossible", got)
	}
	if got := b.MeetsTarget((lo+hi)/2, core.SingleBuffered); got != core.TargetUncertain {
		t.Errorf("target inside: %v, want uncertain", got)
	}
	if core.TargetCertain.String() != "certain" || core.TargetUncertain.String() != "uncertain" ||
		core.TargetImpossible.String() != "impossible" || core.TargetVerdict(9).String() != "TargetVerdict(9)" {
		t.Error("TargetVerdict strings wrong")
	}
}

func TestPredictBoundsErrors(t *testing.T) {
	p := paper.PDF1DParams()
	for _, u := range []core.Uncertainty{
		{Alpha: -0.1}, {Clock: 1.0}, {TSoft: math.NaN()},
	} {
		if _, err := core.PredictBounds(p, u); !errors.Is(err, core.ErrInvalidParameters) {
			t.Errorf("uncertainty %+v accepted", u)
		}
	}
	if _, err := core.PredictBounds(core.Parameters{}, core.Uncertainty{}); !errors.Is(err, core.ErrInvalidParameters) {
		t.Error("invalid worksheet accepted")
	}
}

// TestAlphaClamping: an optimistic corner cannot push alpha past 1.
func TestAlphaClamping(t *testing.T) {
	p := paper.MDParams() // alpha 0.9
	b, err := core.PredictBounds(p, core.Uncertainty{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if a := b.Best.Params.Comm.AlphaWrite; a != 1 {
		t.Errorf("optimistic alpha = %g, want clamped to 1", a)
	}
	if a := b.Worst.Params.Comm.AlphaWrite; math.Abs(a-0.45) > 1e-12 {
		t.Errorf("pessimistic alpha = %g, want 0.45", a)
	}
}

// TestClockBracketAsUncertainty: the paper's 75-150 MHz sweep is the
// special case Clock=1/3 around 112.5 MHz; the interval endpoints must
// match the swept endpoints.
func TestClockBracketAsUncertainty(t *testing.T) {
	p := paper.PDF1DParams().WithClock(core.MHz(112.5))
	b, err := core.PredictBounds(p, core.Uncertainty{Clock: 1.0 / 3.0})
	if err != nil {
		t.Fatal(err)
	}
	at75 := core.MustPredict(p.WithClock(core.MHz(75)))
	at150 := core.MustPredict(p.WithClock(core.MHz(150)))
	lo, hi := b.SpeedupRange(core.SingleBuffered)
	if math.Abs(lo-at75.SpeedupSingle) > 1e-9 || math.Abs(hi-at150.SpeedupSingle) > 1e-9 {
		t.Errorf("interval [%.2f, %.2f] vs swept endpoints [%.2f, %.2f]",
			lo, hi, at75.SpeedupSingle, at150.SpeedupSingle)
	}
}
