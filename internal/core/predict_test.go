package core_test

import (
	"errors"
	"math"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
)

// roundSig rounds x to n significant figures, mirroring how the paper
// prints times (three significant figures in scientific notation).
func roundSig(x float64, n int) float64 {
	if x == 0 {
		return 0
	}
	mag := math.Pow(10, float64(n-1)-math.Floor(math.Log10(math.Abs(x))))
	return math.Round(x*mag) / mag
}

// round1 rounds to one decimal place, how the paper prints speedups.
func round1(x float64) float64 { return math.Round(x*10) / 10 }

// utilTol returns half a ULP of the paper's printed utilization
// precision: integer percent normally, tenths of a percent for the
// sub-1% MD utilizations.
func utilTol(printed float64) float64 {
	if printed < 0.01 {
		return 0.0005
	}
	return 0.005
}

// ulp returns one unit in the last printed digit of a paper value with
// n significant figures. The paper computes some table cells from
// already-rounded components (its walkthrough literally writes t_RC =
// 400*(5.56E-6 + 1.31E-4) = 5.46E-2, where exact arithmetic gives
// 5.4653E-2 -> 5.47E-2), so golden comparisons allow one final-digit
// unit of slack.
func ulp(printed float64, n int) float64 {
	if printed == 0 {
		return 0
	}
	return math.Pow(10, math.Floor(math.Log10(math.Abs(printed)))-float64(n-1))
}

// closeToPrinted reports whether got, rounded to n significant figures,
// is within one last-digit unit of the paper's printed value.
func closeToPrinted(got, printed float64, n int) bool {
	return math.Abs(roundSig(got, n)-printed) <= ulp(printed, n)*(1+1e-9)
}

// TestPredictReproducesPaperTables is the central golden test: for each
// case study and each clock frequency, the predicted column of the
// paper's performance table (Tables 3, 6 and 9) must be reproduced to
// the paper's printed precision.
func TestPredictReproducesPaperTables(t *testing.T) {
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		t.Run(string(c), func(t *testing.T) {
			params := paper.Params(c)
			for _, row := range paper.PredictedRows(c) {
				pr, err := core.Predict(params.WithClock(row.ClockHz))
				if err != nil {
					t.Fatalf("Predict: %v", err)
				}
				mhz := row.ClockHz / 1e6
				// Component times must match exactly at printed precision.
				if got := roundSig(pr.TComm, 3); got != row.TComm {
					t.Errorf("%.0f MHz: t_comm = %.3e, paper prints %.3e", mhz, got, row.TComm)
				}
				if got := roundSig(pr.TComp, 3); got != row.TComp {
					t.Errorf("%.0f MHz: t_comp = %.3e, paper prints %.3e", mhz, got, row.TComp)
				}
				// Derived cells allow one final-digit unit because the
				// paper computes them from rounded components.
				if !closeToPrinted(pr.TRCSingle, row.TRC, 3) {
					t.Errorf("%.0f MHz: t_RC(SB) = %.3e, paper prints %.3e", mhz, pr.TRCSingle, row.TRC)
				}
				// Speedup prints with one decimal; allow 0.1 slack.
				if math.Abs(round1(pr.SpeedupSingle)-row.Speedup) > 0.1+1e-9 {
					t.Errorf("%.0f MHz: speedup = %.2f, paper prints %.1f", mhz, pr.SpeedupSingle, row.Speedup)
				}
				if d := math.Abs(pr.UtilCommSB - row.UtilComm); d > utilTol(row.UtilComm) {
					t.Errorf("%.0f MHz: util_comm(SB) = %.4f, paper prints %.4f (|d|=%.4f)", mhz, pr.UtilCommSB, row.UtilComm, d)
				}
				if row.UtilComp >= 0 {
					if d := math.Abs(pr.UtilCompSB - row.UtilComp); d > utilTol(row.UtilComp) {
						t.Errorf("%.0f MHz: util_comp(SB) = %.4f, paper prints %.4f", mhz, pr.UtilCompSB, row.UtilComp)
					}
				}
			}
		})
	}
}

// TestWalkthroughArithmetic spot-checks the worked example of Section
// 4.3 digit for digit: 512*768 = 393216 ops, 3e9 ops/s at 150 MHz and
// 20 ops/cycle, t_comp = 1.31e-4 s, t_RC(SB) = 400*(5.56e-6+1.31e-4) =
// 5.46e-2 s.
func TestWalkthroughArithmetic(t *testing.T) {
	pr := core.MustPredict(paper.PDF1DParams()) // 150 MHz canonical

	if ops := float64(512) * 768; ops != 393216 {
		t.Fatalf("ops per iteration = %v, want 393216", ops)
	}
	rate := 150e6 * 20
	if rate != 3e9 {
		t.Fatalf("op rate = %v, want 3e9", rate)
	}
	if got := 393216 / rate; math.Abs(got-pr.TComp) > 1e-12 {
		t.Errorf("t_comp = %g, hand computation gives %g", pr.TComp, got)
	}
	// The walkthrough computes t_RC from rounded components:
	// 400*(5.56E-6 + 1.31E-4) = 5.46E-2. Exact arithmetic gives
	// 5.4653E-2; both must agree within one printed-digit unit.
	if !closeToPrinted(pr.TRCSingle, 5.46e-2, 3) {
		t.Errorf("t_RC(SB) = %.4e, walkthrough prints 5.46E-2", pr.TRCSingle)
	}
}

// TestCommDirections checks that the write path carries the input block
// and the read path carries the output block, at their respective
// sustained fractions (the 1-D PDF case makes the two directions very
// asymmetric: 512 elements out, 1 element back).
func TestCommDirections(t *testing.T) {
	pr := core.MustPredict(paper.PDF1DParams())
	wantWrite := 512.0 * 4 / (0.37 * 1e9)
	wantRead := 1.0 * 4 / (0.16 * 1e9)
	if math.Abs(pr.TWrite-wantWrite) > 1e-15 {
		t.Errorf("TWrite = %g, want %g", pr.TWrite, wantWrite)
	}
	if math.Abs(pr.TRead-wantRead) > 1e-15 {
		t.Errorf("TRead = %g, want %g", pr.TRead, wantRead)
	}
	if math.Abs(pr.TComm-(wantWrite+wantRead)) > 1e-15 {
		t.Errorf("TComm = %g, want sum %g", pr.TComm, wantWrite+wantRead)
	}
}

func TestBufferingDisciplines(t *testing.T) {
	p := paper.PDF2DParams()
	pr := core.MustPredict(p)

	iters := float64(p.Soft.Iterations)
	if want := iters * (pr.TComm + pr.TComp); math.Abs(pr.TRCSingle-want) > 1e-12*want {
		t.Errorf("TRCSingle = %g, want %g", pr.TRCSingle, want)
	}
	if want := iters * math.Max(pr.TComm, pr.TComp); math.Abs(pr.TRCDouble-want) > 1e-12*want {
		t.Errorf("TRCDouble = %g, want %g", pr.TRCDouble, want)
	}
	if pr.TRC(core.SingleBuffered) != pr.TRCSingle || pr.TRC(core.DoubleBuffered) != pr.TRCDouble {
		t.Error("TRC accessor disagrees with fields")
	}
	if pr.Speedup(core.SingleBuffered) != pr.SpeedupSingle || pr.Speedup(core.DoubleBuffered) != pr.SpeedupDouble {
		t.Error("Speedup accessor disagrees with fields")
	}
}

func TestUtilizationIdentities(t *testing.T) {
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		pr := core.MustPredict(paper.Params(c))
		if s := pr.UtilCommSB + pr.UtilCompSB; math.Abs(s-1) > 1e-12 {
			t.Errorf("%s: SB utilizations sum to %g, want 1", c, s)
		}
		if m := math.Max(pr.UtilCommDB, pr.UtilCompDB); math.Abs(m-1) > 1e-12 {
			t.Errorf("%s: max DB utilization = %g, want 1", c, m)
		}
		if pr.UtilComm(core.SingleBuffered) != pr.UtilCommSB || pr.UtilComp(core.DoubleBuffered) != pr.UtilCompDB {
			t.Errorf("%s: utilization accessors disagree with fields", c)
		}
	}
}

// TestComputeBoundClassification: all three case studies are
// compute-bound at every studied clock (communication utilization <=
// 4%), so CommunicationBound must be false throughout; shrinking the
// problem to one element makes the 1-D PDF comm-bound.
func TestComputeBoundClassification(t *testing.T) {
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		for _, f := range paper.ClocksHz {
			pr := core.MustPredict(paper.Params(c).WithClock(f))
			if pr.CommunicationBound() {
				t.Errorf("%s at %.0f MHz: unexpectedly communication-bound", c, f/1e6)
			}
		}
	}
	p := paper.PDF1DParams()
	p.Dataset.ElementsIn = 1
	p.Comp.OpsPerElement = 3
	if pr := core.MustPredict(p); !pr.CommunicationBound() {
		t.Error("degenerate 1-element design should be communication-bound")
	}
}

func TestMaxSpeedup(t *testing.T) {
	p := paper.PDF1DParams()
	pr := core.MustPredict(p)
	limit := pr.MaxSpeedup()
	if limit <= pr.SpeedupSingle {
		t.Fatalf("MaxSpeedup %g must exceed achieved speedup %g", limit, pr.SpeedupSingle)
	}
	// Pushing throughput_proc very high must approach but not exceed
	// the limit.
	fast := core.MustPredict(p.WithThroughputProc(1e9))
	if fast.SpeedupDouble > limit*(1+1e-9) {
		t.Errorf("speedup %g exceeded asymptotic limit %g", fast.SpeedupDouble, limit)
	}
	if fast.SpeedupDouble < limit*0.99 {
		t.Errorf("speedup %g should approach limit %g with huge parallelism", fast.SpeedupDouble, limit)
	}
	// Without a baseline there is no speedup limit to report.
	p.Soft.TSoft = 0
	if got := core.MustPredict(p).MaxSpeedup(); got != 0 {
		t.Errorf("MaxSpeedup without baseline = %g, want 0", got)
	}
}

func TestSustainedOps(t *testing.T) {
	p := paper.MDParams()
	pr := core.MustPredict(p)
	// MD at 150 MHz and 50 ops/cycle peaks at 7.5 GOPS; sustained
	// must be slightly below due to communication.
	peak := 7.5e9
	got := pr.SustainedOps(core.SingleBuffered)
	if got >= peak || got < 0.98*peak {
		t.Errorf("sustained ops = %g, want slightly below peak %g", got, peak)
	}
	// Double-buffered MD hides its tiny t_comm entirely.
	if db := pr.SustainedOps(core.DoubleBuffered); math.Abs(db-peak) > 1e-3*peak {
		t.Errorf("DB sustained ops = %g, want peak %g", db, peak)
	}
}

func TestPredictWithoutBaseline(t *testing.T) {
	p := paper.PDF1DParams()
	p.Soft.TSoft = 0
	pr, err := core.Predict(p)
	if err != nil {
		t.Fatalf("TSoft=0 must be allowed (prediction without baseline): %v", err)
	}
	if pr.SpeedupSingle != 0 || pr.SpeedupDouble != 0 {
		t.Errorf("speedups without baseline = %g/%g, want 0/0", pr.SpeedupSingle, pr.SpeedupDouble)
	}
	if pr.TRCSingle <= 0 {
		t.Error("execution time must still be predicted without a baseline")
	}
}

func TestMustPredictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustPredict on invalid parameters must panic")
		}
	}()
	core.MustPredict(core.Parameters{})
}

func TestBufferingString(t *testing.T) {
	if core.SingleBuffered.String() != "single-buffered" {
		t.Errorf("SingleBuffered.String() = %q", core.SingleBuffered.String())
	}
	if core.DoubleBuffered.String() != "double-buffered" {
		t.Errorf("DoubleBuffered.String() = %q", core.DoubleBuffered.String())
	}
	if got := core.Buffering(42).String(); got != "Buffering(42)" {
		t.Errorf("unknown Buffering.String() = %q", got)
	}
}

func TestValidate(t *testing.T) {
	base := paper.PDF1DParams()
	cases := []struct {
		name   string
		mutate func(*core.Parameters)
	}{
		{"zero elements in", func(p *core.Parameters) { p.Dataset.ElementsIn = 0 }},
		{"negative elements in", func(p *core.Parameters) { p.Dataset.ElementsIn = -4 }},
		{"negative elements out", func(p *core.Parameters) { p.Dataset.ElementsOut = -1 }},
		{"zero bytes per element", func(p *core.Parameters) { p.Dataset.BytesPerElement = 0 }},
		{"NaN bytes per element", func(p *core.Parameters) { p.Dataset.BytesPerElement = math.NaN() }},
		{"inf bytes per element", func(p *core.Parameters) { p.Dataset.BytesPerElement = math.Inf(1) }},
		{"zero ideal throughput", func(p *core.Parameters) { p.Comm.IdealThroughput = 0 }},
		{"alpha write zero", func(p *core.Parameters) { p.Comm.AlphaWrite = 0 }},
		{"alpha write above one", func(p *core.Parameters) { p.Comm.AlphaWrite = 1.2 }},
		{"alpha read negative", func(p *core.Parameters) { p.Comm.AlphaRead = -0.1 }},
		{"alpha read above one", func(p *core.Parameters) { p.Comm.AlphaRead = 2 }},
		{"zero ops per element", func(p *core.Parameters) { p.Comp.OpsPerElement = 0 }},
		{"zero throughput proc", func(p *core.Parameters) { p.Comp.ThroughputProc = 0 }},
		{"zero clock", func(p *core.Parameters) { p.Comp.ClockHz = 0 }},
		{"NaN clock", func(p *core.Parameters) { p.Comp.ClockHz = math.NaN() }},
		{"negative tsoft", func(p *core.Parameters) { p.Soft.TSoft = -1 }},
		{"NaN tsoft", func(p *core.Parameters) { p.Soft.TSoft = math.NaN() }},
		{"zero iterations", func(p *core.Parameters) { p.Soft.Iterations = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			tc.mutate(&p)
			err := p.Validate()
			if err == nil {
				t.Fatal("Validate accepted invalid parameters")
			}
			if !errors.Is(err, core.ErrInvalidParameters) {
				t.Errorf("error %v does not wrap ErrInvalidParameters", err)
			}
			if _, err := core.Predict(p); err == nil {
				t.Error("Predict accepted invalid parameters")
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Errorf("canonical worksheet rejected: %v", err)
	}
}

func TestDerivedQuantities(t *testing.T) {
	p := paper.MDParams()
	if got := p.BytesIn(); got != 16384*36 {
		t.Errorf("BytesIn = %g, want %d", got, 16384*36)
	}
	if got := p.BytesOut(); got != 16384*36 {
		t.Errorf("BytesOut = %g, want %d", got, 16384*36)
	}
	if got := p.TotalOps(); got != 16384*164000 {
		t.Errorf("TotalOps = %g, want %d", got, int64(16384)*164000)
	}
	q := paper.PDF1DParams()
	if got := q.TotalOps(); got != 400*512*768 {
		t.Errorf("TotalOps = %g, want %d", got, 400*512*768)
	}
}
