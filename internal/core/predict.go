package core

import (
	"fmt"
	"math"
)

// Buffering selects the communication/computation overlap discipline
// modelled by the throughput test (Figure 2 of the paper).
type Buffering int

const (
	// SingleBuffered: one buffer, no overlap; each iteration is a
	// read, a compute and a write laid end to end (Eq. 5).
	SingleBuffered Buffering = iota
	// DoubleBuffered: two buffers keep I/O and processing busy
	// simultaneously; in steady state the smaller of t_comm and
	// t_comp hides completely behind the larger (Eq. 6). The model
	// neglects the pipeline-fill startup cost, which the paper deems
	// negligible for a sufficiently large number of iterations.
	DoubleBuffered
)

// String implements fmt.Stringer.
func (b Buffering) String() string {
	switch b {
	case SingleBuffered:
		return "single-buffered"
	case DoubleBuffered:
		return "double-buffered"
	default:
		return fmt.Sprintf("Buffering(%d)", int(b))
	}
}

// Prediction is the full output of the RAT throughput test for one
// parameter set: the per-iteration component times, the end-to-end RC
// execution times and speedups under both buffering disciplines, and
// the utilization metrics of Eqs. 8-11. All times are seconds.
type Prediction struct {
	Params Parameters

	// Per-iteration communication components (Eqs. 1-3).
	TWrite float64 // host -> FPGA input transfer
	TRead  float64 // FPGA -> host result transfer
	TComm  float64 // TWrite + TRead

	// Per-iteration computation time (Eq. 4).
	TComp float64

	// End-to-end RC execution times (Eqs. 5-6).
	TRCSingle float64
	TRCDouble float64

	// Speedups over the software baseline (Eq. 7). Zero when no
	// baseline time was supplied (TSoft == 0).
	SpeedupSingle float64
	SpeedupDouble float64

	// Utilizations (Eqs. 8-11): fraction of execution time spent in
	// computation / communication under each discipline.
	UtilCompSB float64
	UtilCommSB float64
	UtilCompDB float64
	UtilCommDB float64
}

// Predict evaluates Eqs. (1)-(11) of the paper for the given
// parameters. It is the forward direction of the RAT throughput test:
// parameters in, predicted times, speedups and utilizations out.
func Predict(p Parameters) (Prediction, error) {
	if err := p.Validate(); err != nil {
		return Prediction{}, err
	}
	var pr Prediction
	predictInto(p, &pr)
	return pr, nil
}

// predictInto evaluates Eqs. (1)-(11) for already-validated parameters
// into *pr. It is the shared computation kernel behind Predict, the
// batch path and the sweeps; it performs no allocation, so hot loops
// (a design-space search calls it millions of times) can evaluate into
// caller-owned storage.
func predictInto(p Parameters, pr *Prediction) {
	pr.Params = p

	// Eqs. (2)-(3): each direction sustains only the fraction alpha
	// of the documented interconnect bandwidth.
	pr.TWrite = p.BytesIn() / (p.Comm.AlphaWrite * p.Comm.IdealThroughput)
	pr.TRead = p.BytesOut() / (p.Comm.AlphaRead * p.Comm.IdealThroughput)
	// Eq. (1).
	pr.TComm = pr.TRead + pr.TWrite

	// Eq. (4): time to operate on one buffered block of elements.
	pr.TComp = float64(p.Dataset.ElementsIn) * p.Comp.OpsPerElement /
		(p.Comp.ClockHz * p.Comp.ThroughputProc)

	iters := float64(p.Soft.Iterations)
	// Eq. (5).
	pr.TRCSingle = iters * (pr.TComm + pr.TComp)
	// Eq. (6).
	pr.TRCDouble = iters * math.Max(pr.TComm, pr.TComp)

	// Eq. (7): speedup compares total application times.
	pr.SpeedupSingle, pr.SpeedupDouble = 0, 0
	if p.Soft.TSoft > 0 {
		pr.SpeedupSingle = p.Soft.TSoft / pr.TRCSingle
		pr.SpeedupDouble = p.Soft.TSoft / pr.TRCDouble
	}

	// Eqs. (8)-(9).
	sum := pr.TComm + pr.TComp
	pr.UtilCompSB = pr.TComp / sum
	pr.UtilCommSB = pr.TComm / sum
	// Eqs. (10)-(11). Only meaningful with enough iterations for
	// steady state; the caller owns that judgement.
	mx := math.Max(pr.TComm, pr.TComp)
	pr.UtilCompDB = pr.TComp / mx
	pr.UtilCommDB = pr.TComm / mx
}

// MustPredict is Predict for parameter sets known to be valid, such as
// package-level canonical worksheets; it panics on validation failure.
func MustPredict(p Parameters) Prediction {
	pr, err := Predict(p)
	if err != nil {
		//rat:allow-panic Must-style wrapper documented to panic on validation failure
		panic(err)
	}
	return pr
}

// TRC returns the predicted end-to-end RC execution time under the
// given buffering discipline.
func (pr Prediction) TRC(b Buffering) float64 {
	if b == DoubleBuffered {
		return pr.TRCDouble
	}
	return pr.TRCSingle
}

// Speedup returns the predicted speedup under the given buffering
// discipline (zero when no software baseline was supplied).
func (pr Prediction) Speedup(b Buffering) float64 {
	if b == DoubleBuffered {
		return pr.SpeedupDouble
	}
	return pr.SpeedupSingle
}

// UtilComp returns the computation utilization under the given
// discipline. High values mean the FPGA is rarely idle; low values
// signal room for more speedup through less (or better overlapped)
// communication.
func (pr Prediction) UtilComp(b Buffering) float64 {
	if b == DoubleBuffered {
		return pr.UtilCompDB
	}
	return pr.UtilCompSB
}

// UtilComm returns the communication utilization under the given
// discipline. Because the channel is a single serialized resource,
// 1-UtilComm is the fraction of interconnect bandwidth left to
// facilitate additional transfers.
func (pr Prediction) UtilComm(b Buffering) float64 {
	if b == DoubleBuffered {
		return pr.UtilCommDB
	}
	return pr.UtilCommSB
}

// CommunicationBound reports whether the per-iteration communication
// time exceeds the computation time, i.e. whether a double-buffered
// implementation would be limited by the interconnect.
func (pr Prediction) CommunicationBound() bool { return pr.TComm > pr.TComp }

// SustainedOps returns the operation rate the design sustains across
// the whole run, in operations per second, under the given discipline.
func (pr Prediction) SustainedOps(b Buffering) float64 {
	return pr.Params.TotalOps() / pr.TRC(b)
}

// MaxSpeedup returns the asymptotic speedup limit of the design as
// computation becomes infinitely fast (throughput_proc -> inf): the run
// degenerates to pure communication, so no reformulation of the
// computation alone can beat t_soft / (N_iter * t_comm). A design whose
// target exceeds this bound must reduce or overlap communication, not
// add parallelism.
func (pr Prediction) MaxSpeedup() float64 {
	if pr.Params.Soft.TSoft <= 0 {
		return 0
	}
	return pr.Params.Soft.TSoft / (float64(pr.Params.Soft.Iterations) * pr.TComm)
}
