package core

import (
	"fmt"
	"math"
)

// Section 6 of the paper singles out "systems containing multiple
// FPGAs being increasingly deployed" as the methodology's next target.
// This file extends the throughput test to that setting: one host
// distributing each iteration's block across N identical FPGAs.
//
// Two interconnect topologies are modelled:
//
//   - SharedChannel: all devices sit behind one host channel (a single
//     PCI-X bus with several cards). Each iteration still moves the
//     full data volume through the one serialized channel, so t_comm
//     is unchanged while computation divides by N.
//   - IndependentChannels: every device has its own full-bandwidth
//     link (one card per bus/slot), so communication and computation
//     both divide by N.
//
// Both models assume the block parallelizes evenly and ignore
// host-side scatter/gather costs, consistent with the base test's
// level of abstraction.

// Topology selects the multi-FPGA interconnect arrangement.
type Topology int

const (
	// SharedChannel: one serialized host link feeds every device.
	SharedChannel Topology = iota
	// IndependentChannels: one full-bandwidth link per device.
	IndependentChannels
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case SharedChannel:
		return "shared-channel"
	case IndependentChannels:
		return "independent-channels"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// MultiConfig describes the multi-FPGA system.
type MultiConfig struct {
	// Devices is the FPGA count (N >= 1; 1 degenerates exactly to
	// the single-device model).
	Devices int
	// Topology is the interconnect arrangement.
	Topology Topology
}

// MultiPrediction is the multi-FPGA throughput-test output.
type MultiPrediction struct {
	Config MultiConfig
	// Single is the N=1 baseline prediction.
	Single Prediction

	// Per-iteration times under the multi-FPGA model.
	TComm float64 // aggregate communication time per iteration
	TComp float64 // per-device computation time (devices run in parallel)

	// End-to-end times and speedups (Eqs. 5-7 applied to the
	// multi-FPGA per-iteration times).
	TRCSingle     float64
	TRCDouble     float64
	SpeedupSingle float64
	SpeedupDouble float64

	// ScalingEfficiency is the double-buffered speedup relative to
	// perfect N-way scaling of the single-device double-buffered
	// speedup: 1.0 means the extra devices are fully effective.
	ScalingEfficiency float64
}

// PredictMulti evaluates the multi-FPGA throughput test.
func PredictMulti(p Parameters, cfg MultiConfig) (MultiPrediction, error) {
	if cfg.Devices < 1 {
		return MultiPrediction{}, fmt.Errorf("%w: device count must be >= 1 (got %d)", ErrInvalidParameters, cfg.Devices)
	}
	if cfg.Topology != SharedChannel && cfg.Topology != IndependentChannels {
		return MultiPrediction{}, fmt.Errorf("%w: unknown topology %v", ErrInvalidParameters, cfg.Topology)
	}
	base, err := Predict(p)
	if err != nil {
		return MultiPrediction{}, err
	}
	n := float64(cfg.Devices)
	mp := MultiPrediction{Config: cfg, Single: base}
	mp.TComp = base.TComp / n
	mp.TComm = base.TComm
	if cfg.Topology == IndependentChannels {
		mp.TComm = base.TComm / n
	}
	iters := float64(p.Soft.Iterations)
	mp.TRCSingle = iters * (mp.TComm + mp.TComp)
	mp.TRCDouble = iters * math.Max(mp.TComm, mp.TComp)
	if p.Soft.TSoft > 0 {
		mp.SpeedupSingle = p.Soft.TSoft / mp.TRCSingle
		mp.SpeedupDouble = p.Soft.TSoft / mp.TRCDouble
	}
	ideal := base.SpeedupDouble * n
	if ideal > 0 {
		mp.ScalingEfficiency = mp.SpeedupDouble / ideal
	}
	return mp, nil
}

// ScalingKnee returns the device count beyond which a shared-channel
// system is communication-bound under double buffering — the point
// where t_comp/N drops below the fixed t_comm and additional FPGAs
// stop helping. Fractional results are meaningful ("the knee sits
// between 3 and 4 devices"); values below 1 mean even one device is
// communication-bound.
func ScalingKnee(p Parameters) (float64, error) {
	pr, err := Predict(p)
	if err != nil {
		return 0, err
	}
	return pr.TComp / pr.TComm, nil
}

// SweepDevices evaluates the multi-FPGA prediction at each device
// count, for scaling plots.
func SweepDevices(p Parameters, topo Topology, counts []int) ([]MultiPrediction, error) {
	out := make([]MultiPrediction, 0, len(counts))
	for _, n := range counts {
		mp, err := PredictMulti(p, MultiConfig{Devices: n, Topology: topo})
		if err != nil {
			return nil, err
		}
		out = append(out, mp)
	}
	return out, nil
}
