package core

import (
	"errors"
	"fmt"
)

// ErrUnreachable is returned by the inverse solvers when no value of
// the free parameter can reach the requested speedup, because the fixed
// part of the execution time (usually communication) already exceeds
// the time budget the target allows.
var ErrUnreachable = errors.New("rat/core: target speedup unreachable")

// solveTarget converts a desired speedup into the per-iteration time
// budget it implies.
func solveTarget(p Parameters, speedup float64) (perIter float64, err error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if speedup <= 0 {
		return 0, fmt.Errorf("%w: speedup target must be positive (got %v)", ErrInvalidParameters, speedup)
	}
	if p.Soft.TSoft <= 0 {
		return 0, fmt.Errorf("%w: Soft.TSoft must be positive to solve for a speedup target", ErrInvalidParameters)
	}
	return p.Soft.TSoft / speedup / float64(p.Soft.Iterations), nil
}

// commTime evaluates Eqs. (1)-(3) alone.
func commTime(p Parameters) float64 {
	return p.BytesIn()/(p.Comm.AlphaWrite*p.Comm.IdealThroughput) +
		p.BytesOut()/(p.Comm.AlphaRead*p.Comm.IdealThroughput)
}

// compBudget returns the largest per-iteration computation time that
// still meets the per-iteration budget under the given buffering
// discipline, or ErrUnreachable when communication alone blows the
// budget.
func compBudget(p Parameters, b Buffering, perIter float64) (float64, error) {
	tcomm := commTime(p)
	var budget float64
	switch b {
	case DoubleBuffered:
		// Eq. (6): need max(tcomm, tcomp) <= perIter.
		budget = perIter
	default:
		// Eq. (5): need tcomm + tcomp <= perIter.
		budget = perIter - tcomm
	}
	if tcomm > perIter || budget <= 0 {
		return 0, fmt.Errorf("%w: communication alone takes %.3e s of the %.3e s per-iteration budget (%s)",
			ErrUnreachable, tcomm, perIter, b)
	}
	return budget, nil
}

// SolveThroughputProc treats throughput_proc as an independent variable
// and returns the smallest sustained operations-per-cycle that achieves
// the desired speedup under the given buffering discipline, holding
// every other parameter fixed.
//
// This is the usage the paper applies to the molecular-dynamics case
// study: for data-dependent algorithms whose operation rate cannot be
// predicted, the solved value tells the designer how much parallelism a
// design must sustain to succeed (Section 3.1). With the paper's MD
// parameters at 100 MHz and a 10x goal it yields ~46.7 ops/cycle, which
// the authors round up to the headline 50.
func SolveThroughputProc(p Parameters, targetSpeedup float64, b Buffering) (float64, error) {
	perIter, err := solveTarget(p, targetSpeedup)
	if err != nil {
		return 0, err
	}
	budget, err := compBudget(p, b, perIter)
	if err != nil {
		return 0, err
	}
	// Invert Eq. (4) for throughput_proc.
	return float64(p.Dataset.ElementsIn) * p.Comp.OpsPerElement / (p.Comp.ClockHz * budget), nil
}

// SolveClock returns the smallest FPGA clock frequency (Hz) that
// achieves the desired speedup, holding every other parameter fixed.
// Useful when the design's parallelism is known but the routed clock is
// the open question.
func SolveClock(p Parameters, targetSpeedup float64, b Buffering) (float64, error) {
	perIter, err := solveTarget(p, targetSpeedup)
	if err != nil {
		return 0, err
	}
	budget, err := compBudget(p, b, perIter)
	if err != nil {
		return 0, err
	}
	// Invert Eq. (4) for f_clock.
	return float64(p.Dataset.ElementsIn) * p.Comp.OpsPerElement / (p.Comp.ThroughputProc * budget), nil
}

// SolveAlpha returns the smallest sustained interconnect fraction
// (applied to both directions) that achieves the desired speedup,
// holding everything else fixed. It answers "how good must the
// interconnect be": a result above 1 means no interconnect of this
// ideal bandwidth suffices. Only the communication side of the budget
// is free, so under single buffering the computation time must already
// fit; otherwise ErrUnreachable is returned.
func SolveAlpha(p Parameters, targetSpeedup float64, b Buffering) (float64, error) {
	perIter, err := solveTarget(p, targetSpeedup)
	if err != nil {
		return 0, err
	}
	pr := MustPredict(p)
	var commBudget float64
	switch b {
	case DoubleBuffered:
		commBudget = perIter
	default:
		commBudget = perIter - pr.TComp
	}
	if commBudget <= 0 {
		return 0, fmt.Errorf("%w: computation alone takes %.3e s of the %.3e s per-iteration budget (%s)",
			ErrUnreachable, pr.TComp, perIter, b)
	}
	// With a common alpha in both directions,
	// t_comm = (bytesIn + bytesOut) / (alpha * throughput_ideal).
	alpha := (p.BytesIn() + p.BytesOut()) / (p.Comm.IdealThroughput * commBudget)
	return alpha, nil
}

// RequiredTSoft returns the software baseline time that would make the
// current design exactly meet the target speedup — the break-even
// question inverted: "how slow does software have to be for this
// migration to pay off at factor k".
func RequiredTSoft(p Parameters, targetSpeedup float64, b Buffering) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if targetSpeedup <= 0 {
		return 0, fmt.Errorf("%w: speedup target must be positive (got %v)", ErrInvalidParameters, targetSpeedup)
	}
	pr := MustPredict(p)
	return targetSpeedup * pr.TRC(b), nil
}

// CrossoverClock returns the FPGA clock frequency (Hz) at which the
// per-iteration computation time equals the communication time — the
// boundary between the communication-bound and computation-bound
// regimes for a double-buffered design. Above this clock the design is
// interconnect-limited and additional computational parallelism buys
// nothing.
func CrossoverClock(p Parameters) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	tcomm := commTime(p)
	return float64(p.Dataset.ElementsIn) * p.Comp.OpsPerElement / (p.Comp.ThroughputProc * tcomm), nil
}
