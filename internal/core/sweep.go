package core

import "sort"

// SweepClock evaluates the prediction at each clock frequency in hz,
// reproducing the paper's practice of bracketing an unknown routed
// frequency with a range of plausible values (75/100/150 MHz in all
// three case studies). Results are returned in the order given.
func SweepClock(p Parameters, hz []float64) ([]Prediction, error) {
	out := make([]Prediction, 0, len(hz))
	for _, f := range hz {
		pr, err := Predict(p.WithClock(f))
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	return out, nil
}

// SweepThroughputProc evaluates the prediction at each sustained
// ops/cycle value, the natural axis for exploring how much parallelism
// a design needs.
func SweepThroughputProc(p Parameters, ops []float64) ([]Prediction, error) {
	out := make([]Prediction, 0, len(ops))
	for _, v := range ops {
		pr, err := Predict(p.WithThroughputProc(v))
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	return out, nil
}

// Sweep evaluates the prediction for each value in values after
// applying mutate to a copy of the base parameters. It generalizes the
// fixed-axis sweeps to any single-parameter study (block size, alpha,
// bytes per element, ...).
func Sweep(p Parameters, values []float64, mutate func(Parameters, float64) Parameters) ([]Prediction, error) {
	out := make([]Prediction, 0, len(values))
	for _, v := range values {
		pr, err := Predict(mutate(p, v))
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	return out, nil
}

// SweepPoint pairs a swept input value with its prediction.
type SweepPoint struct {
	Value      float64
	Prediction Prediction
}

// FindCrossover scans a sweep for the first adjacent pair of points
// where the design flips between communication-bound and
// computation-bound, and returns the two bracketing points. The second
// return value is false when the whole sweep stays in one regime.
// Points are examined in ascending order of Value.
func FindCrossover(points []SweepPoint) ([2]SweepPoint, bool) {
	sorted := make([]SweepPoint, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Value < sorted[j].Value })
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Prediction.CommunicationBound() != sorted[i].Prediction.CommunicationBound() {
			return [2]SweepPoint{sorted[i-1], sorted[i]}, true
		}
	}
	return [2]SweepPoint{}, false
}

// SweepPoints runs Sweep and pairs each prediction with its input
// value, ready for FindCrossover or plotting.
func SweepPoints(p Parameters, values []float64, mutate func(Parameters, float64) Parameters) ([]SweepPoint, error) {
	prs, err := Sweep(p, values, mutate)
	if err != nil {
		return nil, err
	}
	pts := make([]SweepPoint, len(prs))
	for i, pr := range prs {
		pts[i] = SweepPoint{Value: values[i], Prediction: pr}
	}
	return pts, nil
}
