package core

import (
	"math"
	"sort"
)

// checkSweepValues rejects sweep-value lists that would silently
// corrupt a study: NaN and infinite entries (which poison every
// downstream comparison) and duplicates (which double-count a design
// point in crossover scans and plots). The check allocates nothing;
// sweeps are short enough that the quadratic duplicate scan is cheaper
// than sorting a copy.
func checkSweepValues(values []float64) error {
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return paramError("sweep value", "must be finite", v)
		}
		for j := 0; j < i; j++ {
			if values[j] == v {
				return paramError("sweep value", "is duplicated", v)
			}
		}
	}
	return nil
}

// SweepClock evaluates the prediction at each clock frequency in hz,
// reproducing the paper's practice of bracketing an unknown routed
// frequency with a range of plausible values (75/100/150 MHz in all
// three case studies). Results are returned in the order given.
//
// The base worksheet is validated once; each point then only checks
// the swept clock before evaluating in place, so a long sweep costs one
// validation plus the arithmetic.
func SweepClock(p Parameters, hz []float64) ([]Prediction, error) {
	if err := checkSweepValues(hz); err != nil {
		return nil, err
	}
	out := make([]Prediction, len(hz))
	if len(hz) == 0 {
		return out, nil
	}
	if err := p.WithClock(hz[0]).Validate(); err != nil {
		return nil, err
	}
	for i, f := range hz {
		if !(f > 0) || math.IsInf(f, 0) {
			return nil, paramError("Comp.ClockHz", "must be positive and finite", f)
		}
		predictInto(p.WithClock(f), &out[i])
	}
	return out, nil
}

// SweepThroughputProc evaluates the prediction at each sustained
// ops/cycle value, the natural axis for exploring how much parallelism
// a design needs. Like SweepClock it validates the base worksheet once
// and only checks the swept field per point.
func SweepThroughputProc(p Parameters, ops []float64) ([]Prediction, error) {
	if err := checkSweepValues(ops); err != nil {
		return nil, err
	}
	out := make([]Prediction, len(ops))
	if len(ops) == 0 {
		return out, nil
	}
	if err := p.WithThroughputProc(ops[0]).Validate(); err != nil {
		return nil, err
	}
	for i, v := range ops {
		if !(v > 0) || math.IsInf(v, 0) {
			return nil, paramError("Comp.ThroughputProc", "must be positive and finite", v)
		}
		predictInto(p.WithThroughputProc(v), &out[i])
	}
	return out, nil
}

// Sweep evaluates the prediction for each value in values after
// applying mutate to a copy of the base parameters. It generalizes the
// fixed-axis sweeps to any single-parameter study (block size, alpha,
// bytes per element, ...). The sweep values are checked once up front
// (finite, no duplicates); because mutate may rewrite any field, each
// mutated worksheet is still validated, but evaluation writes into the
// preallocated result in place.
func Sweep(p Parameters, values []float64, mutate func(Parameters, float64) Parameters) ([]Prediction, error) {
	if err := checkSweepValues(values); err != nil {
		return nil, err
	}
	out := make([]Prediction, len(values))
	for i, v := range values {
		q := mutate(p, v)
		if err := q.Validate(); err != nil {
			return nil, err
		}
		predictInto(q, &out[i])
	}
	return out, nil
}

// SweepPoint pairs a swept input value with its prediction.
type SweepPoint struct {
	Value      float64
	Prediction Prediction
}

// FindCrossover scans a sweep for the first adjacent pair of points
// where the design flips between communication-bound and
// computation-bound, and returns the two bracketing points. The second
// return value is false when the whole sweep stays in one regime.
// Points are examined in ascending order of Value.
func FindCrossover(points []SweepPoint) ([2]SweepPoint, bool) {
	sorted := make([]SweepPoint, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Value < sorted[j].Value })
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Prediction.CommunicationBound() != sorted[i].Prediction.CommunicationBound() {
			return [2]SweepPoint{sorted[i-1], sorted[i]}, true
		}
	}
	return [2]SweepPoint{}, false
}

// SweepPoints runs Sweep and pairs each prediction with its input
// value, ready for FindCrossover or plotting.
func SweepPoints(p Parameters, values []float64, mutate func(Parameters, float64) Parameters) ([]SweepPoint, error) {
	if err := checkSweepValues(values); err != nil {
		return nil, err
	}
	pts := make([]SweepPoint, len(values))
	for i, v := range values {
		q := mutate(p, v)
		if err := q.Validate(); err != nil {
			return nil, err
		}
		pts[i].Value = v
		predictInto(q, &pts[i].Prediction)
	}
	return pts, nil
}
