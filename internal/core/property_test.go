package core_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/chrec/rat/internal/core"
)

// genParams draws a random but valid parameter set. Ranges are wide
// enough to cover embedded-scale and HPC-scale designs.
func genParams(r *rand.Rand) core.Parameters {
	return core.Parameters{
		Dataset: core.DatasetParams{
			ElementsIn:      1 + r.Int63n(1<<20),
			ElementsOut:     r.Int63n(1 << 20),
			BytesPerElement: 1 + 63*r.Float64(),
		},
		Comm: core.CommParams{
			IdealThroughput: core.MBps(1 + 9999*r.Float64()),
			AlphaWrite:      0.01 + 0.99*r.Float64(),
			AlphaRead:       0.01 + 0.99*r.Float64(),
		},
		Comp: core.CompParams{
			OpsPerElement:  1 + 1e6*r.Float64(),
			ThroughputProc: 0.1 + 200*r.Float64(),
			ClockHz:        core.MHz(10 + 490*r.Float64()),
		},
		Soft: core.SoftwareParams{
			TSoft:      0.001 + 1000*r.Float64(),
			Iterations: 1 + r.Int63n(10000),
		},
	}
}

// quickCfg wires the custom generator into testing/quick.
func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(genParams(r))
			}
		},
	}
}

// PropertyDoubleBufferedDominates: for any valid parameters,
// t_RC(DB) <= t_RC(SB) <= 2*t_RC(DB): overlap can at best hide the
// smaller term entirely and at worst hide nothing.
func TestPropertyDoubleBufferedBounds(t *testing.T) {
	f := func(p core.Parameters) bool {
		pr := core.MustPredict(p)
		return pr.TRCDouble <= pr.TRCSingle*(1+1e-12) &&
			pr.TRCSingle <= 2*pr.TRCDouble*(1+1e-12)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// PropertyUtilizationIdentities: SB utilizations always sum to one and
// the larger DB utilization is always exactly one.
func TestPropertyUtilizationIdentities(t *testing.T) {
	f := func(p core.Parameters) bool {
		pr := core.MustPredict(p)
		return math.Abs(pr.UtilCommSB+pr.UtilCompSB-1) < 1e-9 &&
			math.Abs(math.Max(pr.UtilCommDB, pr.UtilCompDB)-1) < 1e-9 &&
			pr.UtilCommDB >= 0 && pr.UtilCompDB >= 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// PropertyClockMonotonicity: raising the clock never slows the design
// down, and the speedup never exceeds the communication-bound asymptote.
func TestPropertyClockMonotonicity(t *testing.T) {
	f := func(p core.Parameters) bool {
		lo := core.MustPredict(p)
		hi := core.MustPredict(p.WithClock(p.Comp.ClockHz * 2))
		if hi.TRCSingle > lo.TRCSingle*(1+1e-12) || hi.TRCDouble > lo.TRCDouble*(1+1e-12) {
			return false
		}
		return hi.SpeedupDouble <= lo.MaxSpeedup()*(1+1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// PropertySolverRoundTrip: for a feasible target, predicting with the
// solved throughput_proc reproduces the target speedup.
func TestPropertySolverRoundTrip(t *testing.T) {
	f := func(p core.Parameters) bool {
		pr := core.MustPredict(p)
		// Pick a target safely inside the feasible region.
		target := math.Min(pr.SpeedupSingle*2, pr.MaxSpeedup()*0.5)
		if target <= 0 {
			return true
		}
		for _, b := range []core.Buffering{core.SingleBuffered, core.DoubleBuffered} {
			tp, err := core.SolveThroughputProc(p, target, b)
			if err != nil {
				// Feasible single-buffered implies feasible
				// double-buffered, so any error here is a bug.
				return false
			}
			got := core.MustPredict(p.WithThroughputProc(tp)).Speedup(b)
			if math.Abs(got-target) > 1e-6*target {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// PropertyStreamingDominatesDoubleBuffered: splitting read and write
// into separate pipeline stages can only help, so
// t_RC(stream) <= t_RC(DB) <= t_RC(SB).
func TestPropertyStreamingDominates(t *testing.T) {
	f := func(p core.Parameters) bool {
		sp, err := core.PredictStreaming(p)
		if err != nil {
			return false
		}
		return sp.TRCStream <= sp.TRCDouble*(1+1e-12)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// PropertyScaleInvariance: multiplying element count by k and dividing
// iterations by k leaves total times unchanged under single buffering
// (the model is linear in the total workload).
func TestPropertyWorkloadLinearity(t *testing.T) {
	f := func(p core.Parameters) bool {
		if p.Soft.Iterations%2 != 0 {
			p.Soft.Iterations++ // make it even
		}
		q := p
		q.Dataset.ElementsIn *= 2
		q.Dataset.ElementsOut *= 2
		q.Soft.Iterations /= 2
		a := core.MustPredict(p)
		b := core.MustPredict(q)
		return math.Abs(a.TRCSingle-b.TRCSingle) <= 1e-9*a.TRCSingle
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
