package core_test

import (
	"errors"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
)

// TestPredictIntoMatchesPredict: the in-place path is the scalar path.
func TestPredictIntoMatchesPredict(t *testing.T) {
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		p := paper.Params(c)
		want, err := core.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		var got core.Prediction
		if err := core.PredictInto(p, &got); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: PredictInto = %+v, want %+v", p.Name, got, want)
		}
	}
}

// TestPredictIntoZeroesOnError: failed validation must not leave stale
// data in reused storage.
func TestPredictIntoZeroesOnError(t *testing.T) {
	var out core.Prediction
	if err := core.PredictInto(paper.PDF1DParams(), &out); err != nil {
		t.Fatal(err)
	}
	bad := paper.PDF1DParams()
	bad.Comp.ClockHz = 0
	if err := core.PredictInto(bad, &out); !errors.Is(err, core.ErrInvalidParameters) {
		t.Fatalf("err = %v, want ErrInvalidParameters", err)
	}
	if out != (core.Prediction{}) {
		t.Errorf("failed PredictInto left stale prediction %+v", out)
	}
}

// TestPredictBatchMatchesScalar: every batch cell is bit-for-bit the
// scalar prediction, across all three paper case studies and a clock
// sweep of each.
func TestPredictBatchMatchesScalar(t *testing.T) {
	var ps []core.Parameters
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		for _, hz := range paper.ClocksHz {
			ps = append(ps, paper.Params(c).WithClock(hz))
		}
	}
	out := make([]core.Prediction, len(ps))
	if err := core.PredictBatch(ps, out); err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		want := core.MustPredict(p)
		if out[i] != want {
			t.Errorf("batch[%d] (%s at %g MHz) = %+v, want %+v",
				i, p.Name, p.Comp.ClockHz/1e6, out[i], want)
		}
	}
}

// TestPredictBatchValidation: short output slices and invalid members
// are rejected up front, with the failing index named and no partial
// writes.
func TestPredictBatchValidation(t *testing.T) {
	ps := []core.Parameters{paper.PDF1DParams(), paper.PDF2DParams()}
	if err := core.PredictBatch(ps, make([]core.Prediction, 1)); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("short output: err = %v, want ErrInvalidParameters", err)
	}

	bad := paper.PDF2DParams()
	bad.Comm.AlphaRead = 2
	out := make([]core.Prediction, 2)
	err := core.PredictBatch([]core.Parameters{paper.PDF1DParams(), bad}, out)
	if !errors.Is(err, core.ErrInvalidParameters) {
		t.Fatalf("err = %v, want ErrInvalidParameters", err)
	}
	if out[0] != (core.Prediction{}) {
		t.Error("failed batch wrote partial results before the invalid index")
	}

	// Empty batches are fine.
	if err := core.PredictBatch(nil, nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

// TestPredictBatchZeroAlloc: the steady-state batch path allocates
// nothing per evaluation.
func TestPredictBatchZeroAlloc(t *testing.T) {
	ps := make([]core.Parameters, 64)
	for i := range ps {
		ps[i] = paper.PDF1DParams().WithClock(core.MHz(50 + float64(i)))
	}
	out := make([]core.Prediction, len(ps))
	allocs := testing.AllocsPerRun(100, func() {
		if err := core.PredictBatch(ps, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PredictBatch allocates %.1f times per call, want 0", allocs)
	}
}
