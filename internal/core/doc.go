// Package core implements the analytic heart of the RC Amenability Test
// (RAT): the throughput test of Holland et al., "RAT: A Methodology for
// Predicting Performance in Application Design Migration to FPGAs"
// (HPRCTA'07).
//
// The throughput test predicts the wall-clock execution time of an
// application design on a reconfigurable-computing (RC) platform from a
// small set of parameters (Table 1 of the paper) before any hardware
// code is written. The prediction is built from two quantities:
//
//   - communication time between CPU and FPGA (Eqs. 1-3), and
//   - FPGA computation time (Eq. 4),
//
// combined under a buffering discipline (Eqs. 5-6) into the RC execution
// time, from which speedup over a software baseline (Eq. 7) and
// communication/computation utilizations (Eqs. 8-11) follow.
//
// Beyond the forward prediction the package provides the inverse
// solvers the paper applies to the molecular-dynamics case study
// (treating throughput_proc as a tuning parameter and solving for the
// value that achieves a desired speedup), parameter sweeps over clock
// frequency and other inputs, a composition model for applications made
// of several kernels each with its own RAT analysis (Section 6), and
// the streaming-model adjustment sketched in Section 3.1.
//
// Units are SI throughout: bytes, bytes per second, hertz, seconds.
// Helper functions (MBps, MHz, ...) convert from the paper's customary
// units. Following the paper, "MB" is decimal (1 MB/s = 1e6 bytes/s),
// so the 133 MHz 64-bit PCI-X bus has throughput_ideal = 1000 MB/s =
// 1e9 B/s.
package core
