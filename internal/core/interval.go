package core

import (
	"fmt"
	"math"
)

// RAT inputs are estimates: alphas come from microbenchmarks at one
// size, operation counts are measured from algorithm structure, the
// post-route clock is anybody's guess, and throughput_proc may be a
// deliberate derate. The paper handles the worst of these by sweeping
// clock values "to examine the scope of possible speedups"; this file
// generalizes that practice to every uncertain input at once.
//
// Every output of Eqs. (1)-(11) is monotone in each input, so exact
// interval bounds come from evaluating just two corner worksheets: the
// optimistic corner (fast interconnect, few operations, much
// parallelism, high clock, slow software baseline) and the pessimistic
// one. No sampling is involved and the bounds are tight.

// Uncertainty gives the relative half-width of each estimated input:
// 0.2 means "within ±20% of the worksheet value". Zero fields are
// treated as exact. Alphas are additionally clamped to (0, 1].
type Uncertainty struct {
	Alpha          float64 // both interconnect sustained fractions
	OpsPerElement  float64
	ThroughputProc float64
	Clock          float64
	TSoft          float64
}

// validate rejects nonsense half-widths.
func (u Uncertainty) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Alpha", u.Alpha}, {"OpsPerElement", u.OpsPerElement},
		{"ThroughputProc", u.ThroughputProc}, {"Clock", u.Clock}, {"TSoft", u.TSoft},
	} {
		if f.v < 0 || f.v >= 1 || math.IsNaN(f.v) {
			return fmt.Errorf("%w: uncertainty %s must be in [0, 1) (got %v)", ErrInvalidParameters, f.name, f.v)
		}
	}
	return nil
}

// Bounds is an interval prediction: the pessimistic and optimistic
// corner evaluations bracketing every output of the throughput test.
type Bounds struct {
	// Nominal is the point prediction at the worksheet values.
	Nominal Prediction
	// Worst and Best are the corner evaluations (worst = slowest RC
	// execution / smallest speedup).
	Worst Prediction
	Best  Prediction
}

// clampAlpha keeps a scaled alpha physical.
func clampAlpha(a float64) float64 {
	if a > 1 {
		return 1
	}
	if a <= 0 {
		return math.SmallestNonzeroFloat64
	}
	return a
}

// corner builds one corner worksheet; sign = +1 for the optimistic
// corner, -1 for the pessimistic one.
func corner(p Parameters, u Uncertainty, sign float64) Parameters {
	q := p
	q.Comm.AlphaWrite = clampAlpha(p.Comm.AlphaWrite * (1 + sign*u.Alpha))
	q.Comm.AlphaRead = clampAlpha(p.Comm.AlphaRead * (1 + sign*u.Alpha))
	q.Comp.OpsPerElement = p.Comp.OpsPerElement * (1 - sign*u.OpsPerElement)
	q.Comp.ThroughputProc = p.Comp.ThroughputProc * (1 + sign*u.ThroughputProc)
	q.Comp.ClockHz = p.Comp.ClockHz * (1 + sign*u.Clock)
	q.Soft.TSoft = p.Soft.TSoft * (1 + sign*u.TSoft)
	return q
}

// PredictBounds evaluates the throughput test at the worksheet values
// and at both uncertainty corners. The returned bounds are exact: by
// monotonicity no interior parameter combination can fall outside
// [Worst, Best] on any output.
func PredictBounds(p Parameters, u Uncertainty) (Bounds, error) {
	if err := u.validate(); err != nil {
		return Bounds{}, err
	}
	nominal, err := Predict(p)
	if err != nil {
		return Bounds{}, err
	}
	worst, err := Predict(corner(p, u, -1))
	if err != nil {
		return Bounds{}, fmt.Errorf("pessimistic corner: %w", err)
	}
	best, err := Predict(corner(p, u, +1))
	if err != nil {
		return Bounds{}, fmt.Errorf("optimistic corner: %w", err)
	}
	return Bounds{Nominal: nominal, Worst: worst, Best: best}, nil
}

// SpeedupRange returns the bracketed speedup under the given
// discipline: lo from the pessimistic corner, hi from the optimistic.
func (b Bounds) SpeedupRange(buf Buffering) (lo, hi float64) {
	return b.Worst.Speedup(buf), b.Best.Speedup(buf)
}

// TRCRange returns the bracketed RC execution time: lo (fastest) from
// the optimistic corner, hi (slowest) from the pessimistic.
func (b Bounds) TRCRange(buf Buffering) (lo, hi float64) {
	return b.Best.TRC(buf), b.Worst.TRC(buf)
}

// MeetsTarget classifies a speedup goal against the bounds:
// Certain if even the pessimistic corner meets it, Impossible if even
// the optimistic corner misses it, Uncertain otherwise — the honest
// pre-design answer the methodology should give a designer whose
// inputs are rough.
func (b Bounds) MeetsTarget(target float64, buf Buffering) TargetVerdict {
	lo, hi := b.SpeedupRange(buf)
	switch {
	case lo >= target:
		return TargetCertain
	case hi < target:
		return TargetImpossible
	default:
		return TargetUncertain
	}
}

// TargetVerdict classifies a speedup goal against interval bounds.
type TargetVerdict int

const (
	// TargetImpossible: even the optimistic corner misses the goal.
	TargetImpossible TargetVerdict = iota
	// TargetUncertain: the goal falls inside the interval; the
	// estimates must be refined (or the design revised) to decide.
	TargetUncertain
	// TargetCertain: even the pessimistic corner meets the goal.
	TargetCertain
)

// String implements fmt.Stringer.
func (v TargetVerdict) String() string {
	switch v {
	case TargetCertain:
		return "certain"
	case TargetUncertain:
		return "uncertain"
	case TargetImpossible:
		return "impossible"
	default:
		return fmt.Sprintf("TargetVerdict(%d)", int(v))
	}
}
