package core_test

import (
	"errors"
	"math"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
)

// TestSolveThroughputProcMD reproduces the paper's use of the inverse
// solver on the molecular-dynamics study: with everything else at Table
// 8 values and a 100 MHz clock, a 10x speedup goal requires roughly 47
// ops/cycle, which the authors round up to the headline 50 (Section
// 5.2: "50 is the quantitative value computed by the equations to
// achieve the desired overall speedup of approximately 10x").
func TestSolveThroughputProcMD(t *testing.T) {
	p := paper.MDParams().WithClock(core.MHz(100))
	got, err := core.SolveThroughputProc(p, 10, core.SingleBuffered)
	if err != nil {
		t.Fatalf("SolveThroughputProc: %v", err)
	}
	if got < 46 || got > 48 {
		t.Errorf("required throughput_proc = %.2f ops/cycle, want ~46.7 (paper rounds to 50)", got)
	}
	// Rounding up to the paper's 50 must then beat the target.
	pr := core.MustPredict(p.WithThroughputProc(math.Ceil(got/10) * 10))
	if pr.SpeedupSingle < 10 {
		t.Errorf("speedup with rounded-up 50 ops/cycle = %.2f, want >= 10", pr.SpeedupSingle)
	}
}

// TestSolverInverseConsistency: predicting with the solved parameter
// must land exactly on the target speedup, for both disciplines and
// for every solver.
func TestSolverInverseConsistency(t *testing.T) {
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		for _, b := range []core.Buffering{core.SingleBuffered, core.DoubleBuffered} {
			p := paper.Params(c)
			target := 5.0

			tp, err := core.SolveThroughputProc(p, target, b)
			if err != nil {
				t.Fatalf("%s/%s SolveThroughputProc: %v", c, b, err)
			}
			pr := core.MustPredict(p.WithThroughputProc(tp))
			if got := pr.Speedup(b); math.Abs(got-target) > 1e-9*target {
				t.Errorf("%s/%s: speedup with solved throughput_proc = %g, want %g", c, b, got, target)
			}

			fc, err := core.SolveClock(p, target, b)
			if err != nil {
				t.Fatalf("%s/%s SolveClock: %v", c, b, err)
			}
			pr = core.MustPredict(p.WithClock(fc))
			if got := pr.Speedup(b); math.Abs(got-target) > 1e-9*target {
				t.Errorf("%s/%s: speedup with solved clock = %g, want %g", c, b, got, target)
			}
		}
	}
}

// TestSolveAlphaConsistency: applying the solved common alpha to both
// directions must hit the target exactly when it is feasible (<= 1).
func TestSolveAlphaConsistency(t *testing.T) {
	p := paper.PDF2DParams()
	// Choose a modest target dominated by communication so alpha matters:
	// make computation nearly free first.
	p.Comp.ThroughputProc = 1e6
	target := 50.0
	a, err := core.SolveAlpha(p, target, core.SingleBuffered)
	if err != nil {
		t.Fatalf("SolveAlpha: %v", err)
	}
	if a <= 0 {
		t.Fatalf("solved alpha = %g, want positive", a)
	}
	if a > 1 {
		t.Skipf("target infeasible on this interconnect (alpha=%g); nothing to verify", a)
	}
	p.Comm.AlphaWrite, p.Comm.AlphaRead = a, a
	pr := core.MustPredict(p)
	if got := pr.SpeedupSingle; math.Abs(got-target) > 1e-6*target {
		t.Errorf("speedup with solved alpha = %g, want %g", got, target)
	}
}

// TestSolveAlphaInfeasible: a target beyond what even a perfect
// interconnect delivers must solve to alpha > 1, signalling that no
// tuning of this link reaches the goal.
func TestSolveAlphaInfeasible(t *testing.T) {
	p := paper.PDF2DParams()
	p.Comp.ThroughputProc = 1e6 // computation nearly free
	pr := core.MustPredict(p)
	// Budget twice the computation time per iteration: computation
	// fits, but even a perfect interconnect cannot move 266240 bytes
	// in the remaining few microseconds.
	budget := 2 * pr.TComp
	target := p.Soft.TSoft / (float64(p.Soft.Iterations) * budget)
	a, err := core.SolveAlpha(p, target, core.SingleBuffered)
	if err != nil {
		t.Fatalf("SolveAlpha: %v", err)
	}
	if a <= 1 {
		t.Errorf("infeasible target solved to alpha %g; want > 1", a)
	}
}

// TestSolveUnreachable: when communication alone exceeds the time
// budget the target implies, the computation-side solvers must fail
// with ErrUnreachable rather than return a nonsensical value.
func TestSolveUnreachable(t *testing.T) {
	p := paper.PDF1DParams()
	pr := core.MustPredict(p)
	impossible := pr.MaxSpeedup() * 2

	for _, b := range []core.Buffering{core.SingleBuffered, core.DoubleBuffered} {
		if _, err := core.SolveThroughputProc(p, impossible, b); !errors.Is(err, core.ErrUnreachable) {
			t.Errorf("%s: SolveThroughputProc(impossible) error = %v, want ErrUnreachable", b, err)
		}
		if _, err := core.SolveClock(p, impossible, b); !errors.Is(err, core.ErrUnreachable) {
			t.Errorf("%s: SolveClock(impossible) error = %v, want ErrUnreachable", b, err)
		}
	}
	// Just inside the asymptote must still be solvable double-buffered.
	feasible := pr.MaxSpeedup() * 0.999
	if _, err := core.SolveThroughputProc(p, feasible, core.DoubleBuffered); err != nil {
		t.Errorf("target just under the comm-bound limit should solve: %v", err)
	}
}

// TestSolveAlphaUnreachableByComputation: SolveAlpha with a
// single-buffered budget already consumed by computation must report
// ErrUnreachable.
func TestSolveAlphaUnreachableByComputation(t *testing.T) {
	p := paper.MDParams() // heavily compute-bound
	if _, err := core.SolveAlpha(p, 100, core.SingleBuffered); !errors.Is(err, core.ErrUnreachable) {
		t.Errorf("error = %v, want ErrUnreachable", err)
	}
}

func TestSolveArgumentValidation(t *testing.T) {
	p := paper.PDF1DParams()
	if _, err := core.SolveThroughputProc(p, -1, core.SingleBuffered); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("negative target: error = %v, want ErrInvalidParameters", err)
	}
	if _, err := core.SolveClock(p, 0, core.SingleBuffered); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("zero target: error = %v, want ErrInvalidParameters", err)
	}
	q := p
	q.Soft.TSoft = 0
	if _, err := core.SolveThroughputProc(q, 10, core.SingleBuffered); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("no baseline: error = %v, want ErrInvalidParameters", err)
	}
	var bad core.Parameters
	if _, err := core.SolveClock(bad, 10, core.SingleBuffered); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("invalid params: error = %v, want ErrInvalidParameters", err)
	}
	if _, err := core.SolveAlpha(bad, 10, core.SingleBuffered); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("SolveAlpha invalid params: error = %v, want ErrInvalidParameters", err)
	}
	if _, err := core.RequiredTSoft(bad, 10, core.SingleBuffered); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("RequiredTSoft invalid params: error = %v, want ErrInvalidParameters", err)
	}
	if _, err := core.RequiredTSoft(p, -3, core.SingleBuffered); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("RequiredTSoft negative target: error = %v, want ErrInvalidParameters", err)
	}
	if _, err := core.CrossoverClock(bad); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("CrossoverClock invalid params: error = %v, want ErrInvalidParameters", err)
	}
}

func TestRequiredTSoft(t *testing.T) {
	p := paper.PDF1DParams()
	target := 25.0
	need, err := core.RequiredTSoft(p, target, core.SingleBuffered)
	if err != nil {
		t.Fatalf("RequiredTSoft: %v", err)
	}
	p.Soft.TSoft = need
	pr := core.MustPredict(p)
	if math.Abs(pr.SpeedupSingle-target) > 1e-9*target {
		t.Errorf("speedup with required t_soft = %g, want %g", pr.SpeedupSingle, target)
	}
}

// TestCrossoverClock: at the crossover clock, per-iteration computation
// and communication times must be equal; below it the design is
// compute-bound, above it communication-bound.
func TestCrossoverClock(t *testing.T) {
	p := paper.PDF1DParams()
	fc, err := core.CrossoverClock(p)
	if err != nil {
		t.Fatalf("CrossoverClock: %v", err)
	}
	at := core.MustPredict(p.WithClock(fc))
	if math.Abs(at.TComm-at.TComp) > 1e-9*at.TComm {
		t.Errorf("at crossover clock: t_comm=%g t_comp=%g, want equal", at.TComm, at.TComp)
	}
	if below := core.MustPredict(p.WithClock(fc * 0.5)); below.CommunicationBound() {
		t.Error("below crossover clock the design must be compute-bound")
	}
	if above := core.MustPredict(p.WithClock(fc * 2)); !above.CommunicationBound() {
		t.Error("above crossover clock the design must be communication-bound")
	}
	// The paper's studied clocks all sit far below crossover (the
	// designs are compute-bound with <= 4% comm utilization).
	if fc < core.MHz(150) {
		t.Errorf("crossover clock %.0f MHz unexpectedly below the studied range", fc/1e6)
	}
}
