package core_test

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
)

func TestPredictMultiDegeneratesToSingle(t *testing.T) {
	for _, topo := range []core.Topology{core.SharedChannel, core.IndependentChannels} {
		for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
			p := paper.Params(c)
			mp, err := core.PredictMulti(p, core.MultiConfig{Devices: 1, Topology: topo})
			if err != nil {
				t.Fatal(err)
			}
			pr := core.MustPredict(p)
			if math.Abs(mp.TRCSingle-pr.TRCSingle) > 1e-15*pr.TRCSingle ||
				math.Abs(mp.TRCDouble-pr.TRCDouble) > 1e-15*pr.TRCDouble ||
				math.Abs(mp.SpeedupSingle-pr.SpeedupSingle) > 1e-12 {
				t.Errorf("%s/%v: N=1 differs from the single-device model", c, topo)
			}
		}
	}
}

// TestSharedChannelSaturates: with a shared channel, speedup grows
// with N while compute-bound and saturates at the communication bound;
// independent channels keep scaling.
func TestSharedChannelSaturates(t *testing.T) {
	p := paper.PDF2DParams() // t_comp/t_comm ~ 34 at 150 MHz
	knee, err := core.ScalingKnee(p)
	if err != nil {
		t.Fatal(err)
	}
	if knee < 30 || knee > 40 {
		t.Errorf("scaling knee = %.1f devices, want ~34", knee)
	}
	counts := []int{1, 2, 4, 8, 16, 32, 64, 128}
	shared, err := core.SweepDevices(p, core.SharedChannel, counts)
	if err != nil {
		t.Fatal(err)
	}
	indep, err := core.SweepDevices(p, core.IndependentChannels, counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(counts); i++ {
		if shared[i].SpeedupDouble < shared[i-1].SpeedupDouble-1e-9 {
			t.Error("shared-channel speedup must be non-decreasing in N")
		}
		if indep[i].SpeedupDouble <= shared[i].SpeedupDouble-1e-9 {
			t.Error("independent channels can never lose to a shared one")
		}
	}
	// Past the knee, shared-channel speedup is pinned at the
	// communication bound.
	last := shared[len(shared)-1]
	bound := core.MustPredict(p).MaxSpeedup()
	if math.Abs(last.SpeedupDouble-bound) > 1e-9*bound {
		t.Errorf("saturated speedup %.2f, comm bound %.2f", last.SpeedupDouble, bound)
	}
	// Independent channels at 128 devices scale right past the
	// shared channel's asymptote (perfect scaling: ~7.1 x 128).
	if got := indep[len(indep)-1].SpeedupDouble; got < 3*bound {
		t.Errorf("independent channels should scale past the shared bound (got %.1f vs bound %.1f)", got, bound)
	}
	// Efficiency decays for shared, stays 1.0 for independent.
	if shared[len(shared)-1].ScalingEfficiency > 0.5 {
		t.Errorf("saturated efficiency = %.2f, want small", last.ScalingEfficiency)
	}
	for _, mp := range indep {
		if math.Abs(mp.ScalingEfficiency-1) > 1e-9 {
			t.Errorf("independent channels: efficiency %.3f at N=%d, want 1", mp.ScalingEfficiency, mp.Config.Devices)
		}
	}
}

// TestMultiPropertyBounds: for any valid parameters and any N, the
// multi-FPGA prediction is bounded by the single-device prediction
// below and perfect scaling above.
func TestMultiPropertyBounds(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(genParams(r))
			vals[1] = reflect.ValueOf(1 + r.Intn(64))
		},
	}
	f := func(p core.Parameters, n int) bool {
		for _, topo := range []core.Topology{core.SharedChannel, core.IndependentChannels} {
			mp, err := core.PredictMulti(p, core.MultiConfig{Devices: n, Topology: topo})
			if err != nil {
				return false
			}
			single := mp.Single
			if mp.SpeedupDouble < single.SpeedupDouble*(1-1e-12) {
				return false // more devices can never slow you down
			}
			if mp.SpeedupDouble > single.SpeedupDouble*float64(n)*(1+1e-12) {
				return false // cannot beat perfect scaling
			}
			if mp.TRCDouble > mp.TRCSingle*(1+1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPredictMultiErrors(t *testing.T) {
	p := paper.PDF1DParams()
	if _, err := core.PredictMulti(p, core.MultiConfig{Devices: 0}); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("zero devices: %v", err)
	}
	if _, err := core.PredictMulti(p, core.MultiConfig{Devices: 2, Topology: core.Topology(9)}); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("bad topology: %v", err)
	}
	if _, err := core.PredictMulti(core.Parameters{}, core.MultiConfig{Devices: 2}); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("bad params: %v", err)
	}
	if _, err := core.ScalingKnee(core.Parameters{}); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("knee on bad params: %v", err)
	}
	if _, err := core.SweepDevices(p, core.SharedChannel, []int{1, 0}); err == nil {
		t.Error("sweep with invalid count must fail")
	}
}

func TestTopologyString(t *testing.T) {
	if core.SharedChannel.String() != "shared-channel" ||
		core.IndependentChannels.String() != "independent-channels" ||
		core.Topology(9).String() != "Topology(9)" {
		t.Error("Topology strings wrong")
	}
}

// TestMultiNoBaseline: without t_soft the speedups are zero but times
// still predict.
func TestMultiNoBaseline(t *testing.T) {
	p := paper.PDF1DParams()
	p.Soft.TSoft = 0
	mp, err := core.PredictMulti(p, core.MultiConfig{Devices: 4, Topology: core.SharedChannel})
	if err != nil {
		t.Fatal(err)
	}
	if mp.SpeedupSingle != 0 || mp.SpeedupDouble != 0 || mp.ScalingEfficiency != 0 {
		t.Error("speedups without baseline must be zero")
	}
	if mp.TRCSingle <= 0 {
		t.Error("times must still predict")
	}
}
