package core

import (
	"errors"
	"fmt"
	"math"
)

// Unit conversion helpers. The paper quotes interconnect bandwidth in
// decimal megabytes per second and clock rates in megahertz; internally
// everything is SI base units.

// MBps converts decimal megabytes per second to bytes per second.
func MBps(v float64) float64 { return v * 1e6 }

// GBps converts decimal gigabytes per second to bytes per second.
func GBps(v float64) float64 { return v * 1e9 }

// MHz converts megahertz to hertz.
func MHz(v float64) float64 { return v * 1e6 }

// DatasetParams describe the problem dataset for a single buffered
// block of communication and computation (the "Dataset Parameters"
// category of Table 1).
//
// An element is the basic building block that governs both
// communication and computation: a value in an array to be sorted, an
// atom in a molecular-dynamics simulation, a character in a
// string-matching kernel. ElementsIn is the number of elements sent to
// the FPGA per iteration; ElementsOut is the number returned per
// iteration. BytesPerElement is the numerical precision of one element
// on the interconnect (which may be wider than the precision used
// inside the FPGA; the 1-D PDF study computes in 18-bit fixed point but
// communicates 32-bit words).
type DatasetParams struct {
	ElementsIn      int64
	ElementsOut     int64
	BytesPerElement float64
}

// CommParams describe the CPU<->FPGA interconnect ("Communication
// Parameters" of Table 1).
//
// IdealThroughput is the documented maximum bandwidth of the
// interconnect in bytes per second (e.g. 1e9 for 133 MHz 64-bit PCI-X).
// AlphaWrite and AlphaRead are the fractions of that ideal throughput
// sustained during useful communication in each direction, in (0, 1];
// the paper establishes them with microbenchmarks of simple data
// transfers (see package platform for the simulated equivalent).
// "Write" is host-to-FPGA (input data), "read" is FPGA-to-host
// (results), matching the host's point of view used in the paper's
// tables.
type CommParams struct {
	IdealThroughput float64
	AlphaWrite      float64
	AlphaRead       float64
}

// CompParams describe the FPGA computation ("Computation Parameters" of
// Table 1).
//
// OpsPerElement is the number of operations required to complete all
// computation involving one element; it is measured from the algorithm
// structure. ThroughputProc is the number of those operations the
// design completes per clock cycle; for a fully pipelined design it
// equals the number of parallel operation units, while less optimized
// designs sustain only a fraction. ClockHz is the FPGA clock frequency.
//
// The scope of an "operation" is a modelling choice: a 16-cycle Booth
// multiplier may be counted as one operation at 1/16 op/cycle or as 16
// operations at 1 op/cycle. Either is correct provided OpsPerElement
// and ThroughputProc share the same assumption (Section 3.1).
type CompParams struct {
	OpsPerElement  float64
	ThroughputProc float64
	ClockHz        float64
}

// SoftwareParams anchor the speedup computation ("Software Parameters"
// of Table 1). TSoft is the measured execution time in seconds of the
// sequential software baseline for the whole problem. Iterations is the
// number of communication+computation blocks needed to cover the whole
// problem (N_iter), deduced from the fraction of the problem resident
// on the FPGA at one time.
type SoftwareParams struct {
	TSoft      float64
	Iterations int64
}

// Parameters is the complete RAT input-parameter worksheet (Table 1).
type Parameters struct {
	Name    string // optional human-readable design name
	Dataset DatasetParams
	Comm    CommParams
	Comp    CompParams
	Soft    SoftwareParams
}

// ErrInvalidParameters tags every validation failure reported by
// Parameters.Validate, so callers can match with errors.Is.
var ErrInvalidParameters = errors.New("rat/core: invalid parameters")

// paramError builds a field-specific validation error wrapping
// ErrInvalidParameters.
func paramError(field, msg string, v any) error {
	return fmt.Errorf("%w: %s %s (got %v)", ErrInvalidParameters, field, msg, v)
}

// Validate checks that the parameter set is physically meaningful:
// positive sizes, throughputs and clock, alphas in (0, 1], a positive
// iteration count, and a non-negative software baseline. It returns nil
// if the parameters can be fed to Predict, or an error wrapping
// ErrInvalidParameters naming the first offending field.
func (p Parameters) Validate() error {
	d, c, k, s := p.Dataset, p.Comm, p.Comp, p.Soft
	switch {
	case d.ElementsIn <= 0:
		return paramError("Dataset.ElementsIn", "must be positive", d.ElementsIn)
	case d.ElementsOut < 0:
		return paramError("Dataset.ElementsOut", "must be non-negative", d.ElementsOut)
	case !(d.BytesPerElement > 0) || math.IsInf(d.BytesPerElement, 0):
		return paramError("Dataset.BytesPerElement", "must be positive and finite", d.BytesPerElement)
	case !(c.IdealThroughput > 0) || math.IsInf(c.IdealThroughput, 0):
		return paramError("Comm.IdealThroughput", "must be positive and finite", c.IdealThroughput)
	case !(c.AlphaWrite > 0) || c.AlphaWrite > 1:
		return paramError("Comm.AlphaWrite", "must be in (0, 1]", c.AlphaWrite)
	case !(c.AlphaRead > 0) || c.AlphaRead > 1:
		return paramError("Comm.AlphaRead", "must be in (0, 1]", c.AlphaRead)
	case !(k.OpsPerElement > 0) || math.IsInf(k.OpsPerElement, 0):
		return paramError("Comp.OpsPerElement", "must be positive and finite", k.OpsPerElement)
	case !(k.ThroughputProc > 0) || math.IsInf(k.ThroughputProc, 0):
		return paramError("Comp.ThroughputProc", "must be positive and finite", k.ThroughputProc)
	case !(k.ClockHz > 0) || math.IsInf(k.ClockHz, 0):
		return paramError("Comp.ClockHz", "must be positive and finite", k.ClockHz)
	case s.TSoft < 0 || math.IsNaN(s.TSoft) || math.IsInf(s.TSoft, 0):
		return paramError("Soft.TSoft", "must be non-negative and finite", s.TSoft)
	case s.Iterations <= 0:
		return paramError("Soft.Iterations", "must be positive", s.Iterations)
	}
	return nil
}

// BytesIn returns the number of bytes written to the FPGA per
// iteration (one buffered input block).
func (p Parameters) BytesIn() float64 {
	return float64(p.Dataset.ElementsIn) * p.Dataset.BytesPerElement
}

// BytesOut returns the number of bytes read back from the FPGA per
// iteration (one buffered output block).
func (p Parameters) BytesOut() float64 {
	return float64(p.Dataset.ElementsOut) * p.Dataset.BytesPerElement
}

// TotalOps returns the total number of operations the design performs
// across all iterations: N_iter * N_elements * N_ops/element.
func (p Parameters) TotalOps() float64 {
	return float64(p.Soft.Iterations) * float64(p.Dataset.ElementsIn) * p.Comp.OpsPerElement
}

// WithClock returns a copy of the parameters with the FPGA clock set to
// hz. Sweeping clock frequency is the paper's standard way to bracket
// the achievable design space when the routed frequency is unknown.
func (p Parameters) WithClock(hz float64) Parameters {
	p.Comp.ClockHz = hz
	return p
}

// WithThroughputProc returns a copy of the parameters with the
// sustained operations-per-cycle set to ops.
func (p Parameters) WithThroughputProc(ops float64) Parameters {
	p.Comp.ThroughputProc = ops
	return p
}
