package core_test

import (
	"errors"
	"math"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
)

// TestSweepRejectsBadValues: every sweep helper refuses NaN, infinite
// and duplicate sweep values with a wrapped ErrInvalidParameters, the
// fix for sweeps silently double-counting a design point.
func TestSweepRejectsBadValues(t *testing.T) {
	p := paper.PDF1DParams()
	ident := func(q core.Parameters, v float64) core.Parameters { return q.WithClock(core.MHz(v)) }

	cases := []struct {
		name   string
		values []float64
		ok     bool
	}{
		{"distinct", []float64{75, 100, 150}, true},
		{"single", []float64{100}, true},
		{"empty", nil, true},
		{"duplicate", []float64{75, 100, 75}, false},
		{"adjacent duplicate", []float64{100, 100}, false},
		{"nan", []float64{75, math.NaN()}, false},
		{"positive inf", []float64{math.Inf(1)}, false},
		{"negative inf", []float64{math.Inf(-1), 100}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runs := map[string]func() error{
				"Sweep": func() error { _, err := core.Sweep(p, tc.values, ident); return err },
				"SweepPoints": func() error {
					_, err := core.SweepPoints(p, tc.values, ident)
					return err
				},
				"SweepClock": func() error {
					mhz := make([]float64, len(tc.values))
					for i, v := range tc.values {
						mhz[i] = core.MHz(v)
					}
					_, err := core.SweepClock(p, mhz)
					return err
				},
				"SweepThroughputProc": func() error {
					_, err := core.SweepThroughputProc(p, tc.values)
					return err
				},
			}
			for name, run := range runs {
				err := run()
				if tc.ok && err != nil {
					t.Errorf("%s(%v) = %v, want nil", name, tc.values, err)
				}
				if !tc.ok && !errors.Is(err, core.ErrInvalidParameters) {
					t.Errorf("%s(%v) = %v, want wrapped ErrInvalidParameters", name, tc.values, err)
				}
			}
		})
	}
}

// TestSweepMatchesScalarPredict: the validated-base fast path produces
// bit-for-bit the scalar predictions.
func TestSweepMatchesScalarPredict(t *testing.T) {
	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		p := paper.Params(c)
		prs, err := core.SweepClock(p, paper.ClocksHz)
		if err != nil {
			t.Fatal(err)
		}
		for i, hz := range paper.ClocksHz {
			want := core.MustPredict(p.WithClock(hz))
			if prs[i] != want {
				t.Errorf("%s: SweepClock[%d] != Predict at %g MHz", p.Name, i, hz/1e6)
			}
		}
		ops := []float64{1, 4, 16, 64}
		tps, err := core.SweepThroughputProc(p, ops)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range ops {
			if want := core.MustPredict(p.WithThroughputProc(v)); tps[i] != want {
				t.Errorf("%s: SweepThroughputProc[%d] != Predict at %g ops/cycle", p.Name, i, v)
			}
		}
	}
}

// TestSweepStillValidatesMutations: the fast path must not skip
// validation of what a mutation actually changed.
func TestSweepStillValidatesMutations(t *testing.T) {
	p := paper.PDF1DParams()
	_, err := core.Sweep(p, []float64{1, 2}, func(q core.Parameters, v float64) core.Parameters {
		q.Comm.AlphaWrite = v // 2 is out of (0, 1]
		return q
	})
	if !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("Sweep accepted an invalid mutation: %v", err)
	}
	if _, err := core.SweepClock(p, []float64{core.MHz(100), -5}); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("SweepClock accepted a negative clock: %v", err)
	}
	if _, err := core.SweepThroughputProc(p, []float64{4, 0}); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("SweepThroughputProc accepted a zero rate: %v", err)
	}
}

// TestSweepBaseValidatedOnce: an invalid base field that the sweep
// does not touch is reported once, up front.
func TestSweepBaseValidatedOnce(t *testing.T) {
	bad := paper.PDF1DParams()
	bad.Dataset.ElementsIn = 0
	if _, err := core.SweepClock(bad, []float64{core.MHz(100)}); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("SweepClock ran with an invalid base: %v", err)
	}
	if _, err := core.SweepThroughputProc(bad, []float64{8}); !errors.Is(err, core.ErrInvalidParameters) {
		t.Errorf("SweepThroughputProc ran with an invalid base: %v", err)
	}
}
