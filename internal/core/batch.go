package core

import "fmt"

// Batch evaluation of the throughput test. A design-space search calls
// the forward prediction millions of times; the batch path amortizes
// validation ahead of the arithmetic and writes every result into
// caller-provided storage, so the steady state performs zero heap
// allocations per evaluation. The per-candidate numbers are produced by
// the same computation kernel as Predict and are bit-for-bit identical
// to the scalar results.

// PredictInto evaluates Eqs. (1)-(11) into *out without allocating.
// It is Predict for callers that own the result storage (preallocated
// slices, arena-style buffers). On a validation error *out is zeroed.
//
//rat:hotpath
func PredictInto(p Parameters, out *Prediction) error {
	if err := p.Validate(); err != nil {
		*out = Prediction{}
		return err
	}
	predictInto(p, out)
	return nil
}

// PredictBatch evaluates the throughput test for every parameter set in
// ps, writing prediction i into out[i]. The output slice must be at
// least as long as the input; extra entries are left untouched. All
// parameter sets are validated up front — on the first failure the
// error names the offending index and nothing is written — and then the
// whole batch is computed with zero allocations. out[i] is bit-for-bit
// identical to the result of Predict(ps[i]).
//
//rat:hotpath
func PredictBatch(ps []Parameters, out []Prediction) error {
	if len(out) < len(ps) {
		return fmt.Errorf("%w: output slice holds %d predictions for %d parameter sets",
			ErrInvalidParameters, len(out), len(ps))
	}
	for i := range ps {
		if err := ps[i].Validate(); err != nil {
			return fmt.Errorf("batch index %d: %w", i, err)
		}
	}
	for i := range ps {
		predictInto(ps[i], &out[i])
	}
	return nil
}
