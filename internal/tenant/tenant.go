// Package tenant is ratd's identity and quota layer: API-key tenant
// identity loaded from a JSON config file, per-tenant token-bucket
// rate limiters with burst, and per-tenant concurrency caps. A
// Registry holds an immutable snapshot of the configured tenants and
// supports live reload (ratd wires it to SIGHUP): limiter state
// survives a reload for tenants whose quota did not change, so a
// reload never hands every tenant a free burst.
//
// The package knows nothing about HTTP; internal/server turns Lookup
// misses into 401 and bucket refusals into 429 + Retry-After. See
// docs/TENANCY.md for the config format and quota semantics.
package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// ErrConfig wraps every configuration-shaped failure (syntax,
// duplicate keys, invalid quotas) so callers can classify with
// errors.Is.
var ErrConfig = errors.New("invalid tenant config")

// Unknown is the reserved tenant name under which requests bearing a
// missing or unrecognized API key are accounted. It is forbidden in
// config files so the label set on tenant metrics stays bounded by
// configuration, never by request input.
const Unknown = "unknown"

// Config is the tenant config file: a JSON object with one "tenants"
// array. See docs/TENANCY.md.
type Config struct {
	Tenants []Spec `json:"tenants"`
}

// Spec is one configured tenant.
type Spec struct {
	// Name identifies the tenant in metrics, logs and status output.
	// It must match [a-zA-Z0-9_-]{1,64} — names become Prometheus
	// label values, so the grammar is deliberately narrow — and must
	// not be the reserved name "unknown".
	Name string `json:"name"`
	// Key is the API key presented as "Authorization: Bearer <key>" or
	// "X-Rat-Key: <key>". Keys are opaque bytes to the service; they
	// must be unique across tenants and non-empty.
	Key string `json:"key"`
	// RatePerSec is the sustained request budget in tokens per second
	// (a predict costs 1 token; see docs/TENANCY.md for endpoint
	// costs). Must be positive.
	RatePerSec float64 `json:"rate_per_sec"`
	// Burst is the bucket capacity in tokens — how far above the
	// sustained rate a tenant may momentarily spike. 0 defaults to
	// max(1, RatePerSec).
	Burst float64 `json:"burst,omitempty"`
	// MaxInflight caps the tenant's concurrently admitted requests
	// across all endpoints — its concurrency weight in the shared
	// admission pool. 0 means uncapped (only endpoint limits apply).
	MaxInflight int64 `json:"max_inflight,omitempty"`
}

// validate normalizes and checks one spec.
func (s *Spec) validate(i int) error {
	if err := ValidateName(s.Name); err != nil {
		return fmt.Errorf("%w: tenants[%d]: %v", ErrConfig, i, err)
	}
	if s.Key == "" {
		return fmt.Errorf("%w: tenants[%d] (%s): key must be non-empty", ErrConfig, i, s.Name)
	}
	if s.RatePerSec <= 0 {
		return fmt.Errorf("%w: tenants[%d] (%s): rate_per_sec must be positive (got %v)",
			ErrConfig, i, s.Name, s.RatePerSec)
	}
	if s.Burst < 0 {
		return fmt.Errorf("%w: tenants[%d] (%s): burst must be non-negative (got %v)",
			ErrConfig, i, s.Name, s.Burst)
	}
	if s.Burst == 0 {
		s.Burst = s.RatePerSec
		if s.Burst < 1 {
			s.Burst = 1
		}
	}
	if s.MaxInflight < 0 {
		return fmt.Errorf("%w: tenants[%d] (%s): max_inflight must be non-negative (got %d)",
			ErrConfig, i, s.Name, s.MaxInflight)
	}
	return nil
}

// ValidateName enforces the tenant-name grammar: [a-zA-Z0-9_-]{1,64},
// not the reserved "unknown". Exported so the lint suite's bounded-
// label contract can point at one authority.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("name must be non-empty")
	}
	if len(name) > 64 {
		return fmt.Errorf("name %q exceeds 64 characters", name)
	}
	if name == Unknown {
		return fmt.Errorf("name %q is reserved for unauthenticated traffic", Unknown)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return fmt.Errorf("name %q: invalid character %q (want [a-zA-Z0-9_-])", name, c)
		}
	}
	return nil
}

// Member is one live tenant: its spec plus the mutable quota state
// shared by every request the tenant has in flight.
type Member struct {
	Spec
	bucket *Bucket

	inflight atomic.Int64
	peak     atomic.Int64
}

// Bucket returns the tenant's token bucket.
func (m *Member) Bucket() *Bucket { return m.bucket }

// AcquireSlot claims one concurrency slot, honoring MaxInflight.
// Callers must ReleaseSlot exactly once per successful acquire.
func (m *Member) AcquireSlot() bool {
	n := m.inflight.Add(1)
	if m.MaxInflight > 0 && n > m.MaxInflight {
		m.inflight.Add(-1)
		return false
	}
	for {
		peak := m.peak.Load()
		if n <= peak || m.peak.CompareAndSwap(peak, n) {
			return true
		}
	}
}

// ReleaseSlot returns a slot claimed by AcquireSlot.
func (m *Member) ReleaseSlot() {
	if m.inflight.Add(-1) < 0 {
		//rat:allow-panic a double release corrupts the tenant's concurrency accounting for every later request
		panic("tenant: ReleaseSlot without AcquireSlot")
	}
}

// Inflight reports the tenant's currently admitted requests.
func (m *Member) Inflight() int64 { return m.inflight.Load() }

// PeakInflight reports the high-water mark since the member was
// created (reloads with an unchanged quota preserve it).
func (m *Member) PeakInflight() int64 { return m.peak.Load() }

// snapshot is one immutable generation of the tenant set.
type snapshot struct {
	byKey  map[string]*Member
	byName map[string]*Member
	names  []string // sorted by config order; bounded label set
}

// Registry resolves API keys to tenants. Lookups are lock-free reads
// of an atomic snapshot; Reload swaps the snapshot wholesale.
type Registry struct {
	mu   sync.Mutex // serializes reloads
	snap atomic.Pointer[snapshot]
}

// Parse reads and validates a config, returning a Registry primed
// with fresh buckets.
func Parse(r io.Reader) (*Registry, error) {
	reg := &Registry{}
	snap, err := buildSnapshot(r, nil)
	if err != nil {
		return nil, err
	}
	reg.snap.Store(snap)
	return reg, nil
}

// Load reads a config file.
func Load(path string) (*Registry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tenant config: %w", err)
	}
	defer f.Close()
	reg, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("tenant config %s: %w", path, err)
	}
	return reg, nil
}

// Reload replaces the tenant set from r. Tenants whose name, rate and
// burst are unchanged keep their bucket fill (fully unchanged specs
// keep their inflight state too) — a reload is a config swap, not an
// amnesty. On error the old set stays live.
func (reg *Registry) Reload(r io.Reader) error {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	snap, err := buildSnapshot(r, reg.snap.Load())
	if err != nil {
		return err
	}
	reg.snap.Store(snap)
	return nil
}

// ReloadFile is Reload from a file path (the SIGHUP handler).
func (reg *Registry) ReloadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("tenant config: %w", err)
	}
	defer f.Close()
	if err := reg.Reload(f); err != nil {
		return fmt.Errorf("tenant config %s: %w", path, err)
	}
	return nil
}

// buildSnapshot parses, validates and links a config against the
// previous generation (nil for a first load).
func buildSnapshot(r io.Reader, prev *snapshot) (*snapshot, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("%w: no tenants configured", ErrConfig)
	}
	snap := &snapshot{
		byKey:  make(map[string]*Member, len(cfg.Tenants)),
		byName: make(map[string]*Member, len(cfg.Tenants)),
		names:  make([]string, 0, len(cfg.Tenants)),
	}
	for i := range cfg.Tenants {
		spec := cfg.Tenants[i]
		if err := spec.validate(i); err != nil {
			return nil, err
		}
		if _, dup := snap.byName[spec.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate tenant name %q", ErrConfig, spec.Name)
		}
		if _, dup := snap.byKey[spec.Key]; dup {
			return nil, fmt.Errorf("%w: duplicate key (tenant %q)", ErrConfig, spec.Name)
		}
		m := &Member{Spec: spec}
		if prev != nil {
			if old, ok := prev.byName[spec.Name]; ok &&
				old.RatePerSec == spec.RatePerSec && old.Burst == spec.Burst {
				if old.Spec == spec {
					// Fully unchanged: the member carries over wholesale, so
					// bucket fill, inflight count and peak all survive.
					m = old
				} else {
					// Quota unchanged but key or cap edited: fresh member
					// (concurrent readers hold the old spec immutably), same
					// bucket — a reload is a config swap, not an amnesty.
					m.bucket = old.bucket
				}
			}
		}
		if m.bucket == nil {
			m.bucket = NewBucket(spec.RatePerSec, spec.Burst)
		}
		snap.byKey[spec.Key] = m
		snap.byName[spec.Name] = m
		snap.names = append(snap.names, spec.Name)
	}
	return snap, nil
}

// Lookup resolves an API key. ok is false for unknown (or empty)
// keys.
func (reg *Registry) Lookup(key string) (*Member, bool) {
	if key == "" {
		return nil, false
	}
	m, ok := reg.snap.Load().byKey[key]
	return m, ok
}

// ByName resolves a tenant name (status and test surfaces).
func (reg *Registry) ByName(name string) (*Member, bool) {
	m, ok := reg.snap.Load().byName[name]
	return m, ok
}

// Names returns the configured tenant names in config order. The
// slice is shared and must not be mutated. Together with the reserved
// Unknown name this is the complete, bounded set of values the
// server's tenant metric label may take.
func (reg *Registry) Names() []string { return reg.snap.Load().names }

// Len reports the number of configured tenants.
func (reg *Registry) Len() int { return len(reg.snap.Load().names) }
