package tenant

import (
	"math"
	"sync"
	"time"
)

// Bucket is a token-bucket rate limiter: capacity Burst tokens,
// refilled continuously at Rate tokens per second. Take is the only
// operation; it either debits the cost or reports how long the caller
// must wait for the bucket to refill enough — the number the server
// turns into an accurate Retry-After.
//
// Time is always supplied by the caller, never read from the wall
// clock, so bucket behavior is deterministic under test and a single
// clock source (the admission middleware) serializes the arrow of
// time per request.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; > 0
	burst  float64 // bucket capacity; >= 1
	tokens float64 // current fill, in [0, burst]
	last   time.Time
}

// NewBucket builds a bucket that starts full. rate must be positive
// and burst at least 1; violations are defended by clamping because a
// mis-set limiter must still limit, not divide by zero.
func NewBucket(rate, burst float64) *Bucket {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		rate = 1
	}
	if burst < 1 || math.IsNaN(burst) || math.IsInf(burst, 0) {
		burst = 1
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst}
}

// Take attempts to debit cost tokens at time now. On success it
// returns ok == true. On refusal it returns the duration after which
// a retry of the same cost would succeed, assuming no competing
// debits — the refill time of the deficit. A cost above the burst can
// never succeed; it reports the full-bucket refill time and callers
// are expected to clamp costs to the burst.
func (b *Bucket) Take(now time.Time, cost float64) (ok bool, retryAfter time.Duration) {
	if cost <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if cost > b.burst {
		// Unsatisfiable: report the time to refill the whole bucket so
		// the hint stays finite and honest about being a long wait.
		return false, b.refillTime(b.burst - b.tokens)
	}
	if b.tokens >= cost {
		b.tokens -= cost
		return true, 0
	}
	return false, b.refillTime(cost - b.tokens)
}

// refillLocked advances the bucket to now. Time never runs backwards:
// a now before the last observation leaves the fill untouched, so
// out-of-order callers cannot mint tokens.
func (b *Bucket) refillLocked(now time.Time) {
	if b.last.IsZero() {
		b.last = now
		return
	}
	dt := now.Sub(b.last)
	if dt <= 0 {
		return
	}
	b.last = now
	b.tokens += b.rate * dt.Seconds()
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// refillTime converts a token deficit into a wait.
func (b *Bucket) refillTime(deficit float64) time.Duration {
	d := time.Duration(deficit / b.rate * float64(time.Second))
	if d < time.Nanosecond {
		d = time.Nanosecond // a refusal always implies a non-zero wait
	}
	return d
}

// Tokens reports the fill after advancing to now (observability).
func (b *Bucket) Tokens(now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	return b.tokens
}
