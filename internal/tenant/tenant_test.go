package tenant

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// TestBucketBurstAndRefill pins the token-bucket arithmetic: a full
// bucket grants exactly its burst at one instant, refuses the next
// request with a refill-derived wait, and grants again once that wait
// has elapsed.
func TestBucketBurstAndRefill(t *testing.T) {
	b := NewBucket(10, 5) // 10 tokens/s, burst 5

	for i := 0; i < 5; i++ {
		if ok, _ := b.Take(t0, 1); !ok {
			t.Fatalf("take %d of burst refused", i)
		}
	}
	ok, retry := b.Take(t0, 1)
	if ok {
		t.Fatal("6th take at one instant succeeded; burst is not enforced")
	}
	// Deficit is exactly 1 token at 10 tokens/s: 100ms.
	if want := 100 * time.Millisecond; retry != want {
		t.Errorf("retryAfter = %v, want %v", retry, want)
	}
	// One nanosecond early the bucket must still refuse...
	if ok, _ := b.Take(t0.Add(retry-time.Nanosecond), 1); ok {
		t.Error("take succeeded before the advertised retryAfter")
	}
	// ...and at the advertised instant it must grant.
	if ok, _ := b.Take(t0.Add(retry), 1); !ok {
		t.Error("take refused at the advertised retryAfter")
	}
}

// TestBucketRetryAfterScalesWithCost pins that the hint covers the
// whole deficit, not one token.
func TestBucketRetryAfterScalesWithCost(t *testing.T) {
	b := NewBucket(2, 8)
	if ok, _ := b.Take(t0, 8); !ok {
		t.Fatal("draining the burst refused")
	}
	_, retry := b.Take(t0, 6)
	if want := 3 * time.Second; retry != want { // 6 tokens at 2/s
		t.Errorf("retryAfter = %v, want %v", retry, want)
	}
}

// TestBucketOverBurstCost pins the unsatisfiable-cost contract: a cost
// above the burst is refused with the full-bucket refill time.
func TestBucketOverBurstCost(t *testing.T) {
	b := NewBucket(1, 4)
	if ok, _ := b.Take(t0, 2); !ok {
		t.Fatal("in-burst take refused")
	}
	ok, retry := b.Take(t0, 100)
	if ok {
		t.Fatal("cost above burst granted")
	}
	if want := 2 * time.Second; retry != want { // refill 4-2=2 tokens at 1/s
		t.Errorf("retryAfter = %v, want %v", retry, want)
	}
}

// TestBucketTimeNeverRunsBackwards pins that an out-of-order timestamp
// cannot mint tokens.
func TestBucketTimeNeverRunsBackwards(t *testing.T) {
	b := NewBucket(1000, 2)
	if ok, _ := b.Take(t0, 2); !ok {
		t.Fatal("burst refused")
	}
	if ok, _ := b.Take(t0.Add(-time.Hour), 1); ok {
		t.Error("a timestamp in the past minted tokens")
	}
}

// TestBucketConcurrentTakes is the -race isolation test: hammered from
// many goroutines at a single instant, the bucket grants exactly its
// burst; after one simulated second it grants exactly rate more. Any
// lost update (or data race, under -race) breaks the exact counts.
func TestBucketConcurrentTakes(t *testing.T) {
	const (
		rate  = 100.0
		burst = 10.0
		procs = 8
		tries = 500
	)
	b := NewBucket(rate, burst)
	granted := func(now time.Time) int64 {
		var wg sync.WaitGroup
		var n int64
		var mu sync.Mutex
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := int64(0)
				for i := 0; i < tries; i++ {
					if ok, _ := b.Take(now, 1); ok {
						local++
					}
				}
				mu.Lock()
				n += local
				mu.Unlock()
			}()
		}
		wg.Wait()
		return n
	}
	if got := granted(t0); got != int64(burst) {
		t.Errorf("grants at t0 = %d, want exactly %v (the burst)", got, burst)
	}
	if got := granted(t0.Add(50 * time.Millisecond)); got != 5 {
		t.Errorf("grants after 50ms = %d, want exactly 5 (50ms of refill)", got)
	}
	if got := granted(t0.Add(time.Second)); got != int64(burst) {
		t.Errorf("grants after 1s = %d, want exactly %v (refill caps at the burst)", got, burst)
	}
}

const twoTenants = `{
  "tenants": [
    {"name": "alice", "key": "ak_alice", "rate_per_sec": 100, "burst": 200, "max_inflight": 2},
    {"name": "bob", "key": "ak_bob", "rate_per_sec": 5}
  ]
}`

// TestParseAndLookup covers the happy path: keys resolve, defaults
// fill, names are listed in config order.
func TestParseAndLookup(t *testing.T) {
	reg, err := Parse(strings.NewReader(twoTenants))
	if err != nil {
		t.Fatal(err)
	}
	alice, ok := reg.Lookup("ak_alice")
	if !ok || alice.Name != "alice" || alice.MaxInflight != 2 {
		t.Fatalf("alice lookup: %+v, %v", alice, ok)
	}
	bob, ok := reg.Lookup("ak_bob")
	if !ok || bob.Burst != 5 { // burst defaults to rate
		t.Fatalf("bob lookup: %+v, %v (want burst 5)", bob, ok)
	}
	if _, ok := reg.Lookup("nope"); ok {
		t.Error("unknown key resolved")
	}
	if _, ok := reg.Lookup(""); ok {
		t.Error("empty key resolved")
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Errorf("Names() = %v", got)
	}
}

// TestParseRejects pins every config-validation failure to ErrConfig.
func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"syntax":         `{"tenants": [`,
		"unknown field":  `{"tenants": [], "extra": 1}`,
		"empty":          `{"tenants": []}`,
		"no name":        `{"tenants": [{"key": "k", "rate_per_sec": 1}]}`,
		"bad name char":  `{"tenants": [{"name": "a b", "key": "k", "rate_per_sec": 1}]}`,
		"reserved name":  `{"tenants": [{"name": "unknown", "key": "k", "rate_per_sec": 1}]}`,
		"no key":         `{"tenants": [{"name": "a", "rate_per_sec": 1}]}`,
		"zero rate":      `{"tenants": [{"name": "a", "key": "k"}]}`,
		"negative rate":  `{"tenants": [{"name": "a", "key": "k", "rate_per_sec": -1}]}`,
		"negative burst": `{"tenants": [{"name": "a", "key": "k", "rate_per_sec": 1, "burst": -1}]}`,
		"negative cap":   `{"tenants": [{"name": "a", "key": "k", "rate_per_sec": 1, "max_inflight": -1}]}`,
		"dup name":       `{"tenants": [{"name": "a", "key": "k1", "rate_per_sec": 1}, {"name": "a", "key": "k2", "rate_per_sec": 1}]}`,
		"dup key":        `{"tenants": [{"name": "a", "key": "k", "rate_per_sec": 1}, {"name": "b", "key": "k", "rate_per_sec": 1}]}`,
	}
	for name, cfg := range cases {
		if _, err := Parse(strings.NewReader(cfg)); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: err = %v, want ErrConfig", name, err)
		}
	}
}

// TestReloadPreservesBucketState pins the reload contract: an
// unchanged quota keeps its bucket fill (no free burst), a changed
// quota gets a fresh bucket, a bad config leaves the old set live.
func TestReloadPreservesBucketState(t *testing.T) {
	reg, err := Parse(strings.NewReader(twoTenants))
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := reg.Lookup("ak_alice")
	if ok, _ := alice.Bucket().Take(t0, 200); !ok { // drain the whole burst
		t.Fatal("draining alice's burst refused")
	}

	// Reload with alice unchanged and bob's rate doubled.
	edited := strings.Replace(twoTenants, `"rate_per_sec": 5`, `"rate_per_sec": 10`, 1)
	if err := reg.Reload(strings.NewReader(edited)); err != nil {
		t.Fatal(err)
	}
	alice2, ok := reg.Lookup("ak_alice")
	if !ok {
		t.Fatal("alice lost in reload")
	}
	if alice2 != alice {
		t.Error("unchanged tenant did not carry its member across reload")
	}
	if ok, _ := alice2.Bucket().Take(t0, 1); ok {
		t.Error("reload refilled an empty bucket: reloads must not grant amnesty")
	}
	bob2, _ := reg.Lookup("ak_bob")
	if bob2.RatePerSec != 10 {
		t.Errorf("bob's rate after reload = %v, want 10", bob2.RatePerSec)
	}
	if got := bob2.Bucket().Tokens(t0); got != 10 { // fresh bucket at new burst
		t.Errorf("bob's fresh bucket fill = %v, want 10", got)
	}

	// A broken reload must not disturb the live set.
	if err := reg.Reload(strings.NewReader(`{"tenants": []}`)); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad reload err = %v, want ErrConfig", err)
	}
	if _, ok := reg.Lookup("ak_alice"); !ok {
		t.Error("failed reload dropped the live tenant set")
	}
}

// TestReloadKeyRotationKeepsBucket pins that rotating a key (same
// quota) keeps the bucket fill but resolves only the new key.
func TestReloadKeyRotationKeepsBucket(t *testing.T) {
	reg, err := Parse(strings.NewReader(twoTenants))
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := reg.Lookup("ak_alice")
	alice.Bucket().Take(t0, 200)

	rotated := strings.Replace(twoTenants, `"key": "ak_alice"`, `"key": "ak_alice2"`, 1)
	if err := reg.Reload(strings.NewReader(rotated)); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Lookup("ak_alice"); ok {
		t.Error("rotated-out key still resolves")
	}
	alice2, ok := reg.Lookup("ak_alice2")
	if !ok {
		t.Fatal("rotated-in key does not resolve")
	}
	if ok, _ := alice2.Bucket().Take(t0, 1); ok {
		t.Error("key rotation refilled the bucket")
	}
}

// TestMemberSlots covers the concurrency cap: MaxInflight slots, then
// refusal; release restores capacity; peak is tracked.
func TestMemberSlots(t *testing.T) {
	reg, err := Parse(strings.NewReader(twoTenants))
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := reg.Lookup("ak_alice") // max_inflight 2
	if !alice.AcquireSlot() || !alice.AcquireSlot() {
		t.Fatal("in-cap acquires refused")
	}
	if alice.AcquireSlot() {
		t.Fatal("third acquire above max_inflight granted")
	}
	alice.ReleaseSlot()
	if !alice.AcquireSlot() {
		t.Error("acquire after release refused")
	}
	if alice.PeakInflight() != 2 {
		t.Errorf("peak = %d, want 2", alice.PeakInflight())
	}
	bob, _ := reg.Lookup("ak_bob") // uncapped
	for i := 0; i < 100; i++ {
		if !bob.AcquireSlot() {
			t.Fatal("uncapped tenant refused a slot")
		}
	}
}

// TestValidateName pins the name grammar the metric label set rests
// on.
func TestValidateName(t *testing.T) {
	for _, good := range []string{"a", "alice", "team-7", "A_b-9", strings.Repeat("x", 64)} {
		if err := ValidateName(good); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", good, err)
		}
	}
	for _, bad := range []string{"", "unknown", "a b", "a.b", `a"b`, "é", strings.Repeat("x", 65)} {
		if err := ValidateName(bad); err == nil {
			t.Errorf("ValidateName(%q) accepted", bad)
		}
	}
}
