// Package cli pins the exit-code contract shared by every binary in
// the repository:
//
//	0  success
//	1  runtime failure (I/O error, failed experiment, server fault)
//	2  usage error (bad flag, unknown subcommand, malformed spec) —
//	   the invocation itself was wrong, and retrying it unchanged
//	   cannot succeed
//
// Commands tag usage errors by wrapping ErrUsage (directly or via
// Usagef) and translate any error to an exit status with Code, so a
// new binary cannot drift from the contract by picking its own
// sentinel.
package cli

import (
	"errors"
	"fmt"
)

// ErrUsage tags command-line errors that should print the usage text
// and exit with status 2 rather than 1.
var ErrUsage = errors.New("usage error")

// Usagef builds a usage error: the formatted message wrapping
// ErrUsage, so errors.Is(err, ErrUsage) holds.
func Usagef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUsage, fmt.Sprintf(format, args...))
}

// WrapUsage tags an existing error (a flag.Parse failure, a malformed
// spec) as a usage error while preserving the original chain.
func WrapUsage(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrUsage, err)
}

// Code maps an error to the contract's exit status: nil is 0, a usage
// error is 2, anything else is 1.
func Code(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, ErrUsage):
		return 2
	default:
		return 1
	}
}
