package cli

import (
	"errors"
	"fmt"
	"testing"
)

func TestUsagefWrapsErrUsage(t *testing.T) {
	err := Usagef("unknown flag %q", "-x")
	if !errors.Is(err, ErrUsage) {
		t.Fatalf("Usagef result does not wrap ErrUsage: %v", err)
	}
	want := "usage error: unknown flag \"-x\""
	if err.Error() != want {
		t.Errorf("message = %q, want %q", err.Error(), want)
	}
}

func TestWrapUsagePreservesChain(t *testing.T) {
	inner := errors.New("flag provided but not defined")
	err := WrapUsage(inner)
	if !errors.Is(err, ErrUsage) || !errors.Is(err, inner) {
		t.Fatalf("WrapUsage lost part of the chain: %v", err)
	}
	if WrapUsage(nil) != nil {
		t.Error("WrapUsage(nil) != nil")
	}
}

func TestCodeContract(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{errors.New("runtime failure"), 1},
		{ErrUsage, 2},
		{Usagef("bad"), 2},
		{fmt.Errorf("context: %w", WrapUsage(errors.New("inner"))), 2},
	}
	for _, c := range cases {
		if got := Code(c.err); got != c.want {
			t.Errorf("Code(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
