package md

import (
	"fmt"

	"github.com/chrec/rat/internal/fixed"
)

// Fixed-point evaluation of the Lennard-Jones pair interaction — the
// numerical model of one force-pipeline lane, mirroring the 32-bit
// datapath Design() describes: squared distance from three
// subtract/square stages, the reciprocal via the iterative divider,
// the r^-6/r^-12 power chain on multipliers, and the force scalar.
// It exists for the precision test: MD's "precision choices" are one
// of the design axes the paper names for the wildly varying published
// MD speedups (0.29x / 2x / 46x), and this lets them be evaluated
// empirically against the float64 reference, exactly as the PDF
// studies evaluate theirs.

// ForceConfig selects the datapath's number formats: positions and
// displacements in Pos, the internal reciprocal/power chain in Inner
// (which needs more integer headroom — r^-12 spans a huge dynamic
// range), and the force output in Out.
type ForceConfig struct {
	Pos   fixed.Format
	Inner fixed.Format
	Out   fixed.Format
}

// ForceConfig32 is the as-built 32-bit datapath: Q8.24 positions
// (box coordinates to ~6e-8), a Q12.20 inner chain and Q12.20 output.
func ForceConfig32() ForceConfig {
	return ForceConfig{
		Pos:   fixed.Q(8, 24),
		Inner: fixed.Q(12, 20),
		Out:   fixed.Q(12, 20),
	}
}

// ForceConfigForWidth scales the datapath to an arbitrary width in
// [16, 32], keeping the same integer allocations.
func ForceConfigForWidth(width int) (ForceConfig, error) {
	if width < 16 || width > 32 {
		return ForceConfig{}, fmt.Errorf("md: datapath width %d outside [16, 32]", width)
	}
	return ForceConfig{
		Pos:   fixed.Q(8, width-8),
		Inner: fixed.Q(12, width-12),
		Out:   fixed.Q(12, width-12),
	}, nil
}

// PairForceFixed evaluates the LJ force scalar F(r)/r = 24 r^-8 (2
// r^-6 - 1) for the displacement (dx, dy, dz) through the fixed-point
// datapath, returning the quantized scalar and whether any stage
// saturated. Pairs beyond the format's representable r^-2 dynamic
// range saturate exactly as the hardware would.
func PairForceFixed(dx, dy, dz float64, cfg ForceConfig) (fOverR float64, saturated bool) {
	pos, inner, out := cfg.Pos, cfg.Inner, cfg.Out
	or := func(b bool, ov bool) bool { return b || ov }

	qdx, ov := fixed.FromFloat(dx, pos, fixed.Nearest, fixed.Saturate)
	saturated = or(saturated, ov)
	qdy, ov := fixed.FromFloat(dy, pos, fixed.Nearest, fixed.Saturate)
	saturated = or(saturated, ov)
	qdz, ov := fixed.FromFloat(dz, pos, fixed.Nearest, fixed.Saturate)
	saturated = or(saturated, ov)

	// r^2 = dx^2 + dy^2 + dz^2 in the inner format.
	sq := func(v fixed.Value) fixed.Value {
		p, ov := fixed.Mul(v, v, inner, fixed.Nearest, fixed.Saturate)
		saturated = or(saturated, ov)
		return p
	}
	r2, ov := fixed.Add(sq(qdx), sq(qdy), fixed.Saturate)
	saturated = or(saturated, ov)
	r2, ov = fixed.Add(r2, sq(qdz), fixed.Saturate)
	saturated = or(saturated, ov)
	if r2.IsZero() {
		return 0, true // coincident molecules: the hardware flags and skips
	}

	one := fixed.MustFromFloat(1, inner, fixed.Nearest)
	inv2, ov := fixed.Div(one, r2, inner, fixed.Nearest, fixed.Saturate) // r^-2
	saturated = or(saturated, ov)
	inv4, ov := fixed.Mul(inv2, inv2, inner, fixed.Nearest, fixed.Saturate)
	saturated = or(saturated, ov)
	inv6, ov := fixed.Mul(inv4, inv2, inner, fixed.Nearest, fixed.Saturate)
	saturated = or(saturated, ov)
	inv8, ov := fixed.Mul(inv6, inv2, inner, fixed.Nearest, fixed.Saturate)
	saturated = or(saturated, ov)

	// 24 * inv8 * (2*inv6 - 1)
	two6, ov := fixed.Add(inv6, inv6, fixed.Saturate)
	saturated = or(saturated, ov)
	bracket, ov := fixed.Sub(two6, one, fixed.Saturate)
	saturated = or(saturated, ov)
	prod, ov := fixed.Mul(inv8, bracket, inner, fixed.Nearest, fixed.Saturate)
	saturated = or(saturated, ov)
	k24 := fixed.MustFromFloat(24, fixed.Q(12, 8), fixed.Nearest)
	res, ov := fixed.Mul(prod, k24, out, fixed.Nearest, fixed.Saturate)
	saturated = or(saturated, ov)
	return res.Float(), saturated
}

// ForceDatapathError measures the maximum relative error of the
// fixed-point force datapath against float64 over pair distances in
// [rMin, rMax], normalized by the largest force magnitude in the range
// — the MD analogue of the PDF studies' precision measurement. Samples
// are spread uniformly over the range.
func ForceDatapathError(cfg ForceConfig, rMin, rMax float64, samples int) (float64, error) {
	if rMin <= 0 || rMax <= rMin || samples < 2 {
		return 0, fmt.Errorf("md: bad error-scan range [%g, %g] x %d", rMin, rMax, samples)
	}
	var peak float64
	refs := make([]float64, samples)
	rs := make([]float64, samples)
	for i := 0; i < samples; i++ {
		r := rMin + (rMax-rMin)*float64(i)/float64(samples-1)
		ref, _ := ljPair(r * r)
		rs[i], refs[i] = r, ref
		if a := abs(ref); a > peak {
			peak = a
		}
	}
	var worst float64
	for i, r := range rs {
		got, _ := PairForceFixed(r, 0, 0, cfg)
		if d := abs(got - refs[i]); d > worst {
			worst = d
		}
	}
	return worst / peak, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
