package md_test

import (
	"math"
	"testing"

	"github.com/chrec/rat/internal/apps/md"
)

// TestParallelMatchesSerial: the parallel force engine is bit-identical
// to the cell-list engine on accelerations and pair counts, and agrees
// on the potential to merge-order ULPs.
func TestParallelMatchesSerial(t *testing.T) {
	for _, sys := range []*md.System{
		md.GenerateSystem(700, 9),
		md.GenerateIonicSystem(500, 4, 0.4),
	} {
		serial := md.ForcesCellList(sys)
		parallel := md.ForcesParallel(sys)
		if serial.Pairs != parallel.Pairs {
			t.Fatalf("pairs differ: %d vs %d", serial.Pairs, parallel.Pairs)
		}
		for i := range serial.Acc {
			if serial.Acc[i] != parallel.Acc[i] {
				t.Fatalf("acceleration %d differs: %+v vs %+v", i, serial.Acc[i], parallel.Acc[i])
			}
		}
		if d := math.Abs(serial.Potential - parallel.Potential); d > 1e-9*(1+math.Abs(serial.Potential)) {
			t.Errorf("potentials differ beyond merge-order noise: %g vs %g", serial.Potential, parallel.Potential)
		}
	}
}

// TestParallelSmallSystems: worker partitioning handles systems
// smaller than the core count.
func TestParallelSmallSystems(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		sys := md.GenerateSystem(n, 7)
		serial := md.ForcesCellList(sys)
		parallel := md.ForcesParallel(sys)
		if serial.Pairs != parallel.Pairs {
			t.Errorf("n=%d: pairs differ", n)
		}
		for i := range serial.Acc {
			if serial.Acc[i] != parallel.Acc[i] {
				t.Errorf("n=%d: acceleration %d differs", n, i)
			}
		}
	}
}

// TestStepWithParallelEngine: the integrator accepts the parallel
// engine interchangeably.
func TestStepWithParallelEngine(t *testing.T) {
	a := md.GenerateSystem(300, 11)
	b := md.GenerateSystem(300, 11)
	for i := 0; i < 10; i++ {
		md.Step(a, 1e-5, md.ForcesCellList)
		md.Step(b, 1e-5, md.ForcesParallel)
	}
	for i := range a.Pos {
		d := a.Pos[i].Sub(b.Pos[i])
		if math.Sqrt(d.Dot(d)) > 1e-12 {
			t.Fatalf("trajectories diverged at molecule %d", i)
		}
	}
}

func BenchmarkForcesCellList(b *testing.B) {
	sys := md.GenerateSystem(2000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		md.ForcesCellList(sys)
	}
}

func BenchmarkForcesParallel(b *testing.B) {
	sys := md.GenerateSystem(2000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		md.ForcesParallel(sys)
	}
}

func BenchmarkForcesAllPairs(b *testing.B) {
	sys := md.GenerateSystem(1000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		md.ForcesAllPairs(sys)
	}
}
