package md_test

import (
	"errors"
	"math"
	"sync"
	"testing"

	"github.com/chrec/rat/internal/apps/md"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/resource"
)

// canonical caches the full 16384-molecule dataset and its neighbour
// profile; building it costs a second or two, so tests share it.
var canonical = struct {
	once      sync.Once
	sys       *md.System
	neighbors []int
}{}

func canonicalSystem(t *testing.T) (*md.System, []int) {
	t.Helper()
	canonical.once.Do(func() {
		canonical.sys = md.GenerateSystem(md.Molecules, 1)
		canonical.neighbors = md.NeighborCounts(canonical.sys)
	})
	return canonical.sys, canonical.neighbors
}

func TestWorksheetReproducesTable8(t *testing.T) {
	got := md.Worksheet()
	want := paper.MDParams()
	if got.Dataset != want.Dataset {
		t.Errorf("dataset params %+v, want %+v", got.Dataset, want.Dataset)
	}
	if got.Comm != want.Comm {
		t.Errorf("comm params %+v, want %+v", got.Comm, want.Comm)
	}
	if got.Comp != want.Comp {
		t.Errorf("comp params %+v, want %+v", got.Comp, want.Comp)
	}
	if got.Soft != want.Soft {
		t.Errorf("soft params %+v, want %+v", got.Soft, want.Soft)
	}
}

func TestGenerateSystemDeterministic(t *testing.T) {
	a := md.GenerateSystem(100, 5)
	b := md.GenerateSystem(100, 5)
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
			t.Fatal("generator not deterministic")
		}
	}
	for _, p := range a.Pos {
		if p.X < 0 || p.X >= a.Box || p.Y < 0 || p.Y >= a.Box || p.Z < 0 || p.Z >= a.Box {
			t.Fatalf("position %+v outside box", p)
		}
	}
	if z := md.GenerateSystem(10, 0); z.N() != 10 {
		t.Error("zero seed broken")
	}
}

// TestForceEnginesAgree: all-pairs and cell-list must produce
// identical physics (same pairs, potential and accelerations) — the
// cell list is an optimization, not an approximation.
func TestForceEnginesAgree(t *testing.T) {
	s := md.GenerateSystem(500, 9)
	ap := md.ForcesAllPairs(s)
	cl := md.ForcesCellList(s)
	if ap.Pairs != cl.Pairs {
		t.Fatalf("pair counts differ: all-pairs %d, cell-list %d", ap.Pairs, cl.Pairs)
	}
	if math.Abs(ap.Potential-cl.Potential) > 1e-9*math.Abs(ap.Potential) {
		t.Errorf("potentials differ: %g vs %g", ap.Potential, cl.Potential)
	}
	for i := range ap.Acc {
		d := ap.Acc[i].Sub(cl.Acc[i])
		// Uniform placement creates near-overlapping pairs with
		// enormous forces, so summation order costs a few ULPs:
		// compare relatively.
		if math.Sqrt(d.Dot(d)) > 1e-9*(1+math.Sqrt(ap.Acc[i].Dot(ap.Acc[i]))) {
			t.Fatalf("acceleration %d differs: %+v vs %+v", i, ap.Acc[i], cl.Acc[i])
		}
	}
}

// TestNewtonThirdLaw: total force sums to zero.
func TestNewtonThirdLaw(t *testing.T) {
	s := md.GenerateSystem(300, 4)
	f := md.ForcesAllPairs(s)
	var total md.Vec3
	for _, a := range f.Acc {
		total = total.Add(a)
	}
	if math.Abs(total.X)+math.Abs(total.Y)+math.Abs(total.Z) > 1e-8 {
		t.Errorf("net force %+v, want ~0", total)
	}
}

// TestLJPairSign: strongly overlapping molecules repel; molecules near
// the potential minimum attract.
func TestLJPairSign(t *testing.T) {
	s := &md.System{Box: 100, Cutoff: 5,
		Pos: []md.Vec3{{X: 1, Y: 1, Z: 1}, {X: 1.9, Y: 1, Z: 1}},
		Vel: make([]md.Vec3, 2), Acc: make([]md.Vec3, 2)}
	f := md.ForcesAllPairs(s)
	if f.Acc[0].X >= 0 || f.Acc[1].X <= 0 {
		t.Errorf("r=0.9: expected repulsion, got %+v", f.Acc)
	}
	s.Pos[1].X = 2.3 // r = 1.3 > 2^(1/6): attractive branch
	f = md.ForcesAllPairs(s)
	if f.Acc[0].X <= 0 || f.Acc[1].X >= 0 {
		t.Errorf("r=1.3: expected attraction, got %+v", f.Acc)
	}
}

// TestMinimumImage: a pair straddling the periodic boundary interacts
// as if adjacent.
func TestMinimumImage(t *testing.T) {
	s := &md.System{Box: 32, Cutoff: 5,
		Pos: []md.Vec3{{X: 0.2, Y: 16, Z: 16}, {X: 31.8, Y: 16, Z: 16}},
		Vel: make([]md.Vec3, 2), Acc: make([]md.Vec3, 2)}
	f := md.ForcesAllPairs(s)
	if f.Pairs != 1 {
		t.Fatalf("periodic pair not found: %d pairs", f.Pairs)
	}
	// Separation is 0.4 through the boundary: strong repulsion
	// pushing molecule 0 in +X.
	if f.Acc[0].X <= 0 {
		t.Errorf("boundary pair force wrong: %+v", f.Acc[0])
	}
}

// TestVerletEnergyConservation: a short NVE run conserves total energy
// to a loose tolerance.
func TestVerletEnergyConservation(t *testing.T) {
	s := md.GenerateSystem(200, 12)
	// Relax overlaps from uniform placement first: a few tiny steps.
	for i := 0; i < 20; i++ {
		md.Step(s, 1e-5, md.ForcesCellList)
	}
	f := md.ForcesCellList(s)
	e0 := s.KineticEnergy() + f.Potential
	var drift float64
	for i := 0; i < 100; i++ {
		ff := md.Step(s, 1e-4, md.ForcesCellList)
		e := s.KineticEnergy() + ff.Potential
		if d := math.Abs(e - e0); d > drift {
			drift = d
		}
	}
	scale := math.Max(math.Abs(e0), s.KineticEnergy())
	if drift > 0.05*scale {
		t.Errorf("energy drift %g exceeds 5%% of %g", drift, scale)
	}
}

func TestNeighborCountsSane(t *testing.T) {
	s := md.GenerateSystem(2000, 3)
	counts := md.NeighborCounts(s)
	var sum int
	for _, c := range counts {
		sum += c
	}
	// Density 2000/32768 with cutoff 5: expect ~32 mean neighbours.
	mean := float64(sum) / float64(len(counts))
	expect := 2000.0 / (32 * 32 * 32) * (4.0 / 3.0) * math.Pi * 125
	if mean < 0.8*expect || mean > 1.2*expect {
		t.Errorf("mean neighbours %.1f, expect ~%.1f", mean, expect)
	}
	// Directed neighbour total is twice the pair count.
	f := md.ForcesCellList(s)
	if int64(sum) != 2*f.Pairs {
		t.Errorf("neighbour total %d != 2 x pairs %d", sum, f.Pairs)
	}
}

// TestKernelCyclesCalibration: the data-dependent hardware model lands
// on the paper's measured t_comp = 8.79E-1 s at 100 MHz for the
// canonical dataset.
func TestKernelCyclesCalibration(t *testing.T) {
	_, neighbors := canonicalSystem(t)
	cycles := md.KernelCycles(neighbors)
	tComp := float64(cycles) / 100e6
	if math.Abs(tComp-8.79e-1) > 0.02*8.79e-1 {
		t.Errorf("simulated t_comp = %.4e s at 100 MHz, paper measured 8.79e-1", tComp)
	}
	// Effective ops/cycle against the worksheet's estimated scope:
	// well below the solved 50 — the design fell short of its goal,
	// which is why the measured speedup is 6.6, not 10.
	eff := float64(md.Molecules) * 164000 / float64(cycles)
	if eff < 25 || eff > 40 {
		t.Errorf("effective ops/cycle = %.1f, want ~31", eff)
	}
}

// TestSimulatedHardwareReproducesTable9Actual: the full simulated
// XD1000 run at 100 MHz reproduces the measured column of Table 9.
func TestSimulatedHardwareReproducesTable9Actual(t *testing.T) {
	s, _ := canonicalSystem(t)
	sc, err := md.Scenario(s, core.MHz(100), core.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	m := rcsim.MustRun(sc)
	actual := paper.ActualRow(paper.MD)
	if got := m.TComm(); math.Abs(got-actual.TComm) > 0.02*actual.TComm {
		t.Errorf("simulated t_comm = %.4e, paper measured %.3e", got, actual.TComm)
	}
	if got := m.TComp(); math.Abs(got-actual.TComp) > 0.02*actual.TComp {
		t.Errorf("simulated t_comp = %.4e, paper measured %.3e", got, actual.TComp)
	}
	if got := m.TRC(); math.Abs(got-actual.TRC) > 0.02*actual.TRC {
		t.Errorf("simulated t_RC = %.4e, paper measured %.3e", got, actual.TRC)
	}
	speedup := m.Speedup(md.Worksheet().Soft.TSoft)
	if math.Abs(speedup-actual.Speedup) > 0.15 {
		t.Errorf("simulated speedup = %.2f, paper measured %.1f", speedup, actual.Speedup)
	}
}

// TestPredictionErrorShape: the Section 5.2 narrative — communication
// prediction pessimistic (actual beats it), computation prediction
// optimistic (actual misses the solved target), both the same order of
// magnitude as measured.
func TestPredictionErrorShape(t *testing.T) {
	s, _ := canonicalSystem(t)
	pr := core.MustPredict(md.Worksheet().WithClock(core.MHz(100)))
	sc, err := md.Scenario(s, core.MHz(100), core.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	m := rcsim.MustRun(sc)
	if m.TComm() >= pr.TComm {
		t.Errorf("measured comm %.3e should beat the conservative prediction %.3e", m.TComm(), pr.TComm)
	}
	if m.TComp() <= pr.TComp {
		t.Errorf("measured comp %.3e should exceed the tuned prediction %.3e", m.TComp(), pr.TComp)
	}
	for _, ratio := range []float64{m.TComm() / pr.TComm, m.TComp() / pr.TComp} {
		if ratio < 0.1 || ratio > 10 {
			t.Errorf("ratio %.2f breaks the same-order-of-magnitude property", ratio)
		}
	}
}

func TestScenarioRejectsWrongSize(t *testing.T) {
	s := md.GenerateSystem(100, 1)
	if _, err := md.Scenario(s, core.MHz(100), core.SingleBuffered); !errors.Is(err, md.ErrSystemSize) {
		t.Errorf("error = %v, want ErrSystemSize", err)
	}
}

// TestInverseSolverStory: the worksheet's throughput_proc = 50 comes
// from solving the 10x goal at 100 MHz (46.7, rounded up).
func TestInverseSolverStory(t *testing.T) {
	p := md.Worksheet().WithClock(core.MHz(100))
	got, err := core.SolveThroughputProc(p, 10, core.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	if got < 46 || got > 48 {
		t.Errorf("solved throughput_proc = %.1f, want ~46.7", got)
	}
}

// TestResourceReportShape: Table 10's picture — the 9-bit DSP elements
// fully consumed (the multiplier wall that capped parallelism), a
// large fraction of the ALUTs, and roughly half the block memory.
func TestResourceReportShape(t *testing.T) {
	rep, err := md.ResourceReport()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fits {
		t.Fatalf("MD design must (just) fit the EP2S180: %+v", rep)
	}
	if got := rep.Utilization(resource.DSP); math.Abs(got-1.0) > 0.01 {
		t.Errorf("DSP utilization = %.3f, want ~1.00 (multiplier-limited)", got)
	}
	if rep.Limiting != resource.DSP {
		t.Errorf("limiting resource = %v, want DSP", rep.Limiting)
	}
	if got := rep.Utilization(resource.Logic); got < 0.5 || got > 0.85 {
		t.Errorf("ALUT utilization = %.3f, want a large fraction (~0.7)", got)
	}
	if got := rep.Utilization(resource.BRAM); got < 0.3 || got > 0.75 {
		t.Errorf("BRAM utilization = %.3f, want ~0.5", got)
	}
	// A fifth pipeline must NOT fit: DSPs are exhausted.
	dev := rep.Device
	fiveWide := md.Design()
	fiveWide.Pipelines = md.Pipelines + 1
	d5, err := fiveWide.ResourceDemand(dev, md.Molecules, false)
	if err != nil {
		t.Fatal(err)
	}
	if resource.Check(dev, d5).Fits {
		t.Error("adding a fifth force pipeline should exceed the DSP inventory")
	}
}

func TestVec3Ops(t *testing.T) {
	a := md.Vec3{X: 1, Y: 2, Z: 3}
	b := md.Vec3{X: -1, Y: 0.5, Z: 2}
	if got := a.Add(b); got != (md.Vec3{X: 0, Y: 2.5, Z: 5}) {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Sub(b); got != (md.Vec3{X: 2, Y: 1.5, Z: 1}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := a.Scale(2); got != (md.Vec3{X: 2, Y: 4, Z: 6}) {
		t.Errorf("Scale = %+v", got)
	}
	if got := a.Dot(b); got != -1+1+6 {
		t.Errorf("Dot = %g", got)
	}
}
