package md_test

import (
	"errors"
	"math"
	"testing"

	"github.com/chrec/rat/internal/apps/md"
)

func TestSetCharges(t *testing.T) {
	s := md.GenerateSystem(10, 1)
	if err := s.SetCharges(make([]float64, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetCharges(make([]float64, 9)); err == nil {
		t.Error("mismatched charge count accepted")
	}
	if err := s.SetCharges(nil); err != nil || s.Charge != nil {
		t.Error("nil charges should clear")
	}
}

// TestCoulombSigns: like charges repel, opposite charges attract, on
// top of the LJ baseline.
func TestCoulombSigns(t *testing.T) {
	// Two molecules near the LJ zero-force distance so the Coulomb
	// term dominates the sign.
	base := func() *md.System {
		return &md.System{Box: 100, Cutoff: 10,
			Pos: []md.Vec3{{X: 10, Y: 10, Z: 10}, {X: 10 + math.Pow(2, 1.0/6), Y: 10, Z: 10}},
			Vel: make([]md.Vec3, 2), Acc: make([]md.Vec3, 2)}
	}
	neutral := md.ForcesAllPairs(base())
	if math.Abs(neutral.Acc[0].X) > 1e-9 {
		t.Fatalf("LJ force at the minimum should vanish, got %g", neutral.Acc[0].X)
	}
	like := base()
	if err := like.SetCharges([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	f := md.ForcesAllPairs(like)
	if f.Acc[0].X >= 0 || f.Acc[1].X <= 0 {
		t.Errorf("like charges must repel: %+v", f.Acc)
	}
	opposite := base()
	if err := opposite.SetCharges([]float64{1, -1}); err != nil {
		t.Fatal(err)
	}
	f = md.ForcesAllPairs(opposite)
	if f.Acc[0].X <= 0 || f.Acc[1].X >= 0 {
		t.Errorf("opposite charges must attract: %+v", f.Acc)
	}
	if f.Potential >= 0 {
		t.Errorf("opposite-charge potential %g should be negative", f.Potential)
	}
}

// TestChargedEnginesAgree: the electrostatic path is identical in both
// force engines.
func TestChargedEnginesAgree(t *testing.T) {
	s := md.GenerateIonicSystem(400, 9, 0.5)
	ap := md.ForcesAllPairs(s)
	cl := md.ForcesCellList(s)
	if ap.Pairs != cl.Pairs {
		t.Fatalf("pairs differ: %d vs %d", ap.Pairs, cl.Pairs)
	}
	if math.Abs(ap.Potential-cl.Potential) > 1e-9*(1+math.Abs(ap.Potential)) {
		t.Errorf("potentials differ: %g vs %g", ap.Potential, cl.Potential)
	}
	for i := range ap.Acc {
		d := ap.Acc[i].Sub(cl.Acc[i])
		if math.Sqrt(d.Dot(d)) > 1e-9*(1+math.Sqrt(ap.Acc[i].Dot(ap.Acc[i]))) {
			t.Fatalf("acceleration %d differs", i)
		}
	}
}

func TestGenerateIonicSystemNeutral(t *testing.T) {
	s := md.GenerateIonicSystem(100, 3, 0.8)
	var total float64
	for _, q := range s.Charge {
		total += q
	}
	if total != 0 {
		t.Errorf("net charge %g, want 0", total)
	}
	if s.Charge[0] != 0.8 || s.Charge[1] != -0.8 {
		t.Errorf("charge pattern wrong: %g, %g", s.Charge[0], s.Charge[1])
	}
}

func TestTemperatureAndThermostat(t *testing.T) {
	s := md.GenerateSystem(500, 4)
	t0 := s.Temperature()
	if t0 <= 0 {
		t.Fatalf("generated system temperature %g", t0)
	}
	s.RescaleTemperature(2 * t0)
	if got := s.Temperature(); math.Abs(got-2*t0) > 1e-9*t0 {
		t.Errorf("rescaled temperature %g, want %g", got, 2*t0)
	}
	// No-ops.
	s.RescaleTemperature(0)
	if got := s.Temperature(); math.Abs(got-2*t0) > 1e-9*t0 {
		t.Error("zero-target rescale must be a no-op")
	}
	frozen := md.GenerateSystem(10, 1)
	for i := range frozen.Vel {
		frozen.Vel[i] = md.Vec3{}
	}
	frozen.RescaleTemperature(1) // must not divide by zero
	if frozen.Temperature() != 0 {
		t.Error("motionless system must stay motionless")
	}
	empty := &md.System{Box: 10, Cutoff: 2}
	if empty.Temperature() != 0 {
		t.Error("empty system temperature")
	}
}

func TestRemoveDrift(t *testing.T) {
	s := md.GenerateSystem(200, 8)
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Add(md.Vec3{X: 3}) // inject drift
	}
	s.RemoveDrift()
	p := s.TotalMomentum()
	if math.Abs(p.X)+math.Abs(p.Y)+math.Abs(p.Z) > 1e-9 {
		t.Errorf("residual momentum %+v", p)
	}
	empty := &md.System{Box: 10, Cutoff: 2}
	empty.RemoveDrift() // must not panic
}

// TestMomentumConservation: Verlet steps conserve momentum (forces sum
// to zero pairwise).
func TestMomentumConservation(t *testing.T) {
	s := md.GenerateSystem(300, 11)
	s.RemoveDrift()
	for i := 0; i < 20; i++ {
		md.Step(s, 1e-5, md.ForcesCellList)
	}
	p := s.TotalMomentum()
	if math.Abs(p.X)+math.Abs(p.Y)+math.Abs(p.Z) > 1e-7 {
		t.Errorf("momentum drifted to %+v", p)
	}
}

func TestRDF(t *testing.T) {
	s := md.GenerateSystem(1500, 5)
	g, err := md.RDF(s, 50, s.Box/2)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 50 {
		t.Fatalf("bins = %d", len(g))
	}
	// Uniform random placement: g(r) ~ 1 beyond short range.
	var tail float64
	for _, v := range g[25:] {
		tail += v
	}
	tail /= 25
	if tail < 0.9 || tail > 1.1 {
		t.Errorf("uniform-system g(r) tail = %.3f, want ~1", tail)
	}
	for i, v := range g {
		if v < 0 {
			t.Fatalf("negative g at bin %d", i)
		}
	}
}

func TestRDFOnLattice(t *testing.T) {
	// Two molecules at a known separation: g spikes in exactly that
	// bin.
	s := &md.System{Box: 20, Cutoff: 5,
		Pos: []md.Vec3{{X: 5, Y: 5, Z: 5}, {X: 8, Y: 5, Z: 5}},
		Vel: make([]md.Vec3, 2), Acc: make([]md.Vec3, 2)}
	g, err := md.RDF(s, 10, 10) // dr = 1; separation 3 -> bin 3
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range g {
		if i == 3 && v == 0 {
			t.Error("separation bin empty")
		}
		if i != 3 && v != 0 {
			t.Errorf("unexpected density in bin %d", i)
		}
	}
}

func TestRDFErrors(t *testing.T) {
	s := md.GenerateSystem(10, 1)
	if _, err := md.RDF(s, 0, 5); !errors.Is(err, md.ErrBadBins) {
		t.Errorf("zero bins: %v", err)
	}
	if _, err := md.RDF(s, 10, 0); !errors.Is(err, md.ErrBadBins) {
		t.Errorf("zero range: %v", err)
	}
	if _, err := md.RDF(s, 10, s.Box); err == nil {
		t.Error("range beyond half-box accepted")
	}
}

// TestChargedEnergyConservation: the combined LJ+Coulomb integrator
// still conserves energy.
func TestChargedEnergyConservation(t *testing.T) {
	s := md.GenerateIonicSystem(150, 12, 0.3)
	for i := 0; i < 20; i++ {
		md.Step(s, 1e-5, md.ForcesCellList)
	}
	f := md.ForcesCellList(s)
	e0 := s.KineticEnergy() + f.Potential
	var drift float64
	for i := 0; i < 80; i++ {
		ff := md.Step(s, 1e-4, md.ForcesCellList)
		e := s.KineticEnergy() + ff.Potential
		if d := math.Abs(e - e0); d > drift {
			drift = d
		}
	}
	scale := math.Max(math.Abs(e0), s.KineticEnergy())
	if drift > 0.08*scale {
		t.Errorf("charged-system energy drift %g exceeds 8%% of %g", drift, scale)
	}
}
