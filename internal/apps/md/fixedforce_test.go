package md_test

import (
	"math"
	"testing"

	"github.com/chrec/rat/internal/apps/md"
)

// reference force scalar for a separation r.
func refForce(r float64) float64 {
	r2 := r * r
	inv2 := 1 / r2
	inv6 := inv2 * inv2 * inv2
	return 24 * inv2 * inv6 * (2*inv6 - 1)
}

// TestPairForceFixedAccuracy: the 32-bit datapath tracks float64
// through the physically interesting range (repulsive wall through the
// attractive tail).
func TestPairForceFixedAccuracy(t *testing.T) {
	cfg := md.ForceConfig32()
	for _, r := range []float64{0.95, 1.0, 1.1, 1.122, 1.3, 1.7, 2.2, 3.0} {
		got, sat := md.PairForceFixed(r, 0, 0, cfg)
		want := refForce(r)
		tol := 1e-3 * (1 + math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Errorf("r=%.3f: fixed %.6f vs float %.6f", r, got, want)
		}
		if sat {
			t.Errorf("r=%.3f: unexpected saturation", r)
		}
	}
}

// TestPairForceFixedSign: repulsive inside the LJ minimum, attractive
// outside, ~zero at 2^(1/6).
func TestPairForceFixedSign(t *testing.T) {
	cfg := md.ForceConfig32()
	if f, _ := md.PairForceFixed(1.0, 0, 0, cfg); f <= 0 {
		t.Errorf("r=1: force scalar %g, want repulsive (positive)", f)
	}
	if f, _ := md.PairForceFixed(1.5, 0, 0, cfg); f >= 0 {
		t.Errorf("r=1.5: force scalar %g, want attractive (negative)", f)
	}
	if f, _ := md.PairForceFixed(math.Pow(2, 1.0/6), 0, 0, cfg); math.Abs(f) > 0.05 {
		t.Errorf("at the LJ minimum: force scalar %g, want ~0", f)
	}
}

// TestPairForceFixedVectorDisplacement: the datapath accepts full 3-D
// displacements.
func TestPairForceFixedVectorDisplacement(t *testing.T) {
	cfg := md.ForceConfig32()
	// |(0.6, 0.8, 0)| = 1.0.
	got, _ := md.PairForceFixed(0.6, 0.8, 0, cfg)
	want := refForce(1.0)
	if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
		t.Errorf("3-D displacement: %g vs %g", got, want)
	}
}

// TestPairForceFixedSaturation: deeply overlapping pairs exceed the
// datapath's dynamic range and must flag saturation; coincident pairs
// flag and return zero.
func TestPairForceFixedSaturation(t *testing.T) {
	cfg := md.ForceConfig32()
	if _, sat := md.PairForceFixed(0.3, 0, 0, cfg); !sat {
		t.Error("r=0.3 (r^-12 ~ 2^20+) should saturate the inner chain")
	}
	f, sat := md.PairForceFixed(0, 0, 0, cfg)
	if !sat || f != 0 {
		t.Errorf("coincident pair: f=%g sat=%v, want 0 and flagged", f, sat)
	}
}

// TestForceDatapathErrorByWidth: the datapath error shrinks with
// width; 32 bits is comfortably inside 0.1%, 16 bits is visibly worse.
func TestForceDatapathErrorByWidth(t *testing.T) {
	prev := math.Inf(1)
	for _, w := range []int{16, 20, 24, 32} {
		cfg, err := md.ForceConfigForWidth(w)
		if err != nil {
			t.Fatal(err)
		}
		e, err := md.ForceDatapathError(cfg, 0.95, 3.0, 400)
		if err != nil {
			t.Fatal(err)
		}
		if e > prev*1.5 {
			t.Errorf("width %d error %.2e worse than narrower %.2e", w, e, prev)
		}
		prev = e
	}
	cfg := md.ForceConfig32()
	e, err := md.ForceDatapathError(cfg, 0.95, 3.0, 400)
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-3 {
		t.Errorf("32-bit datapath error = %.2e, want under 0.1%%", e)
	}
	cfg16, _ := md.ForceConfigForWidth(16)
	e16, err := md.ForceDatapathError(cfg16, 0.95, 3.0, 400)
	if err != nil {
		t.Fatal(err)
	}
	if e16 <= e {
		t.Errorf("16-bit error %.2e not worse than 32-bit %.2e", e16, e)
	}
}

func TestForceConfigValidation(t *testing.T) {
	if _, err := md.ForceConfigForWidth(15); err == nil {
		t.Error("width 15 accepted")
	}
	if _, err := md.ForceConfigForWidth(33); err == nil {
		t.Error("width 33 accepted")
	}
	if _, err := md.ForceDatapathError(md.ForceConfig32(), 0, 1, 10); err == nil {
		t.Error("zero rMin accepted")
	}
	if _, err := md.ForceDatapathError(md.ForceConfig32(), 2, 1, 10); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := md.ForceDatapathError(md.ForceConfig32(), 1, 2, 1); err == nil {
		t.Error("single sample accepted")
	}
}
