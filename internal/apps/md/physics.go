package md

import (
	"errors"
	"fmt"
	"math"
)

// The paper's description of MD names both "Van Der Waals forces and
// electrostatic charge (among others)". This file adds the
// electrostatic term, charged-system generation, and the standard
// run-time observables (temperature, velocity rescaling, radial
// distribution function) that make the baseline a usable small MD
// code rather than a bare force loop.

// SetCharges attaches per-molecule charges (Coulomb constant folded
// in, reduced units). Passing nil removes charges. The length must
// match the system size.
func (s *System) SetCharges(q []float64) error {
	if q != nil && len(q) != s.N() {
		return fmt.Errorf("md: %d charges for %d molecules", len(q), s.N())
	}
	s.Charge = q
	return nil
}

// GenerateIonicSystem builds a deterministic system like
// GenerateSystem but with alternating +q/-q charges — a crude molten
// salt, enough to exercise the electrostatic code path.
func GenerateIonicSystem(n int, seed uint64, q float64) *System {
	s := GenerateSystem(n, seed)
	charges := make([]float64, n)
	for i := range charges {
		if i%2 == 0 {
			charges[i] = q
		} else {
			charges[i] = -q
		}
	}
	s.Charge = charges
	return s
}

// coulombPair evaluates the electrostatic force scalar and potential
// for charges qi, qj at squared distance r2 (shifted-truncated at the
// cutoff by the caller's cutoff test): F(r)/r = qiqj / r^3, U = qiqj/r.
func coulombPair(qi, qj, r2 float64) (fOverR, u float64) {
	r := math.Sqrt(r2)
	u = qi * qj / r
	return u / r2, u
}

// pairInteraction combines Lennard-Jones with the optional Coulomb
// term for molecules i and j.
func (s *System) pairInteraction(i, j int, r2 float64) (fOverR, u float64) {
	fOverR, u = ljPair(r2)
	if s.Charge != nil {
		fc, uc := coulombPair(s.Charge[i], s.Charge[j], r2)
		fOverR += fc
		u += uc
	}
	return fOverR, u
}

// Temperature returns the instantaneous kinetic temperature in reduced
// units: 2*KE / (3*N) for unit masses and k_B = 1.
func (s *System) Temperature() float64 {
	if s.N() == 0 {
		return 0
	}
	return 2 * s.KineticEnergy() / (3 * float64(s.N()))
}

// RescaleTemperature applies a velocity-rescaling thermostat toward
// the target temperature. A non-positive target or a motionless system
// is a no-op.
func (s *System) RescaleTemperature(target float64) {
	cur := s.Temperature()
	if target <= 0 || cur <= 0 {
		return
	}
	f := math.Sqrt(target / cur)
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Scale(f)
	}
}

// TotalMomentum returns the system's net momentum (unit masses).
func (s *System) TotalMomentum() Vec3 {
	var p Vec3
	for _, v := range s.Vel {
		p = p.Add(v)
	}
	return p
}

// RemoveDrift subtracts the centre-of-mass velocity so the box does
// not migrate — standard preparation before measuring observables.
func (s *System) RemoveDrift() {
	if s.N() == 0 {
		return
	}
	p := s.TotalMomentum().Scale(1 / float64(s.N()))
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Sub(p)
	}
}

// ErrBadBins rejects invalid RDF binning.
var ErrBadBins = errors.New("md: RDF needs at least one bin and a positive range")

// RDF computes the radial distribution function g(r) over [0, rMax)
// with the given number of bins, using the minimum-image convention.
// The returned slice holds g evaluated at each bin; bin i covers
// [i*dr, (i+1)*dr). rMax must not exceed half the box (beyond that the
// minimum image undercounts).
func RDF(s *System, bins int, rMax float64) ([]float64, error) {
	if bins < 1 || rMax <= 0 {
		return nil, ErrBadBins
	}
	if rMax > s.Box/2 {
		return nil, fmt.Errorf("md: RDF range %g exceeds half the box %g", rMax, s.Box/2)
	}
	n := s.N()
	counts := make([]float64, bins)
	dr := rMax / float64(bins)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := s.displacement(i, j)
			r := math.Sqrt(d.Dot(d))
			if r < rMax {
				counts[int(r/dr)] += 2 // each pair counts for both ends
			}
		}
	}
	g := make([]float64, bins)
	rho := float64(n) / (s.Box * s.Box * s.Box)
	for i := range g {
		rLo := float64(i) * dr
		rHi := rLo + dr
		shell := 4.0 / 3.0 * math.Pi * (rHi*rHi*rHi - rLo*rLo*rLo)
		ideal := rho * shell * float64(n)
		if ideal > 0 {
			g[i] = counts[i] / ideal
		}
	}
	return g, nil
}
