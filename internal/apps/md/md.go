// Package md implements the paper's third case study (Section 5.2):
// molecular dynamics, adapted in spirit from the ORNL serial code the
// authors used — a Lennard-Jones particle system with cutoff, velocity
// Verlet integration, and both all-pairs and cell-list force engines.
//
// MD is the paper's deliberately hard case for RAT: per-molecule work
// depends on the locality of the data ("distant molecules are assumed
// to have negligible interaction and therefore require less
// computational effort"), so N_ops/element can only be estimated and
// throughput_proc is used as a tuning parameter — the worksheet's 50
// ops/cycle is the value solved from the 10x speedup goal, not a
// measured property. The simulated hardware here is correspondingly
// data-dependent: its cycle count is a function of the actual
// neighbour structure of the dataset, so prediction error emerges from
// the data just as it did on the real XD1000.
package md

import (
	"errors"
	"fmt"
	"math"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/kernel"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/resource"
)

// Canonical problem geometry from Table 8.
const (
	Molecules       = 16384
	BytesPerElement = 36 // position, velocity, acceleration x 3 dims x 4 bytes

	// Box and cutoff (reduced Lennard-Jones units) chosen so the
	// average molecule sees a few hundred neighbours — the regime
	// where the paper's 164000 ops/element estimate lives.
	BoxSide = 32.0
	Cutoff  = 5.0
)

// Vec3 is a 3-component vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product.
func (v Vec3) Dot(o Vec3) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// System is the simulation state: one slot per molecule. An element in
// the RAT sense is one molecule: 36 bytes of position, velocity and
// acceleration.
type System struct {
	Box    float64
	Cutoff float64
	Pos    []Vec3
	Vel    []Vec3
	Acc    []Vec3
	// Charge holds optional per-molecule charges for the
	// electrostatic term; nil means a neutral Lennard-Jones system.
	Charge []float64
}

// N returns the molecule count.
func (s *System) N() int { return len(s.Pos) }

// GenerateSystem builds a deterministic n-molecule system: positions
// uniform in the box, velocities from a small thermal distribution,
// accelerations zero. The xorshift generator keeps datasets identical
// across Go versions.
func GenerateSystem(n int, seed uint64) *System {
	if seed == 0 {
		seed = 0xA5A5A5A55A5A5A5A
	}
	st := seed
	next := func() float64 {
		st ^= st << 13
		st ^= st >> 7
		st ^= st << 17
		return float64(st>>11) / float64(1<<53)
	}
	gauss := func() float64 {
		u1, u2 := next(), next()
		for u1 == 0 {
			u1 = next()
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
	s := &System{
		Box:    BoxSide,
		Cutoff: Cutoff,
		Pos:    make([]Vec3, n),
		Vel:    make([]Vec3, n),
		Acc:    make([]Vec3, n),
	}
	for i := 0; i < n; i++ {
		s.Pos[i] = Vec3{next() * s.Box, next() * s.Box, next() * s.Box}
		s.Vel[i] = Vec3{0.05 * gauss(), 0.05 * gauss(), 0.05 * gauss()}
	}
	return s
}

// minimumImage wraps a displacement component into [-box/2, box/2).
func minimumImage(d, box float64) float64 {
	if d >= box/2 {
		return d - box
	}
	if d < -box/2 {
		return d + box
	}
	return d
}

// displacement returns the minimum-image displacement from j to i.
func (s *System) displacement(i, j int) Vec3 {
	d := s.Pos[i].Sub(s.Pos[j])
	return Vec3{
		X: minimumImage(d.X, s.Box),
		Y: minimumImage(d.Y, s.Box),
		Z: minimumImage(d.Z, s.Box),
	}
}

// ljPair evaluates the Lennard-Jones force scalar and potential for a
// squared distance (sigma = epsilon = 1): F(r)/r = 24(2 r^-14 - r^-8),
// U(r) = 4(r^-12 - r^-6).
func ljPair(r2 float64) (fOverR, u float64) {
	inv2 := 1 / r2
	inv6 := inv2 * inv2 * inv2
	return 24 * inv2 * inv6 * (2*inv6 - 1), 4 * inv6 * (inv6 - 1)
}

// Forces is one force-engine evaluation: per-molecule accelerations
// (unit mass), the total potential energy, and the number of
// interacting (within-cutoff) pairs.
type Forces struct {
	Acc       []Vec3
	Potential float64
	Pairs     int64
}

// ForcesAllPairs evaluates Lennard-Jones forces with the O(N^2)
// all-pairs method — the shape of the ORNL serial baseline whose
// measured runtime anchors the worksheet's t_soft.
func ForcesAllPairs(s *System) Forces {
	n := s.N()
	f := Forces{Acc: make([]Vec3, n)}
	rc2 := s.Cutoff * s.Cutoff
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := s.displacement(i, j)
			r2 := d.Dot(d)
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			fr, u := s.pairInteraction(i, j, r2)
			f.Acc[i] = f.Acc[i].Add(d.Scale(fr))
			f.Acc[j] = f.Acc[j].Sub(d.Scale(fr))
			f.Potential += u
			f.Pairs++
		}
	}
	return f
}

// cellIndex maps a coordinate to its cell along one axis.
func cellIndex(x float64, cells int, box float64) int {
	i := int(x / box * float64(cells))
	if i < 0 {
		i = 0
	}
	if i >= cells {
		i = cells - 1
	}
	return i
}

// buildCells bins molecules into a cells^3 grid with cell edge >=
// cutoff.
func buildCells(s *System) (cells int, bins [][]int32) {
	cells = int(s.Box / s.Cutoff)
	if cells < 1 {
		cells = 1
	}
	bins = make([][]int32, cells*cells*cells)
	for i, p := range s.Pos {
		cx := cellIndex(p.X, cells, s.Box)
		cy := cellIndex(p.Y, cells, s.Box)
		cz := cellIndex(p.Z, cells, s.Box)
		c := (cz*cells+cy)*cells + cx
		bins[c] = append(bins[c], int32(i))
	}
	return cells, bins
}

// forEachNeighborCell visits the 27 periodic neighbour cells of
// (cx,cy,cz).
func forEachNeighborCell(cells int, cx, cy, cz int, visit func(c int)) {
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx := (cx + dx + cells) % cells
				ny := (cy + dy + cells) % cells
				nz := (cz + dz + cells) % cells
				visit((nz*cells+ny)*cells + nx)
			}
		}
	}
}

// ForcesCellList evaluates the same forces with a cell list — O(N) for
// fixed density. With a box only a few cutoffs wide the periodic cell
// walk can visit a pair twice, so interactions are accumulated i->j
// one-sidedly (no half-pair trick), which keeps it exact for any
// cells >= 1.
func ForcesCellList(s *System) Forces {
	n := s.N()
	f := Forces{Acc: make([]Vec3, n)}
	rc2 := s.Cutoff * s.Cutoff
	cells, bins := buildCells(s)
	for i := 0; i < n; i++ {
		p := s.Pos[i]
		cx := cellIndex(p.X, cells, s.Box)
		cy := cellIndex(p.Y, cells, s.Box)
		cz := cellIndex(p.Z, cells, s.Box)
		seen := map[int]bool{}
		forEachNeighborCell(cells, cx, cy, cz, func(c int) {
			if seen[c] {
				return
			}
			seen[c] = true
			for _, j32 := range bins[c] {
				j := int(j32)
				if j == i {
					continue
				}
				d := s.displacement(i, j)
				r2 := d.Dot(d)
				if r2 >= rc2 || r2 == 0 {
					continue
				}
				fr, u := s.pairInteraction(i, j, r2)
				f.Acc[i] = f.Acc[i].Add(d.Scale(fr))
				f.Potential += u / 2 // each pair visited from both ends
				f.Pairs++            // directed count; halve for pair count
			}
		})
	}
	f.Pairs /= 2
	return f
}

// NeighborCounts returns, for each molecule, how many others sit
// within the cutoff — the data-locality profile that drives the
// simulated hardware's data-dependent cycle count.
func NeighborCounts(s *System) []int {
	counts := make([]int, s.N())
	rc2 := s.Cutoff * s.Cutoff
	cells, bins := buildCells(s)
	for i := range counts {
		p := s.Pos[i]
		cx := cellIndex(p.X, cells, s.Box)
		cy := cellIndex(p.Y, cells, s.Box)
		cz := cellIndex(p.Z, cells, s.Box)
		seen := map[int]bool{}
		forEachNeighborCell(cells, cx, cy, cz, func(c int) {
			if seen[c] {
				return
			}
			seen[c] = true
			for _, j32 := range bins[c] {
				j := int(j32)
				if j == i {
					continue
				}
				d := s.displacement(i, j)
				if r2 := d.Dot(d); r2 < rc2 && r2 > 0 {
					counts[i]++
				}
			}
		})
	}
	return counts
}

// Step advances the system one velocity-Verlet timestep using the
// given force engine, returning the evaluation it performed.
func Step(s *System, dt float64, engine func(*System) Forces) Forces {
	n := s.N()
	half := dt / 2
	for i := 0; i < n; i++ {
		s.Vel[i] = s.Vel[i].Add(s.Acc[i].Scale(half))
		s.Pos[i] = s.Pos[i].Add(s.Vel[i].Scale(dt))
		// Wrap into the periodic box.
		s.Pos[i].X = wrap(s.Pos[i].X, s.Box)
		s.Pos[i].Y = wrap(s.Pos[i].Y, s.Box)
		s.Pos[i].Z = wrap(s.Pos[i].Z, s.Box)
	}
	f := engine(s)
	for i := 0; i < n; i++ {
		s.Acc[i] = f.Acc[i]
		s.Vel[i] = s.Vel[i].Add(s.Acc[i].Scale(half))
	}
	return f
}

func wrap(x, box float64) float64 {
	x = math.Mod(x, box)
	if x < 0 {
		x += box
	}
	return x
}

// KineticEnergy returns the total kinetic energy (unit masses).
func (s *System) KineticEnergy() float64 {
	var k float64
	for _, v := range s.Vel {
		k += v.Dot(v) / 2
	}
	return k
}

// Hardware timing model, calibrated to the paper's measured t_comp =
// 8.79E-1 s at 100 MHz for the 16384-molecule dataset (Table 9). Each
// of the Pipelines force units streams every partner position at one
// per cycle; pairs passing the cutoff occupy the deep force pipeline
// for CyclesPerNearPair extra cycles (back-pressure), and each
// molecule pays a fixed bookkeeping overhead.
const (
	Pipelines         = 4
	CyclesPerNearPair = 19
	MoleculeOverhead  = 40
)

// KernelCycles returns the data-dependent cycle count of the simulated
// hardware for one full-system force evaluation, given the dataset's
// neighbour profile.
func KernelCycles(neighborCounts []int) int64 {
	n := int64(len(neighborCounts))
	var total int64
	for _, nb := range neighborCounts {
		total += n + int64(CyclesPerNearPair)*int64(nb) + MoleculeOverhead
	}
	// Molecules are distributed across the parallel force units.
	return (total + Pipelines - 1) / Pipelines
}

// Design describes one force pipeline set for the resource test: the
// squared-distance stage (three subtracts, three squares), the
// Lennard-Jones power chain (reciprocal, powers and force scalar) and
// the three force accumulators, in 32-bit fixed point on the
// Stratix-II's 9-bit DSP accounting. Four pipelines consume all 768
// 9-bit elements — the multiplier exhaustion that "ultimately limited"
// the design's parallelism (Section 3.3).
func Design() kernel.Design {
	return kernel.Design{
		Name:      "molecular dynamics (LJ force pipelines)",
		Pipelines: Pipelines,
		Units: []kernel.Unit{
			{Op: resource.OpAdd, Width: 32}, // dx
			{Op: resource.OpAdd, Width: 32}, // dy
			{Op: resource.OpAdd, Width: 32}, // dz
			{Op: resource.OpMul, Width: 32}, // dx^2
			{Op: resource.OpMul, Width: 32}, // dy^2
			{Op: resource.OpMul, Width: 32}, // dz^2
			{Op: resource.OpAdd, Width: 32}, // r^2 reduce
			{Op: resource.OpAdd, Width: 32}, // r^2 reduce
			{Op: resource.OpDiv, Width: 32}, // r^-2
			{Op: resource.OpMul, Width: 32}, // r^-4
			{Op: resource.OpMul, Width: 32}, // r^-6
			{Op: resource.OpMul, Width: 32}, // r^-8
			{Op: resource.OpMul, Width: 32}, // r^-12 partial
			{Op: resource.OpMul, Width: 32}, // r^-14 partial
			{Op: resource.OpMul, Width: 32}, // force scalar
			{Op: resource.OpMAC, Width: 32}, // Fx accumulate
			{Op: resource.OpMAC, Width: 32}, // Fy accumulate
			{Op: resource.OpMAC, Width: 32}, // Fz accumulate
		},
		CountedOps:      10, // the worksheet's per-pair operation scope
		ItemsPerElement: Molecules,
		ItemsPerCycle:   1,
		PipelineDepth:   40,
		ElementStall:    0,
		BatchOverhead:   MoleculeOverhead,
		ElementBits:     BytesPerElement * 8,
		StateBits:       0, // molecule state lives in the I/O buffer
	}
}

// Worksheet reproduces Table 8. N_ops/element and throughput_proc are
// the paper's own figures: the operation count is an estimate (the
// data dependence makes it unknowable a priori) and 50 ops/cycle is
// the value solved from the ~10x speedup goal and rounded up —
// core.SolveThroughputProc reproduces the 46.7 it came from.
func Worksheet() core.Parameters {
	return core.Parameters{
		Name: "molecular dynamics",
		Dataset: core.DatasetParams{
			ElementsIn:      Molecules,
			ElementsOut:     Molecules,
			BytesPerElement: BytesPerElement,
		},
		Comm: core.CommParams{
			// The XD1000 worksheet used the documented 500 MB/s
			// with an estimated 0.9 sustained fraction; the real
			// link is faster (see platform.XtremeDataXD1000).
			IdealThroughput: core.MBps(500),
			AlphaWrite:      0.9,
			AlphaRead:       0.9,
		},
		Comp: core.CompParams{
			OpsPerElement:  164000,
			ThroughputProc: 50,
			ClockHz:        core.MHz(150),
		},
		Soft: core.SoftwareParams{
			TSoft:      paper.MDTSoft, // 2.2 GHz Opteron baseline published with the study
			Iterations: 1,
		},
	}
}

// ErrSystemSize rejects scenario construction with a system whose size
// disagrees with the worksheet geometry.
var ErrSystemSize = errors.New("md: system size does not match the worksheet geometry")

// Scenario builds the simulated XD1000 run for the given dataset. The
// kernel's cycle count is computed from the dataset's actual neighbour
// profile, so the measured computation time is data-dependent exactly
// as the paper describes.
func Scenario(s *System, clockHz float64, b core.Buffering) (rcsim.Scenario, error) {
	if s.N() != Molecules {
		return rcsim.Scenario{}, fmt.Errorf("%w: %d molecules, want %d", ErrSystemSize, s.N(), Molecules)
	}
	cycles := KernelCycles(NeighborCounts(s))
	return rcsim.Scenario{
		Name:            "md",
		Platform:        platform.XtremeDataXD1000(),
		ClockHz:         clockHz,
		Buffering:       b,
		Iterations:      1,
		ElementsIn:      Molecules,
		ElementsOut:     Molecules,
		BytesPerElement: BytesPerElement,
		KernelCycles: func(_, _ int) int64 {
			return cycles
		},
	}, nil
}

// ResourceReport runs the resource test on the EP2S180 (Table 10).
func ResourceReport() (resource.Report, error) {
	dev := platform.XtremeDataXD1000().Device
	demand, err := Design().ResourceDemand(dev, Molecules, false)
	if err != nil {
		return resource.Report{}, err
	}
	return resource.Check(dev, demand), nil
}
