package md

import (
	"runtime"
	"sync"
)

// ForcesParallel evaluates the same forces as ForcesCellList across
// all CPU cores. The one-sided accumulation (each molecule sums its
// own incoming interactions) makes rows independent, so molecules
// partition across workers with no locking on the hot path; each
// worker keeps a private potential/pair tally merged at the end.
//
// The result is bit-identical to ForcesCellList for every molecule's
// acceleration (same per-row summation order) and for the pair count;
// only the global potential may differ in the last few ULPs because
// per-worker partial sums merge in a different order.
//
// This is the baseline a library user would actually time t_soft
// against on a modern multicore host; the paper's serial ORNL code
// predates that concern.
func ForcesParallel(s *System) Forces {
	n := s.N()
	f := Forces{Acc: make([]Vec3, n)}
	rc2 := s.Cutoff * s.Cutoff
	cells, bins := buildCells(s)

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	type tally struct {
		potential float64
		pairs     int64
	}
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := &tallies[w]
			seen := map[int]bool{}
			for i := lo; i < hi; i++ {
				p := s.Pos[i]
				cx := cellIndex(p.X, cells, s.Box)
				cy := cellIndex(p.Y, cells, s.Box)
				cz := cellIndex(p.Z, cells, s.Box)
				clear(seen)
				forEachNeighborCell(cells, cx, cy, cz, func(c int) {
					if seen[c] {
						return
					}
					seen[c] = true
					for _, j32 := range bins[c] {
						j := int(j32)
						if j == i {
							continue
						}
						d := s.displacement(i, j)
						r2 := d.Dot(d)
						if r2 >= rc2 || r2 == 0 {
							continue
						}
						fr, u := s.pairInteraction(i, j, r2)
						f.Acc[i] = f.Acc[i].Add(d.Scale(fr))
						t.potential += u / 2
						t.pairs++
					}
				})
			}
		}()
	}
	wg.Wait()
	for _, t := range tallies {
		f.Potential += t.potential
		f.Pairs += t.pairs
	}
	f.Pairs /= 2
	return f
}
