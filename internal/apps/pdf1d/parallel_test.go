package pdf1d_test

import (
	"testing"

	"github.com/chrec/rat/internal/apps/pdf1d"
)

// TestParallelEstimateBitIdentical: bins are independent sums, so the
// parallel estimate is bit-identical to the serial one.
func TestParallelEstimateBitIdentical(t *testing.T) {
	samples := pdf1d.GenerateSamples(8192, 3)
	p := pdf1d.DefaultParams()
	for _, nbins := range []int{1, 3, 64, 256} {
		bins := pdf1d.BinCenters(nbins)
		serial := pdf1d.EstimateFloat(samples, bins, p)
		parallel := pdf1d.EstimateFloatParallel(samples, bins, p)
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("nbins=%d bin %d: %g vs %g", nbins, i, serial[i], parallel[i])
			}
		}
	}
}

func BenchmarkEstimateFloatSerial(b *testing.B) {
	samples := pdf1d.GenerateSamples(4096, 3)
	bins := pdf1d.BinCenters(pdf1d.Bins)
	p := pdf1d.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pdf1d.EstimateFloat(samples, bins, p)
	}
}

func BenchmarkEstimateFloatParallel(b *testing.B) {
	samples := pdf1d.GenerateSamples(4096, 3)
	bins := pdf1d.BinCenters(pdf1d.Bins)
	p := pdf1d.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pdf1d.EstimateFloatParallel(samples, bins, p)
	}
}

func BenchmarkEstimateFixed18(b *testing.B) {
	samples := pdf1d.GenerateSamples(1024, 3)
	bins := pdf1d.BinCenters(pdf1d.Bins)
	p := pdf1d.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pdf1d.EstimateFixed(samples, bins, p, pdf1d.HW18())
	}
}
