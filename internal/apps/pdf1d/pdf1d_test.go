package pdf1d_test

import (
	"math"
	"testing"

	"github.com/chrec/rat/internal/apps/pdf1d"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/resource"
)

func TestWorksheetReproducesTable2(t *testing.T) {
	got := pdf1d.Worksheet()
	want := paper.PDF1DParams()
	if got.Dataset != want.Dataset {
		t.Errorf("dataset params %+v, want %+v", got.Dataset, want.Dataset)
	}
	if got.Comm != want.Comm {
		t.Errorf("comm params %+v, want %+v", got.Comm, want.Comm)
	}
	if got.Comp != want.Comp {
		t.Errorf("comp params %+v, want %+v", got.Comp, want.Comp)
	}
	if got.Soft != want.Soft {
		t.Errorf("soft params %+v, want %+v", got.Soft, want.Soft)
	}
}

func TestDesignDerivations(t *testing.T) {
	d := pdf1d.Design()
	if err := d.Validate(); err != nil {
		t.Fatalf("design invalid: %v", err)
	}
	if got := d.OpsPerElement(); got != 768 {
		t.Errorf("OpsPerElement = %g, want 768", got)
	}
	if got := d.IdealThroughputProc(); got != 24 {
		t.Errorf("ideal throughput = %g, want 24 (8 pipelines x 3 ops)", got)
	}
	if got := d.WorksheetThroughputProc(); got != 20 {
		t.Errorf("worksheet throughput = %g, want 20 (conservative derate)", got)
	}
	// Calibrated batch timing: 20850 cycles for 512 elements.
	if got := d.CyclesForBatch(pdf1d.BatchElements); got != 20850 {
		t.Errorf("CyclesForBatch(512) = %d, want 20850", got)
	}
	// Effective sustained rate sits between nothing and ideal, below
	// the conservative estimate: ~18.9 ops/cycle.
	eff := d.EffectiveThroughputProc(pdf1d.BatchElements)
	if eff < 18.5 || eff > 19.2 {
		t.Errorf("effective ops/cycle = %.2f, want ~18.9", eff)
	}
}

// TestSimulatedHardwareReproducesTable3Actual: the simulated Nallatech
// run at 150 MHz must land on the paper's measured column: t_comp =
// 1.39E-4 s, t_comm = 2.50E-5 s, t_RC ~ 7.45E-2 s (ours lacks only the
// host-side residue the paper's direct FPGA measurement includes),
// speedup ~ 7.8.
func TestSimulatedHardwareReproducesTable3Actual(t *testing.T) {
	m := rcsim.MustRun(pdf1d.Scenario(core.MHz(150), core.SingleBuffered))
	actual := paper.ActualRow(paper.PDF1D)

	if got := m.TComp(); math.Abs(got-actual.TComp) > 0.01*actual.TComp {
		t.Errorf("simulated t_comp = %.4e, paper measured %.3e", got, actual.TComp)
	}
	if got := m.TComm(); math.Abs(got-actual.TComm) > 0.02*actual.TComm {
		t.Errorf("simulated t_comm = %.4e, paper measured %.3e", got, actual.TComm)
	}
	// The paper's total was measured directly from the FPGA and runs
	// ~14% above the sum of its parts; ours is the sum of its parts.
	if got := m.TRC(); got < 0.8*actual.TRC || got > 1.05*actual.TRC {
		t.Errorf("simulated t_RC = %.4e, paper measured %.3e", got, actual.TRC)
	}
	speedup := m.Speedup(pdf1d.Worksheet().Soft.TSoft)
	if speedup < 7.5 || speedup < actual.Speedup*0.9 || speedup > actual.Speedup*1.2 {
		t.Errorf("simulated speedup = %.2f, paper measured %.1f", speedup, actual.Speedup)
	}
	// Measured communication utilization ~15%.
	if got := m.UtilComm(); math.Abs(got-actual.UtilComm) > 0.025 {
		t.Errorf("simulated util_comm = %.3f, paper measured %.2f", got, actual.UtilComm)
	}
}

// TestPredictionErrorShape: reproduce the paper's error narrative —
// computation predicted within a few percent, communication
// underestimated by roughly 4.5x, overall speedup overpredicted.
func TestPredictionErrorShape(t *testing.T) {
	pr := core.MustPredict(pdf1d.Worksheet()) // 150 MHz
	m := rcsim.MustRun(pdf1d.Scenario(core.MHz(150), core.SingleBuffered))

	compErr := math.Abs(m.TComp()-pr.TComp) / m.TComp()
	if compErr > 0.10 {
		t.Errorf("computation prediction error %.1f%%, paper found ~6%%", compErr*100)
	}
	commRatio := m.TComm() / pr.TComm
	if commRatio < 3 || commRatio > 6 {
		t.Errorf("measured/predicted comm ratio = %.2f, paper's was ~4.5", commRatio)
	}
	if pr.SpeedupSingle <= m.Speedup(pdf1d.Worksheet().Soft.TSoft) {
		t.Error("prediction should be optimistic for this design (10.6 predicted vs 7.8 measured)")
	}
}

func TestEstimateFloatBasics(t *testing.T) {
	samples := pdf1d.GenerateSamples(4096, 1)
	bins := pdf1d.BinCenters(pdf1d.Bins)
	p := pdf1d.DefaultParams()
	est := pdf1d.EstimateFloat(samples, bins, p)
	if len(est) != pdf1d.Bins {
		t.Fatalf("estimate length %d", len(est))
	}
	var sum, peak float64
	peakIdx := 0
	for i, v := range est {
		if v < 0 {
			t.Fatalf("negative density at bin %d", i)
		}
		sum += v
		if v > peak {
			peak, peakIdx = v, i
		}
	}
	if sum == 0 {
		t.Fatal("estimate is identically zero")
	}
	// The mixture's dominant mode sits near -0.35: bin index ~ (x+1)/2*256.
	wantIdx := int(math.Round((-0.35 + 1) / 2 * 256))
	if peakIdx < wantIdx-16 || peakIdx > wantIdx+16 {
		t.Errorf("density peak at bin %d, want near %d", peakIdx, wantIdx)
	}
}

func TestGenerateSamplesDeterministicAndBounded(t *testing.T) {
	a := pdf1d.GenerateSamples(1000, 7)
	b := pdf1d.GenerateSamples(1000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator is not deterministic")
		}
		if a[i] <= -1 || a[i] >= 1 {
			t.Fatalf("sample %g outside (-1, 1)", a[i])
		}
	}
	c := pdf1d.GenerateSamples(1000, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 100 {
		t.Error("different seeds produced nearly identical streams")
	}
	// Zero seed falls back to a fixed default.
	if z := pdf1d.GenerateSamples(10, 0); len(z) != 10 {
		t.Error("zero seed broken")
	}
}

func TestBinCenters(t *testing.T) {
	bins := pdf1d.BinCenters(256)
	if len(bins) != 256 {
		t.Fatalf("len = %d", len(bins))
	}
	if bins[0] != -1+1.0/256 || bins[255] != 1-1.0/256 {
		t.Errorf("end centers %g, %g", bins[0], bins[255])
	}
	for i := 1; i < len(bins); i++ {
		if bins[i] <= bins[i-1] {
			t.Fatal("bin centers not increasing")
		}
	}
}

// TestFixedPointErrorMatchesPaperClaim: the 18-bit fixed-point design's
// maximum error against the float64 reference is about 2% of the
// density peak — "the maximum error percentage was only ~2% for 18-bit
// fixed point which is satisfactory precision for the application"
// (Section 4.2).
func TestFixedPointErrorMatchesPaperClaim(t *testing.T) {
	samples := pdf1d.GenerateSamples(8192, 3)
	bins := pdf1d.BinCenters(pdf1d.Bins)
	p := pdf1d.DefaultParams()
	ref := pdf1d.EstimateFloat(samples, bins, p)
	got := pdf1d.EstimateFixed(samples, bins, p, pdf1d.HW18())
	err18 := pdf1d.MaxError(ref, got)
	if err18 < 0.005 || err18 > 0.04 {
		t.Errorf("18-bit max error = %.4f, want ~0.02 (the paper's ~2%%)", err18)
	}
	// 32-bit fixed cuts the error well below 18-bit.
	got32 := pdf1d.EstimateFixed(samples, bins, p, pdf1d.HW32())
	err32 := pdf1d.MaxError(ref, got32)
	if err32 >= err18/2 {
		t.Errorf("32-bit error %.5f not well below 18-bit %.5f", err32, err18)
	}
}

// TestFloat32Error: single precision is far more accurate than any
// fixed-point candidate but never bit-exact against float64.
func TestFloat32Error(t *testing.T) {
	samples := pdf1d.GenerateSamples(4096, 3)
	bins := pdf1d.BinCenters(pdf1d.Bins)
	p := pdf1d.DefaultParams()
	ref := pdf1d.EstimateFloat(samples, bins, p)
	got := pdf1d.EstimateFloat32(samples, bins, p)
	err32 := pdf1d.MaxError(ref, got)
	if err32 <= 0 || err32 > 1e-4 {
		t.Errorf("float32 max error = %g, want tiny but nonzero", err32)
	}
	fixed18 := pdf1d.MaxError(ref, pdf1d.EstimateFixed(samples, bins, p, pdf1d.HW18()))
	if err32 >= fixed18/10 {
		t.Errorf("float32 error %g should be far below 18-bit fixed %g", err32, fixed18)
	}
}

func TestConfigForWidth(t *testing.T) {
	if _, err := pdf1d.ConfigForWidth(9); err == nil {
		t.Error("width 9 must be rejected")
	}
	if _, err := pdf1d.ConfigForWidth(33); err == nil {
		t.Error("width 33 must be rejected")
	}
	c18, err := pdf1d.ConfigForWidth(18)
	if err != nil || c18 != pdf1d.HW18() {
		t.Errorf("ConfigForWidth(18) = %+v, %v; want HW18", c18, err)
	}
	c10, err := pdf1d.ConfigForWidth(10)
	if err != nil || c10.LUTBits != 8 {
		t.Errorf("ConfigForWidth(10) = %+v, %v; want 8 LUT bits (clamped)", c10, err)
	}
	c32, err := pdf1d.ConfigForWidth(32)
	if err != nil || c32.LUTBits != 12 {
		t.Errorf("ConfigForWidth(32) = %+v, %v; want 12 LUT bits (clamped)", c32, err)
	}
}

func TestMaxErrorEdgeCases(t *testing.T) {
	if got := pdf1d.MaxError([]float64{0, 0}, []float64{0, 0}); got != 0 {
		t.Errorf("zero-reference MaxError = %g", got)
	}
	if got := pdf1d.MaxError([]float64{1, 2}, []float64{1, 2.2}); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MaxError = %g, want 0.1", got)
	}
}

// TestResourceReportShape: the Table 4 picture — low overall usage
// with BRAM the leading class; the design fits with ample headroom for
// more parallel kernels ("the relatively low resource usage ...
// illustrates a potential for further speedup").
func TestResourceReportShape(t *testing.T) {
	rep, err := pdf1d.ResourceReport()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fits {
		t.Fatalf("design must fit the LX100: %+v", rep)
	}
	for _, row := range paper.ResourceTable(paper.PDF1D) {
		var k resource.Kind
		switch row.Resource {
		case "48-bit DSPs":
			k = resource.DSP
		case "BRAMs":
			k = resource.BRAM
		default:
			k = resource.Logic
		}
		got := rep.Utilization(k)
		if math.Abs(got-row.Utilization) > 0.05 {
			t.Errorf("%s utilization = %.3f, paper table has %.2f", row.Resource, got, row.Utilization)
		}
	}
	// Headroom: several more kernel replicas fit.
	dev := rep.Device
	perPipe, err := pdf1d.Design().ResourceDemand(dev, pdf1d.BatchElements, false)
	if err != nil {
		t.Fatal(err)
	}
	if n := resource.MaxReplicas(dev, resource.Demand{}, perPipe); n < 2 {
		t.Errorf("only %d full design replicas fit; expected comfortable headroom", n)
	}
}
