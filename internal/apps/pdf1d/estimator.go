package pdf1d

import (
	"fmt"
	"math"

	"github.com/chrec/rat/internal/fixed"
)

// FixedEstimator mirrors the hardware's execution structure: batches
// of samples stream in iteration by iteration while per-bin running
// totals accumulate on chip ("internal registering for each bin keeps
// a running total of the impact of all processed elements"); the
// estimate reads out once at the end, exactly like the 1-D design's
// single final result transfer.
//
// Feeding the full dataset through ProcessBatch in 512-element batches
// produces bit-identical results to the monolithic EstimateFixed call
// — the numerical property that lets the paper treat batching as a
// pure communication-scheduling decision.
type FixedEstimator struct {
	cfg      HWConfig
	params   Params
	lut      []fixed.Value
	scaleFx  fixed.Value
	preScale float64
	qbins    []fixed.Value
	accs     []*fixed.Acc
	batches  int
	samples  int
}

// NewFixedEstimator prepares the datapath for the given bin centers.
func NewFixedEstimator(bins []float64, p Params, cfg HWConfig) (*FixedEstimator, error) {
	if len(bins) == 0 {
		return nil, fmt.Errorf("pdf1d: estimator needs at least one bin")
	}
	if !cfg.Format.Valid() || cfg.LUTBits < 1 || cfg.LUTBits >= cfg.Format.Width() {
		return nil, fmt.Errorf("pdf1d: invalid hardware configuration %+v", cfg)
	}
	e := &FixedEstimator{
		cfg:      cfg,
		params:   p,
		lut:      gaussianLUT(cfg, p),
		preScale: math.Exp2(math.Floor(math.Log2(1 / p.Scale))),
		qbins:    make([]fixed.Value, len(bins)),
		accs:     make([]*fixed.Acc, len(bins)),
	}
	e.scaleFx = fixed.MustFromFloat(p.Scale*e.preScale, cfg.Format, fixed.Nearest)
	for i, c := range bins {
		e.qbins[i] = fixed.MustFromFloat(c, cfg.Format, fixed.Nearest)
	}
	for i := range e.accs {
		e.accs[i] = fixed.MustNewAcc(cfg.Format.Frac, cfg.Format.Frac+22)
	}
	return e, nil
}

// ProcessBatch streams one iteration's samples through the datapath.
func (e *FixedEstimator) ProcessBatch(samples []float64) {
	for _, x := range samples {
		qx, _ := fixed.FromFloat(x, e.cfg.Format, fixed.Nearest, fixed.Saturate)
		for b, c := range e.qbins {
			d, _ := fixed.Sub(qx, c, fixed.Saturate)
			g := e.lut[lutIndex(d, e.cfg)]
			prod, _ := fixed.Mul(g, e.scaleFx, e.cfg.Format, fixed.Nearest, fixed.Saturate)
			e.accs[b].AddValue(prod)
		}
	}
	e.batches++
	e.samples += len(samples)
}

// Estimate reads out the accumulated per-bin totals (the final result
// transfer), without disturbing the accumulators.
func (e *FixedEstimator) Estimate() []float64 {
	out := make([]float64, len(e.accs))
	for i, a := range e.accs {
		out[i] = a.Float() / e.preScale
	}
	return out
}

// Reset clears the running totals for a fresh run.
func (e *FixedEstimator) Reset() {
	for _, a := range e.accs {
		a.Reset()
	}
	e.batches, e.samples = 0, 0
}

// Batches returns how many batches have streamed through.
func (e *FixedEstimator) Batches() int { return e.batches }

// Samples returns how many samples have streamed through.
func (e *FixedEstimator) Samples() int { return e.samples }

// Overflowed reports whether any bin accumulator has wrapped — the
// saturation check a real design would surface as a status flag.
func (e *FixedEstimator) Overflowed() bool {
	for _, a := range e.accs {
		if a.Overflowed() {
			return true
		}
	}
	return false
}
