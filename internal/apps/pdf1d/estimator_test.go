package pdf1d_test

import (
	"testing"

	"github.com/chrec/rat/internal/apps/pdf1d"
)

// TestBatchedEqualsMonolithic: streaming the dataset through in
// 512-element batches (the hardware's execution structure) produces
// bit-identical results to one monolithic call — batching is purely a
// communication-scheduling decision, as the paper treats it.
func TestBatchedEqualsMonolithic(t *testing.T) {
	samples := pdf1d.GenerateSamples(4096, 3)
	bins := pdf1d.BinCenters(pdf1d.Bins)
	p := pdf1d.DefaultParams()
	cfg := pdf1d.HW18()

	mono := pdf1d.EstimateFixed(samples, bins, p, cfg)

	e, err := pdf1d.NewFixedEstimator(bins, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(samples); i += pdf1d.BatchElements {
		e.ProcessBatch(samples[i : i+pdf1d.BatchElements])
	}
	batched := e.Estimate()

	for i := range mono {
		if mono[i] != batched[i] {
			t.Fatalf("bin %d: monolithic %g != batched %g", i, mono[i], batched[i])
		}
	}
	if e.Batches() != 4096/pdf1d.BatchElements {
		t.Errorf("Batches = %d", e.Batches())
	}
	if e.Samples() != 4096 {
		t.Errorf("Samples = %d", e.Samples())
	}
	if e.Overflowed() {
		t.Error("canonical workload must not overflow the accumulators")
	}
}

// TestEstimateIsNonDestructive: reading the estimate twice yields the
// same values, and more batches keep accumulating.
func TestEstimateIsNonDestructive(t *testing.T) {
	bins := pdf1d.BinCenters(64)
	p := pdf1d.DefaultParams()
	e, err := pdf1d.NewFixedEstimator(bins, p, pdf1d.HW18())
	if err != nil {
		t.Fatal(err)
	}
	batch := pdf1d.GenerateSamples(512, 5)
	e.ProcessBatch(batch)
	a := e.Estimate()
	b := e.Estimate()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Estimate mutated state")
		}
	}
	e.ProcessBatch(batch)
	c := e.Estimate()
	var grew bool
	for i := range c {
		if c[i] > a[i] {
			grew = true
		}
		if c[i] < a[i] {
			t.Fatalf("bin %d shrank after more data", i)
		}
	}
	if !grew {
		t.Error("totals did not grow with a second batch")
	}
}

func TestEstimatorReset(t *testing.T) {
	bins := pdf1d.BinCenters(32)
	e, err := pdf1d.NewFixedEstimator(bins, pdf1d.DefaultParams(), pdf1d.HW18())
	if err != nil {
		t.Fatal(err)
	}
	e.ProcessBatch(pdf1d.GenerateSamples(256, 7))
	e.Reset()
	if e.Batches() != 0 || e.Samples() != 0 {
		t.Error("counters not cleared")
	}
	for i, v := range e.Estimate() {
		if v != 0 {
			t.Fatalf("bin %d = %g after reset", i, v)
		}
	}
}

func TestNewFixedEstimatorValidation(t *testing.T) {
	p := pdf1d.DefaultParams()
	if _, err := pdf1d.NewFixedEstimator(nil, p, pdf1d.HW18()); err == nil {
		t.Error("no bins accepted")
	}
	bad := pdf1d.HWConfig{LUTBits: 10} // zero Format
	if _, err := pdf1d.NewFixedEstimator(pdf1d.BinCenters(8), p, bad); err == nil {
		t.Error("invalid format accepted")
	}
	worse := pdf1d.HW18()
	worse.LUTBits = 25 // wider than the format
	if _, err := pdf1d.NewFixedEstimator(pdf1d.BinCenters(8), p, worse); err == nil {
		t.Error("oversized LUT accepted")
	}
}

func TestEstimateFixedPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EstimateFixed with invalid config must panic")
		}
	}()
	pdf1d.EstimateFixed([]float64{0}, []float64{0}, pdf1d.DefaultParams(), pdf1d.HWConfig{})
}
