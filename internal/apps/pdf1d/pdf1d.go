// Package pdf1d implements the paper's walkthrough case study (Section
// 4): one-dimensional probability-density-function estimation with the
// Parzen-window technique, in both a float64 software baseline and a
// bit-exact model of the fixed-point hardware design of Figure 3 —
// eight parallel pipelines, each evaluating one data sample against
// one probability bin per cycle through a subtract / table-lookup /
// multiply-accumulate datapath in 18-bit fixed point.
//
// The package supplies everything the three RAT tests consume:
//
//   - the algorithm itself (software baseline, for t_soft and as the
//     precision-test reference);
//   - the hardware design description (kernel.Design), from which the
//     worksheet's N_ops/element = 768 and throughput_proc = 20 derive;
//   - a cycle-accurate timing model for the simulated Nallatech
//     platform, calibrated to the paper's measured 1.39E-4 s per
//     batch at 150 MHz; and
//   - the numerical fixed-point evaluation used by the precision test
//     (the paper's "maximum error percentage was only ~2% for 18-bit
//     fixed point").
package pdf1d

import (
	"fmt"
	"math"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/fixed"
	"github.com/chrec/rat/internal/kernel"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/resource"
)

// Canonical problem geometry from Table 2 and Figure 3.
const (
	TotalSamples  = 204800 // full dataset
	BatchElements = 512    // elements per FPGA iteration
	Bins          = 256    // discrete probability levels
	Iterations    = TotalSamples / BatchElements
	Pipelines     = 8
	BinsPerPipe   = Bins / Pipelines
)

// Params holds the Parzen-window estimation parameters.
type Params struct {
	// Bandwidth is the Gaussian kernel bandwidth h; contributions
	// are exp(-d^2 / (2 h^2)).
	Bandwidth float64
	// Scale is the per-sample weight folded into every
	// contribution (1/(n*h*sqrt(2*pi)) for a normalized estimate).
	Scale float64
}

// DefaultParams returns the parameters used throughout the case study:
// a bandwidth wide enough to smooth across neighbouring bins and the
// normalizing scale for the full dataset.
func DefaultParams() Params {
	h := 0.12
	return Params{
		Bandwidth: h,
		Scale:     1 / (float64(TotalSamples) * h * math.Sqrt(2*math.Pi)),
	}
}

// GenerateSamples produces a deterministic synthetic dataset: n draws
// from a two-component Gaussian mixture, clamped to (-1, 1). The
// generator is a hand-rolled xorshift so results are identical across
// Go versions (math/rand's stream is not guaranteed stable).
func GenerateSamples(n int, seed uint64) []float64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	s := seed
	next := func() float64 { // uniform in [0, 1)
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s>>11) / float64(1<<53)
	}
	out := make([]float64, n)
	for i := range out {
		// Box-Muller from two uniforms.
		u1, u2 := next(), next()
		for u1 == 0 {
			u1 = next()
		}
		z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		x := -0.35 + 0.18*z // component A
		if next() < 0.4 {
			x = 0.45 + 0.10*z // component B
		}
		out[i] = math.Max(-0.999, math.Min(0.999, x))
	}
	return out
}

// BinCenters returns the discrete probability levels: bins points
// evenly spread over [-1, 1).
func BinCenters(bins int) []float64 {
	out := make([]float64, bins)
	step := 2.0 / float64(bins)
	for i := range out {
		out[i] = -1 + (float64(i)+0.5)*step
	}
	return out
}

// EstimateFloat is the software baseline: the float64 Parzen-window
// estimate over all samples, the code path whose measured runtime is
// the worksheet's t_soft and whose output is the precision-test
// reference.
func EstimateFloat(samples, bins []float64, p Params) []float64 {
	out := make([]float64, len(bins))
	inv := 1 / (2 * p.Bandwidth * p.Bandwidth)
	for _, x := range samples {
		for b, c := range bins {
			d := x - c
			out[b] += p.Scale * math.Exp(-d*d*inv)
		}
	}
	return out
}

// EstimateFloat32 evaluates the estimate in single precision — the
// "32-bit floating point" row of the Section 4.2 format trade study,
// computed for real rather than assumed: every operand, intermediate
// and accumulator is a float32, as an FPGA floating-point datapath
// would hold them.
func EstimateFloat32(samples, bins []float64, p Params) []float64 {
	acc := make([]float32, len(bins))
	inv := float32(1 / (2 * p.Bandwidth * p.Bandwidth))
	scale := float32(p.Scale)
	qbins := make([]float32, len(bins))
	for i, c := range bins {
		qbins[i] = float32(c)
	}
	for _, x := range samples {
		qx := float32(x)
		for b, c := range qbins {
			d := qx - c
			acc[b] += scale * float32(math.Exp(float64(-d*d*inv)))
		}
	}
	out := make([]float64, len(bins))
	for i, v := range acc {
		out[i] = float64(v)
	}
	return out
}

// HWConfig selects the numerical configuration of the hardware
// datapath: the fixed-point data format and the Gaussian lookup-table
// depth. The paper's trade study compares 18-bit fixed, 32-bit fixed
// and 32-bit floating point (Section 4.2).
type HWConfig struct {
	// Format is the datapath fixed-point format. The shipped design
	// uses Q2.16: 18 bits, matching one Xilinx 18x18 MAC per
	// multiplication.
	Format fixed.Format
	// LUTBits is the Gaussian table's address width; the table
	// holds 2^LUTBits entries spanning the format's full range,
	// each holding the kernel value at the cell's lower edge (the
	// cheap hardware choice; its one-sided error dominates the
	// fixed-point design's total error).
	LUTBits int
}

// HW18 returns the as-built configuration: 18-bit fixed point with a
// 1024-entry Gaussian table.
func HW18() HWConfig { return HWConfig{Format: fixed.Q(2, 16), LUTBits: 10} }

// HW32 returns the 32-bit fixed-point alternative considered during
// formulation: wider datapath and a 4096-entry table, costing two MAC
// units per multiply (Section 3.3's vendor rule).
func HW32() HWConfig { return HWConfig{Format: fixed.Q(2, 30), LUTBits: 12} }

// ConfigForWidth returns a configuration for an arbitrary datapath
// width between 10 and 32 bits, scaling the table depth with the
// width as a real design would (clamped to [8, 12] address bits).
func ConfigForWidth(width int) (HWConfig, error) {
	if width < 10 || width > 32 {
		return HWConfig{}, fmt.Errorf("pdf1d: datapath width %d outside [10, 32]", width)
	}
	lut := width - 8
	if lut > 12 {
		lut = 12
	}
	if lut < 8 {
		lut = 8
	}
	return HWConfig{Format: fixed.Q(2, width-2), LUTBits: lut}, nil
}

// gaussianLUT builds the table the hardware holds in BRAM: 2^bits
// entries over the format's representable range, each the kernel value
// at its cell's lower edge, quantized to the data format.
func gaussianLUT(cfg HWConfig, p Params) []fixed.Value {
	n := 1 << cfg.LUTBits
	lut := make([]fixed.Value, n)
	span := cfg.Format.MaxFloat() - cfg.Format.MinFloat()
	inv := 1 / (2 * p.Bandwidth * p.Bandwidth)
	for i := range lut {
		d := cfg.Format.MinFloat() + span*float64(i)/float64(n)
		lut[i] = fixed.MustFromFloat(math.Exp(-d*d*inv), cfg.Format, fixed.Nearest)
	}
	return lut
}

// lutIndex maps a fixed-point difference to its table cell: the top
// LUTBits of the raw two's-complement value, offset to unsigned.
func lutIndex(d fixed.Value, cfg HWConfig) int {
	shift := uint(cfg.Format.Width() - cfg.LUTBits)
	return int((d.Raw() - cfg.Format.MinRaw()) >> shift)
}

// EstimateFixed evaluates the estimate exactly as the hardware does:
// samples and bin centers quantized to the datapath format, the
// Gaussian read from the table, the scale applied through an 18x18
// (or wider) multiply, and per-bin running totals kept in 48-bit MAC
// accumulators. The returned values are the accumulator read-outs
// converted to float64 for comparison against EstimateFloat.
// The per-sample scale applied by the datapath is tiny (~1e-5);
// applying it per term would waste the dynamic range, so the hardware
// folds a power-of-two pre-scale into the multiplier operand and the
// host divides it back out of the final read-out — standard
// fixed-point practice. Running totals live in per-bin accumulators at
// the datapath's fraction width with 22 integer bits of headroom (the
// pre-scaled totals reach ~2^17); the multiplier output is rounded
// back to the datapath format before accumulation, and its unbiased
// rounding noise sits orders of magnitude below the table's one-sided
// error. See FixedEstimator for the streaming form.
func EstimateFixed(samples, bins []float64, p Params, cfg HWConfig) []float64 {
	e, err := NewFixedEstimator(bins, p, cfg)
	if err != nil {
		//rat:allow-panic Must-style convenience wrapper; invalid configurations are programming errors here
		panic(err)
	}
	e.ProcessBatch(samples)
	return e.Estimate()
}

// MaxError returns the maximum absolute difference between got and ref
// normalized by the reference peak — the "maximum error percentage"
// figure of Section 4.2.
func MaxError(ref, got []float64) float64 {
	var peak, worst float64
	for _, v := range ref {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		return 0
	}
	for i := range ref {
		if d := math.Abs(got[i] - ref[i]); d > worst {
			worst = d
		}
	}
	return worst / peak
}

// Design returns the Figure 3 architecture as a kernel description.
// The timing constants (fill depth, inter-element stall, batch control
// overhead) are calibrated to the measured hardware: 20850 cycles per
// 512-element batch, i.e. 1.39E-4 s at 150 MHz (Table 3's actual
// column), an effective 18.9 ops/cycle against the worksheet's
// conservative 20 and the ideal 24.
func Design() kernel.Design {
	return kernel.Design{
		Name:      "1-D PDF estimation (Parzen windows)",
		Pipelines: Pipelines,
		Units: []kernel.Unit{
			{Op: resource.OpAdd, Width: 18}, // compare (subtract)
			{Op: resource.OpLUT, Width: 18}, // Gaussian table (not an "op" in the paper's count)
			{Op: resource.OpMAC, Width: 18}, // multiply + accumulate
		},
		CountedOps:      3, // compare, multiply, add (Section 4.2)
		ItemsPerElement: Bins,
		ItemsPerCycle:   1,
		PipelineDepth:   18,
		ElementStall:    8,
		BatchOverhead:   352,
		Derating:        20.0 / 24.0,
		ElementBits:     32, // interconnect word, wider than the 18-bit datapath
		StateBits:       48, // MAC accumulator per bin
	}
}

// opsPerElement counts only the paper's three arithmetic operations
// per (element, bin) — compare, multiply, add — excluding the table
// lookup, matching Table 2's N_ops/element = 768.
const opsPerItem = 3

// Worksheet assembles the RAT input worksheet the way Section 4.2
// does: geometry from the dataset, alphas from the 2 KB interconnect
// microbenchmark (rounded to two decimals, as tabulated), operation
// counts from the design, the conservative throughput_proc, and the
// published software baseline. It reproduces Table 2 exactly.
func Worksheet() core.Parameters {
	ic := platform.NallatechH101().Interconnect
	round2 := func(x float64) float64 { return math.Round(x*100) / 100 }
	d := Design()
	return core.Parameters{
		Name: "1-D PDF estimation",
		Dataset: core.DatasetParams{
			ElementsIn:      BatchElements,
			ElementsOut:     1,
			BytesPerElement: 4,
		},
		Comm: core.CommParams{
			IdealThroughput: ic.IdealBps,
			AlphaWrite:      round2(ic.MeasureAlpha(platform.Write, BatchElements*4)),
			AlphaRead:       round2(ic.MeasureAlpha(platform.Read, BatchElements*4)),
		},
		Comp: core.CompParams{
			OpsPerElement:  float64(Bins * opsPerItem),
			ThroughputProc: d.WorksheetThroughputProc(),
			ClockHz:        core.MHz(150),
		},
		Soft: core.SoftwareParams{
			TSoft:      paper.PDF1DParams().Soft.TSoft, // 3.2 GHz Xeon measurement published with the study
			Iterations: Iterations,
		},
	}
}

// Scenario builds the simulated-platform run that stands in for the
// paper's hardware measurement at the given clock and buffering.
func Scenario(clockHz float64, b core.Buffering) rcsim.Scenario {
	d := Design()
	return rcsim.Scenario{
		Name:            "pdf1d",
		Platform:        platform.NallatechH101(),
		ClockHz:         clockHz,
		Buffering:       b,
		Iterations:      Iterations,
		ElementsIn:      BatchElements,
		ElementsOut:     1,
		BytesPerElement: 4,
		KernelCycles: func(_, elements int) int64 {
			return d.CyclesForBatch(elements)
		},
	}
}

// ResourceReport runs the resource test for the design on the
// platform's Virtex-4 LX100, single-buffered (Table 4).
func ResourceReport() (resource.Report, error) {
	dev := platform.NallatechH101().Device
	demand, err := Design().ResourceDemand(dev, BatchElements, false)
	if err != nil {
		return resource.Report{}, err
	}
	return resource.Check(dev, demand), nil
}
