package pdf1d

import (
	"math"
	"runtime"
	"sync"
)

// EstimateFloatParallel computes the same estimate as EstimateFloat
// with the bins partitioned across all CPU cores — each bin's total is
// an independent sum over the samples, so workers share nothing and
// every bin's result is bit-identical to the serial evaluation (same
// per-bin summation order).
//
// This is the form a library user times on a multicore host for a
// realistic modern t_soft; the paper's 2007 Xeon baseline was serial.
func EstimateFloatParallel(samples, bins []float64, p Params) []float64 {
	out := make([]float64, len(bins))
	inv := 1 / (2 * p.Bandwidth * p.Bandwidth)

	workers := runtime.GOMAXPROCS(0)
	if workers > len(bins) {
		workers = len(bins)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(bins) * w / workers
		hi := len(bins) * (w + 1) / workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := lo; b < hi; b++ {
				c := bins[b]
				var sum float64
				for _, x := range samples {
					d := x - c
					sum += p.Scale * math.Exp(-d*d*inv)
				}
				out[b] = sum
			}
		}()
	}
	wg.Wait()
	return out
}
