package pdf2d_test

import (
	"math"
	"testing"

	"github.com/chrec/rat/internal/apps/pdf1d"
	"github.com/chrec/rat/internal/apps/pdf2d"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/resource"
)

func TestWorksheetReproducesTable5(t *testing.T) {
	got := pdf2d.Worksheet()
	want := paper.PDF2DParams()
	if got.Dataset != want.Dataset {
		t.Errorf("dataset params %+v, want %+v", got.Dataset, want.Dataset)
	}
	if got.Comm != want.Comm {
		t.Errorf("comm params %+v, want %+v", got.Comm, want.Comm)
	}
	if got.Comp != want.Comp {
		t.Errorf("comp params %+v, want %+v", got.Comp, want.Comp)
	}
	if got.Soft != want.Soft {
		t.Errorf("soft params %+v, want %+v", got.Soft, want.Soft)
	}
}

func TestDesignDerivations(t *testing.T) {
	d := pdf2d.Design()
	if err := d.Validate(); err != nil {
		t.Fatalf("design invalid: %v", err)
	}
	if got := d.OpsPerElement(); got != 393216 {
		t.Errorf("OpsPerElement = %g, want 393216", got)
	}
	if got := d.WorksheetThroughputProc(); got != 48 {
		t.Errorf("worksheet throughput = %g, want 48 (8 pipelines x 6 ops)", got)
	}
	ab := pdf2d.AsBuiltDesign()
	if ab.Pipelines != 10 {
		t.Errorf("as-built pipelines = %d, want 10", ab.Pipelines)
	}
	// As-built batch: 6,716,416 cycles -> 4.48E-2 s at 150 MHz.
	cyc := ab.CyclesForBatch(pdf2d.BatchElements)
	if got := float64(cyc) / 150e6; math.Abs(got-4.48e-2) > 2e-4 {
		t.Errorf("as-built batch time = %.4e s, want ~4.48e-2", got)
	}
	// The as-built hardware beats the conservative worksheet rate.
	if eff := ab.EffectiveThroughputProc(pdf2d.BatchElements); eff <= 48 {
		t.Errorf("as-built effective ops/cycle = %.1f, want above the worksheet's 48", eff)
	}
}

// TestSimulatedHardwareReproducesTable6Actual: the simulated run at
// 150 MHz must land on the reconstructed actual column: t_comm ~
// 1.05E-2 s (six times the prediction), t_comp ~ 4.48E-2 s, comm
// utilization ~19%, speedup ~7.2.
func TestSimulatedHardwareReproducesTable6Actual(t *testing.T) {
	m := rcsim.MustRun(pdf2d.Scenario(core.MHz(150), core.SingleBuffered))
	actual := paper.ActualRow(paper.PDF2D)

	if got := m.TComp(); math.Abs(got-actual.TComp) > 0.01*actual.TComp {
		t.Errorf("simulated t_comp = %.4e, reconstructed actual %.3e", got, actual.TComp)
	}
	if got := m.TComm(); math.Abs(got-actual.TComm) > 0.02*actual.TComm {
		t.Errorf("simulated t_comm = %.4e, reconstructed actual %.3e", got, actual.TComm)
	}
	if got := m.UtilComm(); math.Abs(got-actual.UtilComm) > 0.015 {
		t.Errorf("simulated util_comm = %.3f, want ~%.2f", got, actual.UtilComm)
	}
	if got := m.TRC(); math.Abs(got-actual.TRC) > 0.02*actual.TRC {
		t.Errorf("simulated t_RC = %.4e, reconstructed actual %.3e", got, actual.TRC)
	}
	speedup := m.Speedup(pdf2d.Worksheet().Soft.TSoft)
	if math.Abs(speedup-actual.Speedup) > 0.15 {
		t.Errorf("simulated speedup = %.2f, want ~%.1f", speedup, actual.Speedup)
	}
}

// TestPredictionErrorShape reproduces the Section 5.1 narrative: the
// communication prediction misses by ~6x, the computation prediction
// is conservative (overestimates), the two partially cancel, and the
// measured speedup stays below the 1-D case's measured 7.8.
func TestPredictionErrorShape(t *testing.T) {
	pr := core.MustPredict(pdf2d.Worksheet())
	m := rcsim.MustRun(pdf2d.Scenario(core.MHz(150), core.SingleBuffered))

	commRatio := m.TComm() / pr.TComm
	if commRatio < 5.5 || commRatio > 7 {
		t.Errorf("measured/predicted comm = %.2f, paper reports ~6x", commRatio)
	}
	if m.TComp() >= pr.TComp {
		t.Error("computation prediction should be conservative (overestimate)")
	}
	compErr := (pr.TComp - m.TComp()) / m.TComp()
	if compErr < 0.10 {
		t.Errorf("computation overestimate %.1f%%, expected a clearly larger error than 1-D's ~6%%", compErr*100)
	}
	sp := m.Speedup(pdf2d.Worksheet().Soft.TSoft)
	if sp >= 7.8 {
		t.Errorf("2-D measured speedup %.2f must stay below the 1-D actual 7.8", sp)
	}
	// Comm utilization grows from the predicted ~3% to ~19%.
	if pr.UtilCommSB > 0.04 || m.UtilComm() < 0.15 {
		t.Errorf("utilization shift: predicted %.3f, measured %.3f", pr.UtilCommSB, m.UtilComm())
	}
}

func TestGeneratePointsDeterministicAndBounded(t *testing.T) {
	a := pdf2d.GeneratePoints(500, 7)
	b := pdf2d.GeneratePoints(500, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator not deterministic")
		}
		if a[i].X <= -1 || a[i].X >= 1 || a[i].Y <= -1 || a[i].Y >= 1 {
			t.Fatalf("point %+v outside (-1,1)^2", a[i])
		}
	}
	if z := pdf2d.GeneratePoints(10, 0); len(z) != 10 {
		t.Error("zero seed broken")
	}
}

func TestGridCenters(t *testing.T) {
	g := pdf2d.GridCenters(16)
	if len(g) != 256 {
		t.Fatalf("len = %d", len(g))
	}
	// Row-major: first row shares Y, X increases.
	if g[0].Y != g[15].Y || g[0].X >= g[1].X {
		t.Errorf("grid layout wrong: %+v %+v %+v", g[0], g[1], g[15])
	}
	if g[0].X != -1+1.0/16 || g[255].Y != 1-1.0/16 {
		t.Errorf("corner centers wrong: %+v %+v", g[0], g[255])
	}
}

func TestEstimateFloatFindsModes(t *testing.T) {
	pts := pdf2d.GeneratePoints(2000, 11)
	grid := pdf2d.GridCenters(32)
	est := pdf2d.EstimateFloat(pts, grid, pdf2d.DefaultParams())
	var peak float64
	peakIdx := 0
	for i, v := range est {
		if v < 0 {
			t.Fatal("negative density")
		}
		if v > peak {
			peak, peakIdx = v, i
		}
	}
	// The dominant mode is near (-0.4, -0.3): grid cell (x ~ 9, y ~ 11).
	px := peakIdx % 32
	py := peakIdx / 32
	if px < 6 || px > 13 || py < 8 || py > 14 {
		t.Errorf("peak at cell (%d,%d), want near (9,11)", px, py)
	}
}

// TestFixedPointError2D: the 18-bit datapath stays within a few
// percent of the float reference, like the 1-D study.
func TestFixedPointError2D(t *testing.T) {
	pts := pdf2d.GeneratePoints(1024, 3)
	grid := pdf2d.GridCenters(32)
	p := pdf2d.DefaultParams()
	ref := pdf2d.EstimateFloat(pts, grid, p)
	got := pdf2d.EstimateFixed(pts, grid, p, pdf2d.HW18())
	e := pdf2d.MaxError(ref, got)
	if e <= 0 || e > 0.06 {
		t.Errorf("18-bit 2-D max error = %.4f, want small but nonzero", e)
	}
}

func TestMaxError2DEdgeCases(t *testing.T) {
	if pdf2d.MaxError([]float64{0}, []float64{0}) != 0 {
		t.Error("zero reference should yield zero error")
	}
}

// TestResourceReportShape: Table 7's picture — DSP utilization ~21%
// (the scan's one intact cell), everything fitting with clear
// headroom ("has not nearly exhausted the resources").
func TestResourceReportShape(t *testing.T) {
	rep, err := pdf2d.ResourceReport()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fits {
		t.Fatalf("design must fit the LX100: %+v", rep)
	}
	// 10 pipelines x 2 multiplies and 1 MAC at 18 bits = 30 DSP48s
	// of 96: within a few points of the printed 21%.
	dsp := rep.Utilization(resource.DSP)
	if dsp < 0.15 || dsp > 0.35 {
		t.Errorf("DSP utilization = %.3f, want in the vicinity of Table 7's 0.21", dsp)
	}
	for _, l := range rep.Lines {
		if l.Utilization > 0.8 {
			t.Errorf("%s at %.0f%%: the paper stresses ample headroom", l.DisplayName, l.Utilization*100)
		}
	}
	// Strictly more of every resource than the 1-D design.
	rep1, err := pdf1d.ResourceReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []resource.Kind{resource.DSP, resource.BRAM, resource.Logic} {
		if rep.Utilization(k) <= rep1.Utilization(k) {
			t.Errorf("%s: 2-D utilization %.3f not above 1-D %.3f", k, rep.Utilization(k), rep1.Utilization(k))
		}
	}
}
