package pdf2d

import (
	"fmt"
	"math"

	"github.com/chrec/rat/internal/fixed"
)

// FixedEstimator2D mirrors the 2-D design's execution structure, which
// differs from the 1-D case in exactly the way Section 5.1 stresses:
// "In contrast to the 1-D case, the PDF values computed over each
// iteration are sent back to the host processor." Each ProcessBatch
// call computes one iteration's grid on the (simulated) chip, drains
// it to the host — the 65536-element transfer whose real cost
// surprised the designers — and the host accumulates across
// iterations.
type FixedEstimator2D struct {
	cfg      HWConfig
	r2fmt    fixed.Format
	lut      []fixed.Value
	shift    uint
	scaleFx  fixed.Value
	preScale float64
	qgx, qgy []fixed.Value
	accs     []*fixed.Acc
	host     []float64
	batches  int
}

// NewFixedEstimator2D prepares the datapath for a grid (row-major).
func NewFixedEstimator2D(grid []Point, p Params, cfg HWConfig) (*FixedEstimator2D, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("pdf2d: estimator needs at least one grid cell")
	}
	if !cfg.Format.Valid() || cfg.LUTBits < 1 || cfg.LUTBits >= cfg.Format.Width() {
		return nil, fmt.Errorf("pdf2d: invalid hardware configuration %+v", cfg)
	}
	f := cfg.Format
	e := &FixedEstimator2D{
		cfg:      cfg,
		r2fmt:    fixed.Q(4, f.Width()-4),
		preScale: math.Exp2(math.Floor(math.Log2(1 / p.Scale))),
		qgx:      make([]fixed.Value, len(grid)),
		qgy:      make([]fixed.Value, len(grid)),
		accs:     make([]*fixed.Acc, len(grid)),
		host:     make([]float64, len(grid)),
	}
	e.scaleFx = fixed.MustFromFloat(p.Scale*e.preScale, f, fixed.Nearest)

	inv := 1 / (2 * p.Bandwidth * p.Bandwidth)
	n := 1 << cfg.LUTBits
	span := math.Exp2(math.Ceil(math.Log2(float64(f.Frac) * math.Ln2 / inv)))
	shift := e.r2fmt.Frac + int(math.Log2(span)) - cfg.LUTBits
	if shift < 0 {
		shift = 0
		span = math.Exp2(float64(cfg.LUTBits - e.r2fmt.Frac))
	}
	e.shift = uint(shift)
	e.lut = make([]fixed.Value, n)
	for i := range e.lut {
		r2 := span * float64(i) / float64(n)
		e.lut[i] = fixed.MustFromFloat(math.Exp(-r2*inv), f, fixed.Nearest)
	}
	for i, g := range grid {
		e.qgx[i] = fixed.MustFromFloat(g.X, f, fixed.Nearest)
		e.qgy[i] = fixed.MustFromFloat(g.Y, f, fixed.Nearest)
	}
	for i := range e.accs {
		e.accs[i] = fixed.MustNewAcc(f.Frac, f.Frac+22)
	}
	return e, nil
}

// ProcessBatch computes one iteration's grid from the given points and
// returns the drained per-iteration values (what crosses the
// interconnect), accumulating them host-side.
func (e *FixedEstimator2D) ProcessBatch(points []Point) []float64 {
	f := e.cfg.Format
	n := len(e.lut)
	for i := range e.accs {
		e.accs[i].Reset() // fresh on-chip totals per iteration
	}
	for _, pt := range points {
		qx, _ := fixed.FromFloat(pt.X, f, fixed.Nearest, fixed.Saturate)
		qy, _ := fixed.FromFloat(pt.Y, f, fixed.Nearest, fixed.Saturate)
		for i := range e.accs {
			dx, _ := fixed.Sub(qx, e.qgx[i], fixed.Saturate)
			dy, _ := fixed.Sub(qy, e.qgy[i], fixed.Saturate)
			sx, _ := fixed.Mul(dx, dx, e.r2fmt, fixed.Truncate, fixed.Saturate)
			sy, _ := fixed.Mul(dy, dy, e.r2fmt, fixed.Truncate, fixed.Saturate)
			r2, _ := fixed.Add(sx, sy, fixed.Saturate)
			idx := int(r2.Raw() >> e.shift)
			if idx >= n {
				idx = n - 1
			}
			g := e.lut[idx]
			prod, _ := fixed.Mul(g, e.scaleFx, f, fixed.Nearest, fixed.Saturate)
			e.accs[i].AddValue(prod)
		}
	}
	drained := make([]float64, len(e.accs))
	for i, a := range e.accs {
		drained[i] = a.Float() / e.preScale
		e.host[i] += drained[i]
	}
	e.batches++
	return drained
}

// Estimate returns the host-side accumulated grid.
func (e *FixedEstimator2D) Estimate() []float64 {
	out := make([]float64, len(e.host))
	copy(out, e.host)
	return out
}

// Batches returns how many iterations have drained.
func (e *FixedEstimator2D) Batches() int { return e.batches }
