package pdf2d_test

import (
	"testing"

	"github.com/chrec/rat/internal/apps/pdf2d"
)

// TestBatched2DEqualsMonolithic: per-iteration drain plus host
// accumulation equals the monolithic evaluation exactly (every drained
// value is a multiple of the accumulator step and well inside float64
// exactness, so host-side summation loses nothing).
func TestBatched2DEqualsMonolithic(t *testing.T) {
	pts := pdf2d.GeneratePoints(1024, 3)
	grid := pdf2d.GridCenters(16)
	p := pdf2d.DefaultParams()
	cfg := pdf2d.HW18()

	mono := pdf2d.EstimateFixed(pts, grid, p, cfg)

	e, err := pdf2d.NewFixedEstimator2D(grid, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(pts); i += pdf2d.BatchPoints {
		e.ProcessBatch(pts[i : i+pdf2d.BatchPoints])
	}
	batched := e.Estimate()
	for i := range mono {
		if mono[i] != batched[i] {
			t.Fatalf("cell %d: monolithic %g != batched %g", i, mono[i], batched[i])
		}
	}
	if e.Batches() != len(pts)/pdf2d.BatchPoints {
		t.Errorf("Batches = %d", e.Batches())
	}
}

// TestDrainedBatchesSumToEstimate: the per-iteration transfers sum to
// the host total — what the interconnect carries is the whole answer.
func TestDrainedBatchesSumToEstimate(t *testing.T) {
	pts := pdf2d.GeneratePoints(512, 9)
	grid := pdf2d.GridCenters(8)
	e, err := pdf2d.NewFixedEstimator2D(grid, pdf2d.DefaultParams(), pdf2d.HW18())
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]float64, len(grid))
	for i := 0; i < len(pts); i += 128 {
		for j, v := range e.ProcessBatch(pts[i : i+128]) {
			sums[j] += v
		}
	}
	est := e.Estimate()
	for i := range est {
		if sums[i] != est[i] {
			t.Fatalf("cell %d: drained sum %g != estimate %g", i, sums[i], est[i])
		}
	}
}

func TestNewFixedEstimator2DValidation(t *testing.T) {
	p := pdf2d.DefaultParams()
	if _, err := pdf2d.NewFixedEstimator2D(nil, p, pdf2d.HW18()); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := pdf2d.NewFixedEstimator2D(pdf2d.GridCenters(4), p, pdf2d.HWConfig{}); err == nil {
		t.Error("invalid config accepted")
	}
}
