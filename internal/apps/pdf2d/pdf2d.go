// Package pdf2d implements the paper's second case study (Section
// 5.1): two-dimensional Parzen-window PDF estimation over a 256x256
// bin grid. Per iteration, 512 two-dimensional samples arrive as 1024
// data words ("blocks of 512 words for each dimension") and the full
// 65536-bin grid returns to the host — the large result transfer whose
// real cost, six times the prediction, is the study's central lesson
// in communication-estimate fragility.
//
// The per-(sample, bin) computation follows the paper's own
// description — (N1-n1)^2 + (N2-n2)^2 + c — through a two-dimensional
// squared-distance datapath feeding a Gaussian lookup and a
// multiply-accumulate: six counted operations (two subtracts, two
// multiplies, one add, one accumulate), giving N_ops/element = 65536 x
// 6 = 393216 (Table 5).
//
// Two designs live here: the proposed eight-pipeline design whose
// numbers the RAT worksheet carries (throughput_proc = 48), and the
// as-built ten-pipeline design the simulated platform executes —
// mirroring the paper's account that the computation estimate was
// deliberately conservative and the built hardware beat it.
package pdf2d

import (
	"math"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/fixed"
	"github.com/chrec/rat/internal/kernel"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/resource"
)

// Canonical problem geometry from Table 5.
const (
	TotalPoints   = 204800 // 2-D sample points in the full dataset
	BatchPoints   = 512    // points per iteration
	BatchElements = 1024   // data words per iteration (two per point)
	GridSide      = 256
	GridBins      = GridSide * GridSide
	Iterations    = TotalPoints / BatchPoints

	// PlannedPipelines is the worksheet design; BuiltPipelines is
	// what the implemented hardware shipped with.
	PlannedPipelines = 8
	BuiltPipelines   = 10
)

// Point is one two-dimensional sample.
type Point struct{ X, Y float64 }

// Params holds the 2-D Parzen parameters (isotropic Gaussian kernel).
type Params struct {
	Bandwidth float64
	Scale     float64
}

// DefaultParams mirrors the 1-D study's bandwidth with the 2-D
// normalization.
func DefaultParams() Params {
	h := 0.12
	return Params{
		Bandwidth: h,
		Scale:     1 / (float64(TotalPoints) * 2 * math.Pi * h * h),
	}
}

// GeneratePoints draws n deterministic samples from a three-component
// 2-D Gaussian mixture, clamped to (-1, 1) in both coordinates.
func GeneratePoints(n int, seed uint64) []Point {
	if seed == 0 {
		seed = 0xD1B54A32D192ED03
	}
	s := seed
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s>>11) / float64(1<<53)
	}
	gauss := func() float64 {
		u1, u2 := next(), next()
		for u1 == 0 {
			u1 = next()
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
	clamp := func(x float64) float64 { return math.Max(-0.999, math.Min(0.999, x)) }
	out := make([]Point, n)
	for i := range out {
		var p Point
		switch r := next(); {
		case r < 0.45:
			p = Point{X: -0.4 + 0.15*gauss(), Y: -0.3 + 0.12*gauss()}
		case r < 0.8:
			p = Point{X: 0.35 + 0.10*gauss(), Y: 0.4 + 0.14*gauss()}
		default:
			p = Point{X: 0.1 + 0.20*gauss(), Y: -0.45 + 0.10*gauss()}
		}
		out[i] = Point{X: clamp(p.X), Y: clamp(p.Y)}
	}
	return out
}

// GridCenters returns the bin-center coordinates of a side x side grid
// over [-1, 1)^2, row-major (y outer, x inner).
func GridCenters(side int) []Point {
	out := make([]Point, 0, side*side)
	step := 2.0 / float64(side)
	for yi := 0; yi < side; yi++ {
		y := -1 + (float64(yi)+0.5)*step
		for xi := 0; xi < side; xi++ {
			out = append(out, Point{X: -1 + (float64(xi)+0.5)*step, Y: y})
		}
	}
	return out
}

// EstimateFloat is the float64 software baseline over an arbitrary
// grid (row-major), the precision-test reference.
func EstimateFloat(points []Point, grid []Point, p Params) []float64 {
	out := make([]float64, len(grid))
	inv := 1 / (2 * p.Bandwidth * p.Bandwidth)
	for _, pt := range points {
		for i, g := range grid {
			dx := pt.X - g.X
			dy := pt.Y - g.Y
			out[i] += p.Scale * math.Exp(-(dx*dx+dy*dy)*inv)
		}
	}
	return out
}

// HWConfig mirrors the 1-D study's datapath configuration: coordinate
// differences in Format, squared distance in a widened register, and a
// Gaussian-of-r^2 table addressed by the top LUTBits of the squared
// distance.
type HWConfig struct {
	Format  fixed.Format
	LUTBits int
}

// HW18 is the as-built 18-bit configuration.
func HW18() HWConfig { return HWConfig{Format: fixed.Q(2, 16), LUTBits: 10} }

// EstimateFixed evaluates the grid exactly as the fixed-point hardware
// does: quantized coordinates, exact squared-distance arithmetic in a
// widened fixed format (products of Q2.x differences fit Q4.x'), a
// Gaussian-of-r^2 table lookup, and per-bin accumulators. It is the
// one-batch form of FixedEstimator2D, which documents the datapath and
// table construction in full.
func EstimateFixed(points []Point, grid []Point, p Params, cfg HWConfig) []float64 {
	e, err := NewFixedEstimator2D(grid, p, cfg)
	if err != nil {
		//rat:allow-panic Must-style convenience wrapper; invalid configurations are programming errors here
		panic(err)
	}
	return e.ProcessBatch(points)
}

// MaxError returns the maximum absolute deviation normalized by the
// reference peak, as in the 1-D study.
func MaxError(ref, got []float64) float64 {
	var peak, worst float64
	for _, v := range ref {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		return 0
	}
	for i := range ref {
		if d := math.Abs(got[i] - ref[i]); d > worst {
			worst = d
		}
	}
	return worst / peak
}

// datapath lists the per-pipeline operator units. Elements arrive as
// alternating x and y words, so one subtract/square pair serves both
// coordinates on alternate cycles; the distance add, Gaussian table
// and scaling multiply-accumulate complete each (point, bin) item.
// Two DSP-class units per pipeline (the square and the MAC) — ten
// as-built pipelines use 20 of the LX100's 96 DSP48s, Table 7's 21%.
func datapath() []kernel.Unit {
	return []kernel.Unit{
		{Op: resource.OpAdd, Width: 18}, // coordinate subtract
		{Op: resource.OpMul, Width: 18}, // square (shared by x and y)
		{Op: resource.OpAdd, Width: 18}, // distance accumulate
		{Op: resource.OpLUT, Width: 18}, // Gaussian-of-r^2 table
		{Op: resource.OpMAC, Width: 18}, // scale multiply + bin accumulate
	}
}

// Design returns the proposed eight-pipeline design the RAT worksheet
// describes: throughput_proc = 8 pipelines x 6 counted ops = 48.
func Design() kernel.Design {
	return kernel.Design{
		Name:      "2-D PDF estimation (proposed, 8 pipelines)",
		Pipelines: PlannedPipelines,
		Units:     datapath(),
		// The worksheet counts six operations per (element, bin)
		// item against 1024 word-elements per iteration — the
		// paper's own accounting (Table 5: N_ops/element = 65536
		// bins x 6 = 393216 with N_elements = 1024); the timing
		// model adopts the same element definition.
		CountedOps:      6,
		ItemsPerElement: GridBins,
		ItemsPerCycle:   1,
		PipelineDepth:   24,
		ElementStall:    4,
		BatchOverhead:   1000,
		ElementBits:     32,
		// Per-bin running totals hold one batch's accumulation only
		// (the grid drains to the host every iteration), so 28 bits
		// suffice: the 16-bit fraction plus 12 bits of headroom.
		StateBits: 28,
	}
}

// AsBuiltDesign returns the implemented hardware: ten pipelines, the
// extra parallelism the implementers squeezed in after the worksheet
// was frozen. Its simulated batch time at 150 MHz is 4.48E-2 s — the
// measured t_comp the paper's actual column reports against the
// conservative 5.59E-2 s prediction.
func AsBuiltDesign() kernel.Design {
	d := Design()
	d.Name = "2-D PDF estimation (as built, 10 pipelines)"
	d.Pipelines = BuiltPipelines
	return d
}

// Worksheet reproduces Table 5: 1024 word-elements in, the 65536-bin
// grid out, alphas carried over from the platform's tabulated 2 KB
// microbenchmark, N_ops/element = 393216 and throughput_proc = 48.
func Worksheet() core.Parameters {
	ic := platform.NallatechH101().Interconnect
	round2 := func(x float64) float64 { return math.Round(x*100) / 100 }
	return core.Parameters{
		Name: "2-D PDF estimation",
		Dataset: core.DatasetParams{
			ElementsIn:      BatchElements,
			ElementsOut:     GridBins,
			BytesPerElement: 4,
		},
		Comm: core.CommParams{
			IdealThroughput: ic.IdealBps,
			// Alphas carried over from the platform's tabulated
			// 2 KB microbenchmark, exactly as the paper did — the
			// root of the 6x communication surprise.
			AlphaWrite: round2(ic.MeasureAlpha(platform.Write, 2048)),
			AlphaRead:  round2(ic.MeasureAlpha(platform.Read, 2048)),
		},
		Comp: core.CompParams{
			OpsPerElement:  393216,
			ThroughputProc: Design().WorksheetThroughputProc(), // 48
			ClockHz:        core.MHz(150),
		},
		Soft: core.SoftwareParams{
			TSoft:      paper.PDF2DParams().Soft.TSoft, // 158.8 s on the 3.2 GHz Xeon
			Iterations: Iterations,
		},
	}
}

// Scenario builds the simulated-platform run of the as-built design.
func Scenario(clockHz float64, b core.Buffering) rcsim.Scenario {
	d := AsBuiltDesign()
	return rcsim.Scenario{
		Name:            "pdf2d",
		Platform:        platform.NallatechH101(),
		ClockHz:         clockHz,
		Buffering:       b,
		Iterations:      Iterations,
		ElementsIn:      BatchElements,
		ElementsOut:     GridBins,
		BytesPerElement: 4,
		KernelCycles: func(_, elements int) int64 {
			return d.CyclesForBatch(elements)
		},
	}
}

// ResourceReport runs the resource test for the as-built design on the
// LX100 (Table 7).
func ResourceReport() (resource.Report, error) {
	dev := platform.NallatechH101().Device
	demand, err := AsBuiltDesign().ResourceDemand(dev, BatchElements, false)
	if err != nil {
		return resource.Report{}, err
	}
	return resource.Check(dev, demand), nil
}
