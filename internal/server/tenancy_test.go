package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/tenant"
)

// testTenants builds a registry from a JSON literal.
func testTenants(t *testing.T, cfg string) *tenant.Registry {
	t.Helper()
	reg, err := tenant.Parse(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// postPredictAs is postPredict with an API key attached as a bearer
// token.
func postPredictAs(t *testing.T, ts *httptest.Server, key string, p core.Parameters) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict",
		bytes.NewReader(encodeWorksheet(t, p)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestTenancyByteIdentity pins that the tenancy layer is invisible in
// the payload: a tenanted server's predict response is byte-identical
// to an untenanted server's response for the same worksheet.
func TestTenancyByteIdentity(t *testing.T) {
	plain := httptest.NewServer(New(Config{}).Handler())
	defer plain.Close()
	tenanted := httptest.NewServer(New(Config{
		Tenants: testTenants(t, `{"tenants": [{"name": "a", "key": "k", "rate_per_sec": 1000}]}`),
	}).Handler())
	defer tenanted.Close()

	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		p := paper.Params(c)
		status, wantBody := postPredict(t, plain, p, "")
		if status != http.StatusOK {
			t.Fatalf("%s: untenanted status %d", c, status)
		}
		status, _, gotBody := postPredictAs(t, tenanted, "k", p)
		if status != http.StatusOK {
			t.Fatalf("%s: tenanted status %d: %s", c, status, gotBody)
		}
		if !bytes.Equal(gotBody, wantBody) {
			t.Errorf("%s: tenanted response differs from untenanted response\n got %s\nwant %s",
				c, gotBody, wantBody)
		}
	}
}

// TestTenancyAuth pins the identity contract: API endpoints demand a
// configured key (401 + WWW-Authenticate without one, via either
// header form), while the meta endpoints stay open for probes and
// scrapers.
func TestTenancyAuth(t *testing.T) {
	srv := New(Config{
		Tenants: testTenants(t, `{"tenants": [{"name": "a", "key": "secret", "rate_per_sec": 1000}]}`),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	p := paper.PDF1DParams()
	for _, key := range []string{"", "wrong"} {
		status, hdr, _ := postPredictAs(t, ts, key, p)
		if status != http.StatusUnauthorized {
			t.Errorf("key %q: status %d, want 401", key, status)
		}
		if hdr.Get("WWW-Authenticate") == "" {
			t.Errorf("key %q: 401 without WWW-Authenticate", key)
		}
	}

	// The X-Rat-Key form must authenticate too.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict",
		bytes.NewReader(encodeWorksheet(t, p)))
	req.Header.Set("X-Rat-Key", "secret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("X-Rat-Key auth: status %d, want 200", resp.StatusCode)
	}

	// Probes and scrapers need no key.
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/v1/status"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s on a tenanted server: status %d, want 200", path, resp.StatusCode)
		}
	}

	// Auth failures are accounted under the reserved "unknown" label.
	snap := srv.Metrics().Snapshot()
	if got := snap.Counters[`rat_tenant_rejections_total{reason="auth",tenant="unknown"}`]; got != 2 {
		t.Errorf("auth rejections = %d, want 2", got)
	}
}

// TestTenancyQuota429RetryAfter pins the quota contract: a drained
// bucket answers 429 with a Retry-After derived from the refill rate,
// and the advertised wait is honest (a retry at that instant would
// have tokens).
func TestTenancyQuota429RetryAfter(t *testing.T) {
	// 0.2 tokens/s, burst 2: two requests pass, the third waits ~5s.
	srv := New(Config{
		Tenants: testTenants(t, `{"tenants": [{"name": "slow", "key": "k", "rate_per_sec": 0.2, "burst": 2}]}`),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	p := paper.PDF1DParams()
	for i := 0; i < 2; i++ {
		if status, _, body := postPredictAs(t, ts, "k", p); status != http.StatusOK {
			t.Fatalf("in-burst request %d: status %d: %s", i, status, body)
		}
	}
	status, hdr, _ := postPredictAs(t, ts, "k", p)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", status)
	}
	retry, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not delta-seconds", hdr.Get("Retry-After"))
	}
	// One token at 0.2/s refills in 5s; ceil can land on 5 or 6
	// depending on how much wall time the two granted requests burned.
	if retry < 4 || retry > 6 {
		t.Errorf("Retry-After = %ds, want ~5s (refill-derived, not a fixed 1)", retry)
	}

	snap := srv.Metrics().Snapshot()
	if got := snap.Counters[`rat_tenant_rejections_total{reason="quota",tenant="slow"}`]; got != 1 {
		t.Errorf("quota rejections = %d, want 1", got)
	}
	if got := snap.Counters[`rat_tenant_requests_total{tenant="slow"}`]; got != 2 {
		t.Errorf("tenant requests = %d, want 2", got)
	}
}

// TestTenancyBatchTopUp pins the per-worksheet batch charge: a batch
// is charged one token per worksheet, so a batch larger than the
// remaining budget is refused with a refill-derived Retry-After even
// though the first token was available.
func TestTenancyBatchTopUp(t *testing.T) {
	srv := New(Config{
		Tenants: testTenants(t, `{"tenants": [{"name": "a", "key": "k", "rate_per_sec": 1, "burst": 4}]}`),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	docs := make([]json.RawMessage, 8) // needs 8 tokens; only 4 exist
	for i := range docs {
		docs[i] = encodeWorksheet(t, paper.PDF1DParams())
	}
	body, err := json.Marshal(docs)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict/batch", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer k")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("8-worksheet batch against a 4-token budget: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("batch quota refusal without Retry-After")
	}
}

// TestTenancyConcurrencyCap pins max_inflight: with every slot held,
// a request is refused 429 with reason "concurrency", and slots freed
// later admit again.
func TestTenancyConcurrencyCap(t *testing.T) {
	reg := testTenants(t, `{"tenants": [{"name": "a", "key": "k", "rate_per_sec": 1000, "max_inflight": 1}]}`)
	srv := New(Config{Tenants: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	member, ok := reg.Lookup("k")
	if !ok {
		t.Fatal("test key missing")
	}
	if !member.AcquireSlot() { // hold the only slot
		t.Fatal("could not hold the slot")
	}
	status, hdr, _ := postPredictAs(t, ts, "k", paper.PDF1DParams())
	if status != http.StatusTooManyRequests {
		t.Fatalf("status with slots exhausted = %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("concurrency refusal without Retry-After")
	}
	member.ReleaseSlot()
	if status, _, body := postPredictAs(t, ts, "k", paper.PDF1DParams()); status != http.StatusOK {
		t.Fatalf("status after slot release = %d, want 200: %s", status, body)
	}
	snap := srv.Metrics().Snapshot()
	if got := snap.Counters[`rat_tenant_rejections_total{reason="concurrency",tenant="a"}`]; got != 1 {
		t.Errorf("concurrency rejections = %d, want 1", got)
	}
}

// TestTenancyNoisyNeighborIsolation is the in-process isolation
// proof: a hostile tenant running far over its quota is shed with
// 429s while the compliant tenant sees zero unexpected rejections and
// a bounded p99 — per-tenant buckets mean abuse cannot spill across
// the boundary.
func TestTenancyNoisyNeighborIsolation(t *testing.T) {
	srv := New(Config{
		Tenants: testTenants(t, `{"tenants": [
			{"name": "compliant", "key": "ck", "rate_per_sec": 1000, "burst": 1000},
			{"name": "hostile", "key": "hk", "rate_per_sec": 2, "burst": 2}
		]}`),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	p := paper.PDF1DParams()
	const compliantN = 60
	const hostileN = 200 // ~100x the hostile burst

	var wg sync.WaitGroup
	var mu sync.Mutex
	var compliant429, hostile429, hostileOK int
	var compliantLat []time.Duration
	startAt := time.Now()
	sendLoop := func(key string, n int, record bool) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			t0 := time.Now()
			status, _, body := postPredictAs(t, ts, key, p)
			lat := time.Since(t0)
			mu.Lock()
			switch {
			case status == http.StatusTooManyRequests && record:
				compliant429++
			case status == http.StatusTooManyRequests:
				hostile429++
			case status == http.StatusOK && !record:
				hostileOK++
			case status != http.StatusOK:
				mu.Unlock()
				t.Errorf("%s: unexpected status %d: %s", key, status, body)
				return
			}
			if record {
				compliantLat = append(compliantLat, lat)
			}
			mu.Unlock()
		}
	}
	wg.Add(3)
	go sendLoop("ck", compliantN, true)
	go sendLoop("hk", hostileN, false)
	go sendLoop("hk", hostileN, false)
	wg.Wait()

	if compliant429 != 0 {
		t.Errorf("compliant tenant saw %d unexpected 429s; isolation failed", compliant429)
	}
	if hostile429 == 0 {
		t.Error("hostile tenant at ~100x quota was never shed")
	}
	// The hostile tenant gets its burst plus refill for the wall time
	// the loops ran — nothing more.
	if allowed := 2 + int(time.Since(startAt).Seconds()*2) + 3; hostileOK > allowed {
		t.Errorf("hostile tenant got %d requests through (burst 2, rate 2/s over %v; allowed ~%d)",
			hostileOK, time.Since(startAt).Round(time.Millisecond), allowed)
	}
	// p99 bound: generous (CI machines stall), but a tenant starved by
	// its neighbor would blow far past it.
	if n := len(compliantLat); n > 0 {
		idx := n - 1 - n/100
		if idx < 0 {
			idx = 0
		}
		sortDurations(compliantLat)
		if p99 := compliantLat[idx]; p99 > 2*time.Second {
			t.Errorf("compliant p99 = %v under hostile load; want < 2s", p99)
		}
	}
}

// sortDurations is an insertion sort; the slices here are tiny and it
// keeps the test free of an extra import.
func sortDurations(d []time.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

// TestPanicReleasesInflightAndTenantSlot is the panic-path audit: a
// handler that dies mid-request must still answer a well-formed 500,
// release the tenant's concurrency slot, and return rat_inflight to
// zero — the recovery path runs the same deferred bookkeeping as a
// clean return.
func TestPanicReleasesInflightAndTenantSlot(t *testing.T) {
	reg := testTenants(t, `{"tenants": [{"name": "a", "key": "k", "rate_per_sec": 1000, "max_inflight": 1}]}`)
	srv := New(Config{Tenants: reg})

	// Wrap a deliberately dying handler in the server's own middleware:
	// the exact recovery path production requests travel.
	dying := srv.middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	ts := httptest.NewServer(dying)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", strings.NewReader("{}"))
	req.Header.Set("Authorization", "Bearer k")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500: %s", resp.StatusCode, body)
	}

	snap := srv.Metrics().Snapshot()
	if got := snap.Gauges["rat_inflight"]; got != 0 {
		t.Errorf("rat_inflight after panic = %v, want 0: the slot leaked", got)
	}
	if got := snap.Counters["server.panics"]; got != 1 {
		t.Errorf("server.panics = %d, want 1", got)
	}
	member, _ := reg.Lookup("k")
	if got := member.Inflight(); got != 0 {
		t.Errorf("tenant inflight after panic = %d, want 0: the tenant slot leaked", got)
	}
	// The freed slot must be reusable immediately.
	if !member.AcquireSlot() {
		t.Error("tenant slot not reusable after panic recovery")
	}
	member.ReleaseSlot()
}

// TestStatusReportsTenantsAndBrownout pins the /v1/status extensions:
// brownout_level is always present; the tenants section appears on a
// tenanted server with per-tenant counts.
func TestStatusReportsTenantsAndBrownout(t *testing.T) {
	srv := New(Config{
		Tenants: testTenants(t, `{"tenants": [
			{"name": "a", "key": "ka", "rate_per_sec": 1000},
			{"name": "b", "key": "kb", "rate_per_sec": 1}
		]}`),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postPredictAs(t, ts, "ka", paper.PDF1DParams())
	postPredictAs(t, ts, "kb", paper.PDF1DParams())
	postPredictAs(t, ts, "kb", paper.PDF1DParams()) // over kb's burst of 1

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.BrownoutLevel != 0 {
		t.Errorf("brownout_level on an idle server = %d, want 0", st.BrownoutLevel)
	}
	if len(st.Tenants) != 2 {
		t.Fatalf("status tenants = %v, want entries for a and b", st.Tenants)
	}
	if st.Tenants["a"].Requests != 1 {
		t.Errorf("tenant a requests = %d, want 1", st.Tenants["a"].Requests)
	}
	if st.Tenants["b"].RejectedQuota != 1 {
		t.Errorf("tenant b rejected_quota = %d, want 1", st.Tenants["b"].RejectedQuota)
	}

	// An untenanted server must not grow a tenants section.
	plain := httptest.NewServer(New(Config{}).Handler())
	defer plain.Close()
	resp2, err := http.Get(plain.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, _ := io.ReadAll(resp2.Body)
	if bytes.Contains(raw, []byte(`"tenants"`)) {
		t.Error("untenanted /v1/status contains a tenants section")
	}
}

// TestTenantMetricsValidProm pins that every tenant-labelled metric
// and the brownout gauge survive the Prometheus exposition round
// trip: bounded, well-formed label sets or nothing.
func TestTenantMetricsValidProm(t *testing.T) {
	srv := New(Config{
		Tenants: testTenants(t, `{"tenants": [{"name": "team-7", "key": "k", "rate_per_sec": 1, "burst": 1}]}`),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postPredictAs(t, ts, "k", paper.PDF1DParams())
	postPredictAs(t, ts, "k", paper.PDF1DParams()) // quota rejection
	postPredictAs(t, ts, "bad", paper.PDF1DParams())

	var buf bytes.Buffer
	if err := telemetry.WriteProm(&buf, srv.promSnapshot()); err != nil {
		t.Fatalf("tenant metrics break the Prometheus exposition: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`rat_tenant_requests_total{tenant="team-7"}`,
		`rat_tenant_rejections_total{reason="quota",tenant="team-7"}`,
		`rat_tenant_rejections_total{reason="auth",tenant="unknown"}`,
		`rat_brownout_level`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	if err := telemetry.ValidateProm(out); err != nil {
		t.Errorf("tenant exposition fails ValidateProm: %v", err)
	}
}

// TestBrownoutControllerLadder drives the controller with a
// fabricated clock through raise and lower transitions, pinning the
// window/hysteresis arithmetic without a single sleep.
func TestBrownoutControllerLadder(t *testing.T) {
	reg := telemetry.NewRegistry()
	var lingerScale int32 = 1
	b := newBrownout(reg, time.Second, 0.05, 5*time.Second, func(level int32) {
		lingerScale = brownoutLingerScale[level]
	})
	now := time.Unix(1000, 0)

	// Window 1: 10% shed — one step up.
	for i := 0; i < 18; i++ {
		b.observe(now, false)
	}
	b.observe(now, true)
	b.observe(now.Add(time.Second), true) // rolls the window
	if got := b.Level(); got != 1 {
		t.Fatalf("level after a 10%% shed window = %d, want 1", got)
	}

	// Window 2: healthy but within the quiet period — level holds.
	now = now.Add(time.Second)
	b.observe(now, false)
	b.observe(now.Add(time.Second), false)
	if got := b.Level(); got != 1 {
		t.Fatalf("level dropped during the quiet period: %d", got)
	}

	// Two more shed-heavy windows: climbs to 3 and saturates there.
	for w := 0; w < 3; w++ {
		now = now.Add(time.Second)
		b.observe(now, true)
		b.observe(now.Add(time.Second), true)
	}
	if got := b.Level(); got != 3 {
		t.Fatalf("level after sustained shedding = %d, want 3 (saturated)", got)
	}
	if lingerScale != brownoutLingerScale[3] {
		t.Errorf("onChange lingerScale = %d, want %d", lingerScale, brownoutLingerScale[3])
	}

	// Quiet windows past the hysteresis: steps back down one per
	// window, never below 0.
	now = now.Add(time.Second)
	for w := 0; w < 5; w++ {
		now = now.Add(6 * time.Second) // beyond the 5s quiet period
		b.observe(now, false)
		b.observe(now.Add(time.Second), false)
		now = now.Add(time.Second)
	}
	if got := b.Level(); got != 0 {
		t.Fatalf("level after sustained quiet = %d, want 0", got)
	}
	if lingerScale != 1 {
		t.Errorf("onChange lingerScale after recovery = %d, want 1", lingerScale)
	}

	snap := reg.Snapshot()
	if got := snap.Gauges["rat_brownout_level"]; got != 0 {
		t.Errorf("rat_brownout_level gauge = %v, want 0", got)
	}
	if raised := snap.Counters["rat_brownout_raised_total"]; raised != 3 {
		t.Errorf("raised transitions = %d, want 3", raised)
	}
	if lowered := snap.Counters["rat_brownout_lowered_total"]; lowered != 3 {
		t.Errorf("lowered transitions = %d, want 3", lowered)
	}
}

// TestBrownoutDegradesBulkNotPredict pins the effects ladder end to
// end: at level 3 the explore ceiling has stepped down /64, cache
// fill is off, the linger is widened — and the predict path still
// serves bit-identical responses.
func TestBrownoutDegradesBulkNotPredict(t *testing.T) {
	// A huge brownout window so real request traffic in this test can
	// never roll a window and disturb the forced level.
	srv := New(Config{MaxExploreCandidates: 6400, BrownoutWindow: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Force level 3 through the controller's own transition path.
	for lvl := int32(0); lvl < maxBrownoutLevel; lvl++ {
		srv.brownout.setLevel(lvl, lvl+1)
	}
	if got := srv.exploreCeiling(); got != 100 {
		t.Fatalf("explore ceiling at level 3 = %d, want 6400/64 = 100", got)
	}
	if srv.cacheFillAllowed() {
		t.Error("cache fill still allowed at level 3")
	}
	if got := srv.batcher.lingerScale.Load(); got != brownoutLingerScale[3] {
		t.Errorf("lingerScale at level 3 = %d, want %d", got, brownoutLingerScale[3])
	}

	// An exploration over the degraded ceiling is refused 413...
	exReq := map[string]any{
		"worksheet":  json.RawMessage(encodeWorksheet(t, paper.PDF1DParams())),
		"clocks_mhz": manyClocks(150),
	}
	body, err := json.Marshal(exReq)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/explore", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("150-candidate explore at level 3 (ceiling 100): status %d, want 413", resp.StatusCode)
	}

	// ...while predict is untouched and still bit-for-bit.
	p := paper.MDParams()
	want, err := core.Predict(p)
	if err != nil {
		t.Fatal(err)
	}
	status, respBody := postPredict(t, ts, p, "")
	if status != http.StatusOK {
		t.Fatalf("predict at brownout level 3: status %d", status)
	}
	var wire api.Prediction
	if err := json.Unmarshal(respBody, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Core() != want {
		t.Error("predict response at brownout level 3 differs from core.Predict")
	}

	// Cache fill was disabled: the same request misses twice.
	before := srv.Metrics().Snapshot().Counters["server.cache_misses"]
	postPredict(t, ts, p, "")
	after := srv.Metrics().Snapshot().Counters["server.cache_misses"]
	if after != before+1 {
		t.Errorf("cache misses went %d -> %d at level 3; fill should be disabled", before, after)
	}
}

// manyClocks returns n distinct clock values for grid-size tests.
func manyClocks(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 100 + float64(i)
	}
	return out
}

// TestRetryAfterSeconds pins the header arithmetic: ceil to whole
// seconds, floor 1.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{5 * time.Second, 5},
		{5*time.Second + time.Nanosecond, 6},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}
