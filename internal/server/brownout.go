package server

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/chrec/rat/internal/telemetry"
)

// maxBrownoutLevel is the deepest degradation step. The ladder, from
// docs/TENANCY.md (every step leaves the interactive predict path
// untouched):
//
//	level 1: explore candidate ceiling /4
//	level 2: + ceiling /16, batcher linger ×4 (bulk coalesces harder)
//	level 3: + ceiling /64, linger ×8, response-cache fill disabled
const maxBrownoutLevel = 3

// brownoutCeilingShift maps a level to the right-shift applied to the
// server's explore candidate ceiling (1, /4, /16, /64).
var brownoutCeilingShift = [maxBrownoutLevel + 1]uint{0, 2, 4, 6}

// brownoutLingerScale maps a level to the batcher linger multiplier.
var brownoutLingerScale = [maxBrownoutLevel + 1]int32{1, 1, 4, 8}

// brownout is the overload degradation controller. It watches the
// overload-shed rate (capacity 429s from admission, NOT per-tenant
// quota sheds — a hostile tenant being limited is the system working,
// not the system overloaded) over fixed windows and walks a level
// between 0 (healthy) and maxBrownoutLevel: one step up per window
// whose shed fraction reaches the enter threshold, one step down per
// window that ends a long-enough quiet streak. Hysteresis keeps the
// level from flapping at the threshold.
//
// The current level is visible as the rat_brownout_level gauge, in
// /v1/status, and in the raised/lowered transition counters.
type brownout struct {
	window    time.Duration
	enterFrac float64
	quiet     time.Duration
	onChange  func(level int32) // called outside the mutex on every transition

	level atomic.Int32

	mu       sync.Mutex
	winStart time.Time
	served   int64
	shed     int64
	lastShed time.Time

	levelG  *telemetry.Gauge
	raised  *telemetry.Counter
	lowered *telemetry.Counter
}

// newBrownout builds the controller. window <= 0, enterFrac <= 0 and
// quiet <= 0 take the defaults (1s, 0.05, 5s).
func newBrownout(reg *telemetry.Registry, window time.Duration, enterFrac float64, quiet time.Duration, onChange func(int32)) *brownout {
	if window <= 0 {
		window = time.Second
	}
	if enterFrac <= 0 {
		enterFrac = 0.05
	}
	if quiet <= 0 {
		quiet = 5 * time.Second
	}
	return &brownout{
		window:    window,
		enterFrac: enterFrac,
		quiet:     quiet,
		onChange:  onChange,
		levelG:    reg.Gauge("rat_brownout_level"),
		raised:    reg.Counter("rat_brownout_raised_total"),
		lowered:   reg.Counter("rat_brownout_lowered_total"),
	}
}

// Level reports the current degradation level (lock-free; the hot
// path reads it per request).
func (b *brownout) Level() int32 {
	if b == nil {
		return 0
	}
	return b.level.Load()
}

// observe records one API-request outcome at time now: shed is true
// for an overload rejection (admission capacity, not tenant quota).
// Window rollover and level transitions happen inline — the
// controller has no goroutine of its own, so an idle server cannot
// change level spuriously and tests drive it with fabricated clocks.
func (b *brownout) observe(now time.Time, shed bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.winStart.IsZero() {
		b.winStart = now
	}
	if shed {
		b.shed++
		b.lastShed = now
	} else {
		b.served++
	}
	if now.Sub(b.winStart) < b.window {
		b.mu.Unlock()
		return
	}
	// Window rollover: decide a transition, then reset the counts.
	total := b.served + b.shed
	frac := float64(b.shed) / float64(total)
	level := b.level.Load()
	next := level
	switch {
	case b.shed > 0 && frac >= b.enterFrac && level < maxBrownoutLevel:
		next = level + 1
	case b.shed == 0 && level > 0 &&
		(b.lastShed.IsZero() || now.Sub(b.lastShed) >= b.quiet):
		next = level - 1
	}
	b.served, b.shed = 0, 0
	b.winStart = now
	b.mu.Unlock()

	if next != level {
		b.setLevel(level, next)
	}
}

// setLevel publishes a transition.
func (b *brownout) setLevel(from, to int32) {
	if !b.level.CompareAndSwap(from, to) {
		return // lost a race with another rollover; its transition stands
	}
	b.levelG.Set(float64(to))
	if to > from {
		b.raised.Inc()
	} else {
		b.lowered.Inc()
	}
	if b.onChange != nil {
		b.onChange(to)
	}
}

// exploreCeiling returns the candidate ceiling after brownout
// degradation: the configured ceiling stepped down /4, /16, /64 at
// levels 1-3, never below 1.
func (s *Server) exploreCeiling() uint64 {
	level := s.brownout.Level()
	if level <= 0 {
		return s.cfg.MaxExploreCandidates
	}
	if level > maxBrownoutLevel {
		level = maxBrownoutLevel
	}
	c := s.cfg.MaxExploreCandidates >> brownoutCeilingShift[level]
	if c < 1 {
		c = 1
	}
	return c
}

// cacheFillAllowed reports whether response-cache fill is enabled at
// the current brownout level. Serving existing cache hits is always
// allowed — only populating the cache with new entries stops, so the
// service sheds the allocation and eviction churn, not the wins it
// already holds.
func (s *Server) cacheFillAllowed() bool {
	return s.brownout.Level() < maxBrownoutLevel
}
