package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/wire"
)

// postWire sends one predict request with explicit wire formats on
// each side and returns status, body and response Content-Type.
func postWire(t *testing.T, ts *httptest.Server, query string, body []byte, binReq, binResp bool) (int, []byte, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if binReq {
		req.Header.Set("Content-Type", wire.ContentTypeBinary)
	} else {
		req.Header.Set("Content-Type", "application/json")
	}
	if binResp {
		req.Header.Set("Accept", wire.ContentTypeBinary)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header.Get("Content-Type")
}

// TestWireFormatParity pins the two wire formats against each other
// for every paper case study: the JSON response is byte-identical no
// matter how the request body was encoded, the binary response
// likewise, and both decode to exactly (!=, no tolerance) the
// prediction rat.Predict computes.
func TestWireFormatParity(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		p := paper.Params(c)
		want, err := core.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		jsonBody := encodeWorksheet(t, p)
		binBody := wire.AppendBinaryWorksheet(nil, p)

		// All four body×response combinations.
		var jsonResp, binResp []byte
		for _, tc := range []struct {
			name     string
			body     []byte
			binReq   bool
			binResp  bool
			wantType string
		}{
			{"json/json", jsonBody, false, false, "application/json"},
			{"bin/json", binBody, true, false, "application/json"},
			{"json/bin", jsonBody, false, true, wire.ContentTypeBinary},
			{"bin/bin", binBody, true, true, wire.ContentTypeBinary},
		} {
			status, out, ctype := postWire(t, ts, "", tc.body, tc.binReq, tc.binResp)
			if status != http.StatusOK {
				t.Fatalf("%s %s: status %d: %s", c, tc.name, status, out)
			}
			if ctype != tc.wantType {
				t.Errorf("%s %s: Content-Type %q, want %q", c, tc.name, ctype, tc.wantType)
			}
			var got core.Prediction
			if tc.binResp {
				pr, err := wire.DecodeBinaryPrediction(out)
				if err != nil {
					t.Fatalf("%s %s: %v", c, tc.name, err)
				}
				got = pr.Core()
				if binResp == nil {
					binResp = out
				} else if !bytes.Equal(out, binResp) {
					t.Errorf("%s %s: binary response differs across request encodings", c, tc.name)
				}
			} else {
				var pr api.Prediction
				if err := json.Unmarshal(out, &pr); err != nil {
					t.Fatalf("%s %s: %v", c, tc.name, err)
				}
				got = pr.Core()
				if jsonResp == nil {
					jsonResp = out
				} else if !bytes.Equal(out, jsonResp) {
					t.Errorf("%s %s: JSON response differs across request encodings", c, tc.name)
				}
			}
			if got != want {
				t.Errorf("%s %s: served prediction differs from rat.Predict\n got %+v\nwant %+v",
					c, tc.name, got, want)
			}
		}
	}
}

// TestWireFormatParityMulti does the same for the multi-FPGA path
// (devices/topology query parameters) in both response formats.
func TestWireFormatParityMulti(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		p := paper.Params(c)
		cfg := core.MultiConfig{Devices: 4, Topology: core.IndependentChannels}
		want, err := core.PredictMulti(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		query := "?devices=4&topology=independent"

		status, jsonOut, _ := postWire(t, ts, query, encodeWorksheet(t, p), false, false)
		if status != http.StatusOK {
			t.Fatalf("%s json: status %d: %s", c, status, jsonOut)
		}
		var jm api.MultiPrediction
		if err := json.Unmarshal(jsonOut, &jm); err != nil {
			t.Fatal(err)
		}
		status, binOut, _ := postWire(t, ts, query, wire.AppendBinaryWorksheet(nil, p), true, true)
		if status != http.StatusOK {
			t.Fatalf("%s bin: status %d: %s", c, status, binOut)
		}
		bm, err := wire.DecodeBinaryMultiPrediction(binOut)
		if err != nil {
			t.Fatal(err)
		}
		if got := jm.Core(); got != want {
			t.Errorf("%s: JSON multi prediction differs from rat.PredictMulti", c)
		}
		if got := bm.Core(); got != want {
			t.Errorf("%s: binary multi prediction differs from rat.PredictMulti", c)
		}
	}
}

// TestWireFormatBatchParity pins /v1/predict/batch across formats:
// every element of the batch response, in either encoding, equals
// rat.Predict of the corresponding worksheet with !=.
func TestWireFormatBatchParity(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	ps := []core.Parameters{paper.PDF1DParams(), paper.PDF2DParams(), paper.MDParams()}
	var jsonBody bytes.Buffer
	jsonBody.WriteByte('[')
	for i, p := range ps {
		if i > 0 {
			jsonBody.WriteByte(',')
		}
		jsonBody.Write(encodeWorksheet(t, p))
	}
	jsonBody.WriteByte(']')
	binBody := wire.AppendBinaryWorksheets(nil, ps)

	check := func(name string, preds []core.Prediction) {
		t.Helper()
		if len(preds) != len(ps) {
			t.Fatalf("%s: %d predictions for %d worksheets", name, len(preds), len(ps))
		}
		for i, p := range ps {
			want, err := core.Predict(p)
			if err != nil {
				t.Fatal(err)
			}
			if preds[i] != want {
				t.Errorf("%s: element %d differs from rat.Predict", name, i)
			}
		}
	}

	do := func(name string, body []byte, binReq, binResp bool) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict/batch", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if binReq {
			req.Header.Set("Content-Type", wire.ContentTypeBinary)
		}
		if binResp {
			req.Header.Set("Accept", wire.ContentTypeBinary)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, out)
		}
		if binResp {
			aps, err := wire.DecodeBinaryPredictions(out)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			preds := make([]core.Prediction, len(aps))
			for i := range aps {
				preds[i] = aps[i].Core()
			}
			check(name, preds)
		} else {
			var aps []api.Prediction
			if err := json.Unmarshal(out, &aps); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			preds := make([]core.Prediction, len(aps))
			for i := range aps {
				preds[i] = aps[i].Core()
			}
			check(name, preds)
		}
	}
	do("json/json", jsonBody.Bytes(), false, false)
	do("bin/json", binBody, true, false)
	do("json/bin", jsonBody.Bytes(), false, true)
	do("bin/bin", binBody, true, true)
}

// TestCacheKeepsFormatsApart proves the response cache never hands a
// JSON body to a binary request or vice versa: the same worksheet
// requested in both formats — in both orders, so each format fills
// the cache first once — always answers in the asked-for encoding.
func TestCacheKeepsFormatsApart(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxBatch: 1}).Handler())
	defer ts.Close()

	p := paper.PDF1DParams()
	body := encodeWorksheet(t, p)
	for round := 0; round < 2; round++ {
		for _, binResp := range []bool{round == 0, round != 0} {
			status, out, ctype := postWire(t, ts, "", body, false, binResp)
			if status != http.StatusOK {
				t.Fatalf("round %d binResp=%v: status %d: %s", round, binResp, status, out)
			}
			if binResp {
				if ctype != wire.ContentTypeBinary {
					t.Fatalf("round %d: binary request answered with Content-Type %q", round, ctype)
				}
				if _, err := wire.DecodeBinaryPrediction(out); err != nil {
					t.Fatalf("round %d: binary request got a non-binary body: %v", round, err)
				}
			} else {
				if ctype != "application/json" {
					t.Fatalf("round %d: JSON request answered with Content-Type %q", round, ctype)
				}
				var pr api.Prediction
				if err := json.Unmarshal(out, &pr); err != nil {
					t.Fatalf("round %d: JSON request got a non-JSON body: %v", round, err)
				}
			}
		}
	}
}
