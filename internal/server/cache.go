package server

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/telemetry"
)

// appendCacheKey appends the canonical byte form of a predict request
// to dst: every worksheet field in a fixed order at full float64
// precision, the multi-FPGA configuration, and the response wire
// format. Two requests collide iff they would produce identical
// response bytes, because the key preserves the exact bits the
// computation consumes (NaN never reaches the cache — it fails
// validation first) and keeps the two response encodings apart.
//
//rat:hotpath
func appendCacheKey(dst []byte, p *core.Parameters, cfg core.MultiConfig, format byte) []byte {
	dst = append(dst, p.Name...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(p.Name))) // disambiguates name bytes from numbers
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Dataset.ElementsIn))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Dataset.ElementsOut))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Dataset.BytesPerElement))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Comm.IdealThroughput))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Comm.AlphaWrite))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Comm.AlphaRead))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Comp.OpsPerElement))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Comp.ThroughputProc))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Comp.ClockHz))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Soft.TSoft))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Soft.Iterations))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(cfg.Devices)<<1|uint64(cfg.Topology))
	return append(dst, format)
}

// Response wire formats, the cache key's final discriminator byte.
const (
	formatJSON   = byte(0)
	formatBinary = byte(1)
)

// appendRawKey builds the raw-request alias key: both wire-format
// discriminators (request body encoding and negotiated response
// encoding), the unparsed query string, and the verbatim body bytes.
// Two byte-identical requests under the same negotiation always
// produce byte-identical responses, which is what makes the raw
// index sound.
//
//rat:hotpath
func appendRawKey(dst, body []byte, rawQuery string, binReq bool, format byte) []byte {
	req := byte(0)
	if binReq {
		req = 1
	}
	dst = append(dst, req, format)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rawQuery)))
	dst = append(dst, rawQuery...)
	return append(dst, body...)
}

// cacheKey is the string form of appendCacheKey for the JSON format —
// retained for tests that reason about key collisions.
func cacheKey(p core.Parameters, cfg core.MultiConfig) string {
	return string(appendCacheKey(make([]byte, 0, len(p.Name)+8*13+1), &p, cfg, formatJSON))
}

// responseCache is a mutex-guarded LRU of marshalled response bodies.
// Caching the exact bytes (not the Prediction) guarantees a hit
// replays a byte-identical response, which is what the bit-for-bit
// acceptance tests compare. Keys are passed as byte slices so the
// steady-state lookup compiles to an allocation-free map access; the
// cache copies the key only when it stores a new entry.
//
// Each entry is indexed twice: under the canonical decoded-parameters
// key (so equivalent worksheets serialized differently share one
// entry) and under at most one raw-request alias — the verbatim
// request bytes that last produced or hit the entry. The alias is what
// makes the steady-state hit fast: a client replaying identical bytes
// is answered without decoding the worksheet at all.
type responseCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent; values are *cacheEntry
	items map[string]*list.Element
	raw   map[string]*list.Element // raw-request alias → same element

	hits   *telemetry.Counter
	misses *telemetry.Counter
	evicts *telemetry.Counter
	sizeG  *telemetry.Gauge
}

type cacheEntry struct {
	key    string
	rawKey string // at most one alias; "" when none
	body   []byte
}

// newResponseCache returns a cache holding up to max entries, or nil
// when max <= 0 (caching disabled; a nil cache misses everything).
func newResponseCache(reg *telemetry.Registry, max int) *responseCache {
	if max <= 0 {
		return nil
	}
	return &responseCache{
		max:    max,
		ll:     list.New(),
		items:  make(map[string]*list.Element, max),
		raw:    make(map[string]*list.Element, max),
		hits:   reg.Counter("server.cache_hits"),
		misses: reg.Counter("server.cache_misses"),
		evicts: reg.Counter("server.cache_evictions"),
		sizeG:  reg.Gauge("server.cache_entries"),
	}
}

// getRaw probes the raw-request alias index. A raw miss is not a cache
// miss — the canonical lookup still follows — so only hits are
// counted here. The map index through string(key) does not allocate.
//
//rat:hotpath
func (c *responseCache) getRaw(rawKey []byte) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.raw[string(rawKey)]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(elem)
	c.hits.Inc()
	return elem.Value.(*cacheEntry).body, true
}

// get returns the cached body for the canonical key, bumping its
// recency. On a hit the entry's raw alias is repointed at rawKey, so
// the next replay of these exact request bytes short-circuits in
// getRaw without decoding.
//
//rat:hotpath
func (c *responseCache) get(key, rawKey []byte) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.items[string(key)]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(elem)
	c.aliasLocked(elem, rawKey)
	c.hits.Inc()
	return elem.Value.(*cacheEntry).body, true
}

// aliasLocked points the raw-request alias rawKey at elem, displacing
// the element's previous alias. One alias per entry bounds the raw
// index at the entry count.
func (c *responseCache) aliasLocked(elem *list.Element, rawKey []byte) {
	if len(rawKey) == 0 {
		return
	}
	e := elem.Value.(*cacheEntry)
	if e.rawKey == string(rawKey) { // no-alloc comparison
		return
	}
	if prev, ok := c.raw[string(rawKey)]; ok && prev != elem {
		prev.Value.(*cacheEntry).rawKey = ""
	}
	if e.rawKey != "" {
		delete(c.raw, e.rawKey)
	}
	e.rawKey = string(rawKey)
	c.raw[e.rawKey] = elem
}

// put stores a copy of body under copies of the canonical key and the
// raw-request alias, evicting the least recently used entry when full.
// Copying here (off the measured hit path) is what lets callers hand
// in pooled buffers.
func (c *responseCache) put(key, rawKey, body []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.items[string(key)]; ok {
		c.ll.MoveToFront(elem)
		elem.Value.(*cacheEntry).body = append([]byte(nil), body...)
		c.aliasLocked(elem, rawKey)
		return
	}
	k := string(key)
	elem := c.ll.PushFront(&cacheEntry{key: k, body: append([]byte(nil), body...)})
	c.items[k] = elem
	c.aliasLocked(elem, rawKey)
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*cacheEntry)
		delete(c.items, e.key)
		if e.rawKey != "" {
			delete(c.raw, e.rawKey)
		}
		c.evicts.Inc()
	}
	c.sizeG.Set(float64(c.ll.Len()))
}
