package server

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/telemetry"
)

// cacheKey builds the canonical byte form of a predict request: every
// worksheet field in a fixed order at full float64 precision, plus the
// multi-FPGA configuration. Two requests collide iff they would
// produce identical predictions, because the key preserves the exact
// bits the computation consumes (NaN never reaches the cache — it
// fails validation first).
//
//rat:hotpath
func cacheKey(p core.Parameters, cfg core.MultiConfig) string {
	buf := make([]byte, 0, len(p.Name)+8*12)
	buf = append(buf, p.Name...)
	u64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u64(uint64(len(p.Name))) // disambiguates name bytes from numbers
	u64(uint64(p.Dataset.ElementsIn))
	u64(uint64(p.Dataset.ElementsOut))
	f64(p.Dataset.BytesPerElement)
	f64(p.Comm.IdealThroughput)
	f64(p.Comm.AlphaWrite)
	f64(p.Comm.AlphaRead)
	f64(p.Comp.OpsPerElement)
	f64(p.Comp.ThroughputProc)
	f64(p.Comp.ClockHz)
	f64(p.Soft.TSoft)
	u64(uint64(p.Soft.Iterations))
	u64(uint64(cfg.Devices)<<1 | uint64(cfg.Topology))
	return string(buf)
}

// responseCache is a mutex-guarded LRU of marshalled response bodies.
// Caching the exact bytes (not the Prediction) guarantees a hit
// replays a byte-identical response, which is what the bit-for-bit
// acceptance tests compare.
type responseCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent; values are *cacheEntry
	items map[string]*list.Element

	hits   *telemetry.Counter
	misses *telemetry.Counter
	evicts *telemetry.Counter
	sizeG  *telemetry.Gauge
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResponseCache returns a cache holding up to max entries, or nil
// when max <= 0 (caching disabled; a nil cache misses everything).
func newResponseCache(reg *telemetry.Registry, max int) *responseCache {
	if max <= 0 {
		return nil
	}
	return &responseCache{
		max:    max,
		ll:     list.New(),
		items:  make(map[string]*list.Element, max),
		hits:   reg.Counter("server.cache_hits"),
		misses: reg.Counter("server.cache_misses"),
		evicts: reg.Counter("server.cache_evictions"),
		sizeG:  reg.Gauge("server.cache_entries"),
	}
}

// get returns the cached body for key, bumping its recency.
func (c *responseCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(elem)
	c.hits.Inc()
	return elem.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least recently used entry
// when full. Bodies are stored as-is; callers must not mutate them.
func (c *responseCache) put(key string, body []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.items[key]; ok {
		c.ll.MoveToFront(elem)
		elem.Value.(*cacheEntry).body = body
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evicts.Inc()
	}
	c.sizeG.Set(float64(c.ll.Len()))
}
