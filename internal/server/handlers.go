package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/explore"
	"github.com/chrec/rat/internal/obs"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/worksheet"
)

// jsonMarshal is encoding/json.Marshal, named so the wire-writing
// sites read uniformly.
func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }

// httpStatus maps a request-shaped error to its status code: anything
// wrapping the invalid-parameters or worksheet-syntax sentinels is the
// caller's fault (400); context expiry is 504; the rest is 500.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrInvalidParameters), errors.Is(err, worksheet.ErrSyntax):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// decodePredictRequest parses the body of POST /v1/predict — the
// existing worksheet JSON format, nothing more — plus the optional
// devices/topology query parameters. Every failure wraps
// core.ErrInvalidParameters or worksheet.ErrSyntax, so hostile bodies
// always map to 400, never to a panic or 500 (pinned by
// FuzzDecodeWorksheetRequest).
func decodePredictRequest(body io.Reader, devicesQ, topologyQ string) (core.Parameters, core.MultiConfig, error) {
	p, err := worksheet.DecodeJSON(body)
	if err != nil {
		return core.Parameters{}, core.MultiConfig{}, err
	}
	cfg := core.MultiConfig{Devices: 1, Topology: core.SharedChannel}
	if devicesQ != "" {
		n, err := strconv.Atoi(devicesQ)
		if err != nil || n < 1 {
			return core.Parameters{}, core.MultiConfig{},
				fmt.Errorf("%w: devices parameter must be a positive integer (got %q)",
					core.ErrInvalidParameters, devicesQ)
		}
		cfg.Devices = n
	}
	if topologyQ != "" {
		topo, err := api.ParseTopology(topologyQ)
		if err != nil {
			return core.Parameters{}, core.MultiConfig{},
				fmt.Errorf("%w: %v", core.ErrInvalidParameters, err)
		}
		cfg.Topology = topo
	}
	return p, cfg, nil
}

// handlePredict serves POST /v1/predict: one worksheet in, one
// prediction out — bit-for-bit what rat.Predict (or rat.PredictMulti
// with ?devices=N) returns for the same worksheet. Each segment of the
// pipeline records its latency: admission, cache, batch_wait, kernel
// and encode (a cache hit records only the first two — nothing else
// ran).
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	release, ok := s.admPredict.admit(r.Context(), 1)
	if !ok {
		writeTooBusy(w, "/v1/predict")
		return
	}
	defer release()
	s.stage(r.Context(), obs.StageAdmission, time.Since(t0))
	if err := r.Context().Err(); err != nil {
		writeError(w, httpStatus(err), err) // admitted after the deadline: abandon, never execute late
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	q := r.URL.Query()
	p, cfg, err := decodePredictRequest(body, q.Get("devices"), q.Get("topology"))
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}

	t0 = time.Now()
	key := cacheKey(p, cfg)
	cached, hit := s.cache.get(key)
	s.stage(r.Context(), obs.StageCache, time.Since(t0))
	if hit {
		setStagesHeader(w, r)
		writeJSONBytes(w, cached)
		return
	}

	var out []byte
	if cfg.Devices == 1 {
		t0 = time.Now()
		pr, kernelNs, err := s.batcher.predict(r.Context(), p)
		wait := time.Since(t0) - time.Duration(kernelNs)
		if wait < 0 {
			wait = 0
		}
		s.stage(r.Context(), obs.StageBatchWait, wait)
		s.stage(r.Context(), obs.StageKernel, time.Duration(kernelNs))
		if err != nil {
			writeError(w, httpStatus(err), err)
			return
		}
		t0 = time.Now()
		out, err = jsonMarshal(api.PredictionFromCore(pr))
		s.stage(r.Context(), obs.StageEncode, time.Since(t0))
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	} else {
		t0 = time.Now()
		mp, err := core.PredictMulti(p, cfg)
		s.stage(r.Context(), obs.StageKernel, time.Since(t0))
		if err != nil {
			writeError(w, httpStatus(err), err)
			return
		}
		t0 = time.Now()
		out, err = jsonMarshal(api.MultiPredictionFromCore(mp))
		s.stage(r.Context(), obs.StageEncode, time.Since(t0))
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	if s.cacheFillAllowed() {
		s.cache.put(key, out)
	}
	setStagesHeader(w, r)
	writeJSONBytes(w, out)
}

// batchSlabs pools the parameter/prediction slabs behind
// /v1/predict/batch so steady-state batch serving reuses storage
// rather than allocating per request.
var batchSlabs = sync.Pool{New: func() any { return &slab{} }}

// handleBatch serves POST /v1/predict/batch: a JSON array of
// worksheets fanned into one core.PredictBatch evaluation over a
// pooled slab. Response element i is bit-for-bit rat.Predict of
// worksheet i.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var docs []worksheet.Doc
	if err := dec.Decode(&docs); err != nil {
		err = fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
		writeError(w, httpStatus(err), err)
		return
	}
	if len(docs) == 0 {
		err := fmt.Errorf("%w: batch is empty", core.ErrInvalidParameters)
		writeError(w, httpStatus(err), err)
		return
	}

	// The tenancy layer charged 1 token before the body was readable;
	// top up to 1 per worksheet now that the count is known.
	if sw, ok := w.(*statusWriter); ok && sw.member != nil && len(docs) > 1 {
		if ok, retry := sw.member.Bucket().Take(time.Now(), float64(len(docs)-1)); !ok {
			sw.tstat.rejectQuota.Inc()
			sw.quotaShed = true
			writeQuotaExceeded(w, sw.member.Name, retry)
			return
		}
	}

	// Weight admission by worksheet count: a 1000-worksheet batch
	// holds proportionally more of the endpoint's capacity than a
	// 2-worksheet one (clamped to the endpoint limit).
	t0 := time.Now()
	release, ok := s.admBatch.admit(r.Context(), int64(len(docs)))
	if !ok {
		writeTooBusy(w, "/v1/predict/batch")
		return
	}
	defer release()
	s.stage(r.Context(), obs.StageAdmission, time.Since(t0))
	if err := r.Context().Err(); err != nil {
		writeError(w, httpStatus(err), err) // admitted after the deadline: abandon, never execute late
		return
	}

	sl := batchSlabs.Get().(*slab)
	defer batchSlabs.Put(sl)
	sl.ps = sl.ps[:0]
	for _, doc := range docs {
		sl.ps = append(sl.ps, doc.Params())
	}
	if cap(sl.out) < len(sl.ps) {
		sl.out = make([]core.Prediction, len(sl.ps))
	}
	sl.out = sl.out[:len(sl.ps)]

	// PredictBatch validates every worksheet up front; the error names
	// the offending index and wraps ErrInvalidParameters.
	t0 = time.Now()
	err := core.PredictBatch(sl.ps, sl.out)
	s.stage(r.Context(), obs.StageKernel, time.Since(t0))
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	t0 = time.Now()
	resp := make([]api.Prediction, len(sl.out))
	for i, pr := range sl.out {
		resp[i] = api.PredictionFromCore(pr)
	}
	out, err := jsonMarshal(resp)
	s.stage(r.Context(), obs.StageEncode, time.Since(t0))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	setStagesHeader(w, r)
	writeJSONBytes(w, out)
}

// handleExplore serves POST /v1/explore: a bounded grid search via
// internal/explore. The candidate ceiling is server-enforced; grids
// beyond it are refused outright (413) rather than queued, because no
// deadline could save them. With ?stream=jsonl the response is JSONL:
// top candidates, then frontier candidates when requested, then a
// summary line.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	release, ok := s.admExplore.admit(r.Context(), 1)
	if !ok {
		writeTooBusy(w, "/v1/explore")
		return
	}
	defer release()
	s.stage(r.Context(), obs.StageAdmission, time.Since(t0))
	if err := r.Context().Err(); err != nil {
		writeError(w, httpStatus(err), err) // admitted after the deadline: abandon, never execute late
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req api.ExploreRequest
	if err := dec.Decode(&req); err != nil {
		err = fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
		writeError(w, httpStatus(err), err)
		return
	}
	grid, err := req.Grid()
	if err != nil {
		if !errors.Is(err, core.ErrInvalidParameters) {
			err = fmt.Errorf("%w: %v", core.ErrInvalidParameters, err)
		}
		writeError(w, httpStatus(err), err)
		return
	}
	if err := grid.Validate(); err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	// The ceiling is the configured one stepped down by the brownout
	// level: under sustained overload bulk explorations shrink before
	// the interactive path is ever touched.
	if ceiling := s.exploreCeiling(); grid.Size() > ceiling {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("grid asks for %d candidates; this server currently caps explorations at %d",
				grid.Size(), ceiling))
		return
	}
	opts, err := req.Options(s.cfg.ExploreWorkers)
	if err != nil {
		err = fmt.Errorf("%w: %v", core.ErrInvalidParameters, err)
		writeError(w, httpStatus(err), err)
		return
	}
	opts.Metrics = s.reg
	stream := r.URL.Query().Get("stream") == "jsonl"
	wantSpans := stream && r.URL.Query().Get("spans") == "1"
	opts.CollectSpans = wantSpans

	// The engine has no preemption points, so run it to the side and
	// honor the request deadline at the HTTP layer; the ceiling above
	// bounds how much work an abandoned run can burn.
	type exploreOut struct {
		res explore.Result
		err error
	}
	done := make(chan exploreOut, 1)
	go func() {
		res, err := explore.Run(grid, opts)
		done <- exploreOut{res, err}
	}()
	var res explore.Result
	select {
	case out := <-done:
		if out.err != nil {
			writeError(w, httpStatus(out.err), out.err)
			return
		}
		res = out.res
	case <-r.Context().Done():
		err := r.Context().Err()
		writeError(w, httpStatus(err), err)
		return
	}
	// The engine measures its own elapsed time; that is the kernel
	// stage of an exploration request.
	s.stage(r.Context(), obs.StageKernel, res.Elapsed)

	if stream {
		s.writeExploreJSONL(w, r, res, req.Frontier, wantSpans)
		return
	}
	t0 = time.Now()
	out, err := jsonMarshal(api.ExploreResponseFromCore(res, req.Frontier))
	s.stage(r.Context(), obs.StageEncode, time.Since(t0))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	setStagesHeader(w, r)
	writeJSONBytes(w, out)
}

// writeExploreJSONL streams an exploration result as JSONL. Span lines
// (per-shard engine timing) are emitted only when asked for — older
// consumers treat unknown line kinds as an error.
func (s *Server) writeExploreJSONL(w http.ResponseWriter, r *http.Request, res explore.Result, frontier, spans bool) {
	setStagesHeader(w, r)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	emit := func(line api.ExploreLine) bool { return enc.Encode(line) == nil }
	for i := range res.Top {
		c := api.CandidateFromCore(res.Top[i])
		if !emit(api.ExploreLine{Kind: "top", Candidate: &c}) {
			return
		}
	}
	if frontier {
		for i := range res.Frontier {
			c := api.CandidateFromCore(res.Frontier[i])
			if !emit(api.ExploreLine{Kind: "frontier", Candidate: &c}) {
				return
			}
		}
	}
	if spans {
		for i := range res.Spans {
			sp := res.Spans[i]
			line := api.ShardSpan{
				Shard:          sp.Shard,
				Worker:         sp.Worker,
				Lo:             sp.Lo,
				Hi:             sp.Hi,
				ElapsedSeconds: sp.Elapsed.Seconds(),
			}
			if !emit(api.ExploreLine{Kind: "span", Span: &line}) {
				return
			}
		}
	}
	emit(api.ExploreLine{Kind: "summary", Summary: &api.ExploreSummary{
		Evaluated:        res.Evaluated,
		Feasible:         res.Feasible,
		Workers:          res.Workers,
		ElapsedSeconds:   res.Elapsed.Seconds(),
		CandidatesPerSec: res.CandidatesPerSec,
	}})
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// handleHealthz reports liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz reports readiness: 200 while accepting work, 503 once
// draining so load balancers stop routing here.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ready\n")
}

// handleMetrics renders the registry. The default is the legacy text
// listing of internal/telemetry — the same listing ratsim -metrics
// prints. Prometheus scrapers (Accept naming format 0.0.4 or
// OpenMetrics, or ?format=prometheus) get the exposition format
// instead; both views include the rat_stage_seconds histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.promSnapshot()
	var buf bytes.Buffer
	if wantsProm(r) {
		if err := telemetry.WriteProm(&buf, snap); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", telemetry.ContentTypeProm)
		w.Write(buf.Bytes())
		return
	}
	if err := telemetry.WriteText(&buf, snap); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(buf.Bytes())
}

// writeJSONBytes answers 200 with a pre-marshalled JSON body.
func writeJSONBytes(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	w.Write([]byte("\n"))
}
